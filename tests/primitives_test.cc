#include "src/core/primitives.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace aceso {
namespace {

TEST(PrimitiveTableTest, HasPaperRowsPlusExtensions) {
  EXPECT_EQ(kNumPaperPrimitives, 10);
  EXPECT_EQ(PrimitiveTable().size(), static_cast<size_t>(kNumPrimitives));
  EXPECT_EQ(kNumPrimitives, 12);  // 10 paper rows + inc/dec-zero extension
}

TEST(PrimitiveTableTest, IndexedByKind) {
  const auto& table = PrimitiveTable();
  for (size_t i = 0; i < table.size(); ++i) {
    EXPECT_EQ(static_cast<size_t>(table[i].kind), i);
  }
}

TEST(PrimitiveTableTest, IncDecPairsAreOpposites) {
  // Each inc/dec pair has mirrored trends in every resource column.
  const auto& table = PrimitiveTable();
  auto mirror = [](Trend t) {
    if (t == Trend::kIncrease) return Trend::kDecrease;
    if (t == Trend::kDecrease) return Trend::kIncrease;
    return Trend::kUnchanged;
  };
  for (size_t i = 0; i < table.size(); i += 2) {
    const PrimitiveInfo& inc = table[i];
    const PrimitiveInfo& dec = table[i + 1];
    EXPECT_EQ(dec.computation, mirror(inc.computation))
        << PrimitiveName(inc.kind);
    EXPECT_EQ(dec.communication, mirror(inc.communication))
        << PrimitiveName(inc.kind);
    EXPECT_EQ(dec.memory, mirror(inc.memory)) << PrimitiveName(inc.kind);
  }
}

TEST(PrimitiveTableTest, NoFreeLunch) {
  // §3.2.1: no primitive decreases every resource.
  for (const PrimitiveInfo& info : PrimitiveTable()) {
    const bool all_decrease = info.computation == Trend::kDecrease &&
                              info.communication == Trend::kDecrease &&
                              info.memory == Trend::kDecrease;
    EXPECT_FALSE(all_decrease) << PrimitiveName(info.kind);
  }
}

TEST(QueryTest, MemoryDecreasingPrimitives) {
  // Default query covers the paper's Table-1 rows only.
  const auto prims = PrimitivesDecreasing(Resource::kMemory);
  // dec-op#, dec-mbs, inc-dp, inc-tp, inc-rc.
  EXPECT_EQ(prims.size(), 5u);
  EXPECT_NE(std::find(prims.begin(), prims.end(), PrimitiveKind::kIncRc),
            prims.end());
  EXPECT_NE(std::find(prims.begin(), prims.end(), PrimitiveKind::kIncTp),
            prims.end());
  EXPECT_NE(std::find(prims.begin(), prims.end(), PrimitiveKind::kDecMbs),
            prims.end());
}

TEST(QueryTest, CommunicationDecreasingPrimitives) {
  const auto prims = PrimitivesDecreasing(Resource::kCommunication);
  // dec-dp, dec-tp.
  EXPECT_EQ(prims.size(), 2u);
  EXPECT_NE(std::find(prims.begin(), prims.end(), PrimitiveKind::kDecDp),
            prims.end());
  EXPECT_NE(std::find(prims.begin(), prims.end(), PrimitiveKind::kDecTp),
            prims.end());
}

TEST(QueryTest, ComputationDecreasingPrimitives) {
  const auto prims = PrimitivesDecreasing(Resource::kComputation);
  // dec-op#, inc-mbs, inc-dp, inc-tp, dec-rc.
  EXPECT_EQ(prims.size(), 5u);
  EXPECT_NE(std::find(prims.begin(), prims.end(), PrimitiveKind::kIncMbs),
            prims.end());
  EXPECT_NE(std::find(prims.begin(), prims.end(), PrimitiveKind::kDecRc),
            prims.end());
}

TEST(PartnerTest, DeviceMigrationsHavePartners) {
  const auto inc_tp = PartnerPrimitives(PrimitiveKind::kIncTp);
  EXPECT_EQ(inc_tp.size(), 2u);
  const auto inc_op = PartnerPrimitives(PrimitiveKind::kIncOpCount);
  ASSERT_EQ(inc_op.size(), 1u);
  EXPECT_EQ(inc_op[0], PrimitiveKind::kDecOpCount);
}

TEST(QueryTest, ExtensionsOnlyWhenRequested) {
  const auto paper = PrimitivesDecreasing(Resource::kMemory);
  EXPECT_EQ(std::find(paper.begin(), paper.end(), PrimitiveKind::kIncZero),
            paper.end());
  const auto extended =
      PrimitivesDecreasing(Resource::kMemory, /*include_extensions=*/true);
  EXPECT_NE(std::find(extended.begin(), extended.end(),
                      PrimitiveKind::kIncZero),
            extended.end());
  EXPECT_EQ(extended.size(), paper.size() + 1);

  const auto comm_extended = PrimitivesDecreasing(
      Resource::kCommunication, /*include_extensions=*/true);
  EXPECT_NE(std::find(comm_extended.begin(), comm_extended.end(),
                      PrimitiveKind::kDecZero),
            comm_extended.end());
}

TEST(PartnerTest, MbsAndRcActAlone) {
  EXPECT_TRUE(PartnerPrimitives(PrimitiveKind::kIncMbs).empty());
  EXPECT_TRUE(PartnerPrimitives(PrimitiveKind::kDecMbs).empty());
  EXPECT_TRUE(PartnerPrimitives(PrimitiveKind::kIncRc).empty());
  EXPECT_TRUE(PartnerPrimitives(PrimitiveKind::kDecRc).empty());
}

TEST(NamesTest, AllPrimitiveNamesUnique) {
  std::vector<std::string> names;
  for (const PrimitiveInfo& info : PrimitiveTable()) {
    names.push_back(PrimitiveName(info.kind));
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

TEST(NamesTest, TrendNames) {
  EXPECT_STREQ(TrendName(Trend::kIncrease), "increase");
  EXPECT_STREQ(TrendName(Trend::kUnchanged), "unchanged");
  EXPECT_STREQ(TrendName(Trend::kDecrease), "decrease");
}

}  // namespace
}  // namespace aceso
