// Exp#7 — robustness over initial configurations (paper Figure 14).
//
// Starts the search from the default balanced configuration and from two
// adversarial ones — op-imbalanced partitions and GPU-imbalanced device
// assignments — and prints the convergence trends.
//
// Paper claim to reproduce in shape: all three starts converge to similar
// final configurations.
//
// The second section compares the two seed modes (DESIGN.md §13): the same
// deterministic evaluation-budget search started from the heuristic seed
// and from the PaSE-style DP seed. The x-axis is ConvergencePoint::
// evaluations (configs explored when the point was recorded), so
// "evals to heuristic-final" — the first point at or below the heuristic
// run's final predicted time, +0.5% tolerance — is wall-clock-immune. The
// DP seed should get there in measurably fewer evaluations.

#include <cstdio>
#include <iostream>
#include <utility>

#include "bench/bench_util.h"

int main() {
  using namespace aceso;
  using namespace aceso::bench;
  PrintHeader("Exp#7: initial-configuration robustness (Figure 14)",
              "Balanced, op-imbalanced and GPU-imbalanced starts converge to "
              "similar configurations");

  std::vector<std::pair<std::string, int>> settings = {
      {"gpt3-2.6b", 8},
      {"wresnet-2b", 8},
  };
  if (QuickMode()) {
    settings = {{"gpt3-0.35b", 4}};
  }

  for (const auto& [name, gpus] : settings) {
    std::printf("\n--- %s @%dgpu ---\n", name.c_str(), gpus);
    Workload workload(name, gpus);
    TablePrinter table({"initial config", "best pred iter(s)", "improvements",
                        "iterations", "restarts"});
    const std::vector<std::pair<std::string, InitialConfigKind>> starts = {
        {"balanced", InitialConfigKind::kBalanced},
        {"imbalance-op", InitialConfigKind::kOpImbalanced},
        {"imbalance-GPU", InitialConfigKind::kGpuImbalanced},
    };
    for (const auto& [label, kind] : starts) {
      // Counters-only sink per start: how hard each start had to work (and
      // whether it needed restarts) comes from telemetry (DESIGN.md §10).
      TelemetryOptions topts;
      topts.ring_capacity = 0;
      TelemetrySink telemetry(topts);
      SearchOptions options = DefaultSearchOptions();
      options.initial_config = kind;
      options.telemetry = &telemetry;
      const SearchResult result = AcesoSearch(workload.model(), options);
      table.AddRow({label,
                    result.found
                        ? FormatDouble(result.best.perf.iteration_time, 2)
                        : "x",
                    std::to_string(result.stats.improvements),
                    std::to_string(telemetry.counter("search.iterations")),
                    std::to_string(telemetry.counter("search.restarts"))});
      PrintConvergence(label, result.convergence, 8);
    }
    table.Print(std::cout);

    // --- Seeding: heuristic vs PaSE-style DP, fixed evaluation budget ---
    // Fixed stage count: AcesoSearch merges per-stage-count workers whose
    // evaluation counters interleave, so the merged trend's x-axis is not
    // comparable across runs; a single worker keeps it exact.
    const int seed_stages = 4;
    std::printf("\n    seeding (heuristic vs DP, %s @%dgpu, %d stages):\n",
                name.c_str(), gpus, seed_stages);
    const int64_t eval_budget = QuickMode() ? 2000 : 8000;
    auto run_seeded = [&](SeedMode mode) {
      SearchOptions options = DefaultSearchOptions();
      options.time_budget_seconds = 1e9;  // the evaluation budget binds
      options.max_evaluations = eval_budget;
      options.seed_mode = mode;
      return AcesoSearchForStages(workload.model(), options, seed_stages);
    };
    const SearchResult heuristic = run_seeded(SeedMode::kHeuristic);
    const SearchResult dp = run_seeded(SeedMode::kDp);
    // First recorded point at or below the heuristic run's final time.
    const double target = heuristic.found
                              ? heuristic.best.perf.iteration_time * 1.005
                              : 0.0;
    auto evals_to_target =
        [&](const std::vector<ConvergencePoint>& trend) -> long long {
      for (const ConvergencePoint& point : trend) {
        if (point.feasible && point.best_iteration_time <= target) {
          return point.evaluations;
        }
      }
      return -1;  // never reached the target within the budget
    };
    TablePrinter seeding({"seed mode", "seed pred iter(s)",
                          "final pred iter(s)", "evals to heuristic-final",
                          "configs explored"});
    const std::pair<const char*, const SearchResult*> seeded_runs[] = {
        {"heuristic", &heuristic}, {"dp", &dp}};
    for (const auto& [label, run] : seeded_runs) {
      const SearchResult& result = *run;
      const long long reach = evals_to_target(result.convergence);
      seeding.AddRow(
          {label,
           result.convergence.empty()
               ? "x"
               : FormatDouble(result.convergence.front().best_iteration_time,
                              2),
           result.found ? FormatDouble(result.best.perf.iteration_time, 3)
                        : "x",
           reach >= 0 ? std::to_string(reach) : "not reached",
           std::to_string(result.stats.configs_explored)});
    }
    seeding.Print(std::cout);
  }
  return 0;
}
