#include "src/plan/execution_plan.h"

#include <gtest/gtest.h>

#include "src/ir/models/model_zoo.h"

namespace aceso {
namespace {

class PlanTest : public ::testing::Test {
 protected:
  PlanTest()
      : graph_(models::Gpt3(0.35)), cluster_(ClusterSpec::WithGpuCount(8)) {}

  ParallelConfig Even(int stages, int mbs = 2) {
    auto config = MakeEvenConfig(graph_, cluster_, stages, mbs);
    EXPECT_TRUE(config.ok());
    if (mbs > config->microbatch_size()) {
      config->set_microbatch_size(mbs);
    }
    return *std::move(config);
  }

  OpGraph graph_;
  ClusterSpec cluster_;
};

TEST_F(PlanTest, OneProgramPerDevice) {
  const ParallelConfig config = Even(4);
  const ExecutionPlan plan = ExecutionPlan::Lower(graph_, config);
  EXPECT_EQ(plan.num_devices(), 8);
  EXPECT_EQ(plan.num_stages(), 4);
}

TEST_F(PlanTest, VerifiesForEveryStageCount) {
  for (int stages : {1, 2, 4, 8}) {
    const ParallelConfig config = Even(stages);
    const ExecutionPlan plan = ExecutionPlan::Lower(graph_, config);
    EXPECT_TRUE(plan.Verify().ok()) << "stages=" << stages;
  }
}

TEST_F(PlanTest, ForwardBackwardCountsMatchMicrobatches) {
  const ParallelConfig config = Even(2);
  const ExecutionPlan plan = ExecutionPlan::Lower(graph_, config);
  const int64_t n_mb = config.NumMicrobatches(graph_);
  for (const DeviceProgram& program : plan.programs()) {
    int64_t fwd = 0;
    int64_t bwd = 0;
    for (const Instruction& inst : program.instructions) {
      if (inst.kind == InstructionKind::kForward) {
        ++fwd;
      } else if (inst.kind == InstructionKind::kBackward) {
        ++bwd;
      }
    }
    EXPECT_EQ(fwd, n_mb);
    EXPECT_EQ(bwd, n_mb);
  }
}

TEST_F(PlanTest, FirstStageNeverReceivesActivations) {
  const ParallelConfig config = Even(4);
  const ExecutionPlan plan = ExecutionPlan::Lower(graph_, config);
  for (const DeviceProgram& program : plan.programs()) {
    if (program.stage != 0) {
      continue;
    }
    for (const Instruction& inst : program.instructions) {
      EXPECT_NE(inst.kind, InstructionKind::kRecvActivation);
      EXPECT_NE(inst.kind, InstructionKind::kSendGradient);
    }
  }
}

TEST_F(PlanTest, LastStageNeverSendsActivations) {
  const ParallelConfig config = Even(4);
  const ExecutionPlan plan = ExecutionPlan::Lower(graph_, config);
  for (const DeviceProgram& program : plan.programs()) {
    if (program.stage != plan.num_stages() - 1) {
      continue;
    }
    for (const Instruction& inst : program.instructions) {
      EXPECT_NE(inst.kind, InstructionKind::kSendActivation);
      EXPECT_NE(inst.kind, InstructionKind::kRecvGradient);
    }
  }
}

TEST_F(PlanTest, WarmupDepthFollows1F1B) {
  // Stage s of p performs min(p - s, N) forwards before its first backward.
  const ParallelConfig config = Even(4);
  const ExecutionPlan plan = ExecutionPlan::Lower(graph_, config);
  for (const DeviceProgram& program : plan.programs()) {
    int fwd_before_bwd = 0;
    for (const Instruction& inst : program.instructions) {
      if (inst.kind == InstructionKind::kForward) {
        ++fwd_before_bwd;
      } else if (inst.kind == InstructionKind::kBackward) {
        break;
      }
    }
    EXPECT_EQ(fwd_before_bwd, plan.num_stages() - program.stage)
        << "device " << program.device;
  }
}

TEST_F(PlanTest, GradientSyncOnlyWithDataParallelism) {
  // Pure pipeline (1 device per stage, tp=1, dp=1): no gradient sync.
  const ParallelConfig config = Even(8);
  const ExecutionPlan plan = ExecutionPlan::Lower(graph_, config);
  for (const DeviceProgram& program : plan.programs()) {
    bool has_dp = false;
    for (const OpParallel& setting :
         config.stage(program.stage).ops) {
      has_dp = has_dp || setting.dp > 1;
    }
    bool has_sync = false;
    for (const Instruction& inst : program.instructions) {
      has_sync = has_sync || inst.kind == InstructionKind::kGradientSync;
    }
    EXPECT_EQ(has_sync, has_dp) << "device " << program.device;
  }
}

TEST_F(PlanTest, EveryProgramEndsWithOptimizerStep) {
  const ParallelConfig config = Even(2);
  const ExecutionPlan plan = ExecutionPlan::Lower(graph_, config);
  for (const DeviceProgram& program : plan.programs()) {
    ASSERT_FALSE(program.instructions.empty());
    EXPECT_EQ(program.instructions.back().kind,
              InstructionKind::kOptimizerStep);
  }
}

TEST_F(PlanTest, SummaryAndDumpAreNonEmpty) {
  const ParallelConfig config = Even(2);
  const ExecutionPlan plan = ExecutionPlan::Lower(graph_, config);
  EXPECT_NE(plan.Summary().find("2 stages"), std::string::npos);
  EXPECT_NE(plan.DumpDevice(0).find("device 0"), std::string::npos);
}

TEST_F(PlanTest, InstructionToString) {
  Instruction inst{InstructionKind::kSendActivation, 3, 1, 64 * kMiB};
  const std::string s = inst.ToString();
  EXPECT_NE(s.find("send_act"), std::string::npos);
  EXPECT_NE(s.find("mb=3"), std::string::npos);
  EXPECT_NE(s.find("peer=s1"), std::string::npos);
}

TEST_F(PlanTest, GpipeLoweringVerifies) {
  const ParallelConfig config = Even(4);
  const ExecutionPlan plan =
      ExecutionPlan::Lower(graph_, config, PipelineSchedule::kGpipe);
  EXPECT_TRUE(plan.Verify().ok());
  // GPipe: every forward precedes every backward on each device.
  for (const DeviceProgram& program : plan.programs()) {
    bool seen_backward = false;
    for (const Instruction& inst : program.instructions) {
      if (inst.kind == InstructionKind::kBackward) {
        seen_backward = true;
      }
      if (inst.kind == InstructionKind::kForward) {
        EXPECT_FALSE(seen_backward) << "device " << program.device;
      }
    }
  }
}

TEST_F(PlanTest, TpDpRanksAssigned) {
  auto config = MakeEvenConfig(graph_, cluster_, 1, 8);
  ASSERT_TRUE(config.ok());
  config->MutableStage(0).SetUniformParallelism(graph_, 4, 2);
  ASSERT_TRUE(config->Validate(graph_, cluster_).ok());
  const ExecutionPlan plan = ExecutionPlan::Lower(graph_, *config);
  // 8 devices: tp ranks cycle 0..3, dp ranks 0..1.
  for (int d = 0; d < 8; ++d) {
    EXPECT_EQ(plan.program(d).tp_rank, d % 4);
    EXPECT_EQ(plan.program(d).dp_rank, d / 4);
  }
}

}  // namespace
}  // namespace aceso
