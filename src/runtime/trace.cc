#include "src/runtime/trace.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "src/common/units.h"
#include "src/obs/chrome_trace.h"

namespace aceso {

// The simulation's trace document: one thread per resource (tasks without a
// resource land on an extra tid past the last resource), one slice per task
// that ran. Serialization — and, critically, the JSON escaping of task and
// resource names — is shared with the search-trace exporter in src/obs.
static TraceDocument BuildSimTraceDocument(const EventSimulator& sim) {
  TraceDocument doc;
  for (size_t r = 0; r < sim.num_resources(); ++r) {
    doc.threads.emplace_back(static_cast<int>(r),
                             sim.resource_name(static_cast<ResourceId>(r)));
  }
  for (size_t t = 0; t < sim.num_tasks(); ++t) {
    const auto task = static_cast<TaskId>(t);
    const ResourceId resource = sim.task_resource(task);
    if (sim.FinishTime(task) < 0.0) {
      continue;  // never ran
    }
    TraceSlice slice;
    slice.name = sim.task_name(task);
    slice.tid = resource == kNoResource ? static_cast<int>(sim.num_resources())
                                        : static_cast<int>(resource);
    slice.ts_seconds = sim.StartTime(task);
    slice.dur_seconds = sim.task_duration(task);
    doc.slices.push_back(std::move(slice));
  }
  return doc;
}

std::string ToChromeTraceJson(const EventSimulator& sim) {
  return ToChromeTraceJson(BuildSimTraceDocument(sim));
}

Status WriteChromeTrace(const EventSimulator& sim, const std::string& path) {
  return WriteChromeTrace(BuildSimTraceDocument(sim), path);
}

std::string RenderAsciiTimeline(const EventSimulator& sim, int width) {
  width = std::max(width, 10);
  double makespan = 0.0;
  for (size_t t = 0; t < sim.num_tasks(); ++t) {
    makespan = std::max(makespan, sim.FinishTime(static_cast<TaskId>(t)));
  }
  if (makespan <= 0.0) {
    return "(empty timeline)\n";
  }

  // busy[r][c] accumulates the busy fraction of column c on resource r.
  std::vector<std::vector<double>> busy(
      sim.num_resources(), std::vector<double>(static_cast<size_t>(width), 0.0));
  const double column_seconds = makespan / width;
  for (size_t t = 0; t < sim.num_tasks(); ++t) {
    const auto task = static_cast<TaskId>(t);
    const ResourceId r = sim.task_resource(task);
    if (r == kNoResource || sim.FinishTime(task) < 0.0) {
      continue;
    }
    const double start = sim.StartTime(task);
    const double finish = sim.FinishTime(task);
    int c0 = static_cast<int>(start / column_seconds);
    int c1 = static_cast<int>(finish / column_seconds);
    c0 = std::clamp(c0, 0, width - 1);
    c1 = std::clamp(c1, 0, width - 1);
    for (int c = c0; c <= c1; ++c) {
      const double col_begin = c * column_seconds;
      const double col_end = col_begin + column_seconds;
      const double overlap =
          std::min(finish, col_end) - std::max(start, col_begin);
      if (overlap > 0.0) {
        busy[static_cast<size_t>(r)][static_cast<size_t>(c)] +=
            overlap / column_seconds;
      }
    }
  }

  std::ostringstream oss;
  size_t label_width = 0;
  for (size_t r = 0; r < sim.num_resources(); ++r) {
    label_width = std::max(
        label_width, sim.resource_name(static_cast<ResourceId>(r)).size());
  }
  for (size_t r = 0; r < sim.num_resources(); ++r) {
    const std::string& name = sim.resource_name(static_cast<ResourceId>(r));
    oss << name << std::string(label_width - name.size(), ' ') << " |";
    for (int c = 0; c < width; ++c) {
      const double fraction = busy[r][static_cast<size_t>(c)];
      oss << (fraction > 0.66 ? '#' : fraction > 0.15 ? '+' : '.');
    }
    oss << "|\n";
  }
  const std::string end_label = FormatSeconds(makespan);
  oss << std::string(label_width, ' ') << " 0";
  const int pad = width - 1 - static_cast<int>(end_label.size());
  oss << std::string(static_cast<size_t>(std::max(pad, 1)), ' ') << end_label
      << "\n";
  return oss.str();
}

}  // namespace aceso
