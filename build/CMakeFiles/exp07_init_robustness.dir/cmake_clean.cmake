file(REMOVE_RECURSE
  "CMakeFiles/exp07_init_robustness.dir/bench/bench_util.cc.o"
  "CMakeFiles/exp07_init_robustness.dir/bench/bench_util.cc.o.d"
  "CMakeFiles/exp07_init_robustness.dir/bench/exp07_init_robustness.cc.o"
  "CMakeFiles/exp07_init_robustness.dir/bench/exp07_init_robustness.cc.o.d"
  "bench/exp07_init_robustness"
  "bench/exp07_init_robustness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp07_init_robustness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
