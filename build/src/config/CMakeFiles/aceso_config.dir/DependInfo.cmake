
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/config/config_io.cc" "src/config/CMakeFiles/aceso_config.dir/config_io.cc.o" "gcc" "src/config/CMakeFiles/aceso_config.dir/config_io.cc.o.d"
  "/root/repo/src/config/parallel_config.cc" "src/config/CMakeFiles/aceso_config.dir/parallel_config.cc.o" "gcc" "src/config/CMakeFiles/aceso_config.dir/parallel_config.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aceso_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/aceso_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/aceso_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
