// Cluster topology: homogeneous nodes, each with `gpus_per_node` GPUs linked
// by NVLink; nodes linked by an InfiniBand fabric (paper: 4 nodes x 8 V100,
// NVLink intra-node, 100 Gb/s IB inter-node).
//
// Devices are identified by a dense global index [0, num_gpus()). Parallel
// configurations assign contiguous device ranges to pipeline stages, so the
// topology questions this module answers are of the form "does the device
// group [first, first+size) with stride `stride` cross a node boundary?".

#ifndef SRC_HW_CLUSTER_H_
#define SRC_HW_CLUSTER_H_

#include <cstdint>
#include <string>

#include "src/hw/gpu_spec.h"

namespace aceso {

struct ClusterSpec {
  GpuSpec gpu;
  int num_nodes = 4;
  int gpus_per_node = 8;

  // Point-to-point bandwidths (bytes/s) and latencies (s).
  double nvlink_bandwidth = 130e9;   // effective unidirectional NVLink
  double nvlink_latency = 3e-6;
  double ib_bandwidth = 12.5e9;      // 100 Gb/s per node
  double ib_latency = 8e-6;

  int num_gpus() const { return num_nodes * gpus_per_node; }

  // Node index of a global device id.
  int NodeOf(int device) const { return device / gpus_per_node; }

  // True when the strided group {first, first+stride, ...} of `size` devices
  // spans more than one node.
  bool GroupCrossesNodes(int first, int size, int stride) const;

  // A convenience single-GPU cluster with the same GPU spec.
  static ClusterSpec SingleGpu();

  // The paper's testbed: 4 nodes x 8 V100(32GB).
  static ClusterSpec PaperCluster();

  // A cluster with `gpus` total devices (filled node by node, 8 per node).
  static ClusterSpec WithGpuCount(int gpus);

  // Semantic fingerprint over topology, link parameters, and the GPU spec.
  // Two clusters with equal fingerprints produce identical simulated
  // measurements and identical plan search spaces, so this is the key under
  // which profile-database snapshots are saved/validated (src/profile) and
  // one component of the serving plan-cache key (src/serve).
  uint64_t Fingerprint() const;

  std::string ToString() const;
};

// A communication domain: the set of devices participating in one collective
// or point-to-point transfer, reduced to what the cost model needs.
struct CommDomain {
  int size = 1;               // number of participants
  bool crosses_nodes = false; // any link in the ring is inter-node

  bool operator==(const CommDomain& other) const {
    return size == other.size && crosses_nodes == other.crosses_nodes;
  }
};

}  // namespace aceso

#endif  // SRC_HW_CLUSTER_H_
