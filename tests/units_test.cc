#include "src/common/units.h"

#include <gtest/gtest.h>

namespace aceso {
namespace {

TEST(FormatBytesTest, PicksUnit) {
  EXPECT_EQ(FormatBytes(100), "100 B");
  EXPECT_EQ(FormatBytes(2 * kKiB), "2.00 KB");
  EXPECT_EQ(FormatBytes(3 * kMiB), "3.00 MB");
  EXPECT_EQ(FormatBytes(30 * kGiB), "30.00 GB");
}

TEST(FormatBytesTest, FractionalValues) {
  EXPECT_EQ(FormatBytes(kGiB + kGiB / 2), "1.50 GB");
}

TEST(FormatFlopsTest, PicksUnit) {
  EXPECT_EQ(FormatFlops(2.5e12), "2.50 TFLOP");
  EXPECT_EQ(FormatFlops(3e9), "3.00 GFLOP");
  EXPECT_EQ(FormatFlops(4e6), "4.00 MFLOP");
}

TEST(FormatSecondsTest, PicksUnit) {
  EXPECT_EQ(FormatSeconds(2.0), "2.00 s");
  EXPECT_EQ(FormatSeconds(0.005), "5.00 ms");
  EXPECT_EQ(FormatSeconds(25e-6), "25.00 us");
}

TEST(FormatDoubleTest, Precision) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(3.14159, 4), "3.1416");
  EXPECT_EQ(FormatDouble(10.0, 0), "10");
}

TEST(UnitsTest, Constants) {
  EXPECT_EQ(kKiB, 1024);
  EXPECT_EQ(kMiB, 1024 * 1024);
  EXPECT_EQ(kGiB, int64_t{1024} * 1024 * 1024);
  EXPECT_DOUBLE_EQ(kTera, 1e12);
}

}  // namespace
}  // namespace aceso
