#include "src/ir/models/synthetic.h"

#include <algorithm>

#include "src/common/units.h"

namespace aceso {
namespace models {
namespace {

TpClass RandomClass(Rng& rng) {
  const uint64_t pick = rng.NextBelow(10);
  if (pick < 5) {
    return TpClass::kPartitioned;  // half the ops carry weights
  }
  if (pick < 8) {
    return TpClass::kShardFollower;
  }
  return TpClass::kReplicated;
}

}  // namespace

OpGraph SyntheticModel(Rng& rng, const SyntheticModelOptions& options) {
  const Precision precision =
      rng.NextBool() ? Precision::kFp16 : Precision::kFp32;
  // Batch sizes are powers of two (>= 8) so microbatch divisibility is
  // satisfiable for every dp the tests exercise.
  int64_t batch = 8;
  while (batch * 2 <= options.max_batch && rng.NextBool(0.7)) {
    batch *= 2;
  }
  OpGraph graph("synthetic", precision, batch);

  const int num_ops =
      static_cast<int>(rng.NextInt(options.min_ops, options.max_ops));
  // Chain activations: op i's input is op i-1's output.
  int64_t prev_out =
      rng.NextInt(1, options.max_activation_mbytes) * kMiB / 4;
  for (int i = 0; i < num_ops; ++i) {
    Operator op;
    op.name = "op" + std::to_string(i);
    op.kind = OpKind::kMlpFc1;  // kind is cosmetic for synthetic models
    op.tp_class = RandomClass(rng);
    op.fwd_flops = rng.NextDouble() * options.max_fwd_gflops * 1e9 + 1e6;
    op.in_bytes = prev_out;
    op.out_bytes = rng.NextInt(1, options.max_activation_mbytes) * kMiB / 4;
    prev_out = op.out_bytes;
    op.work_bytes = rng.NextBool(0.3)
                        ? rng.NextInt(0, options.max_activation_mbytes) * kMiB / 4
                        : 0;
    if (op.tp_class == TpClass::kPartitioned) {
      op.param_bytes = rng.NextInt(1, options.max_param_mbytes) * kMiB / 4;
      op.max_tp = 1 << rng.NextInt(0, 6);  // 1..64
      op.default_tp_dim = rng.NextBool() ? TpDim::kColumn : TpDim::kRow;
    } else {
      // Followers/replicated ops may carry small (replicated) parameters.
      op.param_bytes = rng.NextBool(0.3) ? rng.NextInt(0, 64) * 1024 : 0;
      op.max_tp = op.tp_class == TpClass::kShardFollower
                      ? 1 << rng.NextInt(0, 5)
                      : 1;
      op.default_tp_dim = TpDim::kNone;
    }
    graph.AddOp(std::move(op));
  }
  return graph;
}

}  // namespace models
}  // namespace aceso
