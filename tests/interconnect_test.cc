#include "src/hw/interconnect.h"

#include <gtest/gtest.h>

namespace aceso {
namespace {

class InterconnectTest : public ::testing::Test {
 protected:
  ClusterSpec cluster_ = ClusterSpec::PaperCluster();
  InterconnectModel model_{cluster_};
};

TEST_F(InterconnectTest, P2PIntraNodeFasterThanInter) {
  const int64_t bytes = 64 * kMiB;
  EXPECT_LT(model_.P2PTime(bytes, /*cross_node=*/false),
            model_.P2PTime(bytes, /*cross_node=*/true));
}

TEST_F(InterconnectTest, P2PScalesWithBytes) {
  EXPECT_LT(model_.P2PTime(kMiB, false), model_.P2PTime(64 * kMiB, false));
}

TEST_F(InterconnectTest, SingletonDomainIsFree) {
  const CommDomain domain{1, false};
  EXPECT_EQ(model_.CollectiveTime(CollectiveKind::kAllReduce, kGiB, domain),
            0.0);
}

TEST_F(InterconnectTest, ZeroBytesIsFree) {
  const CommDomain domain{8, false};
  EXPECT_EQ(model_.CollectiveTime(CollectiveKind::kAllReduce, 0, domain), 0.0);
}

TEST_F(InterconnectTest, AllReduceCostsTwiceAllGather) {
  const CommDomain domain{8, false};
  const int64_t bytes = 256 * kMiB;
  const double ar = model_.CollectiveTime(CollectiveKind::kAllReduce, bytes,
                                          domain);
  const double ag = model_.CollectiveTime(CollectiveKind::kAllGather, bytes,
                                          domain);
  EXPECT_NEAR(ar, 2.0 * ag, ar * 0.01);
}

TEST_F(InterconnectTest, ReduceScatterEqualsAllGather) {
  const CommDomain domain{4, false};
  const int64_t bytes = 32 * kMiB;
  EXPECT_DOUBLE_EQ(
      model_.CollectiveTime(CollectiveKind::kAllGather, bytes, domain),
      model_.CollectiveTime(CollectiveKind::kReduceScatter, bytes, domain));
}

TEST_F(InterconnectTest, CrossNodeDomainIsSlower) {
  const int64_t bytes = 128 * kMiB;
  const double intra = model_.CollectiveTime(CollectiveKind::kAllReduce, bytes,
                                             CommDomain{8, false});
  const double inter = model_.CollectiveTime(CollectiveKind::kAllReduce, bytes,
                                             CommDomain{8, true});
  EXPECT_LT(intra, inter);
}

TEST_F(InterconnectTest, RingBandwidthTermSaturates) {
  // 2(n-1)/n approaches 2: doubling the ring size far less than doubles the
  // time for large n.
  const int64_t bytes = kGiB;
  const double n8 = model_.CollectiveTime(CollectiveKind::kAllReduce, bytes,
                                          CommDomain{8, false});
  const double n4 = model_.CollectiveTime(CollectiveKind::kAllReduce, bytes,
                                          CommDomain{4, false});
  EXPECT_LT(n8 / n4, 1.2);
}

TEST_F(InterconnectTest, BroadcastMovesOneBuffer) {
  const CommDomain domain{4, false};
  const int64_t bytes = 512 * kMiB;
  const double t = model_.CollectiveTime(CollectiveKind::kBroadcast, bytes,
                                         domain);
  const double wire = static_cast<double>(bytes) / cluster_.nvlink_bandwidth;
  EXPECT_NEAR(t, wire + 3 * cluster_.nvlink_latency, wire * 0.01);
}

TEST(CollectiveKindTest, Names) {
  EXPECT_STREQ(CollectiveKindName(CollectiveKind::kAllReduce), "all-reduce");
  EXPECT_STREQ(CollectiveKindName(CollectiveKind::kAllGather), "all-gather");
  EXPECT_STREQ(CollectiveKindName(CollectiveKind::kReduceScatter),
               "reduce-scatter");
  EXPECT_STREQ(CollectiveKindName(CollectiveKind::kBroadcast), "broadcast");
}

}  // namespace
}  // namespace aceso
