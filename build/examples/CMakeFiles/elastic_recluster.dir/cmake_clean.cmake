file(REMOVE_RECURSE
  "CMakeFiles/elastic_recluster.dir/elastic_recluster.cpp.o"
  "CMakeFiles/elastic_recluster.dir/elastic_recluster.cpp.o.d"
  "elastic_recluster"
  "elastic_recluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elastic_recluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
