#include "src/ir/tensor_shape.h"

#include <gtest/gtest.h>

namespace aceso {
namespace {

TEST(TensorShapeTest, DefaultIsScalar) {
  TensorShape shape;
  EXPECT_EQ(shape.rank(), 0);
  EXPECT_EQ(shape.NumElements(), 1);
}

TEST(TensorShapeTest, InitializerList) {
  TensorShape shape{2048, 1024};
  EXPECT_EQ(shape.rank(), 2);
  EXPECT_EQ(shape.dim(0), 2048);
  EXPECT_EQ(shape.dim(1), 1024);
  EXPECT_EQ(shape.NumElements(), 2048 * 1024);
}

TEST(TensorShapeTest, VectorConstructor) {
  TensorShape shape(std::vector<int64_t>{3, 4, 5});
  EXPECT_EQ(shape.NumElements(), 60);
}

TEST(TensorShapeTest, LargeShapesDoNotOverflow) {
  TensorShape shape{51200, 1024, 64};
  EXPECT_EQ(shape.NumElements(), int64_t{51200} * 1024 * 64);
}

TEST(TensorShapeTest, ToString) {
  TensorShape shape{2, 3};
  EXPECT_EQ(shape.ToString(), "[2, 3]");
  EXPECT_EQ(TensorShape{}.ToString(), "[]");
}

TEST(TensorShapeTest, Equality) {
  EXPECT_EQ(TensorShape({1, 2}), TensorShape({1, 2}));
  EXPECT_FALSE(TensorShape({1, 2}) == TensorShape({2, 1}));
}

}  // namespace
}  // namespace aceso
