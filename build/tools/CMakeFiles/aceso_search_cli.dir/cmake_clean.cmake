file(REMOVE_RECURSE
  "CMakeFiles/aceso_search_cli.dir/aceso_search.cc.o"
  "CMakeFiles/aceso_search_cli.dir/aceso_search.cc.o.d"
  "aceso_search"
  "aceso_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aceso_search_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
