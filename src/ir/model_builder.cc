#include "src/ir/model_builder.h"

#include <algorithm>

#include "src/common/logging.h"

namespace aceso {
namespace {

// Largest power of two <= n (>= 1).
int FloorPow2(int64_t n) {
  int p = 1;
  while (static_cast<int64_t>(p) * 2 <= n) {
    p *= 2;
  }
  return p;
}

}  // namespace

void AppendTransformerLayer(OpGraph& graph, const std::string& prefix,
                            const TransformerLayerSpec& spec) {
  const int64_t e = BytesPerElement(graph.precision());
  const int64_t h = spec.hidden;
  const int64_t f = spec.ffn_hidden;
  const int64_t s = spec.seq_len;
  const int64_t heads = spec.num_heads;
  const int64_t act = s * h * e;  // one [seq, hidden] activation

  // Head count bounds tensor parallelism for attention; FFN width bounds it
  // for the MLP. Cap at 64 to keep profile databases small.
  const int attn_tp = std::min(FloorPow2(heads), 64);
  const int mlp_tp = std::min(FloorPow2(f / 64), 64);

  auto add_layernorm = [&](const std::string& name) {
    Operator op;
    op.name = prefix + name;
    op.kind = OpKind::kLayerNorm;
    op.fwd_flops = 8.0 * static_cast<double>(s * h);
    op.param_bytes = 2 * h * e;
    op.in_bytes = act;
    op.out_bytes = act;
    op.tp_class = TpClass::kReplicated;
    op.max_tp = 1;
    graph.AddOp(std::move(op));
  };

  auto add_self_attention = [&](const std::string& name_prefix, int64_t kv_seq,
                                OpKind qkv_kind, OpKind core_kind) {
    // QKV projection: [s, h] x [h, 3h].
    {
      Operator op;
      op.name = prefix + name_prefix + "qkv";
      op.kind = qkv_kind;
      op.fwd_flops = 2.0 * static_cast<double>(s) * h * 3 * h;
      op.param_bytes = 3 * h * h * e;
      op.in_bytes = act;
      op.out_bytes = 3 * act;
      op.tp_class = TpClass::kPartitioned;
      op.default_tp_dim = TpDim::kColumn;
      op.max_tp = attn_tp;
      graph.AddOp(std::move(op));
    }
    // Attention core: QK^T, softmax, AV. Splits across heads under tp.
    {
      Operator op;
      op.name = prefix + name_prefix + "core";
      op.kind = core_kind;
      op.fwd_flops = 4.0 * static_cast<double>(s) * kv_seq * h +
                     5.0 * static_cast<double>(s) * kv_seq * heads;
      op.param_bytes = 0;
      op.in_bytes = 3 * act;
      op.out_bytes = act;
      // Materialized attention scores: [heads, s, kv_seq].
      op.work_bytes = heads * s * kv_seq * e;
      op.tp_class = TpClass::kShardFollower;
      op.max_tp = attn_tp;
      graph.AddOp(std::move(op));
    }
    // Output projection: [s, h] x [h, h]; row-parallel (all-reduce in fwd).
    {
      Operator op;
      op.name = prefix + name_prefix + "out_proj";
      op.kind = OpKind::kAttnOutProj;
      op.fwd_flops = 2.0 * static_cast<double>(s) * h * h;
      op.param_bytes = h * h * e;
      op.in_bytes = act;
      op.out_bytes = act;
      op.tp_class = TpClass::kPartitioned;
      op.default_tp_dim = TpDim::kRow;
      op.max_tp = attn_tp;
      graph.AddOp(std::move(op));
    }
  };

  add_layernorm("ln1");
  add_self_attention("attn.", s, OpKind::kQkvProj, OpKind::kAttnCore);

  if (spec.cross_seq_len > 0) {
    add_layernorm("ln_cross");
    add_self_attention("xattn.", spec.cross_seq_len, OpKind::kCrossQkvProj,
                       OpKind::kCrossAttnCore);
  }

  add_layernorm("ln2");

  // MLP FC1: [s, h] x [h, f]; column-parallel.
  {
    Operator op;
    op.name = prefix + "fc1";
    op.kind = OpKind::kMlpFc1;
    op.fwd_flops = 2.0 * static_cast<double>(s) * h * f;
    op.param_bytes = h * f * e;
    op.in_bytes = act;
    op.out_bytes = s * f * e;
    op.tp_class = TpClass::kPartitioned;
    op.default_tp_dim = TpDim::kColumn;
    op.max_tp = mlp_tp;
    graph.AddOp(std::move(op));
  }
  // GeLU on the FFN activation.
  {
    Operator op;
    op.name = prefix + "gelu";
    op.kind = OpKind::kGelu;
    op.fwd_flops = 8.0 * static_cast<double>(s) * f;
    op.in_bytes = s * f * e;
    op.out_bytes = s * f * e;
    op.tp_class = TpClass::kShardFollower;
    op.max_tp = mlp_tp;
    graph.AddOp(std::move(op));
  }
  // MLP FC2: [s, f] x [f, h]; row-parallel.
  {
    Operator op;
    op.name = prefix + "fc2";
    op.kind = OpKind::kMlpFc2;
    op.fwd_flops = 2.0 * static_cast<double>(s) * f * h;
    op.param_bytes = f * h * e;
    op.in_bytes = s * f * e;
    op.out_bytes = act;
    op.tp_class = TpClass::kPartitioned;
    op.default_tp_dim = TpDim::kRow;
    op.max_tp = mlp_tp;
    graph.AddOp(std::move(op));
  }
}

void AppendEmbedding(OpGraph& graph, const std::string& prefix, int64_t vocab,
                     int64_t hidden, int64_t seq_len) {
  const int64_t e = BytesPerElement(graph.precision());
  Operator op;
  op.name = prefix + "embedding";
  op.kind = OpKind::kEmbedding;
  // Lookup is memory-bound; count the gather traffic as "flops" lightly.
  op.fwd_flops = 2.0 * static_cast<double>(seq_len) * hidden;
  op.param_bytes = vocab * hidden * e;
  op.in_bytes = seq_len * 8;  // token ids
  op.out_bytes = seq_len * hidden * e;
  op.tp_class = TpClass::kPartitioned;  // vocab-parallel embedding
  op.default_tp_dim = TpDim::kRow;
  op.max_tp = 64;
  graph.AddOp(std::move(op));
}

void AppendLmHead(OpGraph& graph, const std::string& prefix, int64_t vocab,
                  int64_t hidden, int64_t seq_len) {
  const int64_t e = BytesPerElement(graph.precision());
  {
    Operator op;
    op.name = prefix + "lm_head";
    op.kind = OpKind::kLmHead;
    op.fwd_flops = 2.0 * static_cast<double>(seq_len) * hidden * vocab;
    op.param_bytes = vocab * hidden * e;
    op.in_bytes = seq_len * hidden * e;
    op.out_bytes = seq_len * vocab * e;
    op.work_bytes = seq_len * vocab * e;
    op.tp_class = TpClass::kPartitioned;
    op.default_tp_dim = TpDim::kColumn;
    op.max_tp = 64;
    graph.AddOp(std::move(op));
  }
  {
    Operator op;
    op.name = prefix + "loss";
    op.kind = OpKind::kSoftmaxLoss;
    op.fwd_flops = 6.0 * static_cast<double>(seq_len) * vocab;
    op.in_bytes = seq_len * vocab * e;
    op.out_bytes = seq_len * 4;  // per-token loss
    op.tp_class = TpClass::kShardFollower;  // vocab-parallel softmax
    op.max_tp = 64;
    graph.AddOp(std::move(op));
  }
}

void AppendBottleneckBlock(OpGraph& graph, const std::string& prefix,
                           const BottleneckSpec& spec) {
  const int64_t e = BytesPerElement(graph.precision());
  const int64_t out_hw = spec.in_hw / spec.stride;
  const int mid_tp = std::min(FloorPow2(spec.bottleneck_channels), 32);
  const int out_tp = std::min(FloorPow2(spec.out_channels), 32);

  auto add_conv = [&](const std::string& name, int64_t cin, int64_t cout,
                      int64_t k, int64_t hw_in, int64_t hw_out, int max_tp,
                      TpDim dim) {
    Operator op;
    op.name = prefix + name;
    op.kind = OpKind::kConv2d;
    op.fwd_flops =
        2.0 * static_cast<double>(hw_out) * hw_out * cin * cout * k * k;
    op.param_bytes = cout * cin * k * k * e;
    op.in_bytes = hw_in * hw_in * cin * e;
    op.out_bytes = hw_out * hw_out * cout * e;
    // im2col-style workspace for k > 1 convolutions.
    op.work_bytes = k > 1 ? hw_out * hw_out * cin * k * k * e : 0;
    op.tp_class = TpClass::kPartitioned;
    op.default_tp_dim = dim;
    op.max_tp = max_tp;
    graph.AddOp(std::move(op));
  };

  auto add_bn_relu = [&](const std::string& name, int64_t channels,
                         int64_t hw, int max_tp) {
    {
      Operator op;
      op.name = prefix + name + ".bn";
      op.kind = OpKind::kBatchNorm;
      op.fwd_flops = 10.0 * static_cast<double>(hw) * hw * channels;
      op.param_bytes = 4 * channels * e;
      op.in_bytes = hw * hw * channels * e;
      op.out_bytes = hw * hw * channels * e;
      op.tp_class = TpClass::kShardFollower;  // per-channel stats
      op.max_tp = max_tp;
      graph.AddOp(std::move(op));
    }
    {
      Operator op;
      op.name = prefix + name + ".relu";
      op.kind = OpKind::kRelu;
      op.fwd_flops = static_cast<double>(hw) * hw * channels;
      op.in_bytes = hw * hw * channels * e;
      op.out_bytes = hw * hw * channels * e;
      op.tp_class = TpClass::kShardFollower;
      op.max_tp = max_tp;
      graph.AddOp(std::move(op));
    }
  };

  // 1x1 reduce (column over out-channels, so the following ops follow its
  // channel sharding).
  add_conv("conv1", spec.in_channels, spec.bottleneck_channels, 1, spec.in_hw,
           spec.in_hw, mid_tp, TpDim::kColumn);
  add_bn_relu("conv1", spec.bottleneck_channels, spec.in_hw, mid_tp);
  // 3x3 spatial conv (stays in the sharded channel domain: column again).
  add_conv("conv2", spec.bottleneck_channels, spec.bottleneck_channels, 3,
           spec.in_hw, out_hw, mid_tp, TpDim::kColumn);
  add_bn_relu("conv2", spec.bottleneck_channels, out_hw, mid_tp);
  // 1x1 expand, row-parallel (reduces over sharded in-channels).
  add_conv("conv3", spec.bottleneck_channels, spec.out_channels, 1, out_hw,
           out_hw, mid_tp, TpDim::kRow);
  add_bn_relu("conv3", spec.out_channels, out_hw, out_tp);
  {
    Operator op;
    op.name = prefix + "residual";
    op.kind = OpKind::kResidualAdd;
    op.fwd_flops = static_cast<double>(out_hw) * out_hw * spec.out_channels;
    op.in_bytes = out_hw * out_hw * spec.out_channels * e;
    op.out_bytes = out_hw * out_hw * spec.out_channels * e;
    // The projection shortcut (when shapes change) is folded into this op.
    if (spec.stride != 1 || spec.in_channels != spec.out_channels) {
      op.fwd_flops += 2.0 * static_cast<double>(out_hw) * out_hw *
                      spec.in_channels * spec.out_channels;
      op.param_bytes = spec.out_channels * spec.in_channels * e;
    }
    op.tp_class = TpClass::kShardFollower;
    op.max_tp = out_tp;
    graph.AddOp(std::move(op));
  }
}

void AppendConvStem(OpGraph& graph, const std::string& prefix,
                    int64_t in_channels, int64_t out_channels, int64_t in_hw) {
  const int64_t e = BytesPerElement(graph.precision());
  const int64_t hw1 = in_hw / 2;   // 7x7 stride-2 conv
  const int64_t hw2 = hw1 / 2;     // 3x3 stride-2 maxpool
  {
    Operator op;
    op.name = prefix + "stem.conv";
    op.kind = OpKind::kConv2d;
    op.fwd_flops =
        2.0 * static_cast<double>(hw1) * hw1 * in_channels * out_channels * 49;
    op.param_bytes = out_channels * in_channels * 49 * e;
    op.in_bytes = in_hw * in_hw * in_channels * e;
    op.out_bytes = hw1 * hw1 * out_channels * e;
    op.work_bytes = hw1 * hw1 * in_channels * 49 * e;
    op.tp_class = TpClass::kPartitioned;
    op.default_tp_dim = TpDim::kColumn;
    op.max_tp = 8;
    graph.AddOp(std::move(op));
  }
  {
    Operator op;
    op.name = prefix + "stem.pool";
    op.kind = OpKind::kMaxPool;
    op.fwd_flops = 9.0 * static_cast<double>(hw2) * hw2 * out_channels;
    op.in_bytes = hw1 * hw1 * out_channels * e;
    op.out_bytes = hw2 * hw2 * out_channels * e;
    op.tp_class = TpClass::kShardFollower;
    op.max_tp = 8;
    graph.AddOp(std::move(op));
  }
}

void AppendClassifierHead(OpGraph& graph, const std::string& prefix,
                          int64_t channels, int64_t hw, int64_t num_classes) {
  const int64_t e = BytesPerElement(graph.precision());
  {
    Operator op;
    op.name = prefix + "avgpool";
    op.kind = OpKind::kAvgPool;
    op.fwd_flops = static_cast<double>(hw) * hw * channels;
    op.in_bytes = hw * hw * channels * e;
    op.out_bytes = channels * e;
    op.tp_class = TpClass::kShardFollower;
    op.max_tp = 8;
    graph.AddOp(std::move(op));
  }
  {
    Operator op;
    op.name = prefix + "fc";
    op.kind = OpKind::kFullyConnected;
    op.fwd_flops = 2.0 * static_cast<double>(channels) * num_classes;
    op.param_bytes = channels * num_classes * e;
    op.in_bytes = channels * e;
    op.out_bytes = num_classes * e;
    op.tp_class = TpClass::kPartitioned;
    op.default_tp_dim = TpDim::kRow;
    op.max_tp = 8;
    graph.AddOp(std::move(op));
  }
  {
    Operator op;
    op.name = prefix + "loss";
    op.kind = OpKind::kSoftmaxLoss;
    op.fwd_flops = 6.0 * static_cast<double>(num_classes);
    op.in_bytes = num_classes * e;
    op.out_bytes = 4;
    op.tp_class = TpClass::kReplicated;
    op.max_tp = 1;
    graph.AddOp(std::move(op));
  }
}

}  // namespace aceso
