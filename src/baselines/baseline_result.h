// Shared result type for the baseline searchers (Megatron-LM grid search,
// Alpa-like two-level solver, plain dynamic programming).

#ifndef SRC_BASELINES_BASELINE_RESULT_H_
#define SRC_BASELINES_BASELINE_RESULT_H_

#include <cstdint>

#include "src/core/search.h"

namespace aceso {

struct BaselineResult {
  bool found = false;
  ScoredConfig best;

  // Configurations evaluated by the solver (Exp#4's exploration metric).
  int64_t configs_explored = 0;

  // Real wall-clock the solver spent.
  double search_seconds = 0.0;

  // Additional on-demand profiling/compilation time the real system would
  // pay per experiment (Alpa compiles and profiles XLA kernels during its
  // search, §5.1 Exp#2); zero for solvers driven purely by the shared
  // profiled database.
  double simulated_profile_seconds = 0.0;

  double TotalSearchSeconds() const {
    return search_seconds + simulated_profile_seconds;
  }
};

}  // namespace aceso

#endif  // SRC_BASELINES_BASELINE_RESULT_H_
