// Deterministic random number generation.
//
// Everything stochastic in Aceso (simulated measurement jitter, random-search
// baselines, workload generators) draws from Rng so that test and benchmark
// runs are bit-reproducible across platforms. The generator is xoshiro256**
// seeded through SplitMix64, which avoids the platform-dependent behaviour of
// std::default_random_engine and the slow seeding of std::mt19937_64.

#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace aceso {

// A small, fast, reproducible PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  // Re-seeds the generator deterministically from a single 64-bit value.
  void Seed(uint64_t seed);

  // Uniform 64-bit value.
  uint64_t NextU64();

  // Uniform in [0, n). Requires n > 0.
  uint64_t NextBelow(uint64_t n);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Gaussian with the given mean and standard deviation (Box–Muller).
  double NextGaussian(double mean, double stddev);

  // Returns true with probability p (clamped to [0,1]).
  bool NextBool(double p = 0.5);

 private:
  uint64_t state_[4];
  // Cached second Box–Muller variate.
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

// SplitMix64 step; also useful as a cheap integer mixer for hashing.
uint64_t SplitMix64(uint64_t& state);

// Stateless mix of a 64-bit value (finalizer of SplitMix64).
uint64_t MixU64(uint64_t value);

}  // namespace aceso

#endif  // SRC_COMMON_RNG_H_
