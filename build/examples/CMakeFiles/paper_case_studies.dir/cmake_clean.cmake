file(REMOVE_RECURSE
  "CMakeFiles/paper_case_studies.dir/paper_case_studies.cpp.o"
  "CMakeFiles/paper_case_studies.dir/paper_case_studies.cpp.o.d"
  "paper_case_studies"
  "paper_case_studies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paper_case_studies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
