file(REMOVE_RECURSE
  "libaceso_common.a"
)
