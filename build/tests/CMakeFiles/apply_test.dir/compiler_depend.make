# Empty compiler generated dependencies file for apply_test.
# This may be replaced when dependencies are built.
