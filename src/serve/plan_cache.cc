#include "src/serve/plan_cache.h"

#include <utility>

namespace aceso {
namespace serve {

std::optional<CachedPlan> PlanCache::Get(uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);  // refresh recency
  return it->second->plan;
}

void PlanCache::Put(uint64_t key, CachedPlan plan) {
  if (capacity_ == 0) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->plan = std::move(plan);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Entry{key, std::move(plan)});
  index_[key] = lru_.begin();
  ++inserts_;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  PlanCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.inserts = inserts_;
  s.evictions = evictions_;
  return s;
}

}  // namespace serve
}  // namespace aceso
