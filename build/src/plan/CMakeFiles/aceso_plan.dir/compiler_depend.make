# Empty compiler generated dependencies file for aceso_plan.
# This may be replaced when dependencies are built.
