file(REMOVE_RECURSE
  "libaceso_cost.a"
)
