#include "src/ir/models/model_zoo.h"

#include <gtest/gtest.h>

#include <cmath>

namespace aceso {
namespace {

// Every zoo model must land reasonably close to its advertised parameter
// count (paper Table 2 sizes).
class ZooSizeTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooSizeTest, ParamCountMatchesName) {
  const std::string name = GetParam();
  auto graph = models::BuildByName(name);
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  const size_t dash = name.rfind('-');
  const double advertised = std::atof(name.substr(dash + 1).c_str());
  const double actual = static_cast<double>(graph->TotalParamCount()) / 1e9;
  // Within 40% of the advertised size: the ladder hyper-parameters are
  // standard, but embeddings and heads shift small models.
  EXPECT_GT(actual, advertised * 0.6) << graph->Summary();
  EXPECT_LT(actual, advertised * 1.45) << graph->Summary();
}

INSTANTIATE_TEST_SUITE_P(AllModels, ZooSizeTest,
                         ::testing::ValuesIn(models::ZooNames()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-' || c == '.') {
                               c = '_';
                             }
                           }
                           return name;
                         });

TEST(ZooTest, Gpt3UsesPaperTrainingSetup) {
  const OpGraph g = models::Gpt3(1.3);
  EXPECT_EQ(g.precision(), Precision::kFp16);
  EXPECT_EQ(g.global_batch_size(), 1024);
}

TEST(ZooTest, WideResnetUsesFp32AndBatch1536) {
  const OpGraph g = models::WideResnet(0.5);
  EXPECT_EQ(g.precision(), Precision::kFp32);
  EXPECT_EQ(g.global_batch_size(), 1536);
}

TEST(ZooTest, GptSizesAreOrdered) {
  double prev = 0;
  for (double size : {0.35, 1.3, 2.6, 6.7, 13.0}) {
    const OpGraph g = models::Gpt3(size);
    const double params = static_cast<double>(g.TotalParamCount());
    EXPECT_GT(params, prev);
    prev = params;
  }
}

TEST(ZooTest, T5HasHeterogeneousStructure) {
  const OpGraph g = models::T5(0.77);
  // Both encoder ops (seq 2048) and decoder cross-attention ops exist.
  bool has_cross = false;
  for (const Operator& op : g.ops()) {
    if (op.kind == OpKind::kCrossAttnCore) {
      has_cross = true;
    }
  }
  EXPECT_TRUE(has_cross);
}

TEST(ZooTest, T5EncoderActivationsLargerThanDecoder) {
  const OpGraph g = models::T5(0.77);
  int64_t enc_act = 0;
  int64_t dec_act = 0;
  for (const Operator& op : g.ops()) {
    if (op.kind == OpKind::kGelu) {
      if (op.name.rfind("enc", 0) == 0) {
        enc_act = op.out_bytes;
      } else if (op.name.rfind("dec", 0) == 0) {
        dec_act = op.out_bytes;
      }
    }
  }
  EXPECT_EQ(enc_act, dec_act * 4);  // seq 2048 vs 512
}

TEST(ZooTest, DeepTransformerScalesByLayers) {
  const OpGraph g64 = models::DeepTransformer(64);
  const OpGraph g128 = models::DeepTransformer(128);
  EXPECT_EQ(g128.num_ops() - 3, 2 * (g64.num_ops() - 3));  // minus emb+head
}

TEST(ZooTest, DeepTransformer1KLayers) {
  const OpGraph g = models::DeepTransformer(1000);
  EXPECT_GT(g.num_ops(), 8000);
}

TEST(ZooTest, BuildByNameRejectsUnknown) {
  EXPECT_FALSE(models::BuildByName("gpt5-100t").ok());
  EXPECT_FALSE(models::BuildByName("gpt3-9.9b").ok());
  EXPECT_FALSE(models::BuildByName("").ok());
}

TEST(ZooTest, BuildByNameDeepnet) {
  auto g = models::BuildByName("deepnet-16");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->name(), "deepnet-16");
}

TEST(ZooTest, BertLadder) {
  double prev = 0;
  for (const double size : {0.34, 1.2, 3.9}) {
    const OpGraph g = models::Bert(size);
    const double params = static_cast<double>(g.TotalParamCount()) / 1e9;
    EXPECT_GT(params, prev);
    EXPECT_GT(params, size * 0.6) << g.Summary();
    EXPECT_LT(params, size * 1.6) << g.Summary();
    prev = params;
    // Encoder-only: no cross-attention ops.
    for (const Operator& op : g.ops()) {
      EXPECT_NE(op.kind, OpKind::kCrossAttnCore);
    }
  }
}

TEST(ZooTest, BuildByNameBert) {
  auto g = models::BuildByName("bert-1.2b");
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->name(), "bert-1.2b");
  EXPECT_FALSE(models::BuildByName("bert-99b").ok());
}

TEST(ZooTest, GpusForSizeIndexLadder) {
  EXPECT_EQ(models::GpusForSizeIndex(0), 1);
  EXPECT_EQ(models::GpusForSizeIndex(1), 4);
  EXPECT_EQ(models::GpusForSizeIndex(2), 8);
  EXPECT_EQ(models::GpusForSizeIndex(3), 16);
  EXPECT_EQ(models::GpusForSizeIndex(4), 32);
}

TEST(ZooTest, SummaryContainsName) {
  const OpGraph g = models::Gpt3(0.35);
  EXPECT_NE(g.Summary().find("gpt3-0.35b"), std::string::npos);
}

}  // namespace
}  // namespace aceso
