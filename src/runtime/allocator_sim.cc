#include "src/runtime/allocator_sim.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/units.h"

namespace aceso {

CachingAllocatorSim::CachingAllocatorSim(int64_t capacity)
    : capacity_(capacity) {}

int64_t CachingAllocatorSim::RoundSize(int64_t bytes) {
  return RoundUpAllocSize(bytes);
}

void CachingAllocatorSim::InsertFree(int64_t addr, int64_t size) {
  free_by_addr_.emplace(addr, size);
  free_by_size_.emplace(size, addr);
}

int64_t CachingAllocatorSim::TakeSpace(int64_t size) {
  // Best fit from the free list, splitting oversized blocks.
  auto it = free_by_size_.lower_bound(size);
  if (it != free_by_size_.end()) {
    const int64_t block_size = it->first;
    const int64_t addr = it->second;
    free_by_size_.erase(it);
    free_by_addr_.erase(addr);
    const int64_t remainder = block_size - size;
    if (remainder >= 512) {
      InsertFree(addr + size, remainder);
    }
    return addr;
  }
  // Grow the reserved address space.
  if (brk_ + size > capacity_) {
    return -1;
  }
  const int64_t addr = brk_;
  brk_ += size;
  peak_reserved_ = std::max(peak_reserved_, brk_);
  return addr;
}

void CachingAllocatorSim::ReleaseCachedMemory() {
  // Model of empty_cache(): unused segments go back to the device. The
  // simulation compacts live blocks into a fresh address space, which
  // slightly idealizes segment reuse but preserves the reserved-bytes
  // accounting that matters for OOM behaviour.
  free_by_addr_.clear();
  free_by_size_.clear();
  int64_t addr = 0;
  for (auto& [handle, block] : live_) {
    block.addr = addr;
    addr += block.size;
  }
  brk_ = addr;
}

int64_t CachingAllocatorSim::Alloc(int64_t bytes) {
  const int64_t size = RoundSize(bytes);
  int64_t addr = TakeSpace(size);
  if (addr < 0) {
    ReleaseCachedMemory();
    addr = TakeSpace(size);
  }
  if (addr < 0) {
    oom_ = true;
    return -1;
  }
  const int64_t handle = next_handle_++;
  live_.emplace(handle, LiveBlock{addr, size});
  allocated_ += size;
  peak_allocated_ = std::max(peak_allocated_, allocated_);
  return handle;
}

void CachingAllocatorSim::Free(int64_t handle) {
  if (handle < 0) {
    return;
  }
  auto it = live_.find(handle);
  ACESO_CHECK(it != live_.end()) << "double free of block " << handle;
  int64_t addr = it->second.addr;
  int64_t size = it->second.size;
  allocated_ -= size;
  live_.erase(it);

  // Coalesce with the free neighbour on each side.
  auto next = free_by_addr_.lower_bound(addr);
  if (next != free_by_addr_.end() && next->first == addr + size) {
    size += next->second;
    auto range = free_by_size_.equal_range(next->second);
    for (auto s = range.first; s != range.second; ++s) {
      if (s->second == next->first) {
        free_by_size_.erase(s);
        break;
      }
    }
    free_by_addr_.erase(next);
  }
  if (!free_by_addr_.empty()) {
    auto prev = free_by_addr_.lower_bound(addr);
    if (prev != free_by_addr_.begin()) {
      --prev;
      if (prev->first + prev->second == addr) {
        addr = prev->first;
        size += prev->second;
        auto range = free_by_size_.equal_range(prev->second);
        for (auto s = range.first; s != range.second; ++s) {
          if (s->second == prev->first) {
            free_by_size_.erase(s);
            break;
          }
        }
        free_by_addr_.erase(prev);
      }
    }
  }
  InsertFree(addr, size);
}

}  // namespace aceso
