file(REMOVE_RECURSE
  "libaceso_core.a"
)
