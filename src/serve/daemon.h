// The planning daemon (DESIGN.md §14): PlanService behind the loopback
// HTTP transport. Routes:
//
//   POST /plan          — one plan request (plan_protocol.h). With
//                         "stream": true the response is a close-delimited
//                         NDJSON stream: telemetry/convergence event lines
//                         while the search runs, then the response envelope
//                         as the final line. Otherwise one JSON envelope,
//                         Content-Length framed.
//   POST /profile/save  — persist every materialized profile database to the
//                         snapshot directory (requires --snapshot-dir).
//   GET  /stats         — ServeStats + plan-cache counters as JSON.
//   GET  /healthz       — {"status":"ok"} liveness probe.
//
// Error statuses map onto HTTP: InvalidArgument→400, NotFound→404,
// FailedPrecondition→412, ResourceExhausted→429 (admission rejection),
// everything else→500. The body is always a JSON error envelope.

#ifndef SRC_SERVE_DAEMON_H_
#define SRC_SERVE_DAEMON_H_

#include <string>

#include "src/common/status.h"
#include "src/serve/http.h"
#include "src/serve/service.h"

namespace aceso {
namespace serve {

// The HTTP status code an error Status maps to (200 for ok).
int HttpStatusForStatus(const Status& status);

class PlanDaemon {
 public:
  explicit PlanDaemon(ServeOptions options = {});

  PlanDaemon(const PlanDaemon&) = delete;
  PlanDaemon& operator=(const PlanDaemon&) = delete;

  // Binds `host:port` (port 0 = ephemeral, read back with port()) and
  // starts serving. Returns without blocking; Stop() (or destruction)
  // drains in-flight connections.
  Status Start(const std::string& host, int port);
  void Stop();

  int port() const { return server_.port(); }
  PlanService& service() { return service_; }
  HttpServerStats http_stats() const { return server_.stats(); }

  // The /stats body: ServeStats flat, io-layer counters nested under
  // "http".
  std::string StatsJson() const;

 private:
  void Handle(const HttpRequest& request, HttpResponseWriter& writer);
  void HandlePlan(const HttpRequest& request, HttpResponseWriter& writer);

  PlanService service_;
  HttpServer server_;
};

}  // namespace serve
}  // namespace aceso

#endif  // SRC_SERVE_DAEMON_H_
