// The operator abstraction.
//
// Aceso treats a DNN model as a chain of operators, each carrying the
// per-sample quantities the cost model needs (forward FLOPs, parameter bytes,
// input/output activation bytes, transient workspace) plus its tensor-
// parallel partitioning options.
//
// Tensor-parallel semantics follow the Megatron convention. An op with tp
// degree t and partition dimension d behaves as:
//
//   kColumn ("split output features" / out-channels):
//     compute/device = flops/t, params/device = params/t,
//     stored output activation/device = out_bytes/t,
//     per-microbatch tp communication = all-reduce of the *input gradient*
//     (in_bytes) in the backward pass.
//   kRow ("split input features" / in-channels):
//     compute/device = flops/t, params/device = params/t,
//     output is a partial sum -> forward all-reduce of out_bytes; stored
//     output activation is replicated (out_bytes per device).
//
// Ops that cannot be weight-partitioned (layernorm, gelu, residual adds,
// pooling) run replicated under tp: compute is split across the sequence /
// spatial dimension instead, with no weight sharding and no collective.

#ifndef SRC_IR_OPERATOR_H_
#define SRC_IR_OPERATOR_H_

#include <cstdint>
#include <string>

#include "src/common/hash.h"

namespace aceso {

enum class OpKind {
  // Transformer family.
  kEmbedding,
  kLayerNorm,
  kQkvProj,
  kAttnCore,     // QK^T, softmax, AV
  kAttnOutProj,
  kCrossQkvProj, // decoder cross-attention projections
  kCrossAttnCore,
  kMlpFc1,
  kGelu,
  kMlpFc2,
  kLmHead,
  kSoftmaxLoss,
  // Convolutional family.
  kConv2d,
  kBatchNorm,
  kRelu,
  kMaxPool,
  kAvgPool,
  kFullyConnected,
  kResidualAdd,
};

const char* OpKindName(OpKind kind);

// Tensor-parallel partition dimension (see file comment).
enum class TpDim {
  kNone,    // op not weight-partitionable
  kColumn,  // split output features / out-channels
  kRow,     // split input features / in-channels
};

const char* TpDimName(TpDim dim);

// How an operator behaves inside a tensor-parallel group of degree t.
enum class TpClass {
  // Weights shard t ways (matmul, conv): compute and params divide by t;
  // communication depends on the partition dimension (see file comment).
  kPartitioned,
  // No weights; operates elementwise/per-head on whatever sharding the input
  // has (gelu, relu, attention core, residual add): compute divides by t when
  // the input is sharded, no collective of its own.
  kShardFollower,
  // Requires a replicated input and computes redundantly on every tp rank
  // (layernorm, softmax loss): compute does NOT divide by t; feeding it a
  // sharded activation costs an all-gather.
  kReplicated,
};

const char* TpClassName(TpClass tp_class);

struct Operator {
  std::string name;
  OpKind kind = OpKind::kLayerNorm;

  // Per-sample forward FLOPs. Backward is modelled as 2x forward.
  double fwd_flops = 0.0;

  // Parameter bytes (weights). Optimizer state is derived in the cost model.
  int64_t param_bytes = 0;

  // Activation bytes per sample: the op's input and output tensors.
  int64_t in_bytes = 0;
  int64_t out_bytes = 0;

  // Transient workspace per sample (attention score matrices, im2col
  // buffers). Feeds the allocator-reserve overestimate (§3.3).
  int64_t work_bytes = 0;

  // Largest tensor-parallel degree this op supports (1 = unpartitionable
  // weights). Powers of two only, matching §5.1.
  int max_tp = 1;

  // Tensor-parallel behaviour class (see TpClass).
  TpClass tp_class = TpClass::kReplicated;

  // Initial partition dimension (§4.2: Megatron-style defaults; the
  // fine-tuning pass may flip it per op).
  TpDim default_tp_dim = TpDim::kNone;

  // Stable identity for the profiling database: ops with equal signatures
  // share profile entries (all GPT-3 decoder layers hit the same rows).
  uint64_t Signature() const;
};

}  // namespace aceso

#endif  // SRC_IR_OPERATOR_H_
