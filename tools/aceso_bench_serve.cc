// aceso_bench_serve: planning-daemon serving benchmark for CI.
//
//   aceso_bench_serve [--out BENCH_serve.json] [--quick]
//                     [--model gpt3-0.35b] [--gpus 4] [--max-evals 60]
//
// Measures end-to-end request latency through the daemon's serving paths
// over real loopback HTTP:
//
//   - cold:         a fresh daemon, empty profile database — the first
//                   request pays profiling plus the search;
//   - warm_profile: a daemon warm-started from a saved profile snapshot
//                   (ProfileDatabase::Load), same requests — the search runs
//                   but every profile lookup hits, zero measurements;
//   - cache_hit:    a repeated identical request, swept across concurrency
//                   {1, 8, 64} × connection mode {close, keep-alive}, plus a
//                   pipelined keep-alive run at 64 — served straight from
//                   the PlanCache's pre-serialized payload, no search and no
//                   re-serialization;
//   - warm_miss:    perturbed requests against the warm daemon at a fifth
//                   of the search budget — every one misses the exact cache,
//                   probes the similarity index, and re-searches seeded by
//                   the adapted neighbor plan (DESIGN.md §17).
//
// Requests use a deterministic evaluation budget (max_evaluations), so the
// cold and warm phases run bit-identical searches over identical profile
// keys; the report asserts the warm phase's profile-miss delta is zero,
// every cache-hit request actually hit, the zero-serialization wire bytes
// are bit-identical to full per-request serialization, and the keep-alive
// cache-hit throughput clears 10x the PR-7 thread-per-connection number.
//
// The JSON is google-benchmark format (context + benchmarks[], real_time in
// nanoseconds per request) so tools/check_bench_regression.py can diff it
// against bench/baselines/aceso_bench_serve_baseline.json; CI uploads it as
// the BENCH_serve artifact next to BENCH_search and BENCH_perf_model.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/aceso.h"
#include "tools/cli_flags.h"

namespace aceso {
namespace {

// PR-7 thread-per-connection cache-hit throughput on the CI box (BENCH_serve
// history, sequential loopback requests). The reactor's acceptance bar is
// 10x this at concurrency 64 with keep-alive.
constexpr double kPr7CacheHitReqPerSec = 12200.0;
constexpr double kSpeedupBar = 10.0;

struct Args {
  std::string out = "BENCH_serve.json";
  std::string model = "gpt3-0.35b";
  int gpus = 4;
  int64_t max_evals = 60;
  bool quick = false;
};

bool ParseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args.out = v;
    } else if (flag == "--model") {
      const char* v = next();
      if (v == nullptr) return false;
      args.model = v;
    } else if (flag == "--gpus") {
      if (!cli::ParsePositiveInt("--gpus", next(), &args.gpus)) return false;
    } else if (flag == "--max-evals") {
      uint64_t evals = 0;
      if (!cli::ParseUint64("--max-evals", next(), &evals)) return false;
      args.max_evals = static_cast<int64_t>(evals);
    } else if (flag == "--quick") {
      args.quick = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string RequestBody(const Args& args, uint64_t seed,
                        const std::string& request_id = "",
                        int64_t max_evals_override = -1) {
  std::string body = "{\"model\":\"" + JsonEscape(args.model) + "\"";
  body += ",\"gpus\":" + std::to_string(args.gpus);
  body += ",\"budget_seconds\":600";
  body += ",\"max_evaluations\":" +
          std::to_string(max_evals_override > 0 ? max_evals_override
                                                : args.max_evals);
  body += ",\"seed\":" + std::to_string(seed);
  if (!request_id.empty()) {
    body += ",\"request_id\":\"" + JsonEscape(request_id) + "\"";
  }
  body += ",\"client\":\"aceso_bench_serve\"}";
  return body;
}

struct PhaseReport {
  std::string name;  // benchmark name in the JSON, e.g. serve/cache_hit/...
  int requests = 0;
  int failures = 0;
  double total_seconds = 0.0;
  double req_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double Percentile(std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  const size_t index = std::min(
      sorted_ms.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_ms.size() - 1)));
  return sorted_ms[index];
}

struct WorkerStats {
  int requests = 0;
  int failures = 0;
  std::vector<double> latencies_ms;
};

// Spawns `concurrency` threads running `worker(per_thread, &stats)` behind a
// start barrier, aggregates their counts, and derives the phase rates from
// wall time across all of them.
template <typename Worker>
PhaseReport RunConcurrent(const std::string& name, int per_thread,
                          int concurrency, Worker worker) {
  PhaseReport report;
  report.name = name;
  std::vector<WorkerStats> stats(static_cast<size_t>(concurrency));
  std::vector<std::thread> threads;
  std::atomic<bool> go{false};
  for (int i = 0; i < concurrency; ++i) {
    threads.emplace_back([&, i] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      worker(per_thread, &stats[static_cast<size_t>(i)]);
    });
  }
  const double start = NowSeconds();
  go.store(true, std::memory_order_release);
  for (auto& thread : threads) thread.join();
  report.total_seconds = NowSeconds() - start;

  std::vector<double> latencies_ms;
  for (const WorkerStats& s : stats) {
    report.requests += s.requests;
    report.failures += s.failures;
    latencies_ms.insert(latencies_ms.end(), s.latencies_ms.begin(),
                        s.latencies_ms.end());
  }
  report.req_per_sec =
      report.total_seconds > 0
          ? static_cast<double>(report.requests) / report.total_seconds
          : 0.0;
  std::sort(latencies_ms.begin(), latencies_ms.end());
  report.p50_ms = Percentile(latencies_ms, 0.5);
  report.p99_ms = Percentile(latencies_ms, 0.99);
  return report;
}

// ---- raw pipelined client ----

int ConnectLoopback(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool SendAllRaw(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Counts complete Content-Length framed responses in `buf` starting at
// *pos, advancing *pos past each and bumping *ok for " 200 " statuses.
int ConsumeFramedResponses(const std::string& buf, size_t* pos, int* ok) {
  int count = 0;
  while (true) {
    const size_t head_end = buf.find("\r\n\r\n", *pos);
    if (head_end == std::string::npos) return count;
    const size_t cl = buf.find("Content-Length: ", *pos);
    if (cl == std::string::npos || cl > head_end) return count;
    const size_t body_len =
        static_cast<size_t>(std::atoll(buf.c_str() + cl + 16));
    const size_t next = head_end + 4 + body_len;
    if (buf.size() < next) return count;
    if (buf.compare(*pos, 13, "HTTP/1.1 200 ") == 0) ++(*ok);
    *pos = next;
    ++count;
  }
}

// Sends requests in pipelined batches of `batch` on one keep-alive
// connection and reads the in-order responses. Latency is recorded per
// batch round trip, divided by the batch size.
void PipelinedWorker(int port, const std::string& wire_request, int total,
                     int batch, WorkerStats* stats) {
  const int fd = ConnectLoopback(port);
  if (fd < 0) {
    stats->failures = total;
    stats->requests = total;
    return;
  }
  std::string rbuf;
  size_t rpos = 0;
  char chunk[65536];
  int remaining = total;
  while (remaining > 0) {
    const int n_batch = std::min(batch, remaining);
    std::string wire;
    wire.reserve(wire_request.size() * static_cast<size_t>(n_batch));
    for (int i = 0; i < n_batch; ++i) wire += wire_request;
    const double t0 = NowSeconds();
    if (!SendAllRaw(fd, wire)) break;
    int got = 0;
    int ok = 0;
    while (got < n_batch) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        break;
      }
      rbuf.append(chunk, static_cast<size_t>(n));
      got += ConsumeFramedResponses(rbuf, &rpos, &ok);
    }
    const double t1 = NowSeconds();
    if (got < n_batch) break;
    stats->requests += n_batch;
    stats->failures += n_batch - ok;
    stats->latencies_ms.push_back(1e3 * (t1 - t0) / n_batch);
    remaining -= n_batch;
    if (rpos == rbuf.size()) {
      rbuf.clear();
      rpos = 0;
    }
  }
  stats->failures += remaining;  // anything we never completed
  stats->requests += remaining;
  ::close(fd);
}

// ---- the three client modes over /plan ----

PhaseReport RunClosed(const std::string& name, int port,
                      const std::string& body, int per_thread,
                      int concurrency) {
  return RunConcurrent(
      name, per_thread, concurrency,
      [port, &body](int n, WorkerStats* stats) {
        for (int i = 0; i < n; ++i) {
          const double t0 = NowSeconds();
          auto response =
              serve::HttpCall("127.0.0.1", port, "POST", "/plan", body);
          const double t1 = NowSeconds();
          ++stats->requests;
          if (!response.ok() || response->status_code != 200) {
            ++stats->failures;
            continue;
          }
          stats->latencies_ms.push_back(1e3 * (t1 - t0));
        }
      });
}

PhaseReport RunKeepAlive(const std::string& name, int port,
                         const std::string& body, int per_thread,
                         int concurrency) {
  return RunConcurrent(
      name, per_thread, concurrency,
      [port, &body](int n, WorkerStats* stats) {
        serve::HttpClient client("127.0.0.1", port);
        for (int i = 0; i < n; ++i) {
          const double t0 = NowSeconds();
          auto response = client.Call("POST", "/plan", body);
          const double t1 = NowSeconds();
          ++stats->requests;
          if (!response.ok() || response->status_code != 200) {
            ++stats->failures;
            continue;
          }
          stats->latencies_ms.push_back(1e3 * (t1 - t0));
        }
      });
}

PhaseReport RunPipelined(const std::string& name, int port,
                         const std::string& body, int per_thread,
                         int concurrency, int batch) {
  std::string wire_request =
      "POST /plan HTTP/1.1\r\nHost: 127.0.0.1\r\n"
      "Content-Type: application/json\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  return RunConcurrent(name, per_thread, concurrency,
                       [port, wire_request, batch](int n, WorkerStats* stats) {
                         PipelinedWorker(port, wire_request, n, batch, stats);
                       });
}

void WriteJson(const Args& args, const std::vector<PhaseReport>& phases) {
  std::FILE* f = std::fopen(args.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", args.out.c_str());
    std::exit(1);
  }
  // google-benchmark report shape: check_bench_regression.py reads
  // benchmarks[].name / real_time / run_type.
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"context\": {\n");
  std::fprintf(f, "    \"executable\": \"aceso_bench_serve\",\n");
  std::fprintf(f, "    \"model\": \"%s\",\n", JsonEscape(args.model).c_str());
  std::fprintf(f, "    \"gpus\": %d,\n", args.gpus);
  std::fprintf(f, "    \"max_evaluations\": %lld,\n",
               static_cast<long long>(args.max_evals));
  std::fprintf(f, "    \"quick\": %s\n", args.quick ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (size_t i = 0; i < phases.size(); ++i) {
    const PhaseReport& p = phases[i];
    const double per_request_ns =
        p.requests > 0
            ? 1e9 * p.total_seconds / static_cast<double>(p.requests)
            : 0.0;
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", p.name.c_str());
    std::fprintf(f, "      \"run_type\": \"iteration\",\n");
    std::fprintf(f, "      \"real_time\": %.1f,\n", per_request_ns);
    std::fprintf(f, "      \"time_unit\": \"ns\",\n");
    std::fprintf(f, "      \"requests\": %d,\n", p.requests);
    std::fprintf(f, "      \"failures\": %d,\n", p.failures);
    std::fprintf(f, "      \"req_per_sec\": %.2f,\n", p.req_per_sec);
    std::fprintf(f, "      \"p50_ms\": %.4f,\n", p.p50_ms);
    std::fprintf(f, "      \"p99_ms\": %.4f\n", p.p99_ms);
    std::fprintf(f, "    }%s\n", i + 1 < phases.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: %s [--out FILE] [--model NAME] [--gpus N] "
                 "[--max-evals N] [--quick]\n",
                 argv[0]);
    return 2;
  }
  const int search_samples = args.quick ? 3 : 8;
  // Per-thread request counts for the cache-hit sweep. Close-per-request
  // burns a connection per request, so it gets a smaller count to keep the
  // ephemeral-port churn bounded.
  const int closed_per_thread = args.quick ? 50 : 150;
  const int keepalive_per_thread = args.quick ? 300 : 1000;
  const int pipelined_per_thread = args.quick ? 8000 : 20000;
  const int pipeline_batch = 64;

  // The same deterministic request set for the cold and warm phases: with a
  // fixed max_evaluations budget the warm searches replay the cold ones
  // bit-identically, touching exactly the same profile keys.
  std::vector<std::string> search_bodies;
  for (int i = 0; i < search_samples; ++i) {
    search_bodies.push_back(
        RequestBody(args, 1000 + static_cast<uint64_t>(i)));
  }

  const std::string snapshot_dir = "bench_serve_snapshots";
  std::vector<PhaseReport> phases;

  auto run_sequential = [&](const std::string& name, int port,
                            const std::vector<std::string>& bodies) {
    PhaseReport report;
    report.name = name;
    std::vector<double> latencies_ms;
    const double start = NowSeconds();
    for (const std::string& body : bodies) {
      const double t0 = NowSeconds();
      auto response =
          serve::HttpCall("127.0.0.1", port, "POST", "/plan", body);
      const double t1 = NowSeconds();
      ++report.requests;
      if (!response.ok() || response->status_code != 200) {
        ++report.failures;
        continue;
      }
      latencies_ms.push_back(1e3 * (t1 - t0));
    }
    report.total_seconds = NowSeconds() - start;
    report.req_per_sec =
        report.total_seconds > 0
            ? static_cast<double>(report.requests) / report.total_seconds
            : 0.0;
    std::sort(latencies_ms.begin(), latencies_ms.end());
    report.p50_ms = Percentile(latencies_ms, 0.5);
    report.p99_ms = Percentile(latencies_ms, 0.99);
    return report;
  };

  // ---- cold: fresh daemon, empty profile database ----
  int64_t cold_misses = 0;
  {
    serve::PlanDaemon daemon(serve::ServeOptions{});
    const Status started = daemon.Start("127.0.0.1", 0);
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    phases.push_back(
        run_sequential("serve/cold", daemon.port(), search_bodies));
    cold_misses = daemon.service().stats().profile_misses;
    const Status saved = daemon.service().SaveProfiles(snapshot_dir);
    if (!saved.ok()) {
      std::fprintf(stderr, "profile save failed: %s\n",
                   saved.ToString().c_str());
      return 1;
    }
    daemon.Stop();
  }

  // ---- warm_profile + cache_hit sweep: warm-started daemon ----
  int64_t warm_misses = 0;
  int64_t cache_hits = 0;
  int64_t serializations_skipped = 0;
  int64_t hit_requests = 0;
  int64_t warm_miss_requests = 0;
  int64_t neighbor_seeded = 0;
  int64_t seed_adopted = 0;
  int64_t seed_fallbacks = 0;
  std::string identity_error;
  {
    serve::ServeOptions options;
    options.snapshot_dir = snapshot_dir;
    serve::PlanDaemon daemon(options);
    const Status started = daemon.Start("127.0.0.1", 0);
    if (!started.ok()) {
      std::fprintf(stderr, "%s\n", started.ToString().c_str());
      return 1;
    }
    phases.push_back(
        run_sequential("serve/warm_profile", daemon.port(), search_bodies));
    warm_misses = daemon.service().stats().profile_misses;

    const std::string hit_body = search_bodies[0];
    // Concurrency = in-flight requests. For the pipelined config that is
    // connections x pipeline depth: 1 connection x batch 64 = 64 in
    // flight, which reaches the same concurrency as 64 keep-alive clients
    // without 64 client threads fighting the event loop for cores.
    struct SweepConfig {
      const char* name;
      int threads;
      bool keepalive;
      bool pipelined;
    };
    const SweepConfig sweep[] = {
        {"serve/cache_hit/c1/close", 1, false, false},
        {"serve/cache_hit/c1/keepalive", 1, true, false},
        {"serve/cache_hit/c8/close", 8, false, false},
        {"serve/cache_hit/c8/keepalive", 8, true, false},
        {"serve/cache_hit/c64/close", 64, false, false},
        {"serve/cache_hit/c64/keepalive", 64, true, false},
        {"serve/cache_hit/c64/pipelined", 1, true, true},
    };
    for (const SweepConfig& config : sweep) {
      PhaseReport report;
      if (config.pipelined) {
        report = RunPipelined(config.name, daemon.port(), hit_body,
                              pipelined_per_thread, config.threads,
                              pipeline_batch);
      } else if (config.keepalive) {
        report = RunKeepAlive(config.name, daemon.port(), hit_body,
                              keepalive_per_thread, config.threads);
      } else {
        report = RunClosed(config.name, daemon.port(), hit_body,
                           closed_per_thread, config.threads);
      }
      hit_requests += report.requests - report.failures;
      phases.push_back(report);
    }
    cache_hits = daemon.service().plan_cache_stats().hits;
    serializations_skipped = daemon.service().stats().serializations_skipped;

    // ---- bit-identity: the zero-serialization wire bytes must equal a
    // full per-request serialization of the same answer. The in-process
    // Handle returns the response parts; reassembling them through
    // BuildResponseEnvelope is exactly what the old serializing server
    // sent. (Runs after the stats snapshot so it does not perturb them.)
    {
      const std::string id = "bench-identity-1";
      auto wire = serve::HttpCall("127.0.0.1", daemon.port(), "POST", "/plan",
                                  RequestBody(args, 1000, id));
      serve::PlanRequest request;
      request.model = args.model;
      request.gpus = args.gpus;
      request.budget_seconds = 600;
      request.max_evaluations = args.max_evals;
      request.seed = 1000;
      request.client = "aceso_bench_serve";
      request.request_id = id;
      const serve::PlanService::Response reference =
          daemon.service().Handle(request);
      if (!wire.ok() || wire->status_code != 200) {
        identity_error = "identity probe request failed";
      } else if (reference.body_mid == nullptr) {
        identity_error = "identity probe was not served from the cache";
      } else {
        const std::string serialized = serve::BuildResponseEnvelope(
            id, reference.cache, *reference.body_mid);
        if (wire->body != serialized) {
          identity_error =
              "wire bytes differ from per-request serialization (" +
              std::to_string(wire->body.size()) + " vs " +
              std::to_string(serialized.size()) + " bytes)";
        }
      }
    }

    // ---- warm_miss: perturbed requests, neighbor-seeded re-search ----
    // Each body misses the exact cache (fresh seed, reduced budget) but
    // sits in the same model family as everything planned above, so the
    // miss path probes the similarity index, adapts the nearest cached
    // plan, and searches from it at a fifth of the budget. Counter deltas
    // verify every request actually took the seeded path.
    const serve::ServeStats before_miss = daemon.service().stats();
    std::vector<std::string> miss_bodies;
    for (int i = 0; i < search_samples; ++i) {
      miss_bodies.push_back(RequestBody(args, 2000 + static_cast<uint64_t>(i),
                                        "", std::max<int64_t>(
                                                1, args.max_evals / 5)));
    }
    phases.push_back(
        run_sequential("serve/warm_miss", daemon.port(), miss_bodies));
    const serve::ServeStats after_miss = daemon.service().stats();
    warm_miss_requests = static_cast<int64_t>(miss_bodies.size());
    neighbor_seeded = after_miss.neighbor_seeded - before_miss.neighbor_seeded;
    seed_adopted = after_miss.seed_adopted - before_miss.seed_adopted;
    seed_fallbacks = after_miss.seed_fallbacks - before_miss.seed_fallbacks;
    daemon.Stop();
  }

  for (const PhaseReport& p : phases) {
    std::printf("%-28s %6d requests in %7.3fs  %10.1f req/s  "
                "p50 %9.4fms  p99 %9.4fms%s\n",
                p.name.c_str(), p.requests, p.total_seconds, p.req_per_sec,
                p.p50_ms, p.p99_ms,
                p.failures > 0 ? "  ** FAILURES **" : "");
  }
  std::printf("profile misses: cold %lld, warm %lld; cache hits %lld for "
              "%lld hit requests; serializations skipped %lld\n",
              static_cast<long long>(cold_misses),
              static_cast<long long>(warm_misses),
              static_cast<long long>(cache_hits),
              static_cast<long long>(hit_requests),
              static_cast<long long>(serializations_skipped));
  std::printf("warm misses: %lld requests, %lld neighbor-seeded "
              "(%lld adopted, %lld fallbacks)\n",
              static_cast<long long>(warm_miss_requests),
              static_cast<long long>(neighbor_seeded),
              static_cast<long long>(seed_adopted),
              static_cast<long long>(seed_fallbacks));

  WriteJson(args, phases);
  std::printf("wrote %s\n", args.out.c_str());

  // ---- acceptance bars (DESIGN.md §14, §16) ----
  for (const PhaseReport& p : phases) {
    if (p.failures > 0) {
      std::fprintf(stderr, "FAIL: %d failed requests on %s\n", p.failures,
                   p.name.c_str());
      return 1;
    }
  }
  if (warm_misses != 0) {
    std::fprintf(stderr,
                 "FAIL: warm-started daemon took %lld profile misses "
                 "(expected 0)\n",
                 static_cast<long long>(warm_misses));
    return 1;
  }
  // Every successful cache-hit request hit the plan cache, and each hit was
  // served without re-serializing the payload.
  if (cache_hits < hit_requests) {
    std::fprintf(stderr, "FAIL: %lld plan-cache hits for %lld hit requests\n",
                 static_cast<long long>(cache_hits),
                 static_cast<long long>(hit_requests));
    return 1;
  }
  if (serializations_skipped < hit_requests) {
    std::fprintf(stderr,
                 "FAIL: only %lld of %lld cache hits skipped serialization\n",
                 static_cast<long long>(serializations_skipped),
                 static_cast<long long>(hit_requests));
    return 1;
  }
  if (!identity_error.empty()) {
    std::fprintf(stderr, "FAIL: %s\n", identity_error.c_str());
    return 1;
  }
  // Every warm miss must have taken the neighbor-seeded path (DESIGN.md
  // §17), and each seeding must have resolved to adopted-or-fallback.
  if (neighbor_seeded != warm_miss_requests) {
    std::fprintf(stderr,
                 "FAIL: %lld of %lld warm misses were neighbor-seeded\n",
                 static_cast<long long>(neighbor_seeded),
                 static_cast<long long>(warm_miss_requests));
    return 1;
  }
  if (seed_adopted + seed_fallbacks != neighbor_seeded) {
    std::fprintf(stderr,
                 "FAIL: seeded verdicts do not add up: %lld adopted + %lld "
                 "fallbacks != %lld seeded\n",
                 static_cast<long long>(seed_adopted),
                 static_cast<long long>(seed_fallbacks),
                 static_cast<long long>(neighbor_seeded));
    return 1;
  }
  // Seeding is what makes the reduced-budget miss serviceable: a fifth of
  // the search budget must show up as a faster median than the full-budget
  // warm search path.
  double warm_profile_p50 = 0.0;
  double warm_miss_p50 = 0.0;
  for (const PhaseReport& p : phases) {
    if (p.name == "serve/warm_profile") warm_profile_p50 = p.p50_ms;
    if (p.name == "serve/warm_miss") warm_miss_p50 = p.p50_ms;
  }
  if (warm_miss_p50 <= 0.0 || warm_miss_p50 >= warm_profile_p50) {
    std::fprintf(stderr,
                 "FAIL: warm-miss p50 %.4fms did not improve on the "
                 "warm-profile p50 %.4fms\n",
                 warm_miss_p50, warm_profile_p50);
    return 1;
  }
  // The reactor's throughput bar: >= 10x the PR-7 thread-per-connection
  // number at concurrency 64 with keep-alive (pipelined or not).
  double best_c64 = 0.0;
  for (const PhaseReport& p : phases) {
    if (p.name.find("cache_hit/c64") != std::string::npos &&
        p.name.find("close") == std::string::npos) {
      best_c64 = std::max(best_c64, p.req_per_sec);
    }
  }
  const double bar = kSpeedupBar * kPr7CacheHitReqPerSec;
  if (best_c64 < bar) {
    std::fprintf(stderr,
                 "FAIL: cache-hit c64 keep-alive peak %.0f req/s is below "
                 "the %.0f req/s bar (10x PR-7's %.0f)\n",
                 best_c64, bar, kPr7CacheHitReqPerSec);
    return 1;
  }
  std::printf("cache-hit c64 keep-alive peak: %.0f req/s (%.1fx PR-7)\n",
              best_c64, best_c64 / kPr7CacheHitReqPerSec);
  return 0;
}

}  // namespace
}  // namespace aceso

int main(int argc, char** argv) { return aceso::Main(argc, argv); }
