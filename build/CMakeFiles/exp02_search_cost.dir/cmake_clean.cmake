file(REMOVE_RECURSE
  "CMakeFiles/exp02_search_cost.dir/bench/bench_util.cc.o"
  "CMakeFiles/exp02_search_cost.dir/bench/bench_util.cc.o.d"
  "CMakeFiles/exp02_search_cost.dir/bench/exp02_search_cost.cc.o"
  "CMakeFiles/exp02_search_cost.dir/bench/exp02_search_cost.cc.o.d"
  "bench/exp02_search_cost"
  "bench/exp02_search_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp02_search_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
