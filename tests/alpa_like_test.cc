#include "src/baselines/alpa_like.h"

#include <gtest/gtest.h>

#include "src/ir/models/model_zoo.h"

namespace aceso {
namespace {

class AlpaTest : public ::testing::Test {
 protected:
  AlpaTest()
      : graph_(models::Gpt3(0.35)),
        cluster_(ClusterSpec::WithGpuCount(8)),
        db_(cluster_),
        model_(&graph_, cluster_, &db_) {}

  AlpaOptions FastOptions() {
    AlpaOptions options;
    options.layer_group_counts = {8};
    options.max_microbatch = 16;
    return options;
  }

  OpGraph graph_;
  ClusterSpec cluster_;
  ProfileDatabase db_;
  PerformanceModel model_;
};

TEST_F(AlpaTest, FindsFeasibleConfig) {
  auto result = AlpaLikeSearch(model_, FastOptions());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->found);
  EXPECT_FALSE(result->best.perf.oom);
  EXPECT_TRUE(result->best.config.Validate(graph_, cluster_).ok());
}

TEST_F(AlpaTest, ChargesSimulatedCompileTime) {
  auto result = AlpaLikeSearch(model_, FastOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->simulated_profile_seconds, 0.0);
  EXPECT_GT(result->TotalSearchSeconds(), result->search_seconds);
}

TEST_F(AlpaTest, RecomputationIsGlobalOnly) {
  auto result = AlpaLikeSearch(model_, FastOptions());
  ASSERT_TRUE(result.ok());
  // Every stage is either fully recomputed or not at all.
  for (const StageConfig& stage : result->best.config.stages()) {
    const int rc = stage.NumRecomputed();
    EXPECT_TRUE(rc == 0 || rc == stage.num_ops);
  }
}

TEST_F(AlpaTest, FailsCompilationBeyondLayerLimit) {
  // Exp#3: models deeper than the XLA limit fail.
  const OpGraph deep = models::DeepTransformer(128);
  ProfileDatabase db(cluster_);
  PerformanceModel model(&deep, cluster_, &db);
  AlpaOptions options = FastOptions();
  options.max_layers_before_failure = 64;
  const auto result = AlpaLikeSearch(model, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(AlpaTest, SucceedsAtTheLayerLimit) {
  const OpGraph deep = models::DeepTransformer(32);
  ProfileDatabase db(cluster_);
  PerformanceModel model(&deep, cluster_, &db);
  AlpaOptions options;
  options.layer_group_counts = {8};
  options.max_microbatch = 4;
  const auto result = AlpaLikeSearch(model, options);
  EXPECT_TRUE(result.ok()) << result.status().ToString();
}

TEST_F(AlpaTest, MoreLayerGroupsCostMoreKernels) {
  AlpaOptions small = FastOptions();
  small.layer_group_counts = {4};
  AlpaOptions large = FastOptions();
  large.layer_group_counts = {16};
  auto a = AlpaLikeSearch(model_, small);
  auto b = AlpaLikeSearch(model_, large);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GT(b->simulated_profile_seconds, a->simulated_profile_seconds);
}

TEST_F(AlpaTest, SingleGpuDegenerates) {
  const ClusterSpec one = ClusterSpec::SingleGpu();
  ProfileDatabase db(one);
  PerformanceModel model(&graph_, one, &db);
  auto result = AlpaLikeSearch(model, FastOptions());
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->found);
  EXPECT_EQ(result->best.config.num_stages(), 1);
}

}  // namespace
}  // namespace aceso
