// The benchmark model zoo (paper Table 2):
//
//   GPT-3        0.35B / 1.3B / 2.6B / 6.7B / 13B   fp16, batch 1024, seq 2048
//   T5           0.77B / 3B / 6B / 11B / 22B        fp16, batch 1024, seq 2048/512
//   Wide-ResNet  0.5B / 2B / 4B / 6.8B / 13B        fp32, batch 1536, 224x224x3
//   DeepNet      16..1000-layer transformers        (Exp#3 scalability study)
//
// plus a BERT-style encoder ladder outside the paper's evaluation.

#ifndef SRC_IR_MODELS_MODEL_ZOO_H_
#define SRC_IR_MODELS_MODEL_ZOO_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/ir/op_graph.h"

namespace aceso {
namespace models {

// GPT-3 decoder-only transformers. `size_billions` selects the variant and
// must be one of {0.35, 1.3, 2.6, 6.7, 13}.
OpGraph Gpt3(double size_billions);

// T5 encoder-decoder transformers; sizes in {0.77, 3, 6, 11, 22}. Encoders
// see sequence length 2048, decoders 512 (paper Table 2), which produces the
// heterogeneous, imbalanced structure the paper highlights.
OpGraph T5(double size_billions);

// Wide-ResNet; sizes in {0.5, 2, 4, 6.8, 13}, fp32, 224x224 input.
OpGraph WideResnet(double size_billions);

// DeepNet-style deep-and-narrow transformer with `num_layers` decoder layers
// (hyper-parameters following the 1000-layer setting of DeepNet).
OpGraph DeepTransformer(int num_layers);

// BERT-style encoder-only transformer (not part of the paper's evaluation;
// provided for users bringing encoder workloads). Sizes in {0.34 ("large"),
// 1.2, 3.9} billions of parameters.
OpGraph Bert(double size_billions);

// Builds a model by zoo name, e.g. "gpt3-1.3b", "t5-11b", "wresnet-6.8b",
// "deepnet-256". Returns InvalidArgument for unknown names.
StatusOr<OpGraph> BuildByName(const std::string& name);

// All canonical zoo names (for enumerating in benches).
std::vector<std::string> ZooNames();

// The paper pairs each model-size index (0..4) with a GPU count:
// 1, 4, 8, 16, 32.
int GpusForSizeIndex(int size_index);

}  // namespace models
}  // namespace aceso

#endif  // SRC_IR_MODELS_MODEL_ZOO_H_
