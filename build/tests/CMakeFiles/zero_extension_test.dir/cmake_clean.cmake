file(REMOVE_RECURSE
  "CMakeFiles/zero_extension_test.dir/zero_extension_test.cc.o"
  "CMakeFiles/zero_extension_test.dir/zero_extension_test.cc.o.d"
  "zero_extension_test"
  "zero_extension_test.pdb"
  "zero_extension_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/zero_extension_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
