#include "src/runtime/trace.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/common/json.h"

namespace aceso {
namespace {

EventSimulator MakeSmallSim() {
  EventSimulator sim;
  const ResourceId gpu0 = sim.AddResource("gpu0");
  const ResourceId gpu1 = sim.AddResource("gpu1");
  const TaskId a = sim.AddTask("f0", 1.0, gpu0);
  const TaskId b = sim.AddTask("f1", 2.0, gpu1);
  sim.AddDependency(a, b);
  EXPECT_TRUE(sim.Run().ok());
  return sim;
}

TEST(ChromeTraceTest, ContainsTasksAndThreads) {
  const EventSimulator sim = MakeSmallSim();
  const std::string json = ToChromeTraceJson(sim);
  EXPECT_NE(json.find("\"f0\""), std::string::npos);
  EXPECT_NE(json.find("\"f1\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_NE(json.find("\"gpu1\""), std::string::npos);
  // JSON array delimiters present.
  EXPECT_EQ(json.front(), '[');
}

TEST(ChromeTraceTest, DurationsInMicroseconds) {
  const EventSimulator sim = MakeSmallSim();
  const std::string json = ToChromeTraceJson(sim);
  // f1 runs for 2 s = 2e6 us (the shared writer renders it as an integer).
  EXPECT_NE(json.find("\"dur\":2000000"), std::string::npos);
}

TEST(ChromeTraceTest, OutputIsStrictlyValidJson) {
  const EventSimulator sim = MakeSmallSim();
  const Status status = JsonValidate(ToChromeTraceJson(sim));
  EXPECT_TRUE(status.ok()) << status.ToString();
}

TEST(ChromeTraceTest, EscapesAdversarialNames) {
  // Task and resource names with every character class the old hand-rolled
  // writer passed through unescaped: quotes, backslashes, newlines, tabs,
  // and raw control characters.
  EventSimulator sim;
  const ResourceId gpu =
      sim.AddResource("gpu \"0\" \\ prod\nrack\t7");
  const TaskId a = sim.AddTask("fwd \"layer\\0\"\x01\x1f", 1.0, gpu);
  const TaskId b = sim.AddTask("bwd\n\"layer\\0\"", 2.0, gpu);
  sim.AddDependency(a, b);
  ASSERT_TRUE(sim.Run().ok());

  const std::string json = ToChromeTraceJson(sim);
  const Status status = JsonValidate(json);
  EXPECT_TRUE(status.ok()) << status.ToString();
  // The escaped forms appear; raw control characters never do.
  EXPECT_NE(json.find("fwd \\\"layer\\\\0\\\"\\u0001\\u001f"),
            std::string::npos);
  EXPECT_NE(json.find("gpu \\\"0\\\" \\\\ prod\\nrack\\t7"),
            std::string::npos);
  for (const char c : json) {
    if (c == '\n') {
      continue;  // the writer's structural separators, outside any string
    }
    EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
  }
}

TEST(ChromeTraceTest, WritesFile) {
  const EventSimulator sim = MakeSmallSim();
  const std::string path = ::testing::TempDir() + "/trace_test.json";
  ASSERT_TRUE(WriteChromeTrace(sim, path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::remove(path.c_str());
}

TEST(AsciiTimelineTest, ShowsBusyAndIdle) {
  const EventSimulator sim = MakeSmallSim();
  const std::string timeline = RenderAsciiTimeline(sim, 30);
  // gpu0 busy first third, idle after; gpu1 the reverse.
  EXPECT_NE(timeline.find("gpu0"), std::string::npos);
  EXPECT_NE(timeline.find("gpu1"), std::string::npos);
  EXPECT_NE(timeline.find('#'), std::string::npos);
  EXPECT_NE(timeline.find('.'), std::string::npos);
}

TEST(AsciiTimelineTest, EmptySimulation) {
  EventSimulator sim;
  EXPECT_TRUE(sim.Run().ok());
  EXPECT_EQ(RenderAsciiTimeline(sim), "(empty timeline)\n");
}

TEST(AsciiTimelineTest, RowPerResource) {
  const EventSimulator sim = MakeSmallSim();
  const std::string timeline = RenderAsciiTimeline(sim, 40);
  int rows = 0;
  for (const char c : timeline) {
    rows += c == '\n' ? 1 : 0;
  }
  EXPECT_EQ(rows, 3);  // 2 resources + axis line
}

}  // namespace
}  // namespace aceso
