file(REMOVE_RECURSE
  "libaceso_baselines.a"
)
