file(REMOVE_RECURSE
  "CMakeFiles/exp01_throughput.dir/bench/bench_util.cc.o"
  "CMakeFiles/exp01_throughput.dir/bench/bench_util.cc.o.d"
  "CMakeFiles/exp01_throughput.dir/bench/exp01_throughput.cc.o"
  "CMakeFiles/exp01_throughput.dir/bench/exp01_throughput.cc.o.d"
  "bench/exp01_throughput"
  "bench/exp01_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp01_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
