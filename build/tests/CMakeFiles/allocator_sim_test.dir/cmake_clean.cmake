file(REMOVE_RECURSE
  "CMakeFiles/allocator_sim_test.dir/allocator_sim_test.cc.o"
  "CMakeFiles/allocator_sim_test.dir/allocator_sim_test.cc.o.d"
  "allocator_sim_test"
  "allocator_sim_test.pdb"
  "allocator_sim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/allocator_sim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
