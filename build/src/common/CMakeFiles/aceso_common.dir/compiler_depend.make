# Empty compiler generated dependencies file for aceso_common.
# This may be replaced when dependencies are built.
