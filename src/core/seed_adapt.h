// Configuration adaptation for neighbor-seeded planning (DESIGN.md §17).
//
// The planning daemon's similarity index (src/serve/plan_cache.h) can find a
// cached plan for a *near-identical* request — the same model family with a
// different layer count, the same GPU generation with a different device
// count, a shifted memory budget. AdaptSeedConfig reshapes such a plan into
// a valid configuration for the new (graph, cluster) pair so the iterative
// search (SearchOptions::seed_config, SeedMode::kConfig) can start its
// bottleneck-alleviation loop from it instead of from the even heuristic:
//
//   - stage boundaries are stretched/shrunk proportionally to the new op
//     count, then snapped to the graph's repeated-layer period structure
//     (the same run-compression cut mask the DP seeder restricts itself to,
//     DESIGN.md §13) so a boundary never lands mid-period inside a run of
//     identical layers;
//   - per-stage device counts are re-split over the new cluster: each stage
//     keeps its proportional share of devices, grown greedily in powers of
//     two until the cluster is exactly covered;
//   - per-op settings are carried over positionally within each stage, with
//     tp clamped to the op's limit and the stage width (dp absorbs the
//     difference) and the microbatch size clamped to divisibility.
//
// The adapted configuration always passes ParallelConfig::Validate and
// carries a verdict under the requested memory budget. Adaptation is a pure
// function of its inputs — no clocks, no randomness — so a seeded search
// stays bit-reproducible (the golden-pinned trajectories in search_test).
//
// Fails (NotFound) when the seed cannot be reshaped — more stages than new
// ops or devices, or no power-of-two device split reaching the new total —
// and callers fall back to the heuristic start, mirroring DpSeedConfig.

#ifndef SRC_CORE_SEED_ADAPT_H_
#define SRC_CORE_SEED_ADAPT_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/config/parallel_config.h"
#include "src/cost/perf_model.h"

namespace aceso {

struct SeedAdaptOptions {
  // Also try stage boundaries snapped to repeated-layer period multiples
  // (the run-compression structure of DESIGN.md §12) and keep whichever of
  // {plain proportional, snapped} verdicts better. The plain variant is
  // always evaluated: it reproduces the seed exactly when nothing changed,
  // and it preserves deliberate mid-layer cuts the search fine-tuned into
  // the seed. Off skips the snapped candidate entirely.
  bool compress_runs = true;
  // Per-device memory budget for the adapted config's feasibility verdict;
  // <= 0 uses GpuSpec::memory_bytes. Mirrors
  // SearchOptions::memory_budget_bytes.
  int64_t memory_limit_bytes = 0;
};

struct SeedAdaptResult {
  ParallelConfig config;
  // Full-model evaluation of the adapted config, re-verdicted under the
  // requested memory budget — what the serving layer compares the seeded
  // search's final plan against (fallback semantics, DESIGN.md §17).
  PerfResult perf;
  // Full-model Evaluate() calls spent (1 or 2 on success — one per
  // candidate boundary layout); reported so callers can charge adaptation
  // to their evaluation budgets.
  int64_t evaluations = 0;
};

// Adapts `seed` — a valid configuration for some *other* (graph, cluster)
// pair — to `model`'s graph and cluster. The seed's stage count is
// preserved.
StatusOr<SeedAdaptResult> AdaptSeedConfig(const PerformanceModel& model,
                                          const ParallelConfig& seed,
                                          const SeedAdaptOptions& options = {});

// The cut mask used for boundary snapping: allowed[c] == 1 iff a stage
// boundary may sit before op `c` (c in [0, num_ops]). With compress_runs,
// cuts inside a detected run of identical layers are restricted to period
// multiples — the same structure AllowedCuts in the DP seeder uses. Exposed
// for tests and the adaptation itself.
std::vector<char> SeedAdaptAllowedCuts(const OpGraph& graph,
                                       bool compress_runs);

}  // namespace aceso

#endif  // SRC_CORE_SEED_ADAPT_H_
