# Empty dependencies file for profile_db_test.
# This may be replaced when dependencies are built.
