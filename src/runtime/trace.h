// Execution-trace rendering for the discrete-event runtime: Chrome trace
// (chrome://tracing / Perfetto) JSON export and a terminal timeline.

#ifndef SRC_RUNTIME_TRACE_H_
#define SRC_RUNTIME_TRACE_H_

#include <string>

#include "src/common/status.h"
#include "src/runtime/event_sim.h"

namespace aceso {

// Serializes a finished simulation (Run() must have completed) as Chrome
// trace-event JSON: one "thread" per resource, one duration event per task.
std::string ToChromeTraceJson(const EventSimulator& sim);

// Writes the Chrome trace to `path`.
Status WriteChromeTrace(const EventSimulator& sim, const std::string& path);

// Renders an ASCII timeline: one row per resource, `width` columns spanning
// the makespan, '#' for busy, '.' for idle — the pipeline-bubble picture at
// a glance.
std::string RenderAsciiTimeline(const EventSimulator& sim, int width = 100);

}  // namespace aceso

#endif  // SRC_RUNTIME_TRACE_H_
