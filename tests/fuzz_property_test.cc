// Property/fuzz tests over synthetic random models: the validator, cost
// model, primitive applications, search, plan lowering, and runtime must
// hold their invariants on arbitrary (structurally valid) operator chains,
// not just the zoo's regular transformers and CNNs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/aceso.h"
#include "src/ir/models/synthetic.h"

namespace aceso {
namespace {

class FuzzTest : public ::testing::TestWithParam<int> {
 protected:
  FuzzTest() : rng_(static_cast<uint64_t>(GetParam()) * 0x9E37 + 17) {}

  Rng rng_;
};

TEST_P(FuzzTest, EvenConfigsValidateAndEvaluate) {
  const OpGraph graph = models::SyntheticModel(rng_);
  const int gpus = 1 << rng_.NextInt(0, 4);  // 1..16 (one node block is 8)
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(gpus == 16 ? 16 : gpus);
  ProfileDatabase db(cluster, /*seed=*/GetParam());
  PerformanceModel model(&graph, cluster, &db);
  for (int stages = 1; stages <= std::min(cluster.num_gpus(), 4); ++stages) {
    auto config = MakeEvenConfig(graph, cluster, stages, 1);
    if (!config.ok()) {
      continue;  // stage count not constructible for this model
    }
    ASSERT_TRUE(config->Validate(graph, cluster).ok());
    const PerfResult perf = model.Evaluate(*config);
    EXPECT_TRUE(std::isfinite(perf.iteration_time));
    EXPECT_GT(perf.iteration_time, 0.0);
    for (const StageUsage& usage : perf.stages) {
      EXPECT_GE(usage.fwd_time, 0.0);
      EXPECT_GE(usage.comm_time, 0.0);
      EXPECT_GT(usage.memory_bytes, 0);
    }
  }
}

TEST_P(FuzzTest, AllPrimitiveCandidatesStayValid) {
  const OpGraph graph = models::SyntheticModel(rng_);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  ProfileDatabase db(cluster, /*seed=*/GetParam());
  PerformanceModel model(&graph, cluster, &db);
  auto config = MakeEvenConfig(graph, cluster, std::min(4, graph.num_ops()),
                               1);
  if (!config.ok()) {
    GTEST_SKIP() << config.status().ToString();
  }
  const PerfResult perf = model.Evaluate(*config);
  for (int kind = 0; kind < kNumPrimitives; ++kind) {
    for (int stage = 0; stage < config->num_stages(); ++stage) {
      for (const Candidate& candidate : GeneratePrimitiveCandidates(
               model, *config, perf, static_cast<PrimitiveKind>(kind),
               stage)) {
        EXPECT_TRUE(candidate.config.Validate(graph, cluster).ok())
            << candidate.description;
        EXPECT_EQ(candidate.config.TotalDevices(), cluster.num_gpus());
      }
    }
  }
}

TEST_P(FuzzTest, SearchProducesValidFeasibleOrNothing) {
  const OpGraph graph = models::SyntheticModel(rng_);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster, /*seed=*/GetParam());
  PerformanceModel model(&graph, cluster, &db);
  SearchOptions options;
  options.time_budget_seconds = 0.15;
  options.max_stages = 4;
  const SearchResult result = AcesoSearch(model, options);
  if (result.found) {
    EXPECT_TRUE(result.best.config.Validate(graph, cluster).ok());
    for (const ScoredConfig& top : result.top_configs) {
      EXPECT_FALSE(top.perf.oom);
      EXPECT_TRUE(top.config.Validate(graph, cluster).ok());
    }
  }
}

TEST_P(FuzzTest, PlanLowersAndVerifies) {
  const OpGraph graph = models::SyntheticModel(rng_);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  for (int stages = 1; stages <= 4; ++stages) {
    auto config = MakeEvenConfig(graph, cluster, stages, 2);
    if (!config.ok()) {
      continue;
    }
    const ExecutionPlan plan = ExecutionPlan::Lower(graph, *config);
    EXPECT_EQ(plan.num_devices(), cluster.num_gpus());
    EXPECT_TRUE(plan.Verify().ok()) << "stages=" << stages;
  }
}

TEST_P(FuzzTest, RuntimeAgreesWithModelWithinBand) {
  const OpGraph graph = models::SyntheticModel(rng_);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster, /*seed=*/GetParam());
  PerformanceModel model(&graph, cluster, &db);
  PipelineExecutor executor(&model);
  auto config = MakeEvenConfig(graph, cluster, 2, 2);
  if (!config.ok()) {
    GTEST_SKIP() << config.status().ToString();
  }
  const PerfResult predicted = model.Evaluate(*config);
  ExecutionOptions exec;
  exec.simulate_memory = false;  // synthetic models may not fit 30 GB
  const ExecutionResult actual = executor.Execute(*config, exec);
  EXPECT_GT(actual.iteration_seconds, predicted.iteration_time * 0.5);
  EXPECT_LT(actual.iteration_seconds, predicted.iteration_time * 2.0);
}

TEST_P(FuzzTest, RandomZeroFlagsNeverIncreaseMemory) {
  const OpGraph graph = models::SyntheticModel(rng_);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  ProfileDatabase db(cluster, /*seed=*/GetParam());
  PerformanceModel model(&graph, cluster, &db);
  auto config = MakeEvenConfig(graph, cluster, 2, 8);
  if (!config.ok()) {
    GTEST_SKIP() << config.status().ToString();
  }
  const PerfResult plain = model.Evaluate(*config);
  ParallelConfig flagged = *config;
  for (int i = 0; i < graph.num_ops(); ++i) {
    flagged.MutableOpSettings(i).zero_opt = rng_.NextBool(0.5);
  }
  const PerfResult sharded = model.Evaluate(flagged);
  EXPECT_LE(sharded.MaxMemory(), plain.MaxMemory());
  EXPECT_TRUE(std::isfinite(sharded.iteration_time));
}

// Applies one random config mutation through the copy-on-write mutator API,
// exercising every kind of write the search performs: recompute toggles,
// tp_dim flips, tp/dp retargeting, ZeRO flags, and microbatch changes.
void MutateRandomly(const OpGraph& graph, ParallelConfig& config, Rng& rng) {
  const int s = rng.NextInt(0, config.num_stages() - 1);
  switch (rng.NextInt(0, 4)) {
    case 0: {
      StageConfig& stage = config.MutableStage(s);
      OpParallel& setting =
          stage.ops[static_cast<size_t>(rng.NextInt(0, stage.num_ops - 1))];
      setting.recompute = !setting.recompute;
      break;
    }
    case 1: {
      StageConfig& stage = config.MutableStage(s);
      OpParallel& setting =
          stage.ops[static_cast<size_t>(rng.NextInt(0, stage.num_ops - 1))];
      setting.tp_dim =
          setting.tp_dim == TpDim::kColumn ? TpDim::kRow : TpDim::kColumn;
      break;
    }
    case 2: {
      // Halve tp / double dp (or back) for the whole stage where possible.
      StageConfig& stage = config.MutableStage(s);
      const bool increase = rng.NextBool(0.5);
      for (int i = 0; i < stage.num_ops; ++i) {
        OpParallel& setting = stage.ops[static_cast<size_t>(i)];
        const int new_tp = increase ? setting.tp * 2 : setting.tp / 2;
        if (new_tp < 1 || new_tp > stage.num_devices) {
          continue;
        }
        const int clamped = ClampOpTp(graph.op(stage.first_op + i), new_tp);
        setting.tp = clamped;
        setting.dp = stage.num_devices / clamped;
      }
      break;
    }
    case 3: {
      const int op = rng.NextInt(0, graph.num_ops() - 1);
      config.MutableOpSettings(op).zero_opt = rng.NextBool(0.5);
      break;
    }
    default:
      config.set_microbatch_size(1 << rng.NextInt(0, 3));
      break;
  }
}

TEST_P(FuzzTest, CowMutationNeverAliasesParentState) {
  // Copying a config shares stage blocks; mutating the copy must never leak
  // into the parent's observable state. Checked against a deep copy taken
  // before any sharing, field by field and hash by hash.
  const OpGraph graph = models::SyntheticModel(rng_);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  auto made = MakeEvenConfig(graph, cluster, std::min(4, graph.num_ops()), 4);
  if (!made.ok()) {
    GTEST_SKIP() << made.status().ToString();
  }
  ParallelConfig parent = *std::move(made);
  const ParallelConfig snapshot = parent.DeepCopy();
  const uint64_t parent_hash = parent.SemanticHash(graph);

  for (int round = 0; round < 20; ++round) {
    ParallelConfig child = parent;  // shares all stage blocks
    for (int m = 0; m < 3; ++m) {
      MutateRandomly(graph, child, rng_);
    }
    // The parent still matches the pre-sharing snapshot exactly.
    ASSERT_EQ(parent.num_stages(), snapshot.num_stages());
    ASSERT_EQ(parent.microbatch_size(), snapshot.microbatch_size());
    for (int s = 0; s < parent.num_stages(); ++s) {
      const StageConfig& got = parent.stage(s);
      const StageConfig& want = snapshot.stage(s);
      ASSERT_EQ(got.first_op, want.first_op);
      ASSERT_EQ(got.num_ops, want.num_ops);
      ASSERT_EQ(got.num_devices, want.num_devices);
      ASSERT_EQ(got.ops.size(), want.ops.size());
      for (size_t i = 0; i < got.ops.size(); ++i) {
        ASSERT_TRUE(got.ops[i] == want.ops[i]) << "stage " << s << " op " << i;
      }
    }
    ASSERT_EQ(parent.SemanticHash(graph), parent_hash);
  }
}

TEST_P(FuzzTest, IncrementalHashesMatchUncachedUnderMutationSequences) {
  // The cached/incremental hash paths must agree bit-for-bit with the
  // from-scratch reference implementations at every point of a random
  // mutation/copy sequence — the exact access pattern of candidate
  // generation (copy, mutate one or two stages, re-hash).
  const OpGraph graph = models::SyntheticModel(rng_);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  auto made = MakeEvenConfig(graph, cluster, std::min(4, graph.num_ops()), 4);
  if (!made.ok()) {
    GTEST_SKIP() << made.status().ToString();
  }
  ParallelConfig config = *std::move(made);
  auto check_all = [&](const ParallelConfig& c) {
    ASSERT_EQ(c.SemanticHash(graph), c.SemanticHashUncached(graph));
    for (int s = 0; s < c.num_stages(); ++s) {
      ASSERT_EQ(c.StageSemanticHash(graph, cluster, s),
                c.StageSemanticHashUncached(graph, cluster, s))
          << "stage " << s;
    }
    // Hashing is idempotent (the second call is fully cached).
    ASSERT_EQ(c.SemanticHash(graph), c.SemanticHashUncached(graph));
  };

  check_all(config);
  for (int round = 0; round < 40; ++round) {
    ParallelConfig candidate = config;  // CoW copy, warm caches
    MutateRandomly(graph, candidate, rng_);
    if (rng_.NextBool(0.5)) {
      MutateRandomly(graph, candidate, rng_);
    }
    check_all(candidate);
    check_all(config);  // the base config's caches stay correct too
    if (rng_.NextBool(0.3)) {
      config = std::move(candidate);  // walk, like the search does
    }
  }
}

// Bit-exact StageCost comparison: the memoized/run-compressed path must
// reproduce the direct walk in every field, doubles included (IEEE-exact,
// not approximately — golden search hashes depend on it).
void ExpectStageCostBitEqual(const StageCost& fast, const StageCost& direct,
                             int stage, int round) {
  ASSERT_EQ(fast.fwd_time, direct.fwd_time) << "stage " << stage << " round "
                                            << round;
  ASSERT_EQ(fast.bwd_time, direct.bwd_time) << "stage " << stage;
  ASSERT_EQ(fast.comp_time, direct.comp_time) << "stage " << stage;
  ASSERT_EQ(fast.comm_time, direct.comm_time) << "stage " << stage;
  ASSERT_EQ(fast.recompute_time, direct.recompute_time) << "stage " << stage;
  ASSERT_EQ(fast.dp_sync_time, direct.dp_sync_time) << "stage " << stage;
  ASSERT_EQ(fast.param_bytes, direct.param_bytes) << "stage " << stage;
  ASSERT_EQ(fast.optimizer_bytes, direct.optimizer_bytes) << "stage " << stage;
  ASSERT_EQ(fast.activation_bytes_per_mb, direct.activation_bytes_per_mb)
      << "stage " << stage;
  ASSERT_EQ(fast.reserved_bytes, direct.reserved_bytes) << "stage " << stage;
}

TEST_P(FuzzTest, MemoizedStageCostBitIdenticalToDirectWalk) {
  // ComputeStageCost (op memo + run compression) against the direct per-op
  // walk, across random mutation sequences that mix recompute flags, tp_dim
  // flips, mid-stage tp/dp retargets (dp-reshard boundaries), ZeRO flags,
  // and microbatch changes — on stages the mutations make non-uniform.
  const OpGraph graph = models::SyntheticModel(rng_);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  ProfileDatabase db(cluster, /*seed=*/GetParam());
  PerformanceModel model(&graph, cluster, &db);
  auto made = MakeEvenConfig(graph, cluster, std::min(4, graph.num_ops()), 4);
  if (!made.ok()) {
    GTEST_SKIP() << made.status().ToString();
  }
  ParallelConfig config = *std::move(made);
  for (int round = 0; round < 25; ++round) {
    for (int s = 0; s < config.num_stages(); ++s) {
      const StageCost direct = AggregateStageCost(model.WalkStage(config, s));
      const StageCost fast = model.ComputeStageCost(config, s);
      ExpectStageCostBitEqual(fast, direct, s, round);
    }
    MutateRandomly(graph, config, rng_);
  }
  // The memo actually engaged (repeat rounds re-walk identical contexts).
  EXPECT_GT(model.op_memo().stats().hits, 0);
}

TEST_P(FuzzTest, EvaluateBitIdenticalWithMemoAndCompressionOff) {
  // End-to-end Evaluate() with every op-level optimization on vs off, over
  // one shared profile database (published measurements are immutable, so
  // sharing cannot leak one model's path into the other's values).
  const OpGraph graph = models::SyntheticModel(rng_);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  ProfileDatabase db(cluster, /*seed=*/GetParam());
  PerformanceModel fast(&graph, cluster, &db);
  PerformanceModel plain(&graph, cluster, &db);
  plain.set_op_memo_enabled(false);
  plain.set_run_compression_enabled(false);
  auto made = MakeEvenConfig(graph, cluster, std::min(4, graph.num_ops()), 4);
  if (!made.ok()) {
    GTEST_SKIP() << made.status().ToString();
  }
  ParallelConfig config = *std::move(made);
  for (int round = 0; round < 20; ++round) {
    const PerfResult a = fast.Evaluate(config);
    const PerfResult b = plain.Evaluate(config);
    ASSERT_EQ(a.iteration_time, b.iteration_time) << "round " << round;
    ASSERT_EQ(a.oom, b.oom);
    ASSERT_EQ(a.slowest_stage, b.slowest_stage);
    ASSERT_EQ(a.max_memory_stage, b.max_memory_stage);
    ASSERT_EQ(a.stages.size(), b.stages.size());
    for (size_t s = 0; s < a.stages.size(); ++s) {
      ASSERT_EQ(a.stages[s].stage_time, b.stages[s].stage_time) << s;
      ASSERT_EQ(a.stages[s].memory_bytes, b.stages[s].memory_bytes) << s;
      ASSERT_EQ(a.stages[s].fwd_time, b.stages[s].fwd_time) << s;
      ASSERT_EQ(a.stages[s].bwd_time, b.stages[s].bwd_time) << s;
      ASSERT_EQ(a.stages[s].dp_sync_time, b.stages[s].dp_sync_time) << s;
    }
    MutateRandomly(graph, config, rng_);
  }
}

// Bit-exact PerfResult comparison for the batched-vs-scalar property.
void ExpectPerfBitEqual(const PerfResult& batched, const PerfResult& scalar,
                        int lane) {
  ASSERT_EQ(batched.iteration_time, scalar.iteration_time) << "lane " << lane;
  ASSERT_EQ(batched.oom, scalar.oom) << "lane " << lane;
  ASSERT_EQ(batched.slowest_stage, scalar.slowest_stage) << "lane " << lane;
  ASSERT_EQ(batched.max_memory_stage, scalar.max_memory_stage)
      << "lane " << lane;
  ASSERT_EQ(batched.memory_limit, scalar.memory_limit) << "lane " << lane;
  ASSERT_EQ(batched.stages.size(), scalar.stages.size()) << "lane " << lane;
  for (size_t s = 0; s < batched.stages.size(); ++s) {
    const StageUsage& a = batched.stages[s];
    const StageUsage& b = scalar.stages[s];
    ASSERT_EQ(a.fwd_time, b.fwd_time) << "lane " << lane << " stage " << s;
    ASSERT_EQ(a.bwd_time, b.bwd_time) << "lane " << lane << " stage " << s;
    ASSERT_EQ(a.comp_time, b.comp_time) << "lane " << lane << " stage " << s;
    ASSERT_EQ(a.comm_time, b.comm_time) << "lane " << lane << " stage " << s;
    ASSERT_EQ(a.recompute_time, b.recompute_time) << "lane " << lane;
    ASSERT_EQ(a.dp_sync_time, b.dp_sync_time) << "lane " << lane;
    ASSERT_EQ(a.warmup_time, b.warmup_time) << "lane " << lane;
    ASSERT_EQ(a.steady_time, b.steady_time) << "lane " << lane;
    ASSERT_EQ(a.cooldown_time, b.cooldown_time) << "lane " << lane;
    ASSERT_EQ(a.stage_time, b.stage_time) << "lane " << lane;
    ASSERT_EQ(a.param_bytes, b.param_bytes) << "lane " << lane;
    ASSERT_EQ(a.optimizer_bytes, b.optimizer_bytes) << "lane " << lane;
    ASSERT_EQ(a.activation_bytes_per_mb, b.activation_bytes_per_mb)
        << "lane " << lane;
    ASSERT_EQ(a.reserved_bytes, b.reserved_bytes) << "lane " << lane;
    ASSERT_EQ(a.memory_bytes, b.memory_bytes) << "lane " << lane;
  }
}

TEST_P(FuzzTest, BatchedGroupEvalBitIdenticalToScalar) {
  // CandidateBatch over random sibling groups (CoW copies of one base with
  // one or two random mutations each, the search's candidate shape) with
  // random lane masks, against per-lane Evaluate() — every field IEEE-exact.
  const OpGraph graph = models::SyntheticModel(rng_);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  ProfileDatabase db(cluster, /*seed=*/GetParam());
  PerformanceModel model(&graph, cluster, &db);
  auto made = MakeEvenConfig(graph, cluster, std::min(4, graph.num_ops()), 4);
  if (!made.ok()) {
    GTEST_SKIP() << made.status().ToString();
  }
  ParallelConfig base = *std::move(made);
  for (int round = 0; round < 10; ++round) {
    const int group_size = rng_.NextInt(2, 7);
    std::vector<ParallelConfig> siblings;
    siblings.reserve(static_cast<size_t>(group_size));
    for (int i = 0; i < group_size; ++i) {
      ParallelConfig sibling = base;  // CoW copy: unmutated stages share
      MutateRandomly(graph, sibling, rng_);
      if (rng_.NextBool(0.3)) {
        MutateRandomly(graph, sibling, rng_);
      }
      siblings.push_back(std::move(sibling));
    }

    CandidateBatch batch(model);
    for (const ParallelConfig& sibling : siblings) {
      batch.AddLane(&sibling);
    }
    // Random mask, at least one active lane (a budget-cut shape).
    std::vector<bool> active(static_cast<size_t>(group_size), true);
    for (int i = 0; i < group_size; ++i) {
      active[static_cast<size_t>(i)] = rng_.NextBool(0.8);
      batch.SetActive(i, active[static_cast<size_t>(i)]);
    }
    if (std::none_of(active.begin(), active.end(), [](bool a) { return a; })) {
      active[0] = true;
      batch.SetActive(0, true);
    }
    batch.EvaluateAll();

    for (int i = 0; i < group_size; ++i) {
      if (!active[static_cast<size_t>(i)]) {
        continue;
      }
      const PerfResult scalar =
          model.Evaluate(siblings[static_cast<size_t>(i)]);
      ExpectPerfBitEqual(batch.perf(i), scalar, i);
    }
    MutateRandomly(graph, base, rng_);
  }
}

TEST_P(FuzzTest, AdaptedSeedConfigsAreValidOrRejected) {
  // The seed-adaptation property (DESIGN.md §17): adapting ANY valid config
  // — built for a different random model and a different cluster size, then
  // scrambled by random mutations — either fails cleanly (NotFound) or
  // produces a config that fully validates against the target, covers every
  // target op, fills the target cluster exactly, and carries a memory
  // verdict consistent with re-evaluating the adapted config from scratch.
  const OpGraph source_graph = models::SyntheticModel(rng_);
  const ClusterSpec source_cluster =
      ClusterSpec::WithGpuCount(1 << rng_.NextInt(1, 3));  // 2..8
  auto made = MakeEvenConfig(
      source_graph, source_cluster,
      std::min({4, source_graph.num_ops(), source_cluster.num_gpus()}),
      1 << rng_.NextInt(0, 2));
  if (!made.ok()) {
    GTEST_SKIP() << made.status().ToString();
  }
  ParallelConfig seed = *std::move(made);
  // The mutations may even break the source's own divisibility invariants
  // (random microbatch sizes): adaptation must still reject-or-produce-valid
  // — it never trusts the seed, only the target-side Validate.
  for (int m = 0; m < 5; ++m) {
    MutateRandomly(source_graph, seed, rng_);
  }

  // A structurally different target: fresh random model, different size.
  Rng target_rng(rng_.NextU64());
  const OpGraph target_graph = models::SyntheticModel(target_rng);
  const ClusterSpec target_cluster =
      ClusterSpec::WithGpuCount(1 << rng_.NextInt(0, 4));  // 1..16
  ProfileDatabase db(target_cluster, /*seed=*/GetParam());
  PerformanceModel model(&target_graph, target_cluster, &db);

  SeedAdaptOptions adapt_options;
  if (rng_.NextBool(0.3)) {
    adapt_options.memory_limit_bytes = 16 * kGiB;
  }
  auto adapted = AdaptSeedConfig(model, seed, adapt_options);
  if (!adapted.ok()) {
    EXPECT_EQ(adapted.status().code(), StatusCode::kNotFound)
        << adapted.status().ToString();
    return;  // clean rejection is an allowed outcome
  }
  const ParallelConfig& config = adapted->config;
  EXPECT_TRUE(config.Validate(target_graph, target_cluster).ok());
  EXPECT_EQ(config.num_stages(), seed.num_stages());
  EXPECT_EQ(config.TotalDevices(), target_cluster.num_gpus());
  // Full positional coverage of the target's ops.
  int next_op = 0;
  for (int s = 0; s < config.num_stages(); ++s) {
    EXPECT_EQ(config.stage(s).first_op, next_op);
    next_op += config.stage(s).num_ops;
  }
  EXPECT_EQ(next_op, target_graph.num_ops());
  // The reported verdict is exactly a fresh evaluation under the same limit.
  PerfResult fresh = model.Evaluate(config);
  fresh.ApplyMemoryLimit(adapt_options.memory_limit_bytes > 0
                             ? adapt_options.memory_limit_bytes
                             : target_cluster.gpu.memory_bytes);
  EXPECT_EQ(adapted->perf.iteration_time, fresh.iteration_time);
  EXPECT_EQ(adapted->perf.oom, fresh.oom);
}

TEST_P(FuzzTest, ConfigIoRoundTripsOnRandomModels) {
  const OpGraph graph = models::SyntheticModel(rng_);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  auto config = MakeEvenConfig(graph, cluster, 2, 4);
  if (!config.ok()) {
    GTEST_SKIP() << config.status().ToString();
  }
  // Random recompute flags.
  for (int i = 0; i < graph.num_ops(); ++i) {
    config->MutableOpSettings(i).recompute = rng_.NextBool(0.3);
  }
  auto parsed = ParseConfig(SerializeConfig(*config, graph.name()), graph);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->SemanticHash(graph), config->SemanticHash(graph));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace aceso
