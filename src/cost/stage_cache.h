// Sharded stage-cost cache — the incremental-evaluation layer (§4.3 spirit).
//
// The search applies localized reconfiguration primitives, so consecutive
// Evaluate() calls differ in at most one or two stages; every other stage's
// walk is byte-identical to one already computed. This cache memoizes the
// aggregated per-stage cost (StageCost, the reduction of a StageWalk) keyed
// by ParallelConfig::StageSemanticHash(), which folds in everything
// WalkStage() reads (op range, per-op settings, microbatch size,
// device-placement context), so a hit substitutes O(1) arithmetic for the
// O(#ops) walk without changing a single bit of the PerfResult.
//
// Concurrency: AcesoSearch runs one SingleSearch per stage count on a shared
// ThreadPool against one PerformanceModel, and the cache is deliberately
// shared across those workers — sibling searches re-walk many of the same
// stages. The key space is partitioned into power-of-two shards, each with
// its own mutex, so concurrent lookups of different stages rarely contend.
// Values are immutable once inserted (shared_ptr<const StageCost>), making a
// hit a lock-then-copy-pointer operation.
//
// Capacity is bounded: each shard evicts in FIFO order past its share of the
// capacity, keeping long searches' memory flat (like the unexplored-pool
// bound in the search itself). Hit/miss/eviction counters are plumbed into
// SearchStats so experiments can report cache effectiveness.

#ifndef SRC_COST_STAGE_CACHE_H_
#define SRC_COST_STAGE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/hash.h"

namespace aceso {

struct StageCost;  // src/cost/perf_model.h

struct StageCacheOptions {
  // Master switch: a disabled cache never stores anything and every Lookup
  // misses (without counting), so the model falls back to plain WalkStage().
  bool enabled = true;

  // Maximum cached StageCost entries across all shards.
  size_t capacity = 1 << 15;

  // Number of mutex shards; rounded up to a power of two, capped at
  // capacity.
  size_t num_shards = 16;
};

// A consistent snapshot of the cache counters. `operator-` yields the delta
// between two snapshots (used to attribute activity to one search run).
struct StageCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  int64_t entries = 0;  // current size, not a delta-able counter

  StageCacheStats operator-(const StageCacheStats& other) const {
    StageCacheStats d;
    d.hits = hits - other.hits;
    d.misses = misses - other.misses;
    d.evictions = evictions - other.evictions;
    d.entries = entries;
    return d;
  }
};

class StageCostCache {
 public:
  explicit StageCostCache(const StageCacheOptions& options = {});

  StageCostCache(const StageCostCache&) = delete;
  StageCostCache& operator=(const StageCostCache&) = delete;

  // Returns the cached cost for `key`, or nullptr on miss. Counts one hit
  // or one miss. On a disabled cache, returns nullptr without counting.
  std::shared_ptr<const StageCost> Lookup(uint64_t key) const;

  // Stores `cost` under `key`, evicting the shard's oldest entry when full.
  // Re-inserting an existing key is a no-op (the first value wins; values
  // for one key are identical by construction). No-op when disabled.
  void Insert(uint64_t key, std::shared_ptr<const StageCost> cost);

  // Drops every entry; counters are preserved.
  void Clear();

  bool enabled() const { return options_.enabled; }
  // Setup-time toggle (not synchronized against in-flight Lookup/Insert).
  void set_enabled(bool enabled) { options_.enabled = enabled; }

  size_t capacity() const { return options_.capacity; }

  StageCacheStats stats() const;

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::shared_ptr<const StageCost>,
                       IdentityHash>
        entries;
    std::deque<uint64_t> insertion_order;  // FIFO eviction queue
  };

  Shard& ShardFor(uint64_t key) const {
    // Keys are already well-mixed; fold the high bits in so shard selection
    // is independent of the map's bucket choice (which uses the low bits).
    return *shards_[static_cast<size_t>(key >> 48) & shard_mask_];
  }

  StageCacheOptions options_;
  size_t shard_mask_ = 0;
  size_t shard_capacity_ = 0;
  std::vector<std::unique_ptr<Shard>> shards_;

  mutable std::atomic<int64_t> hits_{0};
  mutable std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
};

}  // namespace aceso

#endif  // SRC_COST_STAGE_CACHE_H_
