file(REMOVE_RECURSE
  "CMakeFiles/alpa_like_test.dir/alpa_like_test.cc.o"
  "CMakeFiles/alpa_like_test.dir/alpa_like_test.cc.o.d"
  "alpa_like_test"
  "alpa_like_test.pdb"
  "alpa_like_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alpa_like_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
