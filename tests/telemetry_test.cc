#include "src/obs/telemetry.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json.h"
#include "src/obs/chrome_trace.h"

namespace aceso {
namespace {

// ----- TelemetryEvent -----

TEST(TelemetryEventTest, SerializesTypedFieldsInInsertionOrder) {
  TelemetryEvent event("iteration");
  event.Int("iter", 3)
      .Dbl("best_time", 22.5)
      .Bool("accepted", true)
      .Str("primitive", "inc-tp");
  EXPECT_EQ(event.ToJsonLine(),
            "{\"type\":\"iteration\",\"iter\":3,\"best_time\":22.5,"
            "\"accepted\":true,\"primitive\":\"inc-tp\"}");
}

TEST(TelemetryEventTest, LinesAreAlwaysValidJson) {
  TelemetryEvent event("e\"vil\n");
  event.Str("k\"ey", "va\\lue\x01").Dbl("inf", 1.0 / 0.0).Int("n", -7);
  const Status status = JsonValidate(event.ToJsonLine());
  EXPECT_TRUE(status.ok()) << event.ToJsonLine() << ": " << status.ToString();
}

TEST(TelemetryEventTest, TypedGetters) {
  TelemetryEvent event("t");
  event.Int("i", 42).Dbl("d", 1.5).Bool("b", true).Str("s", "x");
  EXPECT_EQ(event.GetInt("i"), 42);
  EXPECT_EQ(event.GetDbl("d"), 1.5);
  EXPECT_EQ(event.GetBool("b"), true);
  ASSERT_NE(event.GetStr("s"), nullptr);
  EXPECT_EQ(*event.GetStr("s"), "x");
  // Widening conversions: bool reads as int, int reads as double.
  EXPECT_EQ(event.GetInt("b"), 1);
  EXPECT_EQ(event.GetDbl("i"), 42.0);
  // Absent or mistyped keys.
  EXPECT_FALSE(event.GetInt("missing").has_value());
  EXPECT_FALSE(event.GetBool("i").has_value());
  EXPECT_EQ(event.GetStr("i"), nullptr);
}

TEST(TelemetryEventTest, ExcludingDropsNamedKeys) {
  TelemetryEvent event("t");
  event.Dbl("t", 1.25).Dbl("dur", 0.5).Int("iter", 9);
  EXPECT_EQ(event.ToJsonLineExcluding({"t", "dur"}),
            "{\"type\":\"t\",\"iter\":9}");
}

// ----- TelemetrySink -----

TEST(TelemetrySinkTest, RingKeepsMostRecentEvents) {
  TelemetryOptions options;
  options.ring_capacity = 3;
  TelemetrySink sink(options);
  for (int i = 0; i < 5; ++i) {
    TelemetryEvent event("e");
    event.Int("i", i);
    sink.Emit(std::move(event));
  }
  EXPECT_EQ(sink.events_emitted(), 5u);
  EXPECT_EQ(sink.events_dropped(), 2u);
  const std::vector<TelemetryEvent> events = sink.Events();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events.front().GetInt("i"), 2);
  EXPECT_EQ(events.back().GetInt("i"), 4);
}

TEST(TelemetrySinkTest, WritesValidJsonlFile) {
  const std::string path = ::testing::TempDir() + "/telemetry_test.jsonl";
  {
    TelemetryOptions options;
    options.jsonl_path = path;
    TelemetrySink sink(options);
    TelemetryEvent a("alpha");
    a.Str("name", "quo\"ted\nname").Int("n", 1);
    sink.Emit(std::move(a));
    TelemetryEvent b("beta");
    b.Dbl("v", 0.25);
    sink.Emit(std::move(b));
    ASSERT_TRUE(sink.status().ok()) << sink.status().ToString();
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    const Status status = JsonValidate(line);
    EXPECT_TRUE(status.ok()) << line << ": " << status.ToString();
  }
  EXPECT_EQ(lines, 2);
  std::remove(path.c_str());
}

TEST(TelemetrySinkTest, OpenFailureLatchesIntoStatus) {
  TelemetryOptions options;
  options.jsonl_path = ::testing::TempDir() + "/no/such/dir/out.jsonl";
  TelemetrySink sink(options);
  EXPECT_FALSE(sink.status().ok());
}

TEST(TelemetrySinkTest, CountersAndTimers) {
  TelemetrySink sink;
  sink.IncrCounter("search.iterations");
  sink.IncrCounter("search.iterations", 4);
  sink.IncrCounter("search.accepts", 2);
  EXPECT_EQ(sink.counter("search.iterations"), 5);
  EXPECT_EQ(sink.counter("search.accepts"), 2);
  EXPECT_EQ(sink.counter("never.touched"), 0);

  sink.RecordTimer("search.worker_seconds", 0.5);
  sink.RecordTimer("search.worker_seconds", 1.5);
  const auto timers = sink.Timers();
  ASSERT_EQ(timers.count("search.worker_seconds"), 1u);
  const TelemetrySink::TimerStat& stat = timers.at("search.worker_seconds");
  EXPECT_EQ(stat.count, 2);
  EXPECT_DOUBLE_EQ(stat.total_seconds, 2.0);
  EXPECT_DOUBLE_EQ(stat.max_seconds, 1.5);
}

TEST(TelemetrySinkTest, ConcurrentEmittersLoseNothing) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 500;
  TelemetryOptions options;
  options.ring_capacity = kThreads * kPerThread;
  TelemetrySink sink(options);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&sink, t] {
      for (int i = 0; i < kPerThread; ++i) {
        TelemetryEvent event("e");
        event.Int("thread", t).Int("i", i);
        sink.Emit(std::move(event));
        sink.IncrCounter("emits");
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(sink.events_emitted(),
            static_cast<size_t>(kThreads * kPerThread));
  EXPECT_EQ(sink.events_dropped(), 0u);
  EXPECT_EQ(sink.counter("emits"), kThreads * kPerThread);
  EXPECT_EQ(sink.Events().size(), static_cast<size_t>(kThreads * kPerThread));
}

// ----- BuildSearchTrace -----

std::vector<TelemetryEvent> SyntheticSearchEvents() {
  std::vector<TelemetryEvent> events;
  TelemetryEvent begin("search_begin");
  begin.Dbl("t", 0.0).Int("worker", 0).Int("stages", 2);
  events.push_back(std::move(begin));
  TelemetryEvent iter("iteration");
  iter.Dbl("t", 0.1)
      .Dbl("dur", 0.1)
      .Int("worker", 0)
      .Int("stages", 2)
      .Int("iter", 0)
      .Bool("accepted", true)
      .Int("bottleneck_stage", 1)
      .Str("bottleneck_resource", "gpu \"mem\"")
      .Int("hops", 3)
      .Str("primitive", "inc-tp")
      .Int("generated", 12)
      .Int("deduped", 4)
      .Int("evaluated", 8);
  events.push_back(std::move(iter));
  TelemetryEvent reject("iteration");
  reject.Dbl("t", 0.3)
      .Dbl("dur", 0.2)
      .Int("worker", 0)
      .Int("iter", 1)
      .Bool("accepted", false);
  events.push_back(std::move(reject));
  TelemetryEvent end("search_end");
  end.Dbl("t", 0.5)
      .Dbl("dur", 0.5)
      .Int("worker", 0)
      .Int("stages", 2)
      .Int("iterations", 2)
      .Int("improvements", 1)
      .Int("configs_explored", 20);
  events.push_back(std::move(end));
  return events;
}

TEST(BuildSearchTraceTest, WorkersBecomeThreadsIterationsBecomeSlices) {
  const TraceDocument doc = BuildSearchTrace(SyntheticSearchEvents());
  ASSERT_EQ(doc.threads.size(), 1u);
  EXPECT_EQ(doc.threads[0].first, 0);
  EXPECT_EQ(doc.threads[0].second, "stages=2");
  // Worker span + 2 iteration slices.
  ASSERT_EQ(doc.slices.size(), 3u);
  // Slices are sorted by (tid, ts): span at 0.0, then the iterations.
  EXPECT_EQ(doc.slices[0].name, "search stages=2");
  EXPECT_DOUBLE_EQ(doc.slices[0].ts_seconds, 0.0);
  EXPECT_DOUBLE_EQ(doc.slices[0].dur_seconds, 0.5);
  EXPECT_EQ(doc.slices[1].name, "inc-tp x3");
  EXPECT_EQ(doc.slices[2].name, "reject");
}

TEST(BuildSearchTraceTest, TraceJsonSurvivesAdversarialResourceNames) {
  const std::string json = ToChromeTraceJson(BuildSearchTrace(SyntheticSearchEvents()));
  const Status status = JsonValidate(json);
  EXPECT_TRUE(status.ok()) << status.ToString();
  EXPECT_NE(json.find("gpu \\\"mem\\\""), std::string::npos);
}

}  // namespace
}  // namespace aceso
