# Empty dependencies file for execution_plan_test.
# This may be replaced when dependencies are built.
