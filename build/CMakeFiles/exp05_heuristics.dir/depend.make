# Empty dependencies file for exp05_heuristics.
# This may be replaced when dependencies are built.
