#include "src/profile/profile_db.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/text_record.h"

namespace aceso {
namespace {

// Relative standard deviation of simulated per-run timing noise.
constexpr double kRunJitter = 0.02;

// A stable per-key systematic bias (kernel selection, clock effects): the
// database "measures" this consistently, and the runtime simulator sees the
// same bias, so prediction error comes from modelling differences rather
// than raw noise.
double SystematicBias(uint64_t key_hash, double relative_magnitude) {
  // Map hash to [-1, 1] deterministically.
  const double unit =
      static_cast<double>(MixU64(key_hash) >> 11) * 0x1.0p-53 * 2.0 - 1.0;
  return 1.0 + relative_magnitude * unit;
}

int Log2Floor(int64_t v) {
  int l = 0;
  while (v > 1) {
    v >>= 1;
    ++l;
  }
  return l;
}

}  // namespace

uint64_t OpProfileKey::Hash() const {
  Hasher h;
  h.Add(op_signature);
  h.Add(shard_degree);
  h.Add(local_batch);
  h.Add(precision);
  return h.Digest();
}

uint64_t CommProfileKey::Hash() const {
  Hasher h;
  h.Add(kind);
  h.Add(group_size);
  h.Add(crosses_nodes);
  h.Add(log2_bytes);
  // Offset the domain so comm keys never collide with op keys.
  h.Add(uint64_t{0xC0111EC7});
  return h.Digest();
}

SimulatedProfiler::SimulatedProfiler(const ClusterSpec& cluster, uint64_t seed,
                                     int runs_per_measurement)
    : cluster_(cluster), interconnect_(cluster), seed_(seed),
      runs_(runs_per_measurement) {}

OpMeasurement SimulatedProfiler::MeasureOp(const Operator& op,
                                           const OpProfileKey& key) const {
  const double batch = static_cast<double>(key.local_batch);
  const double shards = static_cast<double>(key.shard_degree);
  const double flops = op.fwd_flops * batch / shards;
  // Forward traffic: read input + params shard, write output.
  const int64_t fwd_bytes = static_cast<int64_t>(
      (static_cast<double>(op.in_bytes + op.out_bytes) * batch +
       static_cast<double>(op.param_bytes)) /
      shards);
  const auto precision = static_cast<Precision>(key.precision);
  const double fwd_ideal = cluster_.gpu.ComputeTime(flops, fwd_bytes, precision);
  // Backward: ~2x FLOPs (grad wrt input and wrt weights) and ~2x traffic.
  const double bwd_ideal =
      cluster_.gpu.ComputeTime(2.0 * flops, 2 * fwd_bytes, precision);

  const uint64_t key_hash = key.Hash();
  const double bias = SystematicBias(key_hash ^ seed_, 0.05);

  // Average `runs_` jittered runs, like the paper's 50-run averaging.
  Rng rng(key_hash ^ MixU64(seed_));
  double fwd_sum = 0.0;
  double bwd_sum = 0.0;
  for (int r = 0; r < runs_; ++r) {
    fwd_sum += fwd_ideal * bias * (1.0 + rng.NextGaussian(0.0, kRunJitter));
    bwd_sum += bwd_ideal * bias * (1.0 + rng.NextGaussian(0.0, kRunJitter));
  }
  OpMeasurement m;
  m.fwd_seconds = std::max(fwd_sum / runs_, 1e-9);
  m.bwd_seconds = std::max(bwd_sum / runs_, 1e-9);
  return m;
}

double SimulatedProfiler::MeasureCollective(const CommProfileKey& key) const {
  CommDomain domain;
  domain.size = key.group_size;
  domain.crosses_nodes = key.crosses_nodes;
  const int64_t bytes = int64_t{1} << key.log2_bytes;
  const double ideal = interconnect_.CollectiveTime(
      static_cast<CollectiveKind>(key.kind), bytes, domain);
  const uint64_t key_hash = key.Hash();
  const double bias = SystematicBias(key_hash ^ seed_, 0.08);
  Rng rng(key_hash ^ MixU64(seed_));
  double sum = 0.0;
  for (int r = 0; r < runs_; ++r) {
    sum += ideal * bias * (1.0 + rng.NextGaussian(0.0, kRunJitter));
  }
  return std::max(sum / runs_, 0.0);
}

double SimulatedProfiler::SimulatedMeasurementCost(
    const OpMeasurement& m) const {
  return runs_ * (m.fwd_seconds + m.bwd_seconds);
}

ProfileDatabase::ProfileDatabase(const ClusterSpec& cluster, uint64_t seed)
    : cluster_(cluster), profiler_(cluster, seed) {}

std::unique_lock<std::mutex> ProfileDatabase::LockShard(
    const Shard& shard) const {
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    lock_contended_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

OpMeasurement ProfileDatabase::OpTime(const Operator& op, Precision precision,
                                      int shard_degree, int local_batch) {
  OpProfileKey key;
  key.op_signature = op.Signature();
  key.shard_degree = shard_degree;
  key.local_batch = local_batch;
  key.precision = static_cast<int>(precision);
  const uint64_t hash = key.Hash();
  Shard& shard = ShardFor(hash);
  lookups_.fetch_add(1, std::memory_order_relaxed);
  {
    auto lock = LockShard(shard);
    auto it = shard.op_entries.find(hash);
    if (it != shard.op_entries.end()) {
      return it->second;
    }
  }
  // Miss: measure with the shard unlocked (the measurement averages
  // `runs_` simulated runs and is the expensive part — holding the lock
  // here would convoy every concurrent lookup of this shard behind it),
  // then double-check: emplace ignores our value if another filler beat us.
  misses_.fetch_add(1, std::memory_order_relaxed);
  const OpMeasurement m = profiler_.MeasureOp(op, key);
  auto lock = LockShard(shard);
  auto [it, inserted] = shard.op_entries.emplace(hash, m);
  if (inserted) {
    shard.simulated_profiling_seconds += profiler_.SimulatedMeasurementCost(m);
  }
  return it->second;
}

double ProfileDatabase::CollectiveBucketTime(const CommProfileKey& key) {
  const uint64_t hash = key.Hash();
  Shard& shard = ShardFor(hash);
  lookups_.fetch_add(1, std::memory_order_relaxed);
  {
    auto lock = LockShard(shard);
    auto it = shard.comm_entries.find(hash);
    if (it != shard.comm_entries.end()) {
      return it->second;
    }
  }
  // Same unlocked-measure + first-writer-wins insert as OpTime.
  misses_.fetch_add(1, std::memory_order_relaxed);
  const double t = profiler_.MeasureCollective(key);
  auto lock = LockShard(shard);
  auto [it, inserted] = shard.comm_entries.emplace(hash, t);
  if (inserted) {
    shard.simulated_profiling_seconds += 50 * t;
  }
  return it->second;
}

double ProfileDatabase::CollectiveTime(CollectiveKind kind, int64_t bytes,
                                       const CommDomain& domain) {
  if (domain.size <= 1 || bytes <= 0) {
    return 0.0;
  }
  CommProfileKey key;
  key.kind = static_cast<int>(kind);
  key.group_size = domain.size;
  key.crosses_nodes = domain.crosses_nodes;
  key.log2_bytes = Log2Floor(bytes);
  const double low = CollectiveBucketTime(key);
  const int64_t low_bytes = int64_t{1} << key.log2_bytes;
  if (bytes == low_bytes) {
    return low;
  }
  CommProfileKey high_key = key;
  ++high_key.log2_bytes;
  const double high = CollectiveBucketTime(high_key);
  const double frac = static_cast<double>(bytes - low_bytes) /
                      static_cast<double>(low_bytes);
  return low + (high - low) * frac;
}

size_t ProfileDatabase::NumEntries() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    auto lock = LockShard(shard);
    total += shard.op_entries.size() + shard.comm_entries.size();
  }
  return total;
}

double ProfileDatabase::SimulatedProfilingSeconds() const {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    auto lock = LockShard(shard);
    total += shard.simulated_profiling_seconds;
  }
  return total;
}

ProfileDbStats ProfileDatabase::stats() const {
  ProfileDbStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.lock_contended = lock_contended_.load(std::memory_order_relaxed);
  return s;
}

Status ProfileDatabase::Save(const std::string& path) const {
  std::vector<TextRecord> records;
  for (const Shard& shard : shards_) {
    auto lock = LockShard(shard);
    records.reserve(records.size() + shard.op_entries.size() +
                    shard.comm_entries.size());
    for (const auto& [hash, m] : shard.op_entries) {
      TextRecord rec;
      rec.Set("type", "op");
      rec.SetInt("key", static_cast<int64_t>(hash));
      rec.SetDouble("fwd", m.fwd_seconds);
      rec.SetDouble("bwd", m.bwd_seconds);
      records.push_back(std::move(rec));
    }
    for (const auto& [hash, t] : shard.comm_entries) {
      TextRecord rec;
      rec.Set("type", "comm");
      rec.SetInt("key", static_cast<int64_t>(hash));
      rec.SetDouble("time", t);
      records.push_back(std::move(rec));
    }
  }
  return WriteRecordsToFile(path, records);
}

Status ProfileDatabase::Load(const std::string& path) {
  auto records = ReadRecordsFromFile(path);
  if (!records.ok()) {
    return records.status();
  }
  for (const TextRecord& rec : *records) {
    auto type = rec.Get("type");
    auto key = rec.GetInt("key");
    if (!type.ok() || !key.ok()) {
      return InvalidArgument("malformed profile record");
    }
    const auto hash = static_cast<uint64_t>(*key);
    if (*type == "op") {
      auto fwd = rec.GetDouble("fwd");
      auto bwd = rec.GetDouble("bwd");
      if (!fwd.ok() || !bwd.ok()) {
        return InvalidArgument("malformed op profile record");
      }
      Shard& shard = ShardFor(hash);
      auto lock = LockShard(shard);
      shard.op_entries[hash] = OpMeasurement{*fwd, *bwd};
    } else if (*type == "comm") {
      auto t = rec.GetDouble("time");
      if (!t.ok()) {
        return InvalidArgument("malformed comm profile record");
      }
      Shard& shard = ShardFor(hash);
      auto lock = LockShard(shard);
      shard.comm_entries[hash] = *t;
    } else {
      return InvalidArgument("unknown profile record type: " + *type);
    }
  }
  return OkStatus();
}

}  // namespace aceso
