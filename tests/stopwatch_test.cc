#include "src/common/stopwatch.h"

#include <gtest/gtest.h>

#include <thread>

namespace aceso {
namespace {

TEST(StopwatchTest, ElapsedGrows) {
  Stopwatch watch;
  const double t0 = watch.ElapsedSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  const double t1 = watch.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  EXPECT_GT(t1, t0);
  EXPECT_GT(watch.ElapsedMillis(), 4.0);
}

TEST(StopwatchTest, RestartResets) {
  Stopwatch watch;
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  watch.Restart();
  EXPECT_LT(watch.ElapsedSeconds(), 0.005);
}

TEST(TimeBudgetTest, UnlimitedNeverExpires) {
  const TimeBudget budget(0.0);
  EXPECT_TRUE(budget.unlimited());
  EXPECT_FALSE(budget.Expired());
  EXPECT_GT(budget.RemainingSeconds(), 1e12);
}

TEST(TimeBudgetTest, ExpiresAfterDeadline) {
  const TimeBudget budget(0.01);
  EXPECT_FALSE(budget.unlimited());
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_TRUE(budget.Expired());
  EXPECT_EQ(budget.RemainingSeconds(), 0.0);
}

TEST(TimeBudgetTest, RemainingShrinks) {
  const TimeBudget budget(10.0);
  const double r0 = budget.RemainingSeconds();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_LT(budget.RemainingSeconds(), r0);
  EXPECT_FALSE(budget.Expired());
  EXPECT_DOUBLE_EQ(budget.budget_seconds(), 10.0);
}

}  // namespace
}  // namespace aceso
