# Empty compiler generated dependencies file for exp09_memory_accuracy.
# This may be replaced when dependencies are built.
