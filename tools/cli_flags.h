// Strict numeric parsing for command-line flags.
//
// Unlike the atoi/atof family, these helpers consume the *entire* token and
// fail on anything else: empty values, trailing garbage ("8x", "2.5s"),
// out-of-range magnitudes, and values of the wrong sign where the flag
// demands one. On failure they print which flag got which value, so a typo
// exits with usage instead of silently parsing as 0.

#ifndef TOOLS_CLI_FLAGS_H_
#define TOOLS_CLI_FLAGS_H_

#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <limits>
#include <string>

namespace aceso {
namespace cli {

inline bool FlagError(const char* flag, const char* value, const char* want) {
  std::fprintf(stderr, "%s: expected %s, got \"%s\"\n", flag, want,
               value == nullptr ? "(missing)" : value);
  return false;
}

inline bool ParseInt(const char* flag, const char* value, int* out) {
  if (value == nullptr || *value == '\0') {
    return FlagError(flag, value, "an integer");
  }
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value, &end, 10);
  if (errno == ERANGE || *end != '\0' || end == value ||
      parsed < std::numeric_limits<int>::min() ||
      parsed > std::numeric_limits<int>::max()) {
    return FlagError(flag, value, "an integer");
  }
  *out = static_cast<int>(parsed);
  return true;
}

inline bool ParseUint64(const char* flag, const char* value, uint64_t* out) {
  if (value == nullptr || *value == '\0' || *value == '-') {
    return FlagError(flag, value, "a non-negative integer");
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (errno == ERANGE || *end != '\0' || end == value) {
    return FlagError(flag, value, "a non-negative integer");
  }
  *out = static_cast<uint64_t>(parsed);
  return true;
}

inline bool ParseDouble(const char* flag, const char* value, double* out) {
  if (value == nullptr || *value == '\0') {
    return FlagError(flag, value, "a number");
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value, &end);
  if (errno == ERANGE || *end != '\0' || end == value) {
    return FlagError(flag, value, "a number");
  }
  *out = parsed;
  return true;
}

// Convenience variants with a positivity requirement, for budgets/counts
// where zero or negative values are always caller error.
inline bool ParsePositiveInt(const char* flag, const char* value, int* out) {
  int parsed = 0;
  if (!ParseInt(flag, value, &parsed)) return false;
  if (parsed <= 0) return FlagError(flag, value, "a positive integer");
  *out = parsed;
  return true;
}

inline bool ParsePositiveDouble(const char* flag, const char* value,
                                double* out) {
  double parsed = 0.0;
  if (!ParseDouble(flag, value, &parsed)) return false;
  if (!(parsed > 0.0)) return FlagError(flag, value, "a positive number");
  *out = parsed;
  return true;
}

// Matches the value against a closed set of tokens (case-sensitive, whole
// token) and stores the index of the match. Anything else — including an
// abbreviation or a case mismatch — fails with every accepted spelling
// listed, e.g.  --seed-mode: expected one of heuristic|dp, got "DP".
inline bool ParseChoice(const char* flag, const char* value,
                        std::initializer_list<const char*> choices,
                        int* out_index) {
  if (value != nullptr && *value != '\0') {
    int index = 0;
    for (const char* choice : choices) {
      if (std::strcmp(value, choice) == 0) {
        *out_index = index;
        return true;
      }
      ++index;
    }
  }
  std::string want = "one of ";
  bool first = true;
  for (const char* choice : choices) {
    if (!first) want += '|';
    first = false;
    want += choice;
  }
  return FlagError(flag, value, want.c_str());
}

}  // namespace cli
}  // namespace aceso

#endif  // TOOLS_CLI_FLAGS_H_
