#include "src/ir/operator.h"

namespace aceso {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kEmbedding:
      return "embedding";
    case OpKind::kLayerNorm:
      return "layernorm";
    case OpKind::kQkvProj:
      return "qkv_proj";
    case OpKind::kAttnCore:
      return "attn_core";
    case OpKind::kAttnOutProj:
      return "attn_out_proj";
    case OpKind::kCrossQkvProj:
      return "cross_qkv_proj";
    case OpKind::kCrossAttnCore:
      return "cross_attn_core";
    case OpKind::kMlpFc1:
      return "mlp_fc1";
    case OpKind::kGelu:
      return "gelu";
    case OpKind::kMlpFc2:
      return "mlp_fc2";
    case OpKind::kLmHead:
      return "lm_head";
    case OpKind::kSoftmaxLoss:
      return "softmax_loss";
    case OpKind::kConv2d:
      return "conv2d";
    case OpKind::kBatchNorm:
      return "batchnorm";
    case OpKind::kRelu:
      return "relu";
    case OpKind::kMaxPool:
      return "maxpool";
    case OpKind::kAvgPool:
      return "avgpool";
    case OpKind::kFullyConnected:
      return "fully_connected";
    case OpKind::kResidualAdd:
      return "residual_add";
  }
  return "unknown";
}

const char* TpDimName(TpDim dim) {
  switch (dim) {
    case TpDim::kNone:
      return "none";
    case TpDim::kColumn:
      return "column";
    case TpDim::kRow:
      return "row";
  }
  return "unknown";
}

const char* TpClassName(TpClass tp_class) {
  switch (tp_class) {
    case TpClass::kPartitioned:
      return "partitioned";
    case TpClass::kShardFollower:
      return "shard_follower";
    case TpClass::kReplicated:
      return "replicated";
  }
  return "unknown";
}

uint64_t Operator::Signature() const {
  Hasher h;
  h.Add(static_cast<int>(kind));
  h.Add(fwd_flops);
  h.Add(param_bytes);
  h.Add(in_bytes);
  h.Add(out_bytes);
  h.Add(work_bytes);
  h.Add(max_tp);
  h.Add(static_cast<int>(tp_class));
  return h.Digest();
}

}  // namespace aceso
