#include "src/config/config_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/ir/models/model_zoo.h"

namespace aceso {
namespace {

class ConfigIoTest : public ::testing::Test {
 protected:
  ConfigIoTest()
      : graph_(models::Gpt3(0.35)), cluster_(ClusterSpec::WithGpuCount(8)) {}

  OpGraph graph_;
  ClusterSpec cluster_;
};

TEST_F(ConfigIoTest, RoundTripPreservesSemantics) {
  auto config = MakeEvenConfig(graph_, cluster_, 4, 2);
  ASSERT_TRUE(config.ok());
  // Make it interesting: recompute flags and a flipped dim.
  config->MutableOpSettings(3).recompute = true;
  config->MutableOpSettings(10).recompute = true;
  const std::string text = SerializeConfig(*config, graph_.name());
  auto parsed = ParseConfig(text, graph_);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->SemanticHash(graph_), config->SemanticHash(graph_));
  EXPECT_TRUE(parsed->Validate(graph_, cluster_).ok());
}

TEST_F(ConfigIoTest, RoundTripHeterogeneousStage) {
  auto config = MakeEvenConfig(graph_, cluster_, 1, 8);
  ASSERT_TRUE(config.ok());
  // Mixed settings inside the stage.
  StageConfig& stage = config->MutableStage(0);
  for (int i = 0; i < stage.num_ops / 2; ++i) {
    const Operator& op = graph_.op(i);
    if (op.tp_class == TpClass::kPartitioned) {
      stage.ops[static_cast<size_t>(i)].tp_dim = TpDim::kRow;
    }
  }
  const std::string text = SerializeConfig(*config, graph_.name());
  auto parsed = ParseConfig(text, graph_);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->SemanticHash(graph_), config->SemanticHash(graph_));
}

TEST_F(ConfigIoTest, RejectsWrongModel) {
  auto config = MakeEvenConfig(graph_, cluster_, 2, 2);
  ASSERT_TRUE(config.ok());
  const std::string text = SerializeConfig(*config, "gpt3-13b");
  auto parsed = ParseConfig(text, graph_);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(ConfigIoTest, RejectsGarbage) {
  EXPECT_FALSE(ParseConfig("not a config", graph_).ok());
  EXPECT_FALSE(ParseConfig("record {\n  type = something_else\n}\n", graph_)
                   .ok());
  EXPECT_FALSE(ParseConfig("", graph_).ok());
}

TEST_F(ConfigIoTest, RejectsTruncatedOps) {
  auto config = MakeEvenConfig(graph_, cluster_, 2, 2);
  ASSERT_TRUE(config.ok());
  std::string text = SerializeConfig(*config, graph_.name());
  // Corrupt a run length.
  const size_t star = text.find('*');
  ASSERT_NE(star, std::string::npos);
  text[star + 1] = '1';
  text[star + 2] = ' ';
  auto parsed = ParseConfig(text, graph_);
  EXPECT_FALSE(parsed.ok());
}

TEST_F(ConfigIoTest, FileRoundTrip) {
  auto config = MakeEvenConfig(graph_, cluster_, 3, 2);
  ASSERT_TRUE(config.ok());
  const std::string path = ::testing::TempDir() + "/config_io_test.txt";
  ASSERT_TRUE(SaveConfigToFile(path, *config, graph_.name()).ok());
  auto loaded = LoadConfigFromFile(path, graph_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->SemanticHash(graph_), config->SemanticHash(graph_));
  std::remove(path.c_str());
}

TEST_F(ConfigIoTest, MissingFileIsNotFound) {
  auto loaded = LoadConfigFromFile("/does/not/exist", graph_);
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace aceso
