// Fixed-size worker pool used for the parallel search over pipeline stage
// counts (§4.3: "Parallel search of configuration under different pipeline
// stage numbers").

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace aceso {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  // Drains outstanding work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

// Runs fn(i) for i in [0, count) across the pool and waits for completion.
void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn);

}  // namespace aceso

#endif  // SRC_COMMON_THREAD_POOL_H_
