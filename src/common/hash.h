// Hashing utilities used for configuration deduplication (§4.3).

#ifndef SRC_COMMON_HASH_H_
#define SRC_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace aceso {

inline constexpr uint64_t kFnvOffsetBasis = 0xCBF29CE484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001B3ULL;

// FNV-1a over raw bytes, continuing from `seed`.
inline uint64_t FnvHashBytes(const void* data, size_t size,
                             uint64_t seed = kFnvOffsetBasis) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t FnvHashString(std::string_view s,
                              uint64_t seed = kFnvOffsetBasis) {
  return FnvHashBytes(s.data(), s.size(), seed);
}

// Order-dependent combiner (boost-style, widened to 64 bits).
inline uint64_t HashCombine(uint64_t seed, uint64_t value) {
  return seed ^ (value + 0x9E3779B97F4A7C15ULL + (seed << 12) + (seed >> 4));
}

// Full-avalanche finalizer (splitmix64): every input bit flips each output
// bit with ~1/2 probability. Bijective, so Mix64(a) == Mix64(b) iff a == b —
// equality-based dedup over mixed values is exact. HashCombine alone is one
// weak mixing round; when two structured keys differing in a few low bits
// are each combined with *different* seeds also differing in a few bits, the
// differences can cancel. Finalize such values with Mix64 before combining.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Pass-through hasher for unordered containers keyed by values that are
// already well-mixed 64-bit hashes (semantic hashes, cache keys): re-hashing
// them through std::hash costs cycles without improving distribution.
struct IdentityHash {
  size_t operator()(uint64_t value) const noexcept {
    return static_cast<size_t>(value);
  }
};

// Streaming hasher for composing structured hashes field by field.
class Hasher {
 public:
  Hasher& Add(uint64_t value) {
    state_ = HashCombine(state_, value);
    return *this;
  }
  Hasher& Add(int64_t value) { return Add(static_cast<uint64_t>(value)); }
  Hasher& Add(int value) { return Add(static_cast<uint64_t>(value)); }
  Hasher& Add(bool value) { return Add(static_cast<uint64_t>(value)); }
  Hasher& Add(double value) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(value));
    __builtin_memcpy(&bits, &value, sizeof(bits));
    return Add(bits);
  }
  Hasher& Add(std::string_view s) { return Add(FnvHashString(s)); }

  uint64_t Digest() const { return state_; }

 private:
  uint64_t state_ = kFnvOffsetBasis;
};

}  // namespace aceso

#endif  // SRC_COMMON_HASH_H_
