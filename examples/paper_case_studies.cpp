// The paper's §5.4 case studies, reproduced:
//
//  1. GPT-3 1.3B on 4 GPUs — Megatron-LM/Alpa pick 4-way data parallelism
//     with blanket recomputation; Aceso instead finds 4-way *pipeline*
//     parallelism with uneven stages (lighter first/last stages balancing
//     recompute and loss costs) and only a few recomputed operators.
//  2. Wide-ResNet 6.8B on 16 GPUs — inside the big final stage, Aceso mixes
//     data and tensor parallelism per operator instead of Alpa's uniform
//     8-way tensor parallelism.
//
//   ./build/examples/paper_case_studies

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <set>

#include "src/aceso.h"

namespace {

using namespace aceso;

void Gpt3CaseStudy() {
  std::printf("--- case study 1: GPT-3 1.3B on 4 GPUs (§5.4) ---\n");
  const OpGraph model = models::Gpt3(1.3);
  // The paper's V100s were effectively tighter than our idealized 30 GB
  // budget (real framework overheads): emulate that pressure so the
  // dp-vs-pipeline trade-off of the case study appears.
  ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  cluster.gpu.memory_bytes = 16 * kGiB;
  ProfileDatabase db(cluster);
  PerformanceModel perf_model(&model, cluster, &db);

  const BaselineResult megatron = MegatronGridSearch(perf_model);
  SearchOptions options;
  options.time_budget_seconds = 3.0;
  const SearchResult aceso = AcesoSearch(perf_model, options);
  ACESO_CHECK(megatron.found);
  ACESO_CHECK(aceso.found);

  std::printf("Megatron-LM grid pick: %s\n",
              megatron.best.config.ShortString().c_str());
  std::printf("Aceso pick:            %s\n",
              aceso.best.config.ShortString().c_str());

  const ParallelConfig& plan = aceso.best.config;
  if (plan.num_stages() > 1) {
    int min_ops = model.num_ops();
    int max_ops = 0;
    for (const StageConfig& stage : plan.stages()) {
      min_ops = std::min(min_ops, stage.num_ops);
      max_ops = std::max(max_ops, stage.num_ops);
    }
    std::printf("uneven pipeline stages: %d..%d ops per stage%s\n", min_ops,
                max_ops, max_ops > min_ops ? " (as in the paper)" : "");
    int recomputed = 0;
    for (const StageConfig& stage : plan.stages()) {
      recomputed += stage.NumRecomputed();
    }
    std::printf("op-level recomputation: %d of %d ops\n", recomputed,
                model.num_ops());
  }
  std::printf("speedup over the Megatron-LM grid pick: %.2fx\n\n",
              megatron.best.perf.iteration_time /
                  aceso.best.perf.iteration_time);
}

void WideResnetCaseStudy() {
  std::printf("--- case study 2: Wide-ResNet 6.8B on 16 GPUs (§5.4) ---\n");
  const OpGraph model = models::WideResnet(6.8);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(16);
  ProfileDatabase db(cluster);
  PerformanceModel perf_model(&model, cluster, &db);

  SearchOptions options;
  options.time_budget_seconds = 4.0;
  const SearchResult aceso = AcesoSearch(perf_model, options);
  ACESO_CHECK(aceso.found);
  std::printf("Aceso pick: %s\n", aceso.best.config.ShortString().c_str());

  // Count distinct (tp, dp) pairs inside each stage: heterogeneity the
  // uniform baselines cannot express.
  for (int s = 0; s < aceso.best.config.num_stages(); ++s) {
    const StageConfig& stage = aceso.best.config.stage(s);
    std::set<std::pair<int, int>> combos;
    for (const OpParallel& setting : stage.ops) {
      combos.insert({setting.tp, setting.dp});
    }
    std::printf("  stage %d (%d GPUs): %zu distinct (tp,dp) combinations\n",
                s, stage.num_devices, combos.size());
  }
  std::set<std::pair<int, int>> all_combos;
  for (const StageConfig& stage : aceso.best.config.stages()) {
    for (const OpParallel& setting : stage.ops) {
      all_combos.insert({setting.tp, setting.dp});
    }
  }
  std::printf(
      "\n%zu distinct (tp,dp) combinations across the plan — the paper's\n"
      "'different operators adopt diverse parallelism settings'. Whether the\n"
      "mix lands inside one stage or across stages depends on the budget and\n"
      "cost surface; the §4.2 fine-tuning pass that produces in-stage mixes\n"
      "is exercised directly in tests/finetune_test.cc.\n",
      all_combos.size());
}

}  // namespace

int main() {
  Gpt3CaseStudy();
  WideResnetCaseStudy();
  return 0;
}
