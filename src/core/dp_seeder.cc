#include "src/core/dp_seeder.h"

#include <algorithm>
#include <utility>

#include "src/core/seed_adapt.h"

namespace aceso {

StagePrefixMetrics BuildStagePrefix(const PerformanceModel& model, int mesh,
                                    int tp, bool recompute, int mbs) {
  StagePrefixMetrics out;
  const int dp = mesh / tp;
  if (dp < 1 || mbs % dp != 0) {
    return out;
  }
  const OpGraph& graph = model.graph();
  const ClusterSpec& cluster = model.cluster();
  const int n = graph.num_ops();
  const int local_batch = mbs / dp;
  const CommDomain tp_domain{tp, tp > cluster.gpus_per_node};
  out.time.resize(static_cast<size_t>(n) + 1, 0.0);
  out.act.resize(static_cast<size_t>(n) + 1, 0);
  out.params.resize(static_cast<size_t>(n) + 1, 0);
  for (int i = 0; i < n; ++i) {
    const Operator& op = graph.op(i);
    const int eff_tp = ClampOpTp(op, tp);
    const OpMeasurement m = model.db().OpTime(
        op, graph.precision(), EffectiveShards(op, eff_tp), local_batch);
    double time = m.fwd_seconds + m.bwd_seconds;
    if (recompute) {
      time += m.fwd_seconds;
    }
    const bool sharded = op.tp_class == TpClass::kPartitioned && eff_tp > 1;
    if (sharded) {
      const TpDim dim = op.default_tp_dim == TpDim::kNone ? TpDim::kColumn
                                                          : op.default_tp_dim;
      const int64_t bytes =
          (dim == TpDim::kColumn ? op.in_bytes : op.out_bytes) *
          static_cast<int64_t>(local_batch);
      time += model.db().CollectiveTime(CollectiveKind::kAllReduce, bytes,
                                        tp_domain);
    }
    int64_t act = 0;
    if (!recompute) {
      const int store_shards =
          sharded && op.default_tp_dim == TpDim::kColumn
              ? eff_tp
              : (op.tp_class == TpClass::kShardFollower
                     ? EffectiveShards(op, eff_tp)
                     : 1);
      act = op.out_bytes * static_cast<int64_t>(local_batch) / store_shards;
    }
    const int64_t params = sharded ? op.param_bytes / eff_tp : op.param_bytes;
    out.time[static_cast<size_t>(i) + 1] =
        out.time[static_cast<size_t>(i)] + time;
    out.act[static_cast<size_t>(i) + 1] =
        out.act[static_cast<size_t>(i)] + act;
    out.params[static_cast<size_t>(i) + 1] =
        out.params[static_cast<size_t>(i)] + params;
  }
  out.valid = true;
  return out;
}

namespace {

// Boundary mask over op cuts [0..n]: inside a maximal run of repeating
// layers (by op signature — the same structure run compression replays,
// DESIGN.md §12), only cuts at period multiples stay allowed, so the DP
// works on the distinct-layer skeleton instead of every op of a deep stack.
// Endpoints 0 and n are always allowed. Shared with the neighbor-seed
// adaptation (src/core/seed_adapt.h), which snaps stretched stage
// boundaries to the same mask.
std::vector<char> AllowedCuts(const OpGraph& graph, bool compress_runs) {
  return SeedAdaptAllowedCuts(graph, compress_runs);
}

}  // namespace

StatusOr<DpSeedResult> DpSeedConfig(const PerformanceModel& model,
                                    int num_stages,
                                    const DpSeedOptions& options) {
  const OpGraph& graph = model.graph();
  const ClusterSpec& cluster = model.cluster();
  const int n = graph.num_ops();
  const int gpus = cluster.num_gpus();
  const int S = num_stages;
  if (S < 1 || S > std::min(gpus, n)) {
    return NotFound("dp seed: stage count " + std::to_string(S) +
                    " not constructible");
  }
  auto meshes = SplitDevicesPow2(gpus, S);
  if (!meshes.ok()) {
    return NotFound("dp seed: " + meshes.status().ToString());
  }

  const std::vector<char> cut_ok = AllowedCuts(graph, options.compress_runs);
  const int64_t batch = graph.global_batch_size();
  const double opt_mult = OptimizerMultiplier(graph.precision());
  const int64_t mem_cap = options.memory_limit_bytes > 0
                              ? options.memory_limit_bytes
                              : cluster.gpu.memory_bytes;
  const int max_len =
      std::max(1, static_cast<int>(options.max_ops_per_stage_factor * n / S));
  constexpr double kInf = 1e300;

  DpSeedResult result;
  bool found = false;

  for (int mbs = 1; mbs <= options.max_microbatch && batch % mbs == 0;
       mbs *= 2) {
    // Per-stage (tp, recompute) options, priced once per distinct mesh size
    // (SplitDevicesPow2 produces at most two distinct sizes).
    struct Option {
      int tp;
      bool recompute;
      StagePrefixMetrics prefix;
    };
    struct MeshOptions {
      int mesh = 0;
      std::vector<Option> opts;
    };
    std::vector<MeshOptions> by_mesh;
    // Callers hold references into by_mesh across later calls; one slot per
    // stage bounds the distinct mesh sizes, so no reallocation can occur.
    by_mesh.reserve(static_cast<size_t>(S));
    auto options_for_mesh = [&](int mesh) -> const std::vector<Option>& {
      for (const MeshOptions& mo : by_mesh) {
        if (mo.mesh == mesh) {
          return mo.opts;
        }
      }
      MeshOptions mo;
      mo.mesh = mesh;
      for (int tp = 1; tp <= mesh; tp *= 2) {
        for (const bool rc : {false, true}) {
          Option o{tp, rc, BuildStagePrefix(model, mesh, tp, rc, mbs)};
          if (o.prefix.valid) {
            mo.opts.push_back(std::move(o));
          }
        }
      }
      by_mesh.push_back(std::move(mo));
      return by_mesh.back().opts;
    };

    // f[s][i]: min bottleneck time covering the first i ops with s stages,
    // stage s on mesh meshes[s-1], boundaries restricted to cut_ok.
    struct Cell {
      double value = 1e300;
      int prev_i = -1;
      int option = -1;
    };
    std::vector<std::vector<Cell>> f(
        static_cast<size_t>(S) + 1,
        std::vector<Cell>(static_cast<size_t>(n) + 1));
    f[0][0].value = 0.0;

    bool priceable = true;
    for (int s = 1; s <= S && priceable; ++s) {
      const int mesh = (*meshes)[static_cast<size_t>(s) - 1];
      const std::vector<Option>& opts = options_for_mesh(mesh);
      if (opts.empty()) {
        priceable = false;
        break;
      }
      const int in_flight = S - s + 1;
      for (int i = s; i <= n; ++i) {
        if (!cut_ok[static_cast<size_t>(i)] && i != n) {
          continue;
        }
        Cell& cell = f[static_cast<size_t>(s)][static_cast<size_t>(i)];
        const int j_min = std::max(s - 1, i - max_len);
        for (int j = j_min; j < i; ++j) {
          if (!cut_ok[static_cast<size_t>(j)]) {
            continue;
          }
          const Cell& prev =
              f[static_cast<size_t>(s) - 1][static_cast<size_t>(j)];
          if (prev.value >= kInf) {
            continue;
          }
          for (size_t oi = 0; oi < opts.size(); ++oi) {
            const StagePrefixMetrics& pm = opts[oi].prefix;
            const double time = pm.time[static_cast<size_t>(i)] -
                                pm.time[static_cast<size_t>(j)];
            const int64_t act = pm.act[static_cast<size_t>(i)] -
                                pm.act[static_cast<size_t>(j)];
            const int64_t params = pm.params[static_cast<size_t>(i)] -
                                   pm.params[static_cast<size_t>(j)];
            const int64_t mem =
                params +
                static_cast<int64_t>(static_cast<double>(params) * opt_mult) +
                act * in_flight;
            if (mem > mem_cap) {
              continue;
            }
            const double value = std::max(prev.value, time);
            if (value < cell.value) {
              cell.value = value;
              cell.prev_i = j;
              cell.option = static_cast<int>(oi);
            }
          }
        }
      }
    }
    if (!priceable ||
        f[static_cast<size_t>(S)][static_cast<size_t>(n)].value >= kInf) {
      continue;
    }

    // Reconstruct and price with the full performance model.
    std::vector<std::pair<int, int>> plan;  // (first_op, option)
    int i = n;
    for (int s = S; s >= 1; --s) {
      const Cell& cell = f[static_cast<size_t>(s)][static_cast<size_t>(i)];
      plan.emplace_back(cell.prev_i, cell.option);
      i = cell.prev_i;
    }
    std::reverse(plan.begin(), plan.end());

    ParallelConfig config;
    config.set_microbatch_size(mbs);
    bool constructed = true;
    for (size_t s = 0; s < plan.size(); ++s) {
      const auto [first_op, oi] = plan[s];
      const int end_op = s + 1 < plan.size() ? plan[s + 1].first : n;
      const int mesh = (*meshes)[s];
      const std::vector<Option>& opts = options_for_mesh(mesh);
      if (oi < 0 || oi >= static_cast<int>(opts.size())) {
        constructed = false;
        break;
      }
      StageConfig stage;
      stage.first_op = first_op;
      stage.num_ops = end_op - first_op;
      stage.num_devices = mesh;
      const Option& o = opts[static_cast<size_t>(oi)];
      stage.SetUniformParallelism(graph, o.tp, mesh / o.tp);
      if (o.recompute) {
        for (OpParallel& setting : stage.ops) {
          setting.recompute = true;
        }
      }
      config.AddStage(std::move(stage));
    }
    if (!constructed || !config.Validate(graph, cluster).ok()) {
      continue;
    }
    PerfResult perf = model.Evaluate(config);
    perf.ApplyMemoryLimit(options.memory_limit_bytes);
    ++result.evaluations;
    if (!found || perf.BetterThan(result.perf)) {
      found = true;
      result.config = std::move(config);
      result.perf = std::move(perf);
    }
  }

  if (!found) {
    return NotFound("dp seed: no constructible DP solution for " +
                    std::to_string(S) + " stages");
  }
  return result;
}

}  // namespace aceso
