// Cross-module integration tests: full search -> execute pipelines, the
// paper's case studies, and end-to-end accuracy properties.

#include <gtest/gtest.h>

#include "src/aceso.h"

namespace aceso {
namespace {

TEST(IntegrationTest, SearchThenExecuteGpt) {
  const OpGraph graph = models::Gpt3(0.35);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);
  SearchOptions options;
  options.time_budget_seconds = 1.0;
  const SearchResult search = AcesoSearch(model, options);
  ASSERT_TRUE(search.found);

  PipelineExecutor executor(&model);
  const ExecutionResult run = executor.Execute(search.best.config);
  EXPECT_FALSE(run.oom);
  EXPECT_GT(run.Throughput(graph.global_batch_size()), 0.0);
}

TEST(IntegrationTest, TimePredictionAccuracy) {
  // Exp#8's property at test scale: the performance model's iteration-time
  // prediction lands within 15% of the simulated actual execution.
  const OpGraph graph = models::Gpt3(0.35);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);
  PipelineExecutor executor(&model);
  for (int stages : {1, 2, 4}) {
    auto config = MakeEvenConfig(graph, cluster, stages, 2);
    ASSERT_TRUE(config.ok());
    const PerfResult predicted = model.Evaluate(*config);
    const ExecutionResult actual = executor.Execute(*config);
    const double err = std::abs(actual.iteration_seconds -
                                predicted.iteration_time) /
                       actual.iteration_seconds;
    EXPECT_LT(err, 0.15) << "stages=" << stages;
  }
}

TEST(IntegrationTest, MemoryPredictionIsSafeOverestimate) {
  // Exp#9's property: predictions avoid underestimating enough to OOM —
  // predicted >= actual * 0.9 across stage counts.
  const OpGraph graph = models::Gpt3(0.35);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);
  PipelineExecutor executor(&model);
  for (int stages : {1, 2, 4}) {
    auto config = MakeEvenConfig(graph, cluster, stages, 2);
    ASSERT_TRUE(config.ok());
    const PerfResult predicted = model.Evaluate(*config);
    const ExecutionResult actual = executor.Execute(*config);
    for (int s = 0; s < stages; ++s) {
      const int64_t predicted_mem =
          predicted.stages[static_cast<size_t>(s)].memory_bytes;
      const int64_t actual_mem =
          actual.stages[static_cast<size_t>(s)].peak_reserved_bytes;
      EXPECT_GT(static_cast<double>(predicted_mem),
                static_cast<double>(actual_mem) * 0.9)
          << "stage " << s << " of " << stages;
    }
  }
}

TEST(IntegrationTest, CaseStudyGpt13BOn4Gpus) {
  // §5.4 case study: for GPT-3 1.3B on 4 GPUs, Aceso prefers pipeline
  // parallelism with little recomputation and uneven stages, while
  // Megatron's grid prefers data parallelism with recomputation. Aceso's
  // plan must be at least as fast.
  const OpGraph graph = models::Gpt3(1.3);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);

  SearchOptions options;
  options.time_budget_seconds = 2.0;
  const SearchResult aceso = AcesoSearch(model, options);
  const BaselineResult megatron = MegatronGridSearch(model);
  ASSERT_TRUE(aceso.found);
  ASSERT_TRUE(megatron.found);
  EXPECT_LE(aceso.best.perf.iteration_time,
            megatron.best.perf.iteration_time * 1.02);
}

TEST(IntegrationTest, AcesoMatchesOrBeatsAlpaLike) {
  const OpGraph graph = models::Gpt3(0.35);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);

  SearchOptions options;
  options.time_budget_seconds = 3.0;
  const SearchResult aceso = AcesoSearch(model, options);
  AlpaOptions alpa_options;
  alpa_options.layer_group_counts = {8, 24};
  const auto alpa = AlpaLikeSearch(model, alpa_options);
  ASSERT_TRUE(aceso.found);
  ASSERT_TRUE(alpa.ok());
  ASSERT_TRUE(alpa->found);
  EXPECT_LE(aceso.best.perf.iteration_time,
            alpa->best.perf.iteration_time * 1.05);
  // And at a tiny fraction of Alpa's (simulated-compile-inclusive) cost.
  EXPECT_LT(aceso.search_seconds, alpa->TotalSearchSeconds() * 0.05);
}

TEST(IntegrationTest, ProfileDatabaseReuseAcrossSearches) {
  // The second search reuses the first's measurements: no new profiling.
  // A deterministic evaluation budget makes both searches visit the same
  // configurations regardless of machine speed — under a wall-clock budget
  // a slower/loaded run (TSan CI) let the second search out-explore the
  // first and "discover" new entries.
  const OpGraph graph = models::Gpt3(0.35);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);
  SearchOptions options;
  options.time_budget_seconds = 1e6;
  options.max_evaluations = 1500;
  AcesoSearch(model, options);
  const size_t entries_after_first = db.NumEntries();
  const double profiling_after_first = db.SimulatedProfilingSeconds();
  AcesoSearch(model, options);
  EXPECT_EQ(db.NumEntries(), entries_after_first);
  EXPECT_DOUBLE_EQ(db.SimulatedProfilingSeconds(), profiling_after_first);
}

TEST(IntegrationTest, ScalesToDeepModels) {
  // Exp#3's property at test scale: the search handles a 256-layer model
  // (where the Alpa-like solver refuses to compile) within budget.
  const OpGraph graph = models::DeepTransformer(256);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);

  SearchOptions options;
  options.time_budget_seconds = 3.0;
  options.max_stages = 8;
  const SearchResult aceso = AcesoSearch(model, options);
  ASSERT_TRUE(aceso.found);
  EXPECT_FALSE(aceso.best.perf.oom);

  const auto alpa = AlpaLikeSearch(model);
  EXPECT_FALSE(alpa.ok());  // compilation failure beyond 64 layers
}

TEST(IntegrationTest, TopConfigsRunnableInRuntime) {
  // §5.1: the top-5 configurations are all executable; picking the actual
  // best among them is well-defined.
  const OpGraph graph = models::Gpt3(0.35);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);
  SearchOptions options;
  options.time_budget_seconds = 1.0;
  const SearchResult search = AcesoSearch(model, options);
  ASSERT_TRUE(search.found);
  ASSERT_FALSE(search.top_configs.empty());

  PipelineExecutor executor(&model);
  double best_actual = 1e300;
  for (const ScoredConfig& candidate : search.top_configs) {
    const ExecutionResult run = executor.Execute(candidate.config);
    EXPECT_FALSE(run.oom);
    best_actual = std::min(best_actual, run.iteration_seconds);
  }
  EXPECT_LT(best_actual, 1e300);
}

}  // namespace
}  // namespace aceso
