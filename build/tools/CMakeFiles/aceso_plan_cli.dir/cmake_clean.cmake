file(REMOVE_RECURSE
  "CMakeFiles/aceso_plan_cli.dir/aceso_plan.cc.o"
  "CMakeFiles/aceso_plan_cli.dir/aceso_plan.cc.o.d"
  "aceso_plan"
  "aceso_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aceso_plan_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
