// The cross-request plan cache of the planning daemon (DESIGN.md §14).
//
// Keyed by PlanCacheKey — the composed semantic fingerprint of (model IR,
// cluster spec, answer-determining SearchOptions). Because fixed-seed
// searches under a deterministic budget are bit-reproducible, two requests
// with equal keys can only produce the same plan, so a hit replays the
// stored response payload without re-entering AcesoSearch at all. Values
// are the serialized payload JSON (BuildPlanPayload): immutable, cheap to
// copy out, and exactly what goes on the wire.
//
// LRU with a fixed entry capacity; thread-safe (one mutex — the cache sits
// on the request admission path, not inside any search loop). Counters
// follow the repo's stats idiom (monotonic, operator- for deltas).

#ifndef SRC_SERVE_PLAN_CACHE_H_
#define SRC_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "src/common/hash.h"

namespace aceso {
namespace serve {

struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t inserts = 0;
  int64_t evictions = 0;

  PlanCacheStats operator-(const PlanCacheStats& other) const {
    PlanCacheStats d;
    d.hits = hits - other.hits;
    d.misses = misses - other.misses;
    d.inserts = inserts - other.inserts;
    d.evictions = evictions - other.evictions;
    return d;
  }
};

// One cached outcome: the response payload plus the headline numbers the
// daemon logs without re-parsing its own JSON.
struct CachedPlan {
  std::string payload_json;
  bool found = false;
  double iteration_time = 0.0;
};

class PlanCache {
 public:
  // `capacity` = max entries; 0 disables caching (every Get is a miss and
  // Put is a no-op), which keeps the daemon's cache=off mode trivial.
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Looks up `key`, refreshing its LRU position on a hit.
  std::optional<CachedPlan> Get(uint64_t key);

  // Inserts (or refreshes) `key`. Evicts the least-recently-used entry when
  // over capacity.
  void Put(uint64_t key, CachedPlan plan);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  PlanCacheStats stats() const;

 private:
  struct Entry {
    uint64_t key = 0;
    CachedPlan plan;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator, IdentityHash>
      index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t inserts_ = 0;
  int64_t evictions_ = 0;
};

}  // namespace serve
}  // namespace aceso

#endif  // SRC_SERVE_PLAN_CACHE_H_
