# Empty dependencies file for dp_solver_test.
# This may be replaced when dependencies are built.
