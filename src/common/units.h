// Unit helpers: bytes, FLOPs, seconds. Aceso tracks memory in bytes
// (int64_t), compute in FLOPs (double) and time in seconds (double).

#ifndef SRC_COMMON_UNITS_H_
#define SRC_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace aceso {

inline constexpr int64_t kKiB = 1024;
inline constexpr int64_t kMiB = 1024 * kKiB;
inline constexpr int64_t kGiB = 1024 * kMiB;

inline constexpr double kKilo = 1e3;
inline constexpr double kMega = 1e6;
inline constexpr double kGiga = 1e9;
inline constexpr double kTera = 1e12;

// "31.4 GB", "512.0 MB", "17.2 KB", "12 B".
std::string FormatBytes(int64_t bytes);

// "12.34 TFLOP", "1.20 GFLOP".
std::string FormatFlops(double flops);

// "1.234 s", "56.7 ms", "89.0 us".
std::string FormatSeconds(double seconds);

// Fixed-precision double ("%.*f") without iostream ceremony.
std::string FormatDouble(double value, int precision);

// Rounds an allocation request the way a PyTorch-style caching allocator
// does: 512 B granularity below 1 MiB, 2 MiB granularity above. Shared by
// the allocator simulation (src/runtime) and the memory model (src/cost),
// which deliberately prices this rounding into Eq. 1's activation term.
int64_t RoundUpAllocSize(int64_t bytes);

}  // namespace aceso

#endif  // SRC_COMMON_UNITS_H_
