#include "src/common/status.h"

#include <gtest/gtest.h>

namespace aceso {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkStatusHelper) {
  EXPECT_TRUE(OkStatus().ok());
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = InvalidArgument("bad tp");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad tp");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad tp");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(DeadlineExceeded("x").code(), StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "INVALID_ARGUMENT");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "RESOURCE_EXHAUSTED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  ASSERT_TRUE(v.ok());
  const std::string moved = *std::move(v);
  EXPECT_EQ(moved, "hello");
}

TEST(StatusOrTest, ArrowOperator) {
  StatusOr<std::string> v = std::string("abc");
  EXPECT_EQ(v->size(), 3u);
}

Status FailsThenPropagates(bool fail) {
  ACESO_RETURN_IF_ERROR(fail ? Internal("inner") : OkStatus());
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(FailsThenPropagates(false).ok());
  const Status s = FailsThenPropagates(true);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "inner");
}

}  // namespace
}  // namespace aceso
