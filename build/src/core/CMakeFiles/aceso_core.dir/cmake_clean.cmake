file(REMOVE_RECURSE
  "CMakeFiles/aceso_core.dir/apply.cc.o"
  "CMakeFiles/aceso_core.dir/apply.cc.o.d"
  "CMakeFiles/aceso_core.dir/bottleneck.cc.o"
  "CMakeFiles/aceso_core.dir/bottleneck.cc.o.d"
  "CMakeFiles/aceso_core.dir/finetune.cc.o"
  "CMakeFiles/aceso_core.dir/finetune.cc.o.d"
  "CMakeFiles/aceso_core.dir/primitives.cc.o"
  "CMakeFiles/aceso_core.dir/primitives.cc.o.d"
  "CMakeFiles/aceso_core.dir/search.cc.o"
  "CMakeFiles/aceso_core.dir/search.cc.o.d"
  "libaceso_core.a"
  "libaceso_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aceso_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
