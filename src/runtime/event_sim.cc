#include "src/runtime/event_sim.h"

#include <algorithm>
#include <queue>

#include "src/common/logging.h"

namespace aceso {
namespace {

struct Event {
  double time;
  TaskId task;
  // Deterministic ordering: earliest time first, ties by task id.
  bool operator>(const Event& other) const {
    if (time != other.time) {
      return time > other.time;
    }
    return task > other.task;
  }
};

}  // namespace

ResourceId EventSimulator::AddResource(std::string name) {
  resources_.push_back(Resource{std::move(name), 0.0, 0.0, {}});
  return static_cast<ResourceId>(resources_.size() - 1);
}

TaskId EventSimulator::AddTask(std::string name, double duration,
                               ResourceId resource) {
  ACESO_CHECK_GE(duration, 0.0);
  ACESO_CHECK(resource == kNoResource ||
              resource < static_cast<ResourceId>(resources_.size()));
  Task task;
  task.name = std::move(name);
  task.duration = duration;
  task.resource = resource;
  tasks_.push_back(std::move(task));
  return static_cast<TaskId>(tasks_.size() - 1);
}

void EventSimulator::AddDependency(TaskId before, TaskId after) {
  ACESO_CHECK(before >= 0 && before < static_cast<TaskId>(tasks_.size()));
  ACESO_CHECK(after >= 0 && after < static_cast<TaskId>(tasks_.size()));
  tasks_[static_cast<size_t>(before)].successors.push_back(after);
  ++tasks_[static_cast<size_t>(after)].unmet_deps;
}

StatusOr<double> EventSimulator::Run() {
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  std::vector<bool> resource_running(resources_.size(), false);
  size_t finished = 0;
  double makespan = 0.0;

  auto start_task = [&](TaskId id, double start) {
    Task& task = tasks_[static_cast<size_t>(id)];
    task.start_time = start;
    task.finish_time = start + task.duration;
    if (task.resource != kNoResource) {
      Resource& r = resources_[static_cast<size_t>(task.resource)];
      r.free_time = task.finish_time;
      r.busy_seconds += task.duration;
      resource_running[static_cast<size_t>(task.resource)] = true;
    }
    events.push(Event{task.finish_time, id});
  };

  auto try_start_resource = [&](ResourceId rid) {
    Resource& r = resources_[static_cast<size_t>(rid)];
    if (resource_running[static_cast<size_t>(rid)] || r.ready_queue.empty()) {
      return;
    }
    const TaskId next = r.ready_queue.front();
    r.ready_queue.pop_front();
    const Task& task = tasks_[static_cast<size_t>(next)];
    start_task(next, std::max(task.ready_time, r.free_time));
  };

  auto on_ready = [&](TaskId id) {
    Task& task = tasks_[static_cast<size_t>(id)];
    if (task.resource == kNoResource) {
      start_task(id, task.ready_time);
    } else {
      resources_[static_cast<size_t>(task.resource)].ready_queue.push_back(id);
      try_start_resource(task.resource);
    }
  };

  // Seed with all dependency-free tasks, in insertion order.
  for (size_t i = 0; i < tasks_.size(); ++i) {
    if (tasks_[i].unmet_deps == 0) {
      on_ready(static_cast<TaskId>(i));
    }
  }

  while (!events.empty()) {
    const Event event = events.top();
    events.pop();
    ++finished;
    makespan = std::max(makespan, event.time);
    Task& task = tasks_[static_cast<size_t>(event.task)];
    if (task.resource != kNoResource) {
      resource_running[static_cast<size_t>(task.resource)] = false;
    }
    for (const TaskId succ : task.successors) {
      Task& next = tasks_[static_cast<size_t>(succ)];
      next.ready_time = std::max(next.ready_time, event.time);
      if (--next.unmet_deps == 0) {
        on_ready(succ);
      }
    }
    if (task.resource != kNoResource) {
      try_start_resource(task.resource);
    }
  }

  if (finished != tasks_.size()) {
    return FailedPrecondition("dependency cycle: only " +
                              std::to_string(finished) + " of " +
                              std::to_string(tasks_.size()) +
                              " tasks completed");
  }
  return makespan;
}

double EventSimulator::StartTime(TaskId task) const {
  return tasks_[static_cast<size_t>(task)].start_time;
}

double EventSimulator::FinishTime(TaskId task) const {
  return tasks_[static_cast<size_t>(task)].finish_time;
}

double EventSimulator::ResourceBusySeconds(ResourceId resource) const {
  return resources_[static_cast<size_t>(resource)].busy_seconds;
}

}  // namespace aceso
