# Empty dependencies file for zero_extension_test.
# This may be replaced when dependencies are built.
