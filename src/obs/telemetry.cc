#include "src/obs/telemetry.h"

#include <algorithm>

#include "src/common/json.h"

namespace aceso {

TelemetryEvent& TelemetryEvent::Str(std::string key, std::string value) {
  Field f;
  f.key = std::move(key);
  f.kind = Kind::kStr;
  f.s = std::move(value);
  fields_.push_back(std::move(f));
  return *this;
}

TelemetryEvent& TelemetryEvent::Int(std::string key, int64_t value) {
  Field f;
  f.key = std::move(key);
  f.kind = Kind::kInt;
  f.i = value;
  fields_.push_back(std::move(f));
  return *this;
}

TelemetryEvent& TelemetryEvent::Dbl(std::string key, double value) {
  Field f;
  f.key = std::move(key);
  f.kind = Kind::kDbl;
  f.d = value;
  fields_.push_back(std::move(f));
  return *this;
}

TelemetryEvent& TelemetryEvent::Bool(std::string key, bool value) {
  Field f;
  f.key = std::move(key);
  f.kind = Kind::kBool;
  f.b = value;
  fields_.push_back(std::move(f));
  return *this;
}

const TelemetryEvent::Field* TelemetryEvent::Find(std::string_view key) const {
  for (const Field& f : fields_) {
    if (f.key == key) {
      return &f;
    }
  }
  return nullptr;
}

std::optional<int64_t> TelemetryEvent::GetInt(std::string_view key) const {
  const Field* f = Find(key);
  if (f == nullptr) {
    return std::nullopt;
  }
  if (f->kind == Kind::kInt) {
    return f->i;
  }
  if (f->kind == Kind::kBool) {
    return f->b ? 1 : 0;
  }
  return std::nullopt;
}

std::optional<double> TelemetryEvent::GetDbl(std::string_view key) const {
  const Field* f = Find(key);
  if (f == nullptr) {
    return std::nullopt;
  }
  if (f->kind == Kind::kDbl) {
    return f->d;
  }
  if (f->kind == Kind::kInt) {
    return static_cast<double>(f->i);
  }
  return std::nullopt;
}

std::optional<bool> TelemetryEvent::GetBool(std::string_view key) const {
  const Field* f = Find(key);
  if (f == nullptr || f->kind != Kind::kBool) {
    return std::nullopt;
  }
  return f->b;
}

const std::string* TelemetryEvent::GetStr(std::string_view key) const {
  const Field* f = Find(key);
  if (f == nullptr || f->kind != Kind::kStr) {
    return nullptr;
  }
  return &f->s;
}

std::string TelemetryEvent::ToJsonLine() const { return ToJsonLineExcluding({}); }

std::string TelemetryEvent::ToJsonLineExcluding(
    const std::vector<std::string>& keys) const {
  std::string out;
  out.reserve(64 + fields_.size() * 24);
  out += "{\"type\":\"";
  AppendJsonEscaped(out, type_);
  out += '"';
  for (const Field& f : fields_) {
    if (std::find(keys.begin(), keys.end(), f.key) != keys.end()) {
      continue;
    }
    out += ",\"";
    AppendJsonEscaped(out, f.key);
    out += "\":";
    switch (f.kind) {
      case Kind::kStr:
        out += '"';
        AppendJsonEscaped(out, f.s);
        out += '"';
        break;
      case Kind::kInt:
        out += std::to_string(f.i);
        break;
      case Kind::kDbl:
        AppendJsonNumber(out, f.d);
        break;
      case Kind::kBool:
        out += f.b ? "true" : "false";
        break;
    }
  }
  out += '}';
  return out;
}

TelemetrySink::TelemetrySink(TelemetryOptions options)
    : options_(std::move(options)) {
  if (!options_.jsonl_path.empty()) {
    out_.open(options_.jsonl_path, std::ios::out | std::ios::trunc);
    if (!out_) {
      status_ = Internal("cannot open telemetry file: " + options_.jsonl_path);
    } else {
      file_open_ = true;
    }
  }
}

TelemetrySink::~TelemetrySink() { Flush(); }

Status TelemetrySink::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return status_;
}

void TelemetrySink::Emit(TelemetryEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  ++emitted_;
  if (file_open_) {
    out_ << event.ToJsonLine() << '\n';
    if (!out_ && status_.ok()) {
      status_ = Internal("telemetry write failed: " + options_.jsonl_path);
    }
  }
  if (options_.ring_capacity > 0) {
    ring_.push_back(std::move(event));
    while (ring_.size() > options_.ring_capacity) {
      ring_.pop_front();
      ++dropped_;
    }
  }
}

std::vector<TelemetryEvent> TelemetrySink::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TelemetryEvent>(ring_.begin(), ring_.end());
}

size_t TelemetrySink::events_emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_;
}

size_t TelemetrySink::events_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void TelemetrySink::IncrCounter(std::string_view name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

int64_t TelemetrySink::counter(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::map<std::string, int64_t> TelemetrySink::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::map<std::string, int64_t>(counters_.begin(), counters_.end());
}

void TelemetrySink::EmitCounterSnapshot() {
  TelemetryEvent event("counter_snapshot");
  for (const auto& [name, value] : Counters()) {
    event.Int(name, value);
  }
  Emit(std::move(event));
}

void TelemetrySink::RecordTimer(std::string_view name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), TimerStat{}).first;
  }
  TimerStat& stat = it->second;
  ++stat.count;
  stat.total_seconds += seconds;
  stat.max_seconds = std::max(stat.max_seconds, seconds);
}

std::map<std::string, TelemetrySink::TimerStat> TelemetrySink::Timers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::map<std::string, TimerStat>(timers_.begin(), timers_.end());
}

Status TelemetrySink::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_open_) {
    out_.flush();
    if (!out_ && status_.ok()) {
      status_ = Internal("telemetry flush failed: " + options_.jsonl_path);
    }
  }
  return status_;
}

}  // namespace aceso
