#!/usr/bin/env python3
"""Compare a google-benchmark JSON report against a checked-in baseline.

Usage:
    check_bench_regression.py CURRENT.json BASELINE.json [--threshold 2.0]
                              [--filter SUBSTRING]

Fails (exit 1) when any benchmark present in both reports is more than
--threshold times slower (by real_time per iteration) than the baseline,
or when a baseline benchmark is missing from the current report entirely —
a silently skipped metric is how a regression check rots, so every missing
name is printed and fatal (pass --allow-missing while retiring a benchmark,
then refresh the baseline). Benchmarks only present in the current report
are reported but never fatal, so adding benchmarks does not require
touching the baseline in the same change.

The baseline is runner-class dependent: it records absolute times from the
CI runner family, so the threshold is deliberately loose (default 2x) to
absorb machine-to-machine variance while still catching order-of-magnitude
regressions such as an accidentally disabled cache. Refresh the baseline
(bench/baselines/) whenever the benchmark suite or the runner class changes.
"""

import argparse
import json
import sys


def load_times(path):
    with open(path) as f:
        report = json.load(f)
    times = {}
    for bench in report.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        times[bench["name"]] = float(bench["real_time"])
    return times


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--threshold", type=float, default=2.0)
    parser.add_argument(
        "--filter",
        default="",
        help="only compare benchmarks whose name contains this substring",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="tolerate baseline benchmarks absent from the current report "
        "(transition aid while retiring a benchmark)",
    )
    args = parser.parse_args()

    current = load_times(args.current)
    baseline = load_times(args.baseline)

    failures = []
    missing = []
    compared = 0
    for name, base_time in sorted(baseline.items()):
        if args.filter and args.filter not in name:
            continue
        if name not in current:
            missing.append(name)
            continue
        compared += 1
        ratio = current[name] / base_time if base_time > 0 else float("inf")
        status = "FAIL" if ratio > args.threshold else "ok"
        print(
            f"{status:4s} {name}: {current[name]:.0f}ns vs "
            f"baseline {base_time:.0f}ns ({ratio:.2f}x)"
        )
        if ratio > args.threshold:
            failures.append((name, ratio))

    for name in sorted(current):
        if name not in baseline and (not args.filter or args.filter in name):
            print(f"note: {name} not in baseline (skipped)")

    for name in missing:
        label = "note" if args.allow_missing else "FAIL"
        print(f"{label}: {name} in baseline but missing from current report")

    if compared == 0:
        print("error: no benchmarks compared — wrong filter or empty reports")
        return 1
    exit_code = 0
    if failures:
        print(
            f"{len(failures)} benchmark(s) regressed more than "
            f"{args.threshold}x vs baseline:"
        )
        # Repeat each failure with its measured ratio and the limit it broke,
        # so the CI log tail alone (without scrolling to the per-benchmark
        # table) says which benchmark failed and by how much.
        for name, ratio in failures:
            print(
                f"  {name}: {current[name]:.0f}ns vs baseline "
                f"{baseline[name]:.0f}ns — {ratio:.2f}x exceeds the "
                f"{args.threshold}x threshold"
            )
        exit_code = 1
    if missing and not args.allow_missing:
        print(
            f"{len(missing)} baseline benchmark(s) missing from the current "
            f"report: {', '.join(missing)}"
        )
        exit_code = 1
    elif missing:
        # An --allow-missing run must still say exactly what it skipped, so
        # the transition aid cannot silently become a permanent blind spot.
        print(
            f"note: --allow-missing skipped {len(missing)} baseline "
            f"benchmark(s): {', '.join(missing)}"
        )
    if exit_code == 0:
        print(f"{compared} benchmark(s) within {args.threshold}x of baseline")
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
