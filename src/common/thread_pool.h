// Work-stealing worker pool used by the search at two nesting levels: the
// parallel search over pipeline stage counts (§4.3: "Parallel search of
// configuration under different pipeline stage numbers"), and — inside each
// of those stage-count workers — the parallel batch evaluation of candidate
// groups (DESIGN.md §11).
//
// The nesting is what shapes the design. A stage-count worker submits a
// batch of evaluation tasks and must wait for them *from inside its own
// pool task*; a single-FIFO pool with a blocking Wait() deadlocks there
// (the waiting worker occupies the only thread that could run the batch).
// This pool therefore:
//
//   * keeps one deque per worker: a worker pushes and pops its own work
//     LIFO (locality: a batch drains on the worker that created it) while
//     idle workers steal FIFO from the other end of victims' deques;
//   * ships TaskGroup, a completion scope whose Wait() *helps*: while its
//     tasks are pending, the waiting thread drains pool tasks instead of
//     blocking, so nested waits make progress even on a 1-thread pool;
//   * makes pool-level Wait() safe from inside a worker task: tasks that
//     are themselves blocked in Wait() are treated as complete for each
//     other (quiescence), so nested pool-level waits cannot deadlock on
//     their own wrapper tasks.
//
// Exceptions thrown by a task are captured and rethrown from the matching
// Wait() (TaskGroup::Wait for group tasks, ThreadPool::Wait otherwise);
// only the first exception is kept, the rest are dropped.

#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace aceso {

class TaskGroup;

// Monotonic pool activity counters (snapshot; see ThreadPool::stats()).
struct ThreadPoolStats {
  int64_t submitted = 0;  // tasks accepted by Submit()
  int64_t executed = 0;   // tasks run to completion
  int64_t stolen = 0;     // tasks taken from another worker's deque
  int64_t helped = 0;     // tasks run inside a Wait() instead of a worker loop

  ThreadPoolStats operator-(const ThreadPoolStats& other) const {
    ThreadPoolStats d;
    d.submitted = submitted - other.submitted;
    d.executed = executed - other.executed;
    d.stolen = stolen - other.stolen;
    d.helped = helped - other.helped;
    return d;
  }
};

class ThreadPool {
 public:
  // Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  // Drains outstanding work and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task for asynchronous execution. Callable from any thread,
  // including from inside a running pool task (nested submission): a worker
  // pushes onto its own deque, everyone else onto the shared injection
  // queue.
  void Submit(std::function<void()> task);

  // Blocks until every submitted task has finished executing, helping to
  // drain queued tasks while waiting. Safe to call from inside a pool task:
  // tasks currently blocked in Wait() count as finished for one another, so
  // mutually-nested waits converge instead of deadlocking on their own
  // wrappers. Rethrows the first exception captured from a group-less task
  // since the previous Wait().
  void Wait();

  size_t num_threads() const { return workers_.size(); }

  ThreadPoolStats stats() const;

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;  // null for pool-level Submit()
  };

  // One worker's deque. Its owner pushes/pops at the back (LIFO); thieves
  // and the injection path take from the front (FIFO), so the oldest —
  // typically largest-remaining — work migrates first.
  struct WorkerQueue {
    std::mutex mu;
    std::deque<Task> q;
  };

  void WorkerLoop(int worker);
  void Enqueue(Task task);
  // Dequeues one task (own deque, then injection queue, then steal) and
  // runs it. Returns false when no task was available.
  bool RunOneTask(bool helping);
  bool Dequeue(Task* task);
  void Execute(Task task, bool helping);
  void NotifyStateChange();

  std::vector<std::unique_ptr<WorkerQueue>> deques_;  // one per worker
  WorkerQueue injection_;  // submissions from non-worker threads
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable state_change_;
  std::atomic<bool> shutting_down_{false};

  std::atomic<int64_t> queued_{0};     // tasks sitting in a deque
  std::atomic<int64_t> in_flight_{0};  // submitted but not yet finished
  // Sum over threads currently blocked inside Wait() of the number of pool
  // tasks on their call stacks — the wrappers the quiescence rule excuses.
  std::atomic<int64_t> waiting_stack_tasks_{0};

  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> executed_{0};
  std::atomic<int64_t> stolen_{0};
  std::atomic<int64_t> helped_{0};

  std::mutex error_mu_;
  std::exception_ptr first_error_;  // from group-less tasks
};

// A completion scope for one batch of tasks. The search's evaluation
// batches each use one TaskGroup: the submitting stage-count worker calls
// Wait(), which executes pending pool tasks (its own batch first, by deque
// LIFO order) until the group's tasks have all finished — the batch makes
// progress even when every pool thread is occupied by an outer search.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}

  // Waits for stragglers so the group never outlives tasks referencing it;
  // exceptions surfaced here are dropped (call Wait() to observe them).
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Enqueues a task belonging to this group.
  void Submit(std::function<void()> task);

  // Blocks until every task submitted to this group has finished, helping
  // to drain the pool (any pool task, not only this group's) while tasks
  // are pending. Rethrows the first exception thrown by a group task.
  void Wait();

 private:
  friend class ThreadPool;

  ThreadPool& pool_;
  std::atomic<int64_t> pending_{0};
  std::mutex error_mu_;
  std::exception_ptr first_error_;
};

// Runs fn(i) for i in [0, count) across the pool and waits for completion.
// Built on TaskGroup, so it is safe to call from inside a pool task.
void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn);

}  // namespace aceso

#endif  // SRC_COMMON_THREAD_POOL_H_
