// Exp#7 — robustness over initial configurations (paper Figure 14).
//
// Starts the search from the default balanced configuration and from two
// adversarial ones — op-imbalanced partitions and GPU-imbalanced device
// assignments — and prints the convergence trends.
//
// Paper claim to reproduce in shape: all three starts converge to similar
// final configurations.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace aceso;
  using namespace aceso::bench;
  PrintHeader("Exp#7: initial-configuration robustness (Figure 14)",
              "Balanced, op-imbalanced and GPU-imbalanced starts converge to "
              "similar configurations");

  std::vector<std::pair<std::string, int>> settings = {
      {"gpt3-2.6b", 8},
      {"wresnet-2b", 8},
  };
  if (QuickMode()) {
    settings = {{"gpt3-0.35b", 4}};
  }

  for (const auto& [name, gpus] : settings) {
    std::printf("\n--- %s @%dgpu ---\n", name.c_str(), gpus);
    Workload workload(name, gpus);
    TablePrinter table({"initial config", "best pred iter(s)", "improvements",
                        "iterations", "restarts"});
    const std::vector<std::pair<std::string, InitialConfigKind>> starts = {
        {"balanced", InitialConfigKind::kBalanced},
        {"imbalance-op", InitialConfigKind::kOpImbalanced},
        {"imbalance-GPU", InitialConfigKind::kGpuImbalanced},
    };
    for (const auto& [label, kind] : starts) {
      // Counters-only sink per start: how hard each start had to work (and
      // whether it needed restarts) comes from telemetry (DESIGN.md §10).
      TelemetryOptions topts;
      topts.ring_capacity = 0;
      TelemetrySink telemetry(topts);
      SearchOptions options = DefaultSearchOptions();
      options.initial_config = kind;
      options.telemetry = &telemetry;
      const SearchResult result = AcesoSearch(workload.model(), options);
      table.AddRow({label,
                    result.found
                        ? FormatDouble(result.best.perf.iteration_time, 2)
                        : "x",
                    std::to_string(result.stats.improvements),
                    std::to_string(telemetry.counter("search.iterations")),
                    std::to_string(telemetry.counter("search.restarts"))});
      PrintConvergence(label, result.convergence, 8);
    }
    table.Print(std::cout);
  }
  return 0;
}
