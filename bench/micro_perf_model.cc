// Micro-benchmark: performance-model evaluation throughput. The search
// calls Evaluate() tens of thousands of times per run, so this is Aceso's
// hot path.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>

#include "src/aceso.h"

namespace aceso {
namespace {

StageCacheOptions CacheOptions(bool enabled) {
  StageCacheOptions options;
  options.enabled = enabled;
  return options;
}

struct Fixture {
  // Warm-up is explicit per (model, stages): the constructor evaluates the
  // benchmarked config once, which fills the profile database for every
  // (op, shards, batch) and collective bucket *this exact config* touches
  // and lets the database publish its read snapshot. That is sufficient for
  // benchmarks that re-evaluate `config` unchanged — but NOT for the delta
  // benches, which mutate the config during timing: their variants' stage
  // walks stay cold, so the first timed lap measures cache fill rather than
  // steady state (and at --benchmark_min_time=0.05 the fill lap is a
  // material fraction of all iterations). Those benches must pre-walk their
  // whole mutation pool with WarmPatternPool() before the timed loop.
  Fixture(const std::string& name, int gpus, int stages,
          bool cache_enabled = true)
      : graph(*models::BuildByName(name)),
        cluster(ClusterSpec::WithGpuCount(gpus)),
        db(cluster),
        model(&graph, cluster, &db, CacheOptions(cache_enabled)),
        config(*MakeEvenConfig(graph, cluster, stages, 2)) {
    model.Evaluate(config);
  }

  // Evaluates every stage-0 recompute pattern in [0, pool_size) so the
  // timed loop cycles a fully warmed pool (see constructor comment).
  void WarmPatternPool(int flag_ops, uint64_t pool_size);

  OpGraph graph;
  ClusterSpec cluster;
  ProfileDatabase db;
  PerformanceModel model;
  ParallelConfig config;
};

void BM_EvaluateGpt(benchmark::State& state) {
  Fixture f("gpt3-1.3b", 8, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.Evaluate(f.config));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluateGpt)->Arg(1)->Arg(4)->Arg(8);

void BM_EvaluateGptUncached(benchmark::State& state) {
  Fixture f("gpt3-1.3b", 8, static_cast<int>(state.range(0)),
            /*cache_enabled=*/false);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.Evaluate(f.config));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluateGptUncached)->Arg(1)->Arg(4)->Arg(8);

// Writes the bits of `pattern` into the recompute flags of stage 0's first
// `flag_ops` ops — a cheap stand-in for "one primitive mutated one stage".
void ApplyStagePattern(ParallelConfig& config, int flag_ops,
                       uint64_t pattern) {
  for (int i = 0; i < flag_ops; ++i) {
    config.MutableStage(0).ops[static_cast<size_t>(i)].recompute =
        ((pattern >> i) & 1) != 0;
  }
}

void Fixture::WarmPatternPool(int flag_ops, uint64_t pool_size) {
  for (uint64_t pattern = 0; pattern < pool_size; ++pattern) {
    ApplyStagePattern(config, flag_ops, pattern);
    model.Evaluate(config);
  }
  ApplyStagePattern(config, flag_ops, 0);
}

// The search's dominant pattern: re-evaluation after one primitive mutated a
// single stage. The candidate sets GeneratePrimitiveCandidates() emits at
// successive hops overlap heavily (and sibling stage-count searches share
// the cache), so the steady state cycles through a bounded pool of stage
// variants: model that with 64 distinct single-stage deltas applied
// round-robin. With the cache, every stage walk is a hit after the first
// lap; without it, each iteration re-walks all p stages.
void ReEvaluateStageDelta(benchmark::State& state, bool cache_enabled) {
  Fixture f("gpt3-1.3b", 8, static_cast<int>(state.range(0)), cache_enabled);
  const StageConfig& stage0 = f.config.stage(0);
  const int flag_ops = std::min(stage0.num_ops, 20);
  constexpr uint64_t kPoolSize = 64;
  // Pre-walk the whole pool so the timed loop starts in steady state; the
  // constructor's Evaluate() warms only the unmutated config.
  f.WarmPatternPool(flag_ops, kPoolSize);
  uint64_t next = 0;
  for (auto _ : state) {
    ApplyStagePattern(f.config, flag_ops, next % kPoolSize);
    ++next;
    benchmark::DoNotOptimize(f.model.Evaluate(f.config));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ReEvaluateStageDeltaCached(benchmark::State& state) {
  ReEvaluateStageDelta(state, /*cache_enabled=*/true);
}
BENCHMARK(BM_ReEvaluateStageDeltaCached)->Arg(4)->Arg(8);

void BM_ReEvaluateStageDeltaUncached(benchmark::State& state) {
  ReEvaluateStageDelta(state, /*cache_enabled=*/false);
}
BENCHMARK(BM_ReEvaluateStageDeltaUncached)->Arg(4)->Arg(8);

// Worst case for the cache: a never-before-seen stage delta every iteration.
// The mutated stage is a genuine miss (hash + walk + insert) while the other
// p-1 stage walks are hits, so this bounds the cache's first-visit overhead.
// Cold stage walks are the point here, so no pool warm-up: the profile DB is
// warmed by the constructor (recompute flags don't change DB keys), and each
// timed iteration's fresh pattern is a deliberate stage-cache miss.
void ReEvaluateFreshDelta(benchmark::State& state, bool cache_enabled) {
  Fixture f("gpt3-1.3b", 8, static_cast<int>(state.range(0)), cache_enabled);
  const StageConfig& stage0 = f.config.stage(0);
  const int flag_ops = std::min(stage0.num_ops, 20);
  uint64_t pattern = 0;
  for (auto _ : state) {
    ApplyStagePattern(f.config, flag_ops, ++pattern);
    benchmark::DoNotOptimize(f.model.Evaluate(f.config));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_ReEvaluateFreshDeltaCached(benchmark::State& state) {
  ReEvaluateFreshDelta(state, /*cache_enabled=*/true);
}
BENCHMARK(BM_ReEvaluateFreshDeltaCached)->Arg(4)->Arg(8);

void BM_ReEvaluateFreshDeltaUncached(benchmark::State& state) {
  ReEvaluateFreshDelta(state, /*cache_enabled=*/false);
}
BENCHMARK(BM_ReEvaluateFreshDeltaUncached)->Arg(4)->Arg(8);

void BM_EvaluateWideResnet(benchmark::State& state) {
  Fixture f("wresnet-0.5b", 8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.Evaluate(f.config));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluateWideResnet);

void BM_EvaluateDeepTransformer(benchmark::State& state) {
  Fixture f("deepnet-" + std::to_string(state.range(0)), 8, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.Evaluate(f.config));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluateDeepTransformer)->Arg(64)->Arg(256)->Arg(1000);

// Uncached stage walks on deep repeated-layer models, with the op memo and
// run compression on (default) vs forced off (the pre-memoization walk).
// The ratio between these two is the tentpole speedup on deep models.
void EvaluateDeepUncached(benchmark::State& state, bool fast_walk) {
  Fixture f("deepnet-" + std::to_string(state.range(0)), 8, 8,
            /*cache_enabled=*/false);
  f.model.set_op_memo_enabled(fast_walk);
  f.model.set_run_compression_enabled(fast_walk);
  f.model.Evaluate(f.config);  // re-warm under the selected walk mode
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.Evaluate(f.config));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_EvaluateDeepTransformerUncached(benchmark::State& state) {
  EvaluateDeepUncached(state, /*fast_walk=*/true);
}
BENCHMARK(BM_EvaluateDeepTransformerUncached)->Arg(256)->Arg(1000);

void BM_EvaluateDeepTransformerUncachedDirectWalk(benchmark::State& state) {
  EvaluateDeepUncached(state, /*fast_walk=*/false);
}
BENCHMARK(BM_EvaluateDeepTransformerUncachedDirectWalk)->Arg(256)->Arg(1000);

void BM_SemanticHash(benchmark::State& state) {
  Fixture f("gpt3-1.3b", 8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.config.SemanticHash(f.graph));
  }
}
BENCHMARK(BM_SemanticHash);

void BM_StageSemanticHash(benchmark::State& state) {
  Fixture f("gpt3-1.3b", 8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        f.config.StageSemanticHash(f.graph, f.cluster, 2));
  }
}
BENCHMARK(BM_StageSemanticHash);

void BM_Validate(benchmark::State& state) {
  Fixture f("gpt3-1.3b", 8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.config.Validate(f.graph, f.cluster));
  }
}
BENCHMARK(BM_Validate);

}  // namespace
}  // namespace aceso

BENCHMARK_MAIN();
