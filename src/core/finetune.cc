#include "src/core/finetune.h"

#include <algorithm>
#include <vector>

#include "src/core/frontier.h"

namespace aceso {
namespace {

// Evenly spaced interior indices of [1, n), at most `cap` of them.
std::vector<int> SampleSplitPoints(int n, int cap) {
  std::vector<int> points;
  if (n <= 1) {
    return points;
  }
  const int count = std::min(cap, n - 1);
  for (int i = 0; i < count; ++i) {
    const int point = 1 + static_cast<int64_t>(i) * (n - 1) / count;
    if (points.empty() || points.back() != point) {
      points.push_back(point);
    }
  }
  return points;
}

// Applies tp' = tp * factor (factor is 2 or 1/2 encoded as mul/div) to ops
// [split, end) of `stage`. Returns false when any op cannot take the change.
bool RetargetTail(const OpGraph& graph, StageConfig& stage, int split,
                  bool increase) {
  for (int i = split; i < stage.num_ops; ++i) {
    const Operator& op = graph.op(stage.first_op + i);
    OpParallel& setting = stage.ops[static_cast<size_t>(i)];
    const int new_tp = increase ? setting.tp * 2 : setting.tp / 2;
    if (new_tp < 1 || new_tp > stage.num_devices) {
      return false;
    }
    const int clamped = ClampOpTp(op, new_tp);
    setting.tp = clamped;
    setting.dp = stage.num_devices / clamped;
  }
  return true;
}

}  // namespace

PerfResult FineTune(const PerformanceModel& model, ParallelConfig& config,
                    const PerfResult& initial_perf, const TimeBudget& budget,
                    const FineTuneOptions& options,
                    int64_t* trial_evaluations) {
  PerfResult best = initial_perf;
  const OpGraph& graph = model.graph();
  auto count_trial = [trial_evaluations] {
    if (trial_evaluations != nullptr) {
      ++*trial_evaluations;
    }
  };
  auto offer_frontier = [&](ParallelConfig& trial, const PerfResult& perf) {
    if (options.frontier == nullptr) {
      return;
    }
    const ClusterSpec& cluster = model.cluster();
    options.frontier->Offer(trial, perf, trial.SemanticHash(graph),
                            CostPerStepUsd(perf.iteration_time,
                                           cluster.num_gpus(),
                                           cluster.gpu.price_per_hour_usd));
  };

  // --- 1. Flexible tp/dp combination inside each stage ---
  for (int s = 0; s < config.num_stages() && !budget.Expired(); ++s) {
    const int n = config.stage(s).num_ops;
    for (int split :
         SampleSplitPoints(n, options.max_split_points_per_stage)) {
      for (const bool increase : {true, false}) {
        if (budget.Expired()) {
          break;
        }
        ParallelConfig trial = config;
        if (!RetargetTail(graph, trial.MutableStage(s), split, increase)) {
          continue;
        }
        if (!trial.Validate(graph, model.cluster()).ok()) {
          continue;
        }
        count_trial();
        PerfResult perf = model.Evaluate(trial);
        perf.ApplyMemoryLimit(options.memory_limit_bytes);
        offer_frontier(trial, perf);
        if (perf.BetterThan(best)) {
          config = std::move(trial);
          best = std::move(perf);
        }
      }
    }
  }

  // --- 2. Flexible tensor-parallel dimension per op ---
  for (int s = 0; s < config.num_stages() && !budget.Expired(); ++s) {
    int flips = 0;
    // NOTE: `config` is reassigned inside the loop; re-fetch the stage on
    // every iteration instead of holding a reference.
    for (int i = 0; i < config.stage(s).num_ops; ++i) {
      if (flips >= options.max_dim_flips_per_stage || budget.Expired()) {
        break;
      }
      const StageConfig& stage = config.stage(s);
      const Operator& op = graph.op(stage.first_op + i);
      const OpParallel& setting = stage.ops[static_cast<size_t>(i)];
      if (op.tp_class != TpClass::kPartitioned || setting.tp <= 1) {
        continue;
      }
      ParallelConfig trial = config;
      OpParallel& trial_setting =
          trial.MutableStage(s).ops[static_cast<size_t>(i)];
      trial_setting.tp_dim = trial_setting.tp_dim == TpDim::kColumn
                                 ? TpDim::kRow
                                 : TpDim::kColumn;
      ++flips;
      count_trial();
      PerfResult perf = model.Evaluate(trial);
      perf.ApplyMemoryLimit(options.memory_limit_bytes);
      offer_frontier(trial, perf);
      if (perf.BetterThan(best)) {
        config = std::move(trial);
        best = std::move(perf);
      }
    }
  }

  return best;
}

}  // namespace aceso
