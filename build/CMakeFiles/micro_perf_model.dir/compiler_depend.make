# Empty compiler generated dependencies file for micro_perf_model.
# This may be replaced when dependencies are built.
