# Empty dependencies file for baseline_sweep_test.
# This may be replaced when dependencies are built.
