#include "src/cost/stage_cache.h"

#include <algorithm>

#include "src/cost/perf_model.h"

namespace aceso {
namespace {

size_t CeilPow2(size_t n) {
  size_t p = 1;
  while (p < n) {
    p *= 2;
  }
  return p;
}

}  // namespace

StageCostCache::StageCostCache(const StageCacheOptions& options)
    : options_(options) {
  options_.capacity = std::max<size_t>(options_.capacity, 1);
  size_t shards = CeilPow2(std::max<size_t>(options_.num_shards, 1));
  shards = std::min(shards, CeilPow2(options_.capacity));
  shard_mask_ = shards - 1;
  // Ceil-divide so shard capacities sum to >= capacity (never below, so a
  // small capacity with many shards still caches something per shard).
  shard_capacity_ = (options_.capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::shared_ptr<const StageCost> StageCostCache::Lookup(uint64_t key) const {
  if (!options_.enabled) {
    return nullptr;
  }
  Shard& shard = ShardFor(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return nullptr;
}

void StageCostCache::Insert(uint64_t key,
                            std::shared_ptr<const StageCost> cost) {
  if (!options_.enabled) {
    return;
  }
  Shard& shard = ShardFor(key);
  int64_t evicted = 0;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.entries.emplace(key, std::move(cost));
    (void)it;
    if (!inserted) {
      return;  // racing insert of the same stage walk; first value wins
    }
    shard.insertion_order.push_back(key);
    while (shard.entries.size() > shard_capacity_) {
      shard.entries.erase(shard.insertion_order.front());
      shard.insertion_order.pop_front();
      ++evicted;
    }
  }
  if (evicted > 0) {
    evictions_.fetch_add(evicted, std::memory_order_relaxed);
  }
}

void StageCostCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
    shard->insertion_order.clear();
  }
}

StageCacheStats StageCostCache::stats() const {
  StageCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.entries += static_cast<int64_t>(shard->entries.size());
  }
  return s;
}

}  // namespace aceso
