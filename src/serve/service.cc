#include "src/serve/service.h"

#include <sys/stat.h>

#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <exception>
#include <thread>
#include <utility>

#include "src/common/logging.h"
#include "src/core/seed_adapt.h"
#include "src/cost/perf_model.h"
#include "src/ir/models/model_zoo.h"
#include "src/obs/telemetry.h"

namespace aceso {
namespace serve {
namespace {

std::string JoinZooNames() {
  std::string out;
  for (const std::string& name : models::ZooNames()) {
    if (!out.empty()) {
      out += ", ";
    }
    out += name;
  }
  return out;
}

// The derived-payload variant key for a budget sweep: a stable hash of the
// budget list. Never 0-ambiguous with another list (length is mixed in).
uint64_t BudgetsVariantHash(const std::vector<int64_t>& budgets) {
  uint64_t h = Mix64(0x73776565700b1ULL ^ budgets.size());
  for (const int64_t b : budgets) {
    h = HashCombine(h, Mix64(static_cast<uint64_t>(b)));
  }
  return h;
}

size_t PoolThreads(const ServeOptions& options) {
  if (options.worker_threads > 0) {
    return static_cast<size_t>(options.worker_threads);
  }
  const size_t hw = std::max(1u, std::thread::hardware_concurrency());
  return std::max(hw, static_cast<size_t>(
                          std::max(1, options.max_inflight_searches)));
}

}  // namespace

std::string ProfileSnapshotPath(const std::string& dir, uint64_t fingerprint) {
  char name[40];
  std::snprintf(name, sizeof(name), "profile_%016" PRIx64 ".apdb",
                fingerprint);
  return dir + "/" + name;
}

ServeStats ServeStats::operator-(const ServeStats& other) const {
  ServeStats d;
  d.requests = requests - other.requests;
  d.completed = completed - other.completed;
  d.rejected = rejected - other.rejected;
  d.errors = errors - other.errors;
  d.coalesced = coalesced - other.coalesced;
  d.budget_sweeps = budget_sweeps - other.budget_sweeps;
  d.sweeps_from_cache = sweeps_from_cache - other.sweeps_from_cache;
  d.serializations_skipped =
      serializations_skipped - other.serializations_skipped;
  d.cache_hits = cache_hits - other.cache_hits;
  d.cache_misses = cache_misses - other.cache_misses;
  d.cache_evictions = cache_evictions - other.cache_evictions;
  d.neighbor_seeded = neighbor_seeded - other.neighbor_seeded;
  d.seed_adopted = seed_adopted - other.seed_adopted;
  d.seed_fallbacks = seed_fallbacks - other.seed_fallbacks;
  d.profile_dbs = profile_dbs - other.profile_dbs;
  d.warm_starts = warm_starts - other.warm_starts;
  d.warm_start_errors = warm_start_errors - other.warm_start_errors;
  d.profile_lookups = profile_lookups - other.profile_lookups;
  d.profile_misses = profile_misses - other.profile_misses;
  return d;
}

// A search in flight: the runner fills it and signals; coalesced duplicates
// wait on the condition variable. The payload is stored separately from any
// envelope so every waiter can wrap it with its own request_id.
struct PlanService::Inflight {
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  Status search_status;
  // Shared with the cache entry: coalesced waiters reference the one
  // serialized payload instead of copying it per waiter.
  std::shared_ptr<const std::string> payload_json;
};

PlanService::PlanService(ServeOptions options)
    : options_(std::move(options)),
      pool_(PoolThreads(options_)),
      cache_(PlanCacheOptions{options_.plan_cache_capacity,
                              options_.plan_cache_max_derived}) {}

PlanService::~PlanService() {
  // Drain outstanding search jobs before the members they reference die.
  pool_.Wait();
}

std::string PlanService::NextRequestId() {
  return "r" + std::to_string(
                   next_request_id_.fetch_add(1, std::memory_order_relaxed));
}

StatusOr<std::shared_ptr<const OpGraph>> PlanService::GraphForModel(
    const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(model_mu_);
    auto it = models_.find(name);
    if (it != models_.end()) {
      return it->second;
    }
  }
  // Build outside the lock (a big zoo model takes a while); a racing
  // duplicate build is harmless — both graphs are identical and the second
  // emplace loses.
  auto built = models::BuildByName(name);
  if (!built.ok()) {
    return built.status();
  }
  auto graph = std::make_shared<const OpGraph>(std::move(*built));
  std::lock_guard<std::mutex> lock(model_mu_);
  return models_.try_emplace(name, std::move(graph)).first->second;
}

ProfileDatabase* PlanService::DbForCluster(const ClusterSpec& cluster) {
  const uint64_t fp = cluster.Fingerprint();
  std::lock_guard<std::mutex> lock(db_mu_);
  auto it = dbs_.find(fp);
  if (it != dbs_.end()) {
    return it->second.get();
  }
  auto db = std::make_unique<ProfileDatabase>(cluster);
  if (!options_.snapshot_dir.empty()) {
    const std::string path = ProfileSnapshotPath(options_.snapshot_dir, fp);
    const Status st = db->Load(path);
    if (st.ok()) {
      warm_starts_.fetch_add(1, std::memory_order_relaxed);
      ACESO_LOG(INFO) << "warm-started profile database for "
                      << cluster.ToString() << " from " << path << " ("
                      << db->NumEntries() << " entries)";
    } else if (st.code() != StatusCode::kNotFound) {
      // A present-but-unusable snapshot (corrupt, old version, wrong
      // cluster) must not take the daemon down: run cold, but say so.
      warm_start_errors_.fetch_add(1, std::memory_order_relaxed);
      ACESO_LOG(WARNING) << "ignoring profile snapshot " << path << ": "
                         << st.ToString();
    }
  }
  ProfileDatabase* raw = db.get();
  dbs_.emplace(fp, std::move(db));
  return raw;
}

SearchResult PlanService::SeededSearch(const PerformanceModel& model,
                                       const SearchOptions& options,
                                       uint64_t key) {
  const OpGraph& graph = model.graph();
  const ClusterSpec& cluster = model.cluster();
  auto neighbor = cache_.FindNeighbor(
      NeighborFamilyKey(graph, cluster), key, graph.num_ops(),
      cluster.num_gpus(), options.memory_budget_bytes);
  if (!neighbor.has_value() || neighbor->config == nullptr) {
    return AcesoSearch(model, options);
  }
  SeedAdaptOptions adapt_options;
  adapt_options.memory_limit_bytes = options.memory_budget_bytes;
  auto adapted = AdaptSeedConfig(model, *neighbor->config, adapt_options);
  if (!adapted.ok()) {
    // The neighbor does not reshape to this request (e.g. fewer devices
    // than its stages): plain unseeded search, not counted as seeded.
    return AcesoSearch(model, options);
  }
  neighbor_seeded_.fetch_add(1, std::memory_order_relaxed);

  SearchOptions seeded_options = options;
  seeded_options.seed_mode = SeedMode::kConfig;
  seeded_options.seed_config =
      std::make_shared<const ParallelConfig>(std::move(adapted->config));
  SearchResult seeded = AcesoSearch(model, seeded_options);

  // Re-verdict (DESIGN.md §17): the seeded result must be at least as good
  // as the adapted seed itself *and* as the unseeded heuristic init — the
  // two starting points an unseeded search could trivially reach. A seed
  // that dragged the search somewhere worse is discarded and the request
  // re-runs unseeded, so neighbor seeding can only ever improve answers.
  bool adopt = seeded.found;
  if (adopt && adapted->perf.BetterThan(seeded.best.perf)) {
    adopt = false;
  }
  if (adopt) {
    auto init = MakeEvenConfig(graph, cluster,
                               seeded_options.seed_config->num_stages(), 1);
    if (init.ok()) {
      PerfResult init_perf = model.Evaluate(*init);
      init_perf.ApplyMemoryLimit(options.memory_budget_bytes > 0
                                     ? options.memory_budget_bytes
                                     : cluster.gpu.memory_bytes);
      if (init_perf.BetterThan(seeded.best.perf)) {
        adopt = false;
      }
    }
  }
  if (adopt) {
    seed_adopted_.fetch_add(1, std::memory_order_relaxed);
    return seeded;
  }
  seed_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  SearchResult unseeded = AcesoSearch(model, options);
  // Serve whichever run found the better plan — the fallback guards the
  // floor, it does not throw away a seeded win over the full unseeded run.
  if (seeded.found &&
      (!unseeded.found || seeded.best.perf.BetterThan(unseeded.best.perf))) {
    return seeded;
  }
  return unseeded;
}

PlanService::Response PlanService::Handle(const PlanRequest& request,
                                          const EventCallback& on_event) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  const std::string request_id =
      request.request_id.empty() ? NextRequestId() : request.request_id;

  auto error_response = [&](const Status& st) {
    errors_.fetch_add(1, std::memory_order_relaxed);
    Response r;
    r.status = st;
    r.body_head = BuildErrorEnvelope(request_id, st);
    return r;
  };

  auto graph_or = GraphForModel(request.model);
  if (!graph_or.ok()) {
    return error_response(InvalidArgument(graph_or.status().message() +
                                          "; known models: " +
                                          JoinZooNames()));
  }
  const OpGraph& graph = **graph_or;
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(request.gpus);
  const SearchOptions options =
      ToSearchOptions(request, options_.eval_threads);
  const uint64_t key = PlanCacheKey(graph, cluster, options);

  // A budget sweep keys as the base frontier request (ToSearchOptions), so
  // the cache/single-flight layers below are shared with plain frontier
  // requests; only the response body differs — each sweep waiter derives its
  // own per-budget answers from the one stored frontier payload.
  const bool sweep = !request.memory_budgets.empty();
  if (sweep) {
    budget_sweeps_.fetch_add(1, std::memory_order_relaxed);
  }
  // Assembles the ok response around a pre-serialized payload. On the
  // zero-serialization path (`reused` = the payload came out of the cache
  // or an already-finished single-flight) no JSON is constructed at all:
  // the tiny per-request envelope head is built and the payload rides along
  // by reference. A sweep re-renders the payload per budget list — but that
  // rendering is itself cached as a derived payload on the entry, so repeat
  // sweeps skip BuildBudgetSweepPayload too.
  auto payload_response = [&](std::string_view cache_kind,
                              std::shared_ptr<const std::string> payload_json,
                              bool reused) {
    Response r;
    r.key = key;
    std::shared_ptr<const std::string> mid = std::move(payload_json);
    if (sweep) {
      const uint64_t variant = BudgetsVariantHash(request.memory_budgets);
      std::shared_ptr<const std::string> derived =
          cache_.GetDerived(key, variant);
      if (derived == nullptr) {
        auto built = BuildBudgetSweepPayload(*mid, request.memory_budgets);
        if (!built.ok()) {
          r = error_response(built.status());
          r.key = key;
          return r;
        }
        derived =
            std::make_shared<const std::string>(std::move(*built));
        cache_.PutDerived(key, variant, derived);
        reused = false;
      }
      mid = std::move(derived);
    }
    if (reused) {
      serializations_skipped_.fetch_add(1, std::memory_order_relaxed);
    }
    r.cache = std::string(cache_kind);
    r.body_head = BuildResponseEnvelopeHead(request_id, cache_kind);
    r.body_mid = std::move(mid);
    r.body_tail = "}";
    return r;
  };

  // Layer 1: the plan cache. A hit replays the stored payload — the search
  // is never entered (counter-verified by serve_test); a sweep hit answers
  // every budget from the cached frontier, also without a search.
  if (auto hit = cache_.Get(key)) {
    if (sweep) {
      sweeps_from_cache_.fetch_add(1, std::memory_order_relaxed);
    }
    return payload_response("hit", hit->payload_json, /*reused=*/true);
  }

  // Layer 2/3: single-flight lookup, then admission. Both decided under one
  // lock so two identical requests can never both become runners.
  std::shared_ptr<Inflight> job;
  bool runner = false;
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    auto it = inflight_.find(key);
    if (it != inflight_.end()) {
      job = it->second;
    } else {
      const int64_t running =
          running_searches_.fetch_add(1, std::memory_order_relaxed);
      if (running >= options_.max_inflight_searches) {
        running_searches_.fetch_sub(1, std::memory_order_relaxed);
        rejected_.fetch_add(1, std::memory_order_relaxed);
        Response r;
        r.status = ResourceExhausted(
            "planning capacity exhausted (" +
            std::to_string(options_.max_inflight_searches) +
            " searches in flight); retry later");
        r.key = key;
        r.body_head = BuildErrorEnvelope(request_id, r.status);
        return r;
      }
      job = std::make_shared<Inflight>();
      inflight_.emplace(key, job);
      runner = true;
    }
  }

  if (!runner) {
    // Coalesced: piggyback on the identical in-flight search.
    coalesced_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lk(job->mu);
    job->cv.wait(lk, [&job] { return job->done; });
    if (!job->search_status.ok()) {
      lk.unlock();
      return error_response(job->search_status);
    }
    return payload_response("coalesced", job->payload_json, /*reused=*/true);
  }

  // Runner: the search is a job on the shared pool; this thread waits (and,
  // when streaming, forwards telemetry events as they appear).
  struct JobState {
    std::shared_ptr<const OpGraph> graph;  // shared with the model memo
    ClusterSpec cluster;
    SearchOptions options;
    std::unique_ptr<TelemetrySink> sink;
  };
  auto state = std::make_shared<JobState>();
  state->graph = std::move(*graph_or);
  state->cluster = cluster;
  state->options = options;
  if (on_event != nullptr) {
    state->sink = std::make_unique<TelemetrySink>();
    state->options.telemetry = state->sink.get();
  }
  ProfileDatabase* db = DbForCluster(cluster);

  const size_t convergence_cap = options_.convergence_cap;
  pool_.Submit([this, state, job, key, db, convergence_cap] {
    Status st;
    std::shared_ptr<const std::string> payload;
    bool found = false;
    double iteration_time = 0.0;
    std::shared_ptr<const ParallelConfig> best_config;
    const bool neighbor_seed = options_.neighbor_seed;
    try {
      PerformanceModel model(state->graph.get(), state->cluster, db);
      const SearchResult result =
          neighbor_seed ? SeededSearch(model, state->options, key)
                        : AcesoSearch(model, state->options);
      payload = std::make_shared<const std::string>(BuildPlanPayload(
          *state->graph, state->cluster, result, convergence_cap));
      found = result.found;
      iteration_time = result.found ? result.best.perf.iteration_time : 0.0;
      if (neighbor_seed && result.found) {
        best_config =
            std::make_shared<const ParallelConfig>(result.best.config);
      }
    } catch (const std::exception& e) {
      st = Internal(std::string("search failed: ") + e.what());
    } catch (...) {
      st = Internal("search failed");
    }
    if (st.ok()) {
      // Publish to the cache *before* leaving the single-flight map: a new
      // identical request always sees either the in-flight entry or the
      // cached payload, never the gap between them. The cache entry, the
      // in-flight waiters, and every wire response share one string.
      cache_.Put(key, CachedPlan{payload, found, iteration_time});
      if (best_config != nullptr) {
        // Register the adopted plan with the similarity index so later
        // near-identical misses can seed from it (DESIGN.md §17).
        NeighborPlan neighbor;
        neighbor.config = std::move(best_config);
        neighbor.num_ops = state->graph->num_ops();
        neighbor.num_gpus = state->cluster.num_gpus();
        neighbor.memory_budget_bytes = state->options.memory_budget_bytes;
        neighbor.iteration_time = iteration_time;
        cache_.AttachNeighbor(
            key, NeighborFamilyKey(*state->graph, state->cluster),
            std::move(neighbor));
      }
      completed_.fetch_add(1, std::memory_order_relaxed);
    }
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      inflight_.erase(key);
    }
    running_searches_.fetch_sub(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lk(job->mu);
      job->search_status = st;
      job->payload_json = std::move(payload);
      job->done = true;
    }
    job->cv.notify_all();
  });

  if (on_event == nullptr) {
    std::unique_lock<std::mutex> lk(job->mu);
    job->cv.wait(lk, [&job] { return job->done; });
  } else {
    // Forward ring events incrementally while the search runs. The sink's
    // ring is a snapshot-copy interface, so track a cursor over the emitted
    // prefix; with the default 64k ring, overflow would need a pathological
    // event rate and only costs dropped *streamed* lines, never the result.
    size_t cursor = 0;
    auto drain = [&] {
      const auto events = state->sink->Events();
      for (; cursor < events.size(); ++cursor) {
        on_event(events[cursor].ToJsonLine());
      }
    };
    std::unique_lock<std::mutex> lk(job->mu);
    while (!job->done) {
      job->cv.wait_for(lk, std::chrono::milliseconds(50));
      lk.unlock();
      drain();
      lk.lock();
    }
    lk.unlock();
    drain();
  }

  if (!job->search_status.ok()) {
    Response r = error_response(job->search_status);
    r.key = key;
    return r;
  }
  return payload_response("miss", job->payload_json, /*reused=*/false);
}

Status PlanService::SaveProfiles(const std::string& dir) {
  const std::string& target = dir.empty() ? options_.snapshot_dir : dir;
  if (target.empty()) {
    return InvalidArgument("no snapshot directory configured");
  }
  // Create the leaf directory when absent (parents must exist); a daemon
  // pointed at a fresh --snapshot-dir should not need a manual mkdir.
  if (::mkdir(target.c_str(), 0755) != 0 && errno != EEXIST) {
    return InvalidArgument("cannot create snapshot directory " + target +
                           ": " + std::strerror(errno));
  }
  std::lock_guard<std::mutex> lock(db_mu_);
  for (const auto& [fp, db] : dbs_) {
    ACESO_RETURN_IF_ERROR(db->Save(ProfileSnapshotPath(target, fp)));
  }
  return OkStatus();
}

ServeStats PlanService::stats() const {
  ServeStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.coalesced = coalesced_.load(std::memory_order_relaxed);
  s.budget_sweeps = budget_sweeps_.load(std::memory_order_relaxed);
  s.sweeps_from_cache = sweeps_from_cache_.load(std::memory_order_relaxed);
  s.serializations_skipped =
      serializations_skipped_.load(std::memory_order_relaxed);
  const PlanCacheStats cache = cache_.stats();
  s.cache_hits = cache.hits;
  s.cache_misses = cache.misses;
  s.cache_evictions = cache.evictions;
  s.neighbor_seeded = neighbor_seeded_.load(std::memory_order_relaxed);
  s.seed_adopted = seed_adopted_.load(std::memory_order_relaxed);
  s.seed_fallbacks = seed_fallbacks_.load(std::memory_order_relaxed);
  s.warm_starts = warm_starts_.load(std::memory_order_relaxed);
  s.warm_start_errors = warm_start_errors_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(db_mu_);
  s.profile_dbs = static_cast<int64_t>(dbs_.size());
  for (const auto& [fp, db] : dbs_) {
    const ProfileDbStats dbs = db->stats();
    s.profile_lookups += dbs.lookups;
    s.profile_misses += dbs.misses;
  }
  return s;
}

std::string PlanService::StatsJson() const {
  const ServeStats s = stats();
  std::string out = "{";
  auto field = [&out](const char* name, int64_t value, bool last = false) {
    out += "\"";
    out += name;
    out += "\":";
    out += std::to_string(value);
    if (!last) {
      out += ",";
    }
  };
  field("requests", s.requests);
  field("completed", s.completed);
  field("rejected", s.rejected);
  field("errors", s.errors);
  field("coalesced", s.coalesced);
  field("budget_sweeps", s.budget_sweeps);
  field("sweeps_from_cache", s.sweeps_from_cache);
  field("serializations_skipped", s.serializations_skipped);
  field("cache_hits", s.cache_hits);
  field("cache_misses", s.cache_misses);
  field("cache_evictions", s.cache_evictions);
  field("neighbor_seeded", s.neighbor_seeded);
  field("seed_adopted", s.seed_adopted);
  field("seed_fallbacks", s.seed_fallbacks);
  field("profile_dbs", s.profile_dbs);
  field("warm_starts", s.warm_starts);
  field("warm_start_errors", s.warm_start_errors);
  field("profile_lookups", s.profile_lookups);
  field("profile_misses", s.profile_misses, /*last=*/true);
  out += "}";
  return out;
}

}  // namespace serve
}  // namespace aceso
