#include "src/serve/plan_protocol.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/common/hash.h"
#include "src/config/config_io.h"

namespace aceso {
namespace serve {
namespace {

std::string HexFingerprint(uint64_t fp) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016" PRIx64, fp);
  return buf;
}

Status FieldError(std::string_view key, const char* want) {
  return InvalidArgument("request field \"" + std::string(key) + "\": " +
                         want);
}

// Typed field extraction; every mismatch names the field and what it wants.
Status TakeString(std::string_view key, const JsonValue& v,
                  std::string* out) {
  if (!v.is_string()) {
    return FieldError(key, "expected a string");
  }
  *out = v.string_value();
  return OkStatus();
}

Status TakeInt(std::string_view key, const JsonValue& v, int64_t min_value,
               int64_t* out) {
  if (!v.is_number() || !v.number_is_int()) {
    return FieldError(key, "expected an integer");
  }
  if (v.int_value() < min_value) {
    return FieldError(key, min_value == 0 ? "must be >= 0" : "must be >= 1");
  }
  *out = v.int_value();
  return OkStatus();
}

Status TakeIntField(std::string_view key, const JsonValue& v,
                    int64_t min_value, int* out) {
  int64_t wide = 0;
  ACESO_RETURN_IF_ERROR(TakeInt(key, v, min_value, &wide));
  if (wide > 1'000'000'000) {
    return FieldError(key, "out of range");
  }
  *out = static_cast<int>(wide);
  return OkStatus();
}

Status TakeBool(std::string_view key, const JsonValue& v, bool* out) {
  if (!v.is_bool()) {
    return FieldError(key, "expected a boolean");
  }
  *out = v.bool_value();
  return OkStatus();
}

Status TakeNumber(std::string_view key, const JsonValue& v, double* out) {
  if (!v.is_number()) {
    return FieldError(key, "expected a number");
  }
  *out = v.number_value();
  return OkStatus();
}

}  // namespace

StatusOr<PlanRequest> ParsePlanRequest(const JsonValue& doc) {
  if (!doc.is_object()) {
    return InvalidArgument("plan request must be a JSON object");
  }
  PlanRequest req;
  bool have_model = false;
  for (const auto& [key, value] : doc.members()) {
    Status st;
    if (key == "model") {
      st = TakeString(key, value, &req.model);
      have_model = true;
    } else if (key == "gpus") {
      st = TakeIntField(key, value, 1, &req.gpus);
    } else if (key == "budget_seconds") {
      st = TakeNumber(key, value, &req.budget_seconds);
      if (st.ok() && !(req.budget_seconds > 0.0)) {
        st = FieldError(key, "must be > 0");
      }
    } else if (key == "max_evaluations") {
      st = TakeInt(key, value, 0, &req.max_evaluations);
    } else if (key == "max_hops") {
      st = TakeIntField(key, value, 1, &req.max_hops);
    } else if (key == "stages") {
      st = TakeIntField(key, value, 0, &req.stages);
    } else if (key == "min_stages") {
      st = TakeIntField(key, value, 1, &req.min_stages);
    } else if (key == "max_stages") {
      st = TakeIntField(key, value, 0, &req.max_stages);
    } else if (key == "seed") {
      int64_t wide = 0;
      st = TakeInt(key, value, 0, &wide);
      req.seed = static_cast<uint64_t>(wide);
    } else if (key == "seed_mode") {
      std::string mode;
      st = TakeString(key, value, &mode);
      if (st.ok()) {
        if (mode == "heuristic") {
          req.seed_mode = SeedMode::kHeuristic;
        } else if (mode == "dp") {
          req.seed_mode = SeedMode::kDp;
        } else {
          st = FieldError(key, "expected one of heuristic|dp");
        }
      }
    } else if (key == "top_k") {
      st = TakeIntField(key, value, 1, &req.top_k);
    } else if (key == "frontier") {
      st = TakeBool(key, value, &req.frontier);
    } else if (key == "memory_budget_bytes") {
      st = TakeInt(key, value, 0, &req.memory_budget_bytes);
    } else if (key == "memory_budgets") {
      if (!value.is_array() || value.size() == 0) {
        st = FieldError(key, "expected a non-empty array of integers >= 1");
      }
      for (size_t i = 0; st.ok() && i < value.size(); ++i) {
        const JsonValue& item = value.item(i);
        if (!item.is_number() || !item.number_is_int() ||
            item.int_value() < 1) {
          st = FieldError(key, "expected a non-empty array of integers >= 1");
        } else {
          req.memory_budgets.push_back(item.int_value());
        }
      }
    } else if (key == "request_id") {
      st = TakeString(key, value, &req.request_id);
    } else if (key == "client") {
      st = TakeString(key, value, &req.client);
    } else if (key == "stream") {
      st = TakeBool(key, value, &req.stream);
    } else if (key == "eval_threads") {
      st = TakeIntField(key, value, 0, &req.eval_threads);
    } else {
      st = InvalidArgument("unknown request field \"" + key + "\"");
    }
    if (!st.ok()) {
      return st;
    }
  }
  if (!have_model || req.model.empty()) {
    return InvalidArgument("request field \"model\" is required");
  }
  if (!req.memory_budgets.empty() && req.memory_budget_bytes > 0) {
    return InvalidArgument(
        "\"memory_budgets\" (a frontier sweep, answered at device capacity) "
        "cannot be combined with \"memory_budget_bytes\"");
  }
  return req;
}

StatusOr<PlanRequest> ParsePlanRequestJson(std::string_view body) {
  auto doc = JsonParse(body);
  if (!doc.ok()) {
    return InvalidArgument("request body is not valid JSON: " +
                           doc.status().message());
  }
  return ParsePlanRequest(*doc);
}

SearchOptions ToSearchOptions(const PlanRequest& request,
                              int default_eval_threads) {
  SearchOptions options;
  options.time_budget_seconds = request.budget_seconds;
  options.max_evaluations = request.max_evaluations;
  options.max_hops = request.max_hops;
  options.seed = request.seed;
  options.seed_mode = request.seed_mode;
  options.top_k = request.top_k;
  if (request.stages > 0) {
    options.min_stages = request.stages;
    options.max_stages = request.stages;
  } else {
    options.min_stages = request.min_stages;
    options.max_stages = request.max_stages;
  }
  // A sweep runs the base frontier search (capacity verdicts, frontier on):
  // its cache key is shared with plain `frontier` requests, so one archived
  // search answers every later sweep.
  options.track_frontier = request.frontier || !request.memory_budgets.empty();
  options.memory_budget_bytes =
      request.memory_budgets.empty() ? request.memory_budget_bytes : 0;
  options.eval_threads =
      request.eval_threads > 0 ? request.eval_threads : default_eval_threads;
  if (options.eval_threads < 1) {
    options.eval_threads = 1;
  }
  return options;
}

uint64_t PlanCacheKey(const OpGraph& graph, const ClusterSpec& cluster,
                      const SearchOptions& options) {
  Hasher h;
  h.Add(Mix64(graph.SemanticFingerprint()));
  h.Add(Mix64(cluster.Fingerprint()));
  h.Add(Mix64(SearchOptionsSemanticHash(options)));
  return Mix64(h.Digest());
}

uint64_t ModelFamilyFingerprint(const OpGraph& graph) {
  // Distinct op signatures in first-appearance order: a deeper stack of the
  // same repeated block introduces no new signature, so deepnet-24 and
  // deepnet-48 share a family, while any change to hidden sizes, per-op
  // shapes, or precision starts a new one. Batch size and layer count are
  // deliberately excluded — they are exactly what seed adaptation reshapes.
  Hasher h;
  h.Add(static_cast<int>(graph.precision()));
  std::vector<uint64_t> seen;
  for (const Operator& op : graph.ops()) {
    const uint64_t sig = op.Signature();
    bool is_new = true;
    for (const uint64_t s : seen) {
      if (s == sig) {
        is_new = false;
        break;
      }
    }
    if (is_new) {
      seen.push_back(sig);
      h.Add(sig);
    }
  }
  h.Add(static_cast<int64_t>(seen.size()));
  return Mix64(h.Digest());
}

uint64_t ClusterFamilyFingerprint(const ClusterSpec& cluster) {
  // The cluster minus its size: GPU type and link performance only. Node
  // and per-node device counts are similarity *features* (device-count
  // delta), not family keys.
  Hasher h;
  h.Add(cluster.gpu.Fingerprint());
  h.Add(cluster.nvlink_bandwidth);
  h.Add(cluster.nvlink_latency);
  h.Add(cluster.ib_bandwidth);
  h.Add(cluster.ib_latency);
  return Mix64(h.Digest());
}

uint64_t NeighborFamilyKey(const OpGraph& graph, const ClusterSpec& cluster) {
  return HashCombine(ModelFamilyFingerprint(graph),
                     ClusterFamilyFingerprint(cluster));
}

std::string BuildPlanPayload(const OpGraph& graph, const ClusterSpec& cluster,
                             const SearchResult& result,
                             size_t convergence_cap) {
  std::string out;
  out += "{\"found\":";
  out += result.found ? "true" : "false";

  out += ",\"model\":{\"name\":\"";
  AppendJsonEscaped(out, graph.name());
  out += "\",\"summary\":\"";
  AppendJsonEscaped(out, graph.Summary());
  out += "\",\"fingerprint\":\"";
  out += HexFingerprint(graph.SemanticFingerprint());
  out += "\"}";

  out += ",\"cluster\":{\"gpus\":";
  out += std::to_string(cluster.num_gpus());
  out += ",\"summary\":\"";
  AppendJsonEscaped(out, cluster.ToString());
  out += "\",\"fingerprint\":\"";
  out += HexFingerprint(cluster.Fingerprint());
  out += "\"}";

  if (result.found) {
    const ScoredConfig& best = result.best;
    out += ",\"plan\":{\"num_stages\":";
    out += std::to_string(best.config.num_stages());
    out += ",\"microbatch_size\":";
    out += std::to_string(best.config.microbatch_size());
    out += ",\"iteration_time\":";
    AppendJsonNumber(out, best.perf.iteration_time);
    out += ",\"throughput\":";
    AppendJsonNumber(out, best.perf.Throughput(graph.global_batch_size()));
    out += ",\"oom\":";
    out += best.perf.oom ? "true" : "false";
    out += ",\"summary\":\"";
    AppendJsonEscaped(out, best.perf.Summary());
    out += "\",\"config_text\":\"";
    AppendJsonEscaped(out, SerializeConfig(best.config, graph.name()));
    out += "\"}";
  }

  out += ",\"search\":{\"seconds\":";
  AppendJsonNumber(out, result.search_seconds);
  out += ",\"iterations\":";
  out += std::to_string(result.stats.iterations);
  out += ",\"improvements\":";
  out += std::to_string(result.stats.improvements);
  out += ",\"configs_explored\":";
  out += std::to_string(result.stats.configs_explored);
  out += ",\"cache_hits\":";
  out += std::to_string(result.stats.cache_hits);
  out += ",\"cache_misses\":";
  out += std::to_string(result.stats.cache_misses);
  out += "}";

  // The frontier archive, when the search tracked one (a tracked search
  // always offers at least its initial configuration). Cached alongside the
  // plan: budget sweeps replay from here without re-entering the search.
  if (result.stats.frontier_offered > 0 || !result.frontier.empty()) {
    out += ",\"frontier\":";
    out += result.frontier.ToJson(graph.name());
  }

  // Convergence trend, thinned to at most `convergence_cap` points: keep an
  // even stride plus always the last point (the final best).
  const auto& trend = result.convergence;
  out += ",\"convergence_total\":";
  out += std::to_string(trend.size());
  out += ",\"convergence\":[";
  if (!trend.empty() && convergence_cap > 0) {
    const size_t stride =
        std::max<size_t>(1, (trend.size() + convergence_cap - 1) /
                                convergence_cap);
    bool first = true;
    for (size_t i = 0; i < trend.size(); ++i) {
      if (i % stride != 0 && i + 1 != trend.size()) {
        continue;
      }
      if (!first) {
        out += ',';
      }
      first = false;
      out += "{\"elapsed\":";
      AppendJsonNumber(out, trend[i].elapsed_seconds);
      out += ",\"iteration_time\":";
      AppendJsonNumber(out, trend[i].best_iteration_time);
      out += ",\"evaluations\":";
      out += std::to_string(trend[i].evaluations);
      out += "}";
    }
  }
  out += "]}";
  return out;
}

StatusOr<std::string> BuildBudgetSweepPayload(
    const std::string& plan_payload_json,
    const std::vector<int64_t>& budgets) {
  auto doc = JsonParse(plan_payload_json);
  if (!doc.ok()) {
    return Internal("plan payload is not valid JSON: " +
                    doc.status().message());
  }
  const JsonValue* frontier_doc = doc->Find("frontier");
  if (frontier_doc == nullptr) {
    return FailedPrecondition(
        "plan payload carries no frontier (the search ran without "
        "track_frontier)");
  }
  auto archive = FrontierArchive::FromJson(*frontier_doc);
  if (!archive.ok()) {
    return archive.status();
  }

  std::string out = "{";
  const JsonValue* model = doc->Find("model");
  if (model != nullptr) {
    out += "\"model\":" + model->ToJson() + ",";
  }
  const JsonValue* cluster = doc->Find("cluster");
  if (cluster != nullptr) {
    out += "\"cluster\":" + cluster->ToJson() + ",";
  }
  out += "\"frontier_points\":" + std::to_string(archive->size());
  out += ",\"sweep\":[";
  bool first = true;
  for (const int64_t budget : budgets) {
    if (!first) {
      out += ',';
    }
    first = false;
    const FrontierPoint* best = archive->BestUnderBudget(budget);
    out += "{\"memory_budget_bytes\":" + std::to_string(budget);
    out += ",\"found\":";
    out += best != nullptr ? "true" : "false";
    if (best != nullptr) {
      out += ",\"iteration_time\":";
      AppendJsonNumber(out, best->iteration_time);
      out += ",\"peak_memory_bytes\":" +
             std::to_string(best->peak_memory_bytes);
      out += ",\"cost_per_step_usd\":";
      AppendJsonNumber(out, best->cost_per_step_usd);
      out += ",\"num_stages\":" + std::to_string(best->num_stages);
      out += ",\"microbatch_size\":" + std::to_string(best->microbatch_size);
      // Feasibility under the *searched* device; a point above capacity
      // answers budgets larger than the modelled device.
      out += ",\"feasible\":";
      out += best->feasible ? "true" : "false";
      out += ",\"config_text\":\"";
      AppendJsonEscaped(out, best->config_text);
      out += "\"";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

std::string BuildResponseEnvelopeHead(const std::string& request_id,
                                      std::string_view cache) {
  std::string out = "{\"status\":\"ok\",\"request_id\":\"";
  AppendJsonEscaped(out, request_id);
  out += "\",\"cache\":\"";
  out.append(cache.data(), cache.size());
  out += "\",\"payload\":";
  return out;
}

std::string BuildResponseEnvelope(const std::string& request_id,
                                  std::string_view cache,
                                  const std::string& payload_json) {
  std::string out = BuildResponseEnvelopeHead(request_id, cache);
  out += payload_json;
  out += "}";
  return out;
}

std::string BuildErrorEnvelope(const std::string& request_id,
                               const Status& error) {
  std::string out = "{\"status\":\"error\",\"request_id\":\"";
  AppendJsonEscaped(out, request_id);
  out += "\",\"code\":\"";
  AppendJsonEscaped(out, StatusCodeName(error.code()));
  out += "\",\"message\":\"";
  AppendJsonEscaped(out, error.message());
  out += "\"}";
  return out;
}

}  // namespace serve
}  // namespace aceso
