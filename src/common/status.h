// Lightweight error-propagation types used throughout Aceso.
//
// Core search paths avoid exceptions: fallible operations return Status or
// StatusOr<T>, mirroring the absl style without pulling in absl.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace aceso {

// Error categories. Kept deliberately coarse; the message carries detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnimplemented,
  kDeadlineExceeded,
};

// Human-readable name of a StatusCode ("OK", "INVALID_ARGUMENT", ...).
const char* StatusCodeName(StatusCode code);

// A success-or-error result. Cheap to copy on the success path (no message
// allocation), explicit about failures on the error path.
class Status {
 public:
  // Default-constructed Status is OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    assert(code != StatusCode::kOk && "use OkStatus() for success");
  }

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "INVALID_ARGUMENT: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }

inline Status InvalidArgument(std::string msg) {
  return Status(StatusCode::kInvalidArgument, std::move(msg));
}
inline Status NotFound(std::string msg) {
  return Status(StatusCode::kNotFound, std::move(msg));
}
inline Status OutOfRange(std::string msg) {
  return Status(StatusCode::kOutOfRange, std::move(msg));
}
inline Status FailedPrecondition(std::string msg) {
  return Status(StatusCode::kFailedPrecondition, std::move(msg));
}
inline Status ResourceExhausted(std::string msg) {
  return Status(StatusCode::kResourceExhausted, std::move(msg));
}
inline Status Internal(std::string msg) {
  return Status(StatusCode::kInternal, std::move(msg));
}
inline Status Unimplemented(std::string msg) {
  return Status(StatusCode::kUnimplemented, std::move(msg));
}
inline Status DeadlineExceeded(std::string msg) {
  return Status(StatusCode::kDeadlineExceeded, std::move(msg));
}

// Holds either a value of type T or an error Status. Access to the value when
// holding an error is a programming bug and asserts in debug builds.
template <typename T>
class StatusOr {
 public:
  // Implicit conversions keep call sites terse:  return value; / return status;
  StatusOr(T value) : value_(std::move(value)) {}        // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr(Status) requires an error status");
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;
};

// Propagates an error Status out of the current function.
#define ACESO_RETURN_IF_ERROR(expr)         \
  do {                                      \
    ::aceso::Status _st = (expr);           \
    if (!_st.ok()) {                        \
      return _st;                           \
    }                                       \
  } while (0)

}  // namespace aceso

#endif  // SRC_COMMON_STATUS_H_
