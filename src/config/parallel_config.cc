#include "src/config/parallel_config.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace aceso {
namespace {

int FloorPow2(int n) {
  int p = 1;
  while (p * 2 <= n) {
    p *= 2;
  }
  return p;
}

}  // namespace

bool IsPow2(int v) { return v >= 1 && (v & (v - 1)) == 0; }

int ClampOpTp(const Operator& op, int tp) {
  if (op.tp_class == TpClass::kPartitioned) {
    return std::min(tp, FloorPow2(std::max(op.max_tp, 1)));
  }
  return tp;
}

void StageConfig::SetUniformParallelism(const OpGraph& graph, int tp, int dp) {
  ACESO_CHECK_EQ(tp * dp, num_devices);
  ops.resize(static_cast<size_t>(num_ops));
  for (int i = 0; i < num_ops; ++i) {
    const Operator& op = graph.op(first_op + i);
    OpParallel& setting = ops[static_cast<size_t>(i)];
    setting.tp = ClampOpTp(op, tp);
    setting.dp = num_devices / setting.tp;
    setting.tp_dim =
        op.default_tp_dim == TpDim::kNone ? TpDim::kColumn : op.default_tp_dim;
  }
}

int StageConfig::NumRecomputed() const {
  int count = 0;
  for (const OpParallel& op : ops) {
    if (op.recompute) {
      ++count;
    }
  }
  return count;
}

int ParallelConfig::StageFirstDevice(int stage_index) const {
  int first = 0;
  for (int i = 0; i < stage_index; ++i) {
    first += stages_[static_cast<size_t>(i)].num_devices;
  }
  return first;
}

int ParallelConfig::TotalDevices() const {
  int total = 0;
  for (const StageConfig& stage : stages_) {
    total += stage.num_devices;
  }
  return total;
}

const OpParallel& ParallelConfig::OpSettings(int op_index) const {
  const int stage_index = StageOfOp(op_index);
  const StageConfig& stage = stages_[static_cast<size_t>(stage_index)];
  return stage.ops[static_cast<size_t>(op_index - stage.first_op)];
}

OpParallel& ParallelConfig::MutableOpSettings(int op_index) {
  const int stage_index = StageOfOp(op_index);
  StageConfig& stage = stages_[static_cast<size_t>(stage_index)];
  return stage.ops[static_cast<size_t>(op_index - stage.first_op)];
}

int ParallelConfig::StageOfOp(int op_index) const {
  for (size_t s = 0; s < stages_.size(); ++s) {
    const StageConfig& stage = stages_[s];
    if (op_index >= stage.first_op && op_index < stage.end_op()) {
      return static_cast<int>(s);
    }
  }
  ACESO_CHECK(false) << "op " << op_index << " not in any stage";
  return -1;
}

int64_t ParallelConfig::NumMicrobatches(const OpGraph& graph) const {
  return graph.global_batch_size() / microbatch_size_;
}

Status ParallelConfig::Validate(const OpGraph& graph,
                                const ClusterSpec& cluster) const {
  if (stages_.empty()) {
    return InvalidArgument("configuration has no stages");
  }
  if (microbatch_size_ < 1) {
    return InvalidArgument("microbatch size must be >= 1");
  }
  if (graph.global_batch_size() % microbatch_size_ != 0) {
    return InvalidArgument("microbatch size " +
                           std::to_string(microbatch_size_) +
                           " does not divide batch " +
                           std::to_string(graph.global_batch_size()));
  }
  if (TotalDevices() != cluster.num_gpus()) {
    return InvalidArgument("stage devices sum to " +
                           std::to_string(TotalDevices()) + ", cluster has " +
                           std::to_string(cluster.num_gpus()));
  }
  int next_op = 0;
  for (size_t s = 0; s < stages_.size(); ++s) {
    const StageConfig& stage = stages_[s];
    const std::string tag = "stage " + std::to_string(s);
    if (stage.first_op != next_op) {
      return InvalidArgument(tag + " starts at op " +
                             std::to_string(stage.first_op) + ", expected " +
                             std::to_string(next_op));
    }
    if (stage.num_ops <= 0) {
      return InvalidArgument(tag + " is empty");
    }
    next_op = stage.end_op();
    if (!IsPow2(stage.num_devices)) {
      return InvalidArgument(tag + " device count " +
                             std::to_string(stage.num_devices) +
                             " is not a power of two");
    }
    if (static_cast<int>(stage.ops.size()) != stage.num_ops) {
      return InvalidArgument(tag + " has " + std::to_string(stage.ops.size()) +
                             " op settings for " +
                             std::to_string(stage.num_ops) + " ops");
    }
    for (int i = 0; i < stage.num_ops; ++i) {
      const OpParallel& setting = stage.ops[static_cast<size_t>(i)];
      const Operator& op = graph.op(stage.first_op + i);
      const std::string op_tag = tag + " op " + op.name;
      if (!IsPow2(setting.tp) || !IsPow2(setting.dp)) {
        return InvalidArgument(op_tag + ": tp/dp must be powers of two");
      }
      if (setting.tp * setting.dp != stage.num_devices) {
        return InvalidArgument(op_tag + ": tp*dp=" +
                               std::to_string(setting.tp * setting.dp) +
                               " != stage devices " +
                               std::to_string(stage.num_devices));
      }
      if (op.tp_class == TpClass::kPartitioned &&
          setting.tp > FloorPow2(std::max(op.max_tp, 1))) {
        return InvalidArgument(op_tag + ": tp " + std::to_string(setting.tp) +
                               " exceeds op limit " +
                               std::to_string(op.max_tp));
      }
      if (microbatch_size_ % setting.dp != 0) {
        return InvalidArgument(op_tag + ": dp " + std::to_string(setting.dp) +
                               " does not divide microbatch size " +
                               std::to_string(microbatch_size_));
      }
    }
  }
  if (next_op != graph.num_ops()) {
    return InvalidArgument("stages cover " + std::to_string(next_op) +
                           " ops, model has " +
                           std::to_string(graph.num_ops()));
  }
  return OkStatus();
}

namespace {

// Folds one stage's op settings into `h`, canonicalizing fields that do not
// affect semantics (partition dimensions at tp == 1, ZeRO flags at dp == 1).
// Shared by the whole-config SemanticHash and the per-stage cache key so the
// two can never disagree about what a setting means. Each op packs into a
// single word (one hash combine per op): this hash sits on the search's
// innermost loop — once per candidate for deduplication and once per stage
// for every stage-cost cache probe.
void HashStageOps(const OpGraph& graph, const StageConfig& stage, Hasher& h) {
  for (int i = 0; i < stage.num_ops; ++i) {
    const OpParallel& setting = stage.ops[static_cast<size_t>(i)];
    const Operator& op = graph.op(stage.first_op + i);
    // The partition dimension only matters for sharded partitioned ops.
    const bool dim_matters =
        setting.tp > 1 && op.tp_class == TpClass::kPartitioned;
    const uint64_t dim =
        dim_matters ? static_cast<uint64_t>(setting.tp_dim) + 1 : 0;
    // ZeRO only changes semantics for data-parallel ops.
    const bool zero = setting.dp > 1 && setting.zero_opt;
    // tp and dp are device counts (< 2^16 for any plausible cluster).
    h.Add(static_cast<uint64_t>(setting.tp) |
          static_cast<uint64_t>(setting.dp) << 16 | dim << 32 |
          static_cast<uint64_t>(setting.recompute) << 35 |
          static_cast<uint64_t>(zero) << 36);
  }
}

}  // namespace

uint64_t ParallelConfig::SemanticHash(const OpGraph& graph) const {
  Hasher h;
  h.Add(microbatch_size_);
  h.Add(static_cast<int>(stages_.size()));
  for (const StageConfig& stage : stages_) {
    h.Add(stage.num_ops);
    h.Add(stage.num_devices);
    HashStageOps(graph, stage, h);
  }
  return h.Digest();
}

uint64_t ParallelConfig::StageSemanticHash(const OpGraph& graph,
                                           const ClusterSpec& cluster,
                                           int stage_index) const {
  const StageConfig& stage = stages_.at(static_cast<size_t>(stage_index));
  const int first_device = StageFirstDevice(stage_index);
  Hasher h;
  h.Add(microbatch_size_);
  h.Add(stage.first_op);
  h.Add(stage.num_ops);
  h.Add(stage.num_devices);
  // Placement context (see header): node offset drives every
  // GroupCrossesNodes() answer inside the walk; the receives-input bit
  // distinguishes stage 0 (no p2p charge) from later stages.
  h.Add(first_device % cluster.gpus_per_node);
  h.Add(stage_index > 0);
  HashStageOps(graph, stage, h);
  return h.Digest();
}

std::string ParallelConfig::ToString(const OpGraph& graph) const {
  std::ostringstream oss;
  oss << "config: mbs=" << microbatch_size_ << " stages=" << num_stages()
      << "\n";
  for (int s = 0; s < num_stages(); ++s) {
    const StageConfig& stage = stages_[static_cast<size_t>(s)];
    oss << "  stage " << s << ": ops [" << stage.first_op << ", "
        << stage.end_op() << ") devices=" << stage.num_devices << "\n";
    // Group runs of ops with identical settings for readability. The
    // partition dimension only differentiates sharded ops.
    auto same_group = [](const OpParallel& a, const OpParallel& b) {
      if (a.tp != b.tp || a.dp != b.dp || a.recompute != b.recompute) {
        return false;
      }
      return a.tp == 1 || a.tp_dim == b.tp_dim;
    };
    int run_start = 0;
    for (int i = 1; i <= stage.num_ops; ++i) {
      if (i < stage.num_ops &&
          same_group(stage.ops[static_cast<size_t>(i)],
                     stage.ops[static_cast<size_t>(run_start)])) {
        continue;
      }
      const OpParallel& setting = stage.ops[static_cast<size_t>(run_start)];
      oss << "    ops " << (stage.first_op + run_start) << ".."
          << (stage.first_op + i - 1) << ": tp=" << setting.tp
          << " dp=" << setting.dp;
      if (setting.tp > 1) {
        oss << " dim=" << TpDimName(setting.tp_dim);
      }
      oss << (setting.recompute ? " rc" : "") << "  ("
          << graph.op(stage.first_op + run_start).name << " ...)\n";
      run_start = i;
    }
  }
  return oss.str();
}

std::string ParallelConfig::ShortString() const {
  std::ostringstream oss;
  oss << "mbs=" << microbatch_size_;
  for (int s = 0; s < num_stages(); ++s) {
    const StageConfig& stage = stages_[static_cast<size_t>(s)];
    // Report the most common (tp, dp) pair of the stage for compactness.
    std::map<std::pair<int, int>, int> counts;
    for (const OpParallel& setting : stage.ops) {
      ++counts[{setting.tp, setting.dp}];
    }
    std::pair<int, int> modal{1, stage.num_devices};
    int best = 0;
    for (const auto& [pair, count] : counts) {
      if (count > best) {
        best = count;
        modal = pair;
      }
    }
    oss << " | s" << s << "[" << stage.num_ops << "ops g" << stage.num_devices
        << " tp" << modal.first << " dp" << modal.second << " rc"
        << stage.NumRecomputed() << "]";
  }
  return oss.str();
}

StatusOr<std::vector<int>> SplitDevicesPow2(int total, int parts) {
  if (!IsPow2(total)) {
    return InvalidArgument("device count " + std::to_string(total) +
                           " is not a power of two");
  }
  if (parts < 1 || parts > total) {
    return InvalidArgument("cannot split " + std::to_string(total) +
                           " devices into " + std::to_string(parts) +
                           " stages");
  }
  if (parts == 1) {
    return std::vector<int>{total};
  }
  const int left_parts = (parts + 1) / 2;
  const int right_parts = parts / 2;
  auto left = SplitDevicesPow2(total / 2, left_parts);
  auto right = SplitDevicesPow2(total / 2, right_parts);
  if (!left.ok()) {
    return left.status();
  }
  if (!right.ok()) {
    return right.status();
  }
  std::vector<int> out = *std::move(left);
  out.insert(out.end(), right->begin(), right->end());
  // Larger stages first matches 1F1B's preference for memory-light late
  // stages (early stages hold more in-flight microbatches).
  std::sort(out.begin(), out.end(), std::greater<int>());
  return out;
}

namespace {

// Splits [0, num_ops) into `parts` contiguous ranges with boundaries chosen
// so each range carries ~target_weight[i] of the total FLOPs.
std::vector<int> SplitOpsByWeight(const OpGraph& graph, int parts,
                                  const std::vector<double>& weights) {
  const int n = graph.num_ops();
  std::vector<double> prefix(static_cast<size_t>(n) + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    // Guard against all-zero-flop prefixes with a small epsilon per op.
    prefix[static_cast<size_t>(i) + 1] =
        prefix[static_cast<size_t>(i)] + graph.op(i).fwd_flops + 1.0;
  }
  const double total = prefix.back();
  double weight_sum = 0.0;
  for (double w : weights) {
    weight_sum += w;
  }
  std::vector<int> boundaries;  // num_ops of each part
  boundaries.reserve(static_cast<size_t>(parts));
  int prev = 0;
  double cum_weight = 0.0;
  for (int p = 0; p < parts - 1; ++p) {
    cum_weight += weights[static_cast<size_t>(p)];
    const double target = total * cum_weight / weight_sum;
    // First boundary with prefix >= target, leaving room for later parts.
    int b = prev + 1;
    while (b < n - (parts - 1 - p) && prefix[static_cast<size_t>(b)] < target) {
      ++b;
    }
    boundaries.push_back(b - prev);
    prev = b;
  }
  boundaries.push_back(n - prev);
  return boundaries;
}

StatusOr<ParallelConfig> MakeConfigWithSplits(
    const OpGraph& graph, const ClusterSpec& cluster, int num_stages,
    int microbatch_size, const std::vector<double>& op_weights,
    bool skew_devices) {
  if (num_stages < 1 || num_stages > graph.num_ops()) {
    return InvalidArgument("invalid stage count " +
                           std::to_string(num_stages));
  }
  auto devices = SplitDevicesPow2(cluster.num_gpus(), num_stages);
  if (!devices.ok()) {
    return devices.status();
  }
  if (skew_devices && num_stages > 1) {
    // Exp#7 "imbalance-GPU": give the first stage as many devices as
    // possible by sorting descending and the rest ascending.
    std::sort(devices->begin() + 1, devices->end());
  }
  const std::vector<int> op_counts =
      SplitOpsByWeight(graph, num_stages, op_weights);

  ParallelConfig config;
  config.set_microbatch_size(microbatch_size);
  int first_op = 0;
  for (int s = 0; s < num_stages; ++s) {
    StageConfig stage;
    stage.first_op = first_op;
    stage.num_ops = op_counts[static_cast<size_t>(s)];
    stage.num_devices = (*devices)[static_cast<size_t>(s)];
    // Full tensor parallelism (clamped per op) allows the minimum microbatch
    // size; dp absorbs the clamp.
    stage.SetUniformParallelism(graph, stage.num_devices, 1);
    first_op += stage.num_ops;
    config.mutable_stages().push_back(std::move(stage));
  }
  // Raise the microbatch size to the minimum every op's dp accepts.
  int required_mbs = microbatch_size;
  for (const StageConfig& stage : config.stages()) {
    for (const OpParallel& setting : stage.ops) {
      required_mbs = std::max(required_mbs, setting.dp);
    }
  }
  // Round up to a divisor of the batch (dp values are powers of two, and so
  // is required_mbs as a max of powers of two).
  config.set_microbatch_size(required_mbs);
  ACESO_RETURN_IF_ERROR(config.Validate(graph, cluster));
  return config;
}

}  // namespace

StatusOr<ParallelConfig> MakeEvenConfig(const OpGraph& graph,
                                        const ClusterSpec& cluster,
                                        int num_stages, int microbatch_size) {
  const std::vector<double> even(static_cast<size_t>(num_stages), 1.0);
  return MakeConfigWithSplits(graph, cluster, num_stages, microbatch_size,
                              even, /*skew_devices=*/false);
}

StatusOr<ParallelConfig> MakeOpImbalancedConfig(const OpGraph& graph,
                                                const ClusterSpec& cluster,
                                                int num_stages,
                                                int microbatch_size) {
  // Quadratically increasing stage weights: early stages tiny, late huge.
  std::vector<double> weights(static_cast<size_t>(num_stages));
  for (int i = 0; i < num_stages; ++i) {
    weights[static_cast<size_t>(i)] = static_cast<double>((i + 1) * (i + 1));
  }
  return MakeConfigWithSplits(graph, cluster, num_stages, microbatch_size,
                              weights, /*skew_devices=*/false);
}

StatusOr<ParallelConfig> MakeGpuImbalancedConfig(const OpGraph& graph,
                                                 const ClusterSpec& cluster,
                                                 int num_stages,
                                                 int microbatch_size) {
  const std::vector<double> even(static_cast<size_t>(num_stages), 1.0);
  return MakeConfigWithSplits(graph, cluster, num_stages, microbatch_size,
                              even, /*skew_devices=*/true);
}

}  // namespace aceso
