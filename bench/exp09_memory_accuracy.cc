// Exp#9 — memory-consumption prediction accuracy (paper Figure 16).
//
// Compares the performance model's predicted peak per-device memory (worst
// stage) against the caching-allocator simulation's actual peak reserved
// memory for the searched configurations.
//
// Paper claims to reproduce in shape: predictions deliberately overestimate
// (never OOM in practice), with average error around 14% (GPT-3) and 9%
// (Wide-ResNet), largest on 1-GPU settings.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"

namespace aceso {
namespace bench {
namespace {

struct FamilyError {
  double with_single = 0.0;
  double without_single = 0.0;
};

FamilyError RunFamily(const std::string& prefix,
                      const std::vector<double>& sizes, TablePrinter& table) {
  double sum_all = 0.0;
  int count_all = 0;
  double sum_multi = 0.0;
  int count_multi = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    char size_buf[32];
    std::snprintf(size_buf, sizeof(size_buf), "%g", sizes[i]);
    const std::string name = prefix + size_buf + "b";
    const int gpus = models::GpusForSizeIndex(static_cast<int>(i));
    Workload workload(name, gpus);

    SearchOptions options = DefaultSearchOptions();
    const SearchResult search = AcesoSearch(workload.model(), options);
    if (!search.found) {
      continue;
    }
    const PerfResult predicted = workload.model().Evaluate(search.best.config);
    const ExecutionResult actual =
        workload.executor().Execute(search.best.config);
    int64_t actual_peak = 0;
    for (const StageExecution& s : actual.stages) {
      actual_peak = std::max(actual_peak, s.peak_reserved_bytes);
    }
    const int64_t predicted_peak = predicted.MaxMemory();
    const double err = 100.0 *
                       std::abs(static_cast<double>(predicted_peak) -
                                static_cast<double>(actual_peak)) /
                       static_cast<double>(actual_peak);
    sum_all += err;
    ++count_all;
    if (gpus > 1) {
      sum_multi += err;
      ++count_multi;
    }
    table.AddRow({name + " @" + std::to_string(gpus) + "gpu",
                  FormatBytes(predicted_peak), FormatBytes(actual_peak),
                  FormatDouble(err, 2) + "%",
                  predicted_peak >= actual_peak ? "over" : "UNDER"});
  }
  FamilyError out;
  out.with_single = count_all > 0 ? sum_all / count_all : 0.0;
  out.without_single = count_multi > 0 ? sum_multi / count_multi : 0.0;
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace aceso

int main() {
  using namespace aceso;
  using namespace aceso::bench;
  PrintHeader("Exp#9: memory prediction accuracy (Figure 16)",
              "predictions overestimate by design; paper errors 14.26% "
              "(GPT-3) and 9.14% (Wide-ResNet), smaller without 1-GPU cases");

  TablePrinter table({"setting", "predicted", "actual", "error", "direction"});
  const FamilyError gpt = RunFamily("gpt3-", GptSizes(), table);
  const FamilyError wrn = RunFamily("wresnet-", WrnSizes(), table);
  table.Print(std::cout);
  std::printf("\naverage error: GPT-3 %.2f%% (%.2f%% excluding 1-GPU), "
              "Wide-ResNet %.2f%% (%.2f%% excluding 1-GPU)\n",
              gpt.with_single, gpt.without_single, wrn.with_single,
              wrn.without_single);
  return 0;
}
