# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for exp03_scalability_1k.
