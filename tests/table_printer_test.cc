#include "src/common/table_printer.h"

#include <gtest/gtest.h>

namespace aceso {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer_name", "22"});
  const std::string out = table.ToString();
  // Header line and both rows present.
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer_name"), std::string::npos);
  // All lines have the same column start for "value"/"1"/"22".
  const size_t value_col = out.find("value");
  const size_t one_col = out.find("1\n") != std::string::npos
                             ? out.find("1 ")
                             : out.find("1");
  EXPECT_NE(value_col, std::string::npos);
  EXPECT_NE(one_col, std::string::npos);
}

TEST(TablePrinterTest, SeparatorUnderHeader) {
  TablePrinter table({"a"});
  table.AddRow({"b"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("-"), std::string::npos);
}

TEST(TablePrinterTest, EmptyTableStillPrintsHeader) {
  TablePrinter table({"col1", "col2"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("col1"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 0u);
}

TEST(TablePrinterTest, RowCountTracksAdds) {
  TablePrinter table({"a", "b"});
  table.AddRow({"1", "2"});
  table.AddRow({"3", "4"});
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TablePrinterDeathTest, MismatchedRowWidthAborts) {
  TablePrinter table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only_one"}), "row width mismatch");
}

}  // namespace
}  // namespace aceso
