// Exp#3 — scalability to 1K-layer models (paper Figure 9).
//
// Searches DeepNet-style transformers of 16..1000 layers on 8 GPUs with
// Aceso and the Alpa-like solver, reporting search cost and the predicted
// throughput of the found configuration.
//
// Paper claims to reproduce in shape:
//   * Aceso always finishes within its budget and finds a configuration;
//   * Alpa's search cost grows with layer count and compilation fails
//     beyond 64 layers;
//   * where both succeed, Aceso's configuration is at least as fast
//     (paper: 1.2x average speedup).

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"

int main() {
  using namespace aceso;
  using namespace aceso::bench;
  PrintHeader("Exp#3: scalability to 1K layers (Figure 9)",
              "Aceso always finds solutions; Alpa fails compilation past 64 "
              "layers and its cost grows with depth");

  std::vector<int> layer_counts = {16, 32, 64, 128, 256, 512, 1000};
  if (QuickMode()) {
    layer_counts = {16, 64, 256};
  }

  TablePrinter table({"layers", "Aceso search(s)", "Aceso pred iter(s)",
                      "Alpa search(s)", "Alpa pred iter(s)", "Aceso speedup"});
  for (const int layers : layer_counts) {
    Workload workload("deepnet-" + std::to_string(layers), 8);

    SearchOptions options = DefaultSearchOptions();
    options.max_stages = 8;
    const SearchResult aceso = AcesoSearch(workload.model(), options);

    std::string alpa_cost = "FAILED";
    std::string alpa_iter = "x";
    std::string speedup = "n/a";
    const auto alpa = AlpaLikeSearch(workload.model());
    if (alpa.ok() && alpa->found) {
      alpa_cost = FormatDouble(alpa->TotalSearchSeconds(), 1);
      alpa_iter = FormatDouble(alpa->best.perf.iteration_time, 2);
      if (aceso.found) {
        speedup = FormatDouble(alpa->best.perf.iteration_time /
                                   aceso.best.perf.iteration_time,
                               2) +
                  "x";
      }
    }
    table.AddRow({std::to_string(layers),
                  FormatDouble(aceso.search_seconds, 1),
                  aceso.found ? FormatDouble(aceso.best.perf.iteration_time, 2)
                              : std::string("x"),
                  alpa_cost, alpa_iter, speedup});
  }
  table.Print(std::cout);
  return 0;
}
