#include "src/baselines/alpa_like.h"

#include <algorithm>
#include <array>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/stopwatch.h"

namespace aceso {
namespace {

// A model's "layer count" for grouping purposes: one fc2 per transformer
// layer, one residual-add per ResNet block.
int EstimateLayerCount(const OpGraph& graph) {
  int fc2 = 0;
  int residual = 0;
  for (const Operator& op : graph.ops()) {
    if (op.kind == OpKind::kMlpFc2) {
      ++fc2;
    } else if (op.kind == OpKind::kResidualAdd) {
      ++residual;
    }
  }
  return std::max({fc2, residual, 1});
}

// FLOP-balanced contiguous grouping of ops into l groups; returns group end
// indices (exclusive), size l.
std::vector<int> GroupOps(const OpGraph& graph, int l) {
  const int n = graph.num_ops();
  l = std::min(l, n);
  std::vector<double> prefix(static_cast<size_t>(n) + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    prefix[static_cast<size_t>(i) + 1] =
        prefix[static_cast<size_t>(i)] + graph.op(i).fwd_flops + 1.0;
  }
  std::vector<int> ends;
  ends.reserve(static_cast<size_t>(l));
  int prev = 0;
  for (int g = 0; g < l; ++g) {
    const double target = prefix.back() * (g + 1) / l;
    int e = prev + 1;
    while (e < n - (l - 1 - g) && prefix[static_cast<size_t>(e)] < target) {
      ++e;
    }
    ends.push_back(e);
    prev = e;
  }
  ends.back() = n;
  return ends;
}

// Per-(group, mesh, tp) cost metrics, additive over groups.
struct GroupMetric {
  double time = 0.0;       // per-microbatch fwd+bwd incl tp comm (+rc)
  double comm = 0.0;       // tp communication only (the ILP's cost)
  double dp_sync = 0.0;    // per-iteration gradient sync
  int64_t act = 0;         // stored activation per microbatch per device
  int64_t params = 0;      // parameter bytes per device
  bool valid = false;
};

GroupMetric ComputeGroupMetric(const PerformanceModel& model, int op_begin,
                               int op_end, int mesh, int tp, int mbs,
                               bool recompute) {
  GroupMetric metric;
  const int dp = mesh / tp;
  if (dp < 1 || mbs % dp != 0) {
    return metric;
  }
  const OpGraph& graph = model.graph();
  const ClusterSpec& cluster = model.cluster();
  const int local_batch = mbs / dp;
  const bool tp_crosses = tp > cluster.gpus_per_node;
  const bool dp_crosses = mesh > cluster.gpus_per_node;
  const CommDomain tp_domain{tp, tp_crosses};
  const CommDomain dp_domain{dp, dp_crosses};

  for (int i = op_begin; i < op_end; ++i) {
    const Operator& op = graph.op(i);
    const int eff_tp = ClampOpTp(op, tp);
    const OpMeasurement m = model.db().OpTime(
        op, graph.precision(), EffectiveShards(op, eff_tp), local_batch);
    metric.time += m.fwd_seconds + m.bwd_seconds;
    if (recompute) {
      metric.time += m.fwd_seconds;
    }
    const bool sharded =
        op.tp_class == TpClass::kPartitioned && eff_tp > 1;
    if (sharded) {
      const TpDim dim = op.default_tp_dim == TpDim::kNone ? TpDim::kColumn
                                                          : op.default_tp_dim;
      const int64_t bytes =
          (dim == TpDim::kColumn ? op.in_bytes : op.out_bytes) *
          static_cast<int64_t>(local_batch);
      const double t = model.db().CollectiveTime(CollectiveKind::kAllReduce,
                                                 bytes, tp_domain);
      metric.time += t;
      metric.comm += t;
    }
    const int64_t op_params = sharded ? op.param_bytes / eff_tp : op.param_bytes;
    metric.params += op_params;
    if (dp > 1 && op_params > 0) {
      const double t = model.db().CollectiveTime(CollectiveKind::kAllReduce,
                                                 op_params, dp_domain);
      metric.dp_sync += t;
      metric.comm += t;
    }
    if (!recompute) {
      const int store_shards =
          sharded && op.default_tp_dim == TpDim::kColumn
              ? eff_tp
              : (op.tp_class == TpClass::kShardFollower
                     ? EffectiveShards(op, eff_tp)
                     : 1);
      metric.act +=
          op.out_bytes * static_cast<int64_t>(local_batch) / store_shards;
    }
  }
  if (recompute) {
    // Only the group's input boundary is stored.
    metric.act = graph.op(op_begin).in_bytes *
                 static_cast<int64_t>(local_batch);
  }
  metric.valid = true;
  return metric;
}

}  // namespace

StatusOr<BaselineResult> AlpaLikeSearch(const PerformanceModel& model,
                                        const AlpaOptions& options) {
  const OpGraph& graph = model.graph();
  const ClusterSpec& cluster = model.cluster();
  const int layers = EstimateLayerCount(graph);
  if (layers > options.max_layers_before_failure) {
    return ResourceExhausted(
        "Alpa compilation failed: " + std::to_string(layers) +
        " layers exceed the XLA compilation limit (" +
        std::to_string(options.max_layers_before_failure) + ")");
  }

  Stopwatch watch;
  BaselineResult result;
  int64_t kernels_profiled = 0;

  std::vector<int> l_grid = options.layer_group_counts;
  if (l_grid.empty()) {
    for (int l : {8, 16, layers}) {
      l = std::min({l, layers, graph.num_ops()});
      if (std::find(l_grid.begin(), l_grid.end(), l) == l_grid.end()) {
        l_grid.push_back(l);
      }
    }
  }

  const int gpus = cluster.num_gpus();
  std::vector<int> meshes;
  for (int m = 1; m <= gpus; m *= 2) {
    meshes.push_back(m);
  }
  const double opt_mult = OptimizerMultiplier(graph.precision());
  const int64_t mem_cap = cluster.gpu.memory_bytes;
  const int64_t batch = graph.global_batch_size();

  for (const int l : l_grid) {
    const std::vector<int> group_ends = GroupOps(graph, l);
    const int num_groups = static_cast<int>(group_ends.size());

    for (int mbs = 1; mbs <= options.max_microbatch; mbs *= 2) {
      if (batch % mbs != 0) {
        continue;
      }
      for (const bool recompute : {false, true}) {
        // --- per-group kernel "compilation + profiling" ---
        // metric[g][mesh index][log2 tp]
        std::vector<std::vector<std::vector<GroupMetric>>> metric(
            static_cast<size_t>(num_groups));
        for (int g = 0; g < num_groups; ++g) {
          const int begin = g == 0 ? 0 : group_ends[static_cast<size_t>(g) - 1];
          const int end = group_ends[static_cast<size_t>(g)];
          metric[static_cast<size_t>(g)].resize(meshes.size());
          for (size_t mi = 0; mi < meshes.size(); ++mi) {
            for (int tp = 1; tp <= meshes[mi]; tp *= 2) {
              metric[static_cast<size_t>(g)][mi].push_back(ComputeGroupMetric(
                  model, begin, end, meshes[mi], tp, mbs, recompute));
              ++kernels_profiled;
            }
          }
        }

        // Prefix sums over groups per (mesh, tp) for O(1) range costs.
        // prefix[mi][ti][g] accumulates groups [0, g); `invalid` counts
        // invalid groups so any range's validity is a subtraction too.
        struct PrefixEntry {
          GroupMetric sum;
          int invalid = 0;
        };
        std::vector<std::vector<std::vector<PrefixEntry>>> prefix(
            meshes.size());
        for (size_t mi = 0; mi < meshes.size(); ++mi) {
          size_t num_tp = 0;
          for (int tp = 1; tp <= meshes[mi]; tp *= 2) {
            ++num_tp;
          }
          prefix[mi].resize(num_tp);
          for (size_t ti = 0; ti < num_tp; ++ti) {
            auto& row = prefix[mi][ti];
            row.resize(static_cast<size_t>(num_groups) + 1);
            for (int g = 0; g < num_groups; ++g) {
              const GroupMetric& gm = metric[static_cast<size_t>(g)][mi][ti];
              PrefixEntry& acc = row[static_cast<size_t>(g) + 1];
              const PrefixEntry& prev = row[static_cast<size_t>(g)];
              acc.invalid = prev.invalid + (gm.valid ? 0 : 1);
              acc.sum.time = prev.sum.time + gm.time;
              acc.sum.comm = prev.sum.comm + gm.comm;
              acc.sum.dp_sync = prev.sum.dp_sync + gm.dp_sync;
              acc.sum.act = prev.sum.act + gm.act;
              acc.sum.params = prev.sum.params + gm.params;
            }
          }
        }
        auto range_metric = [&](int ga, int gb, size_t mi,
                                size_t ti) -> GroupMetric {
          const auto& row = prefix[mi][ti];
          const PrefixEntry& hi = row[static_cast<size_t>(gb)];
          const PrefixEntry& lo = row[static_cast<size_t>(ga)];
          GroupMetric out;
          out.valid = hi.invalid == lo.invalid;
          if (!out.valid) {
            return out;
          }
          out.time = hi.sum.time - lo.sum.time;
          out.comm = hi.sum.comm - lo.sum.comm;
          out.dp_sync = hi.sum.dp_sync - lo.sum.dp_sync;
          out.act = hi.sum.act - lo.sum.act;
          out.params = hi.sum.params - lo.sum.params;
          return out;
        };

        // --- inter-op DP for each stage count ---
        const int max_stages = std::min({options.max_stages, num_groups, gpus});
        for (int S = 1; S <= max_stages; ++S) {
          // f[g][d] at stage layer s: min bottleneck time covering the first
          // g groups with d devices used.
          constexpr double kInf = 1e300;
          struct Cell {
            double value = 1e300;
            int prev_g = -1;
            int mesh = 0;
            int tp = 1;
          };
          std::vector<std::vector<std::vector<Cell>>> f(
              static_cast<size_t>(S) + 1,
              std::vector<std::vector<Cell>>(
                  static_cast<size_t>(num_groups) + 1,
                  std::vector<Cell>(static_cast<size_t>(gpus) + 1)));
          f[0][0][0].value = 0.0;

          for (int s = 1; s <= S; ++s) {
            const int in_flight = S - s + 1;
            for (int g = 1; g <= num_groups; ++g) {
              for (int d = 1; d <= gpus; ++d) {
                Cell& cell = f[static_cast<size_t>(s)][static_cast<size_t>(g)]
                              [static_cast<size_t>(d)];
                for (int g0 = s - 1; g0 < g; ++g0) {
                  for (size_t mi = 0; mi < meshes.size(); ++mi) {
                    const int m = meshes[mi];
                    if (m > d) {
                      break;
                    }
                    const Cell& prev =
                        f[static_cast<size_t>(s) - 1]
                         [static_cast<size_t>(g0)][static_cast<size_t>(d - m)];
                    if (prev.value >= kInf) {
                      continue;
                    }
                    // Intra-op pass: communication-only partition choice.
                    size_t best_ti = 0;
                    double best_comm = kInf;
                    for (size_t ti = 0; (1 << ti) <= m; ++ti) {
                      const GroupMetric rm = range_metric(g0, g, mi, ti);
                      if (rm.valid && rm.comm < best_comm) {
                        best_comm = rm.comm;
                        best_ti = ti;
                      }
                    }
                    if (best_comm >= kInf) {
                      continue;
                    }
                    const GroupMetric rm = range_metric(g0, g, mi, best_ti);
                    // Conservative memory check.
                    const int64_t mem =
                        rm.params +
                        static_cast<int64_t>(static_cast<double>(rm.params) *
                                             opt_mult) +
                        rm.act * in_flight;
                    if (mem > mem_cap) {
                      continue;
                    }
                    const double stage_time = rm.time;
                    const double value = std::max(prev.value, stage_time);
                    if (value < cell.value) {
                      cell.value = value;
                      cell.prev_g = g0;
                      cell.mesh = m;
                      cell.tp = 1 << best_ti;
                    }
                  }
                }
              }
            }
          }

          const Cell& final_cell =
              f[static_cast<size_t>(S)][static_cast<size_t>(num_groups)]
               [static_cast<size_t>(gpus)];
          if (final_cell.value >= kInf) {
            continue;
          }

          // Reconstruct the stage plan.
          struct StagePlan {
            int group_begin;
            int group_end;
            int mesh;
            int tp;
          };
          std::vector<StagePlan> plan;
          int g = num_groups;
          int d = gpus;
          for (int s = S; s >= 1; --s) {
            const Cell& cell = f[static_cast<size_t>(s)]
                                [static_cast<size_t>(g)]
                                [static_cast<size_t>(d)];
            plan.push_back({cell.prev_g, g, cell.mesh, cell.tp});
            d -= cell.mesh;
            g = cell.prev_g;
          }
          std::reverse(plan.begin(), plan.end());

          ParallelConfig config;
          config.set_microbatch_size(mbs);
          for (const StagePlan& sp : plan) {
            StageConfig stage;
            stage.first_op =
                sp.group_begin == 0
                    ? 0
                    : group_ends[static_cast<size_t>(sp.group_begin) - 1];
            const int end_op = group_ends[static_cast<size_t>(sp.group_end) - 1];
            stage.num_ops = end_op - stage.first_op;
            stage.num_devices = sp.mesh;
            stage.SetUniformParallelism(graph, std::min(sp.tp, sp.mesh),
                                        sp.mesh / std::min(sp.tp, sp.mesh));
            if (recompute) {
              for (OpParallel& setting : stage.ops) {
                setting.recompute = true;
              }
            }
            config.AddStage(std::move(stage));
          }
          if (!config.Validate(graph, cluster).ok()) {
            continue;
          }
          const PerfResult perf = model.Evaluate(config);
          ++result.configs_explored;
          if (perf.oom) {
            continue;
          }
          if (!result.found || perf.BetterThan(result.best.perf)) {
            result.found = true;
            result.best.config = std::move(config);
            result.best.perf = perf;
          }
        }
      }
    }
  }

  result.search_seconds = watch.ElapsedSeconds();
  result.simulated_profile_seconds =
      static_cast<double>(kernels_profiled) * options.compile_seconds_per_kernel;
  if (!result.found) {
    return NotFound("Alpa-like search found no feasible configuration");
  }
  return result;
}

}  // namespace aceso
