#include "src/plan/schedule.h"

#include <gtest/gtest.h>

#include "src/ir/models/model_zoo.h"
#include "src/runtime/pipeline_executor.h"

namespace aceso {
namespace {

// Sanity of one order: every microbatch forwarded and backwarded exactly
// once, forward always before backward.
void CheckOrder(const std::vector<std::pair<bool, int>>& order, int n_mb) {
  std::vector<int> fwd(static_cast<size_t>(n_mb), 0);
  std::vector<int> bwd(static_cast<size_t>(n_mb), 0);
  for (const auto& [is_fwd, m] : order) {
    ASSERT_GE(m, 0);
    ASSERT_LT(m, n_mb);
    if (is_fwd) {
      ++fwd[static_cast<size_t>(m)];
      EXPECT_EQ(bwd[static_cast<size_t>(m)], 0);
    } else {
      ++bwd[static_cast<size_t>(m)];
      EXPECT_EQ(fwd[static_cast<size_t>(m)], 1);
    }
  }
  for (int m = 0; m < n_mb; ++m) {
    EXPECT_EQ(fwd[static_cast<size_t>(m)], 1);
    EXPECT_EQ(bwd[static_cast<size_t>(m)], 1);
  }
}

class ScheduleSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(ScheduleSweep, OrdersAreComplete) {
  const auto [schedule_int, stages, n_mb] = GetParam();
  const auto schedule = static_cast<PipelineSchedule>(schedule_int);
  for (int s = 0; s < stages; ++s) {
    CheckOrder(LocalScheduleOrder(schedule, s, stages, n_mb), n_mb);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ScheduleSweep,
    ::testing::Combine(::testing::Values(0, 1),       // 1F1B, GPipe
                       ::testing::Values(1, 2, 4, 7), // stage counts
                       ::testing::Values(1, 3, 8, 32)));

TEST(ScheduleTest, OneFOneBWarmupDepth) {
  const auto order = LocalScheduleOrder(PipelineSchedule::k1F1B, 1, 4, 8);
  int warmup = 0;
  for (const auto& [is_fwd, m] : order) {
    if (!is_fwd) {
      break;
    }
    ++warmup;
  }
  EXPECT_EQ(warmup, 3);  // stages - stage
}

TEST(ScheduleTest, GpipeRunsAllForwardsFirst) {
  const auto order = LocalScheduleOrder(PipelineSchedule::kGpipe, 0, 4, 8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(order[static_cast<size_t>(i)].first);
  }
  for (int i = 8; i < 16; ++i) {
    EXPECT_FALSE(order[static_cast<size_t>(i)].first);
  }
}

TEST(ScheduleTest, PeakInFlight) {
  EXPECT_EQ(PeakInFlightMicrobatches(PipelineSchedule::k1F1B, 0, 4, 32), 4);
  EXPECT_EQ(PeakInFlightMicrobatches(PipelineSchedule::k1F1B, 3, 4, 32), 1);
  EXPECT_EQ(PeakInFlightMicrobatches(PipelineSchedule::kGpipe, 0, 4, 32), 32);
  // Fewer microbatches than stages clamps 1F1B's warmup.
  EXPECT_EQ(PeakInFlightMicrobatches(PipelineSchedule::k1F1B, 0, 8, 2), 2);
}

TEST(ScheduleTest, Names) {
  EXPECT_STREQ(PipelineScheduleName(PipelineSchedule::k1F1B), "1F1B");
  EXPECT_STREQ(PipelineScheduleName(PipelineSchedule::kGpipe), "GPipe");
}

TEST(ScheduleTest, GpipeUsesFarMoreMemoryInRuntime) {
  // The reason 1F1B exists: GPipe holds all microbatches' activations.
  const OpGraph graph = models::Gpt3(0.35);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);
  PipelineExecutor executor(&model);
  auto config = MakeEvenConfig(graph, cluster, 4, 1);
  ASSERT_TRUE(config.ok());

  ExecutionOptions fifo;
  const ExecutionResult one_f_one_b = executor.Execute(*config, fifo);
  ExecutionOptions gpipe;
  gpipe.schedule = PipelineSchedule::kGpipe;
  const ExecutionResult all_fwd = executor.Execute(*config, gpipe);
  // GPipe either OOMs outright or reserves much more memory.
  if (!all_fwd.oom) {
    EXPECT_GT(all_fwd.stages[0].peak_reserved_bytes,
              2 * one_f_one_b.stages[0].peak_reserved_bytes);
  } else {
    EXPECT_FALSE(one_f_one_b.oom);
  }
}

}  // namespace
}  // namespace aceso
