// Exp#2 — configuration search cost (paper Figure 8).
//
// Compares Aceso's search cost against the Alpa-like solver across the
// GPT-3 and Wide-ResNet ladders. Aceso's cost is its (budgeted) anytime
// search; Alpa's is solver wall-clock plus the on-demand XLA
// compile-and-profile time its search design requires per experiment.
// Megatron-LM is omitted, as in the paper: it has no automated search.
//
// Paper claim to reproduce in shape: "Among all the cases, Aceso uses less
// than 5% of the time used by Alpa."

#include <cstdio>
#include <iostream>
#include <string>

#include "bench/bench_util.h"

namespace aceso {
namespace bench {
namespace {

void RunFamily(const std::string& prefix, const std::vector<double>& sizes,
               TablePrinter& table) {
  for (size_t i = 0; i < sizes.size(); ++i) {
    char size_buf[32];
    std::snprintf(size_buf, sizeof(size_buf), "%g", sizes[i]);
    const std::string model_name = prefix + size_buf + "b";
    const int gpus = models::GpusForSizeIndex(static_cast<int>(i));
    Workload workload(model_name, gpus);

    SearchOptions options = DefaultSearchOptions();
    const SearchResult aceso = AcesoSearch(workload.model(), options);
    const auto alpa = AlpaLikeSearch(workload.model());

    std::string alpa_cell = "failed";
    std::string ratio_cell = "n/a";
    if (alpa.ok() && alpa->found) {
      alpa_cell = FormatDouble(alpa->TotalSearchSeconds(), 1);
      ratio_cell = FormatDouble(
          100.0 * aceso.search_seconds / alpa->TotalSearchSeconds(), 2);
      ratio_cell += "%";
    }
    table.AddRow({model_name + " @" + std::to_string(gpus) + "gpu",
                  FormatDouble(aceso.search_seconds, 1), alpa_cell,
                  ratio_cell});
  }
}

}  // namespace
}  // namespace bench
}  // namespace aceso

int main() {
  using namespace aceso;
  using namespace aceso::bench;
  PrintHeader("Exp#2: search cost (Figure 8)",
              "Aceso uses less than 5% of Alpa's search time in every case");
  TablePrinter table(
      {"setting", "Aceso search(s)", "Alpa search(s)", "Aceso/Alpa"});
  RunFamily("gpt3-", GptSizes(), table);
  RunFamily("wresnet-", WrnSizes(), table);
  table.Print(std::cout);
  std::printf(
      "\nNote: Alpa's cost includes its per-experiment on-demand XLA kernel\n"
      "compilation+profiling (simulated; see DESIGN.md); Aceso's shared\n"
      "profiled database is built once per model family and excluded, as in\n"
      "the paper.\n");
  return 0;
}
