#include "src/hw/gpu_spec.h"

#include <gtest/gtest.h>

namespace aceso {
namespace {

TEST(PrecisionTest, BytesPerElement) {
  EXPECT_EQ(BytesPerElement(Precision::kFp16), 2);
  EXPECT_EQ(BytesPerElement(Precision::kFp32), 4);
}

TEST(PrecisionTest, Names) {
  EXPECT_STREQ(PrecisionName(Precision::kFp16), "fp16");
  EXPECT_STREQ(PrecisionName(Precision::kFp32), "fp32");
}

TEST(GpuSpecTest, PeakFlopsByPrecision) {
  GpuSpec gpu;
  EXPECT_GT(gpu.PeakFlops(Precision::kFp16), gpu.PeakFlops(Precision::kFp32));
}

TEST(GpuSpecTest, EfficiencySaturatesWithWork) {
  GpuSpec gpu;
  const double small = gpu.Efficiency(1e6);
  const double medium = gpu.Efficiency(1e9);
  const double large = gpu.Efficiency(1e12);
  EXPECT_LT(small, medium);
  EXPECT_LT(medium, large);
  EXPECT_LE(large, gpu.max_efficiency);
  EXPECT_NEAR(large, gpu.max_efficiency, 0.01);
}

TEST(GpuSpecTest, ComputeTimeIncludesLaunchOverhead) {
  GpuSpec gpu;
  EXPECT_GE(gpu.ComputeTime(0.0, 0, Precision::kFp16),
            gpu.kernel_launch_seconds);
}

TEST(GpuSpecTest, ComputeTimeMonotoneInWork) {
  GpuSpec gpu;
  double prev = 0.0;
  for (double flops = 1e6; flops <= 1e13; flops *= 10) {
    const double t = gpu.ComputeTime(flops, 0, Precision::kFp16);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(GpuSpecTest, MemoryBoundOpsLimitedByBandwidth) {
  GpuSpec gpu;
  // An op with almost no FLOPs but huge traffic is bandwidth-bound.
  const int64_t bytes = int64_t{8} * 1024 * 1024 * 1024;
  const double t = gpu.ComputeTime(1e3, bytes, Precision::kFp32);
  const double expected = static_cast<double>(bytes) / gpu.hbm_bandwidth;
  EXPECT_NEAR(t, expected + gpu.kernel_launch_seconds, expected * 0.01);
}

TEST(GpuSpecTest, SplittingWorkIsSublinearSpeedup) {
  // The efficiency curve makes an 8-way split slower than 1/8 the time —
  // the core tensor-parallelism trade-off of the paper.
  GpuSpec gpu;
  const double whole = gpu.ComputeTime(8e9, 0, Precision::kFp16);
  const double eighth = gpu.ComputeTime(1e9, 0, Precision::kFp16);
  EXPECT_GT(eighth, whole / 8.0);
}

TEST(GpuSpecTest, FasterAtFp16) {
  GpuSpec gpu;
  EXPECT_LT(gpu.ComputeTime(1e12, 0, Precision::kFp16),
            gpu.ComputeTime(1e12, 0, Precision::kFp32));
}

}  // namespace
}  // namespace aceso
