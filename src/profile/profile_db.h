// The profiled performance database (§3.3).
//
// Aceso's performance model is profiling-based: the times of each operator
// under each partition degree and the collective-communication times under
// each group size are measured once and reused across searches. This module
// provides that database.
//
// Because no GPUs exist in this environment, measurements come from a
// *simulated profiler* (see SimulatedProfiler below): it evaluates the
// analytical hardware model (src/hw) and overlays deterministic measurement
// jitter, then averages `runs_per_measurement` simulated runs exactly like
// the paper's methodology (50 runs per op). Entries are memoized on first
// use, and the database can be saved to / loaded from disk so later searches
// skip "profiling" entirely — mirroring the paper's reusable database.

#ifndef SRC_PROFILE_PROFILE_DB_H_
#define SRC_PROFILE_PROFILE_DB_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/common/status.h"
#include "src/hw/cluster.h"
#include "src/hw/gpu_spec.h"
#include "src/hw/interconnect.h"
#include "src/ir/operator.h"

namespace aceso {

// Measured execution time of one operator shard.
struct OpMeasurement {
  double fwd_seconds = 0.0;
  double bwd_seconds = 0.0;
};

// Identifies one op-time entry: operator identity, compute-shard degree,
// per-replica microbatch, precision.
struct OpProfileKey {
  uint64_t op_signature = 0;
  int shard_degree = 1;   // how many ways the op's compute is divided
  int local_batch = 1;    // microbatch size seen by one replica
  int precision = 0;      // Precision enum value

  bool operator==(const OpProfileKey& other) const {
    return op_signature == other.op_signature &&
           shard_degree == other.shard_degree &&
           local_batch == other.local_batch && precision == other.precision;
  }
  uint64_t Hash() const;
};

// Identifies one collective-time entry. Byte sizes are bucketed at powers of
// two and interpolated, keeping the database small.
struct CommProfileKey {
  int kind = 0;            // CollectiveKind enum value
  int group_size = 1;
  bool crosses_nodes = false;
  int log2_bytes = 0;      // bucket

  bool operator==(const CommProfileKey& other) const {
    return kind == other.kind && group_size == other.group_size &&
           crosses_nodes == other.crosses_nodes &&
           log2_bytes == other.log2_bytes;
  }
  uint64_t Hash() const;
};

// Produces "measurements" by evaluating the hardware model with
// deterministic per-key jitter. Stateless and thread-safe.
class SimulatedProfiler {
 public:
  SimulatedProfiler(const ClusterSpec& cluster, uint64_t seed,
                    int runs_per_measurement = 50);

  // Simulates `runs_per_measurement` timed runs of one op shard and returns
  // the averaged measurement.
  OpMeasurement MeasureOp(const Operator& op, const OpProfileKey& key) const;

  // Simulated time of one bucketed collective.
  double MeasureCollective(const CommProfileKey& key) const;

  // The wall-clock the paper would have spent obtaining this measurement
  // (runs x simulated op time); lets benches report profiling overhead.
  double SimulatedMeasurementCost(const OpMeasurement& m) const;

 private:
  ClusterSpec cluster_;
  InterconnectModel interconnect_;
  uint64_t seed_;
  int runs_;
};

// Thread-safe memoizing database of op and collective measurements.
class ProfileDatabase {
 public:
  ProfileDatabase(const ClusterSpec& cluster, uint64_t seed = 20240422);

  // Time of `op` with its compute divided `shard_degree` ways processing a
  // `local_batch`-sample microbatch. Memoized.
  OpMeasurement OpTime(const Operator& op, Precision precision,
                       int shard_degree, int local_batch);

  // Time of a collective over `bytes` with power-of-two bucketing and linear
  // interpolation between buckets. Memoized per bucket.
  double CollectiveTime(CollectiveKind kind, int64_t bytes,
                        const CommDomain& domain);

  // Number of distinct measured entries (ops + collectives).
  size_t NumEntries() const;

  // Total simulated wall-clock of all measurements performed so far (the
  // paper's "profiling overhead").
  double SimulatedProfilingSeconds() const;

  // Persistence: the on-disk database can be reloaded so future searches
  // reuse measurements (the paper profiles each model family once).
  Status Save(const std::string& path) const;
  Status Load(const std::string& path);

  const ClusterSpec& cluster() const { return cluster_; }

 private:
  double CollectiveBucketTime(const CommProfileKey& key);

  ClusterSpec cluster_;
  SimulatedProfiler profiler_;

  mutable std::mutex mu_;
  std::unordered_map<uint64_t, OpMeasurement> op_entries_;
  std::unordered_map<uint64_t, double> comm_entries_;
  double simulated_profiling_seconds_ = 0.0;
};

}  // namespace aceso

#endif  // SRC_PROFILE_PROFILE_DB_H_
