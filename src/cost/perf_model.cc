#include "src/cost/perf_model.h"

#include <algorithm>

#include "src/common/logging.h"

namespace aceso {
namespace {

int FloorPow2(int n) {
  int p = 1;
  while (p * 2 <= n) {
    p *= 2;
  }
  return p;
}

// The activation layout flowing between consecutive ops of a stage.
struct Layout {
  bool sharded = false;
  int tp = 1;  // shard degree when sharded
};

}  // namespace

int EffectiveShards(const Operator& op, int tp) {
  switch (op.tp_class) {
    case TpClass::kPartitioned:
      return tp;
    case TpClass::kShardFollower:
      return std::min(tp, FloorPow2(std::max(op.max_tp, 1)));
    case TpClass::kReplicated:
      return 1;
  }
  return 1;
}

double OptimizerMultiplier(Precision precision) {
  switch (precision) {
    case Precision::kFp16:
      return 7.0;
    case Precision::kFp32:
      return 3.0;
  }
  return 3.0;
}

PerformanceModel::PerformanceModel(const OpGraph* graph,
                                   const ClusterSpec& cluster,
                                   ProfileDatabase* db,
                                   StageCacheOptions cache_options)
    : graph_(graph),
      cluster_(cluster),
      interconnect_(cluster),
      db_(db),
      stage_cache_(cache_options) {
  ACESO_CHECK(graph != nullptr);
  ACESO_CHECK(db != nullptr);
}

StageWalk PerformanceModel::WalkStage(const ParallelConfig& config,
                                      int stage_index) const {
  const StageConfig& stage = config.stage(stage_index);
  const int first_device = config.StageFirstDevice(stage_index);
  const int mbs = config.microbatch_size();
  const Precision precision = graph_->precision();

  StageWalk walk;
  walk.ops.resize(static_cast<size_t>(stage.num_ops));

  const CommDomain stage_domain{
      stage.num_devices,
      cluster_.GroupCrossesNodes(first_device, stage.num_devices, 1)};

  Layout layout;    // activations enter a stage replicated
  int prev_dp = 0;  // 0 = no previous op

  for (int i = 0; i < stage.num_ops; ++i) {
    const Operator& op = graph_->op(stage.first_op + i);
    const OpParallel& setting = stage.ops[static_cast<size_t>(i)];
    OpBreakdown& out = walk.ops[static_cast<size_t>(i)];
    const int local_batch = mbs / setting.dp;
    const int shards = EffectiveShards(op, setting.tp);

    // --- kernel time ---
    const OpMeasurement meas = db_->OpTime(op, precision, shards, local_batch);
    out.fwd_kernel = meas.fwd_seconds;
    out.bwd_kernel = meas.bwd_seconds;
    out.recompute = setting.recompute;

    // --- tensor-parallel collectives (Megatron f/g operators) ---
    const bool sharded_weights =
        op.tp_class == TpClass::kPartitioned && setting.tp > 1;
    if (sharded_weights) {
      const CommDomain tp_domain{
          setting.tp, cluster_.GroupCrossesNodes(first_device, setting.tp, 1)};
      if (setting.tp_dim == TpDim::kColumn) {
        // g^T: all-reduce the input gradient in backward.
        out.bwd_comm += db_->CollectiveTime(
            CollectiveKind::kAllReduce,
            op.in_bytes * static_cast<int64_t>(local_batch), tp_domain);
      } else {
        // g: all-reduce the partial-sum output in forward.
        out.fwd_comm += db_->CollectiveTime(
            CollectiveKind::kAllReduce,
            op.out_bytes * static_cast<int64_t>(local_batch), tp_domain);
      }
    }

    // --- resharding at op boundaries (§4.2) ---
    double reshard = 0.0;
    const int64_t boundary_bytes =
        op.in_bytes * static_cast<int64_t>(local_batch);
    if (prev_dp != 0 && prev_dp != setting.dp) {
      // Batch-dimension redistribution across the stage's devices.
      reshard += db_->CollectiveTime(CollectiveKind::kAllGather,
                                     boundary_bytes, stage_domain);
    }
    const bool needs_replicated_input =
        (op.tp_class == TpClass::kPartitioned &&
         setting.tp_dim == TpDim::kColumn) ||
        op.tp_class == TpClass::kReplicated;
    if (layout.sharded) {
      const CommDomain shard_domain{
          layout.tp, cluster_.GroupCrossesNodes(first_device, layout.tp, 1)};
      if (needs_replicated_input) {
        reshard += db_->CollectiveTime(CollectiveKind::kAllGather,
                                       boundary_bytes, shard_domain);
      } else if (op.tp_class == TpClass::kPartitioned &&
                 setting.tp_dim == TpDim::kRow && layout.tp != setting.tp) {
        // Row op expects its own sharding; re-gather then slice.
        reshard += db_->CollectiveTime(CollectiveKind::kAllGather,
                                       boundary_bytes, shard_domain);
      }
    }
    // Backward mirrors forward resharding (reduce-scatter of gradients).
    out.fwd_comm += reshard;
    out.bwd_comm += reshard;

    // --- layout after this op ---
    if (op.tp_class == TpClass::kPartitioned) {
      if (setting.tp > 1 && setting.tp_dim == TpDim::kColumn) {
        layout = Layout{true, setting.tp};
      } else {
        layout = Layout{false, 1};  // row output replicated post all-reduce
      }
    } else if (op.tp_class == TpClass::kReplicated) {
      layout = Layout{false, 1};
    }
    // Shard followers preserve the incoming layout.

    // --- memory ---
    const int store_shards = layout.sharded ? layout.tp : 1;
    out.stored_bytes =
        setting.recompute
            ? 0
            : op.out_bytes * static_cast<int64_t>(local_batch) / store_shards;
    out.param_bytes = op.tp_class == TpClass::kPartitioned && setting.tp > 1
                          ? op.param_bytes / setting.tp
                          : op.param_bytes;
    out.transient_bytes =
        op.work_bytes * static_cast<int64_t>(local_batch) / shards;
    out.workspace_bytes =
        out.transient_bytes +
        op.out_bytes * static_cast<int64_t>(local_batch) / store_shards;

    // --- optimizer state (grads + Adam moments + master weights) ---
    const double opt_mult = OptimizerMultiplier(precision);
    out.optimizer_bytes = static_cast<int64_t>(
        static_cast<double>(out.param_bytes) * opt_mult);
    const bool zero = setting.zero_opt && setting.dp > 1;
    if (zero) {
      // ZeRO-style sharding: gradients stay full (they feed the all-reduce)
      // but optimizer state divides across the dp group.
      const int64_t grads = out.param_bytes;
      out.optimizer_bytes = grads + (out.optimizer_bytes - grads) / setting.dp;
    }

    // --- data-parallel gradient synchronization (per iteration) ---
    if (setting.dp > 1 && out.param_bytes > 0) {
      const CommDomain dp_domain{
          setting.dp,
          cluster_.GroupCrossesNodes(first_device, setting.dp, setting.tp)};
      out.dp_sync = db_->CollectiveTime(CollectiveKind::kAllReduce,
                                        out.param_bytes, dp_domain);
      if (zero) {
        // Each rank updates its optimizer shard, then all-gathers the
        // refreshed parameters.
        out.dp_sync += db_->CollectiveTime(CollectiveKind::kAllGather,
                                           out.param_bytes, dp_domain);
      }
    }

    prev_dp = setting.dp;
  }

  // Stage input boundary activation is always stored (it feeds either the
  // first op's backward or the recompute replay).
  {
    const Operator& first_op = graph_->op(stage.first_op);
    const OpParallel& first_setting = stage.ops[0];
    walk.boundary_bytes =
        first_op.in_bytes * static_cast<int64_t>(mbs / first_setting.dp);
  }

  // --- inter-stage p2p (charged to the receiving stage) ---
  if (stage_index > 0) {
    const Operator& first_op = graph_->op(stage.first_op);
    const bool cross =
        cluster_.NodeOf(first_device - 1) != cluster_.NodeOf(first_device);
    const double t = interconnect_.P2PTime(
        first_op.in_bytes * static_cast<int64_t>(mbs), cross);
    walk.p2p_fwd = t;
    walk.p2p_bwd = t;  // gradient flows back over the same boundary
  }
  return walk;
}

StageCost AggregateStageCost(const StageWalk& walk) {
  StageCost cost;
  // Activation accounting prices the caching allocator's block rounding
  // (§3.3: the model deliberately over- rather than under-estimates).
  cost.activation_bytes_per_mb = RoundUpAllocSize(walk.boundary_bytes);
  for (const OpBreakdown& op : walk.ops) {
    cost.fwd_time += op.fwd_kernel + op.fwd_comm;
    cost.bwd_time += op.bwd_kernel + op.bwd_comm;
    cost.comp_time += op.fwd_kernel + op.bwd_kernel;
    cost.comm_time += op.fwd_comm + op.bwd_comm;
    if (op.recompute) {
      cost.bwd_time += op.fwd_kernel;
      cost.recompute_time += op.fwd_kernel;
    }
    cost.dp_sync_time += op.dp_sync;
    if (op.stored_bytes > 0) {
      cost.activation_bytes_per_mb += RoundUpAllocSize(op.stored_bytes);
    }
    cost.param_bytes += op.param_bytes;
    cost.optimizer_bytes += op.optimizer_bytes;
    cost.reserved_bytes = std::max(cost.reserved_bytes, op.workspace_bytes);
  }
  cost.fwd_time += walk.p2p_fwd;
  cost.bwd_time += walk.p2p_bwd;
  cost.comm_time += walk.p2p_fwd + walk.p2p_bwd;
  return cost;
}

PerfResult PerformanceModel::Evaluate(const ParallelConfig& config) const {
  eval_count_.fetch_add(1, std::memory_order_relaxed);

  const int p = config.num_stages();
  const int64_t num_microbatches = config.NumMicrobatches(*graph_);

  PerfResult result;
  result.memory_limit = cluster_.gpu.memory_bytes;
  result.stages.resize(static_cast<size_t>(p));

  for (int s = 0; s < p; ++s) {
    // Incremental path: reuse the memoized cost when this stage (including
    // its placement context) has been walked before — by this evaluation's
    // predecessor, or by a sibling search sharing the model.
    std::shared_ptr<const StageCost> cached;
    StageCost local;
    if (stage_cache_.enabled()) {
      const uint64_t key = config.StageSemanticHash(*graph_, cluster_, s);
      cached = stage_cache_.Lookup(key);
      if (cached == nullptr) {
        cached = std::make_shared<const StageCost>(
            AggregateStageCost(WalkStage(config, s)));
        stage_cache_.Insert(key, cached);
      }
    } else {
      local = AggregateStageCost(WalkStage(config, s));
    }
    const StageCost& cost = cached != nullptr ? *cached : local;
    StageUsage& usage = result.stages[static_cast<size_t>(s)];

    usage.fwd_time = cost.fwd_time;
    usage.bwd_time = cost.bwd_time;
    usage.comp_time = cost.comp_time;
    usage.comm_time = cost.comm_time;
    usage.recompute_time = cost.recompute_time;
    usage.dp_sync_time = cost.dp_sync_time;
    usage.param_bytes = cost.param_bytes;
    usage.optimizer_bytes = cost.optimizer_bytes;
    usage.activation_bytes_per_mb = cost.activation_bytes_per_mb;
    usage.reserved_bytes = cost.reserved_bytes;
    const int in_flight = std::max(1, p - s);  // 1F1B in-flight microbatches
    usage.memory_bytes = cost.param_bytes + cost.optimizer_bytes +
                         cost.activation_bytes_per_mb * in_flight +
                         cost.reserved_bytes;
  }

  // --- Eq. 2: stage times and iteration time ---
  double warmup_prefix = 0.0;    // sum of f_j for j < s
  double cooldown_prefix = 0.0;  // sum of b_j for j < s
  for (int s = 0; s < p; ++s) {
    StageUsage& usage = result.stages[static_cast<size_t>(s)];
    usage.warmup_time = warmup_prefix;
    usage.cooldown_time = cooldown_prefix;
    usage.steady_time = static_cast<double>(num_microbatches) *
                        (usage.fwd_time + usage.bwd_time);
    usage.stage_time = usage.warmup_time + usage.steady_time +
                       usage.cooldown_time + usage.dp_sync_time;
    warmup_prefix += usage.fwd_time;
    cooldown_prefix += usage.bwd_time;
  }

  double max_time = -1.0;
  int64_t max_mem = -1;
  for (int s = 0; s < p; ++s) {
    const StageUsage& usage = result.stages[static_cast<size_t>(s)];
    if (usage.stage_time > max_time) {
      max_time = usage.stage_time;
      result.slowest_stage = s;
    }
    if (usage.memory_bytes > max_mem) {
      max_mem = usage.memory_bytes;
      result.max_memory_stage = s;
    }
  }
  result.iteration_time = max_time;
  result.oom = max_mem > result.memory_limit;
  return result;
}

}  // namespace aceso
