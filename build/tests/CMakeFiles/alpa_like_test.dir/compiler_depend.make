# Empty compiler generated dependencies file for alpa_like_test.
# This may be replaced when dependencies are built.
