// Exp#8 — iteration-time prediction accuracy (paper Figure 15).
//
// For each GPT-3 and Wide-ResNet setting, searches a configuration, then
// compares the performance model's predicted iteration time with the
// "actual" time from the discrete-event runtime.
//
// Paper claims to reproduce in shape: small average error (paper: 2.70% on
// GPT-3, 7.29% on Wide-ResNet), with the convolutional family noisier than
// the transformer family.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"

namespace aceso {
namespace bench {
namespace {

double RunFamily(const std::string& prefix, const std::vector<double>& sizes,
                 TablePrinter& table) {
  double error_sum = 0.0;
  int count = 0;
  for (size_t i = 0; i < sizes.size(); ++i) {
    char size_buf[32];
    std::snprintf(size_buf, sizeof(size_buf), "%g", sizes[i]);
    const std::string name = prefix + size_buf + "b";
    const int gpus = models::GpusForSizeIndex(static_cast<int>(i));
    Workload workload(name, gpus);

    SearchOptions options = DefaultSearchOptions();
    const SearchResult search = AcesoSearch(workload.model(), options);
    if (!search.found) {
      continue;
    }
    const PerfResult predicted = workload.model().Evaluate(search.best.config);
    const ExecutionResult actual =
        workload.executor().Execute(search.best.config);
    const double err = 100.0 *
                       std::abs(actual.iteration_seconds -
                                predicted.iteration_time) /
                       actual.iteration_seconds;
    error_sum += err;
    ++count;
    table.AddRow({name + " @" + std::to_string(gpus) + "gpu",
                  FormatDouble(predicted.iteration_time, 3),
                  FormatDouble(actual.iteration_seconds, 3),
                  FormatDouble(err, 2) + "%"});
  }
  return count > 0 ? error_sum / count : 0.0;
}

}  // namespace
}  // namespace bench
}  // namespace aceso

int main() {
  using namespace aceso;
  using namespace aceso::bench;
  PrintHeader("Exp#8: iteration-time prediction accuracy (Figure 15)",
              "average prediction error 2.70% (GPT-3) and 7.29% "
              "(Wide-ResNet) in the paper");

  TablePrinter table({"setting", "predicted(s)", "actual(s)", "error"});
  const double gpt_err = RunFamily("gpt3-", GptSizes(), table);
  const double wrn_err = RunFamily("wresnet-", WrnSizes(), table);
  table.Print(std::cout);
  std::printf("\naverage error: GPT-3 %.2f%%, Wide-ResNet %.2f%%\n", gpt_err,
              wrn_err);
  return 0;
}
