#include "src/serve/plan_cache.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/ir/models/model_zoo.h"
#include "src/serve/plan_protocol.h"

namespace aceso {
namespace serve {
namespace {

CachedPlan Plan(const std::string& payload) {
  CachedPlan plan;
  plan.payload_json = std::make_shared<const std::string>(payload);
  plan.found = true;
  return plan;
}

TEST(PlanCacheTest, GetReturnsWhatPutStored) {
  PlanCache cache(4);
  EXPECT_FALSE(cache.Get(1).has_value());
  cache.Put(1, Plan("one"));
  auto hit = cache.Get(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit->payload_json, "one");
  EXPECT_TRUE(hit->found);
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.inserts, 1);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  cache.Put(1, Plan("one"));
  cache.Put(2, Plan("two"));
  // Touch 1 so 2 becomes the LRU entry, then overflow.
  EXPECT_TRUE(cache.Get(1).has_value());
  cache.Put(3, Plan("three"));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Get(1).has_value());
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_TRUE(cache.Get(3).has_value());
  EXPECT_EQ(cache.stats().evictions, 1);
}

TEST(PlanCacheTest, PutRefreshesExistingEntry) {
  PlanCache cache(2);
  cache.Put(1, Plan("one"));
  cache.Put(2, Plan("two"));
  cache.Put(1, Plan("one again"));  // refresh, not insert: 2 is now LRU
  cache.Put(3, Plan("three"));
  EXPECT_EQ(*cache.Get(1)->payload_json, "one again");
  EXPECT_FALSE(cache.Get(2).has_value());
  EXPECT_EQ(cache.stats().inserts, 3);
}

TEST(PlanCacheTest, DerivedPayloadsRoundTripAndAreScopedToTheEntry) {
  PlanCache cache(4);
  cache.Put(1, Plan("base"));
  EXPECT_EQ(cache.GetDerived(1, 42), nullptr);  // present entry, no variant
  auto sweep = std::make_shared<const std::string>("sweep for budgets A");
  cache.PutDerived(1, 42, sweep);
  auto hit = cache.GetDerived(1, 42);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit.get(), sweep.get()) << "shared by reference, not copied";
  EXPECT_EQ(cache.GetDerived(1, 43), nullptr);  // other variant
  EXPECT_EQ(cache.GetDerived(2, 42), nullptr);  // absent entry: not a miss
  const PlanCacheStats stats = cache.stats();
  EXPECT_EQ(stats.derived_hits, 1);
  EXPECT_EQ(stats.derived_misses, 2);
  EXPECT_EQ(stats.derived_inserts, 1);
}

TEST(PlanCacheTest, RefreshingAnEntryDropsItsDerivedPayloads) {
  // Derived payloads are renderings of the entry's payload; replacing the
  // payload must invalidate them or a sweep could replay stale data.
  PlanCache cache(4);
  cache.Put(1, Plan("v1"));
  cache.PutDerived(1, 7, std::make_shared<const std::string>("from v1"));
  cache.Put(1, Plan("v2"));
  EXPECT_EQ(cache.GetDerived(1, 7), nullptr);
}

TEST(PlanCacheTest, DerivedPayloadsAreCappedPerEntry) {
  PlanCache cache(4);
  cache.Put(1, Plan("base"));
  for (uint64_t v = 0; v < PlanCache::kMaxDerivedPerEntry + 3; ++v) {
    cache.PutDerived(
        1, v, std::make_shared<const std::string>("d" + std::to_string(v)));
  }
  // Oldest variants were dropped; the newest survive.
  EXPECT_EQ(cache.GetDerived(1, 0), nullptr);
  EXPECT_EQ(cache.GetDerived(1, 2), nullptr);
  ASSERT_NE(cache.GetDerived(1, PlanCache::kMaxDerivedPerEntry + 2), nullptr);
}

TEST(PlanCacheTest, PutDerivedOnMissingEntryIsANoOp) {
  PlanCache cache(2);
  cache.PutDerived(99, 1, std::make_shared<const std::string>("orphan"));
  EXPECT_EQ(cache.GetDerived(99, 1), nullptr);
  EXPECT_EQ(cache.stats().derived_inserts, 0);
}

TEST(PlanCacheTest, ZeroCapacityDisablesCaching) {
  PlanCache cache(0);
  cache.Put(1, Plan("one"));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Get(1).has_value());
  EXPECT_EQ(cache.stats().inserts, 0);
}

// ---- keying: PlanCacheKey over the parsed request ----

class PlanCacheKeyTest : public ::testing::Test {
 protected:
  // The key a request denotes, end to end: build the model, derive the
  // cluster and options exactly like the service does.
  static uint64_t KeyOf(const PlanRequest& request) {
    auto graph = models::BuildByName(request.model);
    EXPECT_TRUE(graph.ok()) << graph.status().ToString();
    const ClusterSpec cluster = ClusterSpec::WithGpuCount(request.gpus);
    return PlanCacheKey(*graph, cluster,
                        ToSearchOptions(request, /*default_eval_threads=*/2));
  }

  static PlanRequest BaseRequest() {
    PlanRequest request;
    request.model = "gpt3-0.35b";
    request.gpus = 4;
    request.max_evaluations = 50;
    return request;
  }
};

TEST_F(PlanCacheKeyTest, NonSemanticFieldsDoNotChangeTheKey) {
  const uint64_t base = KeyOf(BaseRequest());

  PlanRequest request = BaseRequest();
  request.request_id = "r-123";
  request.client = "curl";
  request.stream = true;
  request.eval_threads = 7;
  EXPECT_EQ(KeyOf(request), base)
      << "execution-shaping fields must not fragment the cache";
}

TEST_F(PlanCacheKeyTest, SemanticFieldsChangeTheKey) {
  const uint64_t base = KeyOf(BaseRequest());

  PlanRequest request = BaseRequest();
  request.model = "gpt3-1.3b";
  EXPECT_NE(KeyOf(request), base);

  request = BaseRequest();
  request.gpus = 8;
  EXPECT_NE(KeyOf(request), base);

  request = BaseRequest();
  request.seed = 7;
  EXPECT_NE(KeyOf(request), base);

  request = BaseRequest();
  request.budget_seconds = 9.5;
  EXPECT_NE(KeyOf(request), base);

  request = BaseRequest();
  request.max_evaluations = 51;
  EXPECT_NE(KeyOf(request), base);

  request = BaseRequest();
  request.max_hops = 3;
  EXPECT_NE(KeyOf(request), base);

  request = BaseRequest();
  request.stages = 2;
  EXPECT_NE(KeyOf(request), base);

  request = BaseRequest();
  request.seed_mode = SeedMode::kDp;
  EXPECT_NE(KeyOf(request), base);

  request = BaseRequest();
  request.top_k = 2;
  EXPECT_NE(KeyOf(request), base);
}

TEST_F(PlanCacheKeyTest, FrontierAndBudgetFieldsKeySeparately) {
  // ISSUE-8 regression: `frontier` and `memory_budget_bytes` are semantic —
  // the first adds a member to the answer, the second changes every
  // feasibility verdict — so requests differing only in them must never
  // collide (a collision replays a payload computed under the wrong limit,
  // or one with no frontier to derive a sweep from).
  const uint64_t base = KeyOf(BaseRequest());

  PlanRequest request = BaseRequest();
  request.frontier = true;
  const uint64_t frontier_key = KeyOf(request);
  EXPECT_NE(frontier_key, base);

  request = BaseRequest();
  request.memory_budget_bytes = 16LL * (1LL << 30);
  const uint64_t budget16 = KeyOf(request);
  EXPECT_NE(budget16, base);
  EXPECT_NE(budget16, frontier_key);

  request = BaseRequest();
  request.memory_budget_bytes = 8LL * (1LL << 30);
  const uint64_t budget8 = KeyOf(request);
  EXPECT_NE(budget8, base);
  EXPECT_NE(budget8, budget16);

  // A cache seeded by one budget must miss for the other.
  PlanCache cache(4);
  cache.Put(budget16, Plan("under 16 GiB"));
  EXPECT_FALSE(cache.Get(budget8).has_value());
  EXPECT_EQ(*cache.Get(budget16)->payload_json, "under 16 GiB");
}

TEST_F(PlanCacheKeyTest, BudgetSweepKeysAsItsBaseFrontierRequest) {
  // The sweep list is a lookup input, not a search input: a sweep request
  // must key exactly like the frontier request whose archive answers it —
  // that equality is what lets a warm cache serve the whole sweep without
  // re-entering the search.
  PlanRequest frontier_request = BaseRequest();
  frontier_request.frontier = true;
  const uint64_t frontier_key = KeyOf(frontier_request);

  PlanRequest sweep = BaseRequest();
  sweep.memory_budgets = {8LL * (1LL << 30), 16LL * (1LL << 30)};
  EXPECT_EQ(KeyOf(sweep), frontier_key);

  PlanRequest other_sweep = BaseRequest();
  other_sweep.memory_budgets = {4LL * (1LL << 30)};
  EXPECT_EQ(KeyOf(other_sweep), frontier_key)
      << "different budget lists share the one cached frontier";
}

TEST_F(PlanCacheKeyTest, GpuPriceChangesTheKey) {
  // The frontier payload carries a $/step axis derived from the GPU's
  // hourly price, so a re-priced cluster must not replay payloads priced
  // under the old rate.
  auto graph = models::BuildByName("gpt3-0.35b");
  ASSERT_TRUE(graph.ok());
  const SearchOptions options =
      ToSearchOptions(BaseRequest(), /*default_eval_threads=*/2);
  ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  const uint64_t base = PlanCacheKey(*graph, cluster, options);
  cluster.gpu.price_per_hour_usd *= 2.0;
  EXPECT_NE(PlanCacheKey(*graph, cluster, options), base);
}

TEST_F(PlanCacheKeyTest, FuzzNonSemanticPerturbationsAlwaysHit) {
  // Property fuzz in the spirit of the hash fuzz suite: any combination of
  // non-semantic perturbations keeps the key; flipping one semantic field
  // on top changes it.
  Rng rng(20240808);
  const uint64_t base = KeyOf(BaseRequest());
  for (int trial = 0; trial < 200; ++trial) {
    PlanRequest request = BaseRequest();
    if (rng.NextBelow(2) == 1) {
      request.request_id = "r" + std::to_string(rng.NextU64());
    }
    if (rng.NextBelow(2) == 1) {
      request.client = "client" + std::to_string(rng.NextBelow(100));
    }
    if (rng.NextBelow(2) == 1) request.stream = true;
    if (rng.NextBelow(2) == 1) {
      request.eval_threads = 1 + static_cast<int>(rng.NextBelow(16));
    }
    ASSERT_EQ(KeyOf(request), base) << "trial " << trial;

    switch (rng.NextBelow(4)) {
      case 0:
        request.seed += 1 + rng.NextBelow(1000);
        break;
      case 1:
        request.max_evaluations += 1 + static_cast<int64_t>(rng.NextBelow(9));
        break;
      case 2:
        // 1..6, never the base's 7.
        request.max_hops = 1 + static_cast<int>(rng.NextBelow(6));
        break;
      default:
        request.top_k = 6 + static_cast<int>(rng.NextBelow(4));
        break;
    }
    ASSERT_NE(KeyOf(request), base) << "trial " << trial;
  }
}

}  // namespace
}  // namespace serve
}  // namespace aceso
