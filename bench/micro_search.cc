// Micro-benchmark: search building blocks — candidate generation per
// primitive, one full search iteration, fine-tuning, and the per-candidate
// construction+hash path (copy-on-write vs the pre-CoW deep-copy baseline).

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "src/aceso.h"

namespace {
// Running total of heap bytes requested through operator new, so the
// candidate-construction benches can report bytes allocated per candidate.
std::atomic<int64_t> g_heap_bytes{0};
}  // namespace

// GCC pairs the malloc it inlines from this operator new with the frees in
// the matching operator delete and warns about the mismatch; the pairing is
// intentional (count, then defer to malloc/free).
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void* operator new(std::size_t size) {
  g_heap_bytes.fetch_add(static_cast<int64_t>(size),
                         std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

#pragma GCC diagnostic pop

namespace aceso {
namespace {

struct Fixture {
  Fixture()
      : graph(models::Gpt3(1.3)),
        cluster(ClusterSpec::WithGpuCount(8)),
        db(cluster),
        model(&graph, cluster, &db),
        config(*MakeEvenConfig(graph, cluster, 4, 4)),
        perf(model.Evaluate(config)) {}
  OpGraph graph;
  ClusterSpec cluster;
  ProfileDatabase db;
  PerformanceModel model;
  ParallelConfig config;
  PerfResult perf;
};

void BM_GenerateCandidates(benchmark::State& state) {
  Fixture f;
  const auto kind = static_cast<PrimitiveKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GeneratePrimitiveCandidates(f.model, f.config, f.perf, kind, 1));
  }
  state.SetLabel(PrimitiveName(kind));
}
BENCHMARK(BM_GenerateCandidates)->DenseRange(0, kNumPrimitives - 1);

void BM_OrderedBottlenecks(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(OrderedBottlenecks(f.perf));
  }
}
BENCHMARK(BM_OrderedBottlenecks);

void BM_FineTunePass(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    ParallelConfig config = f.config;
    const TimeBudget budget(60.0);
    benchmark::DoNotOptimize(FineTune(f.model, config, f.perf, budget));
  }
}
BENCHMARK(BM_FineTunePass);

void BM_SearchIterationBudget100ms(benchmark::State& state) {
  // End-to-end anytime search slices: how much improvement per 100 ms.
  // This is the telemetry-disabled pin: SearchOptions::telemetry stays
  // null, so any regression here against the pre-telemetry baseline means
  // the disabled path is no longer a branch-on-null no-op.
  Fixture f;
  for (auto _ : state) {
    SearchOptions options;
    options.time_budget_seconds = 0.1;
    benchmark::DoNotOptimize(AcesoSearchForStages(f.model, options, 4));
  }
}
BENCHMARK(BM_SearchIterationBudget100ms)->Unit(benchmark::kMillisecond);

void BM_SearchIterationBudget100msTelemetry(benchmark::State& state) {
  // Same slice with a live sink: the full per-iteration event + counter
  // cost. Compare against BM_SearchIterationBudget100ms for the
  // enabled-telemetry overhead.
  Fixture f;
  for (auto _ : state) {
    TelemetryOptions topts;
    topts.ring_capacity = 8192;
    TelemetrySink sink(topts);
    SearchOptions options;
    options.time_budget_seconds = 0.1;
    options.telemetry = &sink;
    benchmark::DoNotOptimize(AcesoSearchForStages(f.model, options, 4));
  }
}
BENCHMARK(BM_SearchIterationBudget100msTelemetry)
    ->Unit(benchmark::kMillisecond);

void BM_SearchEvalThreads(benchmark::State& state) {
  // Fixed-work search (deterministic evaluation budget, single stage
  // count) at each intra-search evaluation-parallelism setting. The
  // trajectory is bit-identical across args (DESIGN.md §11), so time per
  // iteration is directly comparable: Arg(1) is the serial baseline and
  // Arg(N)'s ratio to it is the parallel-evaluation speedup.
  Fixture f;
  const int eval_threads = static_cast<int>(state.range(0));
  ThreadPool pool(static_cast<size_t>(eval_threads));
  for (auto _ : state) {
    SearchOptions options;
    options.time_budget_seconds = 1e9;
    options.max_evaluations = 500;
    options.eval_threads = eval_threads;
    if (eval_threads > 1) {
      options.eval_pool = &pool;
    }
    benchmark::DoNotOptimize(AcesoSearchForStages(f.model, options, 4));
  }
  const ThreadPoolStats stats = pool.stats();
  state.counters["pool_steals"] =
      benchmark::Counter(static_cast<double>(stats.stolen));
  state.counters["pool_helped"] =
      benchmark::Counter(static_cast<double>(stats.helped));
}
BENCHMARK(BM_SearchEvalThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// ----- Per-candidate construction + hash (CoW vs deep copy) -----
//
// The ISSUE-2 hot path: the search constructs a candidate by copying the
// base configuration, mutating one stage through MutableStage(), and
// re-hashing for deduplication. With copy-on-write stage blocks the copy
// shares all stages, the mutation clones exactly one, and the incremental
// hash recombines cached prefix state; the deep-copy baseline reproduces
// the pre-CoW representation (every stage copied, every op re-walked).

// 8-stage fixture on the big model: the scale the acceptance criterion is
// stated at (gpt3-2.6b, 16 GPUs, 8 stages).
struct BigFixture {
  BigFixture()
      : graph(models::Gpt3(2.6)),
        cluster(ClusterSpec::WithGpuCount(16)),
        db(cluster),
        model(&graph, cluster, &db),
        config(*MakeEvenConfig(graph, cluster, 8, 4)) {}
  OpGraph graph;
  ClusterSpec cluster;
  ProfileDatabase db;
  PerformanceModel model;
  ParallelConfig config;
};

// One Table-1-style candidate: copy, flip one op's recompute flag in one
// (rotating) stage, re-hash for dedup.
template <bool kDeepCopy>
uint64_t MakeCandidate(const ParallelConfig& base, const OpGraph& graph,
                       int round) {
  ParallelConfig next = kDeepCopy ? base.DeepCopy() : base;
  const int s = round % next.num_stages();
  StageConfig& stage = next.MutableStage(s);
  OpParallel& setting =
      stage.ops[static_cast<size_t>(round) % stage.ops.size()];
  setting.recompute = !setting.recompute;
  // The deep-copy baseline also pays the pre-CoW from-scratch hash; the CoW
  // path recombines the base config's cached prefix.
  return kDeepCopy ? next.SemanticHashUncached(graph)
                   : next.SemanticHash(graph);
}

// Arg: the stage to mutate, or -1 to rotate through all stages (the
// average case; the incremental hash refolds from the mutated stage on, so
// late stages are the best case and stage 0 the worst).
template <bool kDeepCopy>
void CandidateConstructionBench(benchmark::State& state) {
  BigFixture f;
  f.config.SemanticHash(f.graph);  // base config arrives with warm caches
  const int fixed_stage = static_cast<int>(state.range(0));
  const int stride = fixed_stage < 0 ? 1 : f.config.num_stages();
  int round = fixed_stage < 0 ? 0 : fixed_stage;
  const int64_t bytes_before = g_heap_bytes.load(std::memory_order_relaxed);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        MakeCandidate<kDeepCopy>(f.config, f.graph, round));
    round += stride;
  }
  const int64_t bytes =
      g_heap_bytes.load(std::memory_order_relaxed) - bytes_before;
  state.counters["bytes_per_candidate"] = benchmark::Counter(
      static_cast<double>(bytes) /
      static_cast<double>(std::max<int64_t>(1, state.iterations())));
  state.counters["candidates_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
  state.SetLabel(fixed_stage < 0 ? "rotating-stage"
                                 : "stage " + std::to_string(fixed_stage));
}

void BM_CandidateConstructCow(benchmark::State& state) {
  CandidateConstructionBench<false>(state);
}
BENCHMARK(BM_CandidateConstructCow)->Arg(-1)->Arg(0)->Arg(4)->Arg(7);

void BM_CandidateConstructDeepCopy(benchmark::State& state) {
  CandidateConstructionBench<true>(state);
}
BENCHMARK(BM_CandidateConstructDeepCopy)->Arg(-1)->Arg(7);

// Copy alone (no mutation, no hash): what sharing stage blocks saves.
void BM_ConfigCopyCow(benchmark::State& state) {
  BigFixture f;
  for (auto _ : state) {
    ParallelConfig copy = f.config;
    benchmark::DoNotOptimize(copy.num_stages());
  }
}
BENCHMARK(BM_ConfigCopyCow);

void BM_ConfigCopyDeep(benchmark::State& state) {
  BigFixture f;
  for (auto _ : state) {
    ParallelConfig copy = f.config.DeepCopy();
    benchmark::DoNotOptimize(copy.num_stages());
  }
}
BENCHMARK(BM_ConfigCopyDeep);

// Re-hash after a single-stage mutation: incremental prefix recombination
// vs the from-scratch reference walk.
template <bool kUncached>
void RehashBench(benchmark::State& state) {
  BigFixture f;
  ParallelConfig config = f.config;
  config.SemanticHash(f.graph);
  int round = 0;
  for (auto _ : state) {
    const int s = round % config.num_stages();
    StageConfig& stage = config.MutableStage(s);
    OpParallel& setting =
        stage.ops[static_cast<size_t>(round) % stage.ops.size()];
    setting.recompute = !setting.recompute;
    ++round;
    benchmark::DoNotOptimize(kUncached ? config.SemanticHashUncached(f.graph)
                                       : config.SemanticHash(f.graph));
  }
}

void BM_RehashAfterMutationIncremental(benchmark::State& state) {
  RehashBench<false>(state);
}
BENCHMARK(BM_RehashAfterMutationIncremental);

void BM_RehashAfterMutationUncached(benchmark::State& state) {
  RehashBench<true>(state);
}
BENCHMARK(BM_RehashAfterMutationUncached);

// ----- Batched sibling-group evaluation (DESIGN.md §13) -----
//
// The ISSUE-6 hot path: the search scores a wave of sibling candidates that
// all differ from their base in one stage. CandidateBatch resolves each
// shared stage once and broadcasts the StageCost across lanes; the scalar
// loop resolves every stage per candidate. With the stage cache disabled
// the comparison isolates the structural saving (stages priced: L + (S-1)
// batched vs L*S scalar for L lanes over S stages); with the cache enabled
// it shows the residual lookup/hash traffic the broadcast still avoids.

// Arg: sibling-group size. Each sibling mutates stage 0 differently
// (distinct recompute prefixes), so stages 1..S-1 are block-identical
// across the group — the shape EvaluateBatch sees after dedup. Runs on the
// 8-stage BigFixture: deeper pipelines share more stages per sibling, which
// is exactly where the broadcast pays.
template <bool kCacheEnabled, bool kBatched>
void GroupEvalBench(benchmark::State& state) {
  BigFixture f;
  f.model.set_stage_cache_enabled(kCacheEnabled);
  const int group = static_cast<int>(state.range(0));
  std::vector<ParallelConfig> siblings;
  for (int i = 0; i < group; ++i) {
    ParallelConfig sibling = f.config;
    StageConfig& mutated = sibling.MutableStage(0);
    for (int j = 0; j <= i % mutated.num_ops; ++j) {
      OpParallel& setting = mutated.ops[static_cast<size_t>(j)];
      setting.recompute = !setting.recompute;
    }
    siblings.push_back(std::move(sibling));
  }
  if (kBatched) {
    CandidateBatch batch(f.model);
    for (auto _ : state) {
      batch.Clear();
      for (const ParallelConfig& sibling : siblings) {
        batch.AddLane(&sibling);
      }
      batch.EvaluateAll();
      benchmark::DoNotOptimize(batch.perf(0).iteration_time);
    }
  } else {
    for (auto _ : state) {
      for (const ParallelConfig& sibling : siblings) {
        benchmark::DoNotOptimize(f.model.Evaluate(sibling));
      }
    }
  }
  state.counters["candidates_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * group,
      benchmark::Counter::kIsRate);
}

void BM_BatchedGroupEval(benchmark::State& state) {
  GroupEvalBench<true, true>(state);
}
BENCHMARK(BM_BatchedGroupEval)->Arg(4)->Arg(8);

void BM_ScalarGroupEval(benchmark::State& state) {
  GroupEvalBench<true, false>(state);
}
BENCHMARK(BM_ScalarGroupEval)->Arg(4)->Arg(8);

void BM_BatchedGroupEvalNoCache(benchmark::State& state) {
  GroupEvalBench<false, true>(state);
}
BENCHMARK(BM_BatchedGroupEvalNoCache)->Arg(4)->Arg(8);

void BM_ScalarGroupEvalNoCache(benchmark::State& state) {
  GroupEvalBench<false, false>(state);
}
BENCHMARK(BM_ScalarGroupEvalNoCache)->Arg(4)->Arg(8);

}  // namespace
}  // namespace aceso

BENCHMARK_MAIN();
