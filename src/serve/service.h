// The multi-tenant planning service (DESIGN.md §14): plan requests in,
// cached or freshly searched plans out. Transport-independent — the HTTP
// daemon (daemon.h), the tests, and the serve bench all drive this class
// directly.
//
// One request flows through three layers, cheapest first:
//
//   1. PlanCache — the semantic key (PlanCacheKey) hits a previously
//      computed payload: replay it, no search, no model build beyond the
//      fingerprint. Counter-verified by tests: a duplicate request must not
//      re-enter AcesoSearch.
//   2. Single-flight — an *identical* request is already searching: wait on
//      it and share its payload ("coalesced"); N concurrent duplicates cost
//      one search.
//   3. Admission + search — at most `max_inflight_searches` searches run at
//      once (beyond that the request is rejected with ResourceExhausted, a
//      429 on the wire, rather than queued behind unbounded work); admitted
//      searches run as jobs on the service's shared work-stealing pool,
//      which also serves their intra-search evaluation batches.
//
// Profile databases are materialized per cluster fingerprint and shared by
// every request for that cluster. With `snapshot_dir` set, a database whose
// snapshot file exists warm-starts from it (ProfileDatabase::Load publishes
// the entries as the lock-free read snapshot), so the daemon's first request
// on a profiled cluster runs zero simulated measurements.

#ifndef SRC_SERVE_SERVICE_H_
#define SRC_SERVE_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "src/common/hash.h"
#include "src/common/status.h"
#include "src/common/thread_pool.h"
#include "src/profile/profile_db.h"
#include "src/serve/plan_cache.h"
#include "src/serve/plan_protocol.h"

namespace aceso {
namespace serve {

struct ServeOptions {
  // Shared pool width; 0 = max(hardware concurrency, max_inflight_searches)
  // so every admitted search gets a worker immediately.
  int worker_threads = 0;

  // Default intra-search evaluation parallelism for requests that leave
  // eval_threads unset. Bit-identity no-op on results (DESIGN.md §11).
  int eval_threads = 2;

  // Plan cache entries (0 disables the cache).
  size_t plan_cache_capacity = 64;

  // Derived sweep-payload variants kept per cache entry (PlanCacheOptions::
  // max_derived_payloads).
  size_t plan_cache_max_derived = 8;

  // Neighbor-seeded incremental planning (DESIGN.md §17): on a plan-cache
  // miss, probe the similarity index for the nearest cached neighbor plan,
  // adapt it to the request (src/core/seed_adapt.h), and start the search
  // from it. The adopted plan is re-verdicted — never worse than both the
  // adapted seed and the unseeded heuristic init, falling back to an
  // unseeded search otherwise. Off restores strictly request-deterministic
  // answers (a seeded answer depends on what the cache held at miss time).
  bool neighbor_seed = true;

  // Admission bound: searches running at once before requests are rejected.
  int max_inflight_searches = 4;

  // When non-empty: profile snapshot directory. Databases warm-start from
  // `profile_<fingerprint>.apdb` when present; SaveProfiles() writes there
  // by default.
  std::string snapshot_dir;

  // Max convergence points embedded in a response payload.
  size_t convergence_cap = 64;

  // ---- HTTP transport knobs (consumed by PlanDaemon / HttpServerOptions,
  // carried here so one options struct configures the whole daemon) ----
  int http_workers = 2;                    // epoll event-loop workers
  double http_idle_timeout_seconds = 30.0; // keep-alive idle eviction
  double http_read_timeout_seconds = 30.0; // partial-request eviction
};

// Monotonic service counters (ServeStats::operator- attributes deltas, like
// every stats struct in the repo). Cache counters mirror the PlanCache.
struct ServeStats {
  int64_t requests = 0;        // Handle() calls
  int64_t completed = 0;       // searches run to completion
  int64_t rejected = 0;        // admission rejections
  int64_t errors = 0;          // invalid requests + failed searches
  int64_t coalesced = 0;       // served by an identical in-flight search
  // Budget-sweep requests (PlanRequest::memory_budgets), and the subset
  // answered straight from a cached frontier payload — zero searches run
  // (`completed` does not move; counter-verified by serve_test).
  int64_t budget_sweeps = 0;
  int64_t sweeps_from_cache = 0;
  // Responses answered from a pre-serialized payload with no JSON
  // construction at all (plain hits, coalesced waiters, and sweeps served
  // from a cached derived payload) — the zero-serialization fast path of
  // DESIGN.md §16. Counter-verified by serve_test.
  int64_t serializations_skipped = 0;
  int64_t cache_hits = 0;      // plan-cache hits (no search)
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;
  // Neighbor seeding (DESIGN.md §17): misses whose search started from an
  // adapted cached neighbor, split into adopted seeded results and
  // fallbacks to an unseeded search (the re-verdict rejected the seeded
  // result). Invariant: neighbor_seeded == seed_adopted + seed_fallbacks.
  int64_t neighbor_seeded = 0;
  int64_t seed_adopted = 0;
  int64_t seed_fallbacks = 0;
  int64_t profile_dbs = 0;     // databases materialized
  int64_t warm_starts = 0;     // databases loaded from a snapshot file
  int64_t warm_start_errors = 0;  // snapshot present but refused
  // Aggregated over every profile database (warm-start acceptance: a
  // snapshot-started daemon answers its first request with profile_misses
  // still zero).
  int64_t profile_lookups = 0;
  int64_t profile_misses = 0;

  ServeStats operator-(const ServeStats& other) const;
};

// The snapshot file for a cluster fingerprint inside `dir`:
// `<dir>/profile_<16-hex-digit fingerprint>.apdb`. Shared by the service's
// warm-start probe, SaveProfiles, the daemon tool, and CI.
std::string ProfileSnapshotPath(const std::string& dir, uint64_t fingerprint);

class PlanService {
 public:
  explicit PlanService(ServeOptions options = {});
  ~PlanService();

  PlanService(const PlanService&) = delete;
  PlanService& operator=(const PlanService&) = delete;

  // The response body is three parts — head + shared middle + tail — whose
  // concatenation is the wire envelope. On the zero-serialization path the
  // middle is the cached payload by reference (no copy); error responses
  // carry the whole envelope in `body_head`. The daemon hands the parts to
  // HttpResponseWriter::RespondParts, which writev()s them as-is.
  struct Response {
    Status status;      // request-level outcome (ok even for found=false)
    std::string cache;  // "hit" | "miss" | "coalesced" | "" (error/rejected)
    std::string body_head;
    std::shared_ptr<const std::string> body_mid;  // null for errors
    std::string body_tail;
    uint64_t key = 0;   // plan-cache key (0 when the request never keyed)

    // The full envelope, concatenated (tests, CLI clients, streaming).
    std::string body() const {
      std::string out = body_head;
      if (body_mid != nullptr) {
        out += *body_mid;
      }
      out += body_tail;
      return out;
    }
  };

  // Called with one JSON line per streamed event (no trailing newline).
  using EventCallback = std::function<void(const std::string& json_line)>;

  // Handles one request end to end: cache, single-flight, admission,
  // search. Blocking (the search runs on the pool; the calling thread
  // waits), thread-safe, and callable from many connection threads at once.
  // `on_event` (optional) streams telemetry events while the search runs —
  // only the request that runs the search streams; cache hits and coalesced
  // requests produce just the final body.
  Response Handle(const PlanRequest& request,
                  const EventCallback& on_event = nullptr);

  // Saves every materialized profile database to
  // `dir/profile_<fingerprint>.apdb` (empty dir = options.snapshot_dir).
  Status SaveProfiles(const std::string& dir = "");

  ServeStats stats() const;
  PlanCacheStats plan_cache_stats() const { return cache_.stats(); }

  // Serializes stats() as a JSON object (the /stats endpoint body).
  std::string StatsJson() const;

  ThreadPool& pool() { return pool_; }
  const ServeOptions& options() const { return options_; }

 private:
  // A search in flight, shared between the request that runs it and any
  // coalesced duplicates waiting on it.
  struct Inflight;

  // The profile database for `cluster`, materializing (and, with a snapshot
  // dir, warm-starting) it on first use.
  ProfileDatabase* DbForCluster(const ClusterSpec& cluster);

  // The miss-path search with neighbor seeding (DESIGN.md §17): probe the
  // similarity index, adapt the nearest neighbor's plan, seed the search
  // from it, and re-verdict — the served plan is never worse than both the
  // adapted seed and the unseeded heuristic init (falls back to an unseeded
  // search otherwise). No usable neighbor degrades to a plain unseeded
  // search. Maintains the neighbor_seeded / seed_adopted / seed_fallbacks
  // counters; runs on a pool worker inside the runner's job.
  SearchResult SeededSearch(const PerformanceModel& model,
                            const SearchOptions& options, uint64_t key);

  // The immutable graph for a zoo model name, built once and shared by
  // every request (and by in-flight searches — PerformanceModel and
  // BuildPlanPayload only read it). Without this memo every cache hit paid
  // a full model build + fingerprint (~13 µs, the dominant cost of a hit).
  StatusOr<std::shared_ptr<const OpGraph>> GraphForModel(
      const std::string& name);

  std::string NextRequestId();

  ServeOptions options_;
  ThreadPool pool_;
  PlanCache cache_;

  mutable std::mutex db_mu_;
  std::unordered_map<uint64_t, std::unique_ptr<ProfileDatabase>, IdentityHash>
      dbs_;

  std::mutex model_mu_;
  std::unordered_map<std::string, std::shared_ptr<const OpGraph>> models_;

  std::mutex inflight_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<Inflight>, IdentityHash>
      inflight_;

  std::atomic<int64_t> running_searches_{0};
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> rejected_{0};
  std::atomic<int64_t> errors_{0};
  std::atomic<int64_t> coalesced_{0};
  std::atomic<int64_t> budget_sweeps_{0};
  std::atomic<int64_t> sweeps_from_cache_{0};
  std::atomic<int64_t> serializations_skipped_{0};
  std::atomic<int64_t> neighbor_seeded_{0};
  std::atomic<int64_t> seed_adopted_{0};
  std::atomic<int64_t> seed_fallbacks_{0};
  std::atomic<int64_t> warm_starts_{0};
  std::atomic<int64_t> warm_start_errors_{0};
  std::atomic<int64_t> next_request_id_{1};
};

}  // namespace serve
}  // namespace aceso

#endif  // SRC_SERVE_SERVICE_H_
