file(REMOVE_RECURSE
  "libaceso_ir.a"
)
