# Empty dependencies file for aceso_hw.
# This may be replaced when dependencies are built.
