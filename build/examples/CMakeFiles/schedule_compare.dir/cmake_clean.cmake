file(REMOVE_RECURSE
  "CMakeFiles/schedule_compare.dir/schedule_compare.cpp.o"
  "CMakeFiles/schedule_compare.dir/schedule_compare.cpp.o.d"
  "schedule_compare"
  "schedule_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schedule_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
