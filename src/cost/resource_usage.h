// Per-stage resource usage and whole-configuration performance estimates.
//
// These are the quantities Aceso's search consumes: computation time,
// communication time and memory consumption per pipeline stage (§3.3), and
// the predicted iteration time used to compare configurations.

#ifndef SRC_COST_RESOURCE_USAGE_H_
#define SRC_COST_RESOURCE_USAGE_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace aceso {

// The three resources of the reconfiguration-primitive table (Table 1).
enum class Resource {
  kComputation,
  kCommunication,
  kMemory,
};

const char* ResourceName(Resource resource);

// Resource usage of one pipeline stage, per device (stages are internally
// symmetric: every device in a stage carries the same load, §3.1).
struct StageUsage {
  // Per-microbatch forward / backward wall time including the stage's own
  // communication (tensor-parallel collectives, resharding, p2p receives).
  double fwd_time = 0.0;
  double bwd_time = 0.0;

  // Per-microbatch decomposition of the above.
  double comp_time = 0.0;       // pure kernel time (fwd+bwd)
  double comm_time = 0.0;       // tp collectives + resharding + p2p (fwd+bwd)
  double recompute_time = 0.0;  // extra forward time paid in bwd for rc ops

  // Once-per-iteration data-parallel gradient synchronization.
  double dp_sync_time = 0.0;

  // Eq. 2 decomposition: total stage time over one iteration.
  double warmup_time = 0.0;
  double steady_time = 0.0;
  double cooldown_time = 0.0;
  double stage_time = 0.0;  // warmup + steady + cooldown + dp sync

  // Peak memory per device, Eq. 1 decomposition.
  int64_t param_bytes = 0;
  int64_t optimizer_bytes = 0;          // grads + optimizer states
  int64_t activation_bytes_per_mb = 0;  // stored activations per microbatch
  int64_t reserved_bytes = 0;           // allocator-reserve overestimate
  int64_t memory_bytes = 0;             // total peak

  // Fraction of per-microbatch time spent on each resource; used by
  // Heuristic-2's consumption-proportion ranking.
  double TimeShare(Resource resource) const;
};

// The performance model's verdict on a configuration.
struct PerfResult {
  // True when some stage exceeds device memory. OOM configurations carry a
  // valid iteration-time estimate but are infeasible (Heuristic-1 treats the
  // largest-memory stage as the bottleneck).
  bool oom = false;

  // Predicted end-to-end iteration time (max over stage times).
  double iteration_time = 0.0;

  // Index of the stage with the longest stage_time.
  int slowest_stage = 0;

  // Index of the stage with the largest memory consumption.
  int max_memory_stage = 0;

  std::vector<StageUsage> stages;

  // Device memory capacity used for the OOM check.
  int64_t memory_limit = 0;

  // Samples/second given the model's global batch size.
  double Throughput(int64_t global_batch) const {
    return iteration_time > 0.0
               ? static_cast<double>(global_batch) / iteration_time
               : 0.0;
  }

  // Feasible configs sort before OOM ones. Returns true when *this is
  // strictly better than `other`.
  //
  // The "strictly better" relation must induce a strict weak ordering or the
  // score-keyed containers built on top of it (the top-k multimap in
  // src/core/search.cc, std::sort over scored candidates) silently corrupt:
  //   - Both-infeasible configs compare by memory *overage* relative to their
  //     own limit, not by absolute peak memory. Each result carries its own
  //     `memory_limit` (a budget override may differ from device capacity),
  //     and comparing raw MaxMemory() against a result judged under a
  //     different limit ranks a barely-over config below a hugely-over one.
  //     Overage is also what Score() in src/core/search.cc uses, so the two
  //     orderings agree.
  //   - Equal overage is a genuine equivalence class: neither side is
  //     *strictly* better, so we return false rather than inventing a
  //     tie-break (first-found order stays deterministic).
  //   - A NaN iteration-time estimate compares as +inf (worst) via
  //     ComparableTime(); raw `NaN < x` is false both ways, which makes NaN
  //     incomparable to everything and breaks transitivity-of-equivalence.
  bool BetterThan(const PerfResult& other) const {
    if (oom != other.oom) {
      return !oom;
    }
    if (oom) {
      // Both infeasible: less over-memory is better.
      return MemoryOverage() < other.MemoryOverage();
    }
    return ComparableTime() < other.ComparableTime();
  }

  // How far the peak stage exceeds this result's own memory limit. Negative
  // for feasible configs (headroom).
  int64_t MemoryOverage() const { return MaxMemory() - memory_limit; }

  // iteration_time with NaN mapped to +inf so comparisons stay a strict weak
  // ordering (NaN estimates sort after every finite and +inf estimate).
  double ComparableTime() const {
    return std::isnan(iteration_time)
               ? std::numeric_limits<double>::infinity()
               : iteration_time;
  }

  // Re-judges feasibility against an overriding per-device memory budget
  // (SearchOptions::memory_budget_bytes). A budget of <= 0 keeps the verdict
  // the performance model issued against hardware capacity. Timing estimates
  // are unchanged: the budget constrains feasibility, not the simulation.
  void ApplyMemoryLimit(int64_t budget_bytes) {
    if (budget_bytes <= 0) {
      return;
    }
    memory_limit = budget_bytes;
    oom = MaxMemory() > budget_bytes;
  }

  int64_t MaxMemory() const {
    int64_t max_mem = 0;
    for (const StageUsage& s : stages) {
      max_mem = max_mem > s.memory_bytes ? max_mem : s.memory_bytes;
    }
    return max_mem;
  }

  std::string Summary() const;
};

}  // namespace aceso

#endif  // SRC_COST_RESOURCE_USAGE_H_
