// The model: a named chain of operators plus training hyper-parameters.
//
// Like the paper (and Alpa/Megatron's pipeline view), the graph is
// *sequential*: branches inside a layer (residual connections, attention
// heads) are folded into the constituent operators' cost quantities, and
// pipeline stages are contiguous ranges of this chain.

#ifndef SRC_IR_OP_GRAPH_H_
#define SRC_IR_OP_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/hw/gpu_spec.h"
#include "src/ir/operator.h"

namespace aceso {

class OpGraph {
 public:
  OpGraph() = default;
  OpGraph(std::string name, Precision precision, int64_t global_batch_size)
      : name_(std::move(name)),
        precision_(precision),
        global_batch_size_(global_batch_size) {}

  const std::string& name() const { return name_; }
  Precision precision() const { return precision_; }
  int64_t global_batch_size() const { return global_batch_size_; }
  void set_global_batch_size(int64_t batch) { global_batch_size_ = batch; }

  int num_ops() const { return static_cast<int>(ops_.size()); }
  const Operator& op(int index) const {
    return ops_.at(static_cast<size_t>(index));
  }
  const std::vector<Operator>& ops() const { return ops_; }

  void AddOp(Operator op) { ops_.push_back(std::move(op)); }

  // Total forward FLOPs per sample over all ops.
  double TotalFwdFlops() const;

  // Total parameter bytes over all ops.
  int64_t TotalParamBytes() const;

  // Total parameter count (elements), derived from the precision.
  int64_t TotalParamCount() const;

  // Sum of per-sample stored output activations over all ops.
  int64_t TotalActivationBytes() const;

  // One-line description for logs and bench tables.
  std::string Summary() const;

  // Semantic fingerprint of the model: precision, global batch size, and the
  // per-op cost quantities + tp options (Operator::Signature plus the
  // default partition dimension), in chain order. The *name* is excluded —
  // two differently named but structurally identical models search
  // identically, which is exactly what the serving plan cache (src/serve)
  // wants to key on. Each per-op term is Mix64-finalized before combining
  // (see src/common/hash.h on HashCombine's weak mixing).
  uint64_t SemanticFingerprint() const;

 private:
  std::string name_;
  Precision precision_ = Precision::kFp16;
  int64_t global_batch_size_ = 1;
  std::vector<Operator> ops_;
};

}  // namespace aceso

#endif  // SRC_IR_OP_GRAPH_H_
