#include "src/core/bottleneck.h"

#include <algorithm>
#include <numeric>

namespace aceso {
namespace {

// Heuristic-2 part 1: rank the stage's time resources by consumption
// proportion — the stage's consumption divided by the total consumption
// across all stages.
std::vector<Resource> RankTimeResources(const PerfResult& perf, int stage) {
  double comp_total = 0.0;
  double comm_total = 0.0;
  for (const StageUsage& s : perf.stages) {
    comp_total += s.comp_time + s.recompute_time;
    comm_total += s.comm_time;
  }
  const StageUsage& usage = perf.stages[static_cast<size_t>(stage)];
  const double comp_prop =
      comp_total > 0.0 ? (usage.comp_time + usage.recompute_time) / comp_total
                       : 0.0;
  const double comm_prop =
      comm_total > 0.0 ? usage.comm_time / comm_total : 0.0;
  if (comm_prop > comp_prop) {
    return {Resource::kCommunication, Resource::kComputation};
  }
  return {Resource::kComputation, Resource::kCommunication};
}

}  // namespace

std::vector<Bottleneck> OrderedBottlenecks(const PerfResult& perf) {
  const int p = static_cast<int>(perf.stages.size());
  std::vector<int> order(static_cast<size_t>(p));
  std::iota(order.begin(), order.end(), 0);

  std::vector<Bottleneck> out;
  out.reserve(static_cast<size_t>(p));
  if (perf.oom) {
    // Safety first: memory bottlenecks, largest consumption first.
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return perf.stages[static_cast<size_t>(a)].memory_bytes >
             perf.stages[static_cast<size_t>(b)].memory_bytes;
    });
    for (int s : order) {
      Bottleneck b;
      b.stage = s;
      b.memory_bound = true;
      b.resources = {Resource::kMemory};
      out.push_back(std::move(b));
    }
  } else {
    // Execution-time bottlenecks, longest stage first.
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      return perf.stages[static_cast<size_t>(a)].stage_time >
             perf.stages[static_cast<size_t>(b)].stage_time;
    });
    for (int s : order) {
      Bottleneck b;
      b.stage = s;
      b.memory_bound = false;
      b.resources = RankTimeResources(perf, s);
      out.push_back(std::move(b));
    }
  }
  return out;
}

}  // namespace aceso
