file(REMOVE_RECURSE
  "CMakeFiles/megatron_test.dir/megatron_test.cc.o"
  "CMakeFiles/megatron_test.dir/megatron_test.cc.o.d"
  "megatron_test"
  "megatron_test.pdb"
  "megatron_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/megatron_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
