#include "src/core/bottleneck.h"

#include <gtest/gtest.h>

namespace aceso {
namespace {

PerfResult MakePerf(std::vector<double> stage_times,
                    std::vector<int64_t> memories, int64_t limit) {
  PerfResult perf;
  perf.memory_limit = limit;
  for (size_t i = 0; i < stage_times.size(); ++i) {
    StageUsage usage;
    usage.stage_time = stage_times[i];
    usage.memory_bytes = memories[i];
    usage.comp_time = 1.0;
    usage.comm_time = 0.1;
    perf.stages.push_back(usage);
  }
  int64_t max_mem = 0;
  double max_time = -1;
  for (size_t i = 0; i < perf.stages.size(); ++i) {
    if (perf.stages[i].memory_bytes > max_mem) {
      max_mem = perf.stages[i].memory_bytes;
      perf.max_memory_stage = static_cast<int>(i);
    }
    if (perf.stages[i].stage_time > max_time) {
      max_time = perf.stages[i].stage_time;
      perf.slowest_stage = static_cast<int>(i);
    }
  }
  perf.iteration_time = max_time;
  perf.oom = max_mem > limit;
  return perf;
}

TEST(BottleneckTest, FeasibleConfigOrdersByStageTime) {
  const PerfResult perf = MakePerf({5.0, 9.0, 3.0}, {10, 10, 10}, 100);
  const auto bottlenecks = OrderedBottlenecks(perf);
  ASSERT_EQ(bottlenecks.size(), 3u);
  EXPECT_EQ(bottlenecks[0].stage, 1);
  EXPECT_EQ(bottlenecks[1].stage, 0);
  EXPECT_EQ(bottlenecks[2].stage, 2);
  EXPECT_FALSE(bottlenecks[0].memory_bound);
}

TEST(BottleneckTest, OomConfigOrdersByMemory) {
  // Heuristic-1 "safety first": OOM overrides time even when another stage
  // is slower.
  const PerfResult perf = MakePerf({9.0, 1.0}, {50, 200}, 100);
  const auto bottlenecks = OrderedBottlenecks(perf);
  ASSERT_EQ(bottlenecks.size(), 2u);
  EXPECT_EQ(bottlenecks[0].stage, 1);
  EXPECT_TRUE(bottlenecks[0].memory_bound);
  ASSERT_EQ(bottlenecks[0].resources.size(), 1u);
  EXPECT_EQ(bottlenecks[0].resources[0], Resource::kMemory);
}

TEST(BottleneckTest, TimeBottleneckRanksResourcesByProportion) {
  PerfResult perf = MakePerf({5.0, 2.0}, {10, 10}, 100);
  // Make stage 0 communication-heavy relative to the rest.
  perf.stages[0].comp_time = 1.0;
  perf.stages[0].comm_time = 3.0;
  perf.stages[1].comp_time = 4.0;
  perf.stages[1].comm_time = 0.1;
  const auto bottlenecks = OrderedBottlenecks(perf);
  ASSERT_EQ(bottlenecks[0].stage, 0);
  ASSERT_EQ(bottlenecks[0].resources.size(), 2u);
  EXPECT_EQ(bottlenecks[0].resources[0], Resource::kCommunication);
  EXPECT_EQ(bottlenecks[0].resources[1], Resource::kComputation);
}

TEST(BottleneckTest, ComputationFirstWhenDominant) {
  PerfResult perf = MakePerf({5.0, 2.0}, {10, 10}, 100);
  perf.stages[0].comp_time = 4.0;
  perf.stages[0].comm_time = 0.2;
  const auto bottlenecks = OrderedBottlenecks(perf);
  EXPECT_EQ(bottlenecks[0].resources[0], Resource::kComputation);
}

TEST(BottleneckTest, RecomputeTimeCountsAsComputation) {
  // The proportion is relative to the *other stages* (paper definition):
  // stage 0's comm share here is 1.0/1.1, so without recompute time the
  // communication resource would rank first; 40.0 of recompute time lifts
  // the computation share (40.5/45.5) above it.
  PerfResult perf = MakePerf({5.0, 2.0}, {10, 10}, 100);
  perf.stages[0].comp_time = 0.5;
  perf.stages[0].comm_time = 1.0;
  perf.stages[0].recompute_time = 40.0;
  const auto bottlenecks = OrderedBottlenecks(perf);
  EXPECT_EQ(bottlenecks[0].resources[0], Resource::kComputation);
}

TEST(BottleneckTest, SingleStage) {
  const PerfResult perf = MakePerf({5.0}, {10}, 100);
  const auto bottlenecks = OrderedBottlenecks(perf);
  ASSERT_EQ(bottlenecks.size(), 1u);
  EXPECT_EQ(bottlenecks[0].stage, 0);
}

TEST(ResourceNameTest, Names) {
  EXPECT_STREQ(ResourceName(Resource::kComputation), "computation");
  EXPECT_STREQ(ResourceName(Resource::kCommunication), "communication");
  EXPECT_STREQ(ResourceName(Resource::kMemory), "memory");
}

}  // namespace
}  // namespace aceso
