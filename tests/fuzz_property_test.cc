// Property/fuzz tests over synthetic random models: the validator, cost
// model, primitive applications, search, plan lowering, and runtime must
// hold their invariants on arbitrary (structurally valid) operator chains,
// not just the zoo's regular transformers and CNNs.

#include <gtest/gtest.h>

#include <cmath>

#include "src/aceso.h"
#include "src/ir/models/synthetic.h"

namespace aceso {
namespace {

class FuzzTest : public ::testing::TestWithParam<int> {
 protected:
  FuzzTest() : rng_(static_cast<uint64_t>(GetParam()) * 0x9E37 + 17) {}

  Rng rng_;
};

TEST_P(FuzzTest, EvenConfigsValidateAndEvaluate) {
  const OpGraph graph = models::SyntheticModel(rng_);
  const int gpus = 1 << rng_.NextInt(0, 4);  // 1..16 (one node block is 8)
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(gpus == 16 ? 16 : gpus);
  ProfileDatabase db(cluster, /*seed=*/GetParam());
  PerformanceModel model(&graph, cluster, &db);
  for (int stages = 1; stages <= std::min(cluster.num_gpus(), 4); ++stages) {
    auto config = MakeEvenConfig(graph, cluster, stages, 1);
    if (!config.ok()) {
      continue;  // stage count not constructible for this model
    }
    ASSERT_TRUE(config->Validate(graph, cluster).ok());
    const PerfResult perf = model.Evaluate(*config);
    EXPECT_TRUE(std::isfinite(perf.iteration_time));
    EXPECT_GT(perf.iteration_time, 0.0);
    for (const StageUsage& usage : perf.stages) {
      EXPECT_GE(usage.fwd_time, 0.0);
      EXPECT_GE(usage.comm_time, 0.0);
      EXPECT_GT(usage.memory_bytes, 0);
    }
  }
}

TEST_P(FuzzTest, AllPrimitiveCandidatesStayValid) {
  const OpGraph graph = models::SyntheticModel(rng_);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  ProfileDatabase db(cluster, /*seed=*/GetParam());
  PerformanceModel model(&graph, cluster, &db);
  auto config = MakeEvenConfig(graph, cluster, std::min(4, graph.num_ops()),
                               1);
  if (!config.ok()) {
    GTEST_SKIP() << config.status().ToString();
  }
  const PerfResult perf = model.Evaluate(*config);
  for (int kind = 0; kind < kNumPrimitives; ++kind) {
    for (int stage = 0; stage < config->num_stages(); ++stage) {
      for (const Candidate& candidate : GeneratePrimitiveCandidates(
               model, *config, perf, static_cast<PrimitiveKind>(kind),
               stage)) {
        EXPECT_TRUE(candidate.config.Validate(graph, cluster).ok())
            << candidate.description;
        EXPECT_EQ(candidate.config.TotalDevices(), cluster.num_gpus());
      }
    }
  }
}

TEST_P(FuzzTest, SearchProducesValidFeasibleOrNothing) {
  const OpGraph graph = models::SyntheticModel(rng_);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster, /*seed=*/GetParam());
  PerformanceModel model(&graph, cluster, &db);
  SearchOptions options;
  options.time_budget_seconds = 0.15;
  options.max_stages = 4;
  const SearchResult result = AcesoSearch(model, options);
  if (result.found) {
    EXPECT_TRUE(result.best.config.Validate(graph, cluster).ok());
    for (const ScoredConfig& top : result.top_configs) {
      EXPECT_FALSE(top.perf.oom);
      EXPECT_TRUE(top.config.Validate(graph, cluster).ok());
    }
  }
}

TEST_P(FuzzTest, PlanLowersAndVerifies) {
  const OpGraph graph = models::SyntheticModel(rng_);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  for (int stages = 1; stages <= 4; ++stages) {
    auto config = MakeEvenConfig(graph, cluster, stages, 2);
    if (!config.ok()) {
      continue;
    }
    const ExecutionPlan plan = ExecutionPlan::Lower(graph, *config);
    EXPECT_EQ(plan.num_devices(), cluster.num_gpus());
    EXPECT_TRUE(plan.Verify().ok()) << "stages=" << stages;
  }
}

TEST_P(FuzzTest, RuntimeAgreesWithModelWithinBand) {
  const OpGraph graph = models::SyntheticModel(rng_);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster, /*seed=*/GetParam());
  PerformanceModel model(&graph, cluster, &db);
  PipelineExecutor executor(&model);
  auto config = MakeEvenConfig(graph, cluster, 2, 2);
  if (!config.ok()) {
    GTEST_SKIP() << config.status().ToString();
  }
  const PerfResult predicted = model.Evaluate(*config);
  ExecutionOptions exec;
  exec.simulate_memory = false;  // synthetic models may not fit 30 GB
  const ExecutionResult actual = executor.Execute(*config, exec);
  EXPECT_GT(actual.iteration_seconds, predicted.iteration_time * 0.5);
  EXPECT_LT(actual.iteration_seconds, predicted.iteration_time * 2.0);
}

TEST_P(FuzzTest, RandomZeroFlagsNeverIncreaseMemory) {
  const OpGraph graph = models::SyntheticModel(rng_);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  ProfileDatabase db(cluster, /*seed=*/GetParam());
  PerformanceModel model(&graph, cluster, &db);
  auto config = MakeEvenConfig(graph, cluster, 2, 8);
  if (!config.ok()) {
    GTEST_SKIP() << config.status().ToString();
  }
  const PerfResult plain = model.Evaluate(*config);
  ParallelConfig flagged = *config;
  for (int i = 0; i < graph.num_ops(); ++i) {
    flagged.MutableOpSettings(i).zero_opt = rng_.NextBool(0.5);
  }
  const PerfResult sharded = model.Evaluate(flagged);
  EXPECT_LE(sharded.MaxMemory(), plain.MaxMemory());
  EXPECT_TRUE(std::isfinite(sharded.iteration_time));
}

TEST_P(FuzzTest, ConfigIoRoundTripsOnRandomModels) {
  const OpGraph graph = models::SyntheticModel(rng_);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  auto config = MakeEvenConfig(graph, cluster, 2, 4);
  if (!config.ok()) {
    GTEST_SKIP() << config.status().ToString();
  }
  // Random recompute flags.
  for (int i = 0; i < graph.num_ops(); ++i) {
    config->MutableOpSettings(i).recompute = rng_.NextBool(0.3);
  }
  auto parsed = ParseConfig(SerializeConfig(*config, graph.name()), graph);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->SemanticHash(graph), config->SemanticHash(graph));
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Range(1, 13));

}  // namespace
}  // namespace aceso
