file(REMOVE_RECURSE
  "CMakeFiles/exp12_zero_extension.dir/bench/bench_util.cc.o"
  "CMakeFiles/exp12_zero_extension.dir/bench/bench_util.cc.o.d"
  "CMakeFiles/exp12_zero_extension.dir/bench/exp12_zero_extension.cc.o"
  "CMakeFiles/exp12_zero_extension.dir/bench/exp12_zero_extension.cc.o.d"
  "bench/exp12_zero_extension"
  "bench/exp12_zero_extension.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp12_zero_extension.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
