// Event-driven HTTP/1.1 transport for the planning daemon (DESIGN.md §16).
//
// The repo carries no networking dependency, so this is a self-contained
// epoll reactor over POSIX sockets: one blocking acceptor thread plus N
// event-loop workers, each owning an epoll instance and the connections
// assigned to it (round-robin). Connections are non-blocking with a
// per-connection incremental parser state machine, so a slow or hostile
// client never pins a worker: partially received requests sit in the
// connection's buffer until more bytes arrive, and idle/read deadlines
// evict connections that stall.
//
// Framing (the same strict rules PR 8 hardened — digit-only Content-Length,
// overflow rejected against the body cap):
//
//   * Respond()/RespondParts() — complete body, Content-Length framed, and
//     the connection stays open for the next request (HTTP/1.1 keep-alive;
//     pipelined requests on one connection are answered in order). The
//     parts variant scatter-gathers head + shared middle + tail with
//     writev(), so a pre-serialized cached payload goes out with zero
//     copies into the response buffer.
//   * BeginStream() + WriteChunk() — headers with `Connection: close` and
//     no Content-Length; the body is whatever the handler writes until it
//     returns, and the connection close delimits it. (No chunked encoding:
//     every client the repo ships — HttpClient below, curl, the bench —
//     handles close-delimited bodies, and the framing stays greppable on
//     the wire.) Streams are written synchronously from the handler.
//
// Handlers run synchronously on the event-loop worker that owns the
// connection. That is the right trade for the daemon's workload: the
// dominant request is a plan-cache hit answered in microseconds, and the
// rare search-bound request is already bounded by the service's admission
// control. Stop() drains: it joins the acceptor and every worker, so no
// handler can touch freed server state after Stop() returns (the PR-7
// thread-per-connection server detached its handler threads, which could
// outlive Stop() and notify a destroyed condition variable).

#ifndef SRC_SERVE_HTTP_H_
#define SRC_SERVE_HTTP_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace aceso {
namespace serve {

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // path + query, verbatim
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;
};

// The reason phrase for a status code this server emits (400, 404, ...).
const char* HttpStatusText(int code);

// Reactor tuning knobs. The defaults fit the daemon; tests shrink the
// limits and timeouts to exercise the eviction paths deterministically.
struct HttpServerOptions {
  int num_workers = 2;  // event-loop workers (>= 1)
  // Deadline for a keep-alive connection with no request in progress.
  double idle_timeout_seconds = 30.0;
  // Deadline for finishing a partially received request head or body.
  double read_timeout_seconds = 30.0;
  // Per-write stall bound for streamed responses and response flushes that
  // outlive the event loop's non-blocking budget.
  double write_timeout_seconds = 30.0;
  size_t max_header_bytes = 64 * 1024;
  size_t max_body_bytes = 8 * 1024 * 1024;
};

// Monotonic io-layer counters (operator- attributes deltas, like every
// stats struct in the repo). `keepalive_reuses` counts requests served on a
// connection that had already served one, so
// requests_served == keepalive_reuses + <connections that served >= 1>.
struct HttpServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_closed = 0;
  int64_t requests_served = 0;
  int64_t keepalive_reuses = 0;
  int64_t bytes_in = 0;
  int64_t bytes_out = 0;
  int64_t timeout_evictions = 0;  // idle/read deadline expiries
  int64_t parse_errors = 0;       // malformed requests answered with a 400

  HttpServerStats operator-(const HttpServerStats& other) const;
};

class HttpServer;

// Per-connection response channel handed to the handler. Exactly one of
// Respond / RespondParts / BeginStream may be called, once. Respond and
// RespondParts fill the connection's output buffers; the event loop flushes
// them (possibly across several writability rounds). BeginStream/WriteChunk
// write synchronously from the handler.
class HttpResponseWriter {
 public:
  // Complete response, Content-Length framed, keep-alive eligible.
  void Respond(int status, std::string_view content_type,
               std::string_view body);

  // Scatter-gather variant: the body on the wire is head + *middle + tail
  // (middle may be null). The middle buffer is not copied — the connection
  // holds the shared_ptr until the bytes are flushed, which is what makes
  // zero-serialization cache hits possible (DESIGN.md §16).
  void RespondParts(int status, std::string_view content_type,
                    std::string_view head,
                    std::shared_ptr<const std::string> middle,
                    std::string_view tail);

  // Starts a close-delimited stream. Returns false when the client is gone.
  bool BeginStream(int status, std::string_view content_type);
  // Appends raw bytes to a started stream. Returns false once the client
  // disconnects (callers should stop producing).
  bool WriteChunk(std::string_view data);

  bool responded() const;

 private:
  friend class HttpServer;
  HttpResponseWriter(HttpServer* server, void* conn)
      : server_(server), conn_(conn) {}

  HttpServer* server_;
  void* conn_;  // HttpServer::Conn, opaque here
};

using HttpHandler =
    std::function<void(const HttpRequest&, HttpResponseWriter&)>;

// The epoll reactor. Start binds, spawns the acceptor and the event-loop
// workers; Stop (also run by the destructor) closes the listener, wakes the
// workers, and joins everything — in-flight handlers finish and their
// responses flush before Stop returns.
class HttpServer {
 public:
  HttpServer();
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // `port` 0 binds an ephemeral port (read it back with port()). `host`
  // should stay "127.0.0.1": the daemon speaks plaintext with no auth.
  Status Start(const std::string& host, int port, HttpHandler handler,
               HttpServerOptions options = {});
  void Stop();

  // The bound port (after a successful Start).
  int port() const { return port_; }

  HttpServerStats stats() const;

 private:
  friend class HttpResponseWriter;
  struct Conn;
  struct Worker;

  void AcceptLoop();
  void WorkerLoop(Worker* worker);
  // Advances the connection's parser over buffered input, dispatching every
  // complete request. Returns false when the connection must close.
  bool ProcessInput(Worker* worker, Conn* conn);
  bool DispatchRequest(Worker* worker, Conn* conn);
  // Non-blocking flush of the pending response. Returns false on a dead
  // peer; *done is true once every pending byte is out.
  bool FlushOutput(Conn* conn, bool* done);
  void CloseConn(Worker* worker, Conn* conn);
  bool SendNow(Conn* conn, std::string_view data);  // blocking (streams)

  int listen_fd_ = -1;
  int port_ = 0;
  HttpHandler handler_;
  HttpServerOptions options_;
  std::thread accept_thread_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> next_worker_{0};

  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> connections_closed_{0};
  std::atomic<int64_t> requests_served_{0};
  std::atomic<int64_t> keepalive_reuses_{0};
  std::atomic<int64_t> bytes_in_{0};
  std::atomic<int64_t> bytes_out_{0};
  std::atomic<int64_t> timeout_evictions_{0};
  std::atomic<int64_t> parse_errors_{0};
};

// A parsed HTTP response, shared by every client below.
struct HttpResponse {
  int status_code = 0;
  std::string content_type;
  std::string body;
};

// Blocking HTTP client over one persistent keep-alive connection: Call()
// sends a request and reads the Content-Length framed response, leaving the
// connection open for the next Call. A `Connection: close` response (or a
// response with no Content-Length) is read to EOF and the next Call
// reconnects transparently; a connection the server idle-closed between
// calls is retried once. Not thread-safe — one client per thread.
class HttpClient {
 public:
  HttpClient(std::string host, int port, double timeout_seconds = 120.0);
  ~HttpClient();

  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  StatusOr<HttpResponse> Call(const std::string& method,
                              const std::string& path,
                              const std::string& body);

  bool connected() const { return fd_ >= 0; }
  int64_t reconnects() const { return reconnects_; }

 private:
  Status EnsureConnected();
  void Disconnect();
  StatusOr<HttpResponse> CallOnce(const std::string& method,
                                  const std::string& path,
                                  const std::string& body,
                                  bool* retry_safe);

  std::string host_;
  int port_;
  double timeout_seconds_;
  int fd_ = -1;
  int64_t reconnects_ = 0;  // reconnections after the first connect
  std::string rbuf_;        // bytes read past the previous response
};

// One-shot call used by the tests and curl-style tooling. Sends a single
// request with `Connection: close` and reads the response to EOF, so it
// handles both framed and streamed bodies; for a streamed response the
// returned body is the concatenation of every chunk.
StatusOr<HttpResponse> HttpCall(const std::string& host, int port,
                                const std::string& method,
                                const std::string& path,
                                const std::string& body,
                                double timeout_seconds = 120.0);

// Streaming client variant: `on_line` is invoked for every complete
// '\n'-terminated line of the response body as it arrives (NDJSON framing);
// the returned HttpResponse carries the final line count in body (empty) and
// the status line. Used to consume streamed plan requests.
StatusOr<HttpResponse> HttpCallStreaming(
    const std::string& host, int port, const std::string& method,
    const std::string& path, const std::string& body,
    const std::function<void(std::string_view line)>& on_line,
    double timeout_seconds = 120.0);

}  // namespace serve
}  // namespace aceso

#endif  // SRC_SERVE_HTTP_H_
