// Exp#4 — exploration efficiency vs a dynamic-programming solver
// (paper Figure 10).
//
// Runs the pruned-DP reference solver and Aceso on GPT-3 2.6B and 6.7B and
// compares (a) the number of configurations each explores and (b) the
// actual throughput of the configurations they find, executed in the
// simulated runtime.
//
// Paper claims to reproduce in shape: the DP explores on the order of 10^7
// configurations while Aceso explores ~1% of that, finding configurations
// of equal or slightly better executed quality.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace aceso;
  using namespace aceso::bench;
  PrintHeader("Exp#4: exploration efficiency vs DP (Figure 10)",
              "DP explores ~10^7 configurations; Aceso explores ~1% of that "
              "with equal-or-better executed throughput");

  struct Setting {
    double size;
    int gpus;
  };
  std::vector<Setting> settings = {{2.6, 8}, {6.7, 16}};
  if (QuickMode()) {
    settings = {{0.35, 4}};
  }

  TablePrinter table({"setting", "system", "configs explored", "ratio",
                      "pred iter(s)", "actual samples/s"});
  for (const Setting& setting : settings) {
    char size_buf[32];
    std::snprintf(size_buf, sizeof(size_buf), "%g", setting.size);
    const std::string name = std::string("gpt3-") + size_buf + "b";
    Workload workload(name, setting.gpus);
    const std::string tag = name + " @" + std::to_string(setting.gpus) + "gpu";

    const BaselineResult dp = DpSolverSearch(workload.model());
    const double dp_throughput =
        dp.found ? workload.MeasureThroughput(dp.best.config) : 0.0;

    SearchOptions options = DefaultSearchOptions();
    const SearchResult aceso = AcesoSearch(workload.model(), options);
    const double aceso_throughput =
        aceso.found ? workload.MeasureThroughput(aceso.best.config) : 0.0;

    table.AddRow({tag, "DP", std::to_string(dp.configs_explored), "1.00",
                  dp.found ? FormatDouble(dp.best.perf.iteration_time, 2)
                           : "x",
                  FormatDouble(dp_throughput, 1)});
    const double ratio =
        dp.configs_explored > 0
            ? static_cast<double>(aceso.stats.configs_explored) /
                  static_cast<double>(dp.configs_explored)
            : 0.0;
    table.AddRow({tag, "Aceso", std::to_string(aceso.stats.configs_explored),
                  FormatDouble(ratio, 4),
                  aceso.found
                      ? FormatDouble(aceso.best.perf.iteration_time, 2)
                      : "x",
                  FormatDouble(aceso_throughput, 1)});
  }
  table.Print(std::cout);
  return 0;
}
