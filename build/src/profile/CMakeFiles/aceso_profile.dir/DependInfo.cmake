
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/profile/profile_db.cc" "src/profile/CMakeFiles/aceso_profile.dir/profile_db.cc.o" "gcc" "src/profile/CMakeFiles/aceso_profile.dir/profile_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/aceso_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/aceso_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/aceso_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
