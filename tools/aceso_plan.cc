// aceso_plan: lower a saved configuration to an execution plan and run it in
// the simulated runtime — or, with --remote, ask a running aceso_serve
// daemon to search one.
//
//   aceso_plan --model gpt3-1.3b --gpus 8 --config config.txt
//              [--dump-device N] [--timeline] [--trace out.json]
//   aceso_plan --remote 127.0.0.1:8700 --model gpt3-1.3b --gpus 8
//              [--budget S] [--max-evals N] [--seed N] [--out config.txt]
//              [--frontier] [--memory-budgets GIB[,GIB...]]
//   aceso_plan --remote 127.0.0.1:8700 --stats
//
// Remote mode POSTs a plan request (DESIGN.md §14) and prints the daemon's
// plan summary; --out saves the returned config text in the same format
// LoadConfigFromFile reads, so a remote answer can be lowered locally with
// a second, non-remote invocation. --frontier asks the daemon to track the
// throughput–memory Pareto frontier (DESIGN.md §15) and prints it;
// --memory-budgets runs a budget sweep, answering every listed per-device
// budget (GiB) from one frontier — against a warm daemon, without a search.
// --stats fetches /stats and pretty-prints the daemon's counters (including
// the §17 neighbor-seeding counters) instead of requiring raw curl.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "src/aceso.h"
#include "tools/cli_flags.h"
#include "tools/tool_common.h"

namespace {

struct Args {
  std::string model = "gpt3-1.3b";
  int gpus = 8;
  std::string config_path;
  int dump_device = -1;
  bool timeline = false;
  std::string trace_path;
  // Remote mode.
  std::string remote;  // "host:port"; empty = local
  double budget = 2.0;
  int64_t max_evals = 0;
  uint64_t seed = 20240422;
  std::string out;
  bool frontier = false;
  std::string memory_budgets;  // comma-separated per-device budgets in GiB
  bool stats = false;          // fetch and pretty-print /stats instead
};

void PrintUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --model NAME --gpus N --config FILE "
               "[--dump-device N] [--timeline] [--trace FILE]\n"
               "       %s --remote HOST:PORT --model NAME --gpus N "
               "[--budget S] [--max-evals N] [--seed N] [--out FILE]\n"
               "                  [--frontier] [--memory-budgets GIB[,GIB...]]\n"
               "       %s --remote HOST:PORT --stats\n"
               "%s",
               argv0, argv0, argv0, aceso::tools::ZooUsageLines());
}

bool ParseArgs(int argc, char** argv, Args& args) {
  using aceso::cli::ParseInt;
  using aceso::cli::ParsePositiveDouble;
  using aceso::cli::ParsePositiveInt;
  using aceso::cli::ParseUint64;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--model") {
      const char* v = next();
      if (v == nullptr) return false;
      args.model = v;
    } else if (flag == "--gpus") {
      if (!ParsePositiveInt("--gpus", next(), &args.gpus)) return false;
    } else if (flag == "--config") {
      const char* v = next();
      if (v == nullptr) return false;
      args.config_path = v;
    } else if (flag == "--dump-device") {
      if (!ParseInt("--dump-device", next(), &args.dump_device)) return false;
    } else if (flag == "--timeline") {
      args.timeline = true;
    } else if (flag == "--trace") {
      const char* v = next();
      if (v == nullptr) return false;
      args.trace_path = v;
    } else if (flag == "--remote") {
      const char* v = next();
      if (v == nullptr) return false;
      args.remote = v;
    } else if (flag == "--budget") {
      if (!ParsePositiveDouble("--budget", next(), &args.budget)) return false;
    } else if (flag == "--max-evals") {
      uint64_t evals = 0;
      if (!ParseUint64("--max-evals", next(), &evals)) return false;
      args.max_evals = static_cast<int64_t>(evals);
    } else if (flag == "--seed") {
      if (!ParseUint64("--seed", next(), &args.seed)) return false;
    } else if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args.out = v;
    } else if (flag == "--frontier") {
      args.frontier = true;
    } else if (flag == "--memory-budgets") {
      const char* v = next();
      if (v == nullptr) return false;
      args.memory_budgets = v;
    } else if (flag == "--stats") {
      args.stats = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return !args.remote.empty() || !args.config_path.empty();
}

// Parses a comma-separated list of per-device budgets in GiB into bytes.
// False on an empty element or a non-positive value.
bool ParseBudgetsGiB(const std::string& spec, std::vector<int64_t>* out) {
  size_t start = 0;
  while (start <= spec.size()) {
    const size_t comma = spec.find(',', start);
    const std::string item = spec.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    double gib = 0.0;
    if (!aceso::cli::ParsePositiveDouble("--memory-budgets", item.c_str(),
                                         &gib)) {
      return false;
    }
    out->push_back(static_cast<int64_t>(gib * 1024.0 * 1024.0 * 1024.0));
    if (comma == std::string::npos) {
      break;
    }
    start = comma + 1;
  }
  return !out->empty();
}

// Splits "host:port"; false on a malformed spec.
bool SplitHostPort(const std::string& spec, std::string* host, int* port) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == spec.size()) {
    return false;
  }
  *host = spec.substr(0, colon);
  return aceso::cli::ParsePositiveInt("--remote port",
                                      spec.c_str() + colon + 1, port);
}

// --stats: GET /stats and pretty-print the daemon's counter object, one
// counter per line in the daemon's own (insertion) order — the JSON parser
// preserves member order, so related counters (cache_*, seed_*) stay
// adjacent the way StatsJson emits them.
int RunStats(aceso::serve::HttpClient& client) {
  using namespace aceso;
  auto response = client.Call("GET", "/stats", "");
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }
  auto doc = JsonParse(response->body);
  if (!doc.ok() || !doc->is_object()) {
    std::fprintf(stderr, "malformed /stats response: %s\n",
                 response->body.c_str());
    return 1;
  }
  size_t width = 0;
  for (const auto& [key, value] : doc->members()) {
    width = std::max(width, key.size());
  }
  std::printf("daemon stats:\n");
  for (const auto& [key, value] : doc->members()) {
    if (value.is_number() && value.number_is_int()) {
      std::printf("  %-*s %lld\n", static_cast<int>(width), key.c_str(),
                  static_cast<long long>(value.int_value()));
    } else if (value.is_number()) {
      std::printf("  %-*s %g\n", static_cast<int>(width), key.c_str(),
                  value.number_value());
    } else if (value.is_string()) {
      std::printf("  %-*s %s\n", static_cast<int>(width), key.c_str(),
                  value.string_value().c_str());
    }
  }
  return 0;
}

int RunRemote(const Args& args) {
  using namespace aceso;
  std::string host;
  int port = 0;
  if (!SplitHostPort(args.remote, &host, &port)) {
    std::fprintf(stderr, "--remote: expected HOST:PORT, got \"%s\"\n",
                 args.remote.c_str());
    return 2;
  }
  if (args.stats) {
    serve::HttpClient client(host, port);
    return RunStats(client);
  }

  std::string body = "{\"model\":\"" + JsonEscape(args.model) + "\"";
  body += ",\"gpus\":" + std::to_string(args.gpus);
  body += ",\"budget_seconds\":";
  AppendJsonNumber(body, args.budget);
  body += ",\"max_evaluations\":" + std::to_string(args.max_evals);
  body += ",\"seed\":" + std::to_string(args.seed);
  if (args.frontier) {
    body += ",\"frontier\":true";
  }
  if (!args.memory_budgets.empty()) {
    std::vector<int64_t> budgets;
    if (!ParseBudgetsGiB(args.memory_budgets, &budgets)) {
      std::fprintf(stderr,
                   "--memory-budgets: expected GIB[,GIB...], got \"%s\"\n",
                   args.memory_budgets.c_str());
      return 2;
    }
    body += ",\"memory_budgets\":[";
    for (size_t i = 0; i < budgets.size(); ++i) {
      if (i > 0) body += ",";
      body += std::to_string(budgets[i]);
    }
    body += "]";
  }
  body += ",\"client\":\"aceso_plan\"}";

  // Keep-alive client: this CLI sends one request today, but anything that
  // loops over models/budgets through this path reuses the connection.
  serve::HttpClient client(host, port);
  auto response = client.Call("POST", "/plan", body);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }
  auto doc = JsonParse(response->body);
  if (!doc.ok()) {
    std::fprintf(stderr, "malformed daemon response: %s\n",
                 doc.status().ToString().c_str());
    return 1;
  }
  const JsonValue* status = doc->Find("status");
  if (status == nullptr || !status->is_string() ||
      status->string_value() != "ok") {
    const JsonValue* message = doc->Find("message");
    std::fprintf(stderr, "daemon error (HTTP %d): %s\n",
                 response->status_code,
                 message != nullptr && message->is_string()
                     ? message->string_value().c_str()
                     : response->body.c_str());
    return 1;
  }

  const JsonValue* cache = doc->Find("cache");
  const JsonValue* payload = doc->Find("payload");
  const char* cache_kind = cache != nullptr && cache->is_string()
                               ? cache->string_value().c_str()
                               : "?";

  // A budget sweep answers with a table derived from the frontier instead of
  // a single plan.
  if (const JsonValue* sweep = payload ? payload->Find("sweep") : nullptr) {
    if (!sweep->is_array()) {
      std::fprintf(stderr, "malformed daemon response: bad sweep\n");
      return 1;
    }
    std::printf("budget sweep (%s), %zu budgets:\n", cache_kind,
                sweep->size());
    for (size_t i = 0; i < sweep->size(); ++i) {
      const JsonValue& entry = sweep->item(i);
      const JsonValue* budget = entry.Find("memory_budget_bytes");
      const JsonValue* entry_found = entry.Find("found");
      const double budget_gib =
          budget != nullptr && budget->is_number()
              ? budget->number_value() / (1024.0 * 1024.0 * 1024.0)
              : 0.0;
      if (entry_found == nullptr || !entry_found->is_bool() ||
          !entry_found->bool_value()) {
        std::printf("  %7.1f GiB: no archived config fits\n", budget_gib);
        continue;
      }
      const JsonValue* time = entry.Find("iteration_time");
      const JsonValue* mem = entry.Find("peak_memory_bytes");
      const JsonValue* cost = entry.Find("cost_per_step_usd");
      const JsonValue* stages = entry.Find("num_stages");
      std::printf(
          "  %7.1f GiB: %8.1f ms/iter, peak %6.1f GiB, $%.4f/step, "
          "%lld stages\n",
          budget_gib,
          time != nullptr && time->is_number() ? time->number_value() * 1e3
                                               : 0.0,
          mem != nullptr && mem->is_number()
              ? mem->number_value() / (1024.0 * 1024.0 * 1024.0)
              : 0.0,
          cost != nullptr && cost->is_number() ? cost->number_value() : 0.0,
          stages != nullptr && stages->is_number()
              ? static_cast<long long>(stages->int_value())
              : 0LL);
    }
    return 0;
  }

  const JsonValue* found = payload ? payload->Find("found") : nullptr;
  if (payload == nullptr || found == nullptr || !found->is_bool()) {
    std::fprintf(stderr, "malformed daemon response: missing payload\n");
    return 1;
  }
  if (!found->bool_value()) {
    std::fprintf(stderr, "no feasible configuration found\n");
    return 1;
  }
  const JsonValue* plan = payload->Find("plan");
  const JsonValue* summary = plan ? plan->Find("summary") : nullptr;
  std::printf("plan (%s): %s\n", cache_kind,
              summary != nullptr && summary->is_string()
                  ? summary->string_value().c_str()
                  : "(no summary)");

  // With --frontier the payload embeds the Pareto archive; print it as a
  // memory-ascending table (time is then descending by the invariant).
  if (const JsonValue* frontier = payload->Find("frontier")) {
    const JsonValue* points = frontier->Find("points");
    if (points != nullptr && points->is_array()) {
      std::printf("frontier: %zu points (memory ascending)\n", points->size());
      for (size_t i = 0; i < points->size(); ++i) {
        const JsonValue& p = points->item(i);
        const JsonValue* time = p.Find("iteration_time");
        const JsonValue* mem = p.Find("peak_memory_bytes");
        const JsonValue* cost = p.Find("cost_per_step_usd");
        const JsonValue* stages = p.Find("num_stages");
        std::printf(
            "  %8.1f ms/iter @ %6.1f GiB, $%.4f/step, %lld stages\n",
            time != nullptr && time->is_number() ? time->number_value() * 1e3
                                                 : 0.0,
            mem != nullptr && mem->is_number()
                ? mem->number_value() / (1024.0 * 1024.0 * 1024.0)
                : 0.0,
            cost != nullptr && cost->is_number() ? cost->number_value() : 0.0,
            stages != nullptr && stages->is_number()
                ? static_cast<long long>(stages->int_value())
                : 0LL);
      }
    }
  }

  if (!args.out.empty()) {
    const JsonValue* config_text = plan ? plan->Find("config_text") : nullptr;
    if (config_text == nullptr || !config_text->is_string()) {
      std::fprintf(stderr, "daemon response carries no config_text\n");
      return 1;
    }
    std::ofstream out(args.out, std::ios::binary);
    out << config_text->string_value();
    if (!out.good()) {
      std::fprintf(stderr, "failed to write %s\n", args.out.c_str());
      return 1;
    }
    std::printf("saved to %s\n", args.out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aceso;
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    PrintUsage(argv[0]);
    return 2;
  }
  if (!args.remote.empty()) {
    return RunRemote(args);
  }

  auto loaded = tools::LoadModelAndCluster(args.model, args.gpus);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  OpGraph& graph = loaded->graph;
  const ClusterSpec& cluster = loaded->cluster;
  auto config = LoadConfigFromFile(args.config_path, graph);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const Status valid = config->Validate(graph, cluster);
  if (!valid.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n",
                 valid.ToString().c_str());
    return 1;
  }

  // Lower and verify the plan.
  const ExecutionPlan plan = ExecutionPlan::Lower(graph, *config);
  const Status plan_ok = plan.Verify();
  if (!plan_ok.ok()) {
    std::fprintf(stderr, "plan verification failed: %s\n",
                 plan_ok.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", plan.Summary().c_str());
  if (args.dump_device >= 0 && args.dump_device < plan.num_devices()) {
    std::printf("%s\n", plan.DumpDevice(args.dump_device).c_str());
  }

  // Execute in the simulated runtime.
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);
  PipelineExecutor executor(&model);
  ExecutionOptions options;
  options.render_timeline = args.timeline;
  options.chrome_trace_path = args.trace_path;
  const ExecutionResult run = executor.Execute(*config, options);

  std::printf("actual: %s iteration %s, %.1f samples/s, %.2f TFLOPS/GPU\n",
              run.oom ? "OOM," : "", FormatSeconds(run.iteration_seconds).c_str(),
              run.Throughput(graph.global_batch_size()),
              executor.EffectiveTflopsPerGpu(run));
  if (args.timeline) {
    std::printf("\n%s", run.ascii_timeline.c_str());
  }
  if (!args.trace_path.empty()) {
    std::printf("chrome trace written to %s\n", args.trace_path.c_str());
  }
  return 0;
}
