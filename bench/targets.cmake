# Benchmark harness: one binary per paper table/figure (see DESIGN.md §4),
# plus google-benchmark micro-benchmarks. All binaries are written straight
# into ${CMAKE_BINARY_DIR}/bench.

function(aceso_add_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc
                 ${CMAKE_SOURCE_DIR}/bench/bench_util.cc)
  target_link_libraries(${name} PRIVATE aceso)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

function(aceso_add_micro_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cc)
  target_link_libraries(${name} PRIVATE aceso benchmark::benchmark)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

aceso_add_bench(exp01_throughput)
aceso_add_bench(exp02_search_cost)
aceso_add_bench(exp03_scalability_1k)
aceso_add_bench(exp04_exploration)
aceso_add_bench(exp05_heuristics)
aceso_add_bench(exp06_maxhops)
aceso_add_bench(exp07_init_robustness)
aceso_add_bench(exp08_time_accuracy)
aceso_add_bench(exp09_memory_accuracy)
aceso_add_bench(exp10_primitive_table)
aceso_add_bench(exp11_ablation)
aceso_add_bench(exp12_zero_extension)
aceso_add_bench(exp13_frontier)
aceso_add_bench(exp14_warm_seed)

aceso_add_micro_bench(micro_perf_model)
aceso_add_micro_bench(micro_search)
aceso_add_micro_bench(micro_runtime)
