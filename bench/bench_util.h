// Shared scaffolding for the experiment harnesses: workload setup, the
// three search systems, execution, and paper-style reporting.
//
// Environment knobs (all optional):
//   ACESO_BENCH_BUDGET   search budget in seconds per setting (default 4.0)
//   ACESO_BENCH_QUICK    if set, shrink each experiment's setting list

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/aceso.h"

namespace aceso {
namespace bench {

// One model-on-cluster setting with everything needed to search and run.
class Workload {
 public:
  Workload(const std::string& model_name, int gpus);

  const OpGraph& graph() const { return graph_; }
  const ClusterSpec& cluster() const { return cluster_; }
  PerformanceModel& model() { return *model_; }
  PipelineExecutor& executor() { return *executor_; }
  const std::string& name() const { return name_; }

  // Runs `config` in the simulated runtime and returns samples/second
  // (0 when the execution OOMs).
  double MeasureThroughput(const ParallelConfig& config);

  // Effective TFLOPS/GPU of the last MeasureThroughput() call.
  double last_tflops() const { return last_tflops_; }
  bool last_oom() const { return last_oom_; }

 private:
  std::string name_;
  OpGraph graph_;
  ClusterSpec cluster_;
  std::unique_ptr<ProfileDatabase> db_;
  std::unique_ptr<PerformanceModel> model_;
  std::unique_ptr<PipelineExecutor> executor_;
  double last_tflops_ = 0.0;
  bool last_oom_ = false;
};

// Search budget from ACESO_BENCH_BUDGET (default 4 s).
double BenchBudgetSeconds();

// True when ACESO_BENCH_QUICK is set.
bool QuickMode();

// Paper model-size ladders (Table 2); in quick mode the list is truncated.
std::vector<double> GptSizes();
std::vector<double> T5Sizes();
std::vector<double> WrnSizes();

// Default SearchOptions for benches (budget from env, fixed seed).
SearchOptions DefaultSearchOptions();

// Prints the experiment banner.
void PrintHeader(const std::string& experiment, const std::string& claim);

// Formats `value/best` as a normalized throughput cell ("0.87x").
std::string Normalized(double value, double best);

// Prints a convergence trend as "t(s) -> predicted iteration time" rows,
// downsampled to at most `max_rows`.
void PrintConvergence(const std::string& label,
                      const std::vector<ConvergencePoint>& trend,
                      int max_rows = 12);

// The Figure-11 histogram inputs, extracted from a telemetry event stream
// (DESIGN.md §10): for every accepted iteration, the 1-based index of the
// bottleneck that yielded the improvement and the hop count of the
// improving primitive chain.
struct ImprovementHistograms {
  std::vector<int> bottleneck_attempts;
  std::vector<int> hops;
};
ImprovementHistograms ExtractImprovementHistograms(
    const std::vector<TelemetryEvent>& events);

}  // namespace bench
}  // namespace aceso

#endif  // BENCH_BENCH_UTIL_H_
