file(REMOVE_RECURSE
  "CMakeFiles/exp09_memory_accuracy.dir/bench/bench_util.cc.o"
  "CMakeFiles/exp09_memory_accuracy.dir/bench/bench_util.cc.o.d"
  "CMakeFiles/exp09_memory_accuracy.dir/bench/exp09_memory_accuracy.cc.o"
  "CMakeFiles/exp09_memory_accuracy.dir/bench/exp09_memory_accuracy.cc.o.d"
  "bench/exp09_memory_accuracy"
  "bench/exp09_memory_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp09_memory_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
