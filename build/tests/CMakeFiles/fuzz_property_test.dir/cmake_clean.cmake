file(REMOVE_RECURSE
  "CMakeFiles/fuzz_property_test.dir/fuzz_property_test.cc.o"
  "CMakeFiles/fuzz_property_test.dir/fuzz_property_test.cc.o.d"
  "fuzz_property_test"
  "fuzz_property_test.pdb"
  "fuzz_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fuzz_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
