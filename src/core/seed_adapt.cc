#include "src/core/seed_adapt.h"

#include <algorithm>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace aceso {
namespace {

int FloorPow2(int v) {
  int p = 1;
  while (p * 2 <= v) {
    p *= 2;
  }
  return p;
}

// Proportional boundary targets for the new op count, snapped to the nearest
// allowed cut. Processed left to right under hard bounds that keep every
// stage non-empty, so the result is always a strictly increasing cover of
// [0, n_new] regardless of what the cut mask allows.
std::vector<int> AdaptBoundaries(const std::vector<int>& old_bounds, int n_new,
                                 const std::vector<char>& cut_ok) {
  const int S = static_cast<int>(old_bounds.size()) - 1;
  const int n_old = old_bounds[static_cast<size_t>(S)];
  std::vector<int> bounds(static_cast<size_t>(S) + 1, 0);
  bounds[static_cast<size_t>(S)] = n_new;
  for (int i = 1; i < S; ++i) {
    const int lo = bounds[static_cast<size_t>(i) - 1] + 1;
    const int hi = n_new - (S - i);  // leave >= 1 op per remaining stage
    int proposed = static_cast<int>(
        (static_cast<int64_t>(old_bounds[static_cast<size_t>(i)]) * n_new +
         n_old / 2) /
        n_old);
    proposed = std::min(std::max(proposed, lo), hi);
    // Nearest allowed cut within [lo, hi]; ties resolve low (deterministic).
    int snapped = proposed;
    for (int delta = 0; delta <= hi - lo; ++delta) {
      const int down = proposed - delta;
      const int up = proposed + delta;
      if (down >= lo && cut_ok[static_cast<size_t>(down)]) {
        snapped = down;
        break;
      }
      if (up <= hi && cut_ok[static_cast<size_t>(up)]) {
        snapped = up;
        break;
      }
    }
    bounds[static_cast<size_t>(i)] = snapped;
  }
  return bounds;
}

// Re-splits the new cluster over the seed's stages: every stage starts at
// one device and the most under-target stage (relative to its proportional
// share of the new cluster) doubles until the cluster is exactly covered.
// Every count stays a power of two; first-best-wins tie-breaking keeps the
// split deterministic.
StatusOr<std::vector<int>> AdaptDevices(const std::vector<int>& old_devs,
                                        int gpus_new) {
  const int S = static_cast<int>(old_devs.size());
  if (S > gpus_new) {
    return NotFound("seed adapt: " + std::to_string(S) +
                    " stages exceed " + std::to_string(gpus_new) + " devices");
  }
  int gpus_old = 0;
  for (const int d : old_devs) {
    gpus_old += d;
  }
  std::vector<double> target(static_cast<size_t>(S), 1.0);
  for (int i = 0; i < S; ++i) {
    target[static_cast<size_t>(i)] =
        std::max(1.0, static_cast<double>(old_devs[static_cast<size_t>(i)]) *
                          gpus_new / gpus_old);
  }
  std::vector<int> devs(static_cast<size_t>(S), 1);
  int sum = S;
  while (sum < gpus_new) {
    int best = -1;
    double best_score = 0.0;
    for (int i = 0; i < S; ++i) {
      const int d = devs[static_cast<size_t>(i)];
      if (sum + d > gpus_new) {
        continue;  // doubling i would overshoot the cluster
      }
      const double score = d / target[static_cast<size_t>(i)];
      if (best < 0 || score < best_score) {
        best = i;
        best_score = score;
      }
    }
    if (best < 0) {
      return NotFound("seed adapt: no power-of-two device split reaches " +
                      std::to_string(gpus_new) + " devices over " +
                      std::to_string(S) + " stages");
    }
    sum += devs[static_cast<size_t>(best)];
    devs[static_cast<size_t>(best)] *= 2;
  }
  return devs;
}

}  // namespace

std::vector<char> SeedAdaptAllowedCuts(const OpGraph& graph,
                                       bool compress_runs) {
  const int n = graph.num_ops();
  std::vector<char> ok(static_cast<size_t>(n) + 1, 1);
  if (!compress_runs) {
    return ok;
  }
  constexpr int kMaxPeriod = 128;
  std::vector<uint64_t> sig(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    sig[static_cast<size_t>(i)] = graph.op(i).Signature();
  }
  int i = 0;
  while (i < n) {
    // Smallest period P with sig[i, i+P) == sig[i+P, i+2P).
    int period = 0;
    const int max_period = std::min((n - i) / 2, kMaxPeriod);
    for (int p = 1; p <= max_period; ++p) {
      if (std::equal(sig.begin() + i, sig.begin() + i + p,
                     sig.begin() + i + p)) {
        period = p;
        break;
      }
    }
    if (period == 0) {
      ++i;
      continue;
    }
    int reps = 2;
    while (i + (reps + 1) * period <= n &&
           std::equal(sig.begin() + i, sig.begin() + i + period,
                      sig.begin() + i + reps * period)) {
      ++reps;
    }
    for (int cut = i + 1; cut < i + reps * period; ++cut) {
      if ((cut - i) % period != 0) {
        ok[static_cast<size_t>(cut)] = 0;
      }
    }
    i += reps * period;
  }
  return ok;
}

StatusOr<SeedAdaptResult> AdaptSeedConfig(const PerformanceModel& model,
                                          const ParallelConfig& seed,
                                          const SeedAdaptOptions& options) {
  const OpGraph& graph = model.graph();
  const ClusterSpec& cluster = model.cluster();
  const int n_new = graph.num_ops();
  const int gpus_new = cluster.num_gpus();
  const int S = seed.num_stages();
  if (S < 1) {
    return NotFound("seed adapt: empty seed configuration");
  }
  if (S > n_new || S > gpus_new) {
    return NotFound("seed adapt: " + std::to_string(S) +
                    " seed stages do not fit " + std::to_string(n_new) +
                    " ops / " + std::to_string(gpus_new) + " devices");
  }

  std::vector<int> old_bounds(static_cast<size_t>(S) + 1, 0);
  std::vector<int> old_devs(static_cast<size_t>(S), 0);
  for (int s = 0; s < S; ++s) {
    const StageConfig& stage = seed.stage(s);
    old_bounds[static_cast<size_t>(s) + 1] = stage.end_op();
    old_devs[static_cast<size_t>(s)] = stage.num_devices;
  }
  if (old_bounds[static_cast<size_t>(S)] <= 0) {
    return NotFound("seed adapt: degenerate seed op coverage");
  }

  auto devs = AdaptDevices(old_devs, gpus_new);
  if (!devs.ok()) {
    return devs.status();
  }

  // Builds the full adapted config for one boundary layout.
  auto build = [&](const std::vector<int>& bounds) -> StatusOr<ParallelConfig> {
    ParallelConfig config;
    int required_mbs = 1;
    for (int s = 0; s < S; ++s) {
      StageConfig stage;
      stage.first_op = bounds[static_cast<size_t>(s)];
      stage.num_ops = bounds[static_cast<size_t>(s) + 1] - stage.first_op;
      stage.num_devices = (*devs)[static_cast<size_t>(s)];
      stage.ops.resize(static_cast<size_t>(stage.num_ops));
      const StageConfig& old_stage = seed.stage(s);
      if (old_stage.num_ops <= 0 ||
          old_stage.ops.size() != static_cast<size_t>(old_stage.num_ops)) {
        return NotFound("seed adapt: malformed seed stage " +
                        std::to_string(s));
      }
      for (int l = 0; l < stage.num_ops; ++l) {
        // Positional carry-over: new local op l reads the proportionally
        // corresponding op of the seed stage.
        const int old_l = static_cast<int>(static_cast<int64_t>(l) *
                                           old_stage.num_ops / stage.num_ops);
        OpParallel setting = old_stage.ops[static_cast<size_t>(old_l)];
        const Operator& op = graph.op(stage.first_op + l);
        int tp = std::min(std::max(setting.tp, 1), stage.num_devices);
        tp = ClampOpTp(op, tp);
        if (!IsPow2(tp)) {
          tp = FloorPow2(tp);
        }
        setting.tp = tp;
        setting.dp = stage.num_devices / tp;
        if (setting.dp <= 1) {
          setting.zero_opt = false;  // meaningless without a dp group
        }
        required_mbs = std::max(required_mbs, setting.dp);
        stage.ops[static_cast<size_t>(l)] = setting;
      }
      config.AddStage(std::move(stage));
    }

    // Microbatch: keep the seed's size where possible, raised to a multiple
    // of the largest dp (dp values are powers of two, so the max divides
    // every multiple of itself), then walked down to a divisor of the
    // global batch.
    const int64_t batch = graph.global_batch_size();
    int mbs = std::max(seed.microbatch_size(), required_mbs);
    mbs = (mbs / required_mbs) * required_mbs;
    while (mbs >= required_mbs && batch % mbs != 0) {
      mbs -= required_mbs;
    }
    if (mbs < required_mbs) {
      return NotFound("seed adapt: no microbatch size satisfies dp " +
                      std::to_string(required_mbs) + " under batch " +
                      std::to_string(batch));
    }
    config.set_microbatch_size(mbs);

    const Status valid = config.Validate(graph, cluster);
    if (!valid.ok()) {
      return NotFound("seed adapt: adapted config invalid: " +
                      valid.ToString());
    }
    return config;
  };

  // Candidate boundary layouts. The plain proportional layout comes first:
  // it reproduces the seed exactly when the graph did not change, and it
  // keeps deliberate mid-run cuts the search fine-tuned into the seed. The
  // run-snapped layout (cuts restricted to repeated-layer period multiples)
  // is a second opinion that often wins when the layer count shifted.
  std::vector<std::vector<int>> layouts;
  layouts.push_back(AdaptBoundaries(
      old_bounds, n_new, SeedAdaptAllowedCuts(graph, /*compress_runs=*/false)));
  if (options.compress_runs) {
    std::vector<int> snapped = AdaptBoundaries(
        old_bounds, n_new, SeedAdaptAllowedCuts(graph, /*compress_runs=*/true));
    if (snapped != layouts.front()) {
      layouts.push_back(std::move(snapped));
    }
  }

  const int64_t limit = options.memory_limit_bytes > 0
                            ? options.memory_limit_bytes
                            : cluster.gpu.memory_bytes;
  SeedAdaptResult result;
  bool found = false;
  Status last_error = NotFound("seed adapt: no candidate layout was valid");
  for (const std::vector<int>& bounds : layouts) {
    auto config = build(bounds);
    if (!config.ok()) {
      last_error = config.status();
      continue;
    }
    PerfResult perf = model.Evaluate(*config);
    perf.ApplyMemoryLimit(limit);
    ++result.evaluations;
    if (!found || perf.BetterThan(result.perf)) {
      found = true;
      result.perf = perf;
      result.config = *std::move(config);
    }
  }
  if (!found) {
    return last_error;
  }
  return result;
}

}  // namespace aceso
