#include "src/plan/schedule.h"

#include <algorithm>

namespace aceso {

const char* PipelineScheduleName(PipelineSchedule schedule) {
  switch (schedule) {
    case PipelineSchedule::k1F1B:
      return "1F1B";
    case PipelineSchedule::kGpipe:
      return "GPipe";
  }
  return "unknown";
}

std::vector<std::pair<bool, int>> LocalScheduleOrder(PipelineSchedule schedule,
                                                     int stage, int num_stages,
                                                     int num_microbatches) {
  std::vector<std::pair<bool, int>> order;
  order.reserve(static_cast<size_t>(num_microbatches) * 2);
  switch (schedule) {
    case PipelineSchedule::k1F1B: {
      const int warmup = std::min(num_microbatches, num_stages - stage);
      int fwd = 0;
      int bwd = 0;
      for (int i = 0; i < warmup; ++i) {
        order.emplace_back(true, fwd++);
      }
      while (bwd < num_microbatches) {
        order.emplace_back(false, bwd++);
        if (fwd < num_microbatches) {
          order.emplace_back(true, fwd++);
        }
      }
      break;
    }
    case PipelineSchedule::kGpipe: {
      for (int m = 0; m < num_microbatches; ++m) {
        order.emplace_back(true, m);
      }
      // Backward in reverse microbatch order, as GPipe's re-entrant
      // backward pass does.
      for (int m = num_microbatches - 1; m >= 0; --m) {
        order.emplace_back(false, m);
      }
      break;
    }
  }
  return order;
}

int PeakInFlightMicrobatches(PipelineSchedule schedule, int stage,
                             int num_stages, int num_microbatches) {
  switch (schedule) {
    case PipelineSchedule::k1F1B:
      return std::max(1, std::min(num_microbatches, num_stages - stage));
    case PipelineSchedule::kGpipe:
      return std::max(1, num_microbatches);
  }
  return 1;
}

}  // namespace aceso
