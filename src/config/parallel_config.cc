#include "src/config/parallel_config.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace aceso {
namespace {

int FloorPow2(int n) {
  int p = 1;
  while (p * 2 <= n) {
    p *= 2;
  }
  return p;
}

}  // namespace

bool IsPow2(int v) { return v >= 1 && (v & (v - 1)) == 0; }

int ClampOpTp(const Operator& op, int tp) {
  if (op.tp_class == TpClass::kPartitioned) {
    return std::min(tp, FloorPow2(std::max(op.max_tp, 1)));
  }
  return tp;
}

void StageConfig::SetUniformParallelism(const OpGraph& graph, int tp, int dp) {
  ACESO_CHECK_EQ(tp * dp, num_devices);
  ops.resize(static_cast<size_t>(num_ops));
  for (int i = 0; i < num_ops; ++i) {
    const Operator& op = graph.op(first_op + i);
    OpParallel& setting = ops[static_cast<size_t>(i)];
    setting.tp = ClampOpTp(op, tp);
    setting.dp = num_devices / setting.tp;
    setting.tp_dim =
        op.default_tp_dim == TpDim::kNone ? TpDim::kColumn : op.default_tp_dim;
  }
}

int StageConfig::NumRecomputed() const {
  int count = 0;
  for (const OpParallel& op : ops) {
    if (op.recompute) {
      ++count;
    }
  }
  return count;
}

uint64_t PackOpSemanticWord(const Operator& op, const OpParallel& setting) {
  // The partition dimension only matters for sharded partitioned ops.
  const bool dim_matters =
      setting.tp > 1 && op.tp_class == TpClass::kPartitioned;
  const uint64_t dim =
      dim_matters ? static_cast<uint64_t>(setting.tp_dim) + 1 : 0;
  // ZeRO only changes semantics for data-parallel ops.
  const bool zero = setting.dp > 1 && setting.zero_opt;
  // tp and dp are device counts (< 2^16 for any plausible cluster).
  return static_cast<uint64_t>(setting.tp) |
         static_cast<uint64_t>(setting.dp) << 16 | dim << 32 |
         static_cast<uint64_t>(setting.recompute) << 35 |
         static_cast<uint64_t>(zero) << 36;
}

// ----- StageBlock -----

StageBlock::~StageBlock() {
  delete words_.load(std::memory_order_acquire);
  delete spare_.load(std::memory_order_acquire);
}

StageConfig& StageBlock::BeginMutation() {
  // The caller holds this block uniquely (CoW guarantees it), so no reader
  // can be folding the cache we unpublish here. Park it for buffer reuse
  // instead of freeing: candidate construction mutates and re-hashes in a
  // tight loop, and the parked buffer saves an allocation per rehash.
  WordCache* old = const_cast<WordCache*>(
      words_.exchange(nullptr, std::memory_order_acq_rel));
  if (old != nullptr) {
    delete spare_.exchange(old, std::memory_order_acq_rel);
  }
  return config_;
}

void StageBlock::ComputeWords(const OpGraph& graph, const StageConfig& config,
                              std::vector<uint64_t>& words) {
  words.resize(static_cast<size_t>(config.num_ops));
  for (int i = 0; i < config.num_ops; ++i) {
    words[static_cast<size_t>(i)] =
        PackOpSemanticWord(graph.op(config.first_op + i),
                           config.ops[static_cast<size_t>(i)]);
  }
}

const std::vector<uint64_t>* StageBlock::OpWords(const OpGraph& graph) const {
  const WordCache* cache = words_.load(std::memory_order_acquire);
  if (cache != nullptr) {
    // A cache for a different graph cannot be swapped out safely under
    // concurrent readers, so it stays published and this graph reads as
    // uncached. (In practice a config is only ever hashed against one
    // graph; this path exists for correctness, not speed.)
    return cache->graph == &graph ? &cache->words : nullptr;
  }
  // Miss: recompute into the parked buffer if this thread wins it, a fresh
  // one otherwise (concurrent post-mutation readers may race here).
  WordCache* fresh = spare_.exchange(nullptr, std::memory_order_acq_rel);
  if (fresh == nullptr) {
    fresh = new WordCache;
  }
  // A parked buffer may still carry the annotation from its pre-mutation
  // life; the words it described are gone, so it goes too.
  delete fresh->annotation.exchange(nullptr, std::memory_order_acq_rel);
  fresh->graph = &graph;
  ComputeWords(graph, config_, fresh->words);
  // Publish-once: the winner's cache lives until mutation or destruction,
  // so concurrent readers never see it freed; losers park their copy and
  // read the winner's (which, racing on the same graph, holds the same
  // words; on a different graph the fallback applies).
  const WordCache* expected = nullptr;
  if (words_.compare_exchange_strong(expected, fresh,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
    return &fresh->words;
  }
  delete spare_.exchange(fresh, std::memory_order_acq_rel);
  return expected->graph == &graph ? &expected->words : nullptr;
}

const StageAnnotation* StageBlock::Annotation(const OpGraph& graph) const {
  const WordCache* cache = words_.load(std::memory_order_acquire);
  if (cache == nullptr || cache->graph != &graph) {
    return nullptr;
  }
  return cache->annotation.load(std::memory_order_acquire);
}

const StageAnnotation* StageBlock::PublishAnnotation(
    const OpGraph& graph, StageAnnotation* annotation) const {
  const WordCache* cache = words_.load(std::memory_order_acquire);
  if (cache == nullptr || cache->graph != &graph) {
    delete annotation;
    return nullptr;
  }
  const StageAnnotation* expected = nullptr;
  if (cache->annotation.compare_exchange_strong(expected, annotation,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
    return annotation;
  }
  delete annotation;
  return expected;
}

uint64_t StageBlock::FoldOpWords(const OpGraph& graph, uint64_t state) const {
  if (const std::vector<uint64_t>* words = OpWords(graph)) {
    for (const uint64_t word : *words) {
      state = HashCombine(state, word);
    }
    return state;
  }
  // Different-graph fallback: fold freshly packed words without touching
  // the published cache.
  std::vector<uint64_t> words;
  ComputeWords(graph, config_, words);
  for (const uint64_t word : words) {
    state = HashCombine(state, word);
  }
  return state;
}

// ----- ParallelConfig: special members -----

ParallelConfig::ParallelConfig() = default;

ParallelConfig::ParallelConfig(const ParallelConfig& other) {
  // Lock the source: copying a config while another thread hashes it must
  // see a consistent prefix cache. Shares every stage block (the CoW win).
  std::lock_guard<std::mutex> lock(other.sem_mu_);
  microbatch_size_ = other.microbatch_size_;
  stages_ = other.stages_;
  sem_graph_ = other.sem_graph_;
  sem_valid_ = other.sem_valid_;
  std::copy_n(other.sem_prefix_.begin(),
              std::min(sem_valid_, sem_prefix_.size()), sem_prefix_.begin());
}

ParallelConfig& ParallelConfig::operator=(const ParallelConfig& other) {
  if (this == &other) {
    return *this;
  }
  // Assignment mutates *this, which the contract makes exclusive; only the
  // source needs locking.
  std::lock_guard<std::mutex> lock(other.sem_mu_);
  microbatch_size_ = other.microbatch_size_;
  stages_ = other.stages_;
  sem_graph_ = other.sem_graph_;
  sem_valid_ = other.sem_valid_;
  std::copy_n(other.sem_prefix_.begin(),
              std::min(sem_valid_, sem_prefix_.size()), sem_prefix_.begin());
  return *this;
}

ParallelConfig::ParallelConfig(ParallelConfig&& other) noexcept
    : microbatch_size_(other.microbatch_size_),
      stages_(std::move(other.stages_)),
      sem_graph_(other.sem_graph_),
      sem_valid_(other.sem_valid_) {
  std::copy_n(other.sem_prefix_.begin(),
              std::min(sem_valid_, sem_prefix_.size()), sem_prefix_.begin());
  other.sem_valid_ = 0;
}

ParallelConfig& ParallelConfig::operator=(ParallelConfig&& other) noexcept {
  if (this == &other) {
    return *this;
  }
  microbatch_size_ = other.microbatch_size_;
  stages_ = std::move(other.stages_);
  sem_graph_ = other.sem_graph_;
  sem_valid_ = other.sem_valid_;
  std::copy_n(other.sem_prefix_.begin(),
              std::min(sem_valid_, sem_prefix_.size()), sem_prefix_.begin());
  other.sem_valid_ = 0;
  return *this;
}

// ----- ParallelConfig: mutation -----

void ParallelConfig::InvalidateSemanticPrefix(int stage_index) {
  // No lock: mutation requires exclusive access (file-header contract), so
  // no concurrent hasher can be reading the prefix state here, and taking
  // sem_mu_ would only tax the candidate-construction hot path.
  if (stage_index < 0) {
    sem_valid_ = 0;
    return;
  }
  // Prefix entries [0, stage_index] (header + stages before the mutated
  // one) stay valid; everything folded from the mutated stage on is stale.
  sem_valid_ =
      std::min(sem_valid_, static_cast<size_t>(stage_index) + 1);
}

void ParallelConfig::set_microbatch_size(int mbs) {
  if (mbs == microbatch_size_) {
    return;
  }
  microbatch_size_ = mbs;
  InvalidateSemanticPrefix(-1);  // folded into the header of every hash
}

StageConfig& ParallelConfig::MutableStage(int i) {
  std::shared_ptr<StageBlock>& block = stages_.at(static_cast<size_t>(i));
  if (block.use_count() > 1) {
    // Shared with another config: clone before writing (copy-on-write).
    block = std::make_shared<StageBlock>(*block);
  }
  InvalidateSemanticPrefix(i);
  return block->BeginMutation();
}

void ParallelConfig::AddStage(StageConfig stage) {
  stages_.push_back(std::make_shared<StageBlock>(std::move(stage)));
  // The stage count is folded into the hash header, so the whole prefix is
  // stale, not just the new tail entry.
  InvalidateSemanticPrefix(-1);
}

ParallelConfig ParallelConfig::DeepCopy() const {
  ParallelConfig copy;
  copy.microbatch_size_ = microbatch_size_;
  copy.stages_.reserve(stages_.size());
  for (const std::shared_ptr<StageBlock>& block : stages_) {
    copy.stages_.push_back(std::make_shared<StageBlock>(*block));
  }
  return copy;
}

// ----- ParallelConfig: queries -----

int ParallelConfig::StageFirstDevice(int stage_index) const {
  int first = 0;
  for (int i = 0; i < stage_index; ++i) {
    first += stages_[static_cast<size_t>(i)]->config().num_devices;
  }
  return first;
}

int ParallelConfig::TotalDevices() const {
  int total = 0;
  for (const StageConfig& stage : stages()) {
    total += stage.num_devices;
  }
  return total;
}

const OpParallel& ParallelConfig::OpSettings(int op_index) const {
  const int stage_index = StageOfOp(op_index);
  const StageConfig& st = stage(stage_index);
  return st.ops[static_cast<size_t>(op_index - st.first_op)];
}

OpParallel& ParallelConfig::MutableOpSettings(int op_index) {
  const int stage_index = StageOfOp(op_index);
  StageConfig& st = MutableStage(stage_index);
  return st.ops[static_cast<size_t>(op_index - st.first_op)];
}

int ParallelConfig::StageOfOp(int op_index) const {
  for (size_t s = 0; s < stages_.size(); ++s) {
    const StageConfig& stage = stages_[s]->config();
    if (op_index >= stage.first_op && op_index < stage.end_op()) {
      return static_cast<int>(s);
    }
  }
  ACESO_CHECK(false) << "op " << op_index << " not in any stage";
  return -1;
}

int64_t ParallelConfig::NumMicrobatches(const OpGraph& graph) const {
  return graph.global_batch_size() / microbatch_size_;
}

Status ParallelConfig::Validate(const OpGraph& graph,
                                const ClusterSpec& cluster) const {
  if (stages_.empty()) {
    return InvalidArgument("configuration has no stages");
  }
  if (microbatch_size_ < 1) {
    return InvalidArgument("microbatch size must be >= 1");
  }
  if (graph.global_batch_size() % microbatch_size_ != 0) {
    return InvalidArgument("microbatch size " +
                           std::to_string(microbatch_size_) +
                           " does not divide batch " +
                           std::to_string(graph.global_batch_size()));
  }
  if (TotalDevices() != cluster.num_gpus()) {
    return InvalidArgument("stage devices sum to " +
                           std::to_string(TotalDevices()) + ", cluster has " +
                           std::to_string(cluster.num_gpus()));
  }
  int next_op = 0;
  for (size_t s = 0; s < stages_.size(); ++s) {
    const StageConfig& stage = stages_[s]->config();
    const std::string tag = "stage " + std::to_string(s);
    if (stage.first_op != next_op) {
      return InvalidArgument(tag + " starts at op " +
                             std::to_string(stage.first_op) + ", expected " +
                             std::to_string(next_op));
    }
    if (stage.num_ops <= 0) {
      return InvalidArgument(tag + " is empty");
    }
    next_op = stage.end_op();
    if (!IsPow2(stage.num_devices)) {
      return InvalidArgument(tag + " device count " +
                             std::to_string(stage.num_devices) +
                             " is not a power of two");
    }
    if (static_cast<int>(stage.ops.size()) != stage.num_ops) {
      return InvalidArgument(tag + " has " + std::to_string(stage.ops.size()) +
                             " op settings for " +
                             std::to_string(stage.num_ops) + " ops");
    }
    for (int i = 0; i < stage.num_ops; ++i) {
      const OpParallel& setting = stage.ops[static_cast<size_t>(i)];
      const Operator& op = graph.op(stage.first_op + i);
      const std::string op_tag = tag + " op " + op.name;
      if (!IsPow2(setting.tp) || !IsPow2(setting.dp)) {
        return InvalidArgument(op_tag + ": tp/dp must be powers of two");
      }
      if (setting.tp * setting.dp != stage.num_devices) {
        return InvalidArgument(op_tag + ": tp*dp=" +
                               std::to_string(setting.tp * setting.dp) +
                               " != stage devices " +
                               std::to_string(stage.num_devices));
      }
      if (op.tp_class == TpClass::kPartitioned &&
          setting.tp > FloorPow2(std::max(op.max_tp, 1))) {
        return InvalidArgument(op_tag + ": tp " + std::to_string(setting.tp) +
                               " exceeds op limit " +
                               std::to_string(op.max_tp));
      }
      if (microbatch_size_ % setting.dp != 0) {
        return InvalidArgument(op_tag + ": dp " + std::to_string(setting.dp) +
                               " does not divide microbatch size " +
                               std::to_string(microbatch_size_));
      }
    }
  }
  if (next_op != graph.num_ops()) {
    return InvalidArgument("stages cover " + std::to_string(next_op) +
                           " ops, model has " +
                           std::to_string(graph.num_ops()));
  }
  return OkStatus();
}

// ----- ParallelConfig: semantic hashing -----

namespace {

// From-scratch fold of one stage's op settings (reference path; the cached
// path folds the same words out of the stage block's word cache).
void HashStageOps(const OpGraph& graph, const StageConfig& stage, Hasher& h) {
  for (int i = 0; i < stage.num_ops; ++i) {
    h.Add(PackOpSemanticWord(graph.op(stage.first_op + i),
                             stage.ops[static_cast<size_t>(i)]));
  }
}

}  // namespace

uint64_t ParallelConfig::FoldStage(const OpGraph& graph, uint64_t state,
                                   int stage_index) const {
  const StageBlock& block = *stages_[static_cast<size_t>(stage_index)];
  const StageConfig& stage = block.config();
  state = HashCombine(state, static_cast<uint64_t>(stage.num_ops));
  state = HashCombine(state, static_cast<uint64_t>(stage.num_devices));
  return block.FoldOpWords(graph, state);
}

uint64_t ParallelConfig::SemanticHash(const OpGraph& graph) const {
  const size_t n = stages_.size();
  std::lock_guard<std::mutex> lock(sem_mu_);
  if (sem_graph_ != &graph) {
    sem_graph_ = &graph;
    sem_valid_ = 0;
  }
  if (n > kMaxCachedStages) {
    // Past the inline prefix: refold everything each call. The per-stage
    // word caches still apply, so this stays cheaper than the reference
    // walk; only the prefix reuse is lost.
    uint64_t state = kFnvOffsetBasis;
    state = HashCombine(state, static_cast<uint64_t>(microbatch_size_));
    state = HashCombine(state, static_cast<uint64_t>(static_cast<int>(n)));
    for (size_t k = 0; k < n; ++k) {
      state = FoldStage(graph, state, static_cast<int>(k));
    }
    return state;
  }
  if (sem_valid_ == 0) {
    // Header: same fields, same order as SemanticHashUncached.
    uint64_t state = kFnvOffsetBasis;
    state = HashCombine(state, static_cast<uint64_t>(microbatch_size_));
    state = HashCombine(state, static_cast<uint64_t>(static_cast<int>(n)));
    sem_prefix_[0] = state;
    sem_valid_ = 1;
  }
  // Re-fold from the first stale stage only; each step reuses the stage
  // block's cached op words when present.
  for (size_t k = sem_valid_; k <= n; ++k) {
    sem_prefix_[k] =
        FoldStage(graph, sem_prefix_[k - 1], static_cast<int>(k - 1));
  }
  sem_valid_ = n + 1;
  return sem_prefix_[n];
}

uint64_t ParallelConfig::StageSemanticHash(const OpGraph& graph,
                                           const ClusterSpec& cluster,
                                           int stage_index) const {
  const StageBlock& block = *stages_.at(static_cast<size_t>(stage_index));
  const StageConfig& stage = block.config();
  const int first_device = StageFirstDevice(stage_index);
  Hasher h;
  h.Add(microbatch_size_);
  h.Add(stage.first_op);
  h.Add(stage.num_ops);
  h.Add(stage.num_devices);
  // Placement context (see header): node offset drives every
  // GroupCrossesNodes() answer inside the walk; the receives-input bit
  // distinguishes stage 0 (no p2p charge) from later stages.
  h.Add(first_device % cluster.gpus_per_node);
  h.Add(stage_index > 0);
  return block.FoldOpWords(graph, h.Digest());
}

const StageAnnotation* ParallelConfig::StageWordAnnotation(
    const OpGraph& graph, int stage_index) const {
  return stages_.at(static_cast<size_t>(stage_index))->Annotation(graph);
}

const StageAnnotation* ParallelConfig::PublishStageWordAnnotation(
    const OpGraph& graph, int stage_index, StageAnnotation* annotation) const {
  return stages_.at(static_cast<size_t>(stage_index))
      ->PublishAnnotation(graph, annotation);
}

const std::vector<uint64_t>* ParallelConfig::StageOpWords(
    const OpGraph& graph, int stage_index) const {
  return stages_.at(static_cast<size_t>(stage_index))->OpWords(graph);
}

uint64_t ParallelConfig::SemanticHashUncached(const OpGraph& graph) const {
  Hasher h;
  h.Add(microbatch_size_);
  h.Add(static_cast<int>(stages_.size()));
  for (const StageConfig& stage : stages()) {
    h.Add(stage.num_ops);
    h.Add(stage.num_devices);
    HashStageOps(graph, stage, h);
  }
  return h.Digest();
}

uint64_t ParallelConfig::StageSemanticHashUncached(const OpGraph& graph,
                                                   const ClusterSpec& cluster,
                                                   int stage_index) const {
  const StageConfig& st = stage(stage_index);
  const int first_device = StageFirstDevice(stage_index);
  Hasher h;
  h.Add(microbatch_size_);
  h.Add(st.first_op);
  h.Add(st.num_ops);
  h.Add(st.num_devices);
  h.Add(first_device % cluster.gpus_per_node);
  h.Add(stage_index > 0);
  HashStageOps(graph, st, h);
  return h.Digest();
}

// ----- ParallelConfig: printing -----

std::string ParallelConfig::ToString(const OpGraph& graph) const {
  std::ostringstream oss;
  oss << "config: mbs=" << microbatch_size_ << " stages=" << num_stages()
      << "\n";
  for (int s = 0; s < num_stages(); ++s) {
    const StageConfig& stage = this->stage(s);
    oss << "  stage " << s << ": ops [" << stage.first_op << ", "
        << stage.end_op() << ") devices=" << stage.num_devices << "\n";
    // Group runs of ops with identical settings for readability. The
    // partition dimension only differentiates sharded ops.
    auto same_group = [](const OpParallel& a, const OpParallel& b) {
      if (a.tp != b.tp || a.dp != b.dp || a.recompute != b.recompute) {
        return false;
      }
      return a.tp == 1 || a.tp_dim == b.tp_dim;
    };
    int run_start = 0;
    for (int i = 1; i <= stage.num_ops; ++i) {
      if (i < stage.num_ops &&
          same_group(stage.ops[static_cast<size_t>(i)],
                     stage.ops[static_cast<size_t>(run_start)])) {
        continue;
      }
      const OpParallel& setting = stage.ops[static_cast<size_t>(run_start)];
      oss << "    ops " << (stage.first_op + run_start) << ".."
          << (stage.first_op + i - 1) << ": tp=" << setting.tp
          << " dp=" << setting.dp;
      if (setting.tp > 1) {
        oss << " dim=" << TpDimName(setting.tp_dim);
      }
      oss << (setting.recompute ? " rc" : "") << "  ("
          << graph.op(stage.first_op + run_start).name << " ...)\n";
      run_start = i;
    }
  }
  return oss.str();
}

std::string ParallelConfig::ShortString() const {
  std::ostringstream oss;
  oss << "mbs=" << microbatch_size_;
  for (int s = 0; s < num_stages(); ++s) {
    const StageConfig& stage = this->stage(s);
    // Report the most common (tp, dp) pair of the stage for compactness.
    std::map<std::pair<int, int>, int> counts;
    for (const OpParallel& setting : stage.ops) {
      ++counts[{setting.tp, setting.dp}];
    }
    std::pair<int, int> modal{1, stage.num_devices};
    int best = 0;
    for (const auto& [pair, count] : counts) {
      if (count > best) {
        best = count;
        modal = pair;
      }
    }
    oss << " | s" << s << "[" << stage.num_ops << "ops g" << stage.num_devices
        << " tp" << modal.first << " dp" << modal.second << " rc"
        << stage.NumRecomputed() << "]";
  }
  return oss.str();
}

StatusOr<std::vector<int>> SplitDevicesPow2(int total, int parts) {
  if (!IsPow2(total)) {
    return InvalidArgument("device count " + std::to_string(total) +
                           " is not a power of two");
  }
  if (parts < 1 || parts > total) {
    return InvalidArgument("cannot split " + std::to_string(total) +
                           " devices into " + std::to_string(parts) +
                           " stages");
  }
  if (parts == 1) {
    return std::vector<int>{total};
  }
  const int left_parts = (parts + 1) / 2;
  const int right_parts = parts / 2;
  auto left = SplitDevicesPow2(total / 2, left_parts);
  auto right = SplitDevicesPow2(total / 2, right_parts);
  if (!left.ok()) {
    return left.status();
  }
  if (!right.ok()) {
    return right.status();
  }
  std::vector<int> out = *std::move(left);
  out.insert(out.end(), right->begin(), right->end());
  // Larger stages first matches 1F1B's preference for memory-light late
  // stages (early stages hold more in-flight microbatches).
  std::sort(out.begin(), out.end(), std::greater<int>());
  return out;
}

namespace {

// Splits [0, num_ops) into `parts` contiguous ranges with boundaries chosen
// so each range carries ~target_weight[i] of the total FLOPs.
std::vector<int> SplitOpsByWeight(const OpGraph& graph, int parts,
                                  const std::vector<double>& weights) {
  const int n = graph.num_ops();
  std::vector<double> prefix(static_cast<size_t>(n) + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    // Guard against all-zero-flop prefixes with a small epsilon per op.
    prefix[static_cast<size_t>(i) + 1] =
        prefix[static_cast<size_t>(i)] + graph.op(i).fwd_flops + 1.0;
  }
  const double total = prefix.back();
  double weight_sum = 0.0;
  for (double w : weights) {
    weight_sum += w;
  }
  std::vector<int> boundaries;  // num_ops of each part
  boundaries.reserve(static_cast<size_t>(parts));
  int prev = 0;
  double cum_weight = 0.0;
  for (int p = 0; p < parts - 1; ++p) {
    cum_weight += weights[static_cast<size_t>(p)];
    const double target = total * cum_weight / weight_sum;
    // First boundary with prefix >= target, leaving room for later parts.
    int b = prev + 1;
    while (b < n - (parts - 1 - p) && prefix[static_cast<size_t>(b)] < target) {
      ++b;
    }
    boundaries.push_back(b - prev);
    prev = b;
  }
  boundaries.push_back(n - prev);
  return boundaries;
}

StatusOr<ParallelConfig> MakeConfigWithSplits(
    const OpGraph& graph, const ClusterSpec& cluster, int num_stages,
    int microbatch_size, const std::vector<double>& op_weights,
    bool skew_devices) {
  if (num_stages < 1 || num_stages > graph.num_ops()) {
    return InvalidArgument("invalid stage count " +
                           std::to_string(num_stages));
  }
  auto devices = SplitDevicesPow2(cluster.num_gpus(), num_stages);
  if (!devices.ok()) {
    return devices.status();
  }
  if (skew_devices && num_stages > 1) {
    // Exp#7 "imbalance-GPU": give the first stage as many devices as
    // possible by sorting descending and the rest ascending.
    std::sort(devices->begin() + 1, devices->end());
  }
  const std::vector<int> op_counts =
      SplitOpsByWeight(graph, num_stages, op_weights);

  ParallelConfig config;
  config.set_microbatch_size(microbatch_size);
  int first_op = 0;
  for (int s = 0; s < num_stages; ++s) {
    StageConfig stage;
    stage.first_op = first_op;
    stage.num_ops = op_counts[static_cast<size_t>(s)];
    stage.num_devices = (*devices)[static_cast<size_t>(s)];
    // Full tensor parallelism (clamped per op) allows the minimum microbatch
    // size; dp absorbs the clamp.
    stage.SetUniformParallelism(graph, stage.num_devices, 1);
    first_op += stage.num_ops;
    config.AddStage(std::move(stage));
  }
  // Raise the microbatch size to the minimum every op's dp accepts.
  int required_mbs = microbatch_size;
  for (const StageConfig& stage : config.stages()) {
    for (const OpParallel& setting : stage.ops) {
      required_mbs = std::max(required_mbs, setting.dp);
    }
  }
  // Round up to a divisor of the batch (dp values are powers of two, and so
  // is required_mbs as a max of powers of two).
  config.set_microbatch_size(required_mbs);
  ACESO_RETURN_IF_ERROR(config.Validate(graph, cluster));
  return config;
}

}  // namespace

StatusOr<ParallelConfig> MakeEvenConfig(const OpGraph& graph,
                                        const ClusterSpec& cluster,
                                        int num_stages, int microbatch_size) {
  const std::vector<double> even(static_cast<size_t>(num_stages), 1.0);
  return MakeConfigWithSplits(graph, cluster, num_stages, microbatch_size,
                              even, /*skew_devices=*/false);
}

StatusOr<ParallelConfig> MakeOpImbalancedConfig(const OpGraph& graph,
                                                const ClusterSpec& cluster,
                                                int num_stages,
                                                int microbatch_size) {
  // Quadratically increasing stage weights: early stages tiny, late huge.
  std::vector<double> weights(static_cast<size_t>(num_stages));
  for (int i = 0; i < num_stages; ++i) {
    weights[static_cast<size_t>(i)] = static_cast<double>((i + 1) * (i + 1));
  }
  return MakeConfigWithSplits(graph, cluster, num_stages, microbatch_size,
                              weights, /*skew_devices=*/false);
}

StatusOr<ParallelConfig> MakeGpuImbalancedConfig(const OpGraph& graph,
                                                 const ClusterSpec& cluster,
                                                 int num_stages,
                                                 int microbatch_size) {
  const std::vector<double> even(static_cast<size_t>(num_stages), 1.0);
  return MakeConfigWithSplits(graph, cluster, num_stages, microbatch_size,
                              even, /*skew_devices=*/true);
}

}  // namespace aceso
