file(REMOVE_RECURSE
  "CMakeFiles/baseline_sweep_test.dir/baseline_sweep_test.cc.o"
  "CMakeFiles/baseline_sweep_test.dir/baseline_sweep_test.cc.o.d"
  "baseline_sweep_test"
  "baseline_sweep_test.pdb"
  "baseline_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
