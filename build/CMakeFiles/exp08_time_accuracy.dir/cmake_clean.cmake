file(REMOVE_RECURSE
  "CMakeFiles/exp08_time_accuracy.dir/bench/bench_util.cc.o"
  "CMakeFiles/exp08_time_accuracy.dir/bench/bench_util.cc.o.d"
  "CMakeFiles/exp08_time_accuracy.dir/bench/exp08_time_accuracy.cc.o"
  "CMakeFiles/exp08_time_accuracy.dir/bench/exp08_time_accuracy.cc.o.d"
  "bench/exp08_time_accuracy"
  "bench/exp08_time_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp08_time_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
