// Alpa-like baseline (§5 "Baseline systems", v0.1.5 behaviour).
//
// Alpa splits the search into two levels: an *inter-op* pass (dynamic
// programming over contiguous layer-group ranges and submesh shapes) and an
// *intra-op* pass that picks each stage's partitioning by solving an ILP
// whose cost estimator "treats the computation time of all operators as 0
// ... only communication time is considered" (§5.1). Microbatch size,
// layer-group count l, and whole-model recomputation are set by an outer
// grid, exactly as the paper's authors did to make Alpa fully automatic.
//
// We reproduce those structural properties:
//   * operators are first grouped into l FLOP-balanced layer groups;
//   * the intra-op choice per (group, mesh) minimizes communication only —
//     so it misses configurations where computation time differs across
//     partitionings (the paper's explanation of Aceso's advantage);
//   * recomputation is model-global, never per-op;
//   * stage memory is checked with the stage-count-conservative in-flight
//     estimate.
//
// Search-cost accounting: the real Alpa compiles and profiles XLA kernels
// on demand during every search (§5.1 Exp#2). We charge
// `compile_seconds_per_kernel` of simulated profiling for each distinct
// (group, mesh, partitioning) kernel the solver touches, reported separately
// from the solver's real wall-clock. Beyond `max_layers_before_failure`
// model layers, compilation fails — reproducing the empirical XLA limit the
// paper hits in Exp#3 ("Alpa failed compilation when the layer number grows
// larger than 64").

#ifndef SRC_BASELINES_ALPA_LIKE_H_
#define SRC_BASELINES_ALPA_LIKE_H_

#include <vector>

#include "src/baselines/baseline_result.h"
#include "src/cost/perf_model.h"

namespace aceso {

struct AlpaOptions {
  // Grid over the number of layer groups l; empty selects an automatic grid
  // based on the model size.
  std::vector<int> layer_group_counts;

  // Microbatch grid: powers of two up to this cap.
  int max_microbatch = 64;

  // Maximum pipeline stage count considered by the inter-op DP.
  int max_stages = 12;

  // Simulated on-demand XLA compilation + profiling cost per distinct
  // kernel (Alpa compiles each candidate stage HLO before profiling it).
  double compile_seconds_per_kernel = 2.0;

  // Models with more layers than this fail compilation (Exp#3).
  int max_layers_before_failure = 64;
};

// Runs the two-level search. Returns an error Status when compilation fails
// (very deep models).
StatusOr<BaselineResult> AlpaLikeSearch(const PerformanceModel& model,
                                        const AlpaOptions& options = {});

}  // namespace aceso

#endif  // SRC_BASELINES_ALPA_LIKE_H_
