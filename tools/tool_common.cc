#include "tools/tool_common.h"

#include <utility>

#include "src/ir/models/model_zoo.h"

namespace aceso {
namespace tools {

StatusOr<ModelAndCluster> LoadModelAndCluster(const std::string& model,
                                              int gpus) {
  StatusOr<OpGraph> graph = models::BuildByName(model);
  if (!graph.ok()) {
    std::string message = graph.status().message() + "; known models:";
    for (const std::string& name : models::ZooNames()) {
      message += ' ';
      message += name;
    }
    return Status(graph.status().code(), std::move(message));
  }
  ModelAndCluster out{std::move(graph).value(),
                      ClusterSpec::WithGpuCount(gpus)};
  return out;
}

const char* ZooUsageLines() {
  return
      "models: gpt3-{0.35,1.3,2.6,6.7,13}b  t5-{0.77,3,6,11,22}b\n"
      "        wresnet-{0.5,2,4,6.8,13}b  deepnet-<layers>\n";
}

}  // namespace tools
}  // namespace aceso
