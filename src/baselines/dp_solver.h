// Dynamic-programming reference solver (Exp#4).
//
// The paper compares Aceso's exploration count against "a dynamic
// programming (DP) solution ... with some pruning, such as limiting the
// maximum number of operators at each stage, the maximum microbatch size,
// and the maximum tp/dp size. We used the same performance model in both
// approaches for a fair comparison."
//
// This solver enumerates, for every microbatch size and stage count, all
// contiguous op-range stage partitions combined with per-stage
// (mesh size, tp, recompute) options, minimizing the bottleneck stage time
// under the memory constraint. Every (op range, mesh, tp, rc) stage
// candidate it prices counts as one explored configuration — the metric of
// Figure 10(a).

#ifndef SRC_BASELINES_DP_SOLVER_H_
#define SRC_BASELINES_DP_SOLVER_H_

#include "src/baselines/baseline_result.h"
#include "src/cost/perf_model.h"

namespace aceso {

struct DpSolverOptions {
  // Pruning knobs (the paper's).
  int max_microbatch = 16;
  int max_stages = 8;
  // A stage may hold at most this multiple of the even share of ops.
  double max_ops_per_stage_factor = 3.0;
  // Upper bound on total stage candidates priced (safety valve).
  int64_t max_explored = 200'000'000;
};

BaselineResult DpSolverSearch(const PerformanceModel& model,
                              const DpSolverOptions& options = {});

}  // namespace aceso

#endif  // SRC_BASELINES_DP_SOLVER_H_
