// Micro-benchmark: performance-model evaluation throughput. The search
// calls Evaluate() tens of thousands of times per run, so this is Aceso's
// hot path.

#include <benchmark/benchmark.h>

#include "src/aceso.h"

namespace aceso {
namespace {

struct Fixture {
  Fixture(const std::string& name, int gpus, int stages)
      : graph(*models::BuildByName(name)),
        cluster(ClusterSpec::WithGpuCount(gpus)),
        db(cluster),
        model(&graph, cluster, &db),
        config(*MakeEvenConfig(graph, cluster, stages, 2)) {
    // Warm the memoized database so the benchmark measures steady state.
    model.Evaluate(config);
  }
  OpGraph graph;
  ClusterSpec cluster;
  ProfileDatabase db;
  PerformanceModel model;
  ParallelConfig config;
};

void BM_EvaluateGpt(benchmark::State& state) {
  Fixture f("gpt3-1.3b", 8, static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.Evaluate(f.config));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluateGpt)->Arg(1)->Arg(4)->Arg(8);

void BM_EvaluateWideResnet(benchmark::State& state) {
  Fixture f("wresnet-0.5b", 8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.Evaluate(f.config));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluateWideResnet);

void BM_EvaluateDeepTransformer(benchmark::State& state) {
  Fixture f("deepnet-" + std::to_string(state.range(0)), 8, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.Evaluate(f.config));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EvaluateDeepTransformer)->Arg(64)->Arg(256)->Arg(1000);

void BM_SemanticHash(benchmark::State& state) {
  Fixture f("gpt3-1.3b", 8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.config.SemanticHash(f.graph));
  }
}
BENCHMARK(BM_SemanticHash);

void BM_Validate(benchmark::State& state) {
  Fixture f("gpt3-1.3b", 8, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.config.Validate(f.graph, f.cluster));
  }
}
BENCHMARK(BM_Validate);

}  // namespace
}  // namespace aceso

BENCHMARK_MAIN();
