#include "src/cost/batch_eval.h"

#include <algorithm>
#include <cstdint>

#include "src/common/logging.h"

namespace aceso {

void CandidateBatch::Clear() {
  lanes_.clear();
  costs_.clear();
  keepalive_.clear();
  num_stages_ = -1;
  stats_ = BatchEvalStats{};
}

int CandidateBatch::AddLane(const ParallelConfig* config) {
  ACESO_CHECK(config != nullptr) << "batch lane config is null";
  if (num_stages_ < 0) {
    num_stages_ = config->num_stages();
  } else {
    ACESO_CHECK_EQ(config->num_stages(), num_stages_)
        << "batch lanes must share a stage count";
  }
  lanes_.push_back(Lane{config, /*active=*/true, PerfResult{}});
  return static_cast<int>(lanes_.size()) - 1;
}

void CandidateBatch::EvaluateAll() {
  const int L = num_lanes();
  const int p = num_stages_;
  int active_lanes = 0;
  for (const Lane& lane : lanes_) {
    if (lane.active) ++active_lanes;
  }
  if (active_lanes == 0 || p <= 0) {
    return;
  }

  // Charge the model one evaluation per active lane so batched and scalar
  // runs report identical exploration counts (friend access to eval_count_).
  model_.eval_count_.fetch_add(active_lanes, std::memory_order_relaxed);
  stats_.batches += 1;
  stats_.lanes += active_lanes;

  const OpGraph& graph = model_.graph();
  const ClusterSpec& cluster = model_.cluster();
  StageCostCache& cache = model_.stage_cache_;

  costs_.assign(static_cast<size_t>(p) * static_cast<size_t>(L), nullptr);
  keepalive_.clear();

  // --- Resolution: per stage, group lanes whose stage is provably shared
  // (same CoW block identity, same placement offset, same microbatch size)
  // and resolve each distinct group once. Group discovery is an O(G·L)
  // leader scan — candidate groups are small, so no hashing is warranted.
  for (int s = 0; s < p; ++s) {
    const size_t row = static_cast<size_t>(s) * static_cast<size_t>(L);
    for (int leader = 0; leader < L; ++leader) {
      if (!lanes_[static_cast<size_t>(leader)].active ||
          costs_[row + static_cast<size_t>(leader)] != nullptr) {
        continue;
      }
      const ParallelConfig& lead_cfg =
          *lanes_[static_cast<size_t>(leader)].config;
      const void* lead_block = lead_cfg.StageBlockIdentity(s);
      const int lead_first = lead_cfg.StageFirstDevice(s);
      const int lead_mbs = lead_cfg.microbatch_size();

      // Resolve the leader exactly as Evaluate() would this stage.
      std::shared_ptr<const StageCost> resolved;
      if (cache.enabled()) {
        const uint64_t key = lead_cfg.StageSemanticHash(graph, cluster, s);
        resolved = cache.Lookup(key);
        if (resolved == nullptr) {
          resolved = std::make_shared<const StageCost>(
              model_.ComputeStageCost(lead_cfg, s));
          cache.Insert(key, resolved);
        }
      } else {
        resolved = std::make_shared<const StageCost>(
            model_.ComputeStageCost(lead_cfg, s));
      }
      stats_.stage_groups += 1;
      const StageCost* cost = resolved.get();
      keepalive_.push_back(std::move(resolved));

      // Broadcast to every following lane whose stage is identity-equal.
      // Lanes with a distinct block become leaders of their own group later
      // (content-equal duplicates still collapse in the cache, by hash).
      costs_[row + static_cast<size_t>(leader)] = cost;
      for (int lane = leader + 1; lane < L; ++lane) {
        if (!lanes_[static_cast<size_t>(lane)].active ||
            costs_[row + static_cast<size_t>(lane)] != nullptr) {
          continue;
        }
        const ParallelConfig& cfg = *lanes_[static_cast<size_t>(lane)].config;
        if (cfg.StageBlockIdentity(s) == lead_block &&
            cfg.StageFirstDevice(s) == lead_first &&
            cfg.microbatch_size() == lead_mbs) {
          costs_[row + static_cast<size_t>(lane)] = cost;
          stats_.shared_lookups_saved += 1;
        }
      }
    }
  }

  // --- Reduction: stage-major loops, lane-inner. Each lane's accumulators
  // advance through exactly the sequence Evaluate() runs for that config
  // alone; lanes are independent, so interleaving cannot change any bit.
  num_microbatches_.assign(static_cast<size_t>(L), 0);
  warmup_prefix_.assign(static_cast<size_t>(L), 0.0);
  cooldown_prefix_.assign(static_cast<size_t>(L), 0.0);
  max_time_.assign(static_cast<size_t>(L), -1.0);
  max_mem_.assign(static_cast<size_t>(L), -1);

  for (int lane = 0; lane < L; ++lane) {
    Lane& l = lanes_[static_cast<size_t>(lane)];
    if (!l.active) continue;
    num_microbatches_[static_cast<size_t>(lane)] =
        l.config->NumMicrobatches(graph);
    l.perf = PerfResult{};
    l.perf.memory_limit = cluster.gpu.memory_bytes;
    l.perf.stages.resize(static_cast<size_t>(p));
  }

  // Eq. 1: per-stage usage and in-flight memory totals.
  for (int s = 0; s < p; ++s) {
    const size_t row = static_cast<size_t>(s) * static_cast<size_t>(L);
    const int in_flight = std::max(1, p - s);  // 1F1B in-flight microbatches
    for (int lane = 0; lane < L; ++lane) {
      Lane& l = lanes_[static_cast<size_t>(lane)];
      if (!l.active) continue;
      const StageCost& cost = *costs_[row + static_cast<size_t>(lane)];
      StageUsage& usage = l.perf.stages[static_cast<size_t>(s)];
      usage.fwd_time = cost.fwd_time;
      usage.bwd_time = cost.bwd_time;
      usage.comp_time = cost.comp_time;
      usage.comm_time = cost.comm_time;
      usage.recompute_time = cost.recompute_time;
      usage.dp_sync_time = cost.dp_sync_time;
      usage.param_bytes = cost.param_bytes;
      usage.optimizer_bytes = cost.optimizer_bytes;
      usage.activation_bytes_per_mb = cost.activation_bytes_per_mb;
      usage.reserved_bytes = cost.reserved_bytes;
      usage.memory_bytes = cost.param_bytes + cost.optimizer_bytes +
                           cost.activation_bytes_per_mb * in_flight +
                           cost.reserved_bytes;
    }
  }

  // Eq. 2: stage times from the per-lane warmup/cooldown prefixes.
  for (int s = 0; s < p; ++s) {
    for (int lane = 0; lane < L; ++lane) {
      Lane& l = lanes_[static_cast<size_t>(lane)];
      if (!l.active) continue;
      StageUsage& usage = l.perf.stages[static_cast<size_t>(s)];
      usage.warmup_time = warmup_prefix_[static_cast<size_t>(lane)];
      usage.cooldown_time = cooldown_prefix_[static_cast<size_t>(lane)];
      usage.steady_time =
          static_cast<double>(num_microbatches_[static_cast<size_t>(lane)]) *
          (usage.fwd_time + usage.bwd_time);
      usage.stage_time = usage.warmup_time + usage.steady_time +
                         usage.cooldown_time + usage.dp_sync_time;
      warmup_prefix_[static_cast<size_t>(lane)] += usage.fwd_time;
      cooldown_prefix_[static_cast<size_t>(lane)] += usage.bwd_time;
    }
  }

  for (int s = 0; s < p; ++s) {
    for (int lane = 0; lane < L; ++lane) {
      Lane& l = lanes_[static_cast<size_t>(lane)];
      if (!l.active) continue;
      const StageUsage& usage = l.perf.stages[static_cast<size_t>(s)];
      if (usage.stage_time > max_time_[static_cast<size_t>(lane)]) {
        max_time_[static_cast<size_t>(lane)] = usage.stage_time;
        l.perf.slowest_stage = s;
      }
      if (usage.memory_bytes > max_mem_[static_cast<size_t>(lane)]) {
        max_mem_[static_cast<size_t>(lane)] = usage.memory_bytes;
        l.perf.max_memory_stage = s;
      }
    }
  }
  for (int lane = 0; lane < L; ++lane) {
    Lane& l = lanes_[static_cast<size_t>(lane)];
    if (!l.active) continue;
    l.perf.iteration_time = max_time_[static_cast<size_t>(lane)];
    l.perf.oom = max_mem_[static_cast<size_t>(lane)] > l.perf.memory_limit;
  }
}

}  // namespace aceso
