#include "src/config/parallel_config.h"

#include <gtest/gtest.h>

#include "src/ir/models/model_zoo.h"

namespace aceso {
namespace {

TEST(IsPow2Test, Basics) {
  EXPECT_TRUE(IsPow2(1));
  EXPECT_TRUE(IsPow2(2));
  EXPECT_TRUE(IsPow2(1024));
  EXPECT_FALSE(IsPow2(0));
  EXPECT_FALSE(IsPow2(3));
  EXPECT_FALSE(IsPow2(-4));
}

TEST(SplitDevicesPow2Test, EqualSplit) {
  auto split = SplitDevicesPow2(32, 4);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(*split, (std::vector<int>{8, 8, 8, 8}));
}

TEST(SplitDevicesPow2Test, UnevenSplitUsesPow2Parts) {
  auto split = SplitDevicesPow2(32, 3);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(*split, (std::vector<int>{16, 8, 8}));
}

TEST(SplitDevicesPow2Test, SinglePart) {
  auto split = SplitDevicesPow2(8, 1);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(*split, std::vector<int>{8});
}

TEST(SplitDevicesPow2Test, MaximalSplit) {
  auto split = SplitDevicesPow2(8, 8);
  ASSERT_TRUE(split.ok());
  EXPECT_EQ(*split, std::vector<int>(8, 1));
}

TEST(SplitDevicesPow2Test, TooManyPartsFails) {
  EXPECT_FALSE(SplitDevicesPow2(4, 5).ok());
}

TEST(SplitDevicesPow2Test, NonPow2TotalFails) {
  EXPECT_FALSE(SplitDevicesPow2(12, 2).ok());
}

// Property sweep: every (total, parts) split sums to the total and consists
// of powers of two.
class SplitSweepTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SplitSweepTest, SumsAndPow2) {
  const auto [total, parts] = GetParam();
  auto split = SplitDevicesPow2(total, parts);
  if (parts > total) {
    EXPECT_FALSE(split.ok());
    return;
  }
  ASSERT_TRUE(split.ok());
  ASSERT_EQ(static_cast<int>(split->size()), parts);
  int sum = 0;
  for (int v : *split) {
    EXPECT_TRUE(IsPow2(v));
    sum += v;
  }
  EXPECT_EQ(sum, total);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SplitSweepTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16, 32),
                       ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8)));

class ConfigTest : public ::testing::Test {
 protected:
  OpGraph graph_ = models::Gpt3(0.35);
  ClusterSpec cluster_ = ClusterSpec::WithGpuCount(8);
};

TEST_F(ConfigTest, EvenConfigValidates) {
  auto config = MakeEvenConfig(graph_, cluster_, 4, 1);
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_TRUE(config->Validate(graph_, cluster_).ok());
  EXPECT_EQ(config->num_stages(), 4);
  EXPECT_EQ(config->TotalDevices(), 8);
}

TEST_F(ConfigTest, EvenConfigCoversAllOps) {
  auto config = MakeEvenConfig(graph_, cluster_, 3, 1);
  ASSERT_TRUE(config.ok());
  int ops = 0;
  for (const StageConfig& s : config->stages()) {
    ops += s.num_ops;
  }
  EXPECT_EQ(ops, graph_.num_ops());
}

TEST_F(ConfigTest, StageOfOpConsistent) {
  auto config = MakeEvenConfig(graph_, cluster_, 4, 1);
  ASSERT_TRUE(config.ok());
  for (int i = 0; i < graph_.num_ops(); ++i) {
    const int s = config->StageOfOp(i);
    const StageConfig& stage = config->stage(s);
    EXPECT_GE(i, stage.first_op);
    EXPECT_LT(i, stage.end_op());
  }
}

TEST_F(ConfigTest, StageFirstDeviceCumulative) {
  auto config = MakeEvenConfig(graph_, cluster_, 4, 1);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config->StageFirstDevice(0), 0);
  int expected = 0;
  for (int s = 0; s < config->num_stages(); ++s) {
    EXPECT_EQ(config->StageFirstDevice(s), expected);
    expected += config->stage(s).num_devices;
  }
}

TEST_F(ConfigTest, NumMicrobatches) {
  auto config = MakeEvenConfig(graph_, cluster_, 2, 1);
  ASSERT_TRUE(config.ok());
  config->set_microbatch_size(4);
  EXPECT_EQ(config->NumMicrobatches(graph_), 256);  // batch 1024 / 4
}

TEST_F(ConfigTest, ValidateRejectsBadMicrobatch) {
  auto config = MakeEvenConfig(graph_, cluster_, 2, 1);
  ASSERT_TRUE(config.ok());
  config->set_microbatch_size(3);  // does not divide 1024
  EXPECT_FALSE(config->Validate(graph_, cluster_).ok());
}

TEST_F(ConfigTest, ValidateRejectsDeviceMismatch) {
  auto config = MakeEvenConfig(graph_, cluster_, 2, 1);
  ASSERT_TRUE(config.ok());
  config->MutableStage(0).num_devices = 2;  // total now 6 != 8
  EXPECT_FALSE(config->Validate(graph_, cluster_).ok());
}

TEST_F(ConfigTest, ValidateRejectsGapInOpCoverage) {
  auto config = MakeEvenConfig(graph_, cluster_, 2, 1);
  ASSERT_TRUE(config.ok());
  config->MutableStage(1).first_op += 1;
  EXPECT_FALSE(config->Validate(graph_, cluster_).ok());
}

TEST_F(ConfigTest, ValidateRejectsNonPow2Tp) {
  auto config = MakeEvenConfig(graph_, cluster_, 1, 1);
  ASSERT_TRUE(config.ok());
  // Force an invalid tp on some partitioned op.
  for (int i = 0; i < graph_.num_ops(); ++i) {
    if (graph_.op(i).tp_class == TpClass::kPartitioned) {
      config->MutableOpSettings(i).tp = 3;
      break;
    }
  }
  EXPECT_FALSE(config->Validate(graph_, cluster_).ok());
}

TEST_F(ConfigTest, ValidateRejectsTpTimesDpMismatch) {
  auto config = MakeEvenConfig(graph_, cluster_, 1, 1);
  ASSERT_TRUE(config.ok());
  config->MutableOpSettings(0).tp = 1;
  config->MutableOpSettings(0).dp = 1;  // 1*1 != 8 devices
  EXPECT_FALSE(config->Validate(graph_, cluster_).ok());
}

TEST_F(ConfigTest, ValidateRejectsDpNotDividingMbs) {
  auto config = MakeEvenConfig(graph_, cluster_, 1, 1);
  ASSERT_TRUE(config.ok());
  // dp = 8 on some op while mbs = 1.
  config->MutableOpSettings(0).tp = 1;
  config->MutableOpSettings(0).dp = 8;
  config->set_microbatch_size(1);
  EXPECT_FALSE(config->Validate(graph_, cluster_).ok());
}

struct TagAnnotation : StageAnnotation {
  explicit TagAnnotation(int tag) : tag(tag) {}
  int tag;
};

TEST_F(ConfigTest, StageAnnotationPublishesOnceAndDiesWithWordCache) {
  auto config = MakeEvenConfig(graph_, cluster_, 2, 1);
  ASSERT_TRUE(config.ok());
  // No word cache yet: nothing to hang an annotation on.
  EXPECT_EQ(config->StageWordAnnotation(graph_, 0), nullptr);
  EXPECT_EQ(
      config->PublishStageWordAnnotation(graph_, 0, new TagAnnotation(1)),
      nullptr);
  // Hashing fills the word cache; the first publish wins, later ones read
  // the incumbent back.
  config->SemanticHash(graph_);
  const StageAnnotation* won =
      config->PublishStageWordAnnotation(graph_, 0, new TagAnnotation(2));
  ASSERT_NE(won, nullptr);
  EXPECT_EQ(static_cast<const TagAnnotation*>(won)->tag, 2);
  const StageAnnotation* second =
      config->PublishStageWordAnnotation(graph_, 0, new TagAnnotation(3));
  EXPECT_EQ(second, won);
  EXPECT_EQ(config->StageWordAnnotation(graph_, 0), won);
  // Copies share the block, and with it the annotation.
  const ParallelConfig copy = *config;
  EXPECT_EQ(copy.StageWordAnnotation(graph_, 0), won);
  // Mutation drops the annotation along with the words it described; the
  // unmutated copy keeps its (shared, still-valid) annotation.
  config->MutableStage(1);
  EXPECT_EQ(config->StageWordAnnotation(graph_, 0), won);  // stage 0 intact
  config->MutableStage(0);
  config->SemanticHash(graph_);
  EXPECT_EQ(config->StageWordAnnotation(graph_, 0), nullptr);
  EXPECT_EQ(copy.StageWordAnnotation(graph_, 0), won);
}

TEST_F(ConfigTest, SemanticHashStableAcrossCopies) {
  auto config = MakeEvenConfig(graph_, cluster_, 4, 1);
  ASSERT_TRUE(config.ok());
  const ParallelConfig copy = *config;
  EXPECT_EQ(config->SemanticHash(graph_), copy.SemanticHash(graph_));
}

TEST_F(ConfigTest, SemanticHashSensitiveToSettings) {
  auto config = MakeEvenConfig(graph_, cluster_, 4, 1);
  ASSERT_TRUE(config.ok());
  const uint64_t base = config->SemanticHash(graph_);

  ParallelConfig mbs_changed = *config;
  mbs_changed.set_microbatch_size(2);
  EXPECT_NE(base, mbs_changed.SemanticHash(graph_));

  ParallelConfig rc_changed = *config;
  rc_changed.MutableOpSettings(1).recompute = true;
  EXPECT_NE(base, rc_changed.SemanticHash(graph_));
}

TEST_F(ConfigTest, SemanticHashIgnoresDimWhenTpIsOne) {
  auto config = MakeEvenConfig(graph_, cluster_, 8, 1);
  ASSERT_TRUE(config.ok());
  // With 1-device stages every op has tp=1; flipping dims must not change
  // the hash (the configurations are semantically identical).
  const uint64_t base = config->SemanticHash(graph_);
  ParallelConfig flipped = *config;
  for (int i = 0; i < graph_.num_ops(); ++i) {
    OpParallel& setting = flipped.MutableOpSettings(i);
    if (setting.tp == 1) {
      setting.tp_dim =
          setting.tp_dim == TpDim::kColumn ? TpDim::kRow : TpDim::kColumn;
    }
  }
  EXPECT_EQ(base, flipped.SemanticHash(graph_));
}

TEST_F(ConfigTest, ImbalancedGeneratorsValidate) {
  auto op_imbalanced = MakeOpImbalancedConfig(graph_, cluster_, 4, 1);
  ASSERT_TRUE(op_imbalanced.ok());
  EXPECT_TRUE(op_imbalanced->Validate(graph_, cluster_).ok());

  auto gpu_imbalanced = MakeGpuImbalancedConfig(graph_, cluster_, 3, 1);
  ASSERT_TRUE(gpu_imbalanced.ok());
  EXPECT_TRUE(gpu_imbalanced->Validate(graph_, cluster_).ok());
}

TEST_F(ConfigTest, OpImbalancedSkewsOpCounts) {
  auto even = MakeEvenConfig(graph_, cluster_, 4, 1);
  auto skewed = MakeOpImbalancedConfig(graph_, cluster_, 4, 1);
  ASSERT_TRUE(even.ok());
  ASSERT_TRUE(skewed.ok());
  // The skewed config's first stage has fewer ops than the even one's.
  EXPECT_LT(skewed->stage(0).num_ops, even->stage(0).num_ops);
}

TEST_F(ConfigTest, TooManyStagesFails) {
  EXPECT_FALSE(MakeEvenConfig(graph_, cluster_, 9, 1).ok());  // > 8 GPUs
}

TEST_F(ConfigTest, SetUniformParallelismClampsPerOp) {
  auto config = MakeEvenConfig(graph_, cluster_, 1, 1);
  ASSERT_TRUE(config.ok());
  StageConfig& stage = config->MutableStage(0);
  stage.SetUniformParallelism(graph_, 8, 1);
  for (int i = 0; i < stage.num_ops; ++i) {
    const Operator& op = graph_.op(i);
    const OpParallel& setting = stage.ops[static_cast<size_t>(i)];
    EXPECT_EQ(setting.tp * setting.dp, 8) << op.name;
    if (op.tp_class == TpClass::kPartitioned) {
      EXPECT_LE(setting.tp, std::max(op.max_tp, 1)) << op.name;
    }
  }
}

TEST_F(ConfigTest, ShortStringMentionsStages) {
  auto config = MakeEvenConfig(graph_, cluster_, 2, 1);
  ASSERT_TRUE(config.ok());
  const std::string s = config->ShortString();
  EXPECT_NE(s.find("s0["), std::string::npos);
  EXPECT_NE(s.find("s1["), std::string::npos);
}

// Property sweep: even configs across models/stage counts validate and
// respect the minimum-microbatch invariant.
class EvenConfigSweep
    : public ::testing::TestWithParam<std::tuple<std::string, int, int>> {};

TEST_P(EvenConfigSweep, ValidatesEverywhere) {
  const auto& [model_name, gpus, stages] = GetParam();
  auto graph = models::BuildByName(model_name);
  ASSERT_TRUE(graph.ok());
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(gpus);
  auto config = MakeEvenConfig(*graph, cluster, stages, 1);
  if (stages > gpus) {
    EXPECT_FALSE(config.ok());
    return;
  }
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_TRUE(config->Validate(*graph, cluster).ok());
  // mbs is the minimum feasible: every op's dp divides it.
  for (const StageConfig& stage : config->stages()) {
    for (const OpParallel& setting : stage.ops) {
      EXPECT_EQ(config->microbatch_size() % setting.dp, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EvenConfigSweep,
    ::testing::Combine(::testing::Values("gpt3-0.35b", "t5-0.77b",
                                         "wresnet-0.5b"),
                       ::testing::Values(4, 8, 16),
                       ::testing::Values(1, 2, 3, 4, 6, 8)));

}  // namespace
}  // namespace aceso
