#include "src/profile/profile_db.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/common/rng.h"

namespace aceso {
namespace {

// Relative standard deviation of simulated per-run timing noise.
constexpr double kRunJitter = 0.02;

// A stable per-key systematic bias (kernel selection, clock effects): the
// database "measures" this consistently, and the runtime simulator sees the
// same bias, so prediction error comes from modelling differences rather
// than raw noise.
double SystematicBias(uint64_t key_hash, double relative_magnitude) {
  // Map hash to [-1, 1] deterministically.
  const double unit =
      static_cast<double>(MixU64(key_hash) >> 11) * 0x1.0p-53 * 2.0 - 1.0;
  return 1.0 + relative_magnitude * unit;
}

int Log2Floor(int64_t v) {
  int l = 0;
  while (v > 1) {
    v >>= 1;
    ++l;
  }
  return l;
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

// First snapshot publication waits for this many entries: during the first
// few evaluations the maps churn too fast for a snapshot to pay for itself.
constexpr size_t kSnapshotWarmupEntries = 64;

// Source of per-instance L1 generation tags. The thread-local L1 arrays are
// shared by every ProfileDatabase in the process (tests routinely create
// several), so each entry is tagged with the owning instance's generation
// and only exact (generation, key) matches hit. Starts at 1; tag 0 marks an
// empty L1 slot.
std::atomic<uint64_t> g_db_generation{1};

// Thread-local direct-mapped L1 for the hottest lookups. Sized so the
// working set of one stage walk (a few dozen distinct op keys, a handful of
// collective buckets) fits with room for conflict misses; ~6 KiB per thread.
constexpr size_t kL1OpSlots = 256;
constexpr size_t kL1CommSlots = 128;

struct L1OpEntry {
  uint64_t gen = 0;
  uint64_t key = 0;
  OpMeasurement value;
};

struct L1CommEntry {
  uint64_t gen = 0;
  uint64_t key = 0;
  double value = 0.0;
};

L1OpEntry& L1OpSlot(uint64_t hash) {
  thread_local std::array<L1OpEntry, kL1OpSlots> slots{};
  return slots[static_cast<size_t>(hash) & (kL1OpSlots - 1)];
}

L1CommEntry& L1CommSlot(uint64_t hash) {
  thread_local std::array<L1CommEntry, kL1CommSlots> slots{};
  return slots[static_cast<size_t>(hash) & (kL1CommSlots - 1)];
}

}  // namespace

// Immutable open-addressing view of the memo maps. Built under
// `republish_mu_` from the sharded maps (locking one shard at a time — a
// snapshot may lack entries inserted concurrently with the rebuild; those
// simply fall through to the sharded path) and published with a release
// exchange. Load factor is kept at or below 1/2, so every probe sequence
// terminates at an empty slot. Key 0 is the empty-slot sentinel: an entry
// whose real hash is 0 (improbable for a Hasher digest, but possible) is
// never added and always takes the locked path.
struct ProfileDatabase::Snapshot {
  struct OpSlot {
    uint64_t key = 0;
    OpMeasurement value;
  };
  struct CommSlot {
    uint64_t key = 0;
    double value = 0.0;
  };

  std::vector<OpSlot> ops;
  size_t op_mask = 0;
  std::vector<CommSlot> comms;
  size_t comm_mask = 0;

  static size_t TableSize(size_t entries) {
    return RoundUpPow2(std::max<size_t>(2 * entries, 16));
  }

  void InsertOp(uint64_t key, const OpMeasurement& value) {
    size_t i = static_cast<size_t>(key) & op_mask;
    while (ops[i].key != 0) {
      i = (i + 1) & op_mask;
    }
    ops[i].key = key;
    ops[i].value = value;
  }

  void InsertComm(uint64_t key, double value) {
    size_t i = static_cast<size_t>(key) & comm_mask;
    while (comms[i].key != 0) {
      i = (i + 1) & comm_mask;
    }
    comms[i].key = key;
    comms[i].value = value;
  }

  const OpMeasurement* FindOp(uint64_t key) const {
    if (key == 0 || ops.empty()) {
      return nullptr;
    }
    size_t i = static_cast<size_t>(key) & op_mask;
    while (true) {
      const OpSlot& slot = ops[i];
      if (slot.key == key) {
        return &slot.value;
      }
      if (slot.key == 0) {
        return nullptr;
      }
      i = (i + 1) & op_mask;
    }
  }

  const double* FindComm(uint64_t key) const {
    if (key == 0 || comms.empty()) {
      return nullptr;
    }
    size_t i = static_cast<size_t>(key) & comm_mask;
    while (true) {
      const CommSlot& slot = comms[i];
      if (slot.key == key) {
        return &slot.value;
      }
      if (slot.key == 0) {
        return nullptr;
      }
      i = (i + 1) & comm_mask;
    }
  }
};

uint64_t OpProfileKey::Hash() const {
  Hasher h;
  h.Add(op_signature);
  h.Add(shard_degree);
  h.Add(local_batch);
  h.Add(precision);
  return h.Digest();
}

uint64_t CommProfileKey::Hash() const {
  Hasher h;
  h.Add(kind);
  h.Add(group_size);
  h.Add(crosses_nodes);
  h.Add(log2_bytes);
  // Offset the domain so comm keys never collide with op keys.
  h.Add(uint64_t{0xC0111EC7});
  return h.Digest();
}

SimulatedProfiler::SimulatedProfiler(const ClusterSpec& cluster, uint64_t seed,
                                     int runs_per_measurement)
    : cluster_(cluster), interconnect_(cluster), seed_(seed),
      runs_(runs_per_measurement) {}

OpMeasurement SimulatedProfiler::MeasureOp(const Operator& op,
                                           const OpProfileKey& key) const {
  const double batch = static_cast<double>(key.local_batch);
  const double shards = static_cast<double>(key.shard_degree);
  const double flops = op.fwd_flops * batch / shards;
  // Forward traffic: read input + params shard, write output.
  const int64_t fwd_bytes = static_cast<int64_t>(
      (static_cast<double>(op.in_bytes + op.out_bytes) * batch +
       static_cast<double>(op.param_bytes)) /
      shards);
  const auto precision = static_cast<Precision>(key.precision);
  const double fwd_ideal = cluster_.gpu.ComputeTime(flops, fwd_bytes, precision);
  // Backward: ~2x FLOPs (grad wrt input and wrt weights) and ~2x traffic.
  const double bwd_ideal =
      cluster_.gpu.ComputeTime(2.0 * flops, 2 * fwd_bytes, precision);

  const uint64_t key_hash = key.Hash();
  const double bias = SystematicBias(key_hash ^ seed_, 0.05);

  // Average `runs_` jittered runs, like the paper's 50-run averaging.
  Rng rng(key_hash ^ MixU64(seed_));
  double fwd_sum = 0.0;
  double bwd_sum = 0.0;
  for (int r = 0; r < runs_; ++r) {
    fwd_sum += fwd_ideal * bias * (1.0 + rng.NextGaussian(0.0, kRunJitter));
    bwd_sum += bwd_ideal * bias * (1.0 + rng.NextGaussian(0.0, kRunJitter));
  }
  OpMeasurement m;
  m.fwd_seconds = std::max(fwd_sum / runs_, 1e-9);
  m.bwd_seconds = std::max(bwd_sum / runs_, 1e-9);
  return m;
}

double SimulatedProfiler::MeasureCollective(const CommProfileKey& key) const {
  CommDomain domain;
  domain.size = key.group_size;
  domain.crosses_nodes = key.crosses_nodes;
  const int64_t bytes = int64_t{1} << key.log2_bytes;
  const double ideal = interconnect_.CollectiveTime(
      static_cast<CollectiveKind>(key.kind), bytes, domain);
  const uint64_t key_hash = key.Hash();
  const double bias = SystematicBias(key_hash ^ seed_, 0.08);
  Rng rng(key_hash ^ MixU64(seed_));
  double sum = 0.0;
  for (int r = 0; r < runs_; ++r) {
    sum += ideal * bias * (1.0 + rng.NextGaussian(0.0, kRunJitter));
  }
  return std::max(sum / runs_, 0.0);
}

double SimulatedProfiler::SimulatedMeasurementCost(
    const OpMeasurement& m) const {
  return runs_ * (m.fwd_seconds + m.bwd_seconds);
}

ProfileDatabase::ProfileDatabase(const ClusterSpec& cluster, uint64_t seed)
    : cluster_(cluster),
      profiler_(cluster, seed),
      generation_(g_db_generation.fetch_add(1, std::memory_order_relaxed)) {}

ProfileDatabase::~ProfileDatabase() {
  delete snapshot_.load(std::memory_order_acquire);
  for (const Snapshot* snap : retired_) {
    delete snap;
  }
}

void ProfileDatabase::MaybeRepublish() {
  if (!read_opt_enabled_.load(std::memory_order_relaxed)) {
    return;
  }
  const size_t total = total_entries_.load(std::memory_order_relaxed);
  const size_t published = snapshot_entries_.load(std::memory_order_relaxed);
  if (total < kSnapshotWarmupEntries) {
    return;  // still warming up
  }
  // Geometric growth gate: republish only after ≥25% new entries, so total
  // rebuild work over a search is O(n log n) and retired-snapshot memory is
  // a constant factor of the final table.
  if (published > 0 && total < published + published / 4) {
    return;
  }
  RepublishSnapshot(/*block=*/false);
}

void ProfileDatabase::RepublishSnapshot(bool block) {
  std::unique_lock<std::mutex> lock(republish_mu_, std::defer_lock);
  if (block) {
    lock.lock();
  } else {
    if (!lock.try_lock()) {
      return;  // another thread is already rebuilding
    }
    // Re-check the growth gate: the thread we raced may have just
    // published a snapshot covering our insert.
    const size_t total = total_entries_.load(std::memory_order_relaxed);
    const size_t published = snapshot_entries_.load(std::memory_order_relaxed);
    if (published > 0 && total < published + published / 4) {
      return;
    }
  }

  std::vector<std::pair<uint64_t, OpMeasurement>> ops;
  std::vector<std::pair<uint64_t, double>> comms;
  for (const Shard& shard : shards_) {
    auto shard_lock = LockShard(shard);
    ops.insert(ops.end(), shard.op_entries.begin(), shard.op_entries.end());
    comms.insert(comms.end(), shard.comm_entries.begin(),
                 shard.comm_entries.end());
  }

  auto* snap = new Snapshot;
  snap->ops.resize(Snapshot::TableSize(ops.size()));
  snap->op_mask = snap->ops.size() - 1;
  snap->comms.resize(Snapshot::TableSize(comms.size()));
  snap->comm_mask = snap->comms.size() - 1;
  for (const auto& [key, value] : ops) {
    if (key != 0) {  // 0 is the empty-slot sentinel
      snap->InsertOp(key, value);
    }
  }
  for (const auto& [key, value] : comms) {
    if (key != 0) {
      snap->InsertComm(key, value);
    }
  }

  const Snapshot* old =
      snapshot_.exchange(snap, std::memory_order_acq_rel);
  if (old != nullptr) {
    retired_.push_back(old);
  }
  snapshot_entries_.store(ops.size() + comms.size(),
                          std::memory_order_relaxed);
  republishes_.fetch_add(1, std::memory_order_relaxed);
}

std::unique_lock<std::mutex> ProfileDatabase::LockShard(
    const Shard& shard) const {
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    lock_contended_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

OpMeasurement ProfileDatabase::OpTime(const Operator& op, Precision precision,
                                      int shard_degree, int local_batch) {
  OpProfileKey key;
  key.op_signature = op.Signature();
  key.shard_degree = shard_degree;
  key.local_batch = local_batch;
  key.precision = static_cast<int>(precision);
  const uint64_t hash = key.Hash();
  lookups_.fetch_add(1, std::memory_order_relaxed);

  // Lock-free hit path: thread-local L1, then the published snapshot.
  // Published values are immutable, so these return the exact bits the
  // locked path would.
  const bool read_opt = read_opt_enabled_.load(std::memory_order_relaxed);
  const uint64_t gen = generation_.load(std::memory_order_relaxed);
  L1OpEntry& l1 = L1OpSlot(hash);
  if (read_opt) {
    if (l1.gen == gen && l1.key == hash) {
      l1_hits_.fetch_add(1, std::memory_order_relaxed);
      return l1.value;
    }
    if (const Snapshot* snap = snapshot_.load(std::memory_order_acquire)) {
      if (const OpMeasurement* found = snap->FindOp(hash)) {
        snapshot_hits_.fetch_add(1, std::memory_order_relaxed);
        l1 = L1OpEntry{gen, hash, *found};
        return *found;
      }
    }
  }

  Shard& shard = ShardFor(hash);
  {
    auto lock = LockShard(shard);
    auto it = shard.op_entries.find(hash);
    if (it != shard.op_entries.end()) {
      const OpMeasurement found = it->second;
      lock.unlock();
      if (read_opt) {
        l1 = L1OpEntry{gen, hash, found};
      }
      return found;
    }
  }
  // Miss: measure with the shard unlocked (the measurement averages
  // `runs_` simulated runs and is the expensive part — holding the lock
  // here would convoy every concurrent lookup of this shard behind it),
  // then double-check: emplace ignores our value if another filler beat us.
  misses_.fetch_add(1, std::memory_order_relaxed);
  const OpMeasurement m = profiler_.MeasureOp(op, key);
  OpMeasurement published;
  bool fresh = false;
  {
    auto lock = LockShard(shard);
    auto [it, inserted] = shard.op_entries.emplace(hash, m);
    if (inserted) {
      shard.simulated_profiling_seconds +=
          profiler_.SimulatedMeasurementCost(m);
    }
    published = it->second;
    fresh = inserted;
  }
  if (fresh) {
    total_entries_.fetch_add(1, std::memory_order_relaxed);
    MaybeRepublish();
  }
  if (read_opt) {
    l1 = L1OpEntry{gen, hash, published};
  }
  return published;
}

double ProfileDatabase::CollectiveBucketTime(const CommProfileKey& key) {
  const uint64_t hash = key.Hash();
  lookups_.fetch_add(1, std::memory_order_relaxed);

  const bool read_opt = read_opt_enabled_.load(std::memory_order_relaxed);
  const uint64_t gen = generation_.load(std::memory_order_relaxed);
  L1CommEntry& l1 = L1CommSlot(hash);
  if (read_opt) {
    if (l1.gen == gen && l1.key == hash) {
      l1_hits_.fetch_add(1, std::memory_order_relaxed);
      return l1.value;
    }
    if (const Snapshot* snap = snapshot_.load(std::memory_order_acquire)) {
      if (const double* found = snap->FindComm(hash)) {
        snapshot_hits_.fetch_add(1, std::memory_order_relaxed);
        l1 = L1CommEntry{gen, hash, *found};
        return *found;
      }
    }
  }

  Shard& shard = ShardFor(hash);
  {
    auto lock = LockShard(shard);
    auto it = shard.comm_entries.find(hash);
    if (it != shard.comm_entries.end()) {
      const double found = it->second;
      lock.unlock();
      if (read_opt) {
        l1 = L1CommEntry{gen, hash, found};
      }
      return found;
    }
  }
  // Same unlocked-measure + first-writer-wins insert as OpTime.
  misses_.fetch_add(1, std::memory_order_relaxed);
  const double t = profiler_.MeasureCollective(key);
  double published = 0.0;
  bool fresh = false;
  {
    auto lock = LockShard(shard);
    auto [it, inserted] = shard.comm_entries.emplace(hash, t);
    if (inserted) {
      shard.simulated_profiling_seconds += 50 * t;
    }
    published = it->second;
    fresh = inserted;
  }
  if (fresh) {
    total_entries_.fetch_add(1, std::memory_order_relaxed);
    MaybeRepublish();
  }
  if (read_opt) {
    l1 = L1CommEntry{gen, hash, published};
  }
  return published;
}

double ProfileDatabase::CollectiveTime(CollectiveKind kind, int64_t bytes,
                                       const CommDomain& domain) {
  if (domain.size <= 1 || bytes <= 0) {
    return 0.0;
  }
  CommProfileKey key;
  key.kind = static_cast<int>(kind);
  key.group_size = domain.size;
  key.crosses_nodes = domain.crosses_nodes;
  key.log2_bytes = Log2Floor(bytes);
  const double low = CollectiveBucketTime(key);
  const int64_t low_bytes = int64_t{1} << key.log2_bytes;
  if (bytes == low_bytes) {
    return low;
  }
  CommProfileKey high_key = key;
  ++high_key.log2_bytes;
  const double high = CollectiveBucketTime(high_key);
  const double frac = static_cast<double>(bytes - low_bytes) /
                      static_cast<double>(low_bytes);
  return low + (high - low) * frac;
}

size_t ProfileDatabase::NumEntries() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    auto lock = LockShard(shard);
    total += shard.op_entries.size() + shard.comm_entries.size();
  }
  return total;
}

double ProfileDatabase::SimulatedProfilingSeconds() const {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    auto lock = LockShard(shard);
    total += shard.simulated_profiling_seconds;
  }
  return total;
}

ProfileDbStats ProfileDatabase::stats() const {
  ProfileDbStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.lock_contended = lock_contended_.load(std::memory_order_relaxed);
  s.l1_hits = l1_hits_.load(std::memory_order_relaxed);
  s.snapshot_hits = snapshot_hits_.load(std::memory_order_relaxed);
  s.republishes = republishes_.load(std::memory_order_relaxed);
  return s;
}

// ---- Versioned binary snapshot files (DESIGN.md §14) ----
//
// Layout (all integers host-endian, doubles as raw IEEE-754 bit patterns so
// values round-trip bit-exactly):
//
//   magic   "ACESOPDB"                                  8 bytes
//   u32     format version (kSnapshotFormatVersion)
//   u32     reserved (0)
//   ClusterSpec: gpu name (u32 length + bytes), gpu doubles (peak_fp16,
//     peak_fp32, hbm_bandwidth, kernel_launch, max_efficiency,
//     half_saturation), i64 memory_bytes, i32 num_nodes, i32 gpus_per_node,
//     doubles nvlink_bw, nvlink_lat, ib_bw, ib_lat
//   u64     ClusterSpec fingerprint (redundant with the spec; lets readers
//           validate without re-deriving)
//   u64     op entry count, u64 comm entry count
//   op entries   (u64 key, f64 fwd, f64 bwd) sorted by key
//   comm entries (u64 key, f64 time) sorted by key
//   u64     FNV-1a checksum of every preceding byte
//
// Entries are sorted, so two databases with equal contents produce
// byte-identical files regardless of insertion order or shard layout.

namespace {

constexpr char kSnapshotMagic[8] = {'A', 'C', 'E', 'S', 'O', 'P', 'D', 'B'};
constexpr uint32_t kSnapshotFormatVersion = 2;

class ByteWriter {
 public:
  void Raw(const void* data, size_t size) {
    buf_.append(static_cast<const char*>(data), size);
  }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void I32(int32_t v) { Raw(&v, sizeof(v)); }
  void I64(int64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) {
    uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    Raw(s.data(), s.size());
  }
  const std::string& bytes() const { return buf_; }

 private:
  std::string buf_;
};

// Bounds-checked cursor over a loaded file; every read reports whether the
// bytes were there, so truncated or lying-count files fail cleanly.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  bool Raw(void* out, size_t size) {
    if (data_.size() - pos_ < size) {
      return false;
    }
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
    return true;
  }
  bool U32(uint32_t* v) { return Raw(v, sizeof(*v)); }
  bool U64(uint64_t* v) { return Raw(v, sizeof(*v)); }
  bool I32(int32_t* v) { return Raw(v, sizeof(*v)); }
  bool I64(int64_t* v) { return Raw(v, sizeof(*v)); }
  bool F64(double* v) {
    uint64_t bits;
    if (!U64(&bits)) {
      return false;
    }
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }
  bool Str(std::string* s) {
    uint32_t size = 0;
    if (!U32(&size) || data_.size() - pos_ < size) {
      return false;
    }
    s->assign(data_.data() + pos_, size);
    pos_ += size;
    return true;
  }
  size_t pos() const { return pos_; }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

void WriteClusterSpec(ByteWriter& w, const ClusterSpec& c) {
  w.Str(c.gpu.name);
  w.F64(c.gpu.peak_fp16_flops);
  w.F64(c.gpu.peak_fp32_flops);
  w.F64(c.gpu.hbm_bandwidth);
  w.F64(c.gpu.kernel_launch_seconds);
  w.F64(c.gpu.max_efficiency);
  w.F64(c.gpu.half_saturation_flops);
  w.I64(c.gpu.memory_bytes);
  w.I32(c.num_nodes);
  w.I32(c.gpus_per_node);
  w.F64(c.nvlink_bandwidth);
  w.F64(c.nvlink_latency);
  w.F64(c.ib_bandwidth);
  w.F64(c.ib_latency);
}

bool ReadClusterSpec(ByteReader& r, ClusterSpec* c) {
  return r.Str(&c->gpu.name) && r.F64(&c->gpu.peak_fp16_flops) &&
         r.F64(&c->gpu.peak_fp32_flops) && r.F64(&c->gpu.hbm_bandwidth) &&
         r.F64(&c->gpu.kernel_launch_seconds) &&
         r.F64(&c->gpu.max_efficiency) &&
         r.F64(&c->gpu.half_saturation_flops) && r.I64(&c->gpu.memory_bytes) &&
         r.I32(&c->num_nodes) && r.I32(&c->gpus_per_node) &&
         r.F64(&c->nvlink_bandwidth) && r.F64(&c->nvlink_latency) &&
         r.F64(&c->ib_bandwidth) && r.F64(&c->ib_latency);
}

// A fully parsed and validated snapshot file.
struct ParsedSnapshot {
  ProfileSnapshotInfo info;
  std::vector<std::pair<uint64_t, OpMeasurement>> ops;
  std::vector<std::pair<uint64_t, double>> comms;
};

Status CorruptSnapshot(const std::string& path, const std::string& what) {
  return InvalidArgument("corrupt profile snapshot " + path + ": " + what);
}

// Reads and validates a snapshot file end to end. Validation order: magic,
// then version (before the checksum, so an old/new-format file reports a
// version mismatch rather than "corrupt"), then the whole-file checksum,
// then structure. Only a file that passes all four yields entries.
StatusOr<ParsedSnapshot> ParseSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return NotFound("cannot open profile snapshot: " + path);
  }
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Internal("read error on profile snapshot: " + path);
  }

  constexpr size_t kMinSize = sizeof(kSnapshotMagic) + 2 * sizeof(uint32_t) +
                              sizeof(uint64_t);  // header + checksum
  if (data.size() < sizeof(kSnapshotMagic) ||
      std::memcmp(data.data(), kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return InvalidArgument("not an Aceso profile snapshot (bad magic): " +
                           path);
  }
  if (data.size() < kMinSize) {
    return CorruptSnapshot(path, "truncated header");
  }

  ByteReader reader(std::string_view(data).substr(0, data.size() - 8));
  char magic[8];
  uint32_t version = 0;
  uint32_t reserved = 0;
  reader.Raw(magic, sizeof(magic));
  if (!reader.U32(&version) || !reader.U32(&reserved)) {
    return CorruptSnapshot(path, "truncated header");
  }
  if (version != kSnapshotFormatVersion) {
    return FailedPrecondition(
        "profile snapshot " + path + " has format version " +
        std::to_string(version) + "; this build reads version " +
        std::to_string(kSnapshotFormatVersion));
  }

  uint64_t stored_checksum = 0;
  std::memcpy(&stored_checksum, data.data() + data.size() - 8, 8);
  const uint64_t computed =
      FnvHashBytes(data.data(), data.size() - 8);
  if (stored_checksum != computed) {
    return CorruptSnapshot(path, "checksum mismatch (truncated or damaged)");
  }

  ParsedSnapshot parsed;
  if (!ReadClusterSpec(reader, &parsed.info.cluster) ||
      !reader.U64(&parsed.info.cluster_fingerprint) ||
      !reader.U64(&parsed.info.op_entries) ||
      !reader.U64(&parsed.info.comm_entries)) {
    return CorruptSnapshot(path, "truncated cluster header");
  }
  // Guard the counts against overflow before trusting them: each op entry is
  // 24 bytes, each comm entry 16.
  const uint64_t need = parsed.info.op_entries * 24 +
                        parsed.info.comm_entries * 16;
  if (parsed.info.op_entries > (uint64_t{1} << 32) ||
      parsed.info.comm_entries > (uint64_t{1} << 32) ||
      reader.remaining() != need) {
    return CorruptSnapshot(path, "entry counts disagree with file size");
  }
  parsed.ops.reserve(static_cast<size_t>(parsed.info.op_entries));
  for (uint64_t i = 0; i < parsed.info.op_entries; ++i) {
    uint64_t key = 0;
    OpMeasurement m;
    if (!reader.U64(&key) || !reader.F64(&m.fwd_seconds) ||
        !reader.F64(&m.bwd_seconds)) {
      return CorruptSnapshot(path, "truncated op entries");
    }
    parsed.ops.emplace_back(key, m);
  }
  parsed.comms.reserve(static_cast<size_t>(parsed.info.comm_entries));
  for (uint64_t i = 0; i < parsed.info.comm_entries; ++i) {
    uint64_t key = 0;
    double t = 0.0;
    if (!reader.U64(&key) || !reader.F64(&t)) {
      return CorruptSnapshot(path, "truncated comm entries");
    }
    parsed.comms.emplace_back(key, t);
  }
  return parsed;
}

}  // namespace

Status ProfileDatabase::Save(const std::string& path) const {
  std::vector<std::pair<uint64_t, OpMeasurement>> ops;
  std::vector<std::pair<uint64_t, double>> comms;
  for (const Shard& shard : shards_) {
    auto lock = LockShard(shard);
    ops.insert(ops.end(), shard.op_entries.begin(), shard.op_entries.end());
    comms.insert(comms.end(), shard.comm_entries.begin(),
                 shard.comm_entries.end());
  }
  // Sorted order makes the file a pure function of the contents (keys are
  // unique across shards, so the sort is a total order).
  std::sort(ops.begin(), ops.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::sort(comms.begin(), comms.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  ByteWriter w;
  w.Raw(kSnapshotMagic, sizeof(kSnapshotMagic));
  w.U32(kSnapshotFormatVersion);
  w.U32(0);  // reserved
  WriteClusterSpec(w, cluster_);
  w.U64(cluster_.Fingerprint());
  w.U64(ops.size());
  w.U64(comms.size());
  for (const auto& [key, m] : ops) {
    w.U64(key);
    w.F64(m.fwd_seconds);
    w.F64(m.bwd_seconds);
  }
  for (const auto& [key, t] : comms) {
    w.U64(key);
    w.F64(t);
  }
  const uint64_t checksum = FnvHashBytes(w.bytes().data(), w.bytes().size());

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Internal("cannot open for writing: " + path);
  }
  out.write(w.bytes().data(), static_cast<std::streamsize>(w.bytes().size()));
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.flush();
  if (!out) {
    return Internal("write error on profile snapshot: " + path);
  }
  return OkStatus();
}

StatusOr<ProfileSnapshotInfo> ProfileDatabase::ReadSnapshotHeader(
    const std::string& path) {
  auto parsed = ParseSnapshotFile(path);
  if (!parsed.ok()) {
    return parsed.status();
  }
  return parsed->info;
}

Status ProfileDatabase::Load(const std::string& path) {
  auto parsed = ParseSnapshotFile(path);
  if (!parsed.ok()) {
    return parsed.status();
  }
  const uint64_t expected = cluster_.Fingerprint();
  if (parsed->info.cluster_fingerprint != expected) {
    return FailedPrecondition(
        "profile snapshot " + path + " was profiled on cluster " +
        parsed->info.cluster.ToString() + "; this database models " +
        cluster_.ToString() + " (fingerprint mismatch)");
  }

  // Replace the shard contents with the file's. Loaded entries charge no
  // simulated profiling time: reusing a saved database is exactly how the
  // paper's workflow skips re-profiling.
  for (Shard& shard : shards_) {
    auto lock = LockShard(shard);
    shard.op_entries.clear();
    shard.comm_entries.clear();
    shard.simulated_profiling_seconds = 0.0;
  }
  for (const auto& [key, m] : parsed->ops) {
    Shard& shard = ShardFor(key);
    auto lock = LockShard(shard);
    shard.op_entries[key] = m;
  }
  for (const auto& [key, t] : parsed->comms) {
    Shard& shard = ShardFor(key);
    auto lock = LockShard(shard);
    shard.comm_entries[key] = t;
  }

  // Load replaces published entries, which breaks the usual immutability
  // guarantee the lock-free read path relies on: re-tag the instance so
  // every thread-local L1 entry for it goes stale, then publish the loaded
  // entries *directly* as the read snapshot — the very first post-Load
  // lookup is served lock-free. (Load is a setup-time call; it is not
  // synchronized against concurrent lookups, same as before this read path
  // existed.)
  generation_.store(g_db_generation.fetch_add(1, std::memory_order_relaxed),
                    std::memory_order_relaxed);
  total_entries_.store(parsed->ops.size() + parsed->comms.size(),
                       std::memory_order_relaxed);
  if (read_opt_enabled_.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> republish_lock(republish_mu_);
    auto* snap = new Snapshot;
    snap->ops.resize(Snapshot::TableSize(parsed->ops.size()));
    snap->op_mask = snap->ops.size() - 1;
    snap->comms.resize(Snapshot::TableSize(parsed->comms.size()));
    snap->comm_mask = snap->comms.size() - 1;
    for (const auto& [key, m] : parsed->ops) {
      if (key != 0) {  // 0 is the empty-slot sentinel
        snap->InsertOp(key, m);
      }
    }
    for (const auto& [key, t] : parsed->comms) {
      if (key != 0) {
        snap->InsertComm(key, t);
      }
    }
    const Snapshot* old = snapshot_.exchange(snap, std::memory_order_acq_rel);
    if (old != nullptr) {
      retired_.push_back(old);
    }
    snapshot_entries_.store(parsed->ops.size() + parsed->comms.size(),
                            std::memory_order_relaxed);
    republishes_.fetch_add(1, std::memory_order_relaxed);
  }
  return OkStatus();
}

}  // namespace aceso
