file(REMOVE_RECURSE
  "CMakeFiles/aceso_cost.dir/perf_model.cc.o"
  "CMakeFiles/aceso_cost.dir/perf_model.cc.o.d"
  "CMakeFiles/aceso_cost.dir/resource_usage.cc.o"
  "CMakeFiles/aceso_cost.dir/resource_usage.cc.o.d"
  "libaceso_cost.a"
  "libaceso_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aceso_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
