#include "src/hw/cluster.h"

#include <gtest/gtest.h>

namespace aceso {
namespace {

TEST(ClusterTest, PaperClusterIs32Gpus) {
  const ClusterSpec c = ClusterSpec::PaperCluster();
  EXPECT_EQ(c.num_nodes, 4);
  EXPECT_EQ(c.gpus_per_node, 8);
  EXPECT_EQ(c.num_gpus(), 32);
}

TEST(ClusterTest, SingleGpu) {
  const ClusterSpec c = ClusterSpec::SingleGpu();
  EXPECT_EQ(c.num_gpus(), 1);
}

TEST(ClusterTest, WithGpuCountSmall) {
  for (int g : {1, 2, 4, 8}) {
    const ClusterSpec c = ClusterSpec::WithGpuCount(g);
    EXPECT_EQ(c.num_gpus(), g);
    EXPECT_EQ(c.num_nodes, 1);
  }
}

TEST(ClusterTest, WithGpuCountMultiNode) {
  const ClusterSpec c = ClusterSpec::WithGpuCount(16);
  EXPECT_EQ(c.num_nodes, 2);
  EXPECT_EQ(c.gpus_per_node, 8);
}

TEST(ClusterTest, NodeOf) {
  const ClusterSpec c = ClusterSpec::WithGpuCount(16);
  EXPECT_EQ(c.NodeOf(0), 0);
  EXPECT_EQ(c.NodeOf(7), 0);
  EXPECT_EQ(c.NodeOf(8), 1);
  EXPECT_EQ(c.NodeOf(15), 1);
}

TEST(ClusterTest, GroupCrossesNodesContiguous) {
  const ClusterSpec c = ClusterSpec::WithGpuCount(16);
  EXPECT_FALSE(c.GroupCrossesNodes(0, 8, 1));   // exactly one node
  EXPECT_TRUE(c.GroupCrossesNodes(4, 8, 1));    // straddles the boundary
  EXPECT_TRUE(c.GroupCrossesNodes(0, 16, 1));   // spans both
  EXPECT_FALSE(c.GroupCrossesNodes(8, 8, 1));   // second node only
}

TEST(ClusterTest, GroupCrossesNodesStrided) {
  const ClusterSpec c = ClusterSpec::WithGpuCount(16);
  // dp group of 2 with stride 8 hits devices 0 and 8 -> crosses.
  EXPECT_TRUE(c.GroupCrossesNodes(0, 2, 8));
  // dp group of 2 with stride 4 hits devices 0 and 4 -> same node.
  EXPECT_FALSE(c.GroupCrossesNodes(0, 2, 4));
}

TEST(ClusterTest, SingleMemberGroupNeverCrosses) {
  const ClusterSpec c = ClusterSpec::WithGpuCount(32);
  EXPECT_FALSE(c.GroupCrossesNodes(7, 1, 8));
}

TEST(ClusterTest, ToStringMentionsShape) {
  const ClusterSpec c = ClusterSpec::PaperCluster();
  EXPECT_NE(c.ToString().find("4x8"), std::string::npos);
}

TEST(ClusterDeathTest, NonMultipleOf8Rejected) {
  EXPECT_DEATH(ClusterSpec::WithGpuCount(12), "8 GPUs/node");
}

}  // namespace
}  // namespace aceso
