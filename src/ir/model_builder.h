// Reusable building blocks for the model zoo: transformer sub-layers
// (Megatron decomposition) and ResNet bottleneck blocks.
//
// All sizes are per *sample*; the cost model scales by microbatch size and
// parallelism degrees.

#ifndef SRC_IR_MODEL_BUILDER_H_
#define SRC_IR_MODEL_BUILDER_H_

#include <cstdint>
#include <string>

#include "src/ir/op_graph.h"

namespace aceso {

// Hyper-parameters of one transformer layer.
struct TransformerLayerSpec {
  int64_t hidden = 1024;
  int64_t ffn_hidden = 4096;
  int64_t num_heads = 16;
  int64_t seq_len = 2048;
  // For decoder cross-attention: the encoder-side sequence length (0 = this
  // layer has no cross-attention).
  int64_t cross_seq_len = 0;
};

// Appends the ops of one transformer layer (LN, QKV, attention core, output
// projection, [cross-attention], LN, FC1, GeLU, FC2) to `graph`. `prefix`
// names the ops ("dec3."). Each layer contributes 8 ops (11 with
// cross-attention).
void AppendTransformerLayer(OpGraph& graph, const std::string& prefix,
                            const TransformerLayerSpec& spec);

// Appends the input embedding lookup (vocab x hidden table).
void AppendEmbedding(OpGraph& graph, const std::string& prefix, int64_t vocab,
                     int64_t hidden, int64_t seq_len);

// Appends the LM head (hidden -> vocab projection) and softmax loss.
void AppendLmHead(OpGraph& graph, const std::string& prefix, int64_t vocab,
                  int64_t hidden, int64_t seq_len);

// Hyper-parameters of one ResNet bottleneck block (1x1 -> 3x3 -> 1x1 convs
// plus the residual add; a downsampling projection conv when in/out channel
// counts differ or stride > 1).
struct BottleneckSpec {
  int64_t in_channels = 256;
  int64_t bottleneck_channels = 64;
  int64_t out_channels = 256;
  int64_t in_hw = 56;  // input spatial size (square)
  int stride = 1;
};

// Appends one bottleneck block (conv/bn/relu x3 + optional projection +
// residual add) to `graph`.
void AppendBottleneckBlock(OpGraph& graph, const std::string& prefix,
                           const BottleneckSpec& spec);

// Appends the ResNet stem: 7x7/2 conv, BN, ReLU, 3x3/2 maxpool.
void AppendConvStem(OpGraph& graph, const std::string& prefix,
                    int64_t in_channels, int64_t out_channels, int64_t in_hw);

// Appends global average pooling and the final FC classifier.
void AppendClassifierHead(OpGraph& graph, const std::string& prefix,
                          int64_t channels, int64_t hw, int64_t num_classes);

}  // namespace aceso

#endif  // SRC_IR_MODEL_BUILDER_H_
