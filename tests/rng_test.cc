#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace aceso {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, ReseedingResets) {
  Rng rng(7);
  const uint64_t first = rng.NextU64();
  rng.NextU64();
  rng.Seed(7);
  EXPECT_EQ(rng.NextU64(), first);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextBelowOneIsAlwaysZero) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(42);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMomentsApproximatelyCorrect) {
  Rng rng(2024);
  const int n = 20000;
  double sum = 0.0;
  double sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.NextGaussian(10.0, 2.0);
    sum += v;
    sq += v * v;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.25);
}

TEST(RngTest, NextBoolProbabilityEdges) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolFrequency) {
  Rng rng(4);
  int trues = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    trues += rng.NextBool(0.25) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(trues) / n, 0.25, 0.03);
}

TEST(RngTest, MixU64IsDeterministicAndSpreads) {
  EXPECT_EQ(MixU64(1), MixU64(1));
  EXPECT_NE(MixU64(1), MixU64(2));
  // Adjacent inputs should differ in many bits.
  const uint64_t x = MixU64(100) ^ MixU64(101);
  EXPECT_GT(__builtin_popcountll(x), 16);
}

TEST(RngTest, SplitMix64AdvancesState) {
  uint64_t state = 0;
  const uint64_t a = SplitMix64(state);
  const uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
  EXPECT_NE(state, 0u);
}

}  // namespace
}  // namespace aceso
