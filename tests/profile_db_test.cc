#include "src/profile/profile_db.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

#include "src/common/units.h"

namespace aceso {
namespace {

Operator MakeMatmul() {
  Operator op;
  op.name = "fc";
  op.kind = OpKind::kMlpFc1;
  op.fwd_flops = 2.0 * 2048 * 1024 * 4096;
  op.param_bytes = int64_t{1024} * 4096 * 2;
  op.in_bytes = int64_t{2048} * 1024 * 2;
  op.out_bytes = int64_t{2048} * 4096 * 2;
  op.max_tp = 16;
  op.tp_class = TpClass::kPartitioned;
  return op;
}

class ProfileDbTest : public ::testing::Test {
 protected:
  ClusterSpec cluster_ = ClusterSpec::WithGpuCount(8);
  ProfileDatabase db_{cluster_, /*seed=*/42};
};

TEST_F(ProfileDbTest, MeasurementsArePositive) {
  const OpMeasurement m = db_.OpTime(MakeMatmul(), Precision::kFp16, 1, 1);
  EXPECT_GT(m.fwd_seconds, 0.0);
  EXPECT_GT(m.bwd_seconds, 0.0);
}

TEST_F(ProfileDbTest, BackwardCostsMoreThanForward) {
  const OpMeasurement m = db_.OpTime(MakeMatmul(), Precision::kFp16, 1, 4);
  EXPECT_GT(m.bwd_seconds, m.fwd_seconds);
}

TEST_F(ProfileDbTest, MemoizationReturnsIdenticalValues) {
  const Operator op = MakeMatmul();
  const OpMeasurement a = db_.OpTime(op, Precision::kFp16, 2, 4);
  const OpMeasurement b = db_.OpTime(op, Precision::kFp16, 2, 4);
  EXPECT_DOUBLE_EQ(a.fwd_seconds, b.fwd_seconds);
  EXPECT_EQ(db_.NumEntries(), 1u);
}

TEST_F(ProfileDbTest, ShardingReducesTimeSublinearly) {
  const Operator op = MakeMatmul();
  const double whole = db_.OpTime(op, Precision::kFp16, 1, 8).fwd_seconds;
  const double shard8 = db_.OpTime(op, Precision::kFp16, 8, 8).fwd_seconds;
  EXPECT_LT(shard8, whole);
  EXPECT_GT(shard8, whole / 8.0);  // efficiency loss, the tp trade-off
}

TEST_F(ProfileDbTest, LargerBatchImprovesEfficiency) {
  const Operator op = MakeMatmul();
  const double b1 = db_.OpTime(op, Precision::kFp16, 1, 1).fwd_seconds;
  const double b8 = db_.OpTime(op, Precision::kFp16, 1, 8).fwd_seconds;
  EXPECT_LT(b8, 8.0 * b1);  // sublinear growth
  EXPECT_GT(b8, b1);
}

TEST_F(ProfileDbTest, DeterministicAcrossInstancesWithSameSeed) {
  ProfileDatabase other(cluster_, /*seed=*/42);
  const Operator op = MakeMatmul();
  EXPECT_DOUBLE_EQ(db_.OpTime(op, Precision::kFp16, 4, 2).fwd_seconds,
                   other.OpTime(op, Precision::kFp16, 4, 2).fwd_seconds);
}

TEST_F(ProfileDbTest, SeedChangesMeasurements) {
  ProfileDatabase other(cluster_, /*seed=*/43);
  const Operator op = MakeMatmul();
  EXPECT_NE(db_.OpTime(op, Precision::kFp16, 4, 2).fwd_seconds,
            other.OpTime(op, Precision::kFp16, 4, 2).fwd_seconds);
}

TEST_F(ProfileDbTest, MeasurementNearAnalyticTime) {
  // Averaged jittered runs stay within the systematic-bias envelope (±5%)
  // of the analytic hardware model.
  const Operator op = MakeMatmul();
  const OpMeasurement m = db_.OpTime(op, Precision::kFp16, 1, 1);
  const double ideal = cluster_.gpu.ComputeTime(
      op.fwd_flops, op.in_bytes + op.out_bytes + op.param_bytes,
      Precision::kFp16);
  EXPECT_NEAR(m.fwd_seconds, ideal, ideal * 0.08);
}

TEST_F(ProfileDbTest, CollectiveTimeInterpolatesBetweenBuckets) {
  const CommDomain domain{4, false};
  const int64_t low = 1 << 20;
  const int64_t high = 1 << 21;
  const double t_low =
      db_.CollectiveTime(CollectiveKind::kAllReduce, low, domain);
  const double t_mid = db_.CollectiveTime(CollectiveKind::kAllReduce,
                                          low + low / 2, domain);
  const double t_high =
      db_.CollectiveTime(CollectiveKind::kAllReduce, high, domain);
  EXPECT_GT(t_mid, t_low);
  EXPECT_LT(t_mid, t_high);
}

TEST_F(ProfileDbTest, CollectiveSingletonFree) {
  EXPECT_EQ(db_.CollectiveTime(CollectiveKind::kAllReduce, kMiB,
                               CommDomain{1, false}),
            0.0);
}

TEST_F(ProfileDbTest, ProfilingOverheadAccumulates) {
  EXPECT_EQ(db_.SimulatedProfilingSeconds(), 0.0);
  db_.OpTime(MakeMatmul(), Precision::kFp16, 1, 1);
  const double after_one = db_.SimulatedProfilingSeconds();
  EXPECT_GT(after_one, 0.0);
  // A cache hit adds nothing.
  db_.OpTime(MakeMatmul(), Precision::kFp16, 1, 1);
  EXPECT_DOUBLE_EQ(db_.SimulatedProfilingSeconds(), after_one);
}

TEST_F(ProfileDbTest, SaveLoadRoundTrip) {
  const Operator op = MakeMatmul();
  const OpMeasurement m = db_.OpTime(op, Precision::kFp16, 2, 4);
  db_.CollectiveTime(CollectiveKind::kAllReduce, kMiB, CommDomain{4, false});
  const std::string path = ::testing::TempDir() + "/profile_db_test.txt";
  ASSERT_TRUE(db_.Save(path).ok());

  ProfileDatabase loaded(cluster_, /*seed=*/999);  // different seed
  ASSERT_TRUE(loaded.Load(path).ok());
  // The loaded database returns the *stored* measurement, not a fresh
  // (different-seed) one.
  EXPECT_DOUBLE_EQ(loaded.OpTime(op, Precision::kFp16, 2, 4).fwd_seconds,
                   m.fwd_seconds);
  std::remove(path.c_str());
}

TEST_F(ProfileDbTest, ConcurrentAccessIsSafe) {
  const Operator op = MakeMatmul();
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([this, &op, t] {
      for (int i = 0; i < 200; ++i) {
        db_.OpTime(op, Precision::kFp16, 1 << (i % 4), 1 + t % 3);
        db_.CollectiveTime(CollectiveKind::kAllGather, (i + 1) * 1000,
                           CommDomain{2 + t % 4, false});
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  EXPECT_GT(db_.NumEntries(), 0u);
}

TEST_F(ProfileDbTest, ConcurrentFillersPublishOneDeterministicValue) {
  // Many threads racing to fill the *same* cold keys: the double-checked
  // first-writer-wins insert may measure a key several times, but exactly
  // one value is published, and (measurements being deterministic per key)
  // it equals what a serial fill produces.
  const Operator op = MakeMatmul();
  ProfileDatabase serial{cluster_, /*seed=*/42};
  std::vector<OpMeasurement> expected;
  for (int d = 0; d < 4; ++d) {
    expected.push_back(serial.OpTime(op, Precision::kFp16, 1 << d, 2));
  }

  std::vector<std::thread> threads;
  std::vector<std::vector<OpMeasurement>> seen(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([this, &op, &seen, t] {
      for (int rep = 0; rep < 50; ++rep) {
        for (int d = 0; d < 4; ++d) {
          seen[static_cast<size_t>(t)].push_back(
              db_.OpTime(op, Precision::kFp16, 1 << d, 2));
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (const auto& per_thread : seen) {
    ASSERT_EQ(per_thread.size(), 200u);
    for (size_t i = 0; i < per_thread.size(); ++i) {
      EXPECT_EQ(per_thread[i].fwd_seconds, expected[i % 4].fwd_seconds);
      EXPECT_EQ(per_thread[i].bwd_seconds, expected[i % 4].bwd_seconds);
    }
  }
  // First-writer-wins: redundant measurements were discarded, so the
  // entry count (and the profiling-overhead ledger, which only the winning
  // inserter updates) matches the serial fill.
  EXPECT_EQ(db_.NumEntries(), serial.NumEntries());
  EXPECT_EQ(db_.SimulatedProfilingSeconds(),
            serial.SimulatedProfilingSeconds());
}

TEST_F(ProfileDbTest, StatsCountLookupsAndMisses) {
  const Operator op = MakeMatmul();
  const ProfileDbStats before = db_.stats();
  db_.OpTime(op, Precision::kFp16, 1, 2);  // cold: lookup + miss
  db_.OpTime(op, Precision::kFp16, 1, 2);  // warm: lookup only
  const ProfileDbStats delta = db_.stats() - before;
  EXPECT_EQ(delta.lookups, 2);
  EXPECT_EQ(delta.misses, 1);
  EXPECT_GE(delta.lock_contended, 0);
}

TEST_F(ProfileDbTest, L1ServesRepeatLookups) {
  const Operator op = MakeMatmul();
  const ProfileDbStats before = db_.stats();
  const OpMeasurement first = db_.OpTime(op, Precision::kFp16, 2, 2);
  const OpMeasurement second = db_.OpTime(op, Precision::kFp16, 2, 2);
  EXPECT_EQ(first.fwd_seconds, second.fwd_seconds);
  EXPECT_EQ(first.bwd_seconds, second.bwd_seconds);
  // The repeat came out of this thread's direct-mapped L1 (generation-tagged
  // to this instance, so entries from other tests' databases cannot match).
  EXPECT_EQ((db_.stats() - before).l1_hits, 1);
}

TEST_F(ProfileDbTest, SnapshotPublishesAfterWarmupAndServesColdThreads) {
  const Operator op = MakeMatmul();
  const ProfileDbStats before = db_.stats();
  // Enough distinct keys to cross the warm-up floor and republish at least
  // once (thresholds are internal; 100 entries comfortably clears both).
  for (int b = 1; b <= 100; ++b) {
    db_.OpTime(op, Precision::kFp16, 1, b);
  }
  EXPECT_GE((db_.stats() - before).republishes, 1);

  // A fresh thread has a cold L1, so its repeat lookups are served by the
  // published snapshot — no locks, no re-measurement.
  OpMeasurement from_thread;
  std::thread reader([this, &op, &from_thread] {
    from_thread = db_.OpTime(op, Precision::kFp16, 1, 5);
  });
  reader.join();
  EXPECT_EQ(from_thread.fwd_seconds,
            db_.OpTime(op, Precision::kFp16, 1, 5).fwd_seconds);
  EXPECT_GE((db_.stats() - before).snapshot_hits, 1);
}

TEST_F(ProfileDbTest, ReadOptimizationsDoNotChangeValues) {
  ProfileDatabase plain(cluster_, /*seed=*/42);
  plain.set_read_optimizations_enabled(false);
  const Operator op = MakeMatmul();
  for (int round = 0; round < 3; ++round) {  // cold, then warm rounds
    for (int b = 1; b <= 80; ++b) {
      const OpMeasurement fast = db_.OpTime(op, Precision::kFp16, 1, b);
      const OpMeasurement ref = plain.OpTime(op, Precision::kFp16, 1, b);
      ASSERT_EQ(fast.fwd_seconds, ref.fwd_seconds) << "batch " << b;
      ASSERT_EQ(fast.bwd_seconds, ref.bwd_seconds) << "batch " << b;
      const double fast_t = db_.CollectiveTime(CollectiveKind::kAllReduce,
                                               (b + 1) * 4096, CommDomain{4, false});
      const double ref_t = plain.CollectiveTime(CollectiveKind::kAllReduce,
                                                (b + 1) * 4096, CommDomain{4, false});
      ASSERT_EQ(fast_t, ref_t) << "bytes " << (b + 1) * 4096;
    }
  }
  const ProfileDbStats plain_stats = plain.stats();
  EXPECT_EQ(plain_stats.l1_hits, 0);
  EXPECT_EQ(plain_stats.snapshot_hits, 0);
  EXPECT_EQ(plain_stats.republishes, 0);
}

TEST_F(ProfileDbTest, LoadInvalidatesThreadLocalL1) {
  const Operator op = MakeMatmul();
  // A different-seed database measures the same key and saves it.
  ProfileDatabase other(cluster_, /*seed=*/999);
  const OpMeasurement theirs = other.OpTime(op, Precision::kFp16, 2, 4);
  const std::string path = ::testing::TempDir() + "/profile_db_l1_test.txt";
  ASSERT_TRUE(other.Save(path).ok());

  // Warm this thread's L1 with our own measurement, then overwrite the
  // entry via Load: the stale L1 value must not survive the reload.
  const OpMeasurement ours = db_.OpTime(op, Precision::kFp16, 2, 4);
  ASSERT_NE(ours.fwd_seconds, theirs.fwd_seconds);
  ASSERT_TRUE(db_.Load(path).ok());
  EXPECT_DOUBLE_EQ(db_.OpTime(op, Precision::kFp16, 2, 4).fwd_seconds,
                   theirs.fwd_seconds);
  std::remove(path.c_str());
}

TEST_F(ProfileDbTest, RepublishRacesStayDeterministicUnderHammering) {
  // Eight threads fill and re-read an entry population that crosses the
  // snapshot warm-up and several geometric republish thresholds while other
  // threads are mid-lookup. Every observed value must equal the serial
  // reference, and the shared database must end with the same entries.
  const Operator op = MakeMatmul();
  ProfileDatabase serial{cluster_, /*seed=*/42};
  serial.set_read_optimizations_enabled(false);
  std::vector<OpMeasurement> expected;
  for (int b = 1; b <= 80; ++b) {
    expected.push_back(serial.OpTime(op, Precision::kFp16, 1 + b % 4, b));
  }

  std::vector<std::thread> threads;
  std::vector<int> mismatches(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([this, &op, &expected, &mismatches, t] {
      for (int rep = 0; rep < 25; ++rep) {
        for (int b = 1; b <= 80; ++b) {
          const OpMeasurement m =
              db_.OpTime(op, Precision::kFp16, 1 + b % 4, b);
          const OpMeasurement& want = expected[static_cast<size_t>(b - 1)];
          if (m.fwd_seconds != want.fwd_seconds ||
              m.bwd_seconds != want.bwd_seconds) {
            ++mismatches[static_cast<size_t>(t)];
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(mismatches[static_cast<size_t>(t)], 0) << "thread " << t;
  }
  EXPECT_EQ(db_.NumEntries(), serial.NumEntries());
  EXPECT_GE(db_.stats().republishes, 1);
}

// ---- versioned binary snapshot files (DESIGN.md §14) ----

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Fills a database with a representative mix of op and collective entries.
void FillDb(ProfileDatabase& db) {
  const Operator op = MakeMatmul();
  for (int tp = 1; tp <= 4; tp *= 2) {
    for (int batch = 1; batch <= 8; batch *= 2) {
      db.OpTime(op, Precision::kFp16, tp, batch);
      db.OpTime(op, Precision::kFp32, tp, batch);
    }
  }
  db.CollectiveTime(CollectiveKind::kAllReduce, kMiB, CommDomain{4, false});
  db.CollectiveTime(CollectiveKind::kAllGather, 3 * kMiB, CommDomain{2, true});
}

TEST_F(ProfileDbTest, SnapshotFileRoundTripIsBitIdentical) {
  FillDb(db_);
  const std::string path = ::testing::TempDir() + "/snap_roundtrip.apdb";
  ASSERT_TRUE(db_.Save(path).ok());

  ProfileDatabase loaded(cluster_, /*seed=*/999);
  ASSERT_TRUE(loaded.Load(path).ok());
  EXPECT_EQ(loaded.NumEntries(), db_.NumEntries());
  // Loaded entries charge no simulated profiling time: the warm-start story
  // is that a snapshot-started service skips profiling entirely.
  EXPECT_EQ(loaded.SimulatedProfilingSeconds(), 0.0);

  // Every stored measurement reads back bit-exactly (operator== on doubles
  // is the bit check here — the values are IEEE-754 round trips).
  const Operator op = MakeMatmul();
  for (int tp = 1; tp <= 4; tp *= 2) {
    for (int batch = 1; batch <= 8; batch *= 2) {
      const OpMeasurement ours = db_.OpTime(op, Precision::kFp16, tp, batch);
      const OpMeasurement theirs =
          loaded.OpTime(op, Precision::kFp16, tp, batch);
      EXPECT_EQ(ours.fwd_seconds, theirs.fwd_seconds);
      EXPECT_EQ(ours.bwd_seconds, theirs.bwd_seconds);
    }
  }

  // Saving the loaded database reproduces the file byte for byte (entries
  // are sorted before writing, so equal contents mean equal files).
  const std::string path2 = ::testing::TempDir() + "/snap_roundtrip2.apdb";
  ASSERT_TRUE(loaded.Save(path2).ok());
  EXPECT_EQ(ReadFileBytes(path), ReadFileBytes(path2));
  std::remove(path.c_str());
  std::remove(path2.c_str());
}

TEST_F(ProfileDbTest, ReadSnapshotHeaderReportsContents) {
  FillDb(db_);
  const std::string path = ::testing::TempDir() + "/snap_header.apdb";
  ASSERT_TRUE(db_.Save(path).ok());

  auto info = ProfileDatabase::ReadSnapshotHeader(path);
  ASSERT_TRUE(info.ok()) << info.status().ToString();
  EXPECT_EQ(info->cluster_fingerprint, cluster_.Fingerprint());
  EXPECT_EQ(info->op_entries + info->comm_entries, db_.NumEntries());
  // Two collective lookups, but the off-bucket one interpolates between two
  // bucket entries.
  EXPECT_GE(info->comm_entries, 2u);
  EXPECT_GT(info->op_entries, info->comm_entries);
  std::remove(path.c_str());
}

TEST_F(ProfileDbTest, LoadMissingFileIsNotFound) {
  const Status s =
      db_.Load(::testing::TempDir() + "/no_such_snapshot.apdb");
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST_F(ProfileDbTest, LoadRejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "/snap_magic.apdb";
  WriteFileBytes(path, "definitely not an aceso snapshot file contents");
  const Status s = db_.Load(path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("bad magic"), std::string::npos)
      << s.ToString();
  std::remove(path.c_str());
}

TEST_F(ProfileDbTest, LoadRejectsTruncatedFile) {
  FillDb(db_);
  const std::string path = ::testing::TempDir() + "/snap_trunc.apdb";
  ASSERT_TRUE(db_.Save(path).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 40u);
  WriteFileBytes(path, bytes.substr(0, bytes.size() - 21));

  const size_t before = db_.NumEntries();
  const Status s = db_.Load(path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  // A refused load leaves the database untouched.
  EXPECT_EQ(db_.NumEntries(), before);
  std::remove(path.c_str());
}

TEST_F(ProfileDbTest, LoadRejectsCorruptedByte) {
  FillDb(db_);
  const std::string path = ::testing::TempDir() + "/snap_corrupt.apdb";
  ASSERT_TRUE(db_.Save(path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x40);
  WriteFileBytes(path, bytes);

  const Status s = db_.Load(path);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.message().find("checksum"), std::string::npos) << s.ToString();
  std::remove(path.c_str());
}

TEST_F(ProfileDbTest, LoadRejectsVersionMismatch) {
  FillDb(db_);
  const std::string path = ::testing::TempDir() + "/snap_version.apdb";
  ASSERT_TRUE(db_.Save(path).ok());
  std::string bytes = ReadFileBytes(path);
  // The u32 version follows the 8-byte magic (little-endian); bump it. The
  // version check runs before the checksum check, so this reports a version
  // mismatch, not corruption.
  bytes[8] = static_cast<char>(bytes[8] + 1);
  WriteFileBytes(path, bytes);

  const Status s = db_.Load(path);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(s.message().find("version"), std::string::npos) << s.ToString();
  std::remove(path.c_str());
}

TEST_F(ProfileDbTest, LoadRejectsClusterMismatch) {
  FillDb(db_);
  const std::string path = ::testing::TempDir() + "/snap_cluster.apdb";
  ASSERT_TRUE(db_.Save(path).ok());

  const ClusterSpec other_cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase other(other_cluster, /*seed=*/42);
  const Status s = other.Load(path);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  // ReadSnapshotHeader still works from the mismatched side: the caller can
  // say which cluster the file was profiled on.
  auto info = ProfileDatabase::ReadSnapshotHeader(path);
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->cluster_fingerprint, cluster_.Fingerprint());
  EXPECT_NE(info->cluster_fingerprint, other_cluster.Fingerprint());
  std::remove(path.c_str());
}

TEST_F(ProfileDbTest, LoadedSnapshotServesZeroLockReads) {
  FillDb(db_);
  const std::string path = ::testing::TempDir() + "/snap_reads.apdb";
  ASSERT_TRUE(db_.Save(path).ok());

  ProfileDatabase loaded(cluster_, /*seed=*/999);
  ASSERT_TRUE(loaded.Load(path).ok());
  // Load publishes the read snapshot directly: repeating the saved lookups
  // takes zero misses (no re-measurement) on the loaded database.
  const ProfileDbStats before = loaded.stats();
  FillDb(loaded);
  const ProfileDbStats delta = loaded.stats() - before;
  EXPECT_EQ(delta.misses, 0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace aceso
