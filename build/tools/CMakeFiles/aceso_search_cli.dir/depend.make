# Empty dependencies file for aceso_search_cli.
# This may be replaced when dependencies are built.
