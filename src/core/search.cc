#include "src/core/search.h"

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_set>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/common/thread_pool.h"
#include "src/core/apply.h"
#include "src/core/bottleneck.h"
#include "src/core/dp_seeder.h"
#include "src/core/finetune.h"
#include "src/core/primitives.h"
#include "src/cost/batch_eval.h"

namespace aceso {
namespace {

// Sort key for the unexplored pool and top-k list: feasible configs order by
// predicted iteration time; OOM configs sort after all feasible ones, least
// over-memory first. ComparableTime() maps NaN estimates to +inf — a NaN key
// would corrupt the score-ordered multimaps (NaN is incomparable under <,
// which breaks their strict-weak-ordering contract).
double Score(const PerfResult& perf) {
  if (!perf.oom) {
    return perf.ComparableTime();
  }
  return 1e12 + static_cast<double>(perf.MemoryOverage());
}

// Bound on the unexplored pool: keeps the search's memory flat over long
// budgets without affecting the best-first pop order.
constexpr size_t kMaxUnexplored = 1024;

// The per-stage-count search: Algorithm 1 over Algorithm 2.
class SingleSearch {
 public:
  // `budget_seconds` bounds this search's own wall-clock (started inside
  // Run()); `global_watch` timestamps convergence points on the shared
  // experiment clock.
  SingleSearch(const PerformanceModel& model, const SearchOptions& options,
               int num_stages, double budget_seconds,
               const Stopwatch& global_watch, int worker = 0)
      : model_(model),
        options_(options),
        num_stages_(num_stages),
        budget_(budget_seconds),
        global_watch_(global_watch),
        telemetry_(options.telemetry),
        worker_(worker),
        rng_(options.seed ^ MixU64(static_cast<uint64_t>(num_stages))) {}

  SearchResult Run() {
    SearchResult result;
    const double run_start = global_watch_.ElapsedSeconds();
    if (telemetry_ != nullptr) {
      telemetry_->IncrCounter("search.workers");
      telemetry_->Emit(std::move(TelemetryEvent("search_begin")
                                     .Dbl("t", run_start)
                                     .Int("worker", worker_)
                                     .Int("stages", num_stages_)));
    }
    auto initial = MakeInitial();
    if (!initial.ok()) {
      // This stage count is not constructible.
      EmitSearchEnd(result, run_start, /*converged=*/false);
      return result;
    }
    ScoredConfig current;
    current.config = *std::move(initial);
    current.perf = model_.Evaluate(current.config);
    current.perf.ApplyMemoryLimit(options_.memory_budget_bytes);
    ++stats_.configs_explored;  // the initial configuration counts too
    current.semantic_hash = current.config.SemanticHash(model_.graph());
    visited_.insert(current.semantic_hash);
    RecordTopK(current);
    OfferFrontier(current);

    ScoredConfig best = current;
    result.found = true;
    result.convergence.push_back({global_watch_.ElapsedSeconds(),
                                  best.perf.iteration_time,
                                  stats_.configs_explored, !best.perf.oom});

    bool converged = false;
    while (!Exhausted()) {
      ++stats_.iterations;
      const double iter_start =
          telemetry_ != nullptr ? global_watch_.ElapsedSeconds() : 0.0;
      iter_ = {};
      std::optional<Improvement> improved = IterationSearch(current);
      const bool accepted = improved.has_value();
      int hops = 0;
      int attempt = 0;
      const char* primitive = "";
      int64_t finetune_trials = 0;
      double finetune_delta = 0.0;
      if (accepted) {
        ++stats_.improvements;
        stats_.bottleneck_attempts.push_back(improved->bottleneck_attempt);
        stats_.hops_used.push_back(improved->hops);
        hops = improved->hops;
        attempt = improved->bottleneck_attempt;
        primitive = PrimitiveName(improved->primitive);
        current = std::move(improved->found);
        if (options_.enable_finetune) {
          const double before_finetune = current.perf.iteration_time;
          FineTuneOptions finetune_options;
          finetune_options.memory_limit_bytes = options_.memory_budget_bytes;
          if (options_.track_frontier) {
            finetune_options.frontier = &frontier_;
          }
          current.perf = FineTune(model_, current.config, current.perf,
                                  budget_, finetune_options, &finetune_trials);
          stats_.configs_explored += finetune_trials;
          finetune_delta = before_finetune - current.perf.iteration_time;
          // Fine-tuning mutates the config, so its hash must be refreshed.
          current.semantic_hash = current.config.SemanticHash(model_.graph());
          visited_.insert(current.semantic_hash);
          RecordTopK(current);
          OfferFrontier(current);
        }
        if (current.perf.BetterThan(best.perf)) {
          best = current;
          result.convergence.push_back({global_watch_.ElapsedSeconds(),
                                        best.perf.iteration_time,
                                        stats_.configs_explored,
                                        !best.perf.oom});
        }
      } else {
        // Restart from the most promising unexplored configuration. Entries
        // are shared with the hop groups that discovered them, so restarts
        // (rare) pay the copy instead of every push (hot).
        if (unexplored_.empty()) {
          converged = true;  // nothing left to try
        } else {
          current = *unexplored_.begin()->second;
          unexplored_.erase(unexplored_.begin());
          if (telemetry_ != nullptr) {
            telemetry_->IncrCounter("search.restarts");
          }
        }
      }
      if (telemetry_ != nullptr) {
        EmitIteration(iter_start, accepted, attempt, hops, primitive,
                      finetune_trials, finetune_delta, best);
      }
      if (converged) {
        break;
      }
    }

    result.best = std::move(best);
    result.convergence.push_back({global_watch_.ElapsedSeconds(),
                                  result.best.perf.iteration_time,
                                  stats_.configs_explored,
                                  !result.best.perf.oom});
    EmitSearchEnd(result, run_start, converged);
    stats_.frontier_offered = frontier_.stats().offered;
    stats_.frontier_admitted = frontier_.stats().admitted;
    result.frontier = std::move(frontier_);
    result.stats = std::move(stats_);
    // top_k_ is score-ordered, so this emits best-first directly.
    for (auto& [score, scored] : top_k_) {
      result.top_configs.push_back(std::move(scored));
    }
    return result;
  }

 private:
  struct Improvement {
    ScoredConfig found;
    int hops = 0;
    int bottleneck_attempt = 1;
    // The primitive that produced the improving candidate (the last hop of
    // the chain); reported in the per-iteration telemetry event.
    PrimitiveKind primitive = PrimitiveKind::kIncOpCount;
  };

  // Telemetry facts gathered over one Algorithm-1 iteration and emitted as
  // one "iteration" event. Updated only when telemetry_ != nullptr.
  struct IterationTelemetry {
    int64_t generated = 0;  // candidates produced by primitive application
    int64_t deduped = 0;    // dropped by §4.3 semantic deduplication
    int64_t evaluated = 0;  // candidates scored by the performance model
    int bottleneck_stage = -1;   // last bottleneck attempted
    bool memory_bound = false;   // that bottleneck's kind
    const char* bottleneck_resource = "";
  };

  void EmitIteration(double iter_start, bool accepted, int attempt, int hops,
                     const char* primitive, int64_t finetune_trials,
                     double finetune_delta, const ScoredConfig& best) {
    const double now = global_watch_.ElapsedSeconds();
    TelemetryEvent event("iteration");
    event.Dbl("t", iter_start)
        .Dbl("dur", now - iter_start)
        .Int("worker", worker_)
        .Int("stages", num_stages_)
        .Int("iter", stats_.iterations)
        .Bool("accepted", accepted)
        .Int("bottleneck_stage", iter_.bottleneck_stage)
        .Str("bottleneck_resource", iter_.bottleneck_resource)
        .Bool("memory_bound", iter_.memory_bound)
        .Int("bottleneck_attempt", attempt)
        .Int("hops", hops)
        .Str("primitive", primitive)
        .Int("generated", iter_.generated)
        .Int("deduped", iter_.deduped)
        .Int("evaluated", iter_.evaluated)
        .Int("finetune_trials", finetune_trials)
        .Dbl("finetune_delta", finetune_delta)
        .Dbl("best_time", best.perf.iteration_time)
        .Bool("feasible", !best.perf.oom);
    telemetry_->Emit(std::move(event));
    telemetry_->IncrCounter("search.iterations");
    telemetry_->IncrCounter(accepted ? "search.accepts" : "search.rejects");
    telemetry_->IncrCounter("search.candidates_generated", iter_.generated);
    telemetry_->IncrCounter("search.candidates_deduped", iter_.deduped);
    telemetry_->IncrCounter("search.candidates_evaluated", iter_.evaluated);
    if (finetune_trials > 0) {
      telemetry_->IncrCounter("search.finetune_trials", finetune_trials);
    }
  }

  void EmitSearchEnd(const SearchResult& result, double run_start,
                     bool converged) {
    if (telemetry_ == nullptr) {
      return;
    }
    const double now = global_watch_.ElapsedSeconds();
    telemetry_->RecordTimer("search.worker_seconds", now - run_start);
    // Evaluation-batching counters, accumulated locally and flushed once:
    // they are diagnostics of *how* candidates were evaluated, never part of
    // the event stream, which stays bit-identical across eval_threads.
    if (eval_batches_ > 0) {
      telemetry_->IncrCounter("search.eval_batches", eval_batches_);
      telemetry_->IncrCounter("search.eval_batch_candidates",
                              eval_batch_candidates_);
    }
    if (eval_serial_candidates_ > 0) {
      telemetry_->IncrCounter("search.eval_serial_candidates",
                              eval_serial_candidates_);
    }
    // Batched-group-evaluation diagnostics (DESIGN.md §13): how many SoA
    // batches formed, lanes scored, and per-stage resolutions the sharing
    // broadcast saved. Counters only, like the pool stats above.
    if (batch_stats_.batches > 0) {
      telemetry_->IncrCounter("search.batch_batches", batch_stats_.batches);
      telemetry_->IncrCounter("search.batch_lanes", batch_stats_.lanes);
      telemetry_->IncrCounter("search.batch_stage_groups",
                              batch_stats_.stage_groups);
      telemetry_->IncrCounter("search.batch_shared_saved",
                              batch_stats_.shared_lookups_saved);
    }
    if (dp_seed_evaluations_ > 0) {
      telemetry_->IncrCounter("search.dp_seed_evaluations",
                              dp_seed_evaluations_);
    }
    telemetry_->Emit(std::move(
        TelemetryEvent("search_end")
            .Dbl("t", now)
            .Dbl("dur", now - run_start)
            .Int("worker", worker_)
            .Int("stages", num_stages_)
            .Bool("found", result.found)
            .Int("iterations", stats_.iterations)
            .Int("improvements", stats_.improvements)
            .Int("configs_explored", stats_.configs_explored)
            .Dbl("best_time", result.best.perf.iteration_time)
            .Bool("feasible", result.found && !result.best.perf.oom)
            .Bool("converged", converged)));
  }

  // The search stops at whichever budget binds first: the anytime wall-clock
  // budget, or the deterministic evaluation budget (when set). Fine-tuning
  // may overshoot the evaluation budget by one bounded pass; the overshoot
  // is itself deterministic, so fixed-seed runs stay bit-reproducible.
  bool Exhausted() const {
    if (options_.max_evaluations > 0 &&
        stats_.configs_explored >= options_.max_evaluations) {
      return true;
    }
    return budget_.Expired();
  }

  // Non-const: DP seeding charges its full-model evaluations to
  // stats_.configs_explored (they draw down max_evaluations budgets too,
  // deterministically) and records them for the search_end counter flush.
  StatusOr<ParallelConfig> MakeInitial() {
    if (options_.seed_mode == SeedMode::kConfig &&
        options_.seed_config != nullptr &&
        options_.seed_config->num_stages() == num_stages_ &&
        options_.seed_config->Validate(model_.graph(), model_.cluster())
            .ok()) {
      // Caller-provided start (an adapted neighbor plan, DESIGN.md §17).
      // The copy is CoW-cheap; the seed's own evaluation is charged below
      // like any other initial configuration. Stage counts that don't match
      // the seed (and invalid seeds) fall through to the heuristic start.
      return *options_.seed_config;
    }
    if (options_.seed_mode == SeedMode::kDp) {
      DpSeedOptions seed_options;
      seed_options.memory_limit_bytes = options_.memory_budget_bytes;
      auto seeded = DpSeedConfig(model_, num_stages_, seed_options);
      if (seeded.ok()) {
        stats_.configs_explored += seeded->evaluations;
        dp_seed_evaluations_ = seeded->evaluations;
        return std::move(seeded->config);
      }
      // No DP solution for this stage count: fall back to the heuristic
      // seed below so the search still runs.
    }
    switch (options_.initial_config) {
      case InitialConfigKind::kBalanced:
        return MakeEvenConfig(model_.graph(), model_.cluster(), num_stages_,
                              1);
      case InitialConfigKind::kOpImbalanced:
        return MakeOpImbalancedConfig(model_.graph(), model_.cluster(),
                                      num_stages_, 1);
      case InitialConfigKind::kGpuImbalanced:
        return MakeGpuImbalancedConfig(model_.graph(), model_.cluster(),
                                       num_stages_, 1);
    }
    return Internal("unknown initial config kind");
  }

  // One Algorithm 1 iteration: multi-hop searches starting from the primary
  // bottleneck, falling back to secondary bottlenecks (§3.2.3).
  std::optional<Improvement> IterationSearch(const ScoredConfig& start) {
    const std::vector<Bottleneck> bottlenecks = OrderedBottlenecks(start.perf);
    const int attempts = std::min<int>(
        static_cast<int>(bottlenecks.size()),
        options_.max_bottlenecks_per_iteration);
    for (int b = 0; b < attempts && !Exhausted(); ++b) {
      if (telemetry_ != nullptr) {
        const Bottleneck& bn = bottlenecks[static_cast<size_t>(b)];
        iter_.bottleneck_stage = bn.stage;
        iter_.memory_bound = bn.memory_bound;
        iter_.bottleneck_resource =
            bn.resources.empty() ? "" : ResourceName(bn.resources.front());
      }
      std::optional<Improvement> found =
          MultiHop(start, start.perf, /*hop=*/0, &bottlenecks[static_cast<size_t>(b)]);
      if (found.has_value()) {
        found->bottleneck_attempt = b + 1;
        return found;
      }
    }
    return std::nullopt;
  }

  // Algorithm 2. `forced` pins the bottleneck at hop 0 (secondary-bottleneck
  // exploration); deeper hops use Heuristic-1's primary choice.
  std::optional<Improvement> MultiHop(const ScoredConfig& config,
                                      const PerfResult& init_perf, int hop,
                                      const Bottleneck* forced) {
    if (hop >= options_.max_hops || Exhausted()) {
      return std::nullopt;
    }
    Bottleneck bottleneck;
    if (forced != nullptr) {
      bottleneck = *forced;
    } else {
      const std::vector<Bottleneck> all = OrderedBottlenecks(config.perf);
      if (all.empty()) {
        return std::nullopt;
      }
      bottleneck = all.front();
    }

    std::vector<Resource> resources = bottleneck.resources;
    if (!options_.use_heuristic2) {
      ShuffleInPlace(resources);
    }

    for (const Resource resource : resources) {
      std::vector<PrimitiveKind> primitives = PrimitivesDecreasing(
          resource, options_.enable_zero_primitives);
      if (!options_.use_heuristic2) {
        ShuffleInPlace(primitives);
      }

      // The candidate group of this resource, in three phases (DESIGN.md
      // §11). Phase 1 (serial): generate every primitive's candidates and
      // hash + §4.3-deduplicate them in generation order, so in-batch
      // duplicates resolve exactly as the candidate-at-a-time loop did.
      // Phase 2: evaluate the surviving candidates — the only expensive,
      // side-effect-free step — concurrently when a pool is attached.
      // Phase 3 (serial): reduce in generation order, replaying the serial
      // loop's bookkeeping (budget checks at primitive boundaries, stats,
      // telemetry, top-k, unexplored pool, first-improvement cut) so the
      // trajectory is bit-identical to eval_threads == 1; where the serial
      // loop would have stopped before generating a candidate, the
      // speculative visited_ inserts past that point are rolled back.
      if (Exhausted()) {
        return std::nullopt;
      }
      std::vector<BatchCandidate> batch;
      std::vector<KindSpan> spans;
      spans.reserve(primitives.size());
      for (const PrimitiveKind kind : primitives) {
        const size_t begin = batch.size();
        for (Candidate& candidate : GeneratePrimitiveCandidates(
                 model_, config.config, config.perf, kind, bottleneck.stage,
                 options_.enable_recompute_attachment)) {
          BatchCandidate bc;
          bc.scored.config = std::move(candidate.config);
          // The hash is computed exactly once per candidate and carried in
          // the ScoredConfig for the top-k bookkeeping.
          bc.scored.semantic_hash =
              bc.scored.config.SemanticHash(model_.graph());
          if (options_.enable_dedup &&
              !visited_.insert(bc.scored.semantic_hash).second) {
            bc.duplicate = true;  // §4.3 deduplication
          } else {
            bc.inserted = options_.enable_dedup;
          }
          batch.push_back(std::move(bc));
        }
        spans.push_back({kind, begin, batch.size()});
      }

      EvaluateBatch(batch);

      // The recursion group shares candidates (not copies) with the
      // unexplored pool.
      std::vector<std::shared_ptr<const ScoredConfig>> group;
      for (const KindSpan& span : spans) {
        // The serial loop checked the budget before generating each
        // primitive's candidates; stopping here leaves the exact state it
        // would have left.
        if (Exhausted()) {
          RollbackVisited(batch, span.begin);
          return std::nullopt;
        }
        for (size_t i = span.begin; i < span.end; ++i) {
          BatchCandidate& bc = batch[i];
          if (telemetry_ != nullptr) {
            ++iter_.generated;
          }
          if (bc.duplicate) {
            if (telemetry_ != nullptr) {
              ++iter_.deduped;
            }
            continue;
          }
          if (!bc.evaluated) {
            // Serial path: evaluate on first use, so a first-improvement cut
            // below leaves the rest of the batch unevaluated, like the old
            // candidate-at-a-time loop.
            bc.scored.perf = model_.Evaluate(bc.scored.config);
            bc.scored.perf.ApplyMemoryLimit(options_.memory_budget_bytes);
            bc.evaluated = true;
            ++eval_serial_candidates_;
          }
          ++stats_.configs_explored;
          if (telemetry_ != nullptr) {
            ++iter_.evaluated;
          }
          RecordTopK(bc.scored);
          OfferFrontier(bc.scored);
          if (bc.scored.perf.BetterThan(init_perf)) {
            // First improvement wins; the serial loop never generated the
            // candidates after it, so un-visit them.
            RollbackVisited(batch, i + 1);
            Improvement improvement;
            improvement.found = std::move(bc.scored);
            improvement.hops = hop + 1;
            improvement.primitive = span.kind;
            return improvement;
          }
          auto shared =
              std::make_shared<const ScoredConfig>(std::move(bc.scored));
          PushUnexplored(shared);
          group.push_back(std::move(shared));
        }
      }

      // Best-performance-first recursion into the group (Heuristic-2), or
      // random order without it.
      if (options_.use_heuristic2) {
        std::sort(group.begin(), group.end(),
                  [](const std::shared_ptr<const ScoredConfig>& a,
                     const std::shared_ptr<const ScoredConfig>& b) {
                    return Score(a->perf) < Score(b->perf);
                  });
      } else {
        ShuffleInPlace(group);
      }
      for (const std::shared_ptr<const ScoredConfig>& next : group) {
        if (Exhausted()) {
          return std::nullopt;
        }
        std::optional<Improvement> found =
            MultiHop(*next, init_perf, hop + 1, nullptr);
        if (found.has_value()) {
          return found;
        }
      }
    }
    return std::nullopt;
  }

  // One generated candidate of a hop's batch, in generation order.
  struct BatchCandidate {
    ScoredConfig scored;     // perf filled in by EvaluateBatch / reduction
    bool duplicate = false;  // dropped by §4.3 dedup; never evaluated
    bool inserted = false;   // this candidate's hash was added to visited_
    bool evaluated = false;  // perf is valid
  };

  // The [begin, end) slice of the batch produced by one primitive kind.
  struct KindSpan {
    PrimitiveKind kind;
    size_t begin;
    size_t end;
  };

  // Phase 2: scores every non-duplicate candidate. Evaluate() is const and
  // its caches (stage-cost cache, profile database) are sharded for
  // concurrent access, so the batch fans out onto the evaluation pool when
  // one is attached and the group is big enough to pay for the join; the
  // submitting worker helps drain its own batch (TaskGroup::Wait), so this
  // is safe even when every pool thread runs an outer stage-count search.
  // Evaluation order does not affect any result bit: each task writes only
  // its own candidate's perf, and all bookkeeping happens in the serial
  // reduction that follows.
  //
  // Serial mode (no pool / small group) evaluates nothing here: the
  // reduction evaluates lazily on first use, so candidates past a
  // first-improvement cut are never evaluated — exactly the pre-batching
  // work profile, with zero speculation. Parallel mode trades that
  // speculative tail for concurrency; the reduction discards the extra
  // perfs, so every result bit still matches.
  //
  // With batch_eval (default), groups of >= 2 survivors are scored through
  // the SoA CandidateBatch (src/cost/batch_eval.h) instead of per-candidate
  // Evaluate(): stages the siblings share resolve once and broadcast. Lane
  // perfs are bit-identical to Evaluate() by the batch's contract, so the
  // reduction — and therefore the trajectory — is unchanged; batching only
  // trades the serial path's lazy tail for shared-stage resolution, the
  // same trade the pooled path already makes. Pooled groups split into
  // contiguous per-thread sub-batches (sharing is densest between adjacent
  // candidates of one primitive, so contiguous slices keep most of it).
  void EvaluateBatch(std::vector<BatchCandidate>& batch) {
    int64_t survivors = 0;
    for (const BatchCandidate& bc : batch) {
      if (!bc.duplicate) {
        ++survivors;
      }
    }
    if (survivors == 0) {
      return;
    }
    ThreadPool* pool = options_.eval_pool;
    const bool pooled =
        pool != nullptr && options_.eval_threads > 1 &&
        survivors >= std::max<int64_t>(1, options_.parallel_eval_threshold);
    if (options_.batch_eval && survivors >= 2) {
      std::vector<BatchCandidate*> lanes;
      lanes.reserve(static_cast<size_t>(survivors));
      for (BatchCandidate& bc : batch) {
        if (!bc.duplicate) {
          bc.evaluated = true;
          lanes.push_back(&bc);
        }
      }
      if (pooled) {
        // One sub-batch per evaluation thread, at least two lanes each.
        const size_t chunks = std::min<size_t>(
            static_cast<size_t>(options_.eval_threads), lanes.size() / 2);
        std::vector<BatchEvalStats> chunk_stats(chunks);
        TaskGroup tasks(*pool);
        for (size_t c = 0; c < chunks; ++c) {
          const size_t begin = c * lanes.size() / chunks;
          const size_t end = (c + 1) * lanes.size() / chunks;
          tasks.Submit([this, &lanes, &chunk_stats, c, begin, end] {
            CandidateBatch sub(model_);
            for (size_t i = begin; i < end; ++i) {
              sub.AddLane(&lanes[i]->scored.config);
            }
            sub.EvaluateAll();
            for (size_t i = begin; i < end; ++i) {
              lanes[i]->scored.perf =
                  sub.TakePerf(static_cast<int>(i - begin));
              lanes[i]->scored.perf.ApplyMemoryLimit(
                  options_.memory_budget_bytes);
            }
            chunk_stats[c] = sub.stats();
          });
        }
        tasks.Wait();
        for (const BatchEvalStats& s : chunk_stats) {
          batch_stats_ += s;
        }
        ++eval_batches_;
        eval_batch_candidates_ += survivors;
      } else {
        // One batch on the submitting thread; scratch_batch_ amortizes the
        // SoA allocations across the search's (many small) groups.
        if (!scratch_batch_.has_value()) {
          scratch_batch_.emplace(model_);
        }
        scratch_batch_->Clear();
        for (BatchCandidate* bc : lanes) {
          scratch_batch_->AddLane(&bc->scored.config);
        }
        scratch_batch_->EvaluateAll();
        for (size_t i = 0; i < lanes.size(); ++i) {
          lanes[i]->scored.perf = scratch_batch_->TakePerf(static_cast<int>(i));
          lanes[i]->scored.perf.ApplyMemoryLimit(options_.memory_budget_bytes);
        }
        batch_stats_ += scratch_batch_->stats();
      }
      return;
    }
    if (!pooled) {
      return;  // lazy: the reduction evaluates serially, on demand
    }
    TaskGroup tasks(*pool);
    for (BatchCandidate& bc : batch) {
      if (bc.duplicate) {
        continue;
      }
      bc.evaluated = true;
      tasks.Submit([this, &bc] {
        bc.scored.perf = model_.Evaluate(bc.scored.config);
        bc.scored.perf.ApplyMemoryLimit(options_.memory_budget_bytes);
      });
    }
    tasks.Wait();
    ++eval_batches_;
    eval_batch_candidates_ += survivors;
  }

  // Un-inserts the visited_ hashes of batch[first..] — the candidates the
  // serial loop would never have generated (it stopped at an improvement or
  // an exhausted budget). Only hashes this batch itself published are
  // erased, so earlier candidates' dedup state survives intact.
  void RollbackVisited(const std::vector<BatchCandidate>& batch,
                       size_t first) {
    for (size_t i = first; i < batch.size(); ++i) {
      if (batch[i].inserted) {
        visited_.erase(batch[i].scored.semantic_hash);
      }
    }
  }

  template <typename T>
  void ShuffleInPlace(std::vector<T>& values) {
    for (size_t i = values.size(); i > 1; --i) {
      std::swap(values[i - 1], values[rng_.NextBelow(i)]);
    }
  }

  void PushUnexplored(const std::shared_ptr<const ScoredConfig>& scored) {
    unexplored_.emplace(Score(scored->perf), scored);
    while (unexplored_.size() > kMaxUnexplored) {
      unexplored_.erase(std::prev(unexplored_.end()));
    }
  }

  // Offers one reduced candidate to the frontier archive
  // (options.track_frontier; DESIGN.md §15). Called only from serial
  // sections — Run()'s spine and the MultiHop reduction — never from the
  // speculative evaluation phase, so the archive is bit-identical at every
  // eval_threads setting: candidates a serial run would not have reduced
  // (past an improvement cut or budget stop) are never offered.
  void OfferFrontier(const ScoredConfig& scored) {
    if (!options_.track_frontier) {
      return;
    }
    const ClusterSpec& cluster = model_.cluster();
    frontier_.Offer(scored.config, scored.perf, scored.semantic_hash,
                    CostPerStepUsd(scored.perf.iteration_time,
                                   cluster.num_gpus(),
                                   cluster.gpu.price_per_hour_usd));
  }

  // Keeps the k best distinct feasible configs in a score-ordered multimap:
  // the worst entry is *std::prev(end()), so eviction is O(log k) instead of
  // an O(k) scan, and emission in Run() needs no final sort.
  void RecordTopK(const ScoredConfig& scored) {
    if (scored.perf.oom || options_.top_k <= 0) {
      return;
    }
    const double score = Score(scored.perf);
    if (static_cast<int>(top_k_.size()) >= options_.top_k &&
        score >= std::prev(top_k_.end())->first) {
      return;  // full and not better than the current worst
    }
    if (!top_k_hashes_.insert(scored.semantic_hash).second) {
      return;  // already recorded
    }
    top_k_.emplace(score, scored);
    if (static_cast<int>(top_k_.size()) > options_.top_k) {
      auto worst = std::prev(top_k_.end());
      top_k_hashes_.erase(worst->second.semantic_hash);
      top_k_.erase(worst);
    }
  }

  const PerformanceModel& model_;
  const SearchOptions& options_;
  int num_stages_;
  TimeBudget budget_;
  const Stopwatch& global_watch_;
  // Cached sink pointer: null disables every instrumentation point behind a
  // single predictable branch (the telemetry-off hot path must stay within
  // noise of the uninstrumented build; see micro_search).
  TelemetrySink* telemetry_;
  int worker_;
  IterationTelemetry iter_;
  Rng rng_;

  // Evaluation-batching diagnostics (DESIGN.md §11), flushed to telemetry
  // counters once per search by EmitSearchEnd.
  int64_t eval_batches_ = 0;
  int64_t eval_batch_candidates_ = 0;
  int64_t eval_serial_candidates_ = 0;

  // SoA group-evaluation diagnostics (DESIGN.md §13) and the reusable
  // single-thread batch; pooled sub-batches are task-local instead.
  BatchEvalStats batch_stats_;
  std::optional<CandidateBatch> scratch_batch_;
  int64_t dp_seed_evaluations_ = 0;

  SearchStats stats_;
  FrontierArchive frontier_;
  std::unordered_set<uint64_t, IdentityHash> visited_;
  std::multimap<double, std::shared_ptr<const ScoredConfig>> unexplored_;
  std::multimap<double, ScoredConfig> top_k_;
  std::unordered_set<uint64_t, IdentityHash> top_k_hashes_;
};

// Merges per-stage-count results into one.
SearchResult MergeResults(std::vector<SearchResult> results, int top_k) {
  SearchResult merged;
  for (SearchResult& r : results) {
    // Per-stage-count archives merge in stage-count order: deterministic
    // inputs (bit-reproducible per-worker archives) give a deterministic
    // merged frontier regardless of which thread ran which stage count.
    // Workers that found no feasible best still contribute: their walks
    // archived valid (time, memory) points.
    merged.frontier.Merge(r.frontier);
    if (!r.found) {
      merged.stats.frontier_offered += r.stats.frontier_offered;
      merged.stats.frontier_admitted += r.stats.frontier_admitted;
      continue;
    }
    if (!merged.found || r.best.perf.BetterThan(merged.best.perf)) {
      merged.best = r.best;
      merged.found = true;
    }
    merged.stats.Merge(r.stats);
    for (ScoredConfig& c : r.top_configs) {
      merged.top_configs.push_back(std::move(c));
    }
    for (const ConvergencePoint& point : r.convergence) {
      merged.convergence.push_back(point);
    }
  }
  std::sort(merged.top_configs.begin(), merged.top_configs.end(),
            [](const ScoredConfig& a, const ScoredConfig& b) {
              return Score(a.perf) < Score(b.perf);
            });
  if (static_cast<int>(merged.top_configs.size()) > top_k) {
    merged.top_configs.resize(static_cast<size_t>(top_k));
  }
  // Convergence trend: running minimum over time across all searches, over
  // feasible points only. Infeasible (OOM) bests carry model estimates for
  // over-memory configurations — folding them into the minimum used to start
  // every merged curve at the search's sentinel-score magnitude until the
  // first feasible configuration appeared.
  std::sort(merged.convergence.begin(), merged.convergence.end(),
            [](const ConvergencePoint& a, const ConvergencePoint& b) {
              return a.elapsed_seconds < b.elapsed_seconds;
            });
  std::vector<ConvergencePoint> feasible_trend;
  feasible_trend.reserve(merged.convergence.size());
  double running = 1e300;
  for (const ConvergencePoint& point : merged.convergence) {
    if (!point.feasible) {
      continue;
    }
    running = std::min(running, point.best_iteration_time);
    feasible_trend.push_back(
        {point.elapsed_seconds, running, point.evaluations, true});
  }
  merged.convergence = std::move(feasible_trend);
  return merged;
}

// Runs one stage count's search slice. In frontier mode (DESIGN.md §15) the
// slice's budget splits across an internal ladder of memory limits —
// capacity, then halved per rung — because a capacity-limit walk alone
// under-samples the low-memory region: Algorithm 1 alleviates whatever
// bottleneck blocks *throughput*, so it rarely visits the configurations a
// tight budget would force. Each rung runs the same Algorithm-1 walk with
// the rung's limit applied to every verdict, and the rungs merge into one
// result (capacity rung first, so a config several rungs visit keeps its
// widest-limit verdict in the archive). Deterministic: fixed rung count,
// deterministic per-rung evaluation budgets, serial merge order.
SearchResult RunStageCount(const PerformanceModel& model,
                           const SearchOptions& options, int num_stages,
                           double budget_seconds, const Stopwatch& watch,
                           int worker) {
  if (!options.track_frontier) {
    SingleSearch search(model, options, num_stages, budget_seconds, watch,
                        worker);
    return search.Run();
  }
  // Rung limits descend from capacity by powers of two — the fractions a
  // budget sweep naturally asks about ("half the memory, a quarter"). An
  // off-rung budget is answered by the nearest covered level below it;
  // densifying the ladder (sqrt(2) rungs) was tried and lost more to the
  // thinner per-rung budget than it gained in coverage.
  constexpr int kLadderRungs = 5;
  const int64_t capacity =
      options.memory_budget_bytes > 0
          ? std::min(options.memory_budget_bytes,
                     model.cluster().gpu.memory_bytes)
          : model.cluster().gpu.memory_bytes;
  // <= 0 stays "unlimited" through the division.
  const double rung_seconds = budget_seconds / kLadderRungs;
  const int64_t base_evals = options.max_evaluations / kLadderRungs;
  std::vector<SearchResult> rungs;
  for (int rung = 0; rung < kLadderRungs; ++rung) {
    SearchOptions rung_options = options;
    if (rung == 0) {
      // The capacity rung keeps the caller's own limit (possibly none) and
      // absorbs the evaluation-budget remainder, so the overall best is as
      // strong as an even split allows.
      if (options.max_evaluations > 0) {
        rung_options.max_evaluations =
            options.max_evaluations - (kLadderRungs - 1) * base_evals;
      }
    } else {
      if (options.max_evaluations > 0 && base_evals == 0) {
        break;  // too few evaluations to split; the capacity rung took all
      }
      rung_options.memory_budget_bytes = capacity >> rung;
      if (options.max_evaluations > 0) {
        rung_options.max_evaluations = base_evals;
      }
    }
    SingleSearch search(model, rung_options, num_stages, rung_seconds, watch,
                        worker);
    rungs.push_back(search.Run());
  }
  return MergeResults(std::move(rungs), options.top_k);
}

}  // namespace

void SearchStats::Merge(const SearchStats& other) {
  iterations += other.iterations;
  improvements += other.improvements;
  configs_explored += other.configs_explored;
  frontier_offered += other.frontier_offered;
  frontier_admitted += other.frontier_admitted;
  cache_hits += other.cache_hits;
  cache_misses += other.cache_misses;
  cache_evictions += other.cache_evictions;
  bottleneck_attempts.insert(bottleneck_attempts.end(),
                             other.bottleneck_attempts.begin(),
                             other.bottleneck_attempts.end());
  hops_used.insert(hops_used.end(), other.hops_used.begin(),
                   other.hops_used.end());
}

namespace {

// The stage-cost cache is shared by every search against `model` (possibly
// concurrently), so per-run activity is attributed as a counter delta.
void RecordCacheDelta(const PerformanceModel& model,
                      const StageCacheStats& before, SearchStats* stats) {
  const StageCacheStats delta = model.stage_cache().stats() - before;
  stats->cache_hits += delta.hits;
  stats->cache_misses += delta.misses;
  stats->cache_evictions += delta.evictions;
}

// Before/after snapshot of every cache layer under the search, taken so the
// deltas can be attributed to one run.
struct ModelCounterSnapshot {
  StageCacheStats stage_cache;
  OpMemoStats op_memo;
  ProfileDbStats profile_db;

  static ModelCounterSnapshot Take(const PerformanceModel& model) {
    ModelCounterSnapshot s;
    s.stage_cache = model.stage_cache().stats();
    s.op_memo = model.op_memo().stats();
    s.profile_db = model.db().stats();
    return s;
  }
};

// Publishes the cache-layer deltas of one search into the sink's counter
// registry. Counters only — never events: the values are thread-timing
// dependent (which worker hits which cache first), and the event stream must
// stay bit-identical across eval_threads (DESIGN.md §11). Tools that want
// the hit rates in the JSONL emit a counter-snapshot event after the search.
void RecordModelCounters(const PerformanceModel& model,
                         const ModelCounterSnapshot& before,
                         TelemetrySink* telemetry) {
  if (telemetry == nullptr) {
    return;
  }
  const StageCacheStats cache = model.stage_cache().stats() - before.stage_cache;
  const OpMemoStats memo = model.op_memo().stats() - before.op_memo;
  const ProfileDbStats db = model.db().stats() - before.profile_db;
  telemetry->IncrCounter("cost.stage_cache_hits", cache.hits);
  telemetry->IncrCounter("cost.stage_cache_misses", cache.misses);
  telemetry->IncrCounter("cost.stage_cache_evictions", cache.evictions);
  telemetry->IncrCounter("cost.op_memo_hits", memo.hits);
  telemetry->IncrCounter("cost.op_memo_misses", memo.misses);
  telemetry->IncrCounter("cost.op_memo_inserts_dropped", memo.inserts_dropped);
  telemetry->IncrCounter("profile_db.lookups", db.lookups);
  telemetry->IncrCounter("profile_db.misses", db.misses);
  telemetry->IncrCounter("profile_db.l1_hits", db.l1_hits);
  telemetry->IncrCounter("profile_db.snapshot_hits", db.snapshot_hits);
  telemetry->IncrCounter("profile_db.lock_contended", db.lock_contended);
  telemetry->IncrCounter("profile_db.republishes", db.republishes);
}

}  // namespace

uint64_t SearchOptionsSemanticHash(const SearchOptions& options) {
  Hasher h;
  h.Add(options.time_budget_seconds);
  h.Add(options.max_evaluations);
  h.Add(options.max_hops);
  h.Add(options.use_heuristic2);
  h.Add(options.enable_finetune);
  h.Add(options.enable_dedup);
  h.Add(options.enable_recompute_attachment);
  h.Add(options.enable_zero_primitives);
  h.Add(options.top_k);
  h.Add(options.seed);
  h.Add(options.min_stages);
  h.Add(options.max_stages);
  h.Add(options.max_bottlenecks_per_iteration);
  h.Add(static_cast<int>(options.initial_config));
  h.Add(static_cast<int>(options.seed_mode));
  h.Add(options.track_frontier);
  h.Add(options.memory_budget_bytes);
  // A kConfig seed changes the trajectory, so its structure must key the
  // plan cache. The fold is graph-free (raw fields, no canonicalization):
  // two distinct seeds may hash apart even when semantically equal, which
  // only costs a duplicate cache entry, never a wrong hit.
  h.Add(options.seed_config != nullptr);
  if (options.seed_config != nullptr) {
    const ParallelConfig& seed = *options.seed_config;
    h.Add(seed.microbatch_size());
    h.Add(seed.num_stages());
    for (const StageConfig& stage : seed.stages()) {
      h.Add(stage.first_op);
      h.Add(stage.num_ops);
      h.Add(stage.num_devices);
      for (const OpParallel& op : stage.ops) {
        h.Add(op.tp);
        h.Add(op.dp);
        h.Add(static_cast<int>(op.tp_dim));
        h.Add(op.recompute);
        h.Add(op.zero_opt);
      }
    }
  }
  return h.Digest();
}

SearchResult AcesoSearchForStages(const PerformanceModel& model,
                                  const SearchOptions& options,
                                  int num_stages) {
  Stopwatch watch;
  const StageCacheStats cache_before = model.stage_cache().stats();
  const ModelCounterSnapshot counters_before = ModelCounterSnapshot::Take(model);
  // Intra-search evaluation parallelism with no caller-provided pool: spin
  // up a local one for the duration of this search.
  std::optional<ThreadPool> local_pool;
  SearchOptions child = options;
  if (child.eval_threads > 1 && child.eval_pool == nullptr) {
    local_pool.emplace(static_cast<size_t>(child.eval_threads));
    child.eval_pool = &*local_pool;
  }
  SearchResult result = RunStageCount(model, child, num_stages,
                                      child.time_budget_seconds, watch,
                                      /*worker=*/0);
  RecordCacheDelta(model, cache_before, &result.stats);
  RecordModelCounters(model, counters_before, options.telemetry);
  result.search_seconds = watch.ElapsedSeconds();
  return result;
}

SearchResult AcesoSearch(const PerformanceModel& model,
                         const SearchOptions& options) {
  const int gpus = model.cluster().num_gpus();
  const int max_auto = std::min({gpus, model.graph().num_ops(), 12});
  const int min_stages = std::max(1, options.min_stages);
  const int max_stages =
      options.max_stages > 0 ? options.max_stages : max_auto;

  std::vector<int> stage_counts;
  for (int p = min_stages; p <= max_stages; ++p) {
    if (p <= gpus && p <= model.graph().num_ops()) {
      stage_counts.push_back(p);
    }
  }
  if (stage_counts.empty()) {
    stage_counts.push_back(1);
  }

  Stopwatch watch;
  const StageCacheStats cache_before = model.stage_cache().stats();
  const ModelCounterSnapshot counters_before = ModelCounterSnapshot::Take(model);
  std::vector<SearchResult> results(stage_counts.size());

  size_t threads = options.num_threads > 0
                       ? static_cast<size_t>(options.num_threads)
                       : stage_counts.size();
  threads = std::min({threads, stage_counts.size(),
                      static_cast<size_t>(std::max(
                          1u, std::thread::hardware_concurrency()))});
  // With fewer workers than stage counts the searches serialize into
  // ceil(N/threads) waves, so each search gets budget/waves and the total
  // wall-clock lands on options.time_budget_seconds however unevenly the
  // last wave fills. (Scaling by threads/N — the continuous version of the
  // same idea — overshot by up to ~2x at small N: with 5 stage counts on 4
  // threads it granted 0.8·T per search and the two waves totalled 1.6·T.)
  const size_t waves = (stage_counts.size() + threads - 1) / threads;
  const double per_search_budget =
      options.time_budget_seconds / static_cast<double>(waves);

  // One shared pool for both levels of parallelism. It is sized for the
  // wider of the two so eval_threads is honoured even when few stage counts
  // run; the per-wave TaskGroup below keeps at most `threads` stage-count
  // searches in flight regardless of pool width, preserving the waves
  // budget math, while the extra workers (and any wave worker that finishes
  // its search early) steal evaluation batches from the searches still
  // running.
  size_t pool_threads = threads;
  SearchOptions child = options;
  if (child.eval_threads > 1 && child.eval_pool == nullptr) {
    pool_threads = std::max(threads, static_cast<size_t>(child.eval_threads));
  }
  ThreadPool pool(pool_threads);
  if (child.eval_threads > 1 && child.eval_pool == nullptr) {
    child.eval_pool = &pool;
  }
  for (size_t wave_begin = 0; wave_begin < stage_counts.size();
       wave_begin += threads) {
    TaskGroup wave(pool);
    const size_t wave_end =
        std::min(stage_counts.size(), wave_begin + threads);
    for (size_t i = wave_begin; i < wave_end; ++i) {
      wave.Submit([&model, &child, &stage_counts, &results, &watch,
                   per_search_budget, i] {
        results[i] = RunStageCount(model, child, stage_counts[i],
                                   per_search_budget, watch,
                                   static_cast<int>(i));
      });
    }
    wave.Wait();
  }
  if (options.telemetry != nullptr) {
    // Pool activity is a counter-only diagnostic: the event stream must stay
    // bit-identical across eval_threads (DESIGN.md §11).
    const ThreadPoolStats ps = pool.stats();
    options.telemetry->IncrCounter("search.pool_tasks", ps.executed);
    options.telemetry->IncrCounter("search.pool_steals", ps.stolen);
    options.telemetry->IncrCounter("search.pool_helped", ps.helped);
  }

  SearchResult merged = MergeResults(std::move(results), options.top_k);
  RecordCacheDelta(model, cache_before, &merged.stats);
  RecordModelCounters(model, counters_before, options.telemetry);
  merged.search_seconds = watch.ElapsedSeconds();
  if (options.telemetry != nullptr) {
    options.telemetry->RecordTimer("search.total_seconds",
                                   merged.search_seconds);
    options.telemetry->Emit(std::move(
        TelemetryEvent("search_summary")
            .Dbl("t", merged.search_seconds)
            .Int("stage_counts", static_cast<int64_t>(stage_counts.size()))
            .Int("threads", static_cast<int64_t>(threads))
            .Int("waves", static_cast<int64_t>(waves))
            .Dbl("per_search_budget", per_search_budget)
            .Dbl("time_budget", options.time_budget_seconds)
            .Bool("found", merged.found)
            .Int("iterations", merged.stats.iterations)
            .Int("improvements", merged.stats.improvements)
            .Int("configs_explored", merged.stats.configs_explored)
            .Dbl("best_time", merged.best.perf.iteration_time)
            .Bool("feasible", merged.found && !merged.best.perf.oom)));
  }
  return merged;
}

}  // namespace aceso
