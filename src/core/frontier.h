// Throughput–memory Pareto frontier archive (DESIGN.md §15).
//
// Aceso's search answers one question: best iteration time under one fixed
// per-device memory limit. TensorOpt observes that the valuable artifact is
// the whole throughput-vs-memory *frontier*: the best configuration at every
// memory budget. Because Algorithm 1 evaluates hundreds of configurations on
// its way to one answer — including infeasible ones whose peak memory and
// timing estimates are still valid — the frontier falls out of the walk for
// free: every evaluated candidate is offered to this archive, which keeps
// only the Pareto-optimal set over (iteration time, peak per-device memory).
//
// A budget-sweep query ("what if I only have 16 GB?") then becomes a lookup
// (BestUnderBudget) instead of a re-search, and the archive serializes into
// the serving plan payload so the PR-7 plan cache answers sweeps without
// re-entering AcesoSearch.
//
// Invariants (checked by tests/frontier_test.cc):
//   - points are sorted by peak_memory_bytes strictly ascending;
//   - iteration_time is strictly descending along that order (no archived
//     point weakly dominates another);
//   - no two archived points share a config semantic hash;
//   - Offer order is deterministic: the search offers candidates from its
//     serial reduction only, so the archive is bit-identical at any
//     SearchOptions::eval_threads.

#ifndef SRC_CORE_FRONTIER_H_
#define SRC_CORE_FRONTIER_H_

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "src/common/json.h"
#include "src/common/status.h"
#include "src/config/parallel_config.h"
#include "src/cost/resource_usage.h"

namespace aceso {

// $/step on the frontier's cost axis: the price of running every device in
// the cluster for one iteration at the given hourly rate.
double CostPerStepUsd(double iteration_time, int num_gpus,
                      double price_per_hour_usd);

// One archived configuration: a point on the throughput–memory frontier.
struct FrontierPoint {
  double iteration_time = 0.0;      // predicted seconds per iteration
  int64_t peak_memory_bytes = 0;    // max over stages, per device (Eq. 1)
  double cost_per_step_usd = 0.0;   // CostPerStepUsd at archive time
  uint64_t semantic_hash = 0;       // ParallelConfig::SemanticHash
  int num_stages = 0;
  int microbatch_size = 0;
  // Verdict under the memory limit the search ran with. Points above the
  // searched limit are archived too — they answer budgets larger than the
  // device the search modelled.
  bool feasible = true;

  // The configuration itself (cheap copy-on-write handle). Empty (zero
  // stages) for points reconstructed from JSON; `config_text` carries the
  // serialized form in that case.
  ParallelConfig config;
  std::string config_text;
};

// Counters for one archive's lifetime. Offer() updates them; Merge() counts
// the donor's points as fresh offers into this archive.
struct FrontierStats {
  int64_t offered = 0;     // Offer() calls
  int64_t admitted = 0;    // offers that entered the archive
  int64_t dominated = 0;   // offers rejected as weakly dominated
  int64_t duplicates = 0;  // offers rejected by semantic-hash dedup
  int64_t rejected = 0;    // offers with non-finite / non-positive estimates
  int64_t evicted = 0;     // previously admitted points displaced later
};

// The Pareto set over (iteration_time, peak_memory_bytes). Not thread-safe:
// the search offers from its serial reduction, and per-stage-count worker
// archives are merged serially afterwards.
class FrontierArchive {
 public:
  // Offers one evaluated configuration. `perf` supplies the timing estimate,
  // peak memory and feasibility verdict; `semantic_hash` must be the
  // config's semantic hash (dedup key); `cost_per_step_usd` is the $/step
  // at archive time. Returns true iff the point was admitted. Offers with
  // NaN/±inf or non-positive iteration-time estimates are rejected: the
  // archive's ordering invariant depends on totally ordered metrics.
  bool Offer(const ParallelConfig& config, const PerfResult& perf,
             uint64_t semantic_hash, double cost_per_step_usd);

  // Offers an already-built point (used by Merge and deserialization-free
  // rebuilds). Same admission rules as Offer above.
  bool OfferPoint(const FrontierPoint& point);

  // Offers every point of `other` into this archive, in `other`'s stored
  // (memory-ascending) order — deterministic given deterministic inputs.
  void Merge(const FrontierArchive& other);

  // The best archived config whose peak memory fits `budget_bytes`, or
  // nullptr when no archived point fits. With the stored ordering this is
  // the last point with peak_memory_bytes <= budget_bytes: every earlier
  // point fits too but is slower, every later one does not fit. The pointer
  // is invalidated by the next non-const call.
  const FrontierPoint* BestUnderBudget(int64_t budget_bytes) const;

  // Points sorted by peak memory ascending / iteration time descending.
  const std::vector<FrontierPoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }
  const FrontierStats& stats() const { return stats_; }

  // JSON object for the serving plan payload: {"points":[...],
  // "offered":N,"admitted":K,...}. Each point carries `config_text`
  // (SerializeConfig against `model_name`) so a deserialized frontier can
  // still hand out lowerable configurations.
  std::string ToJson(const std::string& model_name) const;

  // Rebuilds an archive from a ToJson document. Points keep `config_text`
  // but carry an empty ParallelConfig (callers lower via ParseConfig when
  // needed). Rejects documents whose points violate the Pareto ordering
  // invariant — a corrupted cache entry must not serve sweeps.
  static StatusOr<FrontierArchive> FromJson(const JsonValue& value);

 private:
  std::vector<FrontierPoint> points_;
  std::unordered_set<uint64_t> hashes_;
  FrontierStats stats_;
};

}  // namespace aceso

#endif  // SRC_CORE_FRONTIER_H_
