// GPU device model.
//
// The paper's testbed is a 32x NVIDIA V100 (32 GB) cluster. Aceso's search
// never touches a physical GPU: it consumes a profiled database of operator
// times. This module supplies the parametric device model that the simulated
// profiler (src/profile) and the execution simulator (src/runtime) "measure".
//
// The single most important modelling choice is the *efficiency curve*:
// achieved FLOPS is a saturating function of the per-kernel work size. This
// is what makes the paper's trade-offs emerge: splitting an operator 8-way
// with tensor parallelism shrinks the per-GPU GEMM and drops its achieved
// FLOPS, so "more tp" is not free even before communication is counted.

#ifndef SRC_HW_GPU_SPEC_H_
#define SRC_HW_GPU_SPEC_H_

#include <cstdint>
#include <string>

#include "src/common/units.h"

namespace aceso {

// Numeric precision of tensors/compute. GPT-3 and T5 train in FP16,
// Wide-ResNet in FP32 (paper Table 2).
enum class Precision {
  kFp16,
  kFp32,
};

// Bytes per element for a precision.
int64_t BytesPerElement(Precision precision);

const char* PrecisionName(Precision precision);

struct GpuSpec {
  std::string name = "V100-32GB";

  // Peak math throughput in FLOP/s.
  double peak_fp16_flops = 112e12;  // tensor-core GEMM peak (practical)
  double peak_fp32_flops = 15.7e12;

  // Device memory capacity available to the training process. The paper uses
  // 32 GB V100s; we reserve ~2 GB for the framework/CUDA context.
  int64_t memory_bytes = 30LL * kGiB;

  // HBM bandwidth; bounds memory-bound ops (layernorm, elementwise).
  double hbm_bandwidth = 900e9;  // bytes/s

  // Fixed per-kernel launch overhead.
  double kernel_launch_seconds = 6e-6;

  // Efficiency curve parameters: achieved = peak * max_efficiency *
  // work / (work + half_saturation_flops). Small kernels achieve a small
  // fraction of peak; big GEMMs approach max_efficiency * peak.
  double max_efficiency = 0.62;
  double half_saturation_flops = 2.5e9;

  // On-demand price of one device-hour in USD. Never affects a simulated
  // timing; it feeds the frontier archive's $/step cost axis (DESIGN.md §15):
  // cost_per_step = iteration_time * num_gpus * price_per_hour_usd / 3600.
  // Default is an on-demand V100 rate (p3.2xlarge-class).
  double price_per_hour_usd = 3.06;

  // Returns the peak FLOP/s for the given precision.
  double PeakFlops(Precision precision) const;

  // Semantic fingerprint over every answer-affecting property (name
  // excluded: two specs that answer identically are the same device). This
  // includes `price_per_hour_usd` — pricing never changes a timing, but it
  // changes the $/step axis of a served frontier payload, and the
  // fingerprint feeds ClusterSpec::Fingerprint, which keys profile-snapshot
  // files and the serving plan cache — any field change must change the
  // fingerprint.
  uint64_t Fingerprint() const;

  // Time (seconds) to execute `flops` of math-bound work at `precision`
  // moving `bytes_touched` through HBM: max of the math-bound and
  // memory-bound roofline estimates plus launch overhead.
  double ComputeTime(double flops, int64_t bytes_touched,
                     Precision precision) const;

  // The achieved fraction of peak for a kernel of `flops` work.
  double Efficiency(double flops) const;
};

}  // namespace aceso

#endif  // SRC_HW_GPU_SPEC_H_
