# Empty dependencies file for parallel_config_test.
# This may be replaced when dependencies are built.
