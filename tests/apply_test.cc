#include "src/core/apply.h"

#include <gtest/gtest.h>

#include "src/ir/models/model_zoo.h"

namespace aceso {
namespace {

class ApplyTest : public ::testing::Test {
 protected:
  ApplyTest()
      : graph_(models::Gpt3(0.35)),
        cluster_(ClusterSpec::WithGpuCount(8)),
        db_(cluster_),
        model_(&graph_, cluster_, &db_) {}

  ParallelConfig Even(int stages, int mbs = 1) {
    auto config = MakeEvenConfig(graph_, cluster_, stages, mbs);
    EXPECT_TRUE(config.ok());
    return *std::move(config);
  }

  OpGraph graph_;
  ClusterSpec cluster_;
  ProfileDatabase db_;
  PerformanceModel model_;
};

TEST_F(ApplyTest, MoveOpsToEarlierStage) {
  ParallelConfig config = Even(4);
  const int src_ops = config.stage(1).num_ops;
  const int dst_ops = config.stage(0).num_ops;
  ASSERT_TRUE(MoveOps(model_, config, 1, 0, 3));
  EXPECT_EQ(config.stage(1).num_ops, src_ops - 3);
  EXPECT_EQ(config.stage(0).num_ops, dst_ops + 3);
  EXPECT_TRUE(config.Validate(graph_, cluster_).ok());
}

TEST_F(ApplyTest, MoveOpsToLaterStage) {
  ParallelConfig config = Even(4);
  const int src_ops = config.stage(1).num_ops;
  ASSERT_TRUE(MoveOps(model_, config, 1, 2, 2));
  EXPECT_EQ(config.stage(1).num_ops, src_ops - 2);
  EXPECT_TRUE(config.Validate(graph_, cluster_).ok());
}

TEST_F(ApplyTest, MoveOpsRefusesToEmptyStage) {
  ParallelConfig config = Even(4);
  const int n = config.stage(1).num_ops;
  EXPECT_FALSE(MoveOps(model_, config, 1, 0, n));
  EXPECT_TRUE(config.Validate(graph_, cluster_).ok());  // untouched
}

TEST_F(ApplyTest, MoveOpsRejectsNonAdjacent) {
  ParallelConfig config = Even(4);
  EXPECT_FALSE(MoveOps(model_, config, 0, 2, 1));
  EXPECT_FALSE(MoveOps(model_, config, 3, 1, 1));
}

TEST_F(ApplyTest, MoveOpsPreservesRecomputeFlags) {
  ParallelConfig config = Even(4);
  // Flag the last op of stage 1.
  const int last = config.stage(1).num_ops - 1;
  config.MutableStage(1).ops[static_cast<size_t>(last)].recompute = true;
  ASSERT_TRUE(MoveOps(model_, config, 1, 2, 1));
  EXPECT_TRUE(config.stage(2).ops[0].recompute);
}

TEST_F(ApplyTest, MovedOpsAdoptDestinationParallelism) {
  // Give stage 0 two devices per op via a 3-stage config where device
  // counts differ.
  auto maybe = MakeEvenConfig(graph_, cluster_, 3, 1);
  ASSERT_TRUE(maybe.ok());
  ParallelConfig config = *maybe;
  const int dst_devices = config.stage(0).num_devices;
  ASSERT_TRUE(MoveOps(model_, config, 1, 0, 1));
  const StageConfig& dst = config.stage(0);
  const OpParallel& moved = dst.ops.back();
  EXPECT_EQ(moved.tp * moved.dp, dst_devices);
}

TEST_F(ApplyTest, FixRecomputeResolvesOom) {
  // A 1-stage config on a small-memory device is OOM without recompute.
  ClusterSpec tiny = cluster_;
  tiny.gpu.memory_bytes = 4 * kGiB;
  ProfileDatabase tiny_db(tiny);
  PerformanceModel tiny_model(&graph_, tiny, &tiny_db);
  auto maybe = MakeEvenConfig(graph_, tiny, 2, 8);
  ASSERT_TRUE(maybe.ok());
  ParallelConfig config = *maybe;
  const PerfResult before = tiny_model.Evaluate(config);
  ASSERT_TRUE(before.oom);
  FixRecompute(tiny_model, config, before.max_memory_stage);
  const PerfResult after = tiny_model.Evaluate(config);
  EXPECT_LT(after.MaxMemory(), before.MaxMemory());
  EXPECT_GT(config.stage(before.max_memory_stage).NumRecomputed(), 0);
}

TEST_F(ApplyTest, FixRecomputeReleasesUnneededRecompute) {
  ParallelConfig config = Even(2);
  for (int i = 0; i < graph_.num_ops(); ++i) {
    config.MutableOpSettings(i).recompute = true;
  }
  // Plenty of memory: the fix should drop (some) recomputation.
  const int before = config.stage(0).NumRecomputed();
  FixRecompute(model_, config, 0);
  EXPECT_LT(config.stage(0).NumRecomputed(), before);
}

TEST_F(ApplyTest, EstimateOpTimePositiveAndRecomputeAware) {
  const Operator& op = graph_.op(5);
  OpParallel setting;
  setting.tp = 1;
  setting.dp = 1;
  const double plain = EstimateOpTime(model_, op, setting, 4);
  setting.recompute = true;
  const double with_rc = EstimateOpTime(model_, op, setting, 4);
  EXPECT_GT(plain, 0.0);
  EXPECT_GT(with_rc, plain);
}

// ---- candidate generation ----

class CandidateTest : public ApplyTest {
 protected:
  std::vector<Candidate> Generate(const ParallelConfig& config,
                                  PrimitiveKind kind, int stage) {
    const PerfResult perf = model_.Evaluate(config);
    return GeneratePrimitiveCandidates(model_, config, perf, kind, stage);
  }
};

TEST_F(CandidateTest, AllCandidatesValidate) {
  const ParallelConfig config = Even(4, 4);
  for (int kind = 0; kind < kNumPrimitives; ++kind) {
    for (const Candidate& c :
         Generate(config, static_cast<PrimitiveKind>(kind), 1)) {
      EXPECT_TRUE(c.config.Validate(graph_, cluster_).ok())
          << PrimitiveName(c.primitive) << ": " << c.description;
    }
  }
}

TEST_F(CandidateTest, CandidatesPreserveTotalDevices) {
  const ParallelConfig config = Even(4, 4);
  for (int kind = 0; kind < kNumPrimitives; ++kind) {
    for (const Candidate& c :
         Generate(config, static_cast<PrimitiveKind>(kind), 2)) {
      EXPECT_EQ(c.config.TotalDevices(), cluster_.num_gpus())
          << c.description;
    }
  }
}

TEST_F(CandidateTest, CandidatesPreserveOpCoverage) {
  const ParallelConfig config = Even(4, 4);
  for (int kind = 0; kind < kNumPrimitives; ++kind) {
    for (const Candidate& c :
         Generate(config, static_cast<PrimitiveKind>(kind), 1)) {
      int ops = 0;
      for (const StageConfig& s : c.config.stages()) {
        ops += s.num_ops;
      }
      EXPECT_EQ(ops, graph_.num_ops()) << c.description;
    }
  }
}

TEST_F(CandidateTest, IncMbsDoublesMicrobatch) {
  const ParallelConfig config = Even(2, 2);
  const auto candidates = Generate(config, PrimitiveKind::kIncMbs, 0);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0].config.microbatch_size(), 4);
}

TEST_F(CandidateTest, DecMbsHalvesMicrobatch) {
  const ParallelConfig config = Even(2, 4);
  const auto candidates = Generate(config, PrimitiveKind::kDecMbs, 0);
  ASSERT_FALSE(candidates.empty());
  EXPECT_EQ(candidates[0].config.microbatch_size(), 2);
}

TEST_F(CandidateTest, DecMbsAtMinimumYieldsNothing) {
  const ParallelConfig config = Even(8, 1);
  EXPECT_TRUE(Generate(config, PrimitiveKind::kDecMbs, 0).empty());
}

TEST_F(CandidateTest, DecOpMovesOpsOutOfBottleneck) {
  const ParallelConfig config = Even(4, 4);
  const auto candidates = Generate(config, PrimitiveKind::kDecOpCount, 1);
  ASSERT_FALSE(candidates.empty());
  bool some_shrink = false;
  for (const Candidate& c : candidates) {
    if (c.config.stage(1).num_ops < config.stage(1).num_ops) {
      some_shrink = true;
    }
  }
  EXPECT_TRUE(some_shrink);
}

TEST_F(CandidateTest, IncTpProducesDeviceMigrationOrSwap) {
  ParallelConfig config = Even(2, 8);
  // Stage 0 at tp4/dp... make sure both stages have dp head-room.
  config.MutableStage(0).SetUniformParallelism(graph_, 2, 2);
  config.MutableStage(1).SetUniformParallelism(graph_, 2, 2);
  ASSERT_TRUE(config.Validate(graph_, cluster_).ok());
  const auto candidates = Generate(config, PrimitiveKind::kIncTp, 0);
  ASSERT_FALSE(candidates.empty());
  // At least one candidate raises the modal tp of stage 0.
  bool raised = false;
  for (const Candidate& c : candidates) {
    int tp = 1;
    for (const OpParallel& setting : c.config.stage(0).ops) {
      tp = std::max(tp, setting.tp);
    }
    if (tp > 2) {
      raised = true;
    }
  }
  EXPECT_TRUE(raised);
}

TEST_F(CandidateTest, IncRcFlagsLargestActivations) {
  const ParallelConfig config = Even(2, 4);
  const auto candidates = Generate(config, PrimitiveKind::kIncRc, 0);
  ASSERT_FALSE(candidates.empty());
  bool some_recompute = false;
  for (const Candidate& c : candidates) {
    if (c.config.stage(0).NumRecomputed() > 0) {
      some_recompute = true;
    }
  }
  EXPECT_TRUE(some_recompute);
}

TEST_F(CandidateTest, DecRcUnflagsOps) {
  ParallelConfig config = Even(2, 4);
  for (int i = 0; i < graph_.num_ops(); ++i) {
    config.MutableOpSettings(i).recompute = true;
  }
  const auto candidates = Generate(config, PrimitiveKind::kDecRc, 0);
  ASSERT_FALSE(candidates.empty());
  bool some_released = false;
  for (const Candidate& c : candidates) {
    if (c.config.stage(0).NumRecomputed() <
        config.stage(0).NumRecomputed()) {
      some_released = true;
    }
  }
  EXPECT_TRUE(some_released);
}

TEST_F(CandidateTest, SingleStageHasNoOpMoves) {
  const ParallelConfig config = Even(1, 8);
  EXPECT_TRUE(Generate(config, PrimitiveKind::kDecOpCount, 0).empty());
  EXPECT_TRUE(Generate(config, PrimitiveKind::kIncOpCount, 0).empty());
}

}  // namespace
}  // namespace aceso
