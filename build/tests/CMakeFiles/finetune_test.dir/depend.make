# Empty dependencies file for finetune_test.
# This may be replaced when dependencies are built.
