#include "src/hw/cluster.h"

#include <sstream>

#include "src/common/hash.h"
#include "src/common/logging.h"

namespace aceso {

bool ClusterSpec::GroupCrossesNodes(int first, int size, int stride) const {
  if (size <= 1) {
    return false;
  }
  const int last = first + (size - 1) * stride;
  return NodeOf(first) != NodeOf(last);
}

ClusterSpec ClusterSpec::SingleGpu() {
  ClusterSpec cluster;
  cluster.num_nodes = 1;
  cluster.gpus_per_node = 1;
  return cluster;
}

ClusterSpec ClusterSpec::PaperCluster() {
  return ClusterSpec();  // defaults model the paper's 4x8 V100 testbed
}

ClusterSpec ClusterSpec::WithGpuCount(int gpus) {
  ACESO_CHECK_GT(gpus, 0);
  ClusterSpec cluster;
  if (gpus <= 8) {
    cluster.num_nodes = 1;
    cluster.gpus_per_node = gpus;
  } else {
    ACESO_CHECK_EQ(gpus % 8, 0) << "multi-node clusters must be 8 GPUs/node";
    cluster.num_nodes = gpus / 8;
    cluster.gpus_per_node = 8;
  }
  return cluster;
}

uint64_t ClusterSpec::Fingerprint() const {
  Hasher h;
  h.Add(gpu.Fingerprint());
  h.Add(num_nodes);
  h.Add(gpus_per_node);
  h.Add(nvlink_bandwidth);
  h.Add(nvlink_latency);
  h.Add(ib_bandwidth);
  h.Add(ib_latency);
  return h.Digest();
}

std::string ClusterSpec::ToString() const {
  std::ostringstream oss;
  oss << num_nodes << "x" << gpus_per_node << " " << gpu.name;
  return oss.str();
}

}  // namespace aceso
