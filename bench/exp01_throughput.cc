// Exp#1 — training throughput (paper Figure 7 + Appendix Tables 3/4/5).
//
// For every model family (GPT-3, Wide-ResNet, T5) and model-size/GPU-count
// pairing of Table 2, searches a configuration with each system (Aceso,
// Megatron-LM grid search, Alpa-like solver), executes the winner in the
// simulated runtime, and reports throughput normalized to the best system
// plus effective TFLOPS/GPU.
//
// Paper claims to reproduce in shape: Aceso >= baselines everywhere, with
// up to ~1.3x over Alpa (GPT-3/Wide-ResNet) and up to ~1.5x over
// Megatron-LM (T5, where Alpa has no official implementation).

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace aceso {
namespace bench {
namespace {

struct SystemRow {
  std::string system;
  double samples_per_sec = 0.0;
  double tflops = 0.0;
  double search_seconds = 0.0;
  std::string plan;
};

// Runs all systems on one workload; returns rows (empty plan = not run).
std::vector<SystemRow> RunSetting(const std::string& model_name, int gpus,
                                  bool include_alpa) {
  Workload workload(model_name, gpus);
  std::vector<SystemRow> rows;

  {
    SearchOptions options = DefaultSearchOptions();
    const SearchResult result = AcesoSearch(workload.model(), options);
    SystemRow row;
    row.system = "Aceso";
    row.search_seconds = result.search_seconds;
    if (result.found) {
      // §5.1: evaluate the top-5 configurations and keep the actual best.
      double best = 0.0;
      double best_tflops = 0.0;
      std::string best_plan;
      for (const ScoredConfig& candidate : result.top_configs) {
        const double thr = workload.MeasureThroughput(candidate.config);
        if (thr > best) {
          best = thr;
          best_tflops = workload.last_tflops();
          best_plan = candidate.config.ShortString();
        }
      }
      row.samples_per_sec = best;
      row.tflops = best_tflops;
      row.plan = best_plan;
    }
    rows.push_back(row);
  }

  {
    const BaselineResult result = MegatronGridSearch(workload.model());
    SystemRow row;
    row.system = "Megatron-LM";
    row.search_seconds = result.search_seconds;
    if (result.found) {
      row.samples_per_sec = workload.MeasureThroughput(result.best.config);
      row.tflops = workload.last_tflops();
      row.plan = result.best.config.ShortString();
    }
    rows.push_back(row);
  }

  if (include_alpa) {
    const auto result = AlpaLikeSearch(workload.model());
    SystemRow row;
    row.system = "Alpa";
    if (result.ok() && result->found) {
      row.search_seconds = result->TotalSearchSeconds();
      row.samples_per_sec = workload.MeasureThroughput(result->best.config);
      row.tflops = workload.last_tflops();
      row.plan = result->best.config.ShortString();
    } else {
      row.plan = "search failed: " + result.status().ToString();
    }
    rows.push_back(row);
  }

  return rows;
}

void RunFamily(const std::string& family, const std::string& prefix,
               const std::vector<double>& sizes, bool include_alpa) {
  std::printf("\n--- %s (Figure 7%s) ---\n", family.c_str(),
              include_alpa ? "" : ", Megatron-LM comparison only");
  TablePrinter norm({"setting", "system", "samples/s", "normalized",
                     "TFLOPS/GPU", "plan"});
  for (size_t i = 0; i < sizes.size(); ++i) {
    char size_buf[32];
    std::snprintf(size_buf, sizeof(size_buf), "%g", sizes[i]);
    const std::string model_name = prefix + size_buf + "b";
    const int gpus = models::GpusForSizeIndex(static_cast<int>(i));
    const auto rows = RunSetting(model_name, gpus, include_alpa);
    double best = 0.0;
    for (const SystemRow& row : rows) {
      best = std::max(best, row.samples_per_sec);
    }
    for (const SystemRow& row : rows) {
      norm.AddRow({model_name + " @" + std::to_string(gpus) + "gpu",
                   row.system, FormatDouble(row.samples_per_sec, 1),
                   Normalized(row.samples_per_sec, best),
                   FormatDouble(row.tflops, 2), row.plan});
    }
  }
  norm.Print(std::cout);
}

}  // namespace
}  // namespace bench
}  // namespace aceso

int main() {
  using namespace aceso;
  using namespace aceso::bench;
  PrintHeader("Exp#1: training throughput (Figure 7, Tables 3/4/5)",
              "Aceso finds the fastest configuration in every setting: up to "
              "1.27x over Alpa (GPT-3), 1.33x (Wide-ResNet), 1.50x over "
              "Megatron-LM (T5)");

  RunFamily("GPT-3", "gpt3-", GptSizes(), /*include_alpa=*/true);
  RunFamily("Wide-ResNet", "wresnet-", WrnSizes(), /*include_alpa=*/true);
  RunFamily("T5", "t5-", T5Sizes(), /*include_alpa=*/false);
  return 0;
}
