// The Aceso search driver: Algorithm 1 (iterative bottleneck alleviation)
// over Algorithm 2 (multi-hop primitive search), with the paper's search
// optimizations (§4.3): parallel search across pipeline-stage counts,
// configuration-semantic deduplication, primitive combinations, and the
// op-level fine-tuning pass after each improvement.
//
// The search is *anytime*: it improves a best-so-far configuration until the
// time budget expires or no reconfiguration helps (convergence), exactly as
// the paper describes.

#ifndef SRC_CORE_SEARCH_H_
#define SRC_CORE_SEARCH_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/config/parallel_config.h"
#include "src/core/frontier.h"
#include "src/cost/perf_model.h"
#include "src/obs/telemetry.h"

namespace aceso {

enum class InitialConfigKind {
  kBalanced,       // default: even op/device split (§5.1)
  kOpImbalanced,   // Exp#7 "imbalance-op"
  kGpuImbalanced,  // Exp#7 "imbalance-GPU"
};

// How the initial configuration is produced (DESIGN.md §13, §17).
// kHeuristic is the paper's even split shaped by InitialConfigKind; kDp runs
// the PaSE-style dynamic program (src/core/dp_seeder.h) over the compressed
// repeated-layer structure and starts the iterative search from its
// solution. DP seeding intentionally changes the search trajectory; its
// model evaluations are charged to SearchStats::configs_explored. kConfig
// starts from a caller-provided configuration (SearchOptions::seed_config,
// e.g. an adapted cached neighbor plan, src/core/seed_adapt.h); the stage
// count whose search matches the seed's starts from it, every other stage
// count (and an absent/invalid seed) falls back to the heuristic start.
enum class SeedMode {
  kHeuristic,
  kDp,
  kConfig,
};

struct SearchOptions {
  // Wall-clock budget shared by all stage-count searches (paper: 200 s).
  double time_budget_seconds = 2.0;

  // Deterministic budget: stop a stage-count search once its
  // SearchStats::configs_explored reaches this many evaluations (0 = no
  // limit; the wall-clock budget still applies). Unlike the anytime
  // wall-clock budget, a pure evaluation budget makes a fixed-seed search
  // bit-reproducible across machines — tests and benchmarks use it to pin
  // down exact search trajectories. Applies per stage count.
  int64_t max_evaluations = 0;

  // MaxHops of the multi-hop search (paper default: 7).
  int max_hops = 7;

  // Disable to replace Heuristic-2's ordering with random exploration
  // (Exp#5's "w/o heuristic-2" baseline).
  bool use_heuristic2 = true;

  // Run the §4.2 op-level fine-tuning pass after each improvement.
  bool enable_finetune = true;

  // §4.3 ablation toggles (all on by default, as in the paper's system):
  // configuration-semantic deduplication, and attaching the recompute
  // fix-up to every primitive application.
  bool enable_dedup = true;
  bool enable_recompute_attachment = true;

  // Include this repository's extension primitives (inc-zero/dec-zero,
  // ZeRO-style optimizer sharding) in the search space. Off by default to
  // keep the paper's exact Table-1 space.
  bool enable_zero_primitives = false;

  // Keep the k best distinct feasible configurations (§5.1 evaluates the
  // top 5 in the runtime and keeps the winner).
  int top_k = 5;

  uint64_t seed = 20240422;

  // Pipeline stage counts to search (inclusive); max_stages == 0 picks
  // min(#GPUs, #ops, 12) automatically.
  int min_stages = 1;
  int max_stages = 0;

  // Worker threads for the parallel stage-count search; 0 = one per stage
  // count (capped at hardware concurrency).
  int num_threads = 0;

  // ---- Intra-search parallel candidate evaluation (DESIGN.md §11) ----
  // Evaluation threads for one hop's candidate group: the group is built
  // and deduplicated serially, its surviving candidates are evaluated
  // concurrently on a work-stealing pool, and the results are reduced
  // serially in generation order — so the search trajectory (visit order,
  // stats, telemetry event stream, final result) is bit-identical for every
  // value of eval_threads. 1 (default) keeps the fully serial path.
  int eval_threads = 1;

  // Candidate groups with fewer surviving (post-dedup) candidates than this
  // are evaluated serially even when eval_threads > 1: the fan-out/join
  // overhead outweighs the win on tiny groups.
  int parallel_eval_threshold = 4;

  // Batched SoA evaluation of candidate groups (src/cost/batch_eval.h):
  // groups of >= 2 surviving candidates are scored lane-parallel so stages
  // the siblings share are resolved once and broadcast. Bit-identical to
  // per-candidate Evaluate() at every eval_threads setting; disable only to
  // A/B the scalar path (bench/tests).
  bool batch_eval = true;

  // The pool evaluation batches run on (not owned; must be safe for nested
  // submission, i.e. aceso::ThreadPool). Null with eval_threads > 1 makes
  // AcesoSearch / AcesoSearchForStages create one: AcesoSearch sizes a
  // single shared pool max(num_threads, eval_threads) so idle stage-count
  // workers drain their siblings' evaluation batches — the §4.3 fan-out
  // otherwise leaves them parked whenever stage counts < cores or during
  // the ragged last wave.
  ThreadPool* eval_pool = nullptr;

  // How many bottleneck stages to try per iteration before giving up
  // (§3.2.3 secondary-bottleneck exploration).
  int max_bottlenecks_per_iteration = 4;

  // ---- Throughput–memory Pareto frontier (DESIGN.md §15) ----
  // Maintain a FrontierArchive over every candidate the search reduces
  // (feasible and infeasible): one pass then answers "best config under any
  // memory budget" via SearchResult::frontier. Offers happen only in the
  // serial reduction, so the archive — like the rest of the trajectory — is
  // bit-identical at every eval_threads. Off by default: tracking is cheap
  // (a dominance probe per evaluated candidate) but not free.
  bool track_frontier = false;

  // Per-device memory budget the search judges feasibility against, in
  // bytes; 0 uses the modelled device capacity (GpuSpec::memory_bytes).
  // A positive budget re-verdicts every evaluation (and the fine-tune and
  // DP-seed passes) without touching the performance model: timings are
  // hardware truth, feasibility is policy. This is how exp13's fixed-budget
  // searches and the daemon's budget-constrained requests share one model
  // and one profile database.
  int64_t memory_budget_bytes = 0;

  InitialConfigKind initial_config = InitialConfigKind::kBalanced;

  // Seed of the iterative search (see SeedMode). With kDp, the DP seeder's
  // failure (e.g. no memory-feasible DP solution) falls back to the
  // heuristic seed so the search never aborts.
  SeedMode seed_mode = SeedMode::kHeuristic;

  // The starting configuration for SeedMode::kConfig (ignored otherwise):
  // typically a cached neighbor's plan adapted to this model and cluster
  // (src/core/seed_adapt.h). Shared, immutable — many searches may hold the
  // same seed. Must Validate against the searched model/cluster to take
  // effect; an invalid or stage-count-mismatched seed falls back to the
  // heuristic start. Semantic: the seed changes the trajectory, so its
  // structural fingerprint feeds SearchOptionsSemanticHash.
  std::shared_ptr<const ParallelConfig> seed_config;

  // Optional structured-telemetry sink (not owned; may outlive many
  // searches and be shared between concurrent ones). Null disables all
  // instrumentation: the search caches this pointer and pays exactly one
  // branch on it per instrumentation point, keeping the disabled hot path
  // unaffected. Event schema: DESIGN.md §10.
  TelemetrySink* telemetry = nullptr;
};

// A configuration with its evaluation. The search computes the semantic
// hash once per candidate (for §4.3 deduplication) and carries it here so
// top-k bookkeeping never re-hashes the config.
struct ScoredConfig {
  ParallelConfig config;
  PerfResult perf;
  uint64_t semantic_hash = 0;
};

// One point of a convergence trend (Exp#5/6/7 figures).
struct ConvergencePoint {
  double elapsed_seconds = 0.0;
  double best_iteration_time = 0.0;
  // Model evaluations charged to this search when the point was recorded
  // (SearchStats::configs_explored at the time) — the deterministic x-axis
  // of the Exp#7 seeding comparison, immune to wall-clock noise.
  int64_t evaluations = 0;
  // False while the best-so-far is still infeasible (OOM):
  // best_iteration_time is then the model's estimate for an over-memory
  // configuration, not an achievable time, and must stay out of feasible
  // running-min curves. Merged results (AcesoSearch) contain only feasible
  // points; per-stage-count results keep infeasible points flagged so
  // callers can render the pre-feasibility phase.
  bool feasible = true;
};

struct SearchStats {
  int64_t iterations = 0;       // Algorithm 1 loop executions
  int64_t improvements = 0;     // iterations that found a better config
  // Every configuration evaluation the search performed on its own behalf:
  // the initial configuration, every generated candidate, and every
  // fine-tuning trial. (Scratch evaluations inside FixRecompute — the §4.3
  // attachment and the inc-rc/dec-rc fit/relax constructions — are
  // bookkeeping of candidate *construction*, not exploration, and are not
  // counted.)
  int64_t configs_explored = 0;

  // Frontier-archive activity (options.track_frontier): candidates offered
  // to / admitted by the per-worker archives during the search itself.
  // Merged results sum them across stage counts, so they describe the whole
  // search even though the merged archive's own FrontierStats only describe
  // the merge.
  int64_t frontier_offered = 0;
  int64_t frontier_admitted = 0;

  // Stage-cost cache activity attributed to this search run (delta of the
  // shared cache's counters over the run; see PerformanceModel::stage_cache).
  int64_t cache_hits = 0;
  int64_t cache_misses = 0;
  int64_t cache_evictions = 0;

  // Per improvement: 1-based index of the bottleneck that yielded it
  // (Fig. 11a) and the number of hops of the successful chain (Fig. 11b).
  std::vector<int> bottleneck_attempts;
  std::vector<int> hops_used;

  void Merge(const SearchStats& other);
};

struct SearchResult {
  bool found = false;
  ScoredConfig best;
  std::vector<ScoredConfig> top_configs;  // best first
  SearchStats stats;
  std::vector<ConvergencePoint> convergence;  // running best over time
  double search_seconds = 0.0;

  // The throughput–memory Pareto set over every reduced candidate
  // (options.track_frontier; empty otherwise). AcesoSearch merges the
  // per-stage-count archives in stage-count order, deterministically.
  FrontierArchive frontier;
};

// Semantic hash of the *answer-determining* SearchOptions fields: budgets
// (wall-clock and evaluation), hop limit, heuristic/fine-tune/dedup/ZeRO
// toggles, top_k, seed, stage range, bottleneck limit, initial-config kind,
// seed mode, frontier tracking, and the memory budget (track_frontier adds
// the frontier payload to the answer; memory_budget_bytes changes every
// feasibility verdict). Execution-shape fields are deliberately excluded —
// eval_threads / parallel_eval_threshold / batch_eval / eval_pool are
// bit-identity-guaranteed no-ops on the trajectory (DESIGN.md §11/§13),
// num_threads only changes which thread runs which stage count, and
// telemetry is pure observation. This is the SearchOptions component of the
// serving plan-cache key (DESIGN.md §14): two requests that can only
// produce the same plan must hash equal, and any field that can change the
// plan must be included here when added.
uint64_t SearchOptionsSemanticHash(const SearchOptions& options);

// Runs the full search: initial configurations for every stage count in
// range, searched in parallel under one shared budget.
SearchResult AcesoSearch(const PerformanceModel& model,
                         const SearchOptions& options);

// Runs the search for one fixed pipeline stage count (used by the ablation
// benches and tests).
SearchResult AcesoSearchForStages(const PerformanceModel& model,
                                  const SearchOptions& options,
                                  int num_stages);

}  // namespace aceso

#endif  // SRC_CORE_SEARCH_H_
