// Minimal leveled logging for library and tool code.
//
// Usage:
//   ACESO_LOG(INFO) << "search converged after " << iters << " iterations";
//   ACESO_CHECK(config.stages() > 0) << "empty configuration";
//
// The log level is process-global and settable via SetLogLevel() or the
// ACESO_LOG_LEVEL environment variable (DEBUG/INFO/WARNING/ERROR/OFF).

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace aceso {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Sets/gets the process-global minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// Accumulates one log line and emits it (with level/file/line prefix) on
// destruction. If `fatal` is set, the process aborts after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  bool fatal_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the log level filters a message out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal

#define ACESO_LOG_DEBUG ::aceso::LogLevel::kDebug
#define ACESO_LOG_INFO ::aceso::LogLevel::kInfo
#define ACESO_LOG_WARNING ::aceso::LogLevel::kWarning
#define ACESO_LOG_ERROR ::aceso::LogLevel::kError

#define ACESO_LOG(severity)                                          \
  if (ACESO_LOG_##severity < ::aceso::GetLogLevel()) {               \
  } else                                                             \
    ::aceso::internal::LogMessage(ACESO_LOG_##severity, __FILE__, __LINE__)

// Always-on invariant check; aborts with a message when violated.
#define ACESO_CHECK(cond)                                                     \
  if (cond) {                                                                 \
  } else                                                                      \
    ::aceso::internal::LogMessage(::aceso::LogLevel::kError, __FILE__,        \
                                  __LINE__, /*fatal=*/true)                   \
        << "Check failed: " #cond " "

#define ACESO_CHECK_GE(a, b) ACESO_CHECK((a) >= (b))
#define ACESO_CHECK_GT(a, b) ACESO_CHECK((a) > (b))
#define ACESO_CHECK_LE(a, b) ACESO_CHECK((a) <= (b))
#define ACESO_CHECK_LT(a, b) ACESO_CHECK((a) < (b))
#define ACESO_CHECK_EQ(a, b) ACESO_CHECK((a) == (b))
#define ACESO_CHECK_NE(a, b) ACESO_CHECK((a) != (b))

}  // namespace aceso

#endif  // SRC_COMMON_LOGGING_H_
