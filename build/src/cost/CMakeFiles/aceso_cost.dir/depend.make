# Empty dependencies file for aceso_cost.
# This may be replaced when dependencies are built.
