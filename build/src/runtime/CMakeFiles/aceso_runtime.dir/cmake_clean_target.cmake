file(REMOVE_RECURSE
  "libaceso_runtime.a"
)
