file(REMOVE_RECURSE
  "CMakeFiles/aceso_ir.dir/model_builder.cc.o"
  "CMakeFiles/aceso_ir.dir/model_builder.cc.o.d"
  "CMakeFiles/aceso_ir.dir/models/model_zoo.cc.o"
  "CMakeFiles/aceso_ir.dir/models/model_zoo.cc.o.d"
  "CMakeFiles/aceso_ir.dir/models/synthetic.cc.o"
  "CMakeFiles/aceso_ir.dir/models/synthetic.cc.o.d"
  "CMakeFiles/aceso_ir.dir/op_graph.cc.o"
  "CMakeFiles/aceso_ir.dir/op_graph.cc.o.d"
  "CMakeFiles/aceso_ir.dir/operator.cc.o"
  "CMakeFiles/aceso_ir.dir/operator.cc.o.d"
  "CMakeFiles/aceso_ir.dir/tensor_shape.cc.o"
  "CMakeFiles/aceso_ir.dir/tensor_shape.cc.o.d"
  "libaceso_ir.a"
  "libaceso_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aceso_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
