// aceso_search: command-line configuration search.
//
//   aceso_search --model gpt3-1.3b --gpus 8 [--budget 5] [--max-hops 7]
//                [--out config.txt] [--seed 42] [--stages N]
//
// Prints the searched configuration and its predicted performance;
// optionally writes it to a file loadable by aceso_plan / LoadConfigFromFile.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/aceso.h"

namespace {

struct Args {
  std::string model = "gpt3-1.3b";
  int gpus = 8;
  double budget = 2.0;
  int max_hops = 7;
  int stages = 0;  // 0 = search all stage counts
  uint64_t seed = 20240422;
  std::string out;
};

void PrintUsage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--model NAME] [--gpus N] [--budget SECONDS] "
      "[--max-hops N] [--stages N] [--seed N] [--out FILE]\n"
      "models: gpt3-{0.35,1.3,2.6,6.7,13}b  t5-{0.77,3,6,11,22}b\n"
      "        wresnet-{0.5,2,4,6.8,13}b  deepnet-<layers>\n",
      argv0);
}

bool ParseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--model") {
      const char* v = next();
      if (v == nullptr) return false;
      args.model = v;
    } else if (flag == "--gpus") {
      const char* v = next();
      if (v == nullptr) return false;
      args.gpus = std::atoi(v);
    } else if (flag == "--budget") {
      const char* v = next();
      if (v == nullptr) return false;
      args.budget = std::atof(v);
    } else if (flag == "--max-hops") {
      const char* v = next();
      if (v == nullptr) return false;
      args.max_hops = std::atoi(v);
    } else if (flag == "--stages") {
      const char* v = next();
      if (v == nullptr) return false;
      args.stages = std::atoi(v);
    } else if (flag == "--seed") {
      const char* v = next();
      if (v == nullptr) return false;
      args.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args.out = v;
    } else {
      return false;
    }
  }
  return args.gpus > 0 && args.budget > 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aceso;
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    PrintUsage(argv[0]);
    return 2;
  }

  auto graph = models::BuildByName(args.model);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(args.gpus);
  ProfileDatabase db(cluster);
  PerformanceModel model(&*graph, cluster, &db);

  std::printf("%s on %s, budget %.1fs\n", graph->Summary().c_str(),
              cluster.ToString().c_str(), args.budget);

  SearchOptions options;
  options.time_budget_seconds = args.budget;
  options.max_hops = args.max_hops;
  options.seed = args.seed;
  const SearchResult result =
      args.stages > 0 ? AcesoSearchForStages(model, options, args.stages)
                      : AcesoSearch(model, options);
  if (!result.found) {
    std::fprintf(stderr, "no feasible configuration found\n");
    return 1;
  }

  std::printf("\n%s\n", result.best.config.ToString(*graph).c_str());
  std::printf("predicted: %s\n", result.best.perf.Summary().c_str());
  std::printf("search: %.2fs, %lld configs explored, %lld improvements\n",
              result.search_seconds,
              static_cast<long long>(result.stats.configs_explored),
              static_cast<long long>(result.stats.improvements));
  const long long lookups = static_cast<long long>(result.stats.cache_hits +
                                                   result.stats.cache_misses);
  if (lookups > 0) {
    std::printf("stage cache: %.1f%% hits (%lld/%lld lookups, %lld evictions)\n",
                100.0 * static_cast<double>(result.stats.cache_hits) /
                    static_cast<double>(lookups),
                static_cast<long long>(result.stats.cache_hits), lookups,
                static_cast<long long>(result.stats.cache_evictions));
  }

  if (!args.out.empty()) {
    const Status status =
        SaveConfigToFile(args.out, result.best.config, graph->name());
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("saved to %s\n", args.out.c_str());
  }
  return 0;
}
