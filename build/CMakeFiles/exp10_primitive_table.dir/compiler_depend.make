# Empty compiler generated dependencies file for exp10_primitive_table.
# This may be replaced when dependencies are built.
