// Structured search telemetry (the observability layer of DESIGN.md §10).
//
// The search loop is the product: the paper's evaluation (Figures 9–14) is a
// set of questions *about the search* — what bottleneck was attacked, which
// primitive won, how many hops it took, how candidates were spent. This
// module gives those questions a stable substrate:
//
//   * TelemetryEvent — an ordered, typed key→value record serialized as one
//     JSON line (the schema per event type is documented in DESIGN.md §10);
//   * TelemetrySink — a thread-safe sink that appends events to a JSONL file
//     and/or an in-memory ring, plus a counters/timers registry;
//   * the search attaches a sink through SearchOptions::telemetry.
//
// Cost contract: a null sink disables everything. Instrumented code caches
// the sink pointer and guards each instrumentation point with one branch on
// it, so the disabled path stays within noise of the uninstrumented build
// (pinned by micro_search's BM_SearchIterationBudget100ms vs ...Telemetry).

#ifndef SRC_OBS_TELEMETRY_H_
#define SRC_OBS_TELEMETRY_H_

#include <cstdint>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace aceso {

// One telemetry record: a named type plus ordered typed fields. Built with
// chained setters at the emission site; consumers (trace export, benches,
// tests) read fields back through the typed getters.
class TelemetryEvent {
 public:
  TelemetryEvent() = default;
  explicit TelemetryEvent(std::string type) : type_(std::move(type)) {}

  TelemetryEvent& Str(std::string key, std::string value);
  TelemetryEvent& Int(std::string key, int64_t value);
  TelemetryEvent& Dbl(std::string key, double value);
  TelemetryEvent& Bool(std::string key, bool value);

  const std::string& type() const { return type_; }

  // Typed lookups; nullopt / nullptr when the key is absent or of another
  // type (GetInt additionally accepts bool fields as 0/1).
  std::optional<int64_t> GetInt(std::string_view key) const;
  std::optional<double> GetDbl(std::string_view key) const;
  std::optional<bool> GetBool(std::string_view key) const;
  const std::string* GetStr(std::string_view key) const;

  // One JSON object on a single line: {"type":"...",...}, keys in insertion
  // order, all strings escaped. Always valid JSON (non-finite doubles emit
  // null).
  std::string ToJsonLine() const;

  // ToJsonLine() with the named keys omitted — used to compare event
  // streams while ignoring wall-clock fields ("t", "dur").
  std::string ToJsonLineExcluding(const std::vector<std::string>& keys) const;

 private:
  enum class Kind { kStr, kInt, kDbl, kBool };
  struct Field {
    std::string key;
    Kind kind = Kind::kStr;
    std::string s;
    int64_t i = 0;
    double d = 0.0;
    bool b = false;
  };

  const Field* Find(std::string_view key) const;

  std::string type_;
  std::vector<Field> fields_;
};

struct TelemetryOptions {
  // When non-empty, every event is appended to this file as one JSON line.
  // The file never drops events; write errors latch into status().
  std::string jsonl_path;

  // In-memory ring: the most recent `ring_capacity` events are kept for
  // in-process consumers (trace export, benches). 0 disables the ring.
  // Oldest events are dropped past capacity (counted in events_dropped()).
  size_t ring_capacity = 65536;
};

// Thread-safe event sink + counters/timers registry. Emission takes one
// mutex; instrumented code batches per-candidate facts locally and emits
// once per search iteration, so the lock is not on any per-candidate path.
class TelemetrySink {
 public:
  TelemetrySink() : TelemetrySink(TelemetryOptions{}) {}
  explicit TelemetrySink(TelemetryOptions options);
  ~TelemetrySink();

  TelemetrySink(const TelemetrySink&) = delete;
  TelemetrySink& operator=(const TelemetrySink&) = delete;

  // First file error, if any (open or write failure).
  Status status() const;

  void Emit(TelemetryEvent event);

  // Snapshot of the ring in emission order.
  std::vector<TelemetryEvent> Events() const;

  size_t events_emitted() const;
  size_t events_dropped() const;  // ring overflow only; JSONL never drops

  // Monotonic named counters (e.g. "search.candidates_generated").
  void IncrCounter(std::string_view name, int64_t delta = 1);
  int64_t counter(std::string_view name) const;  // 0 when never incremented
  std::map<std::string, int64_t> Counters() const;

  // Emits one "counter_snapshot" event carrying every counter's current
  // value as an Int field keyed by its name (alphabetical). For *tools* at
  // end of run — cache hit rates etc. are thread-timing dependent, so
  // library code must never emit counter values into the event stream
  // (the stream is pinned bit-identical across eval_threads, DESIGN.md §11).
  void EmitCounterSnapshot();

  // Named duration accumulators (e.g. "search.worker_seconds").
  struct TimerStat {
    int64_t count = 0;
    double total_seconds = 0.0;
    double max_seconds = 0.0;
  };
  void RecordTimer(std::string_view name, double seconds);
  std::map<std::string, TimerStat> Timers() const;

  // Flushes the JSONL stream (a no-op without a file).
  Status Flush();

 private:
  mutable std::mutex mu_;
  TelemetryOptions options_;
  std::ofstream out_;
  bool file_open_ = false;
  Status status_;
  std::deque<TelemetryEvent> ring_;
  size_t emitted_ = 0;
  size_t dropped_ = 0;
  std::map<std::string, int64_t, std::less<>> counters_;
  std::map<std::string, TimerStat, std::less<>> timers_;
};

}  // namespace aceso

#endif  // SRC_OBS_TELEMETRY_H_
