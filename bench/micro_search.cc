// Micro-benchmark: search building blocks — candidate generation per
// primitive, one full search iteration, and fine-tuning.

#include <benchmark/benchmark.h>

#include "src/aceso.h"

namespace aceso {
namespace {

struct Fixture {
  Fixture()
      : graph(models::Gpt3(1.3)),
        cluster(ClusterSpec::WithGpuCount(8)),
        db(cluster),
        model(&graph, cluster, &db),
        config(*MakeEvenConfig(graph, cluster, 4, 4)),
        perf(model.Evaluate(config)) {}
  OpGraph graph;
  ClusterSpec cluster;
  ProfileDatabase db;
  PerformanceModel model;
  ParallelConfig config;
  PerfResult perf;
};

void BM_GenerateCandidates(benchmark::State& state) {
  Fixture f;
  const auto kind = static_cast<PrimitiveKind>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        GeneratePrimitiveCandidates(f.model, f.config, f.perf, kind, 1));
  }
  state.SetLabel(PrimitiveName(kind));
}
BENCHMARK(BM_GenerateCandidates)->DenseRange(0, kNumPrimitives - 1);

void BM_OrderedBottlenecks(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(OrderedBottlenecks(f.perf));
  }
}
BENCHMARK(BM_OrderedBottlenecks);

void BM_FineTunePass(benchmark::State& state) {
  Fixture f;
  for (auto _ : state) {
    ParallelConfig config = f.config;
    const TimeBudget budget(60.0);
    benchmark::DoNotOptimize(FineTune(f.model, config, f.perf, budget));
  }
}
BENCHMARK(BM_FineTunePass);

void BM_SearchIterationBudget100ms(benchmark::State& state) {
  // End-to-end anytime search slices: how much improvement per 100 ms.
  Fixture f;
  for (auto _ : state) {
    SearchOptions options;
    options.time_budget_seconds = 0.1;
    benchmark::DoNotOptimize(AcesoSearchForStages(f.model, options, 4));
  }
}
BENCHMARK(BM_SearchIterationBudget100ms)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace aceso

BENCHMARK_MAIN();
