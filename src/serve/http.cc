#include "src/serve/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>

namespace aceso {
namespace serve {
namespace {

// Request-side limits: a plan request is a small JSON object; anything
// approaching these is a confused or hostile client.
constexpr size_t kMaxHeaderBytes = 64 * 1024;
constexpr size_t kMaxBodyBytes = 8 * 1024 * 1024;
constexpr double kConnectionIoTimeoutSeconds = 30.0;

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

void SetIoTimeout(int fd, double seconds) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

// send() with MSG_NOSIGNAL so a vanished client surfaces as an error return
// instead of SIGPIPE. The single send path for both sides of the protocol
// (server responses and client requests): short writes continue from the
// unsent offset and EINTR retries, so a signal mid-response never truncates
// a payload.
bool SendAllFd(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

// Parses "<METHOD> <path> HTTP/1.x" plus headers out of `head`.
bool ParseRequestHead(std::string_view head, HttpRequest* out) {
  const size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) {
    return false;
  }
  const std::string_view request_line = head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) {
    return false;
  }
  out->method = std::string(request_line.substr(0, sp1));
  out->path = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  if (request_line.substr(sp2 + 1).rfind("HTTP/1.", 0) != 0) {
    return false;
  }

  size_t pos = line_end + 2;
  while (pos < head.size()) {
    const size_t eol = head.find("\r\n", pos);
    const std::string_view line =
        head.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    if (line.empty()) {
      break;
    }
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return false;
    }
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    out->headers.emplace_back(std::string(line.substr(0, colon)),
                              std::string(value));
    if (eol == std::string_view::npos) {
      break;
    }
    pos = eol + 2;
  }
  return true;
}

int ConnectTo(const std::string& host, int port, double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  SetIoTimeout(fd, timeout_seconds);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

std::string BuildRequestHead(const std::string& method,
                             const std::string& path, const std::string& host,
                             size_t body_size) {
  std::string req = method + " " + path + " HTTP/1.1\r\n";
  req += "Host: " + host + "\r\n";
  req += "Content-Type: application/json\r\n";
  req += "Content-Length: " + std::to_string(body_size) + "\r\n";
  req += "Connection: close\r\n\r\n";
  return req;
}

// Reads an HTTP response to EOF, invoking `on_body` with each chunk of body
// bytes as they arrive. Fills status/content-type from the head.
Status ReadResponse(int fd, HttpResponse* out,
                    const std::function<void(std::string_view)>& on_body) {
  std::string buf;
  char chunk[8192];
  size_t head_end = std::string::npos;
  size_t body_emitted = 0;
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return DeadlineExceeded("timed out reading HTTP response");
    }
    if (n == 0) {
      break;
    }
    buf.append(chunk, static_cast<size_t>(n));
    if (head_end == std::string::npos) {
      head_end = buf.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        // Parse the status line + headers once.
        const std::string_view head = std::string_view(buf).substr(0, head_end);
        const size_t sp = head.find(' ');
        if (sp == std::string_view::npos ||
            head.rfind("HTTP/1.", 0) != 0) {
          return Internal("malformed HTTP status line");
        }
        out->status_code = std::atoi(std::string(head.substr(sp + 1, 3)).c_str());
        size_t pos = head.find("\r\n");
        while (pos != std::string_view::npos && pos + 2 < head.size()) {
          const size_t eol = head.find("\r\n", pos + 2);
          const std::string_view line = head.substr(
              pos + 2,
              eol == std::string_view::npos ? std::string_view::npos
                                            : eol - pos - 2);
          const size_t colon = line.find(':');
          if (colon != std::string_view::npos &&
              EqualsIgnoreCase(line.substr(0, colon), "content-type")) {
            std::string_view v = line.substr(colon + 1);
            while (!v.empty() && v.front() == ' ') {
              v.remove_prefix(1);
            }
            out->content_type = std::string(v);
          }
          pos = eol;
        }
        body_emitted = head_end + 4;
      }
    }
    if (head_end != std::string::npos && buf.size() > body_emitted) {
      on_body(std::string_view(buf).substr(body_emitted));
      body_emitted = buf.size();
    }
  }
  if (head_end == std::string::npos) {
    return Internal("connection closed before HTTP response head");
  }
  return OkStatus();
}

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) {
      return &value;
    }
  }
  return nullptr;
}

const char* HttpStatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 412: return "Precondition Failed";
    case 429: return "Too Many Requests";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

bool HttpResponseWriter::SendAll(std::string_view data) {
  if (broken_) {
    return false;
  }
  if (!SendAllFd(fd_, data)) {
    broken_ = true;
    return false;
  }
  return true;
}

void HttpResponseWriter::Respond(int status, std::string_view content_type,
                                 std::string_view body) {
  if (responded_) {
    return;
  }
  responded_ = true;
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     HttpStatusText(status) + "\r\n";
  head += "Content-Type: " + std::string(content_type) + "\r\n";
  head += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  head += "Connection: close\r\n\r\n";
  SendAll(head) && SendAll(body);
}

bool HttpResponseWriter::BeginStream(int status,
                                     std::string_view content_type) {
  if (responded_) {
    return false;
  }
  responded_ = true;
  streaming_ = true;
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     HttpStatusText(status) + "\r\n";
  head += "Content-Type: " + std::string(content_type) + "\r\n";
  head += "Connection: close\r\n\r\n";
  return SendAll(head);
}

bool HttpResponseWriter::WriteChunk(std::string_view data) {
  if (!streaming_) {
    return false;
  }
  return SendAll(data);
}

HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(const std::string& host, int port,
                         HttpHandler handler) {
  if (listen_fd_ >= 0) {
    return FailedPrecondition("HTTP server already started");
  }
  handler_ = std::move(handler);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Internal("socket() failed: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgument("bad listen address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Internal("bind(" + host + ":" + std::to_string(port) +
                               ") failed: " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 64) != 0) {
    const Status st =
        Internal("listen() failed: " + std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return Internal("getsockname() failed");
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return OkStatus();
}

void HttpServer::Stop() {
  if (listen_fd_ < 0) {
    return;
  }
  stopping_.store(true, std::memory_order_relaxed);
  // Closing the listener unblocks accept(); the loop then exits.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  // Wait for in-flight connection threads: handlers reference this server's
  // state, so Stop must not return while any are running.
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return active_connections_ == 0; });
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      break;  // listener closed (Stop) or fatal
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++active_connections_;
    }
    std::thread([this, fd] {
      HandleConnection(fd);
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_connections_ == 0) {
        idle_.notify_all();
      }
    }).detach();
  }
}

void HttpServer::HandleConnection(int fd) {
  SetIoTimeout(fd, kConnectionIoTimeoutSeconds);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string buf;
  char chunk[8192];
  size_t head_end = std::string::npos;
  bool ok = true;
  while (head_end == std::string::npos) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      ok = false;
      break;
    }
    buf.append(chunk, static_cast<size_t>(n));
    head_end = buf.find("\r\n\r\n");
    if (head_end == std::string::npos && buf.size() > kMaxHeaderBytes) {
      ok = false;
      break;
    }
  }

  HttpRequest request;
  HttpResponseWriter writer(fd);
  if (ok && !ParseRequestHead(std::string_view(buf).substr(0, head_end),
                              &request)) {
    ok = false;
  }
  if (ok) {
    size_t body_size = 0;
    if (const std::string* cl = request.FindHeader("content-length")) {
      // Strict digit-only parse. strtoull would accept leading whitespace
      // and a sign, and *wraps* on overflow — a 20-digit value could wrap to
      // a small body size and desynchronize the framing. Reject the value as
      // soon as the accumulator exceeds the body cap instead.
      ok = !cl->empty();
      for (const char c : *cl) {
        if (c < '0' || c > '9') {
          ok = false;
          break;
        }
        body_size = body_size * 10 + static_cast<size_t>(c - '0');
        if (body_size > kMaxBodyBytes) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      const size_t body_start = head_end + 4;
      while (buf.size() - body_start < body_size) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) {
          if (n < 0 && errno == EINTR) {
            continue;
          }
          ok = false;
          break;
        }
        buf.append(chunk, static_cast<size_t>(n));
      }
      if (ok) {
        request.body = buf.substr(body_start, body_size);
      }
    }
  }

  if (!ok) {
    writer.Respond(400, "application/json",
                   "{\"status\":\"error\",\"code\":\"INVALID_ARGUMENT\","
                   "\"message\":\"malformed HTTP request\"}");
  } else {
    handler_(request, writer);
    if (!writer.responded()) {
      writer.Respond(500, "application/json",
                     "{\"status\":\"error\",\"code\":\"INTERNAL\","
                     "\"message\":\"handler produced no response\"}");
    }
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

StatusOr<HttpResponse> HttpCall(const std::string& host, int port,
                                const std::string& method,
                                const std::string& path,
                                const std::string& body,
                                double timeout_seconds) {
  const int fd = ConnectTo(host, port, timeout_seconds);
  if (fd < 0) {
    return Internal("cannot connect to " + host + ":" + std::to_string(port));
  }
  HttpResponse response;
  Status st;
  if (!SendAllFd(fd, BuildRequestHead(method, path, host, body.size())) ||
      !SendAllFd(fd, body)) {
    st = Internal("failed to send HTTP request");
  } else {
    st = ReadResponse(fd, &response, [&response](std::string_view bytes) {
      response.body.append(bytes.data(), bytes.size());
    });
  }
  ::close(fd);
  if (!st.ok()) {
    return st;
  }
  return response;
}

StatusOr<HttpResponse> HttpCallStreaming(
    const std::string& host, int port, const std::string& method,
    const std::string& path, const std::string& body,
    const std::function<void(std::string_view line)>& on_line,
    double timeout_seconds) {
  const int fd = ConnectTo(host, port, timeout_seconds);
  if (fd < 0) {
    return Internal("cannot connect to " + host + ":" + std::to_string(port));
  }
  HttpResponse response;
  std::string pending;
  Status st;
  if (!SendAllFd(fd, BuildRequestHead(method, path, host, body.size())) ||
      !SendAllFd(fd, body)) {
    st = Internal("failed to send HTTP request");
  } else {
    st = ReadResponse(fd, &response, [&](std::string_view bytes) {
      pending.append(bytes.data(), bytes.size());
      size_t start = 0;
      while (true) {
        const size_t nl = pending.find('\n', start);
        if (nl == std::string::npos) {
          break;
        }
        on_line(std::string_view(pending).substr(start, nl - start));
        start = nl + 1;
      }
      pending.erase(0, start);
    });
  }
  ::close(fd);
  if (!st.ok()) {
    return st;
  }
  if (!pending.empty()) {
    on_line(pending);  // unterminated final line
  }
  return response;
}

}  // namespace serve
}  // namespace aceso
