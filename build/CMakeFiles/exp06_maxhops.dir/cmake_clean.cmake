file(REMOVE_RECURSE
  "CMakeFiles/exp06_maxhops.dir/bench/bench_util.cc.o"
  "CMakeFiles/exp06_maxhops.dir/bench/bench_util.cc.o.d"
  "CMakeFiles/exp06_maxhops.dir/bench/exp06_maxhops.cc.o"
  "CMakeFiles/exp06_maxhops.dir/bench/exp06_maxhops.cc.o.d"
  "bench/exp06_maxhops"
  "bench/exp06_maxhops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp06_maxhops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
