#include "src/ir/operator.h"

#include <gtest/gtest.h>

namespace aceso {
namespace {

Operator MakeOp() {
  Operator op;
  op.name = "fc";
  op.kind = OpKind::kMlpFc1;
  op.fwd_flops = 1e9;
  op.param_bytes = 1024;
  op.in_bytes = 64;
  op.out_bytes = 128;
  op.max_tp = 8;
  op.tp_class = TpClass::kPartitioned;
  return op;
}

TEST(OperatorTest, SignatureStableUnderRename) {
  Operator a = MakeOp();
  Operator b = MakeOp();
  b.name = "different";
  EXPECT_EQ(a.Signature(), b.Signature());
}

TEST(OperatorTest, SignatureChangesWithCostFields) {
  const Operator base = MakeOp();
  Operator flops = base;
  flops.fwd_flops *= 2;
  EXPECT_NE(base.Signature(), flops.Signature());

  Operator params = base;
  params.param_bytes += 1;
  EXPECT_NE(base.Signature(), params.Signature());

  Operator act = base;
  act.out_bytes += 1;
  EXPECT_NE(base.Signature(), act.Signature());

  Operator cls = base;
  cls.tp_class = TpClass::kReplicated;
  EXPECT_NE(base.Signature(), cls.Signature());
}

TEST(OperatorTest, SignatureIgnoresDefaultDim) {
  // The partition dimension is a configuration choice, not operator
  // identity: profiles are shared across dims.
  Operator a = MakeOp();
  Operator b = MakeOp();
  a.default_tp_dim = TpDim::kColumn;
  b.default_tp_dim = TpDim::kRow;
  EXPECT_EQ(a.Signature(), b.Signature());
}

TEST(OperatorTest, KindNamesDistinct) {
  EXPECT_STRNE(OpKindName(OpKind::kMlpFc1), OpKindName(OpKind::kMlpFc2));
  EXPECT_STREQ(OpKindName(OpKind::kLayerNorm), "layernorm");
  EXPECT_STREQ(OpKindName(OpKind::kConv2d), "conv2d");
}

TEST(OperatorTest, TpDimAndClassNames) {
  EXPECT_STREQ(TpDimName(TpDim::kColumn), "column");
  EXPECT_STREQ(TpDimName(TpDim::kRow), "row");
  EXPECT_STREQ(TpClassName(TpClass::kPartitioned), "partitioned");
  EXPECT_STREQ(TpClassName(TpClass::kShardFollower), "shard_follower");
  EXPECT_STREQ(TpClassName(TpClass::kReplicated), "replicated");
}

}  // namespace
}  // namespace aceso
