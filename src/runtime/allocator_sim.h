// A simulation of a PyTorch-style caching GPU memory allocator (§3.3):
// "When an operator completes its computation, the memory used by that
// operator might not be immediately released. Instead, the allocator may
// retain it to expedite future memory allocations."
//
// The model:
//  * requests round up (512 B below 1 MiB, 2 MiB granularity above);
//  * device memory is claimed as a growing address space ("reserved"); freed
//    blocks go to a free list instead of back to the device;
//  * free blocks split on reuse and coalesce with free neighbours, like the
//    real allocator's segment management;
//  * when a request cannot be served, the allocator releases its cached
//    free space back to the device (PyTorch's empty_cache-on-failure) and
//    retries before reporting OOM.
//
// This reproduces the gap between ideal memory accounting and real framework
// consumption that Aceso's performance model deliberately over-estimates.

#ifndef SRC_RUNTIME_ALLOCATOR_SIM_H_
#define SRC_RUNTIME_ALLOCATOR_SIM_H_

#include <cstdint>
#include <map>
#include <unordered_map>

namespace aceso {

class CachingAllocatorSim {
 public:
  // `capacity` is the device memory; Alloc() beyond it reports OOM.
  explicit CachingAllocatorSim(int64_t capacity);

  // Allocates `bytes`; returns a handle (>= 0), or -1 on OOM (request could
  // not be served even after releasing cached memory).
  int64_t Alloc(int64_t bytes);

  // Frees the block of `handle`, coalescing with free neighbours.
  void Free(int64_t handle);

  // Live allocation total (what the model calls "used" memory).
  int64_t allocated_bytes() const { return allocated_; }
  // Total device memory held (live blocks + cached free space).
  int64_t reserved_bytes() const { return brk_; }
  int64_t peak_allocated() const { return peak_allocated_; }
  int64_t peak_reserved() const { return peak_reserved_; }
  bool oom() const { return oom_; }

  // Rounds a request the way the allocator does (512 B below 1 MiB, 2 MiB
  // granularity above).
  static int64_t RoundSize(int64_t bytes);

 private:
  struct LiveBlock {
    int64_t addr;
    int64_t size;
  };

  // Takes `size` bytes from the free list or by growing the address space;
  // returns the address or -1 when neither is possible.
  int64_t TakeSpace(int64_t size);

  // Releases all cached free space to the device and compacts live blocks
  // (models empty_cache(): unused segments are cudaFree'd).
  void ReleaseCachedMemory();

  void InsertFree(int64_t addr, int64_t size);

  int64_t capacity_;
  int64_t brk_ = 0;  // reserved address-space end
  int64_t allocated_ = 0;
  int64_t peak_allocated_ = 0;
  int64_t peak_reserved_ = 0;
  bool oom_ = false;
  int64_t next_handle_ = 0;

  std::unordered_map<int64_t, LiveBlock> live_;
  std::map<int64_t, int64_t> free_by_addr_;       // addr -> size
  std::multimap<int64_t, int64_t> free_by_size_;  // size -> addr
};

}  // namespace aceso

#endif  // SRC_RUNTIME_ALLOCATOR_SIM_H_
