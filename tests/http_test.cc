// Transport-level tests for the epoll reactor (src/serve/http.h): keep-alive
// framing, the incremental parser state machine (pipelining, byte-boundary
// splits, oversized heads), idle/read timeout eviction, partial-write
// flushes, the shutdown drain, and the keep-alive HttpClient. Everything
// here drives real loopback sockets — no mocks — because the bugs this
// layer can have (framing desync, fd reuse, lost bytes on EAGAIN) only
// exist on real sockets.

#include "src/serve/http.h"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace aceso {
namespace serve {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

// A blocking loopback socket with helpers for raw wire-level poking.
class RawConn {
 public:
  explicit RawConn(int port, double timeout_seconds = 10.0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd_, 0);
    timeval tv{static_cast<time_t>(timeout_seconds),
               static_cast<suseconds_t>(
                   (timeout_seconds - static_cast<time_t>(timeout_seconds)) *
                   1e6)};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    const int one = 1;
    ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
  }
  ~RawConn() { Close(); }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  void Send(std::string_view data) {
    size_t sent = 0;
    while (sent < data.size()) {
      const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  // Reads until `target` complete Content-Length framed responses have
  // arrived; returns the raw bytes.
  std::string ReadResponses(int target) {
    std::string buf;
    char chunk[8192];
    int complete = 0;
    while (complete < target) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        ADD_FAILURE() << "connection closed/timed out after " << complete
                      << "/" << target << " responses; buffered: " << buf;
        return buf;
      }
      buf.append(chunk, static_cast<size_t>(n));
      complete = CountResponses(buf);
    }
    return buf;
  }

  // Reads to EOF (empty return = immediate EOF).
  std::string ReadToEof() {
    std::string buf;
    char chunk[8192];
    ssize_t n;
    while ((n = ::recv(fd_, chunk, sizeof(chunk), 0)) > 0) {
      buf.append(chunk, static_cast<size_t>(n));
    }
    EXPECT_EQ(n, 0) << "expected EOF, got errno " << errno;
    return buf;
  }

  // True when the server closed its end within `wait_ms`.
  bool ClosedWithin(int wait_ms) {
    timeval tv{wait_ms / 1000, (wait_ms % 1000) * 1000};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    char c;
    const ssize_t n = ::recv(fd_, &c, 1, 0);
    return n == 0;
  }

  int fd() const { return fd_; }

  static int CountResponses(const std::string& buf) {
    int count = 0;
    size_t pos = 0;
    while (true) {
      const size_t head_end = buf.find("\r\n\r\n", pos);
      if (head_end == std::string::npos) {
        return count;
      }
      const size_t cl = buf.find("Content-Length: ", pos);
      if (cl == std::string::npos || cl > head_end) {
        return count;
      }
      const size_t body_len =
          static_cast<size_t>(std::atoll(buf.c_str() + cl + 16));
      const size_t next = head_end + 4 + body_len;
      if (buf.size() < next) {
        return count;
      }
      ++count;
      pos = next;
    }
  }

 private:
  int fd_ = -1;
};

std::string PostRequest(const std::string& path, const std::string& body,
                        const std::string& extra_headers = "") {
  return "POST " + path + " HTTP/1.1\r\nHost: t\r\n" + extra_headers +
         "Content-Length: " + std::to_string(body.size()) + "\r\n\r\n" + body;
}

// An echo server: POST /echo returns the request body; GET /big returns
// `big_size` bytes; everything else 404s. Counts handler invocations.
class ReactorTest : public ::testing::Test {
 protected:
  void StartServer(HttpServerOptions options = {}) {
    options.num_workers = 2;
    const Status st = server_.Start(
        "127.0.0.1", 0,
        [this](const HttpRequest& request, HttpResponseWriter& writer) {
          handled_.fetch_add(1);
          if (request.path == "/echo") {
            writer.Respond(200, "text/plain", request.body);
          } else if (request.path == "/big") {
            writer.Respond(200, "application/octet-stream", big_payload_);
          } else if (request.path == "/parts") {
            writer.RespondParts(200, "text/plain", "head:",
                                std::make_shared<const std::string>("middle"),
                                ":tail");
          } else if (request.path == "/slow") {
            std::this_thread::sleep_for(milliseconds(200));
            slow_done_.store(true);
            writer.Respond(200, "text/plain", "slept");
          } else {
            writer.Respond(404, "text/plain", "nope");
          }
        },
        options);
    ASSERT_TRUE(st.ok()) << st.ToString();
  }

  HttpServer server_;
  std::atomic<int> handled_{0};
  std::atomic<bool> slow_done_{false};
  std::string big_payload_ = std::string(4 * 1024 * 1024, 'x');
};

TEST_F(ReactorTest, KeepAliveServesManyRequestsOnOneConnection) {
  StartServer();
  RawConn conn(server_.port());
  const int kRequests = 5;
  for (int i = 0; i < kRequests; ++i) {
    conn.Send(PostRequest("/echo", "ping" + std::to_string(i)));
    const std::string response = conn.ReadResponses(1);
    EXPECT_NE(response.find(" 200 "), std::string::npos);
    EXPECT_NE(response.find("Connection: keep-alive"), std::string::npos);
    EXPECT_NE(response.find("ping" + std::to_string(i)), std::string::npos);
  }
  const HttpServerStats stats = server_.stats();
  EXPECT_EQ(stats.connections_accepted, 1);
  EXPECT_EQ(stats.requests_served, kRequests);
  EXPECT_EQ(stats.keepalive_reuses, kRequests - 1);
}

TEST_F(ReactorTest, PipelinedRequestsAreAnsweredInOrder) {
  StartServer();
  RawConn conn(server_.port());
  // Three requests in one write; the parser must dispatch all three and the
  // responses must come back in request order.
  std::string wire;
  for (int i = 0; i < 3; ++i) {
    wire += PostRequest("/echo", "pipelined-" + std::to_string(i));
  }
  conn.Send(wire);
  const std::string responses = conn.ReadResponses(3);
  const size_t p0 = responses.find("pipelined-0");
  const size_t p1 = responses.find("pipelined-1");
  const size_t p2 = responses.find("pipelined-2");
  ASSERT_NE(p0, std::string::npos);
  ASSERT_NE(p1, std::string::npos);
  ASSERT_NE(p2, std::string::npos);
  EXPECT_LT(p0, p1);
  EXPECT_LT(p1, p2);
  EXPECT_EQ(server_.stats().connections_accepted, 1);
}

TEST_F(ReactorTest, RequestSplitAtEveryByteBoundarySurvives) {
  StartServer();
  const std::string request = PostRequest("/echo", "split-me");
  // Two sub-cases: (a) the request split once at every possible boundary,
  // (b) the full one-byte-at-a-time torture feed. Both must parse to the
  // same response.
  for (size_t split = 1; split + 1 < request.size(); split += 7) {
    RawConn conn(server_.port());
    conn.Send(std::string_view(request).substr(0, split));
    std::this_thread::sleep_for(milliseconds(2));
    conn.Send(std::string_view(request).substr(split));
    const std::string response = conn.ReadResponses(1);
    EXPECT_NE(response.find(" 200 "), std::string::npos) << "split " << split;
    EXPECT_NE(response.find("split-me"), std::string::npos)
        << "split " << split;
  }
  RawConn conn(server_.port());
  for (const char c : request) {
    conn.Send(std::string_view(&c, 1));
  }
  const std::string response = conn.ReadResponses(1);
  EXPECT_NE(response.find(" 200 "), std::string::npos);
  EXPECT_NE(response.find("split-me"), std::string::npos);
}

TEST_F(ReactorTest, OversizedHeadersAreRejectedWithoutBuffering) {
  HttpServerOptions options;
  options.max_header_bytes = 2048;
  StartServer(options);
  RawConn conn(server_.port());
  conn.Send("GET /echo HTTP/1.1\r\nX-Filler: " + std::string(8192, 'a'));
  const std::string response = conn.ReadToEof();
  EXPECT_NE(response.find(" 431 "), std::string::npos);
  EXPECT_NE(response.find("Connection: close"), std::string::npos);
  EXPECT_EQ(server_.stats().parse_errors, 1);
  EXPECT_EQ(handled_.load(), 0) << "never reached the handler";
}

TEST_F(ReactorTest, ChunkedTransferEncodingIsRejected) {
  StartServer();
  RawConn conn(server_.port());
  conn.Send(
      "POST /echo HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5\r\nhello\r\n0\r\n\r\n");
  const std::string response = conn.ReadToEof();
  EXPECT_NE(response.find(" 400 "), std::string::npos);
  EXPECT_EQ(handled_.load(), 0);
}

TEST_F(ReactorTest, IdleConnectionsAreEvicted) {
  HttpServerOptions options;
  options.idle_timeout_seconds = 0.2;
  StartServer(options);
  RawConn idle(server_.port());
  // A never-sends connection and a keep-alive connection that went quiet
  // after one request are both evicted.
  RawConn quiet(server_.port());
  quiet.Send(PostRequest("/echo", "one"));
  EXPECT_NE(quiet.ReadResponses(1).find(" 200 "), std::string::npos);

  EXPECT_TRUE(idle.ClosedWithin(2000));
  EXPECT_TRUE(quiet.ClosedWithin(2000));
  EXPECT_GE(server_.stats().timeout_evictions, 2);
}

TEST_F(ReactorTest, StalledPartialRequestIsEvictedOnReadTimeout) {
  HttpServerOptions options;
  options.idle_timeout_seconds = 30.0;  // idle alone would NOT evict in time
  options.read_timeout_seconds = 0.2;
  StartServer(options);
  RawConn conn(server_.port());
  conn.Send("POST /echo HTTP/1.1\r\nContent-Le");  // stall mid-head
  const auto start = steady_clock::now();
  EXPECT_TRUE(conn.ClosedWithin(5000));
  EXPECT_LT(steady_clock::now() - start, milliseconds(3000));
  EXPECT_GE(server_.stats().timeout_evictions, 1);
}

TEST_F(ReactorTest, LargeResponseSurvivesShortWrites) {
  StartServer();
  // Shrink the client's receive window so the 4 MiB body cannot possibly
  // fit in kernel buffers: the server's flush must hit EAGAIN and resume
  // via EPOLLOUT (partial-write handling on the writev path).
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  const int tiny = 4096;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &tiny, sizeof(tiny));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(server_.port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = "GET /big HTTP/1.1\r\nHost: t\r\n\r\n";
  ASSERT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
            static_cast<ssize_t>(request.size()));
  // Drain in small chunks until the framed response is complete; every
  // byte must arrive, in order.
  std::string got;
  char chunk[2048];
  while (RawConn::CountResponses(got) == 0) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    ASSERT_GT(n, 0) << "connection died mid-flush after " << got.size();
    got.append(chunk, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t head_end = got.find("\r\n\r\n");
  ASSERT_NE(head_end, std::string::npos);
  EXPECT_EQ(got.substr(head_end + 4), big_payload_)
      << "body bytes lost or reordered across partial writes";
}

TEST_F(ReactorTest, RespondPartsAssemblesExactlyLikeRespond) {
  StartServer();
  RawConn conn(server_.port());
  conn.Send("GET /parts HTTP/1.1\r\nHost: t\r\n\r\n");
  const std::string response = conn.ReadResponses(1);
  const size_t head_end = response.find("\r\n\r\n");
  ASSERT_NE(head_end, std::string::npos);
  EXPECT_EQ(response.substr(head_end + 4), "head:middle:tail");
  EXPECT_NE(response.find("Content-Length: 16\r\n"), std::string::npos);
}

TEST_F(ReactorTest, ConnectionCloseAndHttp10AreHonored) {
  StartServer();
  {
    RawConn conn(server_.port());
    conn.Send(PostRequest("/echo", "bye", "Connection: close\r\n"));
    const std::string response = conn.ReadToEof();  // EOF = server closed
    EXPECT_NE(response.find(" 200 "), std::string::npos);
    EXPECT_NE(response.find("Connection: close"), std::string::npos);
  }
  {
    RawConn conn(server_.port());
    conn.Send("GET /echo HTTP/1.0\r\nHost: t\r\n\r\n");
    const std::string response = conn.ReadToEof();
    EXPECT_NE(response.find(" 200 "), std::string::npos);
    EXPECT_NE(response.find("Connection: close"), std::string::npos);
  }
}

TEST_F(ReactorTest, StopDrainsInFlightHandlersBeforeReturning) {
  // PR-7 regression: the old server detached handler threads, so Stop()
  // could return while a handler still touched server/daemon state. The
  // reactor runs handlers on joined workers: Stop() returning implies every
  // in-flight handler has finished.
  StartServer();
  std::thread client([port = server_.port()] {
    RawConn conn(port);
    conn.Send("GET /slow HTTP/1.1\r\nHost: t\r\n\r\n");
    conn.ReadResponses(1);  // response flushes before the worker exits
  });
  std::this_thread::sleep_for(milliseconds(50));  // let the request arrive
  ASSERT_EQ(handled_.load(), 1) << "request not in flight yet";
  ASSERT_FALSE(slow_done_.load());
  server_.Stop();
  EXPECT_TRUE(slow_done_.load())
      << "Stop() returned while a handler was still running";
  client.join();
}

TEST_F(ReactorTest, StatsBytesAndAuditIdentities) {
  StartServer();
  {
    RawConn conn(server_.port());
    conn.Send(PostRequest("/echo", "abc"));
    conn.ReadResponses(1);
    conn.Send(PostRequest("/echo", "def"));
    conn.ReadResponses(1);
  }
  RawConn other(server_.port());
  other.Send(PostRequest("/echo", "ghi", "Connection: close\r\n"));
  other.ReadToEof();

  // Closing is asynchronous (the worker notices EOF on its next round).
  const auto deadline = steady_clock::now() + milliseconds(2000);
  while (server_.stats().connections_closed < 2 &&
         steady_clock::now() < deadline) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  const HttpServerStats stats = server_.stats();
  EXPECT_EQ(stats.connections_accepted, 2);
  EXPECT_EQ(stats.connections_closed, 2);
  EXPECT_EQ(stats.requests_served, 3);
  EXPECT_EQ(stats.keepalive_reuses, 1);
  EXPECT_GT(stats.bytes_in, 0);
  EXPECT_GT(stats.bytes_out, 0);
  EXPECT_EQ(stats.parse_errors, 0);
  EXPECT_EQ(stats.timeout_evictions, 0);
}

// ---- HttpClient ----

TEST_F(ReactorTest, HttpClientReusesItsConnection) {
  StartServer();
  HttpClient client("127.0.0.1", server_.port());
  for (int i = 0; i < 4; ++i) {
    auto response = client.Call("POST", "/echo", "req" + std::to_string(i));
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    EXPECT_EQ(response->status_code, 200);
    EXPECT_EQ(response->body, "req" + std::to_string(i));
  }
  EXPECT_TRUE(client.connected());
  EXPECT_EQ(client.reconnects(), 0);
  EXPECT_EQ(server_.stats().connections_accepted, 1);
  EXPECT_EQ(server_.stats().keepalive_reuses, 3);
}

TEST_F(ReactorTest, HttpClientReconnectsAfterServerIdleClose) {
  HttpServerOptions options;
  options.idle_timeout_seconds = 0.2;
  StartServer(options);
  HttpClient client("127.0.0.1", server_.port());
  auto first = client.Call("POST", "/echo", "one");
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  // Let the server evict the idle connection, then call again: the client
  // must notice the dead connection and transparently retry once.
  std::this_thread::sleep_for(milliseconds(600));
  auto second = client.Call("POST", "/echo", "two");
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->body, "two");
  EXPECT_EQ(client.reconnects(), 1);
}

}  // namespace
}  // namespace serve
}  // namespace aceso
