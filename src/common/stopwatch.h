// Wall-clock measurement and search-time budgeting.

#ifndef SRC_COMMON_STOPWATCH_H_
#define SRC_COMMON_STOPWATCH_H_

#include <chrono>

namespace aceso {

// Measures elapsed wall-clock time from construction or the last Restart().
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// A deadline for an anytime search: the Aceso driver polls Expired() between
// iterations and returns its best-so-far when the budget runs out.
class TimeBudget {
 public:
  // A budget of <= 0 seconds means "unlimited".
  explicit TimeBudget(double seconds) : seconds_(seconds) {}

  bool unlimited() const { return seconds_ <= 0.0; }
  bool Expired() const {
    return !unlimited() && watch_.ElapsedSeconds() >= seconds_;
  }
  double ElapsedSeconds() const { return watch_.ElapsedSeconds(); }
  double RemainingSeconds() const {
    if (unlimited()) {
      return 1e18;
    }
    const double rest = seconds_ - watch_.ElapsedSeconds();
    return rest > 0.0 ? rest : 0.0;
  }
  double budget_seconds() const { return seconds_; }

 private:
  double seconds_;
  Stopwatch watch_;
};

}  // namespace aceso

#endif  // SRC_COMMON_STOPWATCH_H_
