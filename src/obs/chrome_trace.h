// Generic Chrome trace-event (chrome://tracing / Perfetto) document writer,
// plus the builder that turns a search-telemetry event stream into a trace
// of the search itself: one trace thread per stage-count worker, one slice
// per Algorithm-1 iteration (accepted slices named after the improving
// primitive), and one enclosing span per worker.
//
// The writer is shared with the runtime's execution-trace export
// (src/runtime/trace.cc builds a TraceDocument from its EventSimulator), so
// both emitters escape names the same way and stay valid JSON for
// adversarial task/resource names.

#ifndef SRC_OBS_CHROME_TRACE_H_
#define SRC_OBS_CHROME_TRACE_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/obs/telemetry.h"

namespace aceso {

// One duration ("ph":"X") slice. Times are in seconds; the writer converts
// to the microseconds the trace format expects.
struct TraceSlice {
  std::string name;
  int tid = 0;
  double ts_seconds = 0.0;
  double dur_seconds = 0.0;
  // Optional string-valued args rendered as the slice's "args" object.
  std::vector<std::pair<std::string, std::string>> args;
};

struct TraceDocument {
  // tid → display name, emitted as thread_name metadata events.
  std::vector<std::pair<int, std::string>> threads;
  std::vector<TraceSlice> slices;
  int pid = 1;
};

// Serializes the document as a Chrome trace-event JSON array. All string
// fields (thread names, slice names, arg keys/values) are JSON-escaped.
std::string ToChromeTraceJson(const TraceDocument& doc);

// Writes the document to `path`.
Status WriteChromeTrace(const TraceDocument& doc, const std::string& path);

// Builds the search trace from a telemetry event stream (DESIGN.md §10):
// consumes "search_begin" / "iteration" / "search_end" events; other event
// types are ignored. Workers appear as threads named "stages=P".
TraceDocument BuildSearchTrace(const std::vector<TelemetryEvent>& events);

}  // namespace aceso

#endif  // SRC_OBS_CHROME_TRACE_H_
