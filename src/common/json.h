// Minimal JSON utilities shared by every hand-emitted JSON writer in the
// repository (Chrome traces, telemetry JSONL, BENCH_search.json): string
// escaping, number formatting, a strict validating parser used by tests and
// tools to keep those writers honest, and — since the planning daemon
// (src/serve) started accepting requests over the wire — a small document
// model (JsonValue) with a parser over the same RFC 8259 grammar.
//
// This is deliberately not a JSON library — the repo carries no JSON
// dependency and its writers emit documents directly. What must be shared is
// the part that is easy to get wrong everywhere: escaping arbitrary strings
// (task names, model names, file paths) so the output stays parseable, and
// now parsing untrusted request bodies without ad-hoc string slicing.

#ifndef SRC_COMMON_JSON_H_
#define SRC_COMMON_JSON_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace aceso {

// Appends `s` to `out` with JSON string escaping applied (quotes,
// backslashes, and control characters; no surrounding quotes added).
void AppendJsonEscaped(std::string& out, std::string_view s);

// Returns `s` escaped for embedding inside a JSON string literal.
std::string JsonEscape(std::string_view s);

// Appends a JSON number for `value`. Non-finite values (which JSON cannot
// represent) are emitted as null; finite values round-trip through a
// shortest-ish %.15g rendering that the validator below accepts.
void AppendJsonNumber(std::string& out, double value);

// Strict validation of a complete JSON document (RFC 8259 grammar: one
// value, optionally surrounded by whitespace, nothing trailing). Returns
// OkStatus() iff `text` parses; the error message carries the byte offset
// and what was expected. Used by tests to gate every writer in the repo and
// cheap enough (single pass, no allocation besides the error) for tools to
// self-check their output.
Status JsonValidate(std::string_view text);

// A parsed JSON document: one immutable value tree. Numbers are held as
// doubles (plus an exact-int64 flag for integral literals within range);
// object keys keep insertion order and may repeat (last one wins in Find).
// The tree is built by JsonParse below and consumed read-only, so the
// interface is all const accessors — there are no mutators.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;  // null

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  // Typed reads; must match kind() (asserted in debug builds like StatusOr).
  bool bool_value() const;
  double number_value() const;
  const std::string& string_value() const;

  // True when the number was an integral literal representable as int64 —
  // the distinction request parsing needs between 3 and 3.5.
  bool number_is_int() const { return int_exact_; }
  int64_t int_value() const;

  // Array access.
  size_t size() const { return items_.size(); }
  const JsonValue& item(size_t i) const;

  // Object access: the member value for `key`, or nullptr when absent. With
  // duplicate keys the last occurrence wins (matching common parsers).
  const JsonValue* Find(std::string_view key) const;
  // Object members in document order.
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  // Re-serializes the tree (object keys in stored order, strings escaped,
  // numbers through AppendJsonNumber / exact int64 formatting). Parses back
  // equal; used by tests and by the daemon to echo requests.
  std::string ToJson() const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  bool int_exact_ = false;
  int64_t int_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;                           // kArray
  std::vector<std::pair<std::string, JsonValue>> members_; // kObject
};

// Strict parse of one complete JSON document into a JsonValue. Exactly the
// documents JsonValidate accepts parse successfully; errors carry the byte
// offset. \uXXXX escapes are decoded to UTF-8 (surrogate pairs included).
StatusOr<JsonValue> JsonParse(std::string_view text);

}  // namespace aceso

#endif  // SRC_COMMON_JSON_H_
