#include "src/core/primitives.h"

namespace aceso {

const char* PrimitiveName(PrimitiveKind kind) {
  switch (kind) {
    case PrimitiveKind::kIncOpCount:
      return "inc-op#";
    case PrimitiveKind::kDecOpCount:
      return "dec-op#";
    case PrimitiveKind::kIncMbs:
      return "inc-mbs";
    case PrimitiveKind::kDecMbs:
      return "dec-mbs";
    case PrimitiveKind::kIncDp:
      return "inc-dp";
    case PrimitiveKind::kDecDp:
      return "dec-dp";
    case PrimitiveKind::kIncTp:
      return "inc-tp";
    case PrimitiveKind::kDecTp:
      return "dec-tp";
    case PrimitiveKind::kIncRc:
      return "inc-rc";
    case PrimitiveKind::kDecRc:
      return "dec-rc";
    case PrimitiveKind::kIncZero:
      return "inc-zero";
    case PrimitiveKind::kDecZero:
      return "dec-zero";
  }
  return "unknown";
}

const char* TrendName(Trend trend) {
  switch (trend) {
    case Trend::kIncrease:
      return "increase";
    case Trend::kUnchanged:
      return "unchanged";
    case Trend::kDecrease:
      return "decrease";
  }
  return "unknown";
}

const std::array<PrimitiveInfo, kNumPrimitives>& PrimitiveTable() {
  // Paper Table 1. Comp/Comm/Mem columns describe the impact on the stage
  // the primitive is applied to.
  static const std::array<PrimitiveInfo, kNumPrimitives> kTable = {{
      {PrimitiveKind::kIncOpCount, Trend::kIncrease, Trend::kUnchanged,
       Trend::kIncrease, "pipeline parallelism"},
      {PrimitiveKind::kDecOpCount, Trend::kDecrease, Trend::kUnchanged,
       Trend::kDecrease, "pipeline parallelism"},
      // Microbatch size trades computation time against memory: a larger
      // microbatch runs fewer, larger, more efficient kernels (computation
      // consumption decreases) while holding more activation per in-flight
      // microbatch (memory increases).
      {PrimitiveKind::kIncMbs, Trend::kDecrease, Trend::kUnchanged,
       Trend::kIncrease, "pipeline parallelism"},
      {PrimitiveKind::kDecMbs, Trend::kIncrease, Trend::kUnchanged,
       Trend::kDecrease, "pipeline parallelism"},
      {PrimitiveKind::kIncDp, Trend::kDecrease, Trend::kIncrease,
       Trend::kDecrease, "data parallelism"},
      {PrimitiveKind::kDecDp, Trend::kIncrease, Trend::kDecrease,
       Trend::kIncrease, "data parallelism"},
      {PrimitiveKind::kIncTp, Trend::kDecrease, Trend::kIncrease,
       Trend::kDecrease, "tensor parallelism"},
      {PrimitiveKind::kDecTp, Trend::kIncrease, Trend::kDecrease,
       Trend::kIncrease, "tensor parallelism"},
      {PrimitiveKind::kIncRc, Trend::kIncrease, Trend::kUnchanged,
       Trend::kDecrease, "recomputation"},
      {PrimitiveKind::kDecRc, Trend::kDecrease, Trend::kUnchanged,
       Trend::kIncrease, "recomputation"},
      // Extension rows: ZeRO-style optimizer sharding trades an extra
      // parameter all-gather per iteration for optimizer-state memory.
      {PrimitiveKind::kIncZero, Trend::kUnchanged, Trend::kIncrease,
       Trend::kDecrease, "optimizer sharding"},
      {PrimitiveKind::kDecZero, Trend::kUnchanged, Trend::kDecrease,
       Trend::kIncrease, "optimizer sharding"},
  }};
  return kTable;
}

std::vector<PrimitiveKind> PrimitivesDecreasing(Resource resource,
                                                bool include_extensions) {
  std::vector<PrimitiveKind> out;
  for (const PrimitiveInfo& info : PrimitiveTable()) {
    if (!include_extensions &&
        static_cast<int>(info.kind) >= kNumPaperPrimitives) {
      continue;
    }
    Trend trend = Trend::kUnchanged;
    switch (resource) {
      case Resource::kComputation:
        trend = info.computation;
        break;
      case Resource::kCommunication:
        trend = info.communication;
        break;
      case Resource::kMemory:
        trend = info.memory;
        break;
    }
    if (trend == Trend::kDecrease) {
      out.push_back(info.kind);
    }
  }
  return out;
}

std::vector<PrimitiveKind> PartnerPrimitives(PrimitiveKind kind) {
  // §3.2.1: inc-op# pairs with dec-op#; inc-dp and inc-tp take devices from
  // a partner stage that sheds them via dec-dp or dec-tp (and vice versa for
  // the dec- variants donating devices).
  switch (kind) {
    case PrimitiveKind::kIncOpCount:
      return {PrimitiveKind::kDecOpCount};
    case PrimitiveKind::kDecOpCount:
      return {PrimitiveKind::kIncOpCount};
    case PrimitiveKind::kIncDp:
    case PrimitiveKind::kIncTp:
      return {PrimitiveKind::kDecDp, PrimitiveKind::kDecTp};
    case PrimitiveKind::kDecDp:
    case PrimitiveKind::kDecTp:
      return {PrimitiveKind::kIncDp, PrimitiveKind::kIncTp};
    default:
      return {};
  }
}

}  // namespace aceso
