#include "src/serve/daemon.h"

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/logging.h"
#include "src/serve/plan_protocol.h"

namespace aceso {
namespace serve {

namespace {

constexpr char kJsonType[] = "application/json";
constexpr char kNdjsonType[] = "application/x-ndjson";

}  // namespace

int HttpStatusForStatus(const Status& status) {
  switch (status.code()) {
    case StatusCode::kOk: return 200;
    case StatusCode::kInvalidArgument: return 400;
    case StatusCode::kNotFound: return 404;
    case StatusCode::kFailedPrecondition: return 412;
    case StatusCode::kResourceExhausted: return 429;
    default: return 500;
  }
}

PlanDaemon::PlanDaemon(ServeOptions options)
    : service_(std::move(options)) {}

Status PlanDaemon::Start(const std::string& host, int port) {
  HttpServerOptions http;
  http.num_workers = std::max(1, service_.options().http_workers);
  http.idle_timeout_seconds = service_.options().http_idle_timeout_seconds;
  http.read_timeout_seconds = service_.options().http_read_timeout_seconds;
  return server_.Start(host, port,
                       [this](const HttpRequest& request,
                              HttpResponseWriter& writer) {
                         Handle(request, writer);
                       },
                       http);
}

void PlanDaemon::Stop() { server_.Stop(); }

void PlanDaemon::Handle(const HttpRequest& request,
                        HttpResponseWriter& writer) {
  if (request.path == "/healthz" && request.method == "GET") {
    writer.Respond(200, kJsonType, "{\"status\":\"ok\"}");
    return;
  }
  if (request.path == "/stats" && request.method == "GET") {
    writer.Respond(200, kJsonType, StatsJson());
    return;
  }
  if (request.path == "/plan" && request.method == "POST") {
    HandlePlan(request, writer);
    return;
  }
  if (request.path == "/profile/save" && request.method == "POST") {
    Status s = service_.SaveProfiles();
    if (s.ok()) {
      writer.Respond(200, kJsonType, "{\"status\":\"ok\"}");
    } else {
      writer.Respond(HttpStatusForStatus(s), kJsonType,
                     BuildErrorEnvelope("", s));
    }
    return;
  }
  // Known paths with the wrong verb get a 405; everything else a 404.
  if (request.path == "/plan" || request.path == "/profile/save" ||
      request.path == "/stats" || request.path == "/healthz") {
    writer.Respond(405, kJsonType,
                   BuildErrorEnvelope("", InvalidArgument(
                                              "method not allowed for " +
                                              request.path)));
    return;
  }
  writer.Respond(404, kJsonType,
                 BuildErrorEnvelope(
                     "", NotFound("no such endpoint: " + request.path)));
}

void PlanDaemon::HandlePlan(const HttpRequest& request,
                            HttpResponseWriter& writer) {
  StatusOr<PlanRequest> parsed = ParsePlanRequestJson(request.body);
  if (!parsed.ok()) {
    writer.Respond(HttpStatusForStatus(parsed.status()), kJsonType,
                   BuildErrorEnvelope("", parsed.status()));
    return;
  }
  PlanRequest plan_request = std::move(parsed).value();

  if (!plan_request.stream) {
    PlanService::Response response = service_.Handle(plan_request);
    // The body parts go straight into the connection's writev: on a cache
    // hit the shared middle is the cached payload by reference.
    writer.RespondParts(HttpStatusForStatus(response.status), kJsonType,
                        response.body_head, std::move(response.body_mid),
                        response.body_tail);
    return;
  }

  // Streaming mode: the HTTP status goes out before the search runs, so it
  // is always 200; request-level failures arrive as the final envelope line.
  if (!writer.BeginStream(200, kNdjsonType)) {
    ACESO_LOG(WARNING) << "serve: client gone before stream start";
    return;
  }
  PlanService::Response response = service_.Handle(
      plan_request, [&writer](const std::string& line) {
        // A false return means the client hung up; the search still runs to
        // completion so its result lands in the plan cache.
        writer.WriteChunk(line + "\n");
      });
  writer.WriteChunk(response.body() + "\n");
}

std::string PlanDaemon::StatsJson() const {
  // Service counters stay top-level (CI and tests grep them flat); the
  // io-layer counters nest under "http".
  std::string out = service_.StatsJson();
  const HttpServerStats h = server_.stats();
  std::string http = ",\"http\":{";
  auto field = [&http](const char* name, int64_t value, bool last = false) {
    http += "\"";
    http += name;
    http += "\":";
    http += std::to_string(value);
    if (!last) {
      http += ",";
    }
  };
  field("connections_accepted", h.connections_accepted);
  field("connections_closed", h.connections_closed);
  field("requests_served", h.requests_served);
  field("keepalive_reuses", h.keepalive_reuses);
  field("bytes_in", h.bytes_in);
  field("bytes_out", h.bytes_out);
  field("timeout_evictions", h.timeout_evictions);
  field("parse_errors", h.parse_errors, /*last=*/true);
  http += "}";
  out.insert(out.size() - 1, http);
  return out;
}

}  // namespace serve
}  // namespace aceso
