file(REMOVE_RECURSE
  "CMakeFiles/execution_plan_test.dir/execution_plan_test.cc.o"
  "CMakeFiles/execution_plan_test.dir/execution_plan_test.cc.o.d"
  "execution_plan_test"
  "execution_plan_test.pdb"
  "execution_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/execution_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
