// Reconfiguration primitives (paper Table 1).
//
// Each primitive is a basic adjustment of one mechanism with a known
// qualitative impact on the consumption of the three resources (computation,
// communication, memory) at the stage it is applied to. The search queries
// this table for primitives that *decrease* the bottleneck's constrained
// resource — the "resource trading" view of §3.2.

#ifndef SRC_CORE_PRIMITIVES_H_
#define SRC_CORE_PRIMITIVES_H_

#include <array>
#include <string>
#include <vector>

#include "src/cost/resource_usage.h"

namespace aceso {

enum class PrimitiveKind {
  kIncOpCount = 0,  // 1: inc-op#  — pull operators into a pipeline stage
  kDecOpCount,      // 2: dec-op#  — push operators out of a pipeline stage
  kIncMbs,          // 3: inc-mbs  — double the global microbatch size
  kDecMbs,          // 4: dec-mbs  — halve the global microbatch size
  kIncDp,           // 5: inc-dp   — increase data-parallel concurrency
  kDecDp,           // 6: dec-dp   — decrease data-parallel concurrency
  kIncTp,           // 7: inc-tp   — increase tensor-parallel concurrency
  kDecTp,           // 8: dec-tp   — decrease tensor-parallel concurrency
  kIncRc,           // 9: inc-rc   — recompute more operators in a stage
  kDecRc,           // 10: dec-rc  — recompute fewer operators in a stage
  // ---- extension rows (not in the paper's Table 1; §3.2.1 notes that
  // "Aceso can be extended with new primitives for future research") ----
  kIncZero,         // 11: inc-zero — shard optimizer state over dp (ZeRO-1)
  kDecZero,         // 12: dec-zero — replicate optimizer state again
};

// The paper's Table 1 rows.
inline constexpr int kNumPaperPrimitives = 10;
// Including this repository's extension rows.
inline constexpr int kNumPrimitives = 12;

const char* PrimitiveName(PrimitiveKind kind);

// Qualitative resource-consumption trend of a primitive (Table 1 columns).
enum class Trend {
  kIncrease,
  kUnchanged,
  kDecrease,
};

const char* TrendName(Trend trend);

struct PrimitiveInfo {
  PrimitiveKind kind;
  Trend computation;
  Trend communication;
  Trend memory;
  // The mechanism the primitive reconfigures (for documentation/printing).
  const char* mechanism;
};

// The full Table 1, indexed by PrimitiveKind.
const std::array<PrimitiveInfo, kNumPrimitives>& PrimitiveTable();

// Table lookup: primitives whose trend for `resource` is kDecrease — the
// eligible bottleneck-alleviating moves for that resource.
// `include_extensions` adds the ZeRO rows (off in the paper's search space).
std::vector<PrimitiveKind> PrimitivesDecreasing(Resource resource,
                                                bool include_extensions = false);

// The partner primitive applied to the stage that balances a device
// migration (§3.2.1 "Partner primitives and partner stages"). Returns an
// empty vector for primitives that act alone.
std::vector<PrimitiveKind> PartnerPrimitives(PrimitiveKind kind);

}  // namespace aceso

#endif  // SRC_CORE_PRIMITIVES_H_
