# Empty compiler generated dependencies file for exp08_time_accuracy.
# This may be replaced when dependencies are built.
