// Minimal HTTP/1.1 transport for the planning daemon (DESIGN.md §14).
//
// Deliberately small: the repo carries no networking dependency, and the
// daemon needs exactly (a) POST/GET with JSON bodies on a loopback socket
// and (b) an EOF-delimited NDJSON event stream for long-running plan
// requests. So this is a thread-per-connection HTTP/1.1 server over POSIX
// sockets with two response modes:
//
//   * Respond()       — complete body, Content-Length framed;
//   * BeginStream() + WriteChunk() — headers with `Connection: close` and
//     no Content-Length; the body is whatever the handler writes until it
//     returns, and the connection close delimits it. (No chunked encoding:
//     every client the repo ships — HttpCall below, curl, the bench — handles
//     close-delimited bodies, and the framing stays greppable on the wire.)
//
// Every response carries `Connection: close`; one request per connection.
// That forgoes keep-alive throughput, which the serve bench quantifies —
// plan requests are search-bound, not connection-bound.

#ifndef SRC_SERVE_HTTP_H_
#define SRC_SERVE_HTTP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace aceso {
namespace serve {

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // path + query, verbatim
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  // Case-insensitive header lookup; nullptr when absent.
  const std::string* FindHeader(std::string_view name) const;
};

// The reason phrase for a status code this server emits (400, 404, ...).
const char* HttpStatusText(int code);

// Per-connection response channel handed to the handler. Exactly one of
// Respond / BeginStream may be called, once.
class HttpResponseWriter {
 public:
  // Complete response, Content-Length framed.
  void Respond(int status, std::string_view content_type,
               std::string_view body);

  // Starts a close-delimited stream. Returns false when the client is gone.
  bool BeginStream(int status, std::string_view content_type);
  // Appends raw bytes to a started stream. Returns false once the client
  // disconnects (callers should stop producing).
  bool WriteChunk(std::string_view data);

  bool responded() const { return responded_; }

 private:
  friend class HttpServer;
  explicit HttpResponseWriter(int fd) : fd_(fd) {}
  bool SendAll(std::string_view data);

  int fd_;
  bool responded_ = false;
  bool streaming_ = false;
  bool broken_ = false;
};

using HttpHandler =
    std::function<void(const HttpRequest&, HttpResponseWriter&)>;

// Thread-per-connection loopback server. Start binds and spawns the accept
// loop; Stop (also run by the destructor) closes the listener and waits for
// in-flight connections to drain.
class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // `port` 0 binds an ephemeral port (read it back with port()). `host`
  // should stay "127.0.0.1": the daemon speaks plaintext with no auth.
  Status Start(const std::string& host, int port, HttpHandler handler);
  void Stop();

  // The bound port (after a successful Start).
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  int listen_fd_ = -1;
  int port_ = 0;
  HttpHandler handler_;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::mutex mu_;
  std::condition_variable idle_;
  int active_connections_ = 0;
};

// Blocking HTTP client call used by aceso_plan --remote, the serve bench,
// and the tests. Sends one request with `Connection: close` and reads the
// response to EOF, so it handles both framed and streamed bodies; for a
// streamed response the returned body is the concatenation of every chunk.
struct HttpResponse {
  int status_code = 0;
  std::string content_type;
  std::string body;
};

StatusOr<HttpResponse> HttpCall(const std::string& host, int port,
                                const std::string& method,
                                const std::string& path,
                                const std::string& body,
                                double timeout_seconds = 120.0);

// Streaming client variant: `on_line` is invoked for every complete
// '\n'-terminated line of the response body as it arrives (NDJSON framing);
// the returned HttpResponse carries the final line count in body (empty) and
// the status line. Used to consume streamed plan requests.
StatusOr<HttpResponse> HttpCallStreaming(
    const std::string& host, int port, const std::string& method,
    const std::string& path, const std::string& body,
    const std::function<void(std::string_view line)>& on_line,
    double timeout_seconds = 120.0);

}  // namespace serve
}  // namespace aceso

#endif  // SRC_SERVE_HTTP_H_
