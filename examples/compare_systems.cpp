// Compares the three configuration-search systems on one model — Aceso's
// iterative bottleneck alleviation, the Megatron-LM grid search, and the
// Alpa-like two-level solver — then executes each system's best plan in the
// simulated runtime and reports actual throughput.
//
//   ./build/examples/compare_systems [model] [gpus]
//   ./build/examples/compare_systems gpt3-2.6b 8

#include <cstdio>
#include <iostream>
#include <string>

#include "src/aceso.h"

int main(int argc, char** argv) {
  using namespace aceso;

  const std::string model_name = argc > 1 ? argv[1] : "gpt3-2.6b";
  const int gpus = argc > 2 ? std::atoi(argv[2]) : 8;

  auto model_or = models::BuildByName(model_name);
  if (!model_or.ok()) {
    std::fprintf(stderr, "%s\n", model_or.status().ToString().c_str());
    return 1;
  }
  const OpGraph model = *std::move(model_or);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(gpus);
  std::printf("%s on %s\n\n", model.Summary().c_str(),
              cluster.ToString().c_str());

  ProfileDatabase db(cluster);
  PerformanceModel perf_model(&model, cluster, &db);
  PipelineExecutor executor(&perf_model);

  TablePrinter table({"system", "search(s)", "explored", "pred iter(s)",
                      "actual iter(s)", "samples/s", "TFLOPS/GPU", "plan"});

  auto report = [&](const std::string& name, const ScoredConfig& best,
                    double search_seconds, int64_t explored) {
    const ExecutionResult run = executor.Execute(best.config);
    table.AddRow({name, FormatDouble(search_seconds, 2),
                  std::to_string(explored),
                  FormatDouble(best.perf.iteration_time, 3),
                  FormatDouble(run.iteration_seconds, 3),
                  FormatDouble(run.Throughput(model.global_batch_size()), 1),
                  FormatDouble(executor.EffectiveTflopsPerGpu(run), 1),
                  best.config.ShortString()});
  };

  // --- Aceso ---
  SearchOptions options;
  options.time_budget_seconds = 3.0;
  const SearchResult aceso = AcesoSearch(perf_model, options);
  if (aceso.found) {
    report("Aceso", aceso.best, aceso.search_seconds,
           aceso.stats.configs_explored);
  }

  // --- Megatron-LM grid search ---
  const BaselineResult megatron = MegatronGridSearch(perf_model);
  if (megatron.found) {
    report("Megatron-LM", megatron.best, megatron.search_seconds,
           megatron.configs_explored);
  }

  // --- Alpa-like two-level solver ---
  auto alpa = AlpaLikeSearch(perf_model);
  if (alpa.ok() && alpa->found) {
    report("Alpa-like", alpa->best, alpa->TotalSearchSeconds(),
           alpa->configs_explored);
  } else if (!alpa.ok()) {
    std::printf("Alpa-like: %s\n", alpa.status().ToString().c_str());
  }

  table.Print(std::cout);
  return 0;
}
