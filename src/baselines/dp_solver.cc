#include "src/baselines/dp_solver.h"

#include <algorithm>
#include <vector>

#include "src/common/stopwatch.h"
// The per-op prefix pricing (StagePrefixMetrics / BuildStagePrefix) is
// shared with the search's PaSE-style DP seeder.
#include "src/core/dp_seeder.h"

namespace aceso {

BaselineResult DpSolverSearch(const PerformanceModel& model,
                              const DpSolverOptions& options) {
  Stopwatch watch;
  BaselineResult result;
  const OpGraph& graph = model.graph();
  const ClusterSpec& cluster = model.cluster();
  const int n = graph.num_ops();
  const int gpus = cluster.num_gpus();
  const int64_t batch = graph.global_batch_size();
  const double opt_mult = OptimizerMultiplier(graph.precision());
  const int64_t mem_cap = cluster.gpu.memory_bytes;

  for (int mbs = 1;
       mbs <= options.max_microbatch && batch % mbs == 0 &&
       result.configs_explored < options.max_explored;
       mbs *= 2) {
    // Pruning: uniform stage meshes (gpus/S devices per stage).
    for (int S = 1; S <= std::min({options.max_stages, gpus, n}); S *= 2) {
      if (gpus % S != 0 || !IsPow2(gpus / S)) {
        continue;
      }
      const int mesh = gpus / S;

      // Prefix metrics per (tp, rc).
      struct Option {
        int tp;
        bool recompute;
        StagePrefixMetrics prefix;
      };
      std::vector<Option> opts;
      for (int tp = 1; tp <= mesh; tp *= 2) {
        for (const bool rc : {false, true}) {
          Option o{tp, rc, BuildStagePrefix(model, mesh, tp, rc, mbs)};
          if (o.prefix.valid) {
            opts.push_back(std::move(o));
          }
        }
      }
      if (opts.empty()) {
        continue;
      }

      const int max_len = std::max(
          1, static_cast<int>(options.max_ops_per_stage_factor * n / S));

      // DP over op boundaries: f[s][i] = min bottleneck time covering the
      // first i ops with s stages.
      constexpr double kInf = 1e300;
      struct Cell {
        double value = 1e300;
        int prev_i = -1;
        int option = -1;
      };
      std::vector<std::vector<Cell>> f(
          static_cast<size_t>(S) + 1,
          std::vector<Cell>(static_cast<size_t>(n) + 1));
      f[0][0].value = 0.0;

      for (int s = 1; s <= S; ++s) {
        const int in_flight = S - s + 1;
        for (int i = s; i <= n; ++i) {
          Cell& cell = f[static_cast<size_t>(s)][static_cast<size_t>(i)];
          const int j_min = std::max(s - 1, i - max_len);
          for (int j = j_min; j < i; ++j) {
            const Cell& prev =
                f[static_cast<size_t>(s) - 1][static_cast<size_t>(j)];
            if (prev.value >= kInf) {
              continue;
            }
            for (size_t oi = 0; oi < opts.size(); ++oi) {
              const StagePrefixMetrics& pm = opts[oi].prefix;
              ++result.configs_explored;
              const double time = pm.time[static_cast<size_t>(i)] -
                                  pm.time[static_cast<size_t>(j)];
              const int64_t act = pm.act[static_cast<size_t>(i)] -
                                  pm.act[static_cast<size_t>(j)];
              const int64_t params = pm.params[static_cast<size_t>(i)] -
                                     pm.params[static_cast<size_t>(j)];
              const int64_t mem =
                  params +
                  static_cast<int64_t>(static_cast<double>(params) *
                                       opt_mult) +
                  act * in_flight;
              if (mem > mem_cap) {
                continue;
              }
              const double value = std::max(prev.value, time);
              if (value < cell.value) {
                cell.value = value;
                cell.prev_i = j;
                cell.option = static_cast<int>(oi);
              }
            }
          }
        }
        if (result.configs_explored >= options.max_explored) {
          break;
        }
      }

      const Cell& final_cell = f[static_cast<size_t>(S)][static_cast<size_t>(n)];
      if (final_cell.value >= kInf) {
        continue;
      }

      // Reconstruct and price with the full performance model.
      std::vector<std::pair<int, int>> plan;  // (first_op, option)
      int i = n;
      for (int s = S; s >= 1; --s) {
        const Cell& cell = f[static_cast<size_t>(s)][static_cast<size_t>(i)];
        plan.emplace_back(cell.prev_i, cell.option);
        i = cell.prev_i;
      }
      std::reverse(plan.begin(), plan.end());

      ParallelConfig config;
      config.set_microbatch_size(mbs);
      for (size_t s = 0; s < plan.size(); ++s) {
        const auto [first_op, oi] = plan[s];
        const int end_op =
            s + 1 < plan.size() ? plan[s + 1].first : n;
        StageConfig stage;
        stage.first_op = first_op;
        stage.num_ops = end_op - first_op;
        stage.num_devices = mesh;
        const Option& o = opts[static_cast<size_t>(oi)];
        stage.SetUniformParallelism(graph, o.tp, mesh / o.tp);
        if (o.recompute) {
          for (OpParallel& setting : stage.ops) {
            setting.recompute = true;
          }
        }
        config.AddStage(std::move(stage));
      }
      if (!config.Validate(graph, cluster).ok()) {
        continue;
      }
      const PerfResult perf = model.Evaluate(config);
      if (perf.oom) {
        continue;
      }
      if (!result.found || perf.BetterThan(result.best.perf)) {
        result.found = true;
        result.best.config = std::move(config);
        result.best.perf = perf;
      }
    }
  }

  result.search_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace aceso
