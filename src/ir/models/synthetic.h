// Synthetic random-model generator.
//
// Produces structurally valid operator chains with randomized kinds, sizes,
// tensor-parallel classes and partition limits. Used by the property tests
// to fuzz the configuration validator, the performance model, the search,
// and the runtime far outside the model zoo's regular structures.

#ifndef SRC_IR_MODELS_SYNTHETIC_H_
#define SRC_IR_MODELS_SYNTHETIC_H_

#include <cstdint>

#include "src/common/rng.h"
#include "src/ir/op_graph.h"

namespace aceso {
namespace models {

struct SyntheticModelOptions {
  int min_ops = 8;
  int max_ops = 120;
  // Upper bounds for randomized per-op quantities.
  double max_fwd_gflops = 200.0;
  int64_t max_param_mbytes = 256;
  int64_t max_activation_mbytes = 128;
  int64_t max_batch = 512;
};

// Generates a random model; deterministic for a given RNG state.
OpGraph SyntheticModel(Rng& rng, const SyntheticModelOptions& options = {});

}  // namespace models
}  // namespace aceso

#endif  // SRC_IR_MODELS_SYNTHETIC_H_
