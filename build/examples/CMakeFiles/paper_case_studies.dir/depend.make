# Empty dependencies file for paper_case_studies.
# This may be replaced when dependencies are built.
