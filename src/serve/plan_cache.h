// The cross-request plan cache of the planning daemon (DESIGN.md §14, §16,
// §17).
//
// Keyed by PlanCacheKey — the composed semantic fingerprint of (model IR,
// cluster spec, answer-determining SearchOptions). Because fixed-seed
// searches under a deterministic budget are bit-reproducible, two requests
// with equal keys can only produce the same plan, so a hit replays the
// stored response payload without re-entering AcesoSearch at all.
//
// Values are the *pre-serialized* payload JSON (BuildPlanPayload) behind a
// `shared_ptr<const string>`: immutable, and shared by reference all the
// way into the HTTP connection's writev iovec, so a cache hit constructs
// no JSON and copies no payload bytes (zero-serialization, DESIGN.md §16).
// Each entry also holds a small set of *derived* payloads — re-renderings
// of the entry keyed by a variant hash (e.g. a budget-sweep's budget list)
// — so repeat sweeps against a cached frontier skip re-serialization too.
//
// Beside the exact LRU sits a *similarity index* (DESIGN.md §17): entries
// whose search adopted a plan register it under a model-family × cluster-
// family fingerprint, and a cache miss probes its family bucket for the
// nearest neighbor — scored by normalized layer-count, device-count, and
// memory-budget deltas — whose plan the serving layer adapts into a search
// seed (src/core/seed_adapt.h). Neighbor plans ride the LRU: eviction or
// refresh of the exact entry unhooks its neighbor registration.
//
// LRU with a fixed entry capacity; thread-safe (one mutex — the cache sits
// on the request admission path, not inside any search loop). Counters
// follow the repo's stats idiom (monotonic, operator- for deltas).

#ifndef SRC_SERVE_PLAN_CACHE_H_
#define SRC_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/hash.h"
#include "src/config/parallel_config.h"

namespace aceso {
namespace serve {

struct PlanCacheOptions {
  // Max entries; 0 disables caching (every Get is a miss and Put is a
  // no-op), which keeps the daemon's cache=off mode trivial.
  size_t capacity = 64;
  // Max derived (per-entry variant) payloads kept per entry, oldest dropped
  // first; drops count toward derived_evictions.
  size_t max_derived_payloads = 8;
};

struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t inserts = 0;
  int64_t evictions = 0;
  // Derived-payload (per-entry variant) traffic, e.g. budget sweeps.
  int64_t derived_hits = 0;
  int64_t derived_misses = 0;
  int64_t derived_inserts = 0;
  // Variants dropped by the per-entry cap (PlanCacheOptions::
  // max_derived_payloads), not by entry eviction.
  int64_t derived_evictions = 0;
  // Similarity-index traffic: FindNeighbor calls, and the subset that
  // returned a registered neighbor plan.
  int64_t neighbor_probes = 0;
  int64_t neighbor_hits = 0;

  PlanCacheStats operator-(const PlanCacheStats& other) const {
    PlanCacheStats d;
    d.hits = hits - other.hits;
    d.misses = misses - other.misses;
    d.inserts = inserts - other.inserts;
    d.evictions = evictions - other.evictions;
    d.derived_hits = derived_hits - other.derived_hits;
    d.derived_misses = derived_misses - other.derived_misses;
    d.derived_inserts = derived_inserts - other.derived_inserts;
    d.derived_evictions = derived_evictions - other.derived_evictions;
    d.neighbor_probes = neighbor_probes - other.neighbor_probes;
    d.neighbor_hits = neighbor_hits - other.neighbor_hits;
    return d;
  }
};

// One cached outcome: the shared response payload plus the headline numbers
// the daemon logs without re-parsing its own JSON.
struct CachedPlan {
  std::shared_ptr<const std::string> payload_json;
  bool found = false;
  double iteration_time = 0.0;
};

// A plan registered with the similarity index: the adopted configuration
// plus the request features the nearest-neighbor score compares. The config
// is shared and immutable — probes hand it out by reference, adaptation
// copies-on-write.
struct NeighborPlan {
  std::shared_ptr<const ParallelConfig> config;
  int num_ops = 0;
  int num_gpus = 0;
  // Per-device memory budget the plan was searched under (0 = device
  // capacity).
  int64_t memory_budget_bytes = 0;
  double iteration_time = 0.0;
};

class PlanCache {
 public:
  explicit PlanCache(PlanCacheOptions options) : options_(options) {}
  // Entry-capacity-only convenience (derived cap stays at the default).
  explicit PlanCache(size_t capacity)
      : PlanCache(PlanCacheOptions{.capacity = capacity}) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Looks up `key`, refreshing its LRU position on a hit.
  std::optional<CachedPlan> Get(uint64_t key);

  // Inserts (or refreshes) `key`. Evicts the least-recently-used entry when
  // over capacity. Refreshing drops the entry's derived payloads and its
  // neighbor registration (both were rendered from the replaced payload).
  void Put(uint64_t key, CachedPlan plan);

  // Derived payloads: immutable re-renderings of the entry identified by
  // (key, variant). A hit refreshes the entry's LRU position; a miss on a
  // *present* entry counts toward derived_misses (a miss on an absent entry
  // is just nullptr — the caller has no base payload to derive from either).
  std::shared_ptr<const std::string> GetDerived(uint64_t key,
                                                uint64_t variant);
  // Attaches a derived payload to an existing entry (no-op when the entry
  // has been evicted). At most options.max_derived_payloads variants are
  // kept per entry, oldest dropped first (derived_evictions counts drops).
  void PutDerived(uint64_t key, uint64_t variant,
                  std::shared_ptr<const std::string> payload);

  // Registers `plan` with the similarity index under `family`, attached to
  // the existing exact entry for `key` (no-op when the entry has been
  // evicted — a neighbor plan never outlives its exact entry).
  void AttachNeighbor(uint64_t key, uint64_t family, NeighborPlan plan);

  // Probes family `family` for the registered plan nearest to the request
  // features (normalized |Δops| + |Δgpus| + |Δbudget|; a budget of 0 means
  // device capacity and scores 0 against 0, a full penalty against any
  // explicit budget). Skips the exact entry `exclude_key` — a neighbor probe
  // only runs on a miss, but the runner's own earlier generation may still
  // be registered. Deterministic: strictly-better score wins, ties keep the
  // earliest-registered plan. Read-only (no LRU refresh).
  std::optional<NeighborPlan> FindNeighbor(uint64_t family,
                                           uint64_t exclude_key, int num_ops,
                                           int num_gpus,
                                           int64_t memory_budget_bytes);

  size_t size() const;
  size_t capacity() const { return options_.capacity; }
  size_t max_derived_payloads() const { return options_.max_derived_payloads; }
  PlanCacheStats stats() const;

 private:
  struct Entry {
    uint64_t key = 0;
    CachedPlan plan;
    // Small, ordered oldest→newest; linear scan beats a map at this size.
    std::vector<std::pair<uint64_t, std::shared_ptr<const std::string>>>
        derived;
    // Similarity-index registration (nullopt = not registered). `family` is
    // only meaningful when `neighbor` is set.
    uint64_t family = 0;
    std::optional<NeighborPlan> neighbor;
  };

  // Removes `entry`'s neighbor registration from its family bucket (no-op
  // when unregistered). Caller holds mu_.
  void UnhookNeighborLocked(const Entry& entry);

  const PlanCacheOptions options_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator, IdentityHash>
      index_;
  // family fingerprint -> keys of registered entries, registration order.
  std::unordered_map<uint64_t, std::vector<uint64_t>, IdentityHash> families_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t inserts_ = 0;
  int64_t evictions_ = 0;
  int64_t derived_hits_ = 0;
  int64_t derived_misses_ = 0;
  int64_t derived_inserts_ = 0;
  int64_t derived_evictions_ = 0;
  int64_t neighbor_probes_ = 0;
  int64_t neighbor_hits_ = 0;
};

}  // namespace serve
}  // namespace aceso

#endif  // SRC_SERVE_PLAN_CACHE_H_
