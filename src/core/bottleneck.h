// Heuristic-1: bottleneck identification (§3.1).
//
//   "When the configuration is out-of-memory, the stage with the largest
//    memory consumption is the bottleneck. Otherwise, the stage with the
//    longest execution time is the bottleneck."
//
// The search may exhaust the primary bottleneck's options, so this module
// returns the full priority-ordered list (primary first, then secondary
// bottlenecks, §3.2.3), each annotated with the resources to alleviate in
// Heuristic-2's "highest consumption proportion first" order.

#ifndef SRC_CORE_BOTTLENECK_H_
#define SRC_CORE_BOTTLENECK_H_

#include <vector>

#include "src/cost/resource_usage.h"

namespace aceso {

struct Bottleneck {
  int stage = 0;
  // True when this bottleneck is memory pressure (OOM config); false when it
  // is the execution-time bottleneck.
  bool memory_bound = false;
  // Resources to alleviate, highest consumption proportion first.
  std::vector<Resource> resources;
};

// The ordered bottleneck list for a configuration's evaluation.
std::vector<Bottleneck> OrderedBottlenecks(const PerfResult& perf);

}  // namespace aceso

#endif  // SRC_CORE_BOTTLENECK_H_
