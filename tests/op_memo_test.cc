#include "src/cost/op_memo.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "src/cost/perf_model.h"

namespace aceso {
namespace {

OpBreakdown MakeBreakdown(double seed) {
  OpBreakdown b;
  b.fwd_kernel = seed;
  b.bwd_kernel = 2.0 * seed;
  b.fwd_comm = 0.25 * seed;
  b.bwd_comm = 0.5 * seed;
  b.dp_sync = 0.125 * seed;
  b.stored_bytes = static_cast<int64_t>(seed * 1024);
  b.param_bytes = static_cast<int64_t>(seed * 2048);
  b.optimizer_bytes = static_cast<int64_t>(seed * 4096);
  b.workspace_bytes = static_cast<int64_t>(seed * 512);
  b.transient_bytes = static_cast<int64_t>(seed * 256);
  b.recompute = static_cast<int64_t>(seed) % 2 == 1;
  return b;
}

TEST(OpMemoTest, LookupMissesOnEmptyTable) {
  OpBreakdownMemo memo;
  EXPECT_EQ(memo.Lookup(123), nullptr);
  EXPECT_EQ(memo.stats().misses, 1);
  EXPECT_EQ(memo.stats().hits, 0);
}

TEST(OpMemoTest, InsertThenLookupReturnsSameBits) {
  OpBreakdownMemo memo;
  const OpBreakdown value = MakeBreakdown(3.0);
  const OpBreakdown* published = memo.Insert(77, value);
  ASSERT_NE(published, nullptr);
  const OpBreakdown* hit = memo.Lookup(77);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit, published);  // stable pointer
  EXPECT_EQ(hit->fwd_kernel, value.fwd_kernel);
  EXPECT_EQ(hit->bwd_kernel, value.bwd_kernel);
  EXPECT_EQ(hit->stored_bytes, value.stored_bytes);
  EXPECT_EQ(hit->recompute, value.recompute);
  EXPECT_EQ(memo.stats().hits, 1);
  EXPECT_EQ(memo.stats().entries, 1);
}

TEST(OpMemoTest, FirstWriterWins) {
  OpBreakdownMemo memo;
  const OpBreakdown* first = memo.Insert(9, MakeBreakdown(1.0));
  const OpBreakdown* second = memo.Insert(9, MakeBreakdown(2.0));
  ASSERT_NE(first, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(first, second);
  EXPECT_EQ(second->fwd_kernel, 1.0);
  EXPECT_EQ(memo.stats().entries, 1);
}

TEST(OpMemoTest, DisabledMemoNeverStoresOrCounts) {
  OpMemoOptions options;
  options.enabled = false;
  OpBreakdownMemo memo(options);
  EXPECT_EQ(memo.Insert(1, MakeBreakdown(1.0)), nullptr);
  EXPECT_EQ(memo.Lookup(1), nullptr);
  const OpMemoStats stats = memo.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
  EXPECT_EQ(stats.entries, 0);
}

TEST(OpMemoTest, DisablingClearsEntries) {
  OpBreakdownMemo memo;
  memo.Insert(5, MakeBreakdown(1.0));
  EXPECT_EQ(memo.stats().entries, 1);
  memo.set_enabled(false);
  EXPECT_EQ(memo.stats().entries, 0);
  memo.set_enabled(true);
  EXPECT_EQ(memo.Lookup(5), nullptr);
}

TEST(OpMemoTest, DropsInsertsAtOccupancyCap) {
  OpMemoOptions options;
  options.capacity = 64;  // minimum table; cap at 56 entries (7/8)
  OpBreakdownMemo memo(options);
  int64_t published = 0;
  for (uint64_t key = 1; key <= 64; ++key) {
    if (memo.Insert(key * 0x9E3779B97F4A7C15ULL, MakeBreakdown(1.0)) !=
        nullptr) {
      ++published;
    }
  }
  const OpMemoStats stats = memo.stats();
  EXPECT_EQ(stats.entries, published);
  EXPECT_LE(stats.entries, 56);
  EXPECT_GT(stats.inserts_dropped, 0);
  // Published entries stay retrievable even with the table saturated.
  const OpBreakdown* hit = memo.Lookup(0x9E3779B97F4A7C15ULL);
  ASSERT_NE(hit, nullptr);
}

TEST(OpMemoTest, ConcurrentInsertersPublishOneValuePerKey) {
  OpBreakdownMemo memo;
  constexpr int kKeys = 64;
  std::vector<std::thread> threads;
  std::vector<int> mismatches(8, 0);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&memo, &mismatches, t] {
      for (int rep = 0; rep < 50; ++rep) {
        for (int k = 1; k <= kKeys; ++k) {
          const uint64_t key = static_cast<uint64_t>(k) * 0x517CC1B7ULL;
          // Every writer derives the same value for a key, mirroring the
          // pure-function contract of the perf-model's memo usage.
          const OpBreakdown* got = memo.Lookup(key);
          if (got == nullptr) {
            got = memo.Insert(key, MakeBreakdown(static_cast<double>(k)));
          }
          if (got != nullptr &&
              got->fwd_kernel != static_cast<double>(k)) {
            ++mismatches[static_cast<size_t>(t)];
          }
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  for (int t = 0; t < 8; ++t) {
    EXPECT_EQ(mismatches[static_cast<size_t>(t)], 0) << "thread " << t;
  }
  EXPECT_EQ(memo.stats().entries, kKeys);
}

}  // namespace
}  // namespace aceso
