#include "src/common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace aceso {
namespace {

TEST(FnvHashTest, EmptyStringIsOffsetBasis) {
  EXPECT_EQ(FnvHashString(""), kFnvOffsetBasis);
}

TEST(FnvHashTest, KnownVector) {
  // FNV-1a 64-bit of "a" is a published constant.
  EXPECT_EQ(FnvHashString("a"), 0xAF63DC4C8601EC8CULL);
}

TEST(FnvHashTest, DifferentStringsDiffer) {
  EXPECT_NE(FnvHashString("abc"), FnvHashString("abd"));
  EXPECT_NE(FnvHashString("abc"), FnvHashString("acb"));
}

TEST(FnvHashTest, SeedChaining) {
  const uint64_t h1 = FnvHashString("ab");
  const uint64_t h2 = FnvHashString("b", FnvHashString("a"));
  EXPECT_EQ(h1, h2);
}

TEST(HashCombineTest, OrderDependent) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

TEST(HasherTest, FieldOrderMatters) {
  Hasher a;
  a.Add(1).Add(2);
  Hasher b;
  b.Add(2).Add(1);
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(HasherTest, MixedTypes) {
  Hasher h;
  h.Add(uint64_t{7}).Add(-3).Add(true).Add(2.5).Add(std::string_view("x"));
  Hasher same;
  same.Add(uint64_t{7}).Add(-3).Add(true).Add(2.5).Add(std::string_view("x"));
  EXPECT_EQ(h.Digest(), same.Digest());
}

TEST(HasherTest, DoubleBitPatternDistinguished) {
  Hasher a;
  a.Add(0.0);
  Hasher b;
  b.Add(1.0);
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(HasherTest, ManyInputsFewCollisions) {
  std::set<uint64_t> digests;
  for (int i = 0; i < 10000; ++i) {
    Hasher h;
    h.Add(i).Add(i * 3);
    digests.insert(h.Digest());
  }
  EXPECT_EQ(digests.size(), 10000u);
}

}  // namespace
}  // namespace aceso
