// Pipeline schedules: the per-stage execution order of microbatch
// forward/backward passes.
//
// Aceso's performance model and runtime assume 1F1B (as the paper does,
// following PipeDream-flush/Megatron); GPipe's all-forward-then-all-backward
// order is provided for comparison — it holds every microbatch's activations
// simultaneously, which is exactly the memory behaviour 1F1B exists to
// avoid.

#ifndef SRC_PLAN_SCHEDULE_H_
#define SRC_PLAN_SCHEDULE_H_

#include <utility>
#include <vector>

namespace aceso {

enum class PipelineSchedule {
  k1F1B,   // warmup of (stages - stage) forwards, then alternate (default)
  kGpipe,  // all forwards, then all backwards
};

const char* PipelineScheduleName(PipelineSchedule schedule);

// The local execution order of one stage: (is_forward, microbatch) pairs.
std::vector<std::pair<bool, int>> LocalScheduleOrder(PipelineSchedule schedule,
                                                     int stage, int num_stages,
                                                     int num_microbatches);

// Peak number of microbatches whose activations are live simultaneously on
// `stage` under `schedule` (the multiplier of Eq. 1's activation term).
int PeakInFlightMicrobatches(PipelineSchedule schedule, int stage,
                             int num_stages, int num_microbatches);

}  // namespace aceso

#endif  // SRC_PLAN_SCHEDULE_H_
