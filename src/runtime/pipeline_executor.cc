#include "src/runtime/pipeline_executor.h"

#include <algorithm>
#include <string>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/plan/schedule.h"
#include "src/runtime/allocator_sim.h"
#include "src/runtime/event_sim.h"
#include "src/runtime/trace.h"

namespace aceso {
namespace {

// Deterministic per-task jitter factor.
double Jitter(uint64_t seed, int stage, int microbatch, int phase,
              double stddev) {
  Hasher h;
  h.Add(seed);
  h.Add(stage);
  h.Add(microbatch);
  h.Add(phase);
  Rng rng(h.Digest());
  return std::max(0.5, 1.0 + rng.NextGaussian(0.0, stddev));
}

// Framework overhead per operator launch (Python dispatch, CUDA stream
// bookkeeping). The performance model deliberately ignores it — it is one of
// the real-world effects behind the prediction error of Exp#8.
constexpr double kCpuGapPerOp = 12e-6;

// Per-stage aggregate durations derived from the shared stage walk.
struct StageDurations {
  double fwd = 0.0;
  double bwd = 0.0;       // includes recompute replay
  double dp_sync = 0.0;
  double p2p_fwd = 0.0;
  double p2p_bwd = 0.0;
};

StageDurations Aggregate(const StageWalk& walk) {
  StageDurations d;
  for (const OpBreakdown& op : walk.ops) {
    d.fwd += op.fwd_kernel + op.fwd_comm + kCpuGapPerOp;
    // Backward traverses grad-input and grad-weight kernels: ~2x launches.
    d.bwd += op.bwd_kernel + op.bwd_comm + 2.0 * kCpuGapPerOp;
    if (op.recompute) {
      d.bwd += op.fwd_kernel + kCpuGapPerOp;
    }
    d.dp_sync += op.dp_sync;
  }
  d.p2p_fwd = walk.p2p_fwd;
  d.p2p_bwd = walk.p2p_bwd;
  return d;
}

// Simulates the memory behaviour of one stage over a full iteration through
// the caching allocator.
StageExecution SimulateStageMemory(const StageWalk& walk, int stage,
                                   int num_stages, int num_microbatches,
                                   int64_t capacity,
                                   PipelineSchedule schedule) {
  StageExecution out;
  CachingAllocatorSim allocator(capacity);

  // Static model state: parameters, gradients and optimizer states live for
  // the whole iteration.
  int64_t static_bytes = 0;
  for (const OpBreakdown& op : walk.ops) {
    static_bytes += op.param_bytes + op.optimizer_bytes;
  }
  const int64_t static_handle = allocator.Alloc(static_bytes);

  // In 1F1B at most (num_stages - stage) microbatches are in flight; beyond
  // the warmup the order frees one microbatch per forward.
  struct LiveMicrobatch {
    std::vector<int64_t> handles;
  };
  std::vector<LiveMicrobatch> live(static_cast<size_t>(num_microbatches));

  const auto order =
      LocalScheduleOrder(schedule, stage, num_stages, num_microbatches);
  for (const auto& [is_fwd, m] : order) {
    if (allocator.oom()) {
      break;
    }
    if (is_fwd) {
      LiveMicrobatch& mb = live[static_cast<size_t>(m)];
      mb.handles.push_back(allocator.Alloc(walk.boundary_bytes));
      for (const OpBreakdown& op : walk.ops) {
        if (op.stored_bytes > 0) {
          // The kernel writes its output into the stored tensor; only the
          // pure workspace is transient.
          mb.handles.push_back(allocator.Alloc(op.stored_bytes));
          if (op.transient_bytes > 0) {
            allocator.Free(allocator.Alloc(op.transient_bytes));
          }
        } else {
          // Recomputed (or output-free) op: the output itself is transient —
          // it lives until the next op consumes it.
          allocator.Free(allocator.Alloc(op.workspace_bytes));
        }
      }
    } else {
      // Recompute replay re-allocates transient buffers during backward.
      for (const OpBreakdown& op : walk.ops) {
        if (op.recompute) {
          allocator.Free(allocator.Alloc(op.workspace_bytes));
        }
      }
      LiveMicrobatch& mb = live[static_cast<size_t>(m)];
      for (auto it = mb.handles.rbegin(); it != mb.handles.rend(); ++it) {
        allocator.Free(*it);
      }
      mb.handles.clear();
    }
  }
  allocator.Free(static_handle);

  out.peak_allocated_bytes = allocator.peak_allocated();
  out.peak_reserved_bytes = allocator.peak_reserved();
  out.oom = allocator.oom();
  return out;
}

}  // namespace

PipelineExecutor::PipelineExecutor(const PerformanceModel* model)
    : model_(model) {
  ACESO_CHECK(model != nullptr);
}

ExecutionResult PipelineExecutor::Execute(const ParallelConfig& config,
                                          const ExecutionOptions& options) const {
  const OpGraph& graph = model_->graph();
  const int p = config.num_stages();
  const int n_mb = static_cast<int>(config.NumMicrobatches(graph));

  ExecutionResult result;
  result.stages.resize(static_cast<size_t>(p));

  std::vector<StageWalk> walks;
  std::vector<StageDurations> durations;
  walks.reserve(static_cast<size_t>(p));
  durations.reserve(static_cast<size_t>(p));
  for (int s = 0; s < p; ++s) {
    walks.push_back(model_->WalkStage(config, s));
    durations.push_back(Aggregate(walks.back()));
  }

  // --- build the 1F1B task graph ---
  EventSimulator sim;
  std::vector<ResourceId> gpus(static_cast<size_t>(p));
  std::vector<ResourceId> links(static_cast<size_t>(p), kNoResource);
  for (int s = 0; s < p; ++s) {
    // One resource per stage: devices inside a stage are symmetric (§3.1),
    // so the simulation tracks one representative GPU per stage.
    gpus[static_cast<size_t>(s)] =
        sim.AddResource("stage" + std::to_string(s) + ".gpu");
    if (s > 0) {
      links[static_cast<size_t>(s)] =
          sim.AddResource("stage" + std::to_string(s) + ".link");
    }
  }

  auto task_index = [&](int s, int m, bool fwd) {
    return (static_cast<int64_t>(s) * n_mb + m) * 2 + (fwd ? 0 : 1);
  };
  std::vector<TaskId> compute(static_cast<size_t>(p) * n_mb * 2, -1);

  // Compute tasks in each stage's 1F1B order (serialized via the stage GPU
  // resource plus an explicit chain so the schedule is exactly 1F1B).
  for (int s = 0; s < p; ++s) {
    TaskId prev = -1;
    for (const auto& [is_fwd, m] :
         LocalScheduleOrder(options.schedule, s, p, n_mb)) {
      const StageDurations& d = durations[static_cast<size_t>(s)];
      const double base = is_fwd ? d.fwd : d.bwd;
      const double duration =
          base * Jitter(options.seed, s, m, is_fwd ? 0 : 1, options.run_jitter);
      const TaskId id = sim.AddTask(
          (is_fwd ? "F" : "B") + std::to_string(s) + "." + std::to_string(m),
          duration, gpus[static_cast<size_t>(s)]);
      compute[static_cast<size_t>(task_index(s, m, is_fwd))] = id;
      if (prev >= 0) {
        sim.AddDependency(prev, id);
      }
      prev = id;
    }
    // Data-parallel gradient sync after the stage's last backward.
    const double sync = durations[static_cast<size_t>(s)].dp_sync *
                        Jitter(options.seed, s, n_mb, 2, options.run_jitter);
    if (sync > 0.0 && prev >= 0) {
      const TaskId id = sim.AddTask("sync" + std::to_string(s), sync,
                                    gpus[static_cast<size_t>(s)]);
      sim.AddDependency(prev, id);
    }
  }

  // Inter-stage transfers: activations forward, gradients backward, sharing
  // one link resource per stage boundary.
  for (int s = 1; s < p; ++s) {
    const StageDurations& d = durations[static_cast<size_t>(s)];
    for (int m = 0; m < n_mb; ++m) {
      if (d.p2p_fwd > 0.0) {
        const double duration =
            d.p2p_fwd * Jitter(options.seed, s, m, 3, options.run_jitter);
        const TaskId send = sim.AddTask(
            "sendF" + std::to_string(s) + "." + std::to_string(m), duration,
            links[static_cast<size_t>(s)]);
        sim.AddDependency(
            compute[static_cast<size_t>(task_index(s - 1, m, true))], send);
        sim.AddDependency(
            send, compute[static_cast<size_t>(task_index(s, m, true))]);
      }
      if (d.p2p_bwd > 0.0) {
        const double duration =
            d.p2p_bwd * Jitter(options.seed, s, m, 4, options.run_jitter);
        const TaskId send = sim.AddTask(
            "sendB" + std::to_string(s) + "." + std::to_string(m), duration,
            links[static_cast<size_t>(s)]);
        sim.AddDependency(
            compute[static_cast<size_t>(task_index(s, m, false))], send);
        sim.AddDependency(
            send, compute[static_cast<size_t>(task_index(s - 1, m, false))]);
      }
    }
  }

  auto makespan = sim.Run();
  ACESO_CHECK(makespan.ok()) << makespan.status().ToString();
  result.iteration_seconds = *makespan;
  if (!options.chrome_trace_path.empty()) {
    const Status status = WriteChromeTrace(sim, options.chrome_trace_path);
    if (!status.ok()) {
      ACESO_LOG(WARNING) << "trace export failed: " << status.ToString();
    }
  }
  if (options.render_timeline) {
    result.ascii_timeline = RenderAsciiTimeline(sim);
  }
  for (int s = 0; s < p; ++s) {
    result.stages[static_cast<size_t>(s)].gpu_busy_seconds =
        sim.ResourceBusySeconds(gpus[static_cast<size_t>(s)]);
  }

  // --- memory ---
  if (options.simulate_memory) {
    for (int s = 0; s < p; ++s) {
      StageExecution mem = SimulateStageMemory(
          walks[static_cast<size_t>(s)], s, p, n_mb,
          model_->cluster().gpu.memory_bytes, options.schedule);
      StageExecution& out = result.stages[static_cast<size_t>(s)];
      out.peak_allocated_bytes = mem.peak_allocated_bytes;
      out.peak_reserved_bytes = mem.peak_reserved_bytes;
      out.oom = mem.oom;
      result.oom = result.oom || mem.oom;
    }
  }
  return result;
}

double PipelineExecutor::EffectiveTflopsPerGpu(
    const ExecutionResult& result) const {
  const OpGraph& graph = model_->graph();
  const double total_flops = 3.0 * graph.TotalFwdFlops() *
                             static_cast<double>(graph.global_batch_size());
  const double gpus = static_cast<double>(model_->cluster().num_gpus());
  if (result.iteration_seconds <= 0.0) {
    return 0.0;
  }
  return total_flops / result.iteration_seconds / gpus / 1e12;
}

}  // namespace aceso
