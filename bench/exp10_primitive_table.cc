// Table 1 verification — reconfiguration primitives and their resource
// impacts.
//
// Applies each primitive, in isolation (no recompute attachment), to a
// reference configuration and measures the direction of change of the
// bottleneck stage's *per-iteration* resource consumption:
//
//   computation  = (kernel + recompute time per microbatch) x #microbatches
//   communication= (tp/reshard/p2p per microbatch) x #microbatches + dp sync
//   memory       = peak bytes per device
//
// For the tp/dp concurrency primitives the canonical variant is the
// device-migration one (Figure 5(c)(d) show explicit device
// re-arrangement); in-place tp<->dp swaps are an additional capability.
//
// References: most primitives are measured on GPT-3 1.3B over 16 GPUs in 4
// stages with devices {8,4,2,2} and per-stage parallelism (dp8, tp4, dp2,
// tp2), mbs=16, every second op recomputed — a point where every primitive
// has a valid canonical variant and slack in every direction. The
// microbatch primitives use a small-microbatch reference (GPT-3 0.35B,
// 2 stages, tp8, mbs=2), where the kernel-efficiency effect that drives
// their computation trend is strongest.

#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"

namespace aceso {
namespace bench {
namespace {

char TrendChar(Trend trend) {
  switch (trend) {
    case Trend::kIncrease:
      return '+';
    case Trend::kDecrease:
      return '-';
    case Trend::kUnchanged:
      return '=';
  }
  return '?';
}

std::string Direction(double after, double before) {
  const double eps = 0.005 * std::max(std::abs(before), 1e-12);
  if (std::abs(after - before) <= eps) {
    return "=";
  }
  return after > before ? "+" : "-";
}

struct Consumption {
  double comp = 0.0;
  double comm = 0.0;
  double mem = 0.0;
};

Consumption StageConsumption(const PerfResult& perf, int stage,
                             int64_t num_microbatches) {
  const StageUsage& u = perf.stages[static_cast<size_t>(stage)];
  Consumption c;
  const double n = static_cast<double>(num_microbatches);
  c.comp = (u.comp_time + u.recompute_time) * n;
  c.comm = u.comm_time * n + u.dp_sync_time;
  c.mem = static_cast<double>(u.memory_bytes);
  return c;
}

}  // namespace
}  // namespace bench
}  // namespace aceso

int main() {
  using namespace aceso;
  using namespace aceso::bench;
  PrintHeader("Table 1: reconfiguration primitives",
              "each primitive trades resources as documented: no primitive "
              "decreases everything");

  Workload workload("gpt3-1.3b", 16);
  auto maybe = MakeEvenConfig(workload.graph(), workload.cluster(), 4, 8);
  ACESO_CHECK(maybe.ok());
  ParallelConfig config = *maybe;
  config.set_microbatch_size(16);
  const int devices[4] = {8, 4, 2, 2};
  const int tps[4] = {1, 4, 1, 2};
  for (int s = 0; s < 4; ++s) {
    StageConfig& stage = config.MutableStage(s);
    stage.num_devices = devices[s];
    stage.SetUniformParallelism(workload.graph(), tps[s],
                                devices[s] / tps[s]);
  }
  for (int i = 0; i < workload.graph().num_ops(); i += 2) {
    config.MutableOpSettings(i).recompute = true;
  }
  // Stage 2's data-parallel ops start ZeRO-sharded so dec-zero has work.
  for (OpParallel& setting : config.MutableStage(2).ops) {
    if (setting.dp > 1) {
      setting.zero_opt = true;
    }
  }
  ACESO_CHECK(config.Validate(workload.graph(), workload.cluster()).ok());
  std::printf("reference A: %s\n", config.ShortString().c_str());

  Workload small_workload("gpt3-0.35b", 16);
  auto small_maybe =
      MakeEvenConfig(small_workload.graph(), small_workload.cluster(), 2, 2);
  ACESO_CHECK(small_maybe.ok());
  ParallelConfig small_config = *small_maybe;
  small_config.set_microbatch_size(2);
  for (int s = 0; s < 2; ++s) {
    StageConfig& stage = small_config.MutableStage(s);
    stage.SetUniformParallelism(small_workload.graph(), 8, 1);
  }
  ACESO_CHECK(
      small_config.Validate(small_workload.graph(), small_workload.cluster())
          .ok());
  std::printf("reference B (mbs primitives): %s\n\n",
              small_config.ShortString().c_str());

  const PerfResult before = workload.model().Evaluate(config);
  const PerfResult small_before = small_workload.model().Evaluate(small_config);

  TablePrinter table({"primitive", "mechanism", "table", "measured",
                      "candidate"});
  for (const PrimitiveInfo& info : PrimitiveTable()) {
    // Targets and canonical-variant filters: device-gaining concurrency
    // primitives act on the dp-only 2-GPU stage 2 (donor: stage 1);
    // dec-dp donates from the dp8 stage 0; dec-tp donates from the tp4
    // stage 1; everything else targets stage 1.
    // Per-primitive target stage and canonical-variant selection.
    const bool is_mbs = info.kind == PrimitiveKind::kIncMbs ||
                        info.kind == PrimitiveKind::kDecMbs;
    Workload& wl = is_mbs ? small_workload : workload;
    const ParallelConfig& ref = is_mbs ? small_config : config;
    const PerfResult& ref_perf = is_mbs ? small_before : before;

    int stage = 1;
    std::string filter;
    bool prefer_biggest_move = false;
    switch (info.kind) {
      case PrimitiveKind::kIncOpCount: {
        // Pull ops into the idlest stage: the move counts are then sized by
        // a positive load gap.
        double best = 1e300;
        for (size_t i = 0; i < ref_perf.stages.size(); ++i) {
          if (ref_perf.stages[i].stage_time < best) {
            best = ref_perf.stages[i].stage_time;
            stage = static_cast<int>(i);
          }
        }
        prefer_biggest_move = true;
        break;
      }
      case PrimitiveKind::kDecOpCount:
        stage = ref_perf.slowest_stage;
        prefer_biggest_move = true;
        break;
      case PrimitiveKind::kIncDp:
      case PrimitiveKind::kIncTp:
        stage = 2;
        filter = "gpu";
        break;
      case PrimitiveKind::kDecDp:
        stage = 0;
        filter = "partner dec-dp";
        break;
      case PrimitiveKind::kDecTp:
        stage = 1;
        filter = "partner dec-tp";
        break;
      case PrimitiveKind::kIncZero:
        stage = 0;  // the dp8 stage, optimizer states unsharded
        break;
      case PrimitiveKind::kDecZero:
        stage = 2;  // the dp2 stage seeded with ZeRO enabled
        break;
      default:
        stage = is_mbs ? 0 : 1;
        break;
    }
    auto candidates = GeneratePrimitiveCandidates(
        wl.model(), ref, ref_perf, info.kind, stage,
        /*attach_recompute_fix=*/false);
    const Candidate* chosen = nullptr;
    if (prefer_biggest_move) {
      // The 1-op probes are dominated by boundary-activation effects; the
      // sized moves show the primitive's real direction.
      int best_delta = 0;
      for (const Candidate& c : candidates) {
        if (stage >= c.config.num_stages()) {
          continue;
        }
        const int delta = std::abs(c.config.stage(stage).num_ops -
                                   ref.stage(stage).num_ops);
        if (delta > best_delta) {
          best_delta = delta;
          chosen = &c;
        }
      }
    } else {
      for (const Candidate& c : candidates) {
        if (filter.empty() ||
            c.description.find(filter) != std::string::npos) {
          chosen = &c;
          break;
        }
      }
    }
    if (chosen == nullptr && !candidates.empty()) {
      chosen = &candidates.front();
    }

    const std::string expected = std::string(1, TrendChar(info.computation)) +
                                 TrendChar(info.communication) +
                                 TrendChar(info.memory);
    std::string measured = "n/a";
    std::string description = "(no applicable candidate)";
    if (chosen != nullptr) {
      const PerfResult after = wl.model().Evaluate(chosen->config);
      const int after_stage =
          std::min(stage, static_cast<int>(after.stages.size()) - 1);
      const Consumption b =
          StageConsumption(ref_perf, stage, ref.NumMicrobatches(wl.graph()));
      const Consumption a = StageConsumption(
          after, after_stage, chosen->config.NumMicrobatches(wl.graph()));
      measured = Direction(a.comp, b.comp) + Direction(a.comm, b.comm) +
                 Direction(a.mem, b.mem);
      description = chosen->description;
    }
    table.AddRow({PrimitiveName(info.kind), info.mechanism, expected, measured,
                  description});
  }
  table.Print(std::cout);
  std::printf(
      "\n(comp/comm/mem direction triplets; '+' increase, '-' decrease, "
      "'=' within 0.5%%)\n"
      "Secondary effects the qualitative table omits show up as small "
      "deviations:\nop moves change the stage's p2p boundary bytes (comm "
      "+/- instead of =),\nmicrobatch changes shift collective bucket sizes, "
      "and a single +1op recompute\nprobe can fall below the 0.5%% "
      "threshold.\n");
  return 0;
}
