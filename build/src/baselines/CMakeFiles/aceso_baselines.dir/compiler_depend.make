# Empty compiler generated dependencies file for aceso_baselines.
# This may be replaced when dependencies are built.
