#include "src/profile/profile_db.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/hash.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/text_record.h"

namespace aceso {
namespace {

// Relative standard deviation of simulated per-run timing noise.
constexpr double kRunJitter = 0.02;

// A stable per-key systematic bias (kernel selection, clock effects): the
// database "measures" this consistently, and the runtime simulator sees the
// same bias, so prediction error comes from modelling differences rather
// than raw noise.
double SystematicBias(uint64_t key_hash, double relative_magnitude) {
  // Map hash to [-1, 1] deterministically.
  const double unit =
      static_cast<double>(MixU64(key_hash) >> 11) * 0x1.0p-53 * 2.0 - 1.0;
  return 1.0 + relative_magnitude * unit;
}

int Log2Floor(int64_t v) {
  int l = 0;
  while (v > 1) {
    v >>= 1;
    ++l;
  }
  return l;
}

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

// First snapshot publication waits for this many entries: during the first
// few evaluations the maps churn too fast for a snapshot to pay for itself.
constexpr size_t kSnapshotWarmupEntries = 64;

// Source of per-instance L1 generation tags. The thread-local L1 arrays are
// shared by every ProfileDatabase in the process (tests routinely create
// several), so each entry is tagged with the owning instance's generation
// and only exact (generation, key) matches hit. Starts at 1; tag 0 marks an
// empty L1 slot.
std::atomic<uint64_t> g_db_generation{1};

// Thread-local direct-mapped L1 for the hottest lookups. Sized so the
// working set of one stage walk (a few dozen distinct op keys, a handful of
// collective buckets) fits with room for conflict misses; ~6 KiB per thread.
constexpr size_t kL1OpSlots = 256;
constexpr size_t kL1CommSlots = 128;

struct L1OpEntry {
  uint64_t gen = 0;
  uint64_t key = 0;
  OpMeasurement value;
};

struct L1CommEntry {
  uint64_t gen = 0;
  uint64_t key = 0;
  double value = 0.0;
};

L1OpEntry& L1OpSlot(uint64_t hash) {
  thread_local std::array<L1OpEntry, kL1OpSlots> slots{};
  return slots[static_cast<size_t>(hash) & (kL1OpSlots - 1)];
}

L1CommEntry& L1CommSlot(uint64_t hash) {
  thread_local std::array<L1CommEntry, kL1CommSlots> slots{};
  return slots[static_cast<size_t>(hash) & (kL1CommSlots - 1)];
}

}  // namespace

// Immutable open-addressing view of the memo maps. Built under
// `republish_mu_` from the sharded maps (locking one shard at a time — a
// snapshot may lack entries inserted concurrently with the rebuild; those
// simply fall through to the sharded path) and published with a release
// exchange. Load factor is kept at or below 1/2, so every probe sequence
// terminates at an empty slot. Key 0 is the empty-slot sentinel: an entry
// whose real hash is 0 (improbable for a Hasher digest, but possible) is
// never added and always takes the locked path.
struct ProfileDatabase::Snapshot {
  struct OpSlot {
    uint64_t key = 0;
    OpMeasurement value;
  };
  struct CommSlot {
    uint64_t key = 0;
    double value = 0.0;
  };

  std::vector<OpSlot> ops;
  size_t op_mask = 0;
  std::vector<CommSlot> comms;
  size_t comm_mask = 0;

  static size_t TableSize(size_t entries) {
    return RoundUpPow2(std::max<size_t>(2 * entries, 16));
  }

  void InsertOp(uint64_t key, const OpMeasurement& value) {
    size_t i = static_cast<size_t>(key) & op_mask;
    while (ops[i].key != 0) {
      i = (i + 1) & op_mask;
    }
    ops[i].key = key;
    ops[i].value = value;
  }

  void InsertComm(uint64_t key, double value) {
    size_t i = static_cast<size_t>(key) & comm_mask;
    while (comms[i].key != 0) {
      i = (i + 1) & comm_mask;
    }
    comms[i].key = key;
    comms[i].value = value;
  }

  const OpMeasurement* FindOp(uint64_t key) const {
    if (key == 0 || ops.empty()) {
      return nullptr;
    }
    size_t i = static_cast<size_t>(key) & op_mask;
    while (true) {
      const OpSlot& slot = ops[i];
      if (slot.key == key) {
        return &slot.value;
      }
      if (slot.key == 0) {
        return nullptr;
      }
      i = (i + 1) & op_mask;
    }
  }

  const double* FindComm(uint64_t key) const {
    if (key == 0 || comms.empty()) {
      return nullptr;
    }
    size_t i = static_cast<size_t>(key) & comm_mask;
    while (true) {
      const CommSlot& slot = comms[i];
      if (slot.key == key) {
        return &slot.value;
      }
      if (slot.key == 0) {
        return nullptr;
      }
      i = (i + 1) & comm_mask;
    }
  }
};

uint64_t OpProfileKey::Hash() const {
  Hasher h;
  h.Add(op_signature);
  h.Add(shard_degree);
  h.Add(local_batch);
  h.Add(precision);
  return h.Digest();
}

uint64_t CommProfileKey::Hash() const {
  Hasher h;
  h.Add(kind);
  h.Add(group_size);
  h.Add(crosses_nodes);
  h.Add(log2_bytes);
  // Offset the domain so comm keys never collide with op keys.
  h.Add(uint64_t{0xC0111EC7});
  return h.Digest();
}

SimulatedProfiler::SimulatedProfiler(const ClusterSpec& cluster, uint64_t seed,
                                     int runs_per_measurement)
    : cluster_(cluster), interconnect_(cluster), seed_(seed),
      runs_(runs_per_measurement) {}

OpMeasurement SimulatedProfiler::MeasureOp(const Operator& op,
                                           const OpProfileKey& key) const {
  const double batch = static_cast<double>(key.local_batch);
  const double shards = static_cast<double>(key.shard_degree);
  const double flops = op.fwd_flops * batch / shards;
  // Forward traffic: read input + params shard, write output.
  const int64_t fwd_bytes = static_cast<int64_t>(
      (static_cast<double>(op.in_bytes + op.out_bytes) * batch +
       static_cast<double>(op.param_bytes)) /
      shards);
  const auto precision = static_cast<Precision>(key.precision);
  const double fwd_ideal = cluster_.gpu.ComputeTime(flops, fwd_bytes, precision);
  // Backward: ~2x FLOPs (grad wrt input and wrt weights) and ~2x traffic.
  const double bwd_ideal =
      cluster_.gpu.ComputeTime(2.0 * flops, 2 * fwd_bytes, precision);

  const uint64_t key_hash = key.Hash();
  const double bias = SystematicBias(key_hash ^ seed_, 0.05);

  // Average `runs_` jittered runs, like the paper's 50-run averaging.
  Rng rng(key_hash ^ MixU64(seed_));
  double fwd_sum = 0.0;
  double bwd_sum = 0.0;
  for (int r = 0; r < runs_; ++r) {
    fwd_sum += fwd_ideal * bias * (1.0 + rng.NextGaussian(0.0, kRunJitter));
    bwd_sum += bwd_ideal * bias * (1.0 + rng.NextGaussian(0.0, kRunJitter));
  }
  OpMeasurement m;
  m.fwd_seconds = std::max(fwd_sum / runs_, 1e-9);
  m.bwd_seconds = std::max(bwd_sum / runs_, 1e-9);
  return m;
}

double SimulatedProfiler::MeasureCollective(const CommProfileKey& key) const {
  CommDomain domain;
  domain.size = key.group_size;
  domain.crosses_nodes = key.crosses_nodes;
  const int64_t bytes = int64_t{1} << key.log2_bytes;
  const double ideal = interconnect_.CollectiveTime(
      static_cast<CollectiveKind>(key.kind), bytes, domain);
  const uint64_t key_hash = key.Hash();
  const double bias = SystematicBias(key_hash ^ seed_, 0.08);
  Rng rng(key_hash ^ MixU64(seed_));
  double sum = 0.0;
  for (int r = 0; r < runs_; ++r) {
    sum += ideal * bias * (1.0 + rng.NextGaussian(0.0, kRunJitter));
  }
  return std::max(sum / runs_, 0.0);
}

double SimulatedProfiler::SimulatedMeasurementCost(
    const OpMeasurement& m) const {
  return runs_ * (m.fwd_seconds + m.bwd_seconds);
}

ProfileDatabase::ProfileDatabase(const ClusterSpec& cluster, uint64_t seed)
    : cluster_(cluster),
      profiler_(cluster, seed),
      generation_(g_db_generation.fetch_add(1, std::memory_order_relaxed)) {}

ProfileDatabase::~ProfileDatabase() {
  delete snapshot_.load(std::memory_order_acquire);
  for (const Snapshot* snap : retired_) {
    delete snap;
  }
}

void ProfileDatabase::MaybeRepublish() {
  if (!read_opt_enabled_.load(std::memory_order_relaxed)) {
    return;
  }
  const size_t total = total_entries_.load(std::memory_order_relaxed);
  const size_t published = snapshot_entries_.load(std::memory_order_relaxed);
  if (total < kSnapshotWarmupEntries) {
    return;  // still warming up
  }
  // Geometric growth gate: republish only after ≥25% new entries, so total
  // rebuild work over a search is O(n log n) and retired-snapshot memory is
  // a constant factor of the final table.
  if (published > 0 && total < published + published / 4) {
    return;
  }
  RepublishSnapshot(/*block=*/false);
}

void ProfileDatabase::RepublishSnapshot(bool block) {
  std::unique_lock<std::mutex> lock(republish_mu_, std::defer_lock);
  if (block) {
    lock.lock();
  } else {
    if (!lock.try_lock()) {
      return;  // another thread is already rebuilding
    }
    // Re-check the growth gate: the thread we raced may have just
    // published a snapshot covering our insert.
    const size_t total = total_entries_.load(std::memory_order_relaxed);
    const size_t published = snapshot_entries_.load(std::memory_order_relaxed);
    if (published > 0 && total < published + published / 4) {
      return;
    }
  }

  std::vector<std::pair<uint64_t, OpMeasurement>> ops;
  std::vector<std::pair<uint64_t, double>> comms;
  for (const Shard& shard : shards_) {
    auto shard_lock = LockShard(shard);
    ops.insert(ops.end(), shard.op_entries.begin(), shard.op_entries.end());
    comms.insert(comms.end(), shard.comm_entries.begin(),
                 shard.comm_entries.end());
  }

  auto* snap = new Snapshot;
  snap->ops.resize(Snapshot::TableSize(ops.size()));
  snap->op_mask = snap->ops.size() - 1;
  snap->comms.resize(Snapshot::TableSize(comms.size()));
  snap->comm_mask = snap->comms.size() - 1;
  for (const auto& [key, value] : ops) {
    if (key != 0) {  // 0 is the empty-slot sentinel
      snap->InsertOp(key, value);
    }
  }
  for (const auto& [key, value] : comms) {
    if (key != 0) {
      snap->InsertComm(key, value);
    }
  }

  const Snapshot* old =
      snapshot_.exchange(snap, std::memory_order_acq_rel);
  if (old != nullptr) {
    retired_.push_back(old);
  }
  snapshot_entries_.store(ops.size() + comms.size(),
                          std::memory_order_relaxed);
  republishes_.fetch_add(1, std::memory_order_relaxed);
}

std::unique_lock<std::mutex> ProfileDatabase::LockShard(
    const Shard& shard) const {
  std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    lock_contended_.fetch_add(1, std::memory_order_relaxed);
    lock.lock();
  }
  return lock;
}

OpMeasurement ProfileDatabase::OpTime(const Operator& op, Precision precision,
                                      int shard_degree, int local_batch) {
  OpProfileKey key;
  key.op_signature = op.Signature();
  key.shard_degree = shard_degree;
  key.local_batch = local_batch;
  key.precision = static_cast<int>(precision);
  const uint64_t hash = key.Hash();
  lookups_.fetch_add(1, std::memory_order_relaxed);

  // Lock-free hit path: thread-local L1, then the published snapshot.
  // Published values are immutable, so these return the exact bits the
  // locked path would.
  const bool read_opt = read_opt_enabled_.load(std::memory_order_relaxed);
  const uint64_t gen = generation_.load(std::memory_order_relaxed);
  L1OpEntry& l1 = L1OpSlot(hash);
  if (read_opt) {
    if (l1.gen == gen && l1.key == hash) {
      l1_hits_.fetch_add(1, std::memory_order_relaxed);
      return l1.value;
    }
    if (const Snapshot* snap = snapshot_.load(std::memory_order_acquire)) {
      if (const OpMeasurement* found = snap->FindOp(hash)) {
        snapshot_hits_.fetch_add(1, std::memory_order_relaxed);
        l1 = L1OpEntry{gen, hash, *found};
        return *found;
      }
    }
  }

  Shard& shard = ShardFor(hash);
  {
    auto lock = LockShard(shard);
    auto it = shard.op_entries.find(hash);
    if (it != shard.op_entries.end()) {
      const OpMeasurement found = it->second;
      lock.unlock();
      if (read_opt) {
        l1 = L1OpEntry{gen, hash, found};
      }
      return found;
    }
  }
  // Miss: measure with the shard unlocked (the measurement averages
  // `runs_` simulated runs and is the expensive part — holding the lock
  // here would convoy every concurrent lookup of this shard behind it),
  // then double-check: emplace ignores our value if another filler beat us.
  misses_.fetch_add(1, std::memory_order_relaxed);
  const OpMeasurement m = profiler_.MeasureOp(op, key);
  OpMeasurement published;
  bool fresh = false;
  {
    auto lock = LockShard(shard);
    auto [it, inserted] = shard.op_entries.emplace(hash, m);
    if (inserted) {
      shard.simulated_profiling_seconds +=
          profiler_.SimulatedMeasurementCost(m);
    }
    published = it->second;
    fresh = inserted;
  }
  if (fresh) {
    total_entries_.fetch_add(1, std::memory_order_relaxed);
    MaybeRepublish();
  }
  if (read_opt) {
    l1 = L1OpEntry{gen, hash, published};
  }
  return published;
}

double ProfileDatabase::CollectiveBucketTime(const CommProfileKey& key) {
  const uint64_t hash = key.Hash();
  lookups_.fetch_add(1, std::memory_order_relaxed);

  const bool read_opt = read_opt_enabled_.load(std::memory_order_relaxed);
  const uint64_t gen = generation_.load(std::memory_order_relaxed);
  L1CommEntry& l1 = L1CommSlot(hash);
  if (read_opt) {
    if (l1.gen == gen && l1.key == hash) {
      l1_hits_.fetch_add(1, std::memory_order_relaxed);
      return l1.value;
    }
    if (const Snapshot* snap = snapshot_.load(std::memory_order_acquire)) {
      if (const double* found = snap->FindComm(hash)) {
        snapshot_hits_.fetch_add(1, std::memory_order_relaxed);
        l1 = L1CommEntry{gen, hash, *found};
        return *found;
      }
    }
  }

  Shard& shard = ShardFor(hash);
  {
    auto lock = LockShard(shard);
    auto it = shard.comm_entries.find(hash);
    if (it != shard.comm_entries.end()) {
      const double found = it->second;
      lock.unlock();
      if (read_opt) {
        l1 = L1CommEntry{gen, hash, found};
      }
      return found;
    }
  }
  // Same unlocked-measure + first-writer-wins insert as OpTime.
  misses_.fetch_add(1, std::memory_order_relaxed);
  const double t = profiler_.MeasureCollective(key);
  double published = 0.0;
  bool fresh = false;
  {
    auto lock = LockShard(shard);
    auto [it, inserted] = shard.comm_entries.emplace(hash, t);
    if (inserted) {
      shard.simulated_profiling_seconds += 50 * t;
    }
    published = it->second;
    fresh = inserted;
  }
  if (fresh) {
    total_entries_.fetch_add(1, std::memory_order_relaxed);
    MaybeRepublish();
  }
  if (read_opt) {
    l1 = L1CommEntry{gen, hash, published};
  }
  return published;
}

double ProfileDatabase::CollectiveTime(CollectiveKind kind, int64_t bytes,
                                       const CommDomain& domain) {
  if (domain.size <= 1 || bytes <= 0) {
    return 0.0;
  }
  CommProfileKey key;
  key.kind = static_cast<int>(kind);
  key.group_size = domain.size;
  key.crosses_nodes = domain.crosses_nodes;
  key.log2_bytes = Log2Floor(bytes);
  const double low = CollectiveBucketTime(key);
  const int64_t low_bytes = int64_t{1} << key.log2_bytes;
  if (bytes == low_bytes) {
    return low;
  }
  CommProfileKey high_key = key;
  ++high_key.log2_bytes;
  const double high = CollectiveBucketTime(high_key);
  const double frac = static_cast<double>(bytes - low_bytes) /
                      static_cast<double>(low_bytes);
  return low + (high - low) * frac;
}

size_t ProfileDatabase::NumEntries() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    auto lock = LockShard(shard);
    total += shard.op_entries.size() + shard.comm_entries.size();
  }
  return total;
}

double ProfileDatabase::SimulatedProfilingSeconds() const {
  double total = 0.0;
  for (const Shard& shard : shards_) {
    auto lock = LockShard(shard);
    total += shard.simulated_profiling_seconds;
  }
  return total;
}

ProfileDbStats ProfileDatabase::stats() const {
  ProfileDbStats s;
  s.lookups = lookups_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.lock_contended = lock_contended_.load(std::memory_order_relaxed);
  s.l1_hits = l1_hits_.load(std::memory_order_relaxed);
  s.snapshot_hits = snapshot_hits_.load(std::memory_order_relaxed);
  s.republishes = republishes_.load(std::memory_order_relaxed);
  return s;
}

Status ProfileDatabase::Save(const std::string& path) const {
  std::vector<TextRecord> records;
  for (const Shard& shard : shards_) {
    auto lock = LockShard(shard);
    records.reserve(records.size() + shard.op_entries.size() +
                    shard.comm_entries.size());
    for (const auto& [hash, m] : shard.op_entries) {
      TextRecord rec;
      rec.Set("type", "op");
      rec.SetInt("key", static_cast<int64_t>(hash));
      rec.SetDouble("fwd", m.fwd_seconds);
      rec.SetDouble("bwd", m.bwd_seconds);
      records.push_back(std::move(rec));
    }
    for (const auto& [hash, t] : shard.comm_entries) {
      TextRecord rec;
      rec.Set("type", "comm");
      rec.SetInt("key", static_cast<int64_t>(hash));
      rec.SetDouble("time", t);
      records.push_back(std::move(rec));
    }
  }
  return WriteRecordsToFile(path, records);
}

Status ProfileDatabase::Load(const std::string& path) {
  auto records = ReadRecordsFromFile(path);
  if (!records.ok()) {
    return records.status();
  }
  for (const TextRecord& rec : *records) {
    auto type = rec.Get("type");
    auto key = rec.GetInt("key");
    if (!type.ok() || !key.ok()) {
      return InvalidArgument("malformed profile record");
    }
    const auto hash = static_cast<uint64_t>(*key);
    if (*type == "op") {
      auto fwd = rec.GetDouble("fwd");
      auto bwd = rec.GetDouble("bwd");
      if (!fwd.ok() || !bwd.ok()) {
        return InvalidArgument("malformed op profile record");
      }
      Shard& shard = ShardFor(hash);
      auto lock = LockShard(shard);
      shard.op_entries[hash] = OpMeasurement{*fwd, *bwd};
    } else if (*type == "comm") {
      auto t = rec.GetDouble("time");
      if (!t.ok()) {
        return InvalidArgument("malformed comm profile record");
      }
      Shard& shard = ShardFor(hash);
      auto lock = LockShard(shard);
      shard.comm_entries[hash] = *t;
    } else {
      return InvalidArgument("unknown profile record type: " + *type);
    }
  }
  // Load may have *overwritten* published entries, which breaks the
  // usual immutability guarantee the lock-free read path relies on:
  // re-tag the instance so every thread-local L1 entry for it goes stale,
  // recount the entries, and republish a snapshot of the loaded state.
  // (Load is a setup-time call; it is not synchronized against concurrent
  // lookups, same as before this read path existed.)
  generation_.store(g_db_generation.fetch_add(1, std::memory_order_relaxed),
                    std::memory_order_relaxed);
  size_t total = 0;
  for (const Shard& shard : shards_) {
    auto lock = LockShard(shard);
    total += shard.op_entries.size() + shard.comm_entries.size();
  }
  total_entries_.store(total, std::memory_order_relaxed);
  if (read_opt_enabled_.load(std::memory_order_relaxed)) {
    RepublishSnapshot(/*block=*/true);
  }
  return OkStatus();
}

}  // namespace aceso
