file(REMOVE_RECURSE
  "libaceso_config.a"
)
