// Pipeline-schedule comparison: why Aceso (like Megatron/PipeDream-flush)
// assumes 1F1B rather than GPipe's all-forward-then-all-backward order.
//
// Runs the same searched configuration under both schedules and shows the
// memory cliff: GPipe keeps every in-flight microbatch's activations alive,
// 1F1B caps them at the pipeline depth.
//
//   ./build/examples/schedule_compare

#include <algorithm>
#include <cstdio>
#include <iostream>

#include "src/aceso.h"

int main() {
  using namespace aceso;

  const OpGraph model = models::Gpt3(1.3);
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster);
  PerformanceModel perf_model(&model, cluster, &db);
  PipelineExecutor executor(&perf_model);
  std::printf("%s on %s\n\n", model.Summary().c_str(),
              cluster.ToString().c_str());

  // A 4-stage pipeline plan from a quick search.
  SearchOptions options;
  options.time_budget_seconds = 1.0;
  const SearchResult result = AcesoSearchForStages(perf_model, options, 4);
  ACESO_CHECK(result.found);
  const ParallelConfig& config = result.best.config;
  std::printf("plan: %s\n", config.ShortString().c_str());
  std::printf("in-flight microbatches at stage 0: 1F1B %d vs GPipe %d\n\n",
              PeakInFlightMicrobatches(PipelineSchedule::k1F1B, 0, 4,
                                       static_cast<int>(
                                           config.NumMicrobatches(model))),
              PeakInFlightMicrobatches(PipelineSchedule::kGpipe, 0, 4,
                                       static_cast<int>(
                                           config.NumMicrobatches(model))));

  TablePrinter table({"schedule", "iteration(s)", "samples/s",
                      "peak reserved (stage 0)", "status"});
  for (const PipelineSchedule schedule :
       {PipelineSchedule::k1F1B, PipelineSchedule::kGpipe}) {
    ExecutionOptions exec;
    exec.schedule = schedule;
    const ExecutionResult run = executor.Execute(config, exec);
    int64_t peak = 0;
    for (const StageExecution& s : run.stages) {
      peak = std::max(peak, s.peak_reserved_bytes);
    }
    table.AddRow({PipelineScheduleName(schedule),
                  FormatDouble(run.iteration_seconds, 2),
                  FormatDouble(run.Throughput(model.global_batch_size()), 1),
                  FormatBytes(peak), run.oom ? "OOM" : "ok"});
  }
  table.Print(std::cout);
  std::printf(
      "\nGPipe's activation pile-up is the memory pressure 1F1B exists to "
      "avoid (paper §2.1);\nAceso's Eq.1 models the 1F1B in-flight count "
      "(p - i) directly.\n");
  return 0;
}
