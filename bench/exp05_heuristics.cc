// Exp#5 — heuristic efficiency (paper Figures 11 and 12).
//
// Figure 11: distributions, across all search iterations that found an
// improvement, of (a) how many bottlenecks Heuristic-1 tried before the
// improving one and (b) how many hops the improving primitive chain used.
// Figure 12: convergence trends with Heuristic-2 vs 3 random-order searches.
//
// Paper claims to reproduce in shape: ~90% of iterations improve from the
// first bottleneck tried; a majority of improvements need more than one hop
// (~68% in the paper); random primitive ordering converges more slowly
// under a tight budget but reaches similar quality eventually.

#include <cstdio>
#include <iostream>
#include <map>

#include "bench/bench_util.h"

namespace aceso {
namespace bench {
namespace {

void PrintHistogram(const std::string& title, const std::vector<int>& values,
                    int buckets) {
  std::map<int, int> counts;
  for (int v : values) {
    counts[std::min(v, buckets)]++;
  }
  std::printf("%s (n=%zu):\n", title.c_str(), values.size());
  for (int b = 1; b <= buckets; ++b) {
    const int count = counts.count(b) ? counts[b] : 0;
    const double pct =
        values.empty() ? 0.0 : 100.0 * count / static_cast<double>(values.size());
    std::printf("  %d%s: %5.1f%% (%d)\n", b, b == buckets ? "+" : "", pct,
                count);
  }
}

}  // namespace
}  // namespace bench
}  // namespace aceso

int main() {
  using namespace aceso;
  using namespace aceso::bench;
  PrintHeader("Exp#5: heuristic efficiency (Figures 11 & 12)",
              "Heuristic-1 picks the right bottleneck first try in ~90% of "
              "iterations; most improvements need multiple hops; Heuristic-2 "
              "converges faster than random exploration");

  // --- Figure 11: aggregate bottleneck-attempt and hop distributions over
  // the Exp#1-style settings. ---
  std::vector<std::pair<std::string, int>> settings = {
      {"gpt3-0.35b", 4}, {"gpt3-1.3b", 4},    {"gpt3-2.6b", 8},
      {"wresnet-0.5b", 4}, {"t5-0.77b", 4},
  };
  if (QuickMode()) {
    settings.resize(2);
  }

  // One shared telemetry sink across all settings: the histogram inputs are
  // read back from the per-iteration event stream (DESIGN.md §10) rather
  // than from SearchStats' ad-hoc vectors.
  TelemetryOptions topts;
  topts.ring_capacity = 1 << 20;
  TelemetrySink telemetry(topts);
  for (const auto& [name, gpus] : settings) {
    Workload workload(name, gpus);
    SearchOptions options = DefaultSearchOptions();
    options.telemetry = &telemetry;
    AcesoSearch(workload.model(), options);
  }
  const ImprovementHistograms hist =
      ExtractImprovementHistograms(telemetry.Events());
  std::printf("\nsearch iterations: %lld, improvements: %lld\n\n",
              static_cast<long long>(telemetry.counter("search.iterations")),
              static_cast<long long>(telemetry.counter("search.accepts")));
  PrintHistogram("Figure 11(a): bottlenecks tried before improvement",
                 hist.bottleneck_attempts, 4);
  std::printf("\n");
  PrintHistogram("Figure 11(b): hops of the improving chain", hist.hops, 5);

  // --- Figure 12: convergence with vs without Heuristic-2. ---
  std::printf("\nFigure 12: convergence trends (predicted iteration time)\n");
  {
    Workload workload(QuickMode() ? "gpt3-0.35b" : "gpt3-2.6b",
                      QuickMode() ? 4 : 8);
    SearchOptions guided = DefaultSearchOptions();
    const SearchResult with_h2 = AcesoSearch(workload.model(), guided);
    PrintConvergence("with heuristic-2   ", with_h2.convergence);
    for (uint64_t seed : {1ULL, 2ULL, 3ULL}) {
      SearchOptions random = DefaultSearchOptions();
      random.use_heuristic2 = false;
      random.seed = seed;
      const SearchResult without =
          AcesoSearch(workload.model(), random);
      PrintConvergence("random (seed " + std::to_string(seed) + ")  ",
                       without.convergence);
    }
  }
  return 0;
}
