// DpSeedConfig: the PaSE-style DP seed is deterministic, valid, pinned on
// two zoo models, and wired into the search behind seed_mode.

#include "src/core/dp_seeder.h"

#include <gtest/gtest.h>

#include "src/aceso.h"

namespace aceso {
namespace {

TEST(DpSeederTest, SeedIsValidAndDeterministicOnGpt3) {
  const OpGraph graph = *models::BuildByName("gpt3-0.35b");
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);

  auto first = DpSeedConfig(model, 2);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_TRUE(first->config.Validate(graph, cluster).ok());
  EXPECT_EQ(first->config.num_stages(), 2);
  EXPECT_GT(first->evaluations, 0);
  EXPECT_FALSE(first->perf.oom);

  auto second = DpSeedConfig(model, 2);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->config.SemanticHash(graph),
            second->config.SemanticHash(graph));
  EXPECT_EQ(first->perf.iteration_time, second->perf.iteration_time);
}

// Golden seeds on two zoo models: the DP's solution is a deterministic
// function of the profile database, so the seeded configuration's semantic
// hash is pinned exactly. A legitimate pricing or DP change moves these
// values — regenerate by running the test and copying the reported hashes.
TEST(DpSeederTest, SeededConfigIsPinnedOnGpt3) {
  const OpGraph graph = *models::BuildByName("gpt3-0.35b");
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);
  auto seed = DpSeedConfig(model, 2);
  ASSERT_TRUE(seed.ok()) << seed.status().ToString();
  EXPECT_EQ(seed->config.SemanticHash(graph), 1633812994793543637ULL);
  EXPECT_DOUBLE_EQ(seed->perf.iteration_time, 23.106789658476192);
}

TEST(DpSeederTest, SeededConfigIsPinnedOnWresnet) {
  const OpGraph graph = *models::BuildByName("wresnet-0.5b");
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);
  auto seed = DpSeedConfig(model, 2);
  ASSERT_TRUE(seed.ok()) << seed.status().ToString();
  EXPECT_EQ(seed->config.SemanticHash(graph), 12112673595168534270ULL);
  EXPECT_DOUBLE_EQ(seed->perf.iteration_time, 11.941247589686865);
}

TEST(DpSeederTest, CompressedCutsStillProduceAFeasibleSeed) {
  // Boundary compression restricts the DP to the repeated-layer skeleton;
  // it must still find a feasible seed on a deep uniform stack, and the
  // exact (uncompressed) DP can only be at least as good.
  const OpGraph graph = *models::BuildByName("gpt3-1.3b");
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);

  DpSeedOptions compressed;
  compressed.compress_runs = true;
  auto fast = DpSeedConfig(model, 4, compressed);
  ASSERT_TRUE(fast.ok()) << fast.status().ToString();
  EXPECT_FALSE(fast->perf.oom);

  DpSeedOptions exact;
  exact.compress_runs = false;
  auto full = DpSeedConfig(model, 4, exact);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  EXPECT_LE(full->perf.iteration_time, fast->perf.iteration_time * 1.0 + 1e-12);
}

TEST(DpSeederTest, UnconstructibleStageCountFails) {
  const OpGraph graph = *models::BuildByName("gpt3-0.35b");
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);
  EXPECT_FALSE(DpSeedConfig(model, 64).ok());
  EXPECT_FALSE(DpSeedConfig(model, 0).ok());
}

TEST(DpSeederTest, SearchChargesSeederEvaluations) {
  const OpGraph graph = *models::BuildByName("gpt3-0.35b");
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);

  const auto seed = DpSeedConfig(model, 2);
  ASSERT_TRUE(seed.ok());

  model.ResetEvaluationCount();
  SearchOptions options;
  options.seed_mode = SeedMode::kDp;
  options.max_evaluations = seed->evaluations + 1;  // seeder + initial eval
  options.time_budget_seconds = 1e6;
  const SearchResult result = AcesoSearchForStages(model, options, 2);
  ASSERT_TRUE(result.found);
  // The search started from the DP seed...
  EXPECT_EQ(result.convergence.front().best_iteration_time,
            seed->perf.iteration_time);
  // ...and charged the seeder's evaluations to its exploration budget.
  EXPECT_EQ(result.stats.configs_explored, seed->evaluations + 1);
  EXPECT_LE(result.stats.configs_explored, model.NumEvaluations());
}

TEST(DpSeederTest, DpSeedFallsBackWhenNoSolution) {
  // A stage count the splitter cannot produce for this cluster falls back
  // to the heuristic seed inside the search rather than failing the run.
  const OpGraph graph = *models::BuildByName("gpt3-0.35b");
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);
  SearchOptions options;
  options.seed_mode = SeedMode::kDp;
  options.max_evaluations = 50;
  options.time_budget_seconds = 1e6;
  // 3 stages on 4 GPUs: SplitDevicesPow2 handles it, so this exercises the
  // normal path; the fallback itself is covered by making the DP fail via
  // an unconstructible stage count inside AcesoSearch's range sweep, which
  // must still return a result.
  const SearchResult result = AcesoSearchForStages(model, options, 3);
  EXPECT_TRUE(result.found);
}

}  // namespace
}  // namespace aceso
