# Empty compiler generated dependencies file for exp07_init_robustness.
# This may be replaced when dependencies are built.
