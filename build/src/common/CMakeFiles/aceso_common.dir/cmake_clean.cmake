file(REMOVE_RECURSE
  "CMakeFiles/aceso_common.dir/logging.cc.o"
  "CMakeFiles/aceso_common.dir/logging.cc.o.d"
  "CMakeFiles/aceso_common.dir/rng.cc.o"
  "CMakeFiles/aceso_common.dir/rng.cc.o.d"
  "CMakeFiles/aceso_common.dir/status.cc.o"
  "CMakeFiles/aceso_common.dir/status.cc.o.d"
  "CMakeFiles/aceso_common.dir/table_printer.cc.o"
  "CMakeFiles/aceso_common.dir/table_printer.cc.o.d"
  "CMakeFiles/aceso_common.dir/text_record.cc.o"
  "CMakeFiles/aceso_common.dir/text_record.cc.o.d"
  "CMakeFiles/aceso_common.dir/thread_pool.cc.o"
  "CMakeFiles/aceso_common.dir/thread_pool.cc.o.d"
  "CMakeFiles/aceso_common.dir/units.cc.o"
  "CMakeFiles/aceso_common.dir/units.cc.o.d"
  "libaceso_common.a"
  "libaceso_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aceso_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
