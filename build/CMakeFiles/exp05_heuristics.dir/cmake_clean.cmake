file(REMOVE_RECURSE
  "CMakeFiles/exp05_heuristics.dir/bench/bench_util.cc.o"
  "CMakeFiles/exp05_heuristics.dir/bench/bench_util.cc.o.d"
  "CMakeFiles/exp05_heuristics.dir/bench/exp05_heuristics.cc.o"
  "CMakeFiles/exp05_heuristics.dir/bench/exp05_heuristics.cc.o.d"
  "bench/exp05_heuristics"
  "bench/exp05_heuristics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp05_heuristics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
