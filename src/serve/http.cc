#include "src/serve/http.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <deque>
#include <limits>
#include <mutex>
#include <unordered_map>

#include "src/common/logging.h"

namespace aceso {
namespace serve {
namespace {

using Clock = std::chrono::steady_clock;

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

void SetIoTimeout(int fd, double seconds) {
  timeval tv;
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>(
      (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// send() with MSG_NOSIGNAL so a vanished client surfaces as an error return
// instead of SIGPIPE. Used by the *blocking* client sockets: short writes
// continue from the unsent offset and EINTR retries, so a signal
// mid-request never truncates a payload.
bool SendAllFd(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

// The strict Content-Length parse shared by the server and the keep-alive
// client (PR 8): digits only — strtoull would accept whitespace and a sign
// and *wraps* on overflow, so a 20-digit value could alias a small body
// size and desynchronize the framing. The accumulator is rejected the
// moment it exceeds `cap`.
bool ParseContentLength(const std::string& value, size_t cap, size_t* out) {
  if (value.empty()) {
    return false;
  }
  size_t parsed = 0;
  for (const char c : value) {
    if (c < '0' || c > '9') {
      return false;
    }
    parsed = parsed * 10 + static_cast<size_t>(c - '0');
    if (parsed > cap) {
      return false;
    }
  }
  *out = parsed;
  return true;
}

// Parses "<METHOD> <path> HTTP/1.x" plus headers out of `head`.
// `keep_alive_default` reflects the version: HTTP/1.1 persists unless the
// client says close; HTTP/1.0 closes unless it says keep-alive.
bool ParseRequestHead(std::string_view head, HttpRequest* out,
                      bool* keep_alive) {
  const size_t line_end = head.find("\r\n");
  if (line_end == std::string_view::npos) {
    return false;
  }
  const std::string_view request_line = head.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos) {
    return false;
  }
  out->method = std::string(request_line.substr(0, sp1));
  out->path = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  const std::string_view version = request_line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) {
    return false;
  }
  *keep_alive = version != "HTTP/1.0";

  out->headers.clear();
  size_t pos = line_end + 2;
  while (pos < head.size()) {
    const size_t eol = head.find("\r\n", pos);
    const std::string_view line =
        head.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    if (line.empty()) {
      break;
    }
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      return false;
    }
    std::string_view value = line.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    out->headers.emplace_back(std::string(line.substr(0, colon)),
                              std::string(value));
    if (eol == std::string_view::npos) {
      break;
    }
    pos = eol + 2;
  }
  if (const std::string* connection = out->FindHeader("connection")) {
    if (EqualsIgnoreCase(*connection, "close")) {
      *keep_alive = false;
    } else if (EqualsIgnoreCase(*connection, "keep-alive")) {
      *keep_alive = true;
    }
  }
  return true;
}

int ConnectTo(const std::string& host, int port, double timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return -1;
  }
  SetIoTimeout(fd, timeout_seconds);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1 ||
      ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

std::string BuildRequestHead(const std::string& method,
                             const std::string& path, const std::string& host,
                             size_t body_size, bool keep_alive) {
  std::string req = method + " " + path + " HTTP/1.1\r\n";
  req += "Host: " + host + "\r\n";
  req += "Content-Type: application/json\r\n";
  req += "Content-Length: " + std::to_string(body_size) + "\r\n";
  req += keep_alive ? "\r\n" : "Connection: close\r\n\r\n";
  return req;
}

// Reads an HTTP response to EOF, invoking `on_body` with each chunk of body
// bytes as they arrive. Fills status/content-type from the head.
Status ReadResponseToEof(int fd, HttpResponse* out,
                         const std::function<void(std::string_view)>& on_body) {
  std::string buf;
  char chunk[8192];
  size_t head_end = std::string::npos;
  size_t body_emitted = 0;
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return DeadlineExceeded("timed out reading HTTP response");
    }
    if (n == 0) {
      break;
    }
    buf.append(chunk, static_cast<size_t>(n));
    if (head_end == std::string::npos) {
      head_end = buf.find("\r\n\r\n");
      if (head_end != std::string::npos) {
        // Parse the status line + headers once.
        const std::string_view head = std::string_view(buf).substr(0, head_end);
        const size_t sp = head.find(' ');
        if (sp == std::string_view::npos || head.rfind("HTTP/1.", 0) != 0) {
          return Internal("malformed HTTP status line");
        }
        out->status_code =
            std::atoi(std::string(head.substr(sp + 1, 3)).c_str());
        size_t pos = head.find("\r\n");
        while (pos != std::string_view::npos && pos + 2 < head.size()) {
          const size_t eol = head.find("\r\n", pos + 2);
          const std::string_view line = head.substr(
              pos + 2, eol == std::string_view::npos ? std::string_view::npos
                                                     : eol - pos - 2);
          const size_t colon = line.find(':');
          if (colon != std::string_view::npos &&
              EqualsIgnoreCase(line.substr(0, colon), "content-type")) {
            std::string_view v = line.substr(colon + 1);
            while (!v.empty() && v.front() == ' ') {
              v.remove_prefix(1);
            }
            out->content_type = std::string(v);
          }
          pos = eol;
        }
        body_emitted = head_end + 4;
      }
    }
    if (head_end != std::string::npos && buf.size() > body_emitted) {
      on_body(std::string_view(buf).substr(body_emitted));
      body_emitted = buf.size();
    }
  }
  if (head_end == std::string::npos) {
    return Internal("connection closed before HTTP response head");
  }
  return OkStatus();
}

constexpr char kBadRequestBody[] =
    "{\"status\":\"error\",\"code\":\"INVALID_ARGUMENT\","
    "\"message\":\"malformed HTTP request\"}";

}  // namespace

const std::string* HttpRequest::FindHeader(std::string_view name) const {
  for (const auto& [key, value] : headers) {
    if (EqualsIgnoreCase(key, name)) {
      return &value;
    }
  }
  return nullptr;
}

const char* HttpStatusText(int code) {
  switch (code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 412: return "Precondition Failed";
    case 429: return "Too Many Requests";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpServerStats HttpServerStats::operator-(const HttpServerStats& o) const {
  HttpServerStats d;
  d.connections_accepted = connections_accepted - o.connections_accepted;
  d.connections_closed = connections_closed - o.connections_closed;
  d.requests_served = requests_served - o.requests_served;
  d.keepalive_reuses = keepalive_reuses - o.keepalive_reuses;
  d.bytes_in = bytes_in - o.bytes_in;
  d.bytes_out = bytes_out - o.bytes_out;
  d.timeout_evictions = timeout_evictions - o.timeout_evictions;
  d.parse_errors = parse_errors - o.parse_errors;
  return d;
}

// ---------------------------------------------------------------------------
// Reactor internals
// ---------------------------------------------------------------------------

// One connection, owned by exactly one worker — no locking anywhere on the
// per-connection state. Buffers are reused across keep-alive requests.
struct HttpServer::Conn {
  int fd = -1;

  // ---- input / parser state machine ----
  enum class Read { kHead, kBody };
  Read rstate = Read::kHead;
  std::string in;       // received, not yet fully parsed
  size_t consumed = 0;  // prefix of `in` already turned into requests
  size_t head_len = 0;  // current request head incl. terminator
  size_t body_len = 0;  // current request body (from Content-Length)
  HttpRequest request;
  bool req_keep_alive = true;

  // ---- output (Content-Length framed responses) ----
  // Responses queue as segments — owned bytes or shared pre-serialized
  // payloads — and flush in one scatter-gather sendmsg per event-loop
  // pass, so a pipelined batch costs one syscall instead of one per
  // response.
  struct OutSeg {
    std::string owned;
    std::shared_ptr<const std::string> shared;  // used when non-null
    std::string_view view() const {
      return shared != nullptr ? std::string_view(*shared)
                               : std::string_view(owned);
    }
  };
  std::deque<OutSeg> outq;
  size_t out_sent = 0;     // sent prefix of outq.front()
  size_t out_pending = 0;  // unsent bytes across outq
  bool flushing = false;   // unsent output; EPOLLOUT may be armed

  // ---- lifecycle ----
  bool responded = false;  // current request produced a response
  bool streamed = false;
  bool close_after = false;
  int64_t served = 0;  // completed requests on this connection
  Clock::time_point deadline;
};

struct HttpServer::Worker {
  int epoll_fd = -1;
  int wake_fd = -1;  // eventfd: new connections + stop
  std::thread thread;
  std::mutex mu;
  std::deque<int> pending;  // fds handed over by the acceptor
  std::unordered_map<int, std::unique_ptr<Conn>> conns;
};

HttpServer::HttpServer() = default;
HttpServer::~HttpServer() { Stop(); }

Status HttpServer::Start(const std::string& host, int port,
                         HttpHandler handler, HttpServerOptions options) {
  if (listen_fd_ >= 0) {
    return FailedPrecondition("HTTP server already started");
  }
  if (options.num_workers < 1) {
    return InvalidArgument("num_workers must be >= 1");
  }
  handler_ = std::move(handler);
  options_ = options;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Internal("socket() failed: " + std::string(std::strerror(errno)));
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgument("bad listen address: " + host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Internal("bind(" + host + ":" + std::to_string(port) +
                               ") failed: " + std::strerror(errno));
    ::close(fd);
    return st;
  }
  if (::listen(fd, 128) != 0) {
    const Status st =
        Internal("listen() failed: " + std::string(std::strerror(errno)));
    ::close(fd);
    return st;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    ::close(fd);
    return Internal("getsockname() failed");
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
  stopping_.store(false, std::memory_order_relaxed);
  next_worker_.store(0, std::memory_order_relaxed);

  workers_.clear();
  for (int i = 0; i < options_.num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    worker->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    worker->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (worker->epoll_fd < 0 || worker->wake_fd < 0) {
      if (worker->epoll_fd >= 0) ::close(worker->epoll_fd);
      if (worker->wake_fd >= 0) ::close(worker->wake_fd);
      for (auto& started : workers_) {
        ::close(started->epoll_fd);
        ::close(started->wake_fd);
      }
      workers_.clear();
      ::close(fd);
      return Internal("epoll/eventfd setup failed: " +
                      std::string(std::strerror(errno)));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = worker->wake_fd;
    ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, worker->wake_fd, &ev);
    workers_.push_back(std::move(worker));
  }
  listen_fd_ = fd;
  for (auto& worker : workers_) {
    Worker* raw = worker.get();
    worker->thread = std::thread([this, raw] { WorkerLoop(raw); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return OkStatus();
}

void HttpServer::Stop() {
  const int fd = listen_fd_;
  if (fd < 0) {
    return;
  }
  stopping_.store(true, std::memory_order_release);
  // shutdown() unblocks accept(); the acceptor observes the stop flag and
  // exits. The descriptor is closed only after the join, so its number
  // cannot be reused while the acceptor might still pass it to accept().
  ::shutdown(fd, SHUT_RDWR);
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  ::close(fd);
  listen_fd_ = -1;
  // Wake and join every worker. A worker mid-handler finishes the handler,
  // flushes its response, and only then observes the stop flag — so no
  // handler can touch freed daemon/service state after Stop() returns.
  for (auto& worker : workers_) {
    const uint64_t one = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(worker->wake_fd, &one, sizeof(one));
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) {
      worker->thread.join();
    }
    ::close(worker->epoll_fd);
    ::close(worker->wake_fd);
  }
  workers_.clear();
}

HttpServerStats HttpServer::stats() const {
  HttpServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  s.requests_served = requests_served_.load(std::memory_order_relaxed);
  s.keepalive_reuses = keepalive_reuses_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  s.timeout_evictions = timeout_evictions_.load(std::memory_order_relaxed);
  s.parse_errors = parse_errors_.load(std::memory_order_relaxed);
  return s;
}

void HttpServer::AcceptLoop() {
  // Snapshot the listener fd: the member is written by Start() before this
  // thread exists and by Stop() only after joining it, so the local copy is
  // the whole synchronization story.
  const int listen_fd = listen_fd_;
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors: shed load instead of spinning.
        ACESO_LOG(WARNING) << "serve: accept failed: " << std::strerror(errno);
        struct timespec ts = {0, 10 * 1000 * 1000};
        ::nanosleep(&ts, nullptr);
        continue;
      }
      break;  // listener closed (Stop) or fatal
    }
    if (!SetNonBlocking(fd)) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);

    Worker* worker =
        workers_[next_worker_.fetch_add(1, std::memory_order_relaxed) %
                 workers_.size()]
            .get();
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->pending.push_back(fd);
    }
    const uint64_t one64 = 1;
    [[maybe_unused]] const ssize_t n =
        ::write(worker->wake_fd, &one64, sizeof(one64));
  }
}

void HttpServer::CloseConn(Worker* worker, Conn* conn) {
  ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  connections_closed_.fetch_add(1, std::memory_order_relaxed);
  worker->conns.erase(conn->fd);  // frees conn
}

// Non-blocking scatter-gather flush of every queued response segment, up to
// 64 iovecs per sendmsg. Fully-sent segments are popped as the offset
// advances; `out_sent` tracks the sent prefix of the front segment.
bool HttpServer::FlushOutput(Conn* conn, bool* done) {
  *done = false;
  constexpr int kMaxIov = 64;
  while (conn->out_pending > 0) {
    iovec iov[kMaxIov];
    int iovcnt = 0;
    size_t skip = conn->out_sent;
    for (const Conn::OutSeg& seg : conn->outq) {
      if (iovcnt == kMaxIov) {
        break;
      }
      const std::string_view part = seg.view();
      if (skip >= part.size()) {
        skip -= part.size();
        continue;
      }
      iov[iovcnt].iov_base = const_cast<char*>(part.data() + skip);
      iov[iovcnt].iov_len = part.size() - skip;
      ++iovcnt;
      skip = 0;
    }
    msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<size_t>(iovcnt);
    const ssize_t n = ::sendmsg(conn->fd, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return true;  // not done; caller arms EPOLLOUT
      }
      return false;  // peer gone
    }
    bytes_out_.fetch_add(n, std::memory_order_relaxed);
    conn->out_pending -= static_cast<size_t>(n);
    size_t advanced = conn->out_sent + static_cast<size_t>(n);
    while (!conn->outq.empty() &&
           advanced >= conn->outq.front().view().size()) {
      advanced -= conn->outq.front().view().size();
      conn->outq.pop_front();
    }
    conn->out_sent = advanced;
  }
  *done = true;
  return true;
}

// Blocking send used for streamed responses: the handler owns the worker
// thread while it streams, so EAGAIN waits for writability (bounded by the
// write timeout) instead of queueing.
bool HttpServer::SendNow(Conn* conn, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(conn->fd, data.data() + sent,
                             data.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      bytes_out_.fetch_add(n, std::memory_order_relaxed);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{conn->fd, POLLOUT, 0};
      const int timeout_ms =
          static_cast<int>(options_.write_timeout_seconds * 1e3);
      const int r = ::poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : 1);
      if (r > 0 || (r < 0 && errno == EINTR)) {
        continue;
      }
      return false;  // stalled past the write deadline
    }
    return false;
  }
  return true;
}

bool HttpServer::DispatchRequest(Worker* worker, Conn* conn) {
  conn->responded = false;
  conn->streamed = false;
  HttpResponseWriter writer(this, conn);
  handler_(conn->request, writer);
  if (!conn->responded) {
    writer.Respond(500, "application/json",
                   "{\"status\":\"error\",\"code\":\"INTERNAL\","
                   "\"message\":\"handler produced no response\"}");
  }
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  if (conn->served > 0) {
    keepalive_reuses_.fetch_add(1, std::memory_order_relaxed);
  }
  ++conn->served;
  if (conn->streamed || !conn->req_keep_alive) {
    conn->close_after = true;
  }
  (void)worker;
  return true;
}

// Advances the parser over everything buffered, dispatching complete
// requests (pipelining: several may complete in one pass). Responses queue
// in dispatch order and flush once per pass in a single scatter-gather
// sendmsg — a pipelined batch costs one flush syscall, not one per
// response. Returns false when the connection must close now; leaves
// `flushing` set when queued output is still partially unsent (the event
// loop arms EPOLLOUT).
bool HttpServer::ProcessInput(Worker* worker, Conn* conn) {
  // Backpressure: past this much queued-but-unsent response data the parser
  // stops consuming requests until the peer drains what it already asked
  // for, bounding memory against a pipelining client that never reads.
  constexpr size_t kMaxPendingOutputBytes = 8 << 20;
  const Clock::time_point now = Clock::now();
  while (true) {
    bool waiting = false;  // parser needs more bytes from the socket
    while (!conn->close_after &&
           conn->out_pending <= kMaxPendingOutputBytes) {
      const size_t available = conn->in.size() - conn->consumed;
      if (conn->rstate == Conn::Read::kHead) {
        const size_t head_end = conn->in.find("\r\n\r\n", conn->consumed);
        if (head_end == std::string::npos) {
          if (available > options_.max_header_bytes) {
            parse_errors_.fetch_add(1, std::memory_order_relaxed);
            HttpResponseWriter writer(this, conn);
            conn->req_keep_alive = false;
            conn->close_after = true;  // the parser cannot resync past this
            writer.Respond(431, "application/json", kBadRequestBody);
            break;
          }
          // Waiting for bytes: idle between requests, read-deadline once a
          // partial request has landed.
          conn->deadline =
              now + std::chrono::duration_cast<Clock::duration>(
                        std::chrono::duration<double>(
                            available == 0 ? options_.idle_timeout_seconds
                                           : options_.read_timeout_seconds));
          waiting = true;
          break;
        }
        conn->head_len = head_end + 4 - conn->consumed;
        bool parsed = ParseRequestHead(
            std::string_view(conn->in)
                .substr(conn->consumed, conn->head_len - 4),
            &conn->request, &conn->req_keep_alive);
        conn->body_len = 0;
        if (parsed) {
          if (conn->request.FindHeader("transfer-encoding") != nullptr) {
            parsed = false;  // chunked request bodies are not supported
          } else if (const std::string* cl =
                         conn->request.FindHeader("content-length")) {
            parsed = ParseContentLength(*cl, options_.max_body_bytes,
                                        &conn->body_len);
          }
        }
        if (!parsed) {
          parse_errors_.fetch_add(1, std::memory_order_relaxed);
          HttpResponseWriter writer(this, conn);
          conn->req_keep_alive = false;
          conn->close_after = true;  // the parser cannot resync past this
          writer.Respond(400, "application/json", kBadRequestBody);
          break;
        }
        conn->rstate = Conn::Read::kBody;
      }
      if (conn->in.size() - conn->consumed - conn->head_len <
          conn->body_len) {
        conn->deadline = now + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(
                                       options_.read_timeout_seconds));
        waiting = true;
        break;
      }
      conn->request.body.assign(
          conn->in, conn->consumed + conn->head_len, conn->body_len);
      conn->consumed += conn->head_len + conn->body_len;
      conn->rstate = Conn::Read::kHead;

      DispatchRequest(worker, conn);
      if (conn->streamed) {
        return false;  // stream done; close-delimited
      }
    }
    // One flush for everything the pass queued.
    if (conn->out_pending > 0) {
      bool done = false;
      if (!FlushOutput(conn, &done)) {
        return false;
      }
      if (!done) {
        conn->flushing = true;
        return true;  // event loop arms EPOLLOUT; close_after honored there
      }
    }
    conn->flushing = false;
    if (conn->close_after) {
      return false;
    }
    if (waiting) {
      break;
    }
    // The parse loop stopped on backpressure and the flush fully drained:
    // go parse the rest of the buffer.
  }
  // Keep-alive: recycle the input buffer once per pass.
  if (conn->consumed > 0) {
    if (conn->consumed == conn->in.size()) {
      conn->in.clear();
    } else {
      conn->in.erase(0, conn->consumed);
    }
    conn->consumed = 0;
  }
  return true;
}

void HttpServer::WorkerLoop(Worker* worker) {
  std::vector<epoll_event> events(64);
  char chunk[16 * 1024];
  while (true) {
    const int n = ::epoll_wait(worker->epoll_fd, events.data(),
                               static_cast<int>(events.size()), 100);
    if (n < 0 && errno != EINTR) {
      break;
    }
    bool woke = false;
    for (int i = 0; i < std::max(n, 0); ++i) {
      const epoll_event& ev = events[static_cast<size_t>(i)];
      if (ev.data.fd == worker->wake_fd) {
        woke = true;  // drained after the batch, so fd reuse can't alias
        continue;
      }
      auto it = worker->conns.find(ev.data.fd);
      if (it == worker->conns.end()) {
        continue;  // closed earlier in this batch
      }
      Conn* conn = it->second.get();
      if ((ev.events & (EPOLLERR | EPOLLHUP)) != 0) {
        CloseConn(worker, conn);
        continue;
      }
      if ((ev.events & EPOLLOUT) != 0 && conn->flushing) {
        bool done = false;
        if (!FlushOutput(conn, &done)) {
          CloseConn(worker, conn);
          continue;
        }
        if (done) {
          conn->flushing = false;
          if (conn->close_after) {
            CloseConn(worker, conn);
            continue;
          }
          if (!ProcessInput(worker, conn)) {  // pipelined leftovers
            CloseConn(worker, conn);
            continue;
          }
          // The leftovers may have queued (and partially flushed) more
          // responses, so EPOLLOUT stays armed while any output is pending.
          epoll_event mod{};
          mod.events = conn->flushing ? (EPOLLIN | EPOLLOUT) : EPOLLIN;
          mod.data.fd = conn->fd;
          ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_MOD, conn->fd, &mod);
        }
      }
      if ((ev.events & EPOLLIN) != 0) {
        bool peer_closed = false;
        bool io_error = false;
        while (true) {
          const ssize_t r = ::recv(conn->fd, chunk, sizeof(chunk), 0);
          if (r > 0) {
            conn->in.append(chunk, static_cast<size_t>(r));
            bytes_in_.fetch_add(r, std::memory_order_relaxed);
            // Oversized pipelining is bounded like oversized heads.
            if (conn->in.size() >
                options_.max_header_bytes + options_.max_body_bytes + 4096) {
              break;
            }
            continue;
          }
          if (r == 0) {
            peer_closed = true;
          } else if (errno == EINTR) {
            continue;
          } else if (errno != EAGAIN && errno != EWOULDBLOCK) {
            io_error = true;
          }
          break;
        }
        if (io_error) {
          CloseConn(worker, conn);
          continue;
        }
        if (!ProcessInput(worker, conn)) {
          CloseConn(worker, conn);
          continue;
        }
        if (peer_closed) {
          // Whatever was parseable has been answered; the rest can never
          // complete.
          bool done = true;
          if (conn->flushing) {
            FlushOutput(conn, &done);  // best effort
          }
          CloseConn(worker, conn);
          continue;
        }
        if (conn->flushing) {
          epoll_event mod{};
          mod.events = EPOLLIN | EPOLLOUT;
          mod.data.fd = conn->fd;
          ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_MOD, conn->fd, &mod);
        }
      }
    }

    if (woke) {
      uint64_t drained = 0;
      while (::read(worker->wake_fd, &drained, sizeof(drained)) > 0) {
      }
      std::vector<int> adopted;
      {
        std::lock_guard<std::mutex> lock(worker->mu);
        adopted.assign(worker->pending.begin(), worker->pending.end());
        worker->pending.clear();
      }
      const Clock::time_point now = Clock::now();
      for (const int fd : adopted) {
        auto conn = std::make_unique<Conn>();
        conn->fd = fd;
        conn->deadline =
            now + std::chrono::duration_cast<Clock::duration>(
                      std::chrono::duration<double>(
                          options_.idle_timeout_seconds));
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = fd;
        if (::epoll_ctl(worker->epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
          ::close(fd);
          connections_closed_.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        worker->conns.emplace(fd, std::move(conn));
      }
    }

    if (stopping_.load(std::memory_order_acquire)) {
      break;
    }

    // Evict connections past their idle/read deadline. The scan is O(conns)
    // at most every epoll round (the wait is capped at 100 ms) — fine for
    // the daemon's connection counts, and it keeps deadlines lock-free.
    const Clock::time_point now = Clock::now();
    for (auto it = worker->conns.begin(); it != worker->conns.end();) {
      Conn* conn = it->second.get();
      ++it;  // CloseConn erases; advance first
      if (now >= conn->deadline && !conn->flushing) {
        timeout_evictions_.fetch_add(1, std::memory_order_relaxed);
        CloseConn(worker, conn);
      }
    }
  }

  // Teardown: close everything this worker still owns.
  for (auto& [fd, conn] : worker->conns) {
    ::epoll_ctl(worker->epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
    ::close(fd);
    connections_closed_.fetch_add(1, std::memory_order_relaxed);
  }
  worker->conns.clear();
}

// ---------------------------------------------------------------------------
// HttpResponseWriter
// ---------------------------------------------------------------------------

bool HttpResponseWriter::responded() const {
  return static_cast<HttpServer::Conn*>(conn_)->responded;
}

void HttpResponseWriter::Respond(int status, std::string_view content_type,
                                 std::string_view body) {
  RespondParts(status, content_type, body, nullptr, std::string_view());
}

void HttpResponseWriter::RespondParts(
    int status, std::string_view content_type, std::string_view head,
    std::shared_ptr<const std::string> middle, std::string_view tail) {
  auto* conn = static_cast<HttpServer::Conn*>(conn_);
  if (conn->responded) {
    return;
  }
  conn->responded = true;
  const size_t body_size = head.size() +
                           (middle != nullptr ? middle->size() : 0) +
                           tail.size();
  HttpServer::Conn::OutSeg head_seg;
  std::string& out = head_seg.owned;
  out += "HTTP/1.1 ";
  out += std::to_string(status);
  out += ' ';
  out += HttpStatusText(status);
  out += "\r\nContent-Type: ";
  out.append(content_type.data(), content_type.size());
  out += "\r\nContent-Length: ";
  out += std::to_string(body_size);
  out += conn->req_keep_alive ? "\r\nConnection: keep-alive\r\n\r\n"
                              : "\r\nConnection: close\r\n\r\n";
  out.append(head.data(), head.size());
  conn->out_pending += out.size();
  conn->outq.push_back(std::move(head_seg));
  if (middle != nullptr && !middle->empty()) {
    HttpServer::Conn::OutSeg seg;
    conn->out_pending += middle->size();
    seg.shared = std::move(middle);
    conn->outq.push_back(std::move(seg));
  }
  if (!tail.empty()) {
    HttpServer::Conn::OutSeg seg;
    seg.owned.assign(tail.data(), tail.size());
    conn->out_pending += seg.owned.size();
    conn->outq.push_back(std::move(seg));
  }
}

bool HttpResponseWriter::BeginStream(int status,
                                     std::string_view content_type) {
  auto* conn = static_cast<HttpServer::Conn*>(conn_);
  if (conn->responded) {
    return false;
  }
  conn->responded = true;
  conn->streamed = true;
  // Responses go out in order: anything still queued from earlier pipelined
  // requests must hit the wire before the stream's head.
  size_t skip = conn->out_sent;
  for (const HttpServer::Conn::OutSeg& seg : conn->outq) {
    const std::string_view part = seg.view();
    if (skip >= part.size()) {
      skip -= part.size();
      continue;
    }
    if (!server_->SendNow(conn, part.substr(skip))) {
      return false;
    }
    skip = 0;
  }
  conn->outq.clear();
  conn->out_sent = 0;
  conn->out_pending = 0;
  conn->flushing = false;
  std::string head = "HTTP/1.1 " + std::to_string(status) + " " +
                     HttpStatusText(status) + "\r\n";
  head += "Content-Type: " + std::string(content_type) + "\r\n";
  head += "Connection: close\r\n\r\n";
  return server_->SendNow(conn, head);
}

bool HttpResponseWriter::WriteChunk(std::string_view data) {
  auto* conn = static_cast<HttpServer::Conn*>(conn_);
  if (!conn->streamed) {
    return false;
  }
  return server_->SendNow(conn, data);
}

// ---------------------------------------------------------------------------
// Clients
// ---------------------------------------------------------------------------

HttpClient::HttpClient(std::string host, int port, double timeout_seconds)
    : host_(std::move(host)), port_(port), timeout_seconds_(timeout_seconds) {}

HttpClient::~HttpClient() { Disconnect(); }

Status HttpClient::EnsureConnected() {
  if (fd_ >= 0) {
    return OkStatus();
  }
  fd_ = ConnectTo(host_, port_, timeout_seconds_);
  if (fd_ < 0) {
    return Internal("cannot connect to " + host_ + ":" +
                    std::to_string(port_));
  }
  rbuf_.clear();
  return OkStatus();
}

void HttpClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rbuf_.clear();
}

StatusOr<HttpResponse> HttpClient::Call(const std::string& method,
                                        const std::string& path,
                                        const std::string& body) {
  const bool had_connection = fd_ >= 0;
  bool retry_safe = false;
  auto response = CallOnce(method, path, body, &retry_safe);
  if (response.ok()) {
    return response;
  }
  Disconnect();
  // A reused connection the server closed between calls (idle timeout, rude
  // restart) fails before any response byte arrives; that request was never
  // answered, so one transparent retry on a fresh connection is safe.
  if (had_connection && retry_safe) {
    ++reconnects_;
    response = CallOnce(method, path, body, &retry_safe);
    if (!response.ok()) {
      Disconnect();
    }
  }
  return response;
}

StatusOr<HttpResponse> HttpClient::CallOnce(const std::string& method,
                                            const std::string& path,
                                            const std::string& body,
                                            bool* retry_safe) {
  *retry_safe = true;
  ACESO_RETURN_IF_ERROR(EnsureConnected());
  if (!SendAllFd(fd_, BuildRequestHead(method, path, host_, body.size(),
                                       /*keep_alive=*/true)) ||
      !SendAllFd(fd_, body)) {
    return Internal("failed to send HTTP request");
  }

  // Read the head.
  char chunk[16 * 1024];
  size_t head_end;
  while ((head_end = rbuf_.find("\r\n\r\n")) == std::string::npos) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n <= 0) {
      if (!rbuf_.empty()) {
        *retry_safe = false;  // a partial response arrived: it was processed
      }
      return n == 0 ? Internal("connection closed before HTTP response head")
                    : DeadlineExceeded("timed out reading HTTP response");
    }
    *retry_safe = false;
    rbuf_.append(chunk, static_cast<size_t>(n));
  }
  *retry_safe = false;

  HttpResponse out;
  const std::string_view head = std::string_view(rbuf_).substr(0, head_end);
  const size_t sp = head.find(' ');
  if (sp == std::string_view::npos || head.rfind("HTTP/1.", 0) != 0) {
    return Internal("malformed HTTP status line");
  }
  out.status_code = std::atoi(std::string(head.substr(sp + 1, 3)).c_str());
  bool close_after = false;
  bool have_length = false;
  size_t content_length = 0;
  size_t pos = head.find("\r\n");
  while (pos != std::string_view::npos && pos + 2 < head.size()) {
    const size_t eol = head.find("\r\n", pos + 2);
    const std::string_view line = head.substr(
        pos + 2, eol == std::string_view::npos ? std::string_view::npos
                                               : eol - pos - 2);
    const size_t colon = line.find(':');
    if (colon != std::string_view::npos) {
      std::string_view name = line.substr(0, colon);
      std::string_view v = line.substr(colon + 1);
      while (!v.empty() && v.front() == ' ') {
        v.remove_prefix(1);
      }
      if (EqualsIgnoreCase(name, "content-type")) {
        out.content_type = std::string(v);
      } else if (EqualsIgnoreCase(name, "content-length")) {
        if (!ParseContentLength(std::string(v),
                                std::numeric_limits<size_t>::max() / 16,
                                &content_length)) {
          return Internal("malformed Content-Length in response");
        }
        have_length = true;
      } else if (EqualsIgnoreCase(name, "connection") &&
                 EqualsIgnoreCase(v, "close")) {
        close_after = true;
      }
    }
    pos = eol;
  }
  rbuf_.erase(0, head_end + 4);

  if (have_length) {
    while (rbuf_.size() < content_length) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n <= 0) {
        return n == 0 ? Internal("connection closed mid-response")
                      : DeadlineExceeded("timed out reading HTTP response");
      }
      rbuf_.append(chunk, static_cast<size_t>(n));
    }
    out.body = rbuf_.substr(0, content_length);
    rbuf_.erase(0, content_length);
    if (close_after) {
      Disconnect();
    }
  } else {
    // No framing: close-delimited (streamed) body. Read to EOF and drop the
    // connection; the next Call reconnects.
    out.body = std::move(rbuf_);
    rbuf_.clear();
    while (true) {
      const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n < 0 && errno == EINTR) {
        continue;
      }
      if (n < 0) {
        return DeadlineExceeded("timed out reading HTTP response");
      }
      if (n == 0) {
        break;
      }
      out.body.append(chunk, static_cast<size_t>(n));
    }
    Disconnect();
  }
  return out;
}

StatusOr<HttpResponse> HttpCall(const std::string& host, int port,
                                const std::string& method,
                                const std::string& path,
                                const std::string& body,
                                double timeout_seconds) {
  const int fd = ConnectTo(host, port, timeout_seconds);
  if (fd < 0) {
    return Internal("cannot connect to " + host + ":" + std::to_string(port));
  }
  HttpResponse response;
  Status st;
  if (!SendAllFd(fd, BuildRequestHead(method, path, host, body.size(),
                                      /*keep_alive=*/false)) ||
      !SendAllFd(fd, body)) {
    st = Internal("failed to send HTTP request");
  } else {
    st = ReadResponseToEof(fd, &response, [&response](std::string_view bytes) {
      response.body.append(bytes.data(), bytes.size());
    });
  }
  ::close(fd);
  if (!st.ok()) {
    return st;
  }
  return response;
}

StatusOr<HttpResponse> HttpCallStreaming(
    const std::string& host, int port, const std::string& method,
    const std::string& path, const std::string& body,
    const std::function<void(std::string_view line)>& on_line,
    double timeout_seconds) {
  const int fd = ConnectTo(host, port, timeout_seconds);
  if (fd < 0) {
    return Internal("cannot connect to " + host + ":" + std::to_string(port));
  }
  HttpResponse response;
  std::string pending;
  Status st;
  if (!SendAllFd(fd, BuildRequestHead(method, path, host, body.size(),
                                      /*keep_alive=*/false)) ||
      !SendAllFd(fd, body)) {
    st = Internal("failed to send HTTP request");
  } else {
    st = ReadResponseToEof(fd, &response, [&](std::string_view bytes) {
      pending.append(bytes.data(), bytes.size());
      size_t start = 0;
      while (true) {
        const size_t nl = pending.find('\n', start);
        if (nl == std::string::npos) {
          break;
        }
        on_line(std::string_view(pending).substr(start, nl - start));
        start = nl + 1;
      }
      pending.erase(0, start);
    });
  }
  ::close(fd);
  if (!st.ok()) {
    return st;
  }
  if (!pending.empty()) {
    on_line(pending);  // unterminated final line
  }
  return response;
}

}  // namespace serve
}  // namespace aceso
