#include "src/runtime/trace.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/common/units.h"

namespace aceso {

std::string ToChromeTraceJson(const EventSimulator& sim) {
  std::ostringstream oss;
  oss << "[\n";
  bool first = true;
  // Thread metadata: one row per resource.
  for (size_t r = 0; r < sim.num_resources(); ++r) {
    if (!first) {
      oss << ",\n";
    }
    first = false;
    oss << R"({"name":"thread_name","ph":"M","pid":1,"tid":)" << r
        << R"(,"args":{"name":")" << sim.resource_name(static_cast<ResourceId>(r))
        << R"("}})";
  }
  for (size_t t = 0; t < sim.num_tasks(); ++t) {
    const auto task = static_cast<TaskId>(t);
    const ResourceId resource = sim.task_resource(task);
    if (sim.FinishTime(task) < 0.0) {
      continue;  // never ran
    }
    if (!first) {
      oss << ",\n";
    }
    first = false;
    // Times in microseconds, as the trace format expects.
    oss << R"({"name":")" << sim.task_name(task)
        << R"(","ph":"X","pid":1,"tid":)"
        << (resource == kNoResource ? sim.num_resources() : static_cast<size_t>(resource))
        << R"(,"ts":)" << sim.StartTime(task) * 1e6 << R"(,"dur":)"
        << sim.task_duration(task) * 1e6 << "}";
  }
  oss << "\n]\n";
  return oss.str();
}

Status WriteChromeTrace(const EventSimulator& sim, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Internal("cannot open trace file: " + path);
  }
  out << ToChromeTraceJson(sim);
  out.flush();
  if (!out) {
    return Internal("trace write failed: " + path);
  }
  return OkStatus();
}

std::string RenderAsciiTimeline(const EventSimulator& sim, int width) {
  width = std::max(width, 10);
  double makespan = 0.0;
  for (size_t t = 0; t < sim.num_tasks(); ++t) {
    makespan = std::max(makespan, sim.FinishTime(static_cast<TaskId>(t)));
  }
  if (makespan <= 0.0) {
    return "(empty timeline)\n";
  }

  // busy[r][c] accumulates the busy fraction of column c on resource r.
  std::vector<std::vector<double>> busy(
      sim.num_resources(), std::vector<double>(static_cast<size_t>(width), 0.0));
  const double column_seconds = makespan / width;
  for (size_t t = 0; t < sim.num_tasks(); ++t) {
    const auto task = static_cast<TaskId>(t);
    const ResourceId r = sim.task_resource(task);
    if (r == kNoResource || sim.FinishTime(task) < 0.0) {
      continue;
    }
    const double start = sim.StartTime(task);
    const double finish = sim.FinishTime(task);
    int c0 = static_cast<int>(start / column_seconds);
    int c1 = static_cast<int>(finish / column_seconds);
    c0 = std::clamp(c0, 0, width - 1);
    c1 = std::clamp(c1, 0, width - 1);
    for (int c = c0; c <= c1; ++c) {
      const double col_begin = c * column_seconds;
      const double col_end = col_begin + column_seconds;
      const double overlap =
          std::min(finish, col_end) - std::max(start, col_begin);
      if (overlap > 0.0) {
        busy[static_cast<size_t>(r)][static_cast<size_t>(c)] +=
            overlap / column_seconds;
      }
    }
  }

  std::ostringstream oss;
  size_t label_width = 0;
  for (size_t r = 0; r < sim.num_resources(); ++r) {
    label_width = std::max(
        label_width, sim.resource_name(static_cast<ResourceId>(r)).size());
  }
  for (size_t r = 0; r < sim.num_resources(); ++r) {
    const std::string& name = sim.resource_name(static_cast<ResourceId>(r));
    oss << name << std::string(label_width - name.size(), ' ') << " |";
    for (int c = 0; c < width; ++c) {
      const double fraction = busy[r][static_cast<size_t>(c)];
      oss << (fraction > 0.66 ? '#' : fraction > 0.15 ? '+' : '.');
    }
    oss << "|\n";
  }
  const std::string end_label = FormatSeconds(makespan);
  oss << std::string(label_width, ' ') << " 0";
  const int pad = width - 1 - static_cast<int>(end_label.size());
  oss << std::string(static_cast<size_t>(std::max(pad, 1)), ' ') << end_label
      << "\n";
  return oss.str();
}

}  // namespace aceso
