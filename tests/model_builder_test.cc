#include "src/ir/model_builder.h"

#include <gtest/gtest.h>

namespace aceso {
namespace {

TEST(TransformerLayerTest, DecoderLayerHasEightOps) {
  OpGraph graph("t", Precision::kFp16, 8);
  TransformerLayerSpec spec;
  AppendTransformerLayer(graph, "l0.", spec);
  EXPECT_EQ(graph.num_ops(), 8);  // ln, qkv, core, proj, ln, fc1, gelu, fc2
}

TEST(TransformerLayerTest, CrossAttentionAddsFourOps) {
  OpGraph graph("t", Precision::kFp16, 8);
  TransformerLayerSpec spec;
  spec.cross_seq_len = 2048;
  AppendTransformerLayer(graph, "l0.", spec);
  EXPECT_EQ(graph.num_ops(), 12);  // + ln_cross, xqkv, xcore, xproj
}

TEST(TransformerLayerTest, ParamCountMatchesFormula) {
  OpGraph graph("t", Precision::kFp16, 8);
  TransformerLayerSpec spec;
  spec.hidden = 1024;
  spec.ffn_hidden = 4096;
  AppendTransformerLayer(graph, "l0.", spec);
  // qkv 3h^2 + proj h^2 + fc1 h*f + fc2 f*h + 2 layernorms 2h each.
  const int64_t h = 1024;
  const int64_t f = 4096;
  const int64_t expected_elems = 3 * h * h + h * h + 2 * h * f + 2 * 2 * h;
  EXPECT_EQ(graph.TotalParamCount(), expected_elems);
}

TEST(TransformerLayerTest, FlopsDominatedByMatmuls) {
  OpGraph graph("t", Precision::kFp16, 8);
  TransformerLayerSpec spec;
  spec.hidden = 2048;
  spec.ffn_hidden = 8192;
  spec.seq_len = 2048;
  AppendTransformerLayer(graph, "l0.", spec);
  const double s = 2048;
  const double h = 2048;
  const double f = 8192;
  // 2sh*3h (qkv) + 4s^2h (attn) + 2shh (proj) + 2shf*2 (mlp).
  const double matmul_flops =
      6 * s * h * h + 4 * s * s * h + 2 * s * h * h + 4 * s * h * f;
  EXPECT_NEAR(graph.TotalFwdFlops(), matmul_flops, matmul_flops * 0.02);
}

TEST(TransformerLayerTest, MegatronPartitionDims) {
  OpGraph graph("t", Precision::kFp16, 8);
  AppendTransformerLayer(graph, "l0.", TransformerLayerSpec{});
  // Column-parallel qkv/fc1, row-parallel proj/fc2.
  for (const Operator& op : graph.ops()) {
    if (op.kind == OpKind::kQkvProj || op.kind == OpKind::kMlpFc1) {
      EXPECT_EQ(op.default_tp_dim, TpDim::kColumn) << op.name;
    }
    if (op.kind == OpKind::kAttnOutProj || op.kind == OpKind::kMlpFc2) {
      EXPECT_EQ(op.default_tp_dim, TpDim::kRow) << op.name;
    }
  }
}

TEST(TransformerLayerTest, AttentionCoreHasScoreWorkspace) {
  OpGraph graph("t", Precision::kFp16, 8);
  TransformerLayerSpec spec;
  spec.num_heads = 16;
  spec.seq_len = 2048;
  AppendTransformerLayer(graph, "l0.", spec);
  for (const Operator& op : graph.ops()) {
    if (op.kind == OpKind::kAttnCore) {
      EXPECT_EQ(op.work_bytes, int64_t{16} * 2048 * 2048 * 2);
      EXPECT_EQ(op.tp_class, TpClass::kShardFollower);
    }
  }
}

TEST(TransformerLayerTest, LayerNormIsReplicated) {
  OpGraph graph("t", Precision::kFp16, 8);
  AppendTransformerLayer(graph, "l0.", TransformerLayerSpec{});
  for (const Operator& op : graph.ops()) {
    if (op.kind == OpKind::kLayerNorm) {
      EXPECT_EQ(op.tp_class, TpClass::kReplicated);
      EXPECT_EQ(op.max_tp, 1);
    }
  }
}

TEST(EmbeddingTest, VocabParallel) {
  OpGraph graph("t", Precision::kFp16, 8);
  AppendEmbedding(graph, "", 51200, 1024, 2048);
  ASSERT_EQ(graph.num_ops(), 1);
  const Operator& op = graph.op(0);
  EXPECT_EQ(op.param_bytes, int64_t{51200} * 1024 * 2);
  EXPECT_EQ(op.tp_class, TpClass::kPartitioned);
}

TEST(LmHeadTest, ProducesHeadAndLoss) {
  OpGraph graph("t", Precision::kFp16, 8);
  AppendLmHead(graph, "", 51200, 1024, 2048);
  EXPECT_EQ(graph.num_ops(), 2);
  EXPECT_EQ(graph.op(0).kind, OpKind::kLmHead);
  EXPECT_EQ(graph.op(1).kind, OpKind::kSoftmaxLoss);
}

TEST(BottleneckBlockTest, OpCountAndShapes) {
  OpGraph graph("r", Precision::kFp32, 8);
  BottleneckSpec spec;
  AppendBottleneckBlock(graph, "b0.", spec);
  // conv1 + bn/relu + conv2 + bn/relu + conv3 + bn/relu + residual = 10 ops.
  EXPECT_EQ(graph.num_ops(), 10);
}

TEST(BottleneckBlockTest, StrideHalvesSpatialSize) {
  OpGraph graph("r", Precision::kFp32, 8);
  BottleneckSpec spec;
  spec.in_hw = 56;
  spec.stride = 2;
  spec.in_channels = 256;
  spec.out_channels = 512;
  AppendBottleneckBlock(graph, "b0.", spec);
  // The final residual output is 28x28x512 in fp32.
  const Operator& last = graph.op(graph.num_ops() - 1);
  EXPECT_EQ(last.out_bytes, int64_t{28} * 28 * 512 * 4);
}

TEST(BottleneckBlockTest, ProjectionShortcutAddsParams) {
  OpGraph plain("r", Precision::kFp32, 8);
  BottleneckSpec same;
  same.in_channels = 256;
  same.out_channels = 256;
  AppendBottleneckBlock(plain, "b.", same);

  OpGraph projected("r", Precision::kFp32, 8);
  BottleneckSpec changed = same;
  changed.out_channels = 512;
  AppendBottleneckBlock(projected, "b.", changed);

  const Operator& plain_res = plain.op(plain.num_ops() - 1);
  const Operator& proj_res = projected.op(projected.num_ops() - 1);
  EXPECT_EQ(plain_res.param_bytes, 0);
  EXPECT_GT(proj_res.param_bytes, 0);
}

TEST(ConvStemTest, DownsamplesByFour) {
  OpGraph graph("r", Precision::kFp32, 8);
  AppendConvStem(graph, "", 3, 64, 224);
  ASSERT_EQ(graph.num_ops(), 2);
  EXPECT_EQ(graph.op(1).out_bytes, int64_t{56} * 56 * 64 * 4);
}

TEST(ClassifierHeadTest, ThreeOps) {
  OpGraph graph("r", Precision::kFp32, 8);
  AppendClassifierHead(graph, "", 2048, 7, 1000);
  EXPECT_EQ(graph.num_ops(), 3);
  EXPECT_EQ(graph.op(1).kind, OpKind::kFullyConnected);
}

}  // namespace
}  // namespace aceso
