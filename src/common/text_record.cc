#include "src/common/text_record.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

namespace aceso {
namespace {

// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

}  // namespace

void TextRecord::Set(const std::string& key, const std::string& value) {
  fields_[key] = value;
}

void TextRecord::SetInt(const std::string& key, int64_t value) {
  fields_[key] = std::to_string(value);
}

void TextRecord::SetDouble(const std::string& key, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  fields_[key] = buf;
}

bool TextRecord::Has(const std::string& key) const {
  return fields_.count(key) > 0;
}

StatusOr<std::string> TextRecord::Get(const std::string& key) const {
  auto it = fields_.find(key);
  if (it == fields_.end()) {
    return NotFound("missing field: " + key);
  }
  return it->second;
}

StatusOr<int64_t> TextRecord::GetInt(const std::string& key) const {
  auto value = Get(key);
  if (!value.ok()) {
    return value.status();
  }
  errno = 0;
  char* end = nullptr;
  const long long parsed = std::strtoll(value->c_str(), &end, 10);
  if (errno != 0 || end == value->c_str() || *end != '\0') {
    return InvalidArgument("field '" + key + "' is not an integer: " + *value);
  }
  return static_cast<int64_t>(parsed);
}

StatusOr<double> TextRecord::GetDouble(const std::string& key) const {
  auto value = Get(key);
  if (!value.ok()) {
    return value.status();
  }
  errno = 0;
  char* end = nullptr;
  const double parsed = std::strtod(value->c_str(), &end);
  if (errno != 0 || end == value->c_str() || *end != '\0') {
    return InvalidArgument("field '" + key + "' is not a number: " + *value);
  }
  return parsed;
}

std::string SerializeRecords(const std::vector<TextRecord>& records) {
  std::ostringstream oss;
  for (const TextRecord& record : records) {
    oss << "record {\n";
    for (const auto& [key, value] : record.fields()) {
      oss << "  " << key << " = " << value << "\n";
    }
    oss << "}\n";
  }
  return oss.str();
}

StatusOr<std::vector<TextRecord>> ParseRecords(const std::string& text) {
  std::vector<TextRecord> records;
  std::istringstream iss(text);
  std::string line;
  bool in_record = false;
  TextRecord current;
  int line_no = 0;
  while (std::getline(iss, line)) {
    ++line_no;
    const std::string trimmed = Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') {
      continue;
    }
    if (trimmed == "record {") {
      if (in_record) {
        return InvalidArgument("nested record at line " +
                               std::to_string(line_no));
      }
      in_record = true;
      current = TextRecord();
      continue;
    }
    if (trimmed == "}") {
      if (!in_record) {
        return InvalidArgument("stray '}' at line " + std::to_string(line_no));
      }
      in_record = false;
      records.push_back(current);
      continue;
    }
    const size_t eq = trimmed.find('=');
    if (!in_record || eq == std::string::npos) {
      return InvalidArgument("malformed line " + std::to_string(line_no) +
                             ": " + trimmed);
    }
    const std::string key = Trim(trimmed.substr(0, eq));
    const std::string value = Trim(trimmed.substr(eq + 1));
    if (key.empty()) {
      return InvalidArgument("empty key at line " + std::to_string(line_no));
    }
    current.Set(key, value);
  }
  if (in_record) {
    return InvalidArgument("unterminated record at end of input");
  }
  return records;
}

Status WriteRecordsToFile(const std::string& path,
                          const std::vector<TextRecord>& records) {
  std::ofstream out(path);
  if (!out) {
    return Internal("cannot open for writing: " + path);
  }
  out << SerializeRecords(records);
  out.flush();
  if (!out) {
    return Internal("write failed: " + path);
  }
  return OkStatus();
}

StatusOr<std::vector<TextRecord>> ReadRecordsFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return NotFound("cannot open for reading: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseRecords(buffer.str());
}

}  // namespace aceso
