#include "src/ir/models/model_zoo.h"

#include <cmath>
#include <cstdio>

#include "src/common/logging.h"
#include "src/ir/model_builder.h"

namespace aceso {
namespace models {
namespace {

constexpr int64_t kVocab = 51200;  // Megatron's padded GPT-2 vocabulary

struct GptVariant {
  double size_billions;
  int layers;
  int64_t hidden;
  int64_t heads;
};

// Standard GPT-3 family ladder (Brown et al., Table 2.1), as used by the
// paper.
constexpr GptVariant kGptVariants[] = {
    {0.35, 24, 1024, 16},
    {1.3, 24, 2048, 16},
    {2.6, 32, 2560, 32},
    {6.7, 32, 4096, 32},
    {13, 40, 5120, 40},
};

struct T5Variant {
  double size_billions;
  int layers;  // encoder layers == decoder layers
  int64_t hidden;
  int64_t ffn;
  int64_t heads;
};

// T5 ladder: 0.77B/3B/11B follow Raffel et al. (d_model 1024 with growing
// d_ff); 6B/22B double the 3B/11B FFN width, preserving the family's
// "wide-FFN" structure.
constexpr T5Variant kT5Variants[] = {
    {0.77, 24, 1024, 4096, 16},
    {3, 24, 1024, 16384, 32},
    {6, 24, 1024, 32768, 32},
    {11, 24, 1024, 65536, 64},
    {22, 24, 1024, 131072, 64},
};

struct WrnVariant {
  double size_billions;
  int width;  // channel multiplier over ResNet-50's base widths
};

// Parameters scale ~quadratically in width; these multipliers land the model
// at the paper's sizes (0.5/2/4/6.8/13 B params).
constexpr WrnVariant kWrnVariants[] = {
    {0.5, 4}, {2, 9}, {4, 12}, {6.8, 16}, {13, 22},
};

std::string SizeTag(double size_billions) {
  char buf[32];
  if (size_billions == static_cast<int>(size_billions)) {
    std::snprintf(buf, sizeof(buf), "%db", static_cast<int>(size_billions));
  } else {
    std::snprintf(buf, sizeof(buf), "%gb", size_billions);
  }
  return buf;
}

OpGraph BuildGpt(const GptVariant& v, int64_t batch, int64_t seq) {
  OpGraph graph("gpt3-" + SizeTag(v.size_billions), Precision::kFp16, batch);
  AppendEmbedding(graph, "", kVocab, v.hidden, seq);
  TransformerLayerSpec layer;
  layer.hidden = v.hidden;
  layer.ffn_hidden = 4 * v.hidden;
  layer.num_heads = v.heads;
  layer.seq_len = seq;
  for (int i = 0; i < v.layers; ++i) {
    AppendTransformerLayer(graph, "dec" + std::to_string(i) + ".", layer);
  }
  AppendLmHead(graph, "", kVocab, v.hidden, seq);
  return graph;
}

}  // namespace

OpGraph Gpt3(double size_billions) {
  for (const GptVariant& v : kGptVariants) {
    if (v.size_billions == size_billions) {
      return BuildGpt(v, /*batch=*/1024, /*seq=*/2048);
    }
  }
  ACESO_CHECK(false) << "unknown GPT-3 size: " << size_billions;
  return OpGraph();
}

OpGraph T5(double size_billions) {
  for (const T5Variant& v : kT5Variants) {
    if (v.size_billions != size_billions) {
      continue;
    }
    OpGraph graph("t5-" + SizeTag(v.size_billions), Precision::kFp16, 1024);
    const int64_t enc_seq = 2048;
    const int64_t dec_seq = 512;
    AppendEmbedding(graph, "enc.", kVocab, v.hidden, enc_seq);
    TransformerLayerSpec enc_layer;
    enc_layer.hidden = v.hidden;
    enc_layer.ffn_hidden = v.ffn;
    enc_layer.num_heads = v.heads;
    enc_layer.seq_len = enc_seq;
    for (int i = 0; i < v.layers; ++i) {
      AppendTransformerLayer(graph, "enc" + std::to_string(i) + ".",
                             enc_layer);
    }
    TransformerLayerSpec dec_layer = enc_layer;
    dec_layer.seq_len = dec_seq;
    dec_layer.cross_seq_len = enc_seq;
    for (int i = 0; i < v.layers; ++i) {
      AppendTransformerLayer(graph, "dec" + std::to_string(i) + ".",
                             dec_layer);
    }
    AppendLmHead(graph, "dec.", kVocab, v.hidden, dec_seq);
    return graph;
  }
  ACESO_CHECK(false) << "unknown T5 size: " << size_billions;
  return OpGraph();
}

OpGraph WideResnet(double size_billions) {
  for (const WrnVariant& v : kWrnVariants) {
    if (v.size_billions != size_billions) {
      continue;
    }
    OpGraph graph("wresnet-" + SizeTag(v.size_billions), Precision::kFp32,
                  1536);
    const int w = v.width;
    AppendConvStem(graph, "", 3, 64L * w, 224);
    // ResNet-50 stage plan: (blocks, bottleneck channels, out channels,
    // input spatial size).
    struct StagePlan {
      int blocks;
      int64_t mid;
      int64_t out;
      int64_t hw;
    };
    const StagePlan plan[] = {
        {3, 64L * w, 256L * w, 56},
        {4, 128L * w, 512L * w, 28},
        {6, 256L * w, 1024L * w, 14},
        {3, 512L * w, 2048L * w, 7},
    };
    int64_t in_channels = 64L * w;
    int64_t hw = 56;
    for (int s = 0; s < 4; ++s) {
      for (int b = 0; b < plan[s].blocks; ++b) {
        BottleneckSpec block;
        block.in_channels = in_channels;
        block.bottleneck_channels = plan[s].mid;
        block.out_channels = plan[s].out;
        // First block of stages 2-4 downsamples.
        block.stride = (b == 0 && s > 0) ? 2 : 1;
        block.in_hw = (b == 0 && s > 0) ? plan[s].hw * 2 : plan[s].hw;
        AppendBottleneckBlock(
            graph, "s" + std::to_string(s) + "b" + std::to_string(b) + ".",
            block);
        in_channels = plan[s].out;
        hw = plan[s].hw;
      }
    }
    AppendClassifierHead(graph, "", in_channels, hw, 1000);
    return graph;
  }
  ACESO_CHECK(false) << "unknown Wide-ResNet size: " << size_billions;
  return OpGraph();
}

OpGraph DeepTransformer(int num_layers) {
  ACESO_CHECK_GT(num_layers, 0);
  // DeepNet-style deep-narrow setting: hidden 1024, 16 heads, seq 1024.
  OpGraph graph("deepnet-" + std::to_string(num_layers), Precision::kFp16,
                256);
  const int64_t hidden = 1024;
  const int64_t seq = 1024;
  AppendEmbedding(graph, "", kVocab, hidden, seq);
  TransformerLayerSpec layer;
  layer.hidden = hidden;
  layer.ffn_hidden = 4 * hidden;
  layer.num_heads = 16;
  layer.seq_len = seq;
  for (int i = 0; i < num_layers; ++i) {
    AppendTransformerLayer(graph, "dec" + std::to_string(i) + ".", layer);
  }
  AppendLmHead(graph, "", kVocab, hidden, seq);
  return graph;
}

OpGraph Bert(double size_billions) {
  struct BertVariant {
    double size_billions;
    int layers;
    int64_t hidden;
    int64_t heads;
  };
  // bert-large plus two scaled-up siblings (Megatron's BERT ladder).
  constexpr BertVariant kVariants[] = {
      {0.34, 24, 1024, 16},
      {1.2, 24, 2048, 32},
      {3.9, 48, 2560, 40},
  };
  for (const BertVariant& v : kVariants) {
    if (v.size_billions != size_billions) {
      continue;
    }
    OpGraph graph("bert-" + SizeTag(v.size_billions), Precision::kFp16, 256);
    const int64_t seq = 512;
    AppendEmbedding(graph, "", kVocab, v.hidden, seq);
    TransformerLayerSpec layer;
    layer.hidden = v.hidden;
    layer.ffn_hidden = 4 * v.hidden;
    layer.num_heads = v.heads;
    layer.seq_len = seq;
    for (int i = 0; i < v.layers; ++i) {
      AppendTransformerLayer(graph, "enc" + std::to_string(i) + ".", layer);
    }
    // Masked-LM head, as in BERT pre-training.
    AppendLmHead(graph, "", kVocab, v.hidden, seq);
    return graph;
  }
  ACESO_CHECK(false) << "unknown BERT size: " << size_billions;
  return OpGraph();
}

StatusOr<OpGraph> BuildByName(const std::string& name) {
  auto starts_with = [&](const char* prefix) {
    return name.rfind(prefix, 0) == 0;
  };
  auto parse_size = [&](const char* prefix) -> double {
    std::string tail = name.substr(std::string(prefix).size());
    if (!tail.empty() && tail.back() == 'b') {
      tail.pop_back();
    }
    return std::atof(tail.c_str());
  };
  if (starts_with("gpt3-")) {
    for (const GptVariant& v : kGptVariants) {
      if (std::abs(v.size_billions - parse_size("gpt3-")) < 1e-9) {
        return Gpt3(v.size_billions);
      }
    }
  } else if (starts_with("t5-")) {
    for (const T5Variant& v : kT5Variants) {
      if (std::abs(v.size_billions - parse_size("t5-")) < 1e-9) {
        return T5(v.size_billions);
      }
    }
  } else if (starts_with("wresnet-")) {
    for (const WrnVariant& v : kWrnVariants) {
      if (std::abs(v.size_billions - parse_size("wresnet-")) < 1e-9) {
        return WideResnet(v.size_billions);
      }
    }
  } else if (starts_with("deepnet-")) {
    const int layers = std::atoi(name.substr(8).c_str());
    if (layers > 0 && layers <= 1024) {
      return DeepTransformer(layers);
    }
  } else if (starts_with("bert-")) {
    for (const double size : {0.34, 1.2, 3.9}) {
      if (std::abs(size - parse_size("bert-")) < 1e-9) {
        return Bert(size);
      }
    }
  }
  return InvalidArgument("unknown model name: " + name);
}

std::vector<std::string> ZooNames() {
  return {
      "gpt3-0.35b", "gpt3-1.3b", "gpt3-2.6b", "gpt3-6.7b", "gpt3-13b",
      "t5-0.77b",   "t5-3b",     "t5-6b",     "t5-11b",    "t5-22b",
      "wresnet-0.5b", "wresnet-2b", "wresnet-4b", "wresnet-6.8b",
      "wresnet-13b",
  };
}

int GpusForSizeIndex(int size_index) {
  constexpr int kGpus[] = {1, 4, 8, 16, 32};
  ACESO_CHECK_GE(size_index, 0);
  ACESO_CHECK_LT(size_index, 5);
  return kGpus[size_index];
}

}  // namespace models
}  // namespace aceso
