// A tiny line-oriented key/value record format used to persist the profiling
// database and search results. Deliberately simpler than JSON: one record per
// block, "key = value" lines, blocks separated by blank lines.
//
//   record {
//     op_kind = matmul
//     tp = 4
//     time_us = 123.4
//   }

#ifndef SRC_COMMON_TEXT_RECORD_H_
#define SRC_COMMON_TEXT_RECORD_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace aceso {

// One record: an ordered map from key to string value plus typed accessors.
class TextRecord {
 public:
  void Set(const std::string& key, const std::string& value);
  void SetInt(const std::string& key, int64_t value);
  void SetDouble(const std::string& key, double value);

  bool Has(const std::string& key) const;
  StatusOr<std::string> Get(const std::string& key) const;
  StatusOr<int64_t> GetInt(const std::string& key) const;
  StatusOr<double> GetDouble(const std::string& key) const;

  const std::map<std::string, std::string>& fields() const { return fields_; }

 private:
  std::map<std::string, std::string> fields_;
};

// Serializes records to the block format above.
std::string SerializeRecords(const std::vector<TextRecord>& records);

// Parses the block format; rejects malformed lines.
StatusOr<std::vector<TextRecord>> ParseRecords(const std::string& text);

// Whole-file helpers.
Status WriteRecordsToFile(const std::string& path,
                          const std::vector<TextRecord>& records);
StatusOr<std::vector<TextRecord>> ReadRecordsFromFile(const std::string& path);

}  // namespace aceso

#endif  // SRC_COMMON_TEXT_RECORD_H_
