// Aligned plain-text tables for the benchmark harnesses. Every experiment
// binary prints the same rows/series the paper reports through this class.

#ifndef SRC_COMMON_TABLE_PRINTER_H_
#define SRC_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace aceso {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  // Adds one row; the cell count must match the header.
  void AddRow(std::vector<std::string> cells);

  // Renders the table with a separator line under the header.
  void Print(std::ostream& os) const;

  // Renders to a string (used in tests).
  std::string ToString() const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace aceso

#endif  // SRC_COMMON_TABLE_PRINTER_H_
