#include "src/common/rng.h"

#include <cassert>
#include <cmath>

namespace aceso {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  return MixU64(state);
}

uint64_t MixU64(uint64_t value) {
  uint64_t z = value;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

void Rng::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (uint64_t& s : state_) {
    s = SplitMix64(sm);
  }
  has_cached_gaussian_ = false;
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0 - n) % n;
  for (;;) {
    const uint64_t r = NextU64();
    if (r >= threshold) {
      return r % n;
    }
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::NextGaussian(double mean, double stddev) {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return mean + stddev * cached_gaussian_;
  }
  // Box–Muller: generate two variates, cache one.
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) {
    u1 = 1e-300;
  }
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = radius * std::sin(theta);
  has_cached_gaussian_ = true;
  return mean + stddev * radius * std::cos(theta);
}

bool Rng::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

}  // namespace aceso
