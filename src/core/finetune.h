// The op-level fine-tuning pass (§4.2), run after each successful search
// iteration. Two adjustments:
//
//  1. Flexible tp/dp combination inside a stage: for candidate split points,
//     double or halve the tp of the ops from the split point to the end of
//     the stage, keeping the change when the performance model approves.
//  2. Flexible tensor-parallel dimension: flip individual partitioned ops
//     between row-wise and column-wise sharding when that helps.
//
// Both adjustments are greedy: each improving change is committed before
// trying the next.

#ifndef SRC_CORE_FINETUNE_H_
#define SRC_CORE_FINETUNE_H_

#include "src/common/stopwatch.h"
#include "src/config/parallel_config.h"
#include "src/cost/perf_model.h"

namespace aceso {

class FrontierArchive;

struct FineTuneOptions {
  // Cap on split points tried per stage (evenly spaced through the stage);
  // keeps fine-tuning O(ops) for 1K-layer models.
  int max_split_points_per_stage = 8;
  // Cap on dimension flips tried per stage.
  int max_dim_flips_per_stage = 16;
  // Per-device memory budget trials are judged against
  // (PerfResult::ApplyMemoryLimit); <= 0 keeps the performance model's
  // hardware-capacity verdict. Mirrors SearchOptions::memory_budget_bytes.
  int64_t memory_limit_bytes = 0;
  // When set, every evaluated trial (kept or not) is offered to this Pareto
  // archive (DESIGN.md §15). Trials retarget tp/dp tails and flip sharding
  // dimensions — memory moves the walk itself rarely makes — so archiving
  // them widens the frontier's memory coverage at zero extra evaluations.
  // FineTune runs on the search's serial spine, so offers here keep the
  // archive bit-identical across eval_threads.
  FrontierArchive* frontier = nullptr;
};

// Fine-tunes `config` in place; returns the evaluation of the final config.
// Stops early when `budget` expires. When `trial_evaluations` is non-null it
// is incremented once per trial configuration evaluated, so callers (the
// search) can attribute fine-tuning work to their explored-config counters.
PerfResult FineTune(const PerformanceModel& model, ParallelConfig& config,
                    const PerfResult& initial_perf, const TimeBudget& budget,
                    const FineTuneOptions& options = {},
                    int64_t* trial_evaluations = nullptr);

}  // namespace aceso

#endif  // SRC_CORE_FINETUNE_H_
