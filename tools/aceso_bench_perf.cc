// aceso_bench_perf: performance-model walk-throughput benchmark for CI.
//
//   aceso_bench_perf [--out BENCH_perf_model.json] [--min-time SECONDS]
//                    [--quick]
//
// Measures stage-walk throughput (DESIGN.md §12) across models and stage
// counts, in four walk modes:
//
//   - direct_walk:     op memo and run compression off — the pre-§12 path
//                      that recomputes every op breakdown from the profile
//                      database on every walk;
//   - memo_only:       op-breakdown memo on, run compression off;
//   - fast_walk:       memo + repeated-layer run compression (the default);
//   - stage_cached:    the full stack with the stage-cost cache on top
//                      (steady-state hit path, DESIGN.md §8).
//
// All modes are bit-identical by contract; the report carries a per-model
// `bit_identical` flag re-checking that on the measured configs. The
// headline number is `fast_walk_speedup` (direct_walk / fast_walk) for the
// uncached walk on deep repeated-layer models.
//
// The JSON is hand-emitted (the repository carries no JSON dependency); CI
// uploads it as the BENCH_perf_model artifact next to BENCH_search.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/aceso.h"
#include "tools/cli_flags.h"

namespace aceso {
namespace {

struct Args {
  std::string out = "BENCH_perf_model.json";
  double min_time = 1.0;  // per (model, mode) measurement, seconds
  bool quick = false;     // CI smoke mode: shorter measurements
};

bool ParseArgs(int argc, char** argv, Args& args) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args.out = v;
    } else if (flag == "--min-time") {
      if (!cli::ParsePositiveDouble("--min-time", next(), &args.min_time)) {
        return false;
      }
    } else if (flag == "--quick") {
      args.quick = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return true;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct ModeReport {
  std::string mode;
  int64_t evals = 0;
  double seconds = 0.0;
  double evals_per_sec = 0.0;
  double us_per_eval = 0.0;
};

struct WalkReport {
  std::string model;
  int gpus = 0;
  int stages = 0;
  int num_ops = 0;
  std::vector<ModeReport> modes;
  double fast_walk_speedup = 0.0;    // direct_walk / fast_walk
  double memo_only_speedup = 0.0;    // direct_walk / memo_only
  double stage_cached_speedup = 0.0; // direct_walk / stage_cached
  bool bit_identical = true;
  int64_t op_memo_entries = 0;
  int64_t profile_db_entries = 0;
};

struct WalkSetting {
  const char* model;
  int gpus;
  int stages;
};

// Times repeated full evaluations of `config`, doubling the batch size until
// one batch fills `min_time`. Returns the steady-state rate; the caller has
// already warmed every cache layer that is enabled for this mode.
ModeReport MeasureMode(const char* mode, PerformanceModel& model,
                       const ParallelConfig& config, double min_time) {
  ModeReport report;
  report.mode = mode;
  int64_t batch = 1;
  double elapsed = 0.0;
  for (;;) {
    const double start = NowSeconds();
    for (int64_t i = 0; i < batch; ++i) {
      PerfResult result = model.Evaluate(config);
      if (result.iteration_time < 0) std::fprintf(stderr, "\n");
    }
    elapsed = NowSeconds() - start;
    if (elapsed >= min_time || batch >= (int64_t{1} << 30)) break;
    batch *= 2;
  }
  report.evals = batch;
  report.seconds = elapsed;
  report.evals_per_sec =
      elapsed > 0 ? static_cast<double>(batch) / elapsed : 0.0;
  report.us_per_eval =
      batch > 0 ? 1e6 * elapsed / static_cast<double>(batch) : 0.0;
  return report;
}

uint64_t PerfBits(const PerfResult& result) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(result.iteration_time), "");
  std::memcpy(&bits, &result.iteration_time, sizeof(bits));
  return bits;
}

WalkReport BenchWalks(const WalkSetting& setting, double min_time) {
  WalkReport report;
  report.model = setting.model;
  report.gpus = setting.gpus;
  report.stages = setting.stages;
  auto graph = models::BuildByName(setting.model);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return report;
  }
  report.num_ops = graph->num_ops();
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(setting.gpus);
  ProfileDatabase db(cluster);
  const ParallelConfig config =
      *MakeEvenConfig(*graph, cluster, setting.stages, 2);

  StageCacheOptions no_cache;
  no_cache.enabled = false;
  PerformanceModel uncached(&*graph, cluster, &db, no_cache);

  // Bit-identity re-check across all four modes on the measured config.
  uncached.set_op_memo_enabled(false);
  uncached.set_run_compression_enabled(false);
  const uint64_t direct_bits = PerfBits(uncached.Evaluate(config));

  struct Mode {
    const char* name;
    bool memo;
    bool run_compression;
  };
  const Mode modes[] = {
      {"direct_walk", false, false},
      {"memo_only", true, false},
      {"fast_walk", true, true},
  };
  for (const Mode& mode : modes) {
    uncached.set_op_memo_enabled(mode.memo);
    uncached.set_run_compression_enabled(mode.run_compression);
    // Warm under the selected walk mode (memo fill happens here, and the
    // profile DB publishes its read snapshot on the first full walk).
    const uint64_t bits = PerfBits(uncached.Evaluate(config));
    report.bit_identical = report.bit_identical && bits == direct_bits;
    report.modes.push_back(
        MeasureMode(mode.name, uncached, config, min_time));
  }

  PerformanceModel cached(&*graph, cluster, &db);
  const uint64_t cached_bits = PerfBits(cached.Evaluate(config));
  report.bit_identical = report.bit_identical && cached_bits == direct_bits;
  report.modes.push_back(
      MeasureMode("stage_cached", cached, config, min_time));

  auto rate = [&report](const char* name) -> double {
    for (const ModeReport& mode : report.modes) {
      if (mode.mode == name) return mode.evals_per_sec;
    }
    return 0.0;
  };
  const double direct = rate("direct_walk");
  if (direct > 0) {
    report.memo_only_speedup = rate("memo_only") / direct;
    report.fast_walk_speedup = rate("fast_walk") / direct;
    report.stage_cached_speedup = rate("stage_cached") / direct;
  }
  report.op_memo_entries = uncached.op_memo().stats().entries;
  report.profile_db_entries = static_cast<int64_t>(db.NumEntries());
  return report;
}

void WriteJson(const Args& args, const std::vector<WalkReport>& walks) {
  std::FILE* f = std::fopen(args.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", args.out.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"min_time_seconds\": %.3f,\n", args.min_time);
  std::fprintf(f, "  \"quick\": %s,\n", args.quick ? "true" : "false");
  std::fprintf(f, "  \"walks\": [\n");
  for (size_t i = 0; i < walks.size(); ++i) {
    const WalkReport& w = walks[i];
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"model\": \"%s\",\n", JsonEscape(w.model).c_str());
    std::fprintf(f, "      \"gpus\": %d,\n", w.gpus);
    std::fprintf(f, "      \"stages\": %d,\n", w.stages);
    std::fprintf(f, "      \"num_ops\": %d,\n", w.num_ops);
    std::fprintf(f, "      \"bit_identical\": %s,\n",
                 w.bit_identical ? "true" : "false");
    std::fprintf(f, "      \"op_memo_entries\": %lld,\n",
                 static_cast<long long>(w.op_memo_entries));
    std::fprintf(f, "      \"profile_db_entries\": %lld,\n",
                 static_cast<long long>(w.profile_db_entries));
    std::fprintf(f, "      \"memo_only_speedup\": %.2f,\n",
                 w.memo_only_speedup);
    std::fprintf(f, "      \"fast_walk_speedup\": %.2f,\n",
                 w.fast_walk_speedup);
    std::fprintf(f, "      \"stage_cached_speedup\": %.2f,\n",
                 w.stage_cached_speedup);
    std::fprintf(f, "      \"modes\": [\n");
    for (size_t m = 0; m < w.modes.size(); ++m) {
      const ModeReport& mode = w.modes[m];
      std::fprintf(f, "        {\n");
      std::fprintf(f, "          \"mode\": \"%s\",\n", mode.mode.c_str());
      std::fprintf(f, "          \"evals\": %lld,\n",
                   static_cast<long long>(mode.evals));
      std::fprintf(f, "          \"seconds\": %.4f,\n", mode.seconds);
      std::fprintf(f, "          \"evals_per_sec\": %.1f,\n",
                   mode.evals_per_sec);
      std::fprintf(f, "          \"us_per_eval\": %.2f\n", mode.us_per_eval);
      std::fprintf(f, "        }%s\n", m + 1 < w.modes.size() ? "," : "");
    }
    std::fprintf(f, "      ]\n");
    std::fprintf(f, "    }%s\n", i + 1 < walks.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
}

int Main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    std::fprintf(stderr,
                 "usage: %s [--out FILE] [--min-time SECONDS] [--quick]\n",
                 argv[0]);
    return 2;
  }
  if (args.quick) args.min_time = std::min(args.min_time, 0.2);

  const WalkSetting settings[] = {
      {"gpt3-1.3b", 8, 4},
      {"wresnet-0.5b", 8, 4},
      {"deepnet-64", 8, 8},
      {"deepnet-256", 8, 8},
      {"deepnet-1000", 8, 8},
  };
  std::vector<WalkReport> walks;
  for (const WalkSetting& setting : settings) {
    std::printf("%s @%dgpu, %d stages...\n", setting.model, setting.gpus,
                setting.stages);
    const WalkReport w = BenchWalks(setting, args.min_time);
    walks.push_back(w);
    for (const ModeReport& mode : w.modes) {
      std::printf("  %-13s %9.1f evals/s (%.2f us/eval)\n",
                  mode.mode.c_str(), mode.evals_per_sec, mode.us_per_eval);
    }
    std::printf("  fast-walk speedup %.2fx, stage-cached %.2fx%s\n",
                w.fast_walk_speedup, w.stage_cached_speedup,
                w.bit_identical ? "" : "  ** BIT MISMATCH **");
  }

  WriteJson(args, walks);
  std::printf("wrote %s\n", args.out.c_str());

  // The §12 acceptance bar: the memo + run-compression walk must beat the
  // direct walk by >=10x on deepnet-1000, bit-identically.
  for (const WalkReport& w : walks) {
    if (w.model == "deepnet-1000") {
      if (!w.bit_identical) {
        std::fprintf(stderr, "FAIL: walk modes are not bit-identical\n");
        return 1;
      }
      if (w.fast_walk_speedup < 10.0) {
        std::fprintf(stderr,
                     "FAIL: deepnet-1000 fast-walk speedup %.2fx < 10x\n",
                     w.fast_walk_speedup);
        return 1;
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace aceso

int main(int argc, char** argv) { return aceso::Main(argc, argv); }
