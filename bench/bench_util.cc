#include "bench/bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace aceso {
namespace bench {

Workload::Workload(const std::string& model_name, int gpus) {
  auto graph = models::BuildByName(model_name);
  ACESO_CHECK(graph.ok()) << graph.status().ToString();
  graph_ = *std::move(graph);
  cluster_ = ClusterSpec::WithGpuCount(gpus);
  db_ = std::make_unique<ProfileDatabase>(cluster_);
  model_ = std::make_unique<PerformanceModel>(&graph_, cluster_, db_.get());
  executor_ = std::make_unique<PipelineExecutor>(model_.get());
  name_ = model_name + " @" + std::to_string(gpus) + "gpu";
}

double Workload::MeasureThroughput(const ParallelConfig& config) {
  const ExecutionResult run = executor_->Execute(config);
  last_oom_ = run.oom;
  last_tflops_ = executor_->EffectiveTflopsPerGpu(run);
  if (run.oom) {
    return 0.0;
  }
  return run.Throughput(graph_.global_batch_size());
}

double BenchBudgetSeconds() {
  const char* env = std::getenv("ACESO_BENCH_BUDGET");
  if (env != nullptr) {
    const double v = std::atof(env);
    if (v > 0.0) {
      return v;
    }
  }
  return 4.0;
}

bool QuickMode() { return std::getenv("ACESO_BENCH_QUICK") != nullptr; }

std::vector<double> GptSizes() {
  if (QuickMode()) {
    return {0.35, 1.3};
  }
  return {0.35, 1.3, 2.6, 6.7, 13};
}

std::vector<double> T5Sizes() {
  if (QuickMode()) {
    return {0.77, 3};
  }
  return {0.77, 3, 6, 11, 22};
}

std::vector<double> WrnSizes() {
  if (QuickMode()) {
    return {0.5, 2};
  }
  return {0.5, 2, 4, 6.8, 13};
}

SearchOptions DefaultSearchOptions() {
  SearchOptions options;
  options.time_budget_seconds = BenchBudgetSeconds();
  options.max_hops = 7;
  options.seed = 20240422;
  return options;
}

void PrintHeader(const std::string& experiment, const std::string& claim) {
  std::printf("==========================================================\n");
  std::printf("%s\n", experiment.c_str());
  std::printf("paper: %s\n", claim.c_str());
  std::printf("==========================================================\n");
}

std::string Normalized(double value, double best) {
  if (best <= 0.0) {
    return "n/a";
  }
  return FormatDouble(value / best, 2) + "x";
}

void PrintConvergence(const std::string& label,
                      const std::vector<ConvergencePoint>& trend,
                      int max_rows) {
  std::printf("  %s:", label.c_str());
  if (trend.empty()) {
    std::printf(" (no data)\n");
    return;
  }
  auto print_point = [](const ConvergencePoint& point) {
    // While the best-so-far is infeasible its time is a model estimate for
    // an over-memory configuration, not an achievable iteration time.
    if (!point.feasible) {
      std::printf(" [%.2fs: OOM]", point.elapsed_seconds);
    } else {
      std::printf(" [%.2fs: %.2f]", point.elapsed_seconds,
                  point.best_iteration_time);
    }
  };
  const size_t n = trend.size();
  const size_t step = std::max<size_t>(1, n / static_cast<size_t>(max_rows));
  for (size_t i = 0; i < n; i += step) {
    print_point(trend[i]);
  }
  if ((n - 1) % step != 0) {
    print_point(trend[n - 1]);
  }
  std::printf("\n");
}

ImprovementHistograms ExtractImprovementHistograms(
    const std::vector<TelemetryEvent>& events) {
  ImprovementHistograms hist;
  for (const TelemetryEvent& event : events) {
    if (event.type() != "iteration" ||
        !event.GetBool("accepted").value_or(false)) {
      continue;
    }
    hist.bottleneck_attempts.push_back(
        static_cast<int>(event.GetInt("bottleneck_attempt").value_or(0)));
    hist.hops.push_back(static_cast<int>(event.GetInt("hops").value_or(0)));
  }
  return hist;
}

}  // namespace bench
}  // namespace aceso
