// A small discrete-event simulation engine.
//
// The runtime executes a parallel training configuration as a task graph:
// tasks have fixed durations, precedence dependencies, and may claim one
// exclusive resource (a GPU stream or a network link). The engine computes
// start/finish times under greedy list scheduling: when a resource is free,
// the ready task that was *added first* runs next, which lets callers encode
// schedule policies (e.g. 1F1B order) by insertion order.

#ifndef SRC_RUNTIME_EVENT_SIM_H_
#define SRC_RUNTIME_EVENT_SIM_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace aceso {

using TaskId = int32_t;
using ResourceId = int32_t;

inline constexpr ResourceId kNoResource = -1;

class EventSimulator {
 public:
  // Declares an exclusive resource.
  ResourceId AddResource(std::string name);

  // Declares a task of `duration` seconds that runs on `resource`
  // (kNoResource = unconstrained).
  TaskId AddTask(std::string name, double duration,
                 ResourceId resource = kNoResource);

  // `after` cannot start before `before` finishes.
  void AddDependency(TaskId before, TaskId after);

  // Runs the simulation; returns the makespan. Fails on dependency cycles.
  StatusOr<double> Run();

  // Valid after Run().
  double StartTime(TaskId task) const;
  double FinishTime(TaskId task) const;
  double ResourceBusySeconds(ResourceId resource) const;

  size_t num_tasks() const { return tasks_.size(); }
  const std::string& task_name(TaskId task) const {
    return tasks_[static_cast<size_t>(task)].name;
  }
  ResourceId task_resource(TaskId task) const {
    return tasks_[static_cast<size_t>(task)].resource;
  }
  double task_duration(TaskId task) const {
    return tasks_[static_cast<size_t>(task)].duration;
  }
  size_t num_resources() const { return resources_.size(); }
  const std::string& resource_name(ResourceId resource) const {
    return resources_[static_cast<size_t>(resource)].name;
  }

 private:
  struct Task {
    std::string name;
    double duration = 0.0;
    ResourceId resource = kNoResource;
    int unmet_deps = 0;
    double ready_time = 0.0;
    double start_time = -1.0;
    double finish_time = -1.0;
    std::vector<TaskId> successors;
  };
  struct Resource {
    std::string name;
    double free_time = 0.0;
    double busy_seconds = 0.0;
    std::deque<TaskId> ready_queue;  // FIFO by insertion order
  };

  std::vector<Task> tasks_;
  std::vector<Resource> resources_;
};

}  // namespace aceso

#endif  // SRC_RUNTIME_EVENT_SIM_H_
