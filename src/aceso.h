// Umbrella header: the Aceso public API.
//
// Aceso is an auto-configuration search system for parallel DNN training
// (data / tensor / pipeline parallelism + recomputation), reproducing
// "Aceso: Efficient Parallel DNN Training through Iterative Bottleneck
// Alleviation" (EuroSys 2024).
//
// Typical flow:
//   OpGraph model = models::Gpt3(1.3);
//   ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
//   ProfileDatabase db(cluster);
//   PerformanceModel perf(&model, cluster, &db);
//   SearchResult result = AcesoSearch(perf, SearchOptions{});
//   result.best.config / result.best.perf

#ifndef SRC_ACESO_H_
#define SRC_ACESO_H_

#include "src/baselines/alpa_like.h"
#include "src/baselines/baseline_result.h"
#include "src/baselines/dp_solver.h"
#include "src/baselines/megatron.h"
#include "src/common/json.h"
#include "src/common/logging.h"
#include "src/common/status.h"
#include "src/common/stopwatch.h"
#include "src/common/table_printer.h"
#include "src/common/units.h"
#include "src/config/config_io.h"
#include "src/config/parallel_config.h"
#include "src/core/apply.h"
#include "src/core/bottleneck.h"
#include "src/core/dp_seeder.h"
#include "src/core/seed_adapt.h"
#include "src/core/finetune.h"
#include "src/core/primitives.h"
#include "src/core/search.h"
#include "src/cost/batch_eval.h"
#include "src/cost/perf_model.h"
#include "src/cost/resource_usage.h"
#include "src/cost/stage_cache.h"
#include "src/hw/cluster.h"
#include "src/hw/gpu_spec.h"
#include "src/hw/interconnect.h"
#include "src/ir/model_builder.h"
#include "src/ir/models/model_zoo.h"
#include "src/ir/op_graph.h"
#include "src/ir/operator.h"
#include "src/obs/chrome_trace.h"
#include "src/obs/telemetry.h"
#include "src/plan/execution_plan.h"
#include "src/plan/schedule.h"
#include "src/profile/profile_db.h"
#include "src/runtime/allocator_sim.h"
#include "src/runtime/event_sim.h"
#include "src/runtime/pipeline_executor.h"
#include "src/runtime/trace.h"
#include "src/serve/daemon.h"
#include "src/serve/http.h"
#include "src/serve/plan_cache.h"
#include "src/serve/plan_protocol.h"
#include "src/serve/service.h"

#endif  // SRC_ACESO_H_
