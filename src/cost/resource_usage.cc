#include "src/cost/resource_usage.h"

#include <sstream>

#include "src/common/units.h"

namespace aceso {

const char* ResourceName(Resource resource) {
  switch (resource) {
    case Resource::kComputation:
      return "computation";
    case Resource::kCommunication:
      return "communication";
    case Resource::kMemory:
      return "memory";
  }
  return "unknown";
}

double StageUsage::TimeShare(Resource resource) const {
  const double total = comp_time + comm_time + recompute_time;
  if (total <= 0.0) {
    return 0.0;
  }
  switch (resource) {
    case Resource::kComputation:
      return (comp_time + recompute_time) / total;
    case Resource::kCommunication:
      return comm_time / total;
    case Resource::kMemory:
      return 0.0;  // memory pressure is judged against capacity, not time
  }
  return 0.0;
}

std::string PerfResult::Summary() const {
  std::ostringstream oss;
  oss << (oom ? "OOM" : "ok") << " iter=" << FormatSeconds(iteration_time)
      << " slowest=s" << slowest_stage << " maxmem=s" << max_memory_stage
      << " (" << FormatBytes(MaxMemory()) << "/" << FormatBytes(memory_limit)
      << ")";
  return oss.str();
}

}  // namespace aceso
