// Extension study: the inc-zero/dec-zero primitives (ZeRO-style optimizer
// sharding), demonstrating the paper's extensibility claim (§3.2.1: "Aceso
// can be extended with new primitives for future research").
//
// On memory-constrained devices, optimizer states dominate data-parallel
// replicas; adding the ZeRO primitive pair to the search space lets Aceso
// trade a parameter all-gather for that memory, unlocking configurations
// (larger microbatches, less recomputation) the Table-1 space has to buy
// with recomputation time.

#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"

int main() {
  using namespace aceso;
  using namespace aceso::bench;
  PrintHeader("Extension: ZeRO optimizer-sharding primitives",
              "new primitives slot into the same resource-trading search; "
              "with them Aceso finds equal-or-better plans under memory "
              "pressure");

  struct Setting {
    const char* model;
    int gpus;
    int64_t memory_gib;  // shrunk device memory to create pressure
  };
  std::vector<Setting> settings = {
      {"gpt3-0.35b", 8, 7},
      {"gpt3-1.3b", 8, 12},
      {"t5-0.77b", 8, 10},
  };
  if (QuickMode()) {
    settings.resize(1);
  }

  TablePrinter table({"setting", "search space", "best pred iter(s)",
                      "max mem", "zero ops", "recomputed ops"});
  for (const Setting& setting : settings) {
    auto graph = models::BuildByName(setting.model);
    ACESO_CHECK(graph.ok());
    ClusterSpec cluster = ClusterSpec::WithGpuCount(setting.gpus);
    cluster.gpu.memory_bytes = setting.memory_gib * kGiB;
    ProfileDatabase db(cluster);
    PerformanceModel model(&*graph, cluster, &db);
    const std::string tag = std::string(setting.model) + " @" +
                            std::to_string(setting.gpus) + "gpu/" +
                            std::to_string(setting.memory_gib) + "GiB";

    for (const bool with_zero : {false, true}) {
      SearchOptions options = DefaultSearchOptions();
      options.enable_zero_primitives = with_zero;
      const SearchResult result = AcesoSearch(model, options);
      int zero_ops = 0;
      int rc_ops = 0;
      if (result.found) {
        for (const StageConfig& stage : result.best.config.stages()) {
          rc_ops += stage.NumRecomputed();
          for (const OpParallel& op : stage.ops) {
            zero_ops += (op.zero_opt && op.dp > 1) ? 1 : 0;
          }
        }
      }
      table.AddRow(
          {tag, with_zero ? "Table 1 + zero" : "Table 1 (paper)",
           result.found ? FormatDouble(result.best.perf.iteration_time, 2)
                        : "infeasible",
           result.found ? FormatBytes(result.best.perf.MaxMemory()) : "-",
           std::to_string(zero_ops), std::to_string(rc_ops)});
    }
  }
  table.Print(std::cout);
  return 0;
}
