#include "src/common/thread_pool.h"

#include <utility>

namespace aceso {
namespace {

// Which pool (if any) this thread is currently executing a task for, its
// worker index in that pool (-1 for non-worker helpers), and how many of
// that pool's tasks are on this thread's call stack. Helping makes these
// genuinely dynamic: an external thread blocked in Wait() temporarily
// becomes an executor, and nested waits from inside its helped task must
// see themselves as "inside the pool".
thread_local ThreadPool* tls_pool = nullptr;
thread_local int tls_worker = -1;
thread_local int tls_stack_tasks = 0;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = 1;
  }
  deques_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    deques_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(static_cast<int>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  shutting_down_.store(true, std::memory_order_release);
  NotifyStateChange();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Submit(std::function<void()> task) {
  Enqueue(Task{std::move(task), nullptr});
}

void ThreadPool::Enqueue(Task task) {
  // A worker (or a thread currently helping as one) keeps its work local:
  // the back of its own deque, where it will pop it LIFO while the batch is
  // hot. Everyone else goes through the shared injection queue.
  WorkerQueue* target = &injection_;
  if (tls_pool == this && tls_worker >= 0) {
    target = deques_[static_cast<size_t>(tls_worker)].get();
  }
  in_flight_.fetch_add(1, std::memory_order_acq_rel);
  submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(target->mu);
    target->q.push_back(std::move(task));
  }
  queued_.fetch_add(1, std::memory_order_acq_rel);
  NotifyStateChange();
}

bool ThreadPool::Dequeue(Task* task) {
  // Fast out: nothing queued anywhere.
  if (queued_.load(std::memory_order_acquire) == 0) {
    return false;
  }
  const int self = tls_pool == this ? tls_worker : -1;
  // 1. Own deque, newest first.
  if (self >= 0) {
    WorkerQueue& own = *deques_[static_cast<size_t>(self)];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.q.empty()) {
      *task = std::move(own.q.back());
      own.q.pop_back();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  // 2. Injection queue, oldest first.
  {
    std::lock_guard<std::mutex> lock(injection_.mu);
    if (!injection_.q.empty()) {
      *task = std::move(injection_.q.front());
      injection_.q.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      return true;
    }
  }
  // 3. Steal from the other workers, oldest first, round-robin from our
  // right-hand neighbour so thieves spread across victims.
  const size_t n = deques_.size();
  const size_t start = self >= 0 ? static_cast<size_t>(self) + 1 : 0;
  for (size_t offset = 0; offset < n; ++offset) {
    const size_t victim = (start + offset) % n;
    if (self >= 0 && victim == static_cast<size_t>(self)) {
      continue;
    }
    WorkerQueue& q = *deques_[victim];
    std::lock_guard<std::mutex> lock(q.mu);
    if (!q.q.empty()) {
      *task = std::move(q.q.front());
      q.q.pop_front();
      queued_.fetch_sub(1, std::memory_order_acq_rel);
      stolen_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

void ThreadPool::Execute(Task task, bool helping) {
  // Adopt pool identity for the duration of the task, so nested Submit()
  // lands on the right deque and nested Wait() knows this stack holds a
  // pool task. Helpers from other threads keep worker index -1.
  ThreadPool* const prev_pool = tls_pool;
  const int prev_worker = tls_worker;
  const int prev_stack = tls_stack_tasks;
  if (tls_pool != this) {
    tls_pool = this;
    tls_worker = -1;
    tls_stack_tasks = 0;
  }
  ++tls_stack_tasks;

  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }

  --tls_stack_tasks;
  tls_pool = prev_pool;
  tls_worker = prev_worker;
  tls_stack_tasks = prev_stack;

  if (error != nullptr) {
    if (task.group != nullptr) {
      std::lock_guard<std::mutex> lock(task.group->error_mu_);
      if (task.group->first_error_ == nullptr) {
        task.group->first_error_ = error;
      }
    } else {
      std::lock_guard<std::mutex> lock(error_mu_);
      if (first_error_ == nullptr) {
        first_error_ = error;
      }
    }
  }

  executed_.fetch_add(1, std::memory_order_relaxed);
  if (helping) {
    helped_.fetch_add(1, std::memory_order_relaxed);
  }
  if (task.group != nullptr) {
    task.group->pending_.fetch_sub(1, std::memory_order_acq_rel);
  }
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  // Completion can satisfy any waiter's predicate (group done, pool
  // quiescent, worker shutdown); wake them all to re-check. Tasks are
  // coarse (a model evaluation or a whole stage-count search), so the
  // broadcast is not on any hot path.
  NotifyStateChange();
}

bool ThreadPool::RunOneTask(bool helping) {
  Task task;
  if (!Dequeue(&task)) {
    return false;
  }
  Execute(std::move(task), helping);
  return true;
}

void ThreadPool::NotifyStateChange() {
  // Acquiring mu_ orders this notification against waiters that checked
  // their predicate under mu_ but have not yet blocked.
  { std::lock_guard<std::mutex> lock(mu_); }
  state_change_.notify_all();
}

void ThreadPool::WorkerLoop(int worker) {
  tls_pool = this;
  tls_worker = worker;
  for (;;) {
    if (RunOneTask(/*helping=*/false)) {
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    state_change_.wait(lock, [this] {
      return queued_.load(std::memory_order_acquire) > 0 ||
             (shutting_down_.load(std::memory_order_acquire) &&
              in_flight_.load(std::memory_order_acquire) == 0);
    });
    if (shutting_down_.load(std::memory_order_acquire) &&
        in_flight_.load(std::memory_order_acquire) == 0) {
      return;
    }
  }
}

void ThreadPool::Wait() {
  const int64_t my_stack = tls_pool == this ? tls_stack_tasks : 0;
  // The quiescence rule only excuses *wrapper* tasks for callers that are
  // themselves inside one; an outside caller gets the full guarantee (every
  // task finished, including the epilogues of nested waiters).
  const bool inside = my_stack > 0;
  for (;;) {
    if (in_flight_.load(std::memory_order_acquire) - my_stack <= 0) {
      break;
    }
    if (RunOneTask(/*helping=*/true)) {
      continue;
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (queued_.load(std::memory_order_acquire) > 0) {
      continue;  // work appeared while acquiring the lock; go help
    }
    // Nothing to help with: publish the wrapper tasks on this stack as
    // excused, so mutually-waiting tasks can recognize quiescence, and wake
    // other waiters whose predicate this may have satisfied.
    waiting_stack_tasks_.fetch_add(my_stack, std::memory_order_acq_rel);
    lock.unlock();
    state_change_.notify_all();
    lock.lock();
    bool quiescent = false;
    state_change_.wait(lock, [this, inside, &quiescent] {
      if (queued_.load(std::memory_order_acquire) > 0) {
        return true;
      }
      const int64_t excused =
          inside ? waiting_stack_tasks_.load(std::memory_order_acquire) : 0;
      if (in_flight_.load(std::memory_order_acquire) - excused <= 0) {
        quiescent = true;
        return true;
      }
      return false;
    });
    waiting_stack_tasks_.fetch_sub(my_stack, std::memory_order_acq_rel);
    if (quiescent) {
      break;
    }
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

ThreadPoolStats ThreadPool::stats() const {
  ThreadPoolStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.executed = executed_.load(std::memory_order_relaxed);
  s.stolen = stolen_.load(std::memory_order_relaxed);
  s.helped = helped_.load(std::memory_order_relaxed);
  return s;
}

TaskGroup::~TaskGroup() {
  if (pending_.load(std::memory_order_acquire) > 0) {
    try {
      Wait();
    } catch (...) {
      // Wait() already drained the group; the error is dropped by contract.
    }
  }
}

void TaskGroup::Submit(std::function<void()> task) {
  pending_.fetch_add(1, std::memory_order_acq_rel);
  pool_.Enqueue(ThreadPool::Task{std::move(task), this});
}

void TaskGroup::Wait() {
  while (pending_.load(std::memory_order_acquire) > 0) {
    if (pool_.RunOneTask(/*helping=*/true)) {
      continue;
    }
    // Every remaining group task is running on some other thread; sleep
    // until one finishes or new helpable work shows up.
    std::unique_lock<std::mutex> lock(pool_.mu_);
    pool_.state_change_.wait(lock, [this] {
      return pending_.load(std::memory_order_acquire) == 0 ||
             pool_.queued_.load(std::memory_order_acquire) > 0;
    });
  }
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(error_mu_);
    error = first_error_;
    first_error_ = nullptr;
  }
  if (error != nullptr) {
    std::rethrow_exception(error);
  }
}

void ParallelFor(ThreadPool& pool, size_t count,
                 const std::function<void(size_t)>& fn) {
  TaskGroup group(pool);
  for (size_t i = 0; i < count; ++i) {
    group.Submit([&fn, i] { fn(i); });
  }
  group.Wait();
}

}  // namespace aceso
