#include "src/common/hash.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/config/parallel_config.h"
#include "src/ir/models/model_zoo.h"

namespace aceso {
namespace {

TEST(FnvHashTest, EmptyStringIsOffsetBasis) {
  EXPECT_EQ(FnvHashString(""), kFnvOffsetBasis);
}

TEST(FnvHashTest, KnownVector) {
  // FNV-1a 64-bit of "a" is a published constant.
  EXPECT_EQ(FnvHashString("a"), 0xAF63DC4C8601EC8CULL);
}

TEST(FnvHashTest, DifferentStringsDiffer) {
  EXPECT_NE(FnvHashString("abc"), FnvHashString("abd"));
  EXPECT_NE(FnvHashString("abc"), FnvHashString("acb"));
}

TEST(FnvHashTest, SeedChaining) {
  const uint64_t h1 = FnvHashString("ab");
  const uint64_t h2 = FnvHashString("b", FnvHashString("a"));
  EXPECT_EQ(h1, h2);
}

TEST(HashCombineTest, OrderDependent) {
  EXPECT_NE(HashCombine(HashCombine(0, 1), 2),
            HashCombine(HashCombine(0, 2), 1));
}

TEST(HasherTest, FieldOrderMatters) {
  Hasher a;
  a.Add(1).Add(2);
  Hasher b;
  b.Add(2).Add(1);
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(HasherTest, MixedTypes) {
  Hasher h;
  h.Add(uint64_t{7}).Add(-3).Add(true).Add(2.5).Add(std::string_view("x"));
  Hasher same;
  same.Add(uint64_t{7}).Add(-3).Add(true).Add(2.5).Add(std::string_view("x"));
  EXPECT_EQ(h.Digest(), same.Digest());
}

TEST(HasherTest, DoubleBitPatternDistinguished) {
  Hasher a;
  a.Add(0.0);
  Hasher b;
  b.Add(1.0);
  EXPECT_NE(a.Digest(), b.Digest());
}

TEST(HasherTest, ManyInputsFewCollisions) {
  std::set<uint64_t> digests;
  for (int i = 0; i < 10000; ++i) {
    Hasher h;
    h.Add(i).Add(i * 3);
    digests.insert(h.Digest());
  }
  EXPECT_EQ(digests.size(), 10000u);
}

// ----- Configuration-hash golden values -----
//
// These constants were captured from the pre-copy-on-write implementation
// (which re-walked every op on every hash). The incremental representation
// must keep producing the exact same values: semantic hashes are persisted
// implicitly through dedup behavior and stage-cost cache keys, and any
// drift would silently invalidate cross-version comparisons of search
// trajectories. If a hash-layout change is ever intentional, recapture
// these and say so loudly in the commit.

TEST(ConfigHashGoldenTest, Gpt3EvenConfigMatchesPreCowValues) {
  const OpGraph graph = *models::BuildByName("gpt3-0.35b");
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(16);
  const ParallelConfig config = *MakeEvenConfig(graph, cluster, 4, 1);

  EXPECT_EQ(config.SemanticHash(graph), 518114822866887510ULL);
  const uint64_t kStageKeys[4] = {12818917683426247322ULL,
                                  14539861582369513248ULL,
                                  3556924303830189156ULL,
                                  10424588392720782350ULL};
  for (int s = 0; s < 4; ++s) {
    EXPECT_EQ(config.StageSemanticHash(graph, cluster, s), kStageKeys[s])
        << "stage " << s;
  }

  // A localized mutation (recompute on stage 2's first op) changes the
  // whole-config hash and stage 2's key exactly as before, and leaves the
  // other stages' keys untouched.
  ParallelConfig mutated = config;
  mutated.MutableOpSettings(mutated.stage(2).first_op).recompute = true;
  EXPECT_EQ(mutated.SemanticHash(graph), 1490011249254862671ULL);
  EXPECT_EQ(mutated.StageSemanticHash(graph, cluster, 2),
            17200069606752991849ULL);
  for (int s : {0, 1, 3}) {
    EXPECT_EQ(mutated.StageSemanticHash(graph, cluster, s), kStageKeys[s]);
  }

  ParallelConfig bigger = config;
  bigger.set_microbatch_size(4);
  EXPECT_EQ(bigger.SemanticHash(graph), 16049058280529372890ULL);

  // The parent config is unaffected by either derived mutation (CoW).
  EXPECT_EQ(config.SemanticHash(graph), 518114822866887510ULL);
}

TEST(ConfigHashGoldenTest, WresnetConfigMatchesPreCowValues) {
  const OpGraph graph = *models::BuildByName("wresnet-0.5b");
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  const ParallelConfig config = *MakeEvenConfig(graph, cluster, 2, 2);
  EXPECT_EQ(config.SemanticHash(graph), 14021843154385322606ULL);
  EXPECT_EQ(config.StageSemanticHash(graph, cluster, 1),
            6343908077807864943ULL);
}

TEST(ConfigHashGoldenTest, CachedAndUncachedPathsAgree) {
  const OpGraph graph = *models::BuildByName("gpt3-0.35b");
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(16);
  const ParallelConfig config = *MakeEvenConfig(graph, cluster, 4, 1);
  EXPECT_EQ(config.SemanticHash(graph), config.SemanticHashUncached(graph));
  for (int s = 0; s < config.num_stages(); ++s) {
    EXPECT_EQ(config.StageSemanticHash(graph, cluster, s),
              config.StageSemanticHashUncached(graph, cluster, s));
  }
}

}  // namespace
}  // namespace aceso
