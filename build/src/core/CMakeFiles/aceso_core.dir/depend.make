# Empty dependencies file for aceso_core.
# This may be replaced when dependencies are built.
