#include "src/cost/resource_usage.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace aceso {
namespace {

constexpr int64_t kGiB = 1LL << 30;

PerfResult Make(bool oom, double iteration_time, int64_t peak_memory,
                int64_t memory_limit) {
  PerfResult r;
  r.oom = oom;
  r.iteration_time = iteration_time;
  r.memory_limit = memory_limit;
  StageUsage stage;
  stage.memory_bytes = peak_memory;
  r.stages.push_back(stage);
  return r;
}

TEST(PerfResultTest, FeasibleBeatsInfeasible) {
  const PerfResult feasible = Make(false, 99.0, 10 * kGiB, 16 * kGiB);
  const PerfResult infeasible = Make(true, 1.0, 17 * kGiB, 16 * kGiB);
  EXPECT_TRUE(feasible.BetterThan(infeasible));
  EXPECT_FALSE(infeasible.BetterThan(feasible));
}

TEST(PerfResultTest, BothInfeasibleCompareByOverageNotRawMemory) {
  // ISSUE-8 regression: a result judged under a tight budget can have a
  // *smaller* raw peak than one judged at device capacity while being far
  // more over its own limit. Overage, not MaxMemory, is the verdict.
  const PerfResult barely_over = Make(true, 5.0, 33 * kGiB, 32 * kGiB);
  const PerfResult hugely_over = Make(true, 5.0, 20 * kGiB, 8 * kGiB);
  EXPECT_LT(barely_over.MemoryOverage(), hugely_over.MemoryOverage());
  EXPECT_TRUE(barely_over.BetterThan(hugely_over));
  EXPECT_FALSE(hugely_over.BetterThan(barely_over));
}

TEST(PerfResultTest, EqualOverageIsAnEquivalenceClassNotATie) {
  // Equal over-memory: neither is strictly better, regardless of time —
  // inventing a tie-break here would reorder golden search trajectories.
  const PerfResult a = Make(true, 1.0, 20 * kGiB, 16 * kGiB);
  const PerfResult b = Make(true, 9.0, 36 * kGiB, 32 * kGiB);
  EXPECT_EQ(a.MemoryOverage(), b.MemoryOverage());
  EXPECT_FALSE(a.BetterThan(b));
  EXPECT_FALSE(b.BetterThan(a));
}

TEST(PerfResultTest, NanTimeIsWorstNeverIncomparable) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const PerfResult fine = Make(false, 2.0, 8 * kGiB, 16 * kGiB);
  const PerfResult nan_result = Make(false, nan, 8 * kGiB, 16 * kGiB);
  const PerfResult inf_result = Make(false, inf, 8 * kGiB, 16 * kGiB);

  EXPECT_TRUE(fine.BetterThan(nan_result));
  EXPECT_FALSE(nan_result.BetterThan(fine));
  // NaN maps to +inf: equivalent to an actual +inf estimate, not below it.
  EXPECT_FALSE(nan_result.BetterThan(inf_result));
  EXPECT_FALSE(inf_result.BetterThan(nan_result));
  // Two NaNs are equivalent, not mutually "better".
  EXPECT_FALSE(nan_result.BetterThan(nan_result));
}

// Exhaustive strict-weak-ordering check over a deliberately nasty set:
// NaN and +inf estimates, equal times, equal overages reached under
// different limits, and mixed feasible/infeasible verdicts. The multimap in
// src/core/search.cc and std::sort both require exactly these axioms.
TEST(PerfResultTest, BetterThanIsAStrictWeakOrdering) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<PerfResult> all = {
      Make(false, 1.0, 8 * kGiB, 16 * kGiB),
      Make(false, 1.0, 12 * kGiB, 32 * kGiB),  // equal time, distinct memory
      Make(false, 3.5, 8 * kGiB, 16 * kGiB),
      Make(false, nan, 8 * kGiB, 16 * kGiB),
      Make(false, inf, 8 * kGiB, 16 * kGiB),
      Make(true, 0.5, 17 * kGiB, 16 * kGiB),   // over by 1 GiB
      Make(true, 9.0, 33 * kGiB, 32 * kGiB),   // over by 1 GiB, other limit
      Make(true, 2.0, 20 * kGiB, 8 * kGiB),    // over by 12 GiB
      Make(true, nan, 18 * kGiB, 16 * kGiB),   // over by 2 GiB, NaN time
  };
  auto better = [](const PerfResult& a, const PerfResult& b) {
    return a.BetterThan(b);
  };
  auto equivalent = [&](const PerfResult& a, const PerfResult& b) {
    return !better(a, b) && !better(b, a);
  };
  for (size_t i = 0; i < all.size(); ++i) {
    EXPECT_FALSE(better(all[i], all[i])) << "irreflexivity at " << i;
    for (size_t j = 0; j < all.size(); ++j) {
      if (better(all[i], all[j])) {
        EXPECT_FALSE(better(all[j], all[i]))
            << "asymmetry violated at " << i << "," << j;
      }
      for (size_t k = 0; k < all.size(); ++k) {
        if (better(all[i], all[j]) && better(all[j], all[k])) {
          EXPECT_TRUE(better(all[i], all[k]))
              << "transitivity violated at " << i << "," << j << "," << k;
        }
        if (equivalent(all[i], all[j]) && equivalent(all[j], all[k])) {
          EXPECT_TRUE(equivalent(all[i], all[k]))
              << "equivalence transitivity violated at " << i << "," << j
              << "," << k;
        }
      }
    }
  }
}

TEST(PerfResultTest, ApplyMemoryLimitRejudgesFeasibility) {
  PerfResult r = Make(false, 2.0, 12 * kGiB, 32 * kGiB);

  // Non-positive budgets keep the model's hardware-capacity verdict.
  r.ApplyMemoryLimit(0);
  EXPECT_FALSE(r.oom);
  EXPECT_EQ(r.memory_limit, 32 * kGiB);
  r.ApplyMemoryLimit(-1);
  EXPECT_FALSE(r.oom);

  // A budget below the peak flips the verdict and re-anchors the overage.
  r.ApplyMemoryLimit(8 * kGiB);
  EXPECT_TRUE(r.oom);
  EXPECT_EQ(r.memory_limit, 8 * kGiB);
  EXPECT_EQ(r.MemoryOverage(), 4 * kGiB);
  EXPECT_DOUBLE_EQ(r.iteration_time, 2.0);  // timing is not the budget's job

  // Raising the budget back above the peak restores feasibility.
  r.ApplyMemoryLimit(16 * kGiB);
  EXPECT_FALSE(r.oom);
  EXPECT_EQ(r.MemoryOverage(), -4 * kGiB);
}

}  // namespace
}  // namespace aceso
