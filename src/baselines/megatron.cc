#include "src/baselines/megatron.h"

#include <algorithm>

#include "src/common/stopwatch.h"

namespace aceso {

StatusOr<ParallelConfig> MakeMegatronConfig(const OpGraph& graph,
                                            const ClusterSpec& cluster, int tp,
                                            int dp, int pp, int microbatch,
                                            bool recompute) {
  if (tp * dp * pp != cluster.num_gpus()) {
    return InvalidArgument("tp*dp*pp must equal the GPU count");
  }
  if (tp > cluster.gpus_per_node) {
    return InvalidArgument("Megatron keeps tensor parallelism inside a node");
  }
  if (pp > graph.num_ops()) {
    return InvalidArgument("more stages than operators");
  }
  if (microbatch % dp != 0) {
    return InvalidArgument("dp must divide the microbatch size");
  }

  // Uniform contiguous op split: Megatron distributes layers evenly across
  // stages; at op granularity that is an even op-count split.
  ParallelConfig config;
  config.set_microbatch_size(microbatch);
  const int n = graph.num_ops();
  int first_op = 0;
  for (int s = 0; s < pp; ++s) {
    StageConfig stage;
    stage.first_op = first_op;
    stage.num_ops = n / pp + (s < n % pp ? 1 : 0);
    stage.num_devices = tp * dp;
    stage.SetUniformParallelism(graph, tp, dp);
    if (recompute) {
      for (OpParallel& setting : stage.ops) {
        setting.recompute = true;
      }
    }
    first_op += stage.num_ops;
    config.AddStage(std::move(stage));
  }
  ACESO_RETURN_IF_ERROR(config.Validate(graph, cluster));
  return config;
}

BaselineResult MegatronGridSearch(const PerformanceModel& model,
                                  const MegatronOptions& options) {
  Stopwatch watch;
  BaselineResult result;
  const OpGraph& graph = model.graph();
  const ClusterSpec& cluster = model.cluster();
  const int gpus = cluster.num_gpus();
  const int64_t batch = graph.global_batch_size();

  for (int tp = 1; tp <= std::min(gpus, cluster.gpus_per_node); tp *= 2) {
    for (int pp = 1; tp * pp <= gpus; pp *= 2) {
      if (gpus % (tp * pp) != 0) {
        continue;
      }
      const int dp = gpus / (tp * pp);
      if (!IsPow2(dp)) {
        continue;
      }
      for (int mbs = dp; mbs <= options.max_microbatch; mbs *= 2) {
        if (batch % mbs != 0) {
          continue;
        }
        for (const bool recompute : {false, true}) {
          auto config = MakeMegatronConfig(graph, cluster, tp, dp, pp, mbs,
                                           recompute);
          if (!config.ok()) {
            continue;
          }
          const PerfResult perf = model.Evaluate(*config);
          ++result.configs_explored;
          if (perf.oom) {
            continue;
          }
          if (!result.found || perf.BetterThan(result.best.perf)) {
            result.found = true;
            result.best.config = *std::move(config);
            result.best.perf = perf;
          }
        }
      }
    }
  }
  result.search_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace aceso
