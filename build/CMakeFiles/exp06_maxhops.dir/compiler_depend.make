# Empty compiler generated dependencies file for exp06_maxhops.
# This may be replaced when dependencies are built.
