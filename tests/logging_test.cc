#include "src/common/logging.h"

#include <gtest/gtest.h>

namespace aceso {
namespace {

TEST(LoggingTest, LevelRoundTrip) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, FilteredMessagesDoNotEvaluateCheaply) {
  // The streamed expression after a filtered ACESO_LOG is still evaluated
  // (standard macro semantics) but must not crash or emit.
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kOff);
  ACESO_LOG(ERROR) << "suppressed " << 42;
  ACESO_LOG(DEBUG) << "suppressed too";
  SetLogLevel(original);
}

TEST(LoggingTest, CheckPassesSilently) {
  ACESO_CHECK(1 + 1 == 2) << "never shown";
  ACESO_CHECK_EQ(4, 4);
  ACESO_CHECK_NE(4, 5);
  ACESO_CHECK_LT(1, 2);
  ACESO_CHECK_LE(2, 2);
  ACESO_CHECK_GT(3, 2);
  ACESO_CHECK_GE(3, 3);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH(ACESO_CHECK(false) << "boom", "Check failed: false");
}

TEST(LoggingDeathTest, CheckEqFailureAborts) {
  const int a = 1;
  const int b = 2;
  EXPECT_DEATH(ACESO_CHECK_EQ(a, b), "Check failed");
}

}  // namespace
}  // namespace aceso
