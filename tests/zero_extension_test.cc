// Tests for the inc-zero/dec-zero extension primitives (ZeRO-style
// optimizer-state sharding) — the paper's "Aceso can be extended with new
// primitives" hook, exercised end-to-end: config semantics, cost model,
// candidate generation, search-space gating, and persistence.

#include <gtest/gtest.h>

#include "src/aceso.h"

namespace aceso {
namespace {

class ZeroTest : public ::testing::Test {
 protected:
  ZeroTest()
      : graph_(models::Gpt3(0.35)),
        cluster_(ClusterSpec::WithGpuCount(8)),
        db_(cluster_),
        model_(&graph_, cluster_, &db_) {}

  // A single-stage pure-dp configuration where ZeRO matters most.
  ParallelConfig DpConfig() {
    auto config = MakeEvenConfig(graph_, cluster_, 1, 8);
    EXPECT_TRUE(config.ok());
    config->MutableStage(0).SetUniformParallelism(graph_, 1, 8);
    EXPECT_TRUE(config->Validate(graph_, cluster_).ok());
    return *std::move(config);
  }

  OpGraph graph_;
  ClusterSpec cluster_;
  ProfileDatabase db_;
  PerformanceModel model_;
};

TEST_F(ZeroTest, ShardingReducesMemoryAddsCommunication) {
  ParallelConfig plain = DpConfig();
  ParallelConfig sharded = plain;
  for (int i = 0; i < graph_.num_ops(); ++i) {
    sharded.MutableOpSettings(i).zero_opt = true;
  }
  const PerfResult a = model_.Evaluate(plain);
  const PerfResult b = model_.Evaluate(sharded);
  EXPECT_LT(b.stages[0].optimizer_bytes, a.stages[0].optimizer_bytes);
  EXPECT_LT(b.MaxMemory(), a.MaxMemory());
  EXPECT_GT(b.stages[0].dp_sync_time, a.stages[0].dp_sync_time);
  // Computation is untouched.
  EXPECT_DOUBLE_EQ(b.stages[0].comp_time, a.stages[0].comp_time);
}

TEST_F(ZeroTest, NoEffectWithoutDataParallelism) {
  // tp-only stage: the flag is semantically inert.
  auto config = MakeEvenConfig(graph_, cluster_, 1, 8);
  ASSERT_TRUE(config.ok());
  config->MutableStage(0).SetUniformParallelism(graph_, 8, 1);
  ParallelConfig flagged = *config;
  for (int i = 0; i < graph_.num_ops(); ++i) {
    flagged.MutableOpSettings(i).zero_opt = true;
  }
  const PerfResult a = model_.Evaluate(*config);
  const PerfResult b = model_.Evaluate(flagged);
  EXPECT_EQ(a.MaxMemory(), b.MaxMemory());
  EXPECT_DOUBLE_EQ(a.iteration_time, b.iteration_time);
  // And the semantic hash ignores the inert flag.
  EXPECT_EQ(config->SemanticHash(graph_), flagged.SemanticHash(graph_));
}

TEST_F(ZeroTest, HashDistinguishesShardedDpConfigs) {
  ParallelConfig plain = DpConfig();
  ParallelConfig sharded = plain;
  sharded.MutableOpSettings(0).zero_opt = true;
  EXPECT_NE(plain.SemanticHash(graph_), sharded.SemanticHash(graph_));
}

TEST_F(ZeroTest, CandidatesToggleTheStage) {
  const ParallelConfig config = DpConfig();
  const PerfResult perf = model_.Evaluate(config);
  const auto inc = GeneratePrimitiveCandidates(
      model_, config, perf, PrimitiveKind::kIncZero, 0);
  ASSERT_EQ(inc.size(), 1u);
  int flagged = 0;
  for (const OpParallel& setting : inc[0].config.stage(0).ops) {
    flagged += setting.zero_opt ? 1 : 0;
  }
  EXPECT_GT(flagged, 0);
  EXPECT_TRUE(inc[0].config.Validate(graph_, cluster_).ok());

  // dec-zero on the already-sharded candidate reverses it.
  const PerfResult inc_perf = model_.Evaluate(inc[0].config);
  const auto dec = GeneratePrimitiveCandidates(
      model_, inc[0].config, inc_perf, PrimitiveKind::kDecZero, 0);
  ASSERT_EQ(dec.size(), 1u);
  EXPECT_EQ(dec[0].config.SemanticHash(graph_),
            config.SemanticHash(graph_));
}

TEST_F(ZeroTest, NoCandidatesWhenNothingToToggle) {
  const ParallelConfig config = DpConfig();  // all zero_opt = false
  const PerfResult perf = model_.Evaluate(config);
  EXPECT_TRUE(GeneratePrimitiveCandidates(model_, config, perf,
                                          PrimitiveKind::kDecZero, 0)
                  .empty());
}

TEST_F(ZeroTest, SearchUsesZeroOnlyWhenEnabled) {
  // A memory-starved device where ZeRO is the cheapest relief.
  ClusterSpec tiny = cluster_;
  tiny.gpu.memory_bytes = 7 * kGiB;
  ProfileDatabase tiny_db(tiny);
  PerformanceModel tiny_model(&graph_, tiny, &tiny_db);

  SearchOptions off;
  off.time_budget_seconds = 0.5;
  SearchOptions on = off;
  on.enable_zero_primitives = true;

  const SearchResult without = AcesoSearch(tiny_model, off);
  const SearchResult with = AcesoSearch(tiny_model, on);
  ASSERT_TRUE(with.found);
  // The paper-space search must never produce a ZeRO-flagged plan.
  if (without.found) {
    for (const StageConfig& stage : without.best.config.stages()) {
      for (const OpParallel& setting : stage.ops) {
        EXPECT_FALSE(setting.zero_opt && setting.dp > 1);
      }
    }
    // The extended space is at least as good.
    EXPECT_LE(with.best.perf.iteration_time,
              without.best.perf.iteration_time * 1.02);
  }
}

TEST_F(ZeroTest, ConfigIoRoundTripsZeroFlags) {
  ParallelConfig config = DpConfig();
  for (int i = 0; i < graph_.num_ops(); i += 3) {
    config.MutableOpSettings(i).zero_opt = true;
  }
  auto parsed = ParseConfig(SerializeConfig(config, graph_.name()), graph_);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->SemanticHash(graph_), config.SemanticHash(graph_));
  for (int i = 0; i < graph_.num_ops(); ++i) {
    EXPECT_EQ(parsed->OpSettings(i).zero_opt, config.OpSettings(i).zero_opt);
  }
}

TEST_F(ZeroTest, RuntimeMemoryDropsUnderSharding) {
  ParallelConfig plain = DpConfig();
  ParallelConfig sharded = plain;
  for (int i = 0; i < graph_.num_ops(); ++i) {
    sharded.MutableOpSettings(i).zero_opt = true;
  }
  PipelineExecutor executor(&model_);
  const ExecutionResult a = executor.Execute(plain);
  const ExecutionResult b = executor.Execute(sharded);
  EXPECT_LT(b.stages[0].peak_reserved_bytes, a.stages[0].peak_reserved_bytes);
}

}  // namespace
}  // namespace aceso
