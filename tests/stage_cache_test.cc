// Tests for the incremental-evaluation layer: unit behaviour of the sharded
// StageCostCache, key properties of ParallelConfig::StageSemanticHash, the
// bit-exactness guarantee of cached Evaluate(), and thread-safety when the
// cache is hammered from a search-style thread pool.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <vector>

#include "src/aceso.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"

namespace aceso {
namespace {

StageCacheOptions DisabledCache() {
  StageCacheOptions options;
  options.enabled = false;
  return options;
}

uint64_t Bits(double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

// Bitwise comparison (EXPECT_EQ on doubles would also accept -0.0 == 0.0 and
// reject NaN == NaN; the cache promises the stronger bit-identity).
bool StageUsageIdentical(const StageUsage& a, const StageUsage& b) {
  return Bits(a.fwd_time) == Bits(b.fwd_time) &&
         Bits(a.bwd_time) == Bits(b.bwd_time) &&
         Bits(a.comp_time) == Bits(b.comp_time) &&
         Bits(a.comm_time) == Bits(b.comm_time) &&
         Bits(a.recompute_time) == Bits(b.recompute_time) &&
         Bits(a.dp_sync_time) == Bits(b.dp_sync_time) &&
         Bits(a.warmup_time) == Bits(b.warmup_time) &&
         Bits(a.steady_time) == Bits(b.steady_time) &&
         Bits(a.cooldown_time) == Bits(b.cooldown_time) &&
         Bits(a.stage_time) == Bits(b.stage_time) &&
         a.param_bytes == b.param_bytes &&
         a.optimizer_bytes == b.optimizer_bytes &&
         a.activation_bytes_per_mb == b.activation_bytes_per_mb &&
         a.reserved_bytes == b.reserved_bytes &&
         a.memory_bytes == b.memory_bytes;
}

bool PerfIdentical(const PerfResult& a, const PerfResult& b) {
  if (a.oom != b.oom || Bits(a.iteration_time) != Bits(b.iteration_time) ||
      a.slowest_stage != b.slowest_stage ||
      a.max_memory_stage != b.max_memory_stage ||
      a.memory_limit != b.memory_limit || a.stages.size() != b.stages.size()) {
    return false;
  }
  for (size_t s = 0; s < a.stages.size(); ++s) {
    if (!StageUsageIdentical(a.stages[s], b.stages[s])) {
      return false;
    }
  }
  return true;
}

#define EXPECT_PERF_IDENTICAL(a, b) EXPECT_TRUE(PerfIdentical((a), (b)))

TEST(StageCostCacheTest, StoresLooksUpAndCounts) {
  StageCacheOptions options;
  options.capacity = 8;
  options.num_shards = 1;
  StageCostCache cache(options);

  EXPECT_EQ(cache.Lookup(1), nullptr);
  auto walk = std::make_shared<const StageCost>();
  cache.Insert(1, walk);
  EXPECT_EQ(cache.Lookup(1), walk);

  const StageCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.evictions, 0);
}

TEST(StageCostCacheTest, EvictsOldestPastCapacity) {
  StageCacheOptions options;
  options.capacity = 4;
  options.num_shards = 1;
  StageCostCache cache(options);

  for (uint64_t key = 0; key < 6; ++key) {
    cache.Insert(key, std::make_shared<const StageCost>());
  }
  // FIFO: keys 0 and 1 are gone, 2..5 remain.
  EXPECT_EQ(cache.Lookup(0), nullptr);
  EXPECT_EQ(cache.Lookup(1), nullptr);
  EXPECT_NE(cache.Lookup(2), nullptr);
  EXPECT_NE(cache.Lookup(5), nullptr);

  const StageCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 2);
  EXPECT_EQ(stats.entries, 4);
}

TEST(StageCostCacheTest, DisabledCacheStoresNothing) {
  StageCostCache cache(DisabledCache());
  cache.Insert(1, std::make_shared<const StageCost>());
  EXPECT_EQ(cache.Lookup(1), nullptr);
  const StageCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, 0);  // disabled lookups don't count
  EXPECT_EQ(stats.entries, 0);
}

TEST(StageCostCacheTest, ReinsertKeepsFirstValue) {
  StageCostCache cache;
  auto first = std::make_shared<const StageCost>();
  cache.Insert(7, first);
  cache.Insert(7, std::make_shared<const StageCost>());
  EXPECT_EQ(cache.Lookup(7), first);
  EXPECT_EQ(cache.stats().entries, 1);
}

class StageHashTest : public ::testing::Test {
 protected:
  StageHashTest()
      : graph_(*models::BuildByName("gpt3-0.35b")),
        cluster_(ClusterSpec::WithGpuCount(16)) {}

  OpGraph graph_;
  ClusterSpec cluster_;
};

TEST_F(StageHashTest, IgnoresUntouchedStages) {
  auto config = MakeEvenConfig(graph_, cluster_, 4, 1);
  ASSERT_TRUE(config.ok());
  ParallelConfig mutated = *config;
  // Toggle recompute on one op of stage 2: a localized primitive-style edit.
  const int victim = mutated.stage(2).first_op;
  mutated.MutableOpSettings(victim).recompute =
      !mutated.OpSettings(victim).recompute;

  for (int s = 0; s < 4; ++s) {
    const uint64_t before = config->StageSemanticHash(graph_, cluster_, s);
    const uint64_t after = mutated.StageSemanticHash(graph_, cluster_, s);
    if (s == 2) {
      EXPECT_NE(before, after);
    } else {
      // Device placement is unchanged, so every other stage keeps its key
      // (this is what makes re-evaluation after one primitive incremental).
      EXPECT_EQ(before, after);
    }
  }
}

TEST_F(StageHashTest, FoldsInNodeOffsetOfFirstDevice) {
  // Two hand-built layouts whose second stage has identical content but a
  // different first-device offset within its node (8 GPUs/node): upstream
  // width 8 puts it at node offset 0, width 4 at offset 4. The walk's
  // node-crossing answers differ, so the keys must too.
  auto make = [&](int upstream_devices) {
    ParallelConfig config;
    config.set_microbatch_size(2);
    StageConfig upstream;
    upstream.first_op = 0;
    upstream.num_ops = 4;
    upstream.num_devices = upstream_devices;
    upstream.SetUniformParallelism(graph_, 1, upstream_devices);
    StageConfig probe;
    probe.first_op = 4;
    probe.num_ops = 4;
    probe.num_devices = 4;
    probe.SetUniformParallelism(graph_, 2, 2);
    config.AddStage(std::move(upstream));
    config.AddStage(std::move(probe));
    return config;
  };

  const uint64_t at_node_boundary =
      make(8).StageSemanticHash(graph_, cluster_, 1);
  const uint64_t mid_node = make(4).StageSemanticHash(graph_, cluster_, 1);
  const uint64_t next_node_boundary =
      make(16).StageSemanticHash(graph_, cluster_, 1);
  EXPECT_NE(at_node_boundary, mid_node);
  // Shifting by a whole node preserves the placement context — and the key,
  // which is what lets sibling stage-count searches share walks.
  EXPECT_EQ(at_node_boundary, next_node_boundary);
}

TEST_F(StageHashTest, CanonicalizesLikeSemanticHash) {
  auto config = MakeEvenConfig(graph_, cluster_, 2, 1);
  ASSERT_TRUE(config.ok());
  ParallelConfig flipped = *config;
  bool exercised = false;
  for (int i = 0; i < graph_.num_ops(); ++i) {
    OpParallel& setting = flipped.MutableOpSettings(i);
    if (setting.tp == 1) {
      setting.tp_dim =
          setting.tp_dim == TpDim::kColumn ? TpDim::kRow : TpDim::kColumn;
      exercised = true;
    }
    if (setting.dp == 1) {
      setting.zero_opt = !setting.zero_opt;
      exercised = true;
    }
  }
  if (!exercised) {
    GTEST_SKIP() << "no op with tp==1 or dp==1 in this config";
  }
  for (int s = 0; s < config->num_stages(); ++s) {
    EXPECT_EQ(config->StageSemanticHash(graph_, cluster_, s),
              flipped.StageSemanticHash(graph_, cluster_, s));
  }
}

// The acceptance property: cached and uncached evaluation agree bit-for-bit
// across randomized primitive-application walks on real zoo models.
class CacheExactnessTest : public ::testing::TestWithParam<const char*> {};

TEST_P(CacheExactnessTest, CachedMatchesUncachedAcrossPrimitiveWalks) {
  const OpGraph graph = *models::BuildByName(GetParam());
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(16);
  ProfileDatabase db(cluster);
  PerformanceModel cached(&graph, cluster, &db);
  PerformanceModel plain(&graph, cluster, &db, DisabledCache());
  Rng rng(20260806);

  auto start = MakeEvenConfig(graph, cluster, 4, 1);
  ASSERT_TRUE(start.ok());
  ParallelConfig current = *start;
  PerfResult current_perf = plain.Evaluate(current);
  EXPECT_PERF_IDENTICAL(cached.Evaluate(current), current_perf);

  int applied = 0;
  for (int step = 0; step < 60 && applied < 25; ++step) {
    const auto kind = static_cast<PrimitiveKind>(
        rng.NextInt(0, kNumPrimitives - 1));
    const int stage = rng.NextInt(0, current.num_stages() - 1);
    std::vector<Candidate> candidates = GeneratePrimitiveCandidates(
        plain, current, current_perf, kind, stage);
    if (candidates.empty()) {
      continue;
    }
    Candidate& pick =
        candidates[rng.NextBelow(candidates.size())];
    current = std::move(pick.config);
    current_perf = plain.Evaluate(current);
    // Fresh config: mostly cache hits on untouched stages. Evaluate twice so
    // the all-hits path is covered as well.
    EXPECT_PERF_IDENTICAL(cached.Evaluate(current), current_perf);
    EXPECT_PERF_IDENTICAL(cached.Evaluate(current), current_perf);
    ++applied;
  }
  EXPECT_GT(applied, 5) << "random walk applied too few primitives";
  const StageCacheStats stats = cached.stage_cache().stats();
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.misses, 0);
}

INSTANTIATE_TEST_SUITE_P(Zoo, CacheExactnessTest,
                         ::testing::Values("gpt3-0.35b", "wresnet-0.5b"));

// A tiny-capacity cache must also stay exact: eviction may cost hits, never
// correctness.
TEST(CacheExactnessEvictionTest, TinyCacheStaysExact) {
  const OpGraph graph = *models::BuildByName("gpt3-0.35b");
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(8);
  ProfileDatabase db(cluster);
  StageCacheOptions tiny;
  tiny.capacity = 3;
  tiny.num_shards = 2;
  PerformanceModel cached(&graph, cluster, &db, tiny);
  PerformanceModel plain(&graph, cluster, &db, DisabledCache());

  auto config = MakeEvenConfig(graph, cluster, 4, 1);
  ASSERT_TRUE(config.ok());
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < graph.num_ops(); i += 3) {
      ParallelConfig variant = *config;
      variant.MutableOpSettings(i).recompute = true;
      EXPECT_PERF_IDENTICAL(cached.Evaluate(variant), plain.Evaluate(variant));
    }
  }
  EXPECT_GT(cached.stage_cache().stats().evictions, 0);
}

// Concurrency: many workers evaluating overlapping configurations against
// one shared model/cache must all see reference results. Mismatches are
// counted (not EXPECTed) inside workers to stay thread-clean.
TEST(StageCacheConcurrencyTest, ParallelEvaluationsMatchReference) {
  const OpGraph graph = *models::BuildByName("gpt3-0.35b");
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(16);
  ProfileDatabase db(cluster);
  PerformanceModel plain(&graph, cluster, &db, DisabledCache());
  StageCacheOptions small;
  small.capacity = 64;  // small enough to evict under this workload
  small.num_shards = 4;
  PerformanceModel cached(&graph, cluster, &db, small);

  // Variant pool: localized recompute edits plus a microbatch doubling, the
  // same shapes the search's primitives produce.
  std::vector<ParallelConfig> configs;
  auto base = MakeEvenConfig(graph, cluster, 4, 1);
  ASSERT_TRUE(base.ok());
  for (int i = 0; i < graph.num_ops() && configs.size() < 40; i += 2) {
    ParallelConfig variant = *base;
    variant.MutableOpSettings(i).recompute = true;
    configs.push_back(variant);
    ParallelConfig bigger = variant;
    bigger.set_microbatch_size(base->microbatch_size() * 2);
    if (bigger.Validate(graph, cluster).ok()) {
      configs.push_back(std::move(bigger));
    }
  }
  ASSERT_GT(configs.size(), 8u);

  std::vector<PerfResult> reference;
  reference.reserve(configs.size());
  for (const ParallelConfig& config : configs) {
    reference.push_back(plain.Evaluate(config));
  }

  constexpr int kWorkers = 8;
  constexpr int kRounds = 20;
  std::atomic<int64_t> mismatches{0};
  ThreadPool pool(kWorkers);
  for (int w = 0; w < kWorkers; ++w) {
    pool.Submit([&, w] {
      Rng rng(static_cast<uint64_t>(w) * 7919 + 1);
      for (int round = 0; round < kRounds; ++round) {
        const size_t i = rng.NextBelow(configs.size());
        if (!PerfIdentical(cached.Evaluate(configs[i]), reference[i])) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  pool.Wait();
  EXPECT_EQ(mismatches.load(), 0);
  const StageCacheStats stats = cached.stage_cache().stats();
  EXPECT_GT(stats.hits, 0);
  EXPECT_GT(stats.misses, 0);
}

TEST(SearchCacheStatsTest, SearchReportsCacheCounters) {
  const OpGraph graph = *models::BuildByName("gpt3-0.35b");
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db);
  SearchOptions options;
  options.time_budget_seconds = 0.3;
  options.max_stages = 4;
  const SearchResult result = AcesoSearch(model, options);
  ASSERT_TRUE(result.found);
  EXPECT_GT(result.stats.configs_explored, 0);
  EXPECT_GT(result.stats.cache_misses, 0);
  // Localized edits re-walk only mutated stages, so the bulk of stage walks
  // must come from the cache.
  EXPECT_GT(result.stats.cache_hits, result.stats.cache_misses);
}

TEST(SearchCacheStatsTest, DisabledCacheReportsNothing) {
  const OpGraph graph = *models::BuildByName("gpt3-0.35b");
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(4);
  ProfileDatabase db(cluster);
  PerformanceModel model(&graph, cluster, &db, DisabledCache());
  SearchOptions options;
  options.time_budget_seconds = 0.1;
  const SearchResult result = AcesoSearchForStages(model, options, 2);
  EXPECT_EQ(result.stats.cache_hits, 0);
  EXPECT_EQ(result.stats.cache_misses, 0);
}

}  // namespace
}  // namespace aceso
