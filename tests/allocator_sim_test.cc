#include "src/runtime/allocator_sim.h"

#include <gtest/gtest.h>

#include "src/common/units.h"

namespace aceso {
namespace {

TEST(RoundSizeTest, SmallRoundsTo512) {
  EXPECT_EQ(CachingAllocatorSim::RoundSize(1), 512);
  EXPECT_EQ(CachingAllocatorSim::RoundSize(512), 512);
  EXPECT_EQ(CachingAllocatorSim::RoundSize(513), 1024);
  EXPECT_EQ(CachingAllocatorSim::RoundSize(0), 512);
}

TEST(RoundSizeTest, LargeRoundsTo2MiB) {
  EXPECT_EQ(CachingAllocatorSim::RoundSize(kMiB), 2 * kMiB);
  EXPECT_EQ(CachingAllocatorSim::RoundSize(2 * kMiB), 2 * kMiB);
  EXPECT_EQ(CachingAllocatorSim::RoundSize(2 * kMiB + 1), 4 * kMiB);
  EXPECT_EQ(CachingAllocatorSim::RoundSize(100 * kMiB), 100 * kMiB);
}

TEST(AllocatorTest, AllocTracksUsage) {
  CachingAllocatorSim alloc(kGiB);
  const int64_t h = alloc.Alloc(10 * kMiB);
  ASSERT_GE(h, 0);
  EXPECT_EQ(alloc.allocated_bytes(), 10 * kMiB);
  EXPECT_EQ(alloc.reserved_bytes(), 10 * kMiB);
}

TEST(AllocatorTest, FreeKeepsReserved) {
  // The caching allocator retains freed blocks (§3.3's "extra memory").
  CachingAllocatorSim alloc(kGiB);
  const int64_t h = alloc.Alloc(10 * kMiB);
  alloc.Free(h);
  EXPECT_EQ(alloc.allocated_bytes(), 0);
  EXPECT_EQ(alloc.reserved_bytes(), 10 * kMiB);
}

TEST(AllocatorTest, CacheReuseAvoidsGrowth) {
  CachingAllocatorSim alloc(kGiB);
  const int64_t h1 = alloc.Alloc(10 * kMiB);
  alloc.Free(h1);
  const int64_t h2 = alloc.Alloc(10 * kMiB);
  ASSERT_GE(h2, 0);
  EXPECT_EQ(alloc.reserved_bytes(), 10 * kMiB);  // reused, not grown
}

TEST(AllocatorTest, OversizedCachedBlockSplitsOnReuse) {
  CachingAllocatorSim alloc(kGiB);
  const int64_t big = alloc.Alloc(100 * kMiB);
  alloc.Free(big);
  // A 2 MiB request reuses a slice of the 100 MiB block; the remainder stays
  // cached, so reserved memory does not grow.
  const int64_t small = alloc.Alloc(2 * kMiB);
  ASSERT_GE(small, 0);
  EXPECT_EQ(alloc.allocated_bytes(), 2 * kMiB);
  EXPECT_EQ(alloc.reserved_bytes(), 100 * kMiB);
  // The 98 MiB remainder serves further requests without growth.
  const int64_t mid = alloc.Alloc(90 * kMiB);
  ASSERT_GE(mid, 0);
  EXPECT_EQ(alloc.reserved_bytes(), 100 * kMiB);
}

TEST(AllocatorTest, PeaksAreMonotone) {
  CachingAllocatorSim alloc(kGiB);
  const int64_t a = alloc.Alloc(10 * kMiB);
  const int64_t b = alloc.Alloc(20 * kMiB);
  alloc.Free(a);
  alloc.Free(b);
  EXPECT_EQ(alloc.peak_allocated(), 30 * kMiB);
  EXPECT_EQ(alloc.peak_reserved(), 30 * kMiB);
  EXPECT_EQ(alloc.allocated_bytes(), 0);
}

TEST(AllocatorTest, ReclaimsCacheBeforeOom) {
  CachingAllocatorSim alloc(100 * kMiB);
  const int64_t a = alloc.Alloc(60 * kMiB);
  alloc.Free(a);
  // 60 MiB is cached; an 80 MiB request cannot reuse it but fits after the
  // cache is released back to the device.
  const int64_t b = alloc.Alloc(80 * kMiB);
  EXPECT_GE(b, 0);
  EXPECT_FALSE(alloc.oom());
  EXPECT_EQ(alloc.reserved_bytes(), 80 * kMiB);
}

TEST(AllocatorTest, OomWhenCapacityExhausted) {
  CachingAllocatorSim alloc(100 * kMiB);
  const int64_t a = alloc.Alloc(60 * kMiB);
  ASSERT_GE(a, 0);
  const int64_t b = alloc.Alloc(60 * kMiB);  // 120 > 100 and nothing cached
  EXPECT_EQ(b, -1);
  EXPECT_TRUE(alloc.oom());
}

TEST(AllocatorTest, FreeNegativeHandleIsNoop) {
  CachingAllocatorSim alloc(kGiB);
  alloc.Free(-1);  // e.g. the handle of a failed allocation
  EXPECT_EQ(alloc.allocated_bytes(), 0);
}

TEST(AllocatorDeathTest, DoubleFreeAborts) {
  CachingAllocatorSim alloc(kGiB);
  const int64_t h = alloc.Alloc(kMiB);
  alloc.Free(h);
  EXPECT_DEATH(alloc.Free(h), "double free");
}

TEST(AllocatorTest, SteadyStateReuseInPipelinePattern) {
  // The 1F1B pattern: allocate activation, free it one step later,
  // repeatedly. Reserved memory must stabilize rather than grow.
  CachingAllocatorSim alloc(kGiB);
  int64_t prev = alloc.Alloc(8 * kMiB);
  for (int i = 0; i < 100; ++i) {
    const int64_t next = alloc.Alloc(8 * kMiB);
    alloc.Free(prev);
    prev = next;
  }
  alloc.Free(prev);
  EXPECT_LE(alloc.peak_reserved(), 16 * kMiB);
}

}  // namespace
}  // namespace aceso
