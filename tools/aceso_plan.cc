// aceso_plan: lower a saved configuration to an execution plan and run it in
// the simulated runtime.
//
//   aceso_plan --model gpt3-1.3b --gpus 8 --config config.txt
//              [--dump-device N] [--timeline] [--trace out.json]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/aceso.h"
#include "tools/cli_flags.h"

namespace {

struct Args {
  std::string model = "gpt3-1.3b";
  int gpus = 8;
  std::string config_path;
  int dump_device = -1;
  bool timeline = false;
  std::string trace_path;
};

void PrintUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --model NAME --gpus N --config FILE "
               "[--dump-device N] [--timeline] [--trace FILE]\n",
               argv0);
}

bool ParseArgs(int argc, char** argv, Args& args) {
  using aceso::cli::ParseInt;
  using aceso::cli::ParsePositiveInt;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (flag == "--model") {
      const char* v = next();
      if (v == nullptr) return false;
      args.model = v;
    } else if (flag == "--gpus") {
      if (!ParsePositiveInt("--gpus", next(), &args.gpus)) return false;
    } else if (flag == "--config") {
      const char* v = next();
      if (v == nullptr) return false;
      args.config_path = v;
    } else if (flag == "--dump-device") {
      if (!ParseInt("--dump-device", next(), &args.dump_device)) return false;
    } else if (flag == "--timeline") {
      args.timeline = true;
    } else if (flag == "--trace") {
      const char* v = next();
      if (v == nullptr) return false;
      args.trace_path = v;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", flag.c_str());
      return false;
    }
  }
  return !args.config_path.empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace aceso;
  Args args;
  if (!ParseArgs(argc, argv, args)) {
    PrintUsage(argv[0]);
    return 2;
  }

  auto graph = models::BuildByName(args.model);
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  const ClusterSpec cluster = ClusterSpec::WithGpuCount(args.gpus);
  auto config = LoadConfigFromFile(args.config_path, *graph);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 1;
  }
  const Status valid = config->Validate(*graph, cluster);
  if (!valid.ok()) {
    std::fprintf(stderr, "invalid configuration: %s\n",
                 valid.ToString().c_str());
    return 1;
  }

  // Lower and verify the plan.
  const ExecutionPlan plan = ExecutionPlan::Lower(*graph, *config);
  const Status plan_ok = plan.Verify();
  if (!plan_ok.ok()) {
    std::fprintf(stderr, "plan verification failed: %s\n",
                 plan_ok.ToString().c_str());
    return 1;
  }
  std::printf("%s\n", plan.Summary().c_str());
  if (args.dump_device >= 0 && args.dump_device < plan.num_devices()) {
    std::printf("%s\n", plan.DumpDevice(args.dump_device).c_str());
  }

  // Execute in the simulated runtime.
  ProfileDatabase db(cluster);
  PerformanceModel model(&*graph, cluster, &db);
  PipelineExecutor executor(&model);
  ExecutionOptions options;
  options.render_timeline = args.timeline;
  options.chrome_trace_path = args.trace_path;
  const ExecutionResult run = executor.Execute(*config, options);

  std::printf("actual: %s iteration %s, %.1f samples/s, %.2f TFLOPS/GPU\n",
              run.oom ? "OOM," : "", FormatSeconds(run.iteration_seconds).c_str(),
              run.Throughput(graph->global_batch_size()),
              executor.EffectiveTflopsPerGpu(run));
  if (args.timeline) {
    std::printf("\n%s", run.ascii_timeline.c_str());
  }
  if (!args.trace_path.empty()) {
    std::printf("chrome trace written to %s\n", args.trace_path.c_str());
  }
  return 0;
}
