file(REMOVE_RECURSE
  "CMakeFiles/exp04_exploration.dir/bench/bench_util.cc.o"
  "CMakeFiles/exp04_exploration.dir/bench/bench_util.cc.o.d"
  "CMakeFiles/exp04_exploration.dir/bench/exp04_exploration.cc.o"
  "CMakeFiles/exp04_exploration.dir/bench/exp04_exploration.cc.o.d"
  "bench/exp04_exploration"
  "bench/exp04_exploration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp04_exploration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
