file(REMOVE_RECURSE
  "CMakeFiles/aceso_runtime.dir/allocator_sim.cc.o"
  "CMakeFiles/aceso_runtime.dir/allocator_sim.cc.o.d"
  "CMakeFiles/aceso_runtime.dir/event_sim.cc.o"
  "CMakeFiles/aceso_runtime.dir/event_sim.cc.o.d"
  "CMakeFiles/aceso_runtime.dir/pipeline_executor.cc.o"
  "CMakeFiles/aceso_runtime.dir/pipeline_executor.cc.o.d"
  "CMakeFiles/aceso_runtime.dir/trace.cc.o"
  "CMakeFiles/aceso_runtime.dir/trace.cc.o.d"
  "libaceso_runtime.a"
  "libaceso_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aceso_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
