// Elastic reconfiguration: the scenario Aceso's low search cost unlocks
// (paper §1: "search overhead can be a huge burden when quick
// reconfiguration is needed, e.g., in a shared cluster with frequent changes
// in resources").
//
// Trains GPT-3 2.6B while the cluster shrinks 32 -> 16 -> 8 GPUs and grows
// back; after each resize, a sub-second Aceso search produces a fresh
// configuration, and the simulated runtime reports the new throughput. The
// profiled database persists across resizes (op measurements do not depend
// on cluster size beyond collective group shapes), so no re-profiling is
// needed.
//
//   ./build/examples/elastic_recluster

#include <cstdio>
#include <iostream>

#include "src/aceso.h"

int main() {
  using namespace aceso;

  const OpGraph model = models::Gpt3(2.6);
  std::printf("%s\n\n", model.Summary().c_str());

  TablePrinter table({"event", "gpus", "search(s)", "pred iter(s)",
                      "actual samples/s", "plan"});

  const int resize_events[] = {32, 16, 8, 16, 32};
  for (const int gpus : resize_events) {
    const ClusterSpec cluster = ClusterSpec::WithGpuCount(gpus);
    ProfileDatabase db(cluster);
    PerformanceModel perf_model(&model, cluster, &db);
    PipelineExecutor executor(&perf_model);

    SearchOptions options;
    options.time_budget_seconds = 1.0;  // quick re-configuration
    const SearchResult result = AcesoSearch(perf_model, options);
    if (!result.found) {
      table.AddRow({"resize", std::to_string(gpus), "-", "-", "-",
                    "no feasible configuration"});
      continue;
    }
    const ExecutionResult run = executor.Execute(result.best.config);
    table.AddRow({"resize", std::to_string(gpus),
                  FormatDouble(result.search_seconds, 2),
                  FormatDouble(result.best.perf.iteration_time, 2),
                  FormatDouble(run.Throughput(model.global_batch_size()), 1),
                  result.best.config.ShortString()});
  }
  table.Print(std::cout);
  std::printf(
      "\nEach re-configuration costs ~1s of search — cheap enough to run on "
      "every cluster resize.\n");
  return 0;
}
