// The cross-request plan cache of the planning daemon (DESIGN.md §14, §16).
//
// Keyed by PlanCacheKey — the composed semantic fingerprint of (model IR,
// cluster spec, answer-determining SearchOptions). Because fixed-seed
// searches under a deterministic budget are bit-reproducible, two requests
// with equal keys can only produce the same plan, so a hit replays the
// stored response payload without re-entering AcesoSearch at all.
//
// Values are the *pre-serialized* payload JSON (BuildPlanPayload) behind a
// `shared_ptr<const string>`: immutable, and shared by reference all the
// way into the HTTP connection's writev iovec, so a cache hit constructs
// no JSON and copies no payload bytes (zero-serialization, DESIGN.md §16).
// Each entry also holds a small set of *derived* payloads — re-renderings
// of the entry keyed by a variant hash (e.g. a budget-sweep's budget list)
// — so repeat sweeps against a cached frontier skip re-serialization too.
//
// LRU with a fixed entry capacity; thread-safe (one mutex — the cache sits
// on the request admission path, not inside any search loop). Counters
// follow the repo's stats idiom (monotonic, operator- for deltas).

#ifndef SRC_SERVE_PLAN_CACHE_H_
#define SRC_SERVE_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/hash.h"

namespace aceso {
namespace serve {

struct PlanCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t inserts = 0;
  int64_t evictions = 0;
  // Derived-payload (per-entry variant) traffic, e.g. budget sweeps.
  int64_t derived_hits = 0;
  int64_t derived_misses = 0;
  int64_t derived_inserts = 0;

  PlanCacheStats operator-(const PlanCacheStats& other) const {
    PlanCacheStats d;
    d.hits = hits - other.hits;
    d.misses = misses - other.misses;
    d.inserts = inserts - other.inserts;
    d.evictions = evictions - other.evictions;
    d.derived_hits = derived_hits - other.derived_hits;
    d.derived_misses = derived_misses - other.derived_misses;
    d.derived_inserts = derived_inserts - other.derived_inserts;
    return d;
  }
};

// One cached outcome: the shared response payload plus the headline numbers
// the daemon logs without re-parsing its own JSON.
struct CachedPlan {
  std::shared_ptr<const std::string> payload_json;
  bool found = false;
  double iteration_time = 0.0;
};

class PlanCache {
 public:
  // `capacity` = max entries; 0 disables caching (every Get is a miss and
  // Put is a no-op), which keeps the daemon's cache=off mode trivial.
  explicit PlanCache(size_t capacity) : capacity_(capacity) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Looks up `key`, refreshing its LRU position on a hit.
  std::optional<CachedPlan> Get(uint64_t key);

  // Inserts (or refreshes) `key`. Evicts the least-recently-used entry when
  // over capacity. Refreshing drops the entry's derived payloads (they were
  // rendered from the replaced payload).
  void Put(uint64_t key, CachedPlan plan);

  // Derived payloads: immutable re-renderings of the entry identified by
  // (key, variant). A hit refreshes the entry's LRU position; a miss on a
  // *present* entry counts toward derived_misses (a miss on an absent entry
  // is just nullptr — the caller has no base payload to derive from either).
  std::shared_ptr<const std::string> GetDerived(uint64_t key,
                                                uint64_t variant);
  // Attaches a derived payload to an existing entry (no-op when the entry
  // has been evicted). At most kMaxDerivedPerEntry variants are kept per
  // entry, oldest dropped first.
  void PutDerived(uint64_t key, uint64_t variant,
                  std::shared_ptr<const std::string> payload);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  PlanCacheStats stats() const;

  static constexpr size_t kMaxDerivedPerEntry = 8;

 private:
  struct Entry {
    uint64_t key = 0;
    CachedPlan plan;
    // Small, ordered oldest→newest; linear scan beats a map at this size.
    std::vector<std::pair<uint64_t, std::shared_ptr<const std::string>>>
        derived;
  };

  const size_t capacity_;
  mutable std::mutex mu_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<uint64_t, std::list<Entry>::iterator, IdentityHash>
      index_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t inserts_ = 0;
  int64_t evictions_ = 0;
  int64_t derived_hits_ = 0;
  int64_t derived_misses_ = 0;
  int64_t derived_inserts_ = 0;
};

}  // namespace serve
}  // namespace aceso

#endif  // SRC_SERVE_PLAN_CACHE_H_
