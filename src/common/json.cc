#include "src/common/json.h"

#include <cassert>
#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace aceso {

void AppendJsonEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;  // UTF-8 bytes pass through unchanged
        }
    }
  }
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  AppendJsonEscaped(out, s);
  return out;
}

void AppendJsonNumber(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.15g", value);
  out += buf;
}

bool JsonValue::bool_value() const {
  assert(kind_ == Kind::kBool);
  return bool_;
}

double JsonValue::number_value() const {
  assert(kind_ == Kind::kNumber);
  return number_;
}

const std::string& JsonValue::string_value() const {
  assert(kind_ == Kind::kString);
  return string_;
}

int64_t JsonValue::int_value() const {
  assert(kind_ == Kind::kNumber && int_exact_);
  return int_;
}

const JsonValue& JsonValue::item(size_t i) const {
  assert(kind_ == Kind::kArray);
  return items_.at(i);
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  assert(kind_ == Kind::kObject);
  const JsonValue* found = nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) {
      found = &value;  // last occurrence wins
    }
  }
  return found;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  assert(kind_ == Kind::kObject);
  return members_;
}

std::string JsonValue::ToJson() const {
  std::string out;
  switch (kind_) {
    case Kind::kNull:
      out = "null";
      break;
    case Kind::kBool:
      out = bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      if (int_exact_) {
        out = std::to_string(int_);
      } else {
        AppendJsonNumber(out, number_);
      }
      break;
    case Kind::kString:
      out += '"';
      AppendJsonEscaped(out, string_);
      out += '"';
      break;
    case Kind::kArray: {
      out += '[';
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += ',';
        out += items_[i].ToJson();
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += ',';
        out += '"';
        AppendJsonEscaped(out, members_[i].first);
        out += "\":";
        out += members_[i].second.ToJson();
      }
      out += '}';
      break;
    }
  }
  return out;
}

namespace {

// Appends one Unicode code point as UTF-8.
void AppendUtf8(std::string& out, uint32_t cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else if (cp < 0x10000) {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xF0 | (cp >> 18));
    out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

}  // namespace

// Single-pass recursive-descent parser over the RFC 8259 grammar. With
// `build` off it is the validator (no allocation besides the error); with
// `build` on it additionally constructs the JsonValue tree. One grammar, two
// uses — JsonValidate and JsonParse cannot disagree about what parses.
class JsonParser {
 public:
  JsonParser(std::string_view text, bool build) : text_(text), build_(build) {}

  Status Run(JsonValue* out) {
    SkipWs();
    Status s = Value(out, /*depth=*/0);
    if (!s.ok()) {
      return s;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return OkStatus();
  }

 private:
  static constexpr int kMaxDepth = 256;

  Status Error(const std::string& what) const {
    return InvalidArgument("JSON: " + what + " at byte " +
                           std::to_string(pos_));
  }

  bool Eof() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  void SkipWs() {
    while (!Eof() && (Peek() == ' ' || Peek() == '\t' || Peek() == '\n' ||
                      Peek() == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (!Eof() && Peek() == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Value(JsonValue* out, int depth) {
    if (depth > kMaxDepth) {
      return Error("nesting too deep");
    }
    if (Eof()) {
      return Error("unexpected end of input, expected a value");
    }
    switch (Peek()) {
      case '{':
        return Object(out, depth);
      case '[':
        return Array(out, depth);
      case '"': {
        std::string value;
        Status s = String(build_ ? &value : nullptr);
        if (s.ok() && build_) {
          out->kind_ = JsonValue::Kind::kString;
          out->string_ = std::move(value);
        }
        return s;
      }
      case 't': {
        Status s = Literal("true");
        if (s.ok() && build_) {
          out->kind_ = JsonValue::Kind::kBool;
          out->bool_ = true;
        }
        return s;
      }
      case 'f': {
        Status s = Literal("false");
        if (s.ok() && build_) {
          out->kind_ = JsonValue::Kind::kBool;
          out->bool_ = false;
        }
        return s;
      }
      case 'n': {
        Status s = Literal("null");
        if (s.ok() && build_) {
          out->kind_ = JsonValue::Kind::kNull;
        }
        return s;
      }
      default:
        return Number(out);
    }
  }

  Status Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) {
      return Error("invalid literal");
    }
    pos_ += word.size();
    return OkStatus();
  }

  Status Object(JsonValue* out, int depth) {
    ++pos_;  // '{'
    if (build_) {
      out->kind_ = JsonValue::Kind::kObject;
    }
    SkipWs();
    if (Consume('}')) {
      return OkStatus();
    }
    while (true) {
      SkipWs();
      if (Eof() || Peek() != '"') {
        return Error("expected object key string");
      }
      std::string key;
      Status s = String(build_ ? &key : nullptr);
      if (!s.ok()) {
        return s;
      }
      SkipWs();
      if (!Consume(':')) {
        return Error("expected ':' after object key");
      }
      SkipWs();
      JsonValue member;
      s = Value(build_ ? &member : nullptr, depth + 1);
      if (!s.ok()) {
        return s;
      }
      if (build_) {
        out->members_.emplace_back(std::move(key), std::move(member));
      }
      SkipWs();
      if (Consume('}')) {
        return OkStatus();
      }
      if (!Consume(',')) {
        return Error("expected ',' or '}' in object");
      }
    }
  }

  Status Array(JsonValue* out, int depth) {
    ++pos_;  // '['
    if (build_) {
      out->kind_ = JsonValue::Kind::kArray;
    }
    SkipWs();
    if (Consume(']')) {
      return OkStatus();
    }
    while (true) {
      SkipWs();
      JsonValue item;
      Status s = Value(build_ ? &item : nullptr, depth + 1);
      if (!s.ok()) {
        return s;
      }
      if (build_) {
        out->items_.push_back(std::move(item));
      }
      SkipWs();
      if (Consume(']')) {
        return OkStatus();
      }
      if (!Consume(',')) {
        return Error("expected ',' or ']' in array");
      }
    }
  }

  // Parses one string token; when `out` is non-null, decodes escapes
  // (including \uXXXX surrogate pairs) into it as UTF-8.
  Status String(std::string* out) {
    ++pos_;  // opening '"'
    while (true) {
      if (Eof()) {
        return Error("unterminated string");
      }
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return OkStatus();
      }
      if (c < 0x20) {
        return Error("raw control character in string");
      }
      if (c == '\\') {
        ++pos_;
        if (Eof()) {
          return Error("unterminated escape");
        }
        const char e = text_[pos_];
        if (e == '"' || e == '\\' || e == '/') {
          if (out != nullptr) *out += e;
          ++pos_;
        } else if (e == 'b' || e == 'f' || e == 'n' || e == 'r' || e == 't') {
          if (out != nullptr) {
            switch (e) {
              case 'b': *out += '\b'; break;
              case 'f': *out += '\f'; break;
              case 'n': *out += '\n'; break;
              case 'r': *out += '\r'; break;
              case 't': *out += '\t'; break;
            }
          }
          ++pos_;
        } else if (e == 'u') {
          ++pos_;
          uint32_t cp = 0;
          Status s = HexQuad(&cp);
          if (!s.ok()) {
            return s;
          }
          // Decode surrogate pairs when a low surrogate follows; unpaired
          // surrogates pass through as-is (the validator accepted them
          // before the parser existed, so parsing stays exactly as lenient).
          if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < text_.size() &&
              text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
            const size_t saved = pos_;
            pos_ += 2;
            uint32_t low = 0;
            s = HexQuad(&low);
            if (!s.ok()) {
              return s;
            }
            if (low >= 0xDC00 && low <= 0xDFFF) {
              cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
            } else {
              pos_ = saved;  // not a pair; re-scan `low` as its own escape
            }
          }
          if (out != nullptr) {
            AppendUtf8(*out, cp);
          }
        } else {
          return Error("invalid escape character");
        }
      } else {
        if (out != nullptr) *out += static_cast<char>(c);
        ++pos_;
      }
    }
  }

  Status HexQuad(uint32_t* out) {
    uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      if (Eof() || !std::isxdigit(static_cast<unsigned char>(Peek()))) {
        return Error("\\u escape needs 4 hex digits");
      }
      const char h = Peek();
      uint32_t digit = 0;
      if (h >= '0' && h <= '9') {
        digit = static_cast<uint32_t>(h - '0');
      } else {
        digit = static_cast<uint32_t>((h | 0x20) - 'a' + 10);
      }
      value = (value << 4) | digit;
      ++pos_;
    }
    *out = value;
    return OkStatus();
  }

  Status Number(JsonValue* out) {
    const size_t start = pos_;
    bool integral = true;
    Consume('-');
    if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
      return Error("expected digit");
    }
    if (Peek() == '0') {
      ++pos_;
      if (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("leading zero in number");
      }
    } else {
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (Consume('.')) {
      integral = false;
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("expected digit after decimal point");
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (!Eof() && (Peek() == 'e' || Peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!Eof() && (Peek() == '+' || Peek() == '-')) {
        ++pos_;
      }
      if (Eof() || !std::isdigit(static_cast<unsigned char>(Peek()))) {
        return Error("expected digit in exponent");
      }
      while (!Eof() && std::isdigit(static_cast<unsigned char>(Peek()))) {
        ++pos_;
      }
    }
    if (out != nullptr && build_) {
      const std::string token(text_.substr(start, pos_ - start));
      out->kind_ = JsonValue::Kind::kNumber;
      out->number_ = std::strtod(token.c_str(), nullptr);
      if (integral) {
        errno = 0;
        char* end = nullptr;
        const long long v = std::strtoll(token.c_str(), &end, 10);
        if (errno != ERANGE && end != nullptr && *end == '\0') {
          out->int_exact_ = true;
          out->int_ = static_cast<int64_t>(v);
        }
      }
    }
    return OkStatus();
  }

  std::string_view text_;
  bool build_ = false;
  size_t pos_ = 0;
};

Status JsonValidate(std::string_view text) {
  return JsonParser(text, /*build=*/false).Run(nullptr);
}

StatusOr<JsonValue> JsonParse(std::string_view text) {
  JsonValue value;
  Status s = JsonParser(text, /*build=*/true).Run(&value);
  if (!s.ok()) {
    return s;
  }
  return value;
}

}  // namespace aceso
